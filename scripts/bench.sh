#!/usr/bin/env bash
# Runs the full benchmark suite and snapshots it as BENCH_<date>.json,
# the perf trajectory the ROADMAP asks successive PRs to maintain, then
# prints per-benchmark deltas against the most recent prior snapshot
# (cmd/benchcmp).
#
# The table/figure benches re-run their analyses over a shared pipeline
# built at the paper's full scale by default; export
# GEONET_BENCH_SCALE=0.05 (or pass -short) for a laptop-sized run.
# GOMAXPROCS and the CPU count are recorded in the snapshot because
# time deltas only mean something at matching parallelism — the
# BENCH_20260730 snapshot was taken at GOMAXPROCS=1, where
# PipelineFull vs PipelineFullSerial is a non-comparison.
#
# Usage: scripts/bench.sh [extra go-test args...]
#   e.g. scripts/bench.sh -benchtime 3x
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_$(date +%Y%m%d).json"
# Same-day re-runs get a time suffix instead of clobbering the earlier
# snapshot (which would also silence the comparison below).
[ -e "$out" ] && out="BENCH_$(date +%Y%m%d_%H%M%S).json"
prev="$(ls -1 BENCH_*.json 2>/dev/null | grep -v "^$out\$" | sort | tail -n 1 || true)"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

gomaxprocs="${GOMAXPROCS:-$(go env GOMAXPROCS 2>/dev/null || true)}"
[ -n "$gomaxprocs" ] && [ "$gomaxprocs" != "0" ] || gomaxprocs="$(nproc)"
num_cpu="$(nproc)"
bench_scale="${GEONET_BENCH_SCALE:-1.0}"
for arg in "$@"; do
    [ "$arg" = "-short" ] && [ -z "${GEONET_BENCH_SCALE:-}" ] && bench_scale=0.05
done

go test -run '^$' -bench . -benchmem "$@" . | tee "$raw"

# Convert `go test -bench` lines into a JSON array of
# {name, iterations, ns_per_op, bytes_per_op, allocs_per_op}.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" \
    -v gomaxprocs="$gomaxprocs" -v num_cpu="$num_cpu" -v bench_scale="$bench_scale" '
BEGIN { print "{"; printf "  \"date\": \"%s\",\n", date }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    # go test suffixes names with -GOMAXPROCS, omitted when it is 1.
    name = $1
    if (match(name, /-[0-9]+$/)) procs = substr(name, RSTART + 1)
    else procs = 1
    sub(/-[0-9]+$/, "", name)
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3)
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op")      line = line sprintf(", \"bytes_per_op\": %s", $i)
        if ($(i+1) == "allocs/op") line = line sprintf(", \"allocs_per_op\": %s", $i)
    }
    line = line "}"
    benches[++n] = line
}
END {
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"gomaxprocs\": %s,\n", procs != "" ? procs : gomaxprocs
    printf "  \"num_cpu\": %s,\n", num_cpu
    printf "  \"bench_scale\": %s,\n", bench_scale
    print "  \"benchmarks\": ["
    for (i = 1; i <= n; i++) printf "%s%s\n", benches[i], (i < n ? "," : "")
    print "  ]"
    print "}"
}' "$raw" > "$out"

echo "wrote $out"
if [ -n "$prev" ]; then
    echo
    go run ./cmd/benchcmp "$prev" "$out"
else
    echo "no prior BENCH_*.json to compare against"
fi
