#!/usr/bin/env bash
# Runs the full benchmark suite and snapshots it as BENCH_<date>.json,
# the perf trajectory the ROADMAP asks successive PRs to maintain.
#
# Usage: scripts/bench.sh [extra go-test args...]
#   e.g. scripts/bench.sh -benchtime 3x
set -euo pipefail
cd "$(dirname "$0")/.."

out="BENCH_$(date +%Y%m%d).json"
raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench . -benchmem "$@" . | tee "$raw"

# Convert `go test -bench` lines into a JSON array of
# {name, iterations, ns_per_op, bytes_per_op, allocs_per_op}.
awk -v date="$(date -u +%Y-%m-%dT%H:%M:%SZ)" '
BEGIN { print "{"; printf "  \"date\": \"%s\",\n", date }
/^cpu:/ { sub(/^cpu: */, ""); cpu = $0 }
/^Benchmark/ {
    # go test suffixes names with -GOMAXPROCS, omitted when it is 1.
    name = $1
    if (match(name, /-[0-9]+$/)) procs = substr(name, RSTART + 1)
    else procs = 1
    sub(/-[0-9]+$/, "", name)
    line = sprintf("    {\"name\": \"%s\", \"iterations\": %s, \"ns_per_op\": %s", name, $2, $3)
    for (i = 4; i <= NF; i++) {
        if ($(i+1) == "B/op")      line = line sprintf(", \"bytes_per_op\": %s", $i)
        if ($(i+1) == "allocs/op") line = line sprintf(", \"allocs_per_op\": %s", $i)
    }
    line = line "}"
    benches[++n] = line
}
END {
    printf "  \"cpu\": \"%s\",\n", cpu
    printf "  \"gomaxprocs\": %s,\n", procs != "" ? procs : "null"
    print "  \"benchmarks\": ["
    for (i = 1; i <= n; i++) printf "%s%s\n", benches[i], (i < n ? "," : "")
    print "  ]"
    print "}"
}' "$raw" > "$out"

echo "wrote $out"
