module geonet

go 1.24
