package geonet

// One benchmark per table and figure of the paper, plus ablation
// benches for the design choices DESIGN.md calls out. The expensive
// part — building the world and running both collections — happens once
// per process in benchPipeline; each bench then measures regenerating
// its table or figure from the collected data, mirroring how the
// paper's analysis re-runs over fixed datasets.
//
// Run with:  go test -bench=. -benchmem

import (
	"bytes"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"strconv"
	"sync"
	"testing"

	"geonet/internal/analysis"
	"geonet/internal/core"
	"geonet/internal/geo"
	"geonet/internal/geoserve"
	"geonet/internal/netgen"
	"geonet/internal/population"
	"geonet/internal/rng"
	"geonet/internal/topogen"
)

var (
	benchOnce sync.Once
	benchPipe *core.Pipeline
)

// benchScale sizes the shared pipeline the table/figure benches re-run
// their analyses over. The default 1.0 approximates the paper's
// 563k-interface Skitter snapshot (the scale BENCH_*.json snapshots are
// recorded at); `-short` drops to a laptop-friendly 0.05, and the
// GEONET_BENCH_SCALE environment variable overrides both.
func benchScale() float64 {
	if v := os.Getenv("GEONET_BENCH_SCALE"); v != "" {
		f, err := strconv.ParseFloat(v, 64)
		if err != nil || f <= 0 {
			panic("bad GEONET_BENCH_SCALE: " + v)
		}
		return f
	}
	if testing.Short() {
		return 0.05
	}
	return 1.0
}

func pipeline(b *testing.B) *core.Pipeline {
	benchOnce.Do(func() {
		p, err := core.Run(core.Config{Seed: 1, Scale: benchScale()})
		if err != nil {
			panic(err)
		}
		benchPipe = p
	})
	return benchPipe
}

func benchExperiment(b *testing.B, id string) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rep, err := core.RunExperiment(p, id)
		if err != nil {
			b.Fatal(err)
		}
		if len(rep.Tables) == 0 && len(rep.Series) == 0 {
			b.Fatalf("experiment %s produced nothing", id)
		}
	}
}

// ---- Tables ----

func BenchmarkTableI(b *testing.B)   { benchExperiment(b, "table1") }
func BenchmarkTableII(b *testing.B)  { benchExperiment(b, "table2") }
func BenchmarkTableIII(b *testing.B) { benchExperiment(b, "table3") }
func BenchmarkTableIV(b *testing.B)  { benchExperiment(b, "table4") }
func BenchmarkTableV(b *testing.B)   { benchExperiment(b, "table5") }
func BenchmarkTableVI(b *testing.B)  { benchExperiment(b, "table6") }

// ---- Figures ----

func BenchmarkFigure1(b *testing.B)  { benchExperiment(b, "figure1") }
func BenchmarkFigure2(b *testing.B)  { benchExperiment(b, "figure2") }
func BenchmarkFigure4(b *testing.B)  { benchExperiment(b, "figure4") }
func BenchmarkFigure5(b *testing.B)  { benchExperiment(b, "figure5") }
func BenchmarkFigure6(b *testing.B)  { benchExperiment(b, "figure6") }
func BenchmarkFigure7(b *testing.B)  { benchExperiment(b, "figure7") }
func BenchmarkFigure8(b *testing.B)  { benchExperiment(b, "figure8") }
func BenchmarkFigure9(b *testing.B)  { benchExperiment(b, "figure9") }
func BenchmarkFigure10(b *testing.B) { benchExperiment(b, "figure10") }

// BenchmarkAppendixEdgeScape regenerates the appendix (Figures 11-17):
// the main results re-run with the EdgeScape mapper.
func BenchmarkAppendixEdgeScape(b *testing.B) { benchExperiment(b, "appendix") }

// BenchmarkFractalDimension regenerates the Section II cross-check
// (box-counting dimension ~1.5).
func BenchmarkFractalDimension(b *testing.B) { benchExperiment(b, "fractal") }

// ---- Pipeline stages (where the wall-clock goes) ----

// BenchmarkPipelineFull runs with one worker per CPU;
// BenchmarkPipelineFullSerial pins Workers to 1. Their ratio on a
// multi-core machine is the pipeline's parallel speedup — the outputs
// are byte-identical either way (see core.TestWorkersDeterminism).
func BenchmarkPipelineFull(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.Config{Seed: 1, Scale: 0.02}); err != nil {
			b.Fatal(err)
		}
	}
}

func BenchmarkPipelineFullSerial(b *testing.B) {
	for i := 0; i < b.N; i++ {
		if _, err := core.Run(core.Config{Seed: 1, Scale: 0.02, Workers: 1}); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkDistancePreference isolates the O(n²) pairwise-distance
// kernel of Section V (the single hottest analysis loop) on the
// collected skitter dataset.
func BenchmarkDistancePreference(b *testing.B) {
	p := pipeline(b)
	ds := p.Dataset("skitter", "ixmapper")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		dp := analysis.DistancePreference(ds, geo.US, 35, 100)
		if len(dp.F) != 100 {
			b.Fatal("bad histogram")
		}
	}
}

func BenchmarkWorldBuild(b *testing.B) {
	for i := 0; i < b.N; i++ {
		population.Build(population.DefaultConfig(), rng.New(1))
	}
}

func BenchmarkNetgenBuild(b *testing.B) {
	world := population.Build(population.DefaultConfig(), rng.New(1))
	cfg := netgen.DefaultConfig()
	cfg.Scale = 0.02
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		netgen.Build(cfg, world)
	}
}

// ---- Ablations (DESIGN.md section 6) ----

// BenchmarkAblationUniformPlacement rebuilds the world with routers
// placed uniformly at random (the Waxman placement assumption the paper
// refutes) and re-measures the Figure 2 density slope; it should
// collapse toward zero, versus the superlinear slope of the default.
func BenchmarkAblationUniformPlacement(b *testing.B) {
	world := population.Build(population.DefaultConfig(), rng.New(1))
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := rng.New(9)
		g := topogen.Waxman(4000, geo.US, 0.05, 0.3, s)
		res := analysis.PatchDensity(g.Dataset, world.Raster, geo.US, 75)
		if res.Fit.Slope > 0.6 {
			b.Fatalf("uniform placement produced population-correlated density (slope %v)", res.Fit.Slope)
		}
	}
}

// BenchmarkAblationDistanceIndependentLinks generates link sets with and
// without the distance kernel and verifies the measured f(d) separates
// them (the Section V methodology check).
func BenchmarkAblationDistanceIndependentLinks(b *testing.B) {
	world := population.Build(population.DefaultConfig(), rng.New(1))
	cfg := topogen.DefaultGeoGenConfig()
	cfg.Nodes = 1500
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		s := rng.New(11)
		geoG := topogen.GeoGen(cfg, world, geo.US, s.Split("geo"))
		er := topogen.ErdosRenyi(1500, geo.US, 0.002, s.Split("er"))
		dpG := analysis.DistancePreference(geoG.Dataset, geo.US, 35, 100)
		dpE := analysis.DistancePreference(er.Dataset, geo.US, 35, 100)
		fitG := dpG.FitSmallD(400)
		fitE := dpE.FitSmallD(400)
		if fitG.Fit.Slope >= 0 {
			b.Fatal("distance-kernel links show no decay")
		}
		if fitE.Fit.Slope < fitG.Fit.Slope/2 {
			b.Fatal("distance-free links decay like kernel links; estimator broken")
		}
	}
}

// BenchmarkAblationAliasResolution measures Mercator's dataset with
// alias resolution versus without (interface granularity), the Table I
// interface-vs-router distinction.
func BenchmarkAblationAliasResolution(b *testing.B) {
	p := pipeline(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		res := p.RawMercator
		withAlias := len(res.RouterNodes)
		without := len(res.IfaceNodes)
		if withAlias >= without {
			b.Fatal("alias resolution did not collapse interfaces")
		}
	}
}

// ---- Serving layer (internal/geoserve) ----

// The serve benches run over the test-scale (0.02) pipeline — the
// snapshot size the ISSUE acceptance pins — independent of benchScale,
// so their numbers are comparable across snapshots regardless of the
// table/figure benches' scale.
var (
	serveOnce   sync.Once
	servePipe   *core.Pipeline
	serveEngine *geoserve.Engine
	serveHits   []uint32
)

func serveFixture(b *testing.B) (*core.Pipeline, *geoserve.Engine, []uint32) {
	serveOnce.Do(func() {
		p, err := core.Run(core.TestConfig())
		if err != nil {
			panic(err)
		}
		snap, err := p.Serve()
		if err != nil {
			panic(err)
		}
		servePipe = p
		serveEngine = geoserve.NewEngine(snap)
		for i := range p.Internet.Ifaces {
			if ifc := &p.Internet.Ifaces[i]; ifc.IP != 0 && !ifc.Private {
				serveHits = append(serveHits, ifc.IP)
			}
		}
	})
	return servePipe, serveEngine, serveHits
}

// BenchmarkServeSnapshotCompile measures compiling a finished pipeline
// into a serving snapshot (the rebuild cost behind a hot-swap).
func BenchmarkServeSnapshotCompile(b *testing.B) {
	p, _, _ := serveFixture(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, err := p.Serve(); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeDelta measures the incremental recompile behind one
// churn step: the same byte-identical snapshot the full compile above
// produces, but with only the dirty /24 intervals recomputed. The
// step is pinned to a small event batch so at most 1% of rows churn —
// the regime continuous topology churn lives in — and the bench
// reports the dirty fraction so drift is visible in snapshots. The
// acceptance bar is >= 5x faster than BenchmarkServeSnapshotCompile.
func BenchmarkServeDelta(b *testing.B) {
	p, _, _ := serveFixture(b)
	prev, err := p.Serve()
	if err != nil {
		b.Fatal(err)
	}
	ch, err := p.Churner(core.ServeOptions{}, 1)
	if err != nil {
		b.Fatal(err)
	}
	step, err := ch.Next(2)
	if err != nil {
		b.Fatal(err)
	}
	_, stats, err := p.ServeDelta(prev, step)
	if err != nil {
		b.Fatal(err)
	}
	dirty := float64(stats.Recompiled+stats.Patched) / float64(stats.Rows)
	if dirty > 0.01 {
		b.Fatalf("step churned %.2f%% of rows; the bench wants the <= 1%% regime", 100*dirty)
	}
	b.ReportMetric(100*dirty, "%dirty")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := p.ServeDelta(prev, step); err != nil {
			b.Fatal(err)
		}
	}
}

// BenchmarkServeLookupParallel is the serving hot path under full
// parallelism: engine lookups (metrics included) on known interface
// addresses. The acceptance bar is >= 1M lookups/sec (ns/op <= 1000)
// with 0 allocs/op.
func BenchmarkServeLookupParallel(b *testing.B) {
	_, e, hits := serveFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			a := e.Lookup(i&1, hits[i%len(hits)])
			if a.IP == 0 {
				b.Fatal("bad answer")
			}
			i++
		}
	})
}

// BenchmarkServeLookupSerial is the same path single-threaded, for
// GOMAXPROCS=1 snapshot comparability.
func BenchmarkServeLookupSerial(b *testing.B) {
	_, e, hits := serveFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		a := e.Lookup(i&1, hits[i%len(hits)])
		if a.IP == 0 {
			b.Fatal("bad answer")
		}
	}
}

// BenchmarkServeLookupMiss measures the miss path (addresses outside
// the allocated space), the floor a miss-heavy workload serves at.
func BenchmarkServeLookupMiss(b *testing.B) {
	_, e, _ := serveFixture(b)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		e.Lookup(0, 0xF0000000|uint32(i))
	}
}

// ---- Sharded serving (geoserve.Cluster) ----

func clusterFixture(b *testing.B, shards int) *geoserve.Cluster {
	_, e, _ := serveFixture(b)
	c, err := geoserve.NewCluster(e.Snapshot(), geoserve.ClusterConfig{Shards: shards})
	if err != nil {
		b.Fatal(err)
	}
	return c
}

// BenchmarkClusterLookupParallel is the cluster's single-lookup hot
// path (route to the owning shard, per-shard metrics) under full
// parallelism — directly comparable to BenchmarkServeLookupParallel;
// the acceptance bar is parity (sharding must not cost single-box
// speed) at 0 allocs/op.
func BenchmarkClusterLookupParallel(b *testing.B) {
	_, _, hits := serveFixture(b)
	c := clusterFixture(b, 8)
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		i := 0
		for pb.Next() {
			a := c.Lookup(i&1, hits[i%len(hits)])
			if a.IP == 0 {
				b.Fatal("bad answer")
			}
			i++
		}
	})
}

// BenchmarkClusterBatch measures scatter-gather batch serving: each
// iteration is one 256-address batch spanning the whole index (so
// every shard participates), with the amortised per-address cost
// reported as ns/lookup — the number to compare against
// BenchmarkServeLookupParallel's ns/op at equal GOMAXPROCS.
func BenchmarkClusterBatch(b *testing.B) {
	for _, shards := range []int{1, 4, 8} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			_, _, hits := serveFixture(b)
			c := clusterFixture(b, shards)
			const batchSize = 256
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				batch := make([]uint32, batchSize)
				for j := range batch {
					// A stride walk over the sorted hits spreads every
					// batch across the full index and all shards.
					batch[j] = hits[(j*len(hits)/batchSize)%len(hits)]
				}
				out := make([]geoserve.Answer, batchSize)
				i := 0
				for pb.Next() {
					if _, err := c.LookupBatch(i&1, batch, out); err != nil {
						b.Fatal(err)
					}
					i++
				}
			})
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*batchSize), "ns/lookup")
		})
	}
}

// nullResponseWriter sinks handler output so the wire benches measure
// serving cost, not recorder bookkeeping.
type nullResponseWriter struct {
	hdr  http.Header
	code int
	n    int
}

func (w *nullResponseWriter) Header() http.Header {
	if w.hdr == nil {
		w.hdr = http.Header{}
	}
	return w.hdr
}
func (w *nullResponseWriter) WriteHeader(code int) { w.code = code }
func (w *nullResponseWriter) Write(p []byte) (int, error) {
	if w.code == 0 {
		w.code = http.StatusOK
	}
	w.n += len(p)
	return len(p), nil
}

// BenchmarkWireBatch drives POST /v1/locate/bin through the full HTTP
// handler: one 256-address binary batch per iteration, engine and
// sharded cluster, with amortised ns/lookup reported — the number the
// JSON wall is measured against (compare BenchmarkJSONBatch).
func BenchmarkWireBatch(b *testing.B) {
	for _, shards := range []int{1, 8} {
		b.Run(fmt.Sprintf("shards%d", shards), func(b *testing.B) {
			_, e, hits := serveFixture(b)
			var h http.Handler
			if shards == 1 {
				h = geoserve.NewHandler(e)
			} else {
				h = geoserve.NewClusterHandler(clusterFixture(b, shards))
			}
			const batchSize = 256
			batch := make([]uint32, batchSize)
			for j := range batch {
				batch[j] = hits[(j*len(hits)/batchSize)%len(hits)]
			}
			body := geoserve.AppendWireBatchRequest(nil, 0, batch)
			b.ReportAllocs()
			b.ResetTimer()
			b.RunParallel(func(pb *testing.PB) {
				var w nullResponseWriter
				rd := bytes.NewReader(nil)
				for pb.Next() {
					rd.Reset(body)
					req := httptest.NewRequest("POST", "/v1/locate/bin", rd)
					w.code, w.n = 0, 0
					h.ServeHTTP(&w, req)
					if w.code != http.StatusOK || w.n == 0 {
						b.Fatalf("bin status %d (%d bytes)", w.code, w.n)
					}
				}
			})
			b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*batchSize), "ns/lookup")
		})
	}
}

// BenchmarkJSONBatch is the same 256-address batch through the JSON
// endpoint — the wall BenchmarkWireBatch exists to knock down.
func BenchmarkJSONBatch(b *testing.B) {
	_, e, hits := serveFixture(b)
	h := geoserve.NewHandler(e)
	const batchSize = 256
	var sb bytes.Buffer
	sb.WriteString(`{"ips":[`)
	for j := 0; j < batchSize; j++ {
		if j > 0 {
			sb.WriteByte(',')
		}
		fmt.Fprintf(&sb, "%q", geoserve.FormatIPv4(hits[(j*len(hits)/batchSize)%len(hits)]))
	}
	sb.WriteString(`]}`)
	body := sb.Bytes()
	b.ReportAllocs()
	b.ResetTimer()
	b.RunParallel(func(pb *testing.PB) {
		var w nullResponseWriter
		rd := bytes.NewReader(nil)
		for pb.Next() {
			rd.Reset(body)
			req := httptest.NewRequest("POST", "/v1/locate/batch", rd)
			w.code, w.n = 0, 0
			h.ServeHTTP(&w, req)
			if w.code != http.StatusOK || w.n == 0 {
				b.Fatalf("batch status %d (%d bytes)", w.code, w.n)
			}
		}
	})
	b.ReportMetric(float64(b.Elapsed().Nanoseconds())/(float64(b.N)*batchSize), "ns/lookup")
}

// BenchmarkAblationHostnameOnlyMapping compares full-chain IxMapper
// coverage against hostname-only mapping over the collected Skitter
// interfaces.
func BenchmarkAblationHostnameOnlyMapping(b *testing.B) {
	p := pipeline(b)
	full := p.Dataset("skitter", "ixmapper")
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if full.Stats.DiscardedUnmapped >= full.Stats.RawNodes/10 {
			b.Fatal("full-chain mapper should leave <10% unmapped")
		}
	}
}
