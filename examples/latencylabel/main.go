// Latencylabel demonstrates the paper's motivating application for
// geographic topology generation (Section I and VII): once nodes have
// coordinates, labelling links with latency "is a straightforward
// matter". It generates a geography-driven US topology, annotates every
// link with propagation latency, and prints the latency distribution
// alongside a degree-driven Barabási–Albert topology whose "latencies"
// would be meaningless.
package main

import (
	"fmt"

	"geonet/internal/analysis"
	"geonet/internal/geo"
	"geonet/internal/population"
	"geonet/internal/rng"
	"geonet/internal/topogen"
)

func main() {
	s := rng.New(42)
	world := population.Build(population.DefaultConfig(), s.Split("world"))

	cfg := topogen.DefaultGeoGenConfig()
	cfg.Nodes = 2000
	gg := topogen.GeoGen(cfg, world, geo.US, s.Split("geogen"))
	ba := topogen.BarabasiAlbert(2000, 2, geo.US, s.Split("ba"))

	fmt.Println("link latency distribution (ms), geography-driven vs degree-driven:")
	fmt.Printf("%-12s %8s %8s %8s %8s\n", "model", "p10", "median", "p90", "max")
	show := func(name string, lat []float64) {
		fmt.Printf("%-12s %8.2f %8.2f %8.2f %8.2f\n", name,
			analysis.Quantile(lat, 0.10),
			analysis.Quantile(lat, 0.50),
			analysis.Quantile(lat, 0.90),
			analysis.Quantile(lat, 1.0))
	}
	show("geogen", gg.LatencyMs)
	show("ba", ba.LatencyMs)

	// The point: geogen latencies are dominated by short metro links
	// with a long-haul tail (like real RTTs); BA's are whatever random
	// placement yields, because the model ignores geography.
	fmt.Println("\nsample geogen links:")
	for i := 0; i < 5 && i < len(gg.Links); i++ {
		l := gg.Links[i]
		fmt.Printf("  %s -> %s  %.0f mi  %.2f ms\n",
			gg.Nodes[l.A].Loc, gg.Nodes[l.B].Loc, l.LengthMi, gg.LatencyMs[i])
	}
}
