// Waxmanfit reproduces the paper's Section V reasoning end-to-end: it
// measures the empirical distance preference function of a collected
// dataset, fits the Waxman exponential to the small-d regime, then
// generates a Waxman topology with the fitted parameters and shows that
// its (re-measured) distance preference matches — while its node
// placement does not match reality at all, which is exactly the paper's
// verdict on the Waxman model.
package main

import (
	"fmt"
	"log"
	"os"

	"geonet/internal/analysis"
	"geonet/internal/core"
	"geonet/internal/geo"
	"geonet/internal/rng"
	"geonet/internal/topogen"
)

func main() {
	p, err := core.Run(core.Config{Seed: 1, Scale: 0.03, Progress: os.Stderr})
	if err != nil {
		log.Fatal(err)
	}
	ds := p.Dataset("skitter", "ixmapper")

	// Measure f(d) in the US region and fit the small-d exponential.
	dp := analysis.DistancePreference(ds, geo.US, 35, 100)
	fit := dp.FitSmallD(250)
	fmt.Printf("measured US small-d fit: ln f(d) = %.5f*d + %.2f (R2 %.2f)\n",
		fit.Fit.Slope, fit.Fit.Intercept, fit.Fit.R2)
	fmt.Printf("Waxman reading: decay length L*alpha = %.0f miles (paper: ~140)\n", fit.DecayMiles)

	// Express as Waxman parameters: alpha = decay / maxSpan.
	L := geo.US.MaxSpanMiles()
	alpha := fit.DecayMiles / L
	beta := 0.4
	fmt.Printf("generating Waxman(alpha=%.4f, beta=%.2f) over the US box\n", alpha, beta)
	g := topogen.Waxman(1500, geo.US, alpha, beta, rng.New(2))

	// Re-measure the generated topology.
	dpw := analysis.DistancePreference(g.Dataset, geo.US, 35, 100)
	fitw := dpw.FitSmallD(600)
	fmt.Printf("re-measured Waxman decay: %.0f miles (target %.0f)\n",
		fitw.DecayMiles, fit.DecayMiles)

	// But placement is wrong: compare patch-count concentration.
	grid := geo.NewPatchGrid(geo.US, 75)
	gini := func(pts []geo.Point) float64 {
		counts := grid.Tally(pts)
		max, sum, n := 0.0, 0.0, 0
		for _, c := range counts {
			if c > 0 {
				n++
				sum += c
				if c > max {
					max = c
				}
			}
		}
		if n == 0 {
			return 0
		}
		return max / (sum / float64(n))
	}
	fmt.Printf("\nplacement concentration (max patch / mean patch):\n")
	fmt.Printf("  measured internet: %.0fx\n", gini(ds.InRegion(geo.US).Points()))
	fmt.Printf("  waxman uniform:    %.0fx\n", gini(g.Points()))
	fmt.Println("\nconclusion (paper section I): Waxman's distance kernel fits; its uniform placement does not.")
}
