// Quickstart: run the whole reproduction on a small world and print the
// paper's headline numbers — dataset sizes (Table I), the density
// superlinearity (Figure 2), the distance-sensitivity limit (Table V)
// and the intradomain/interdomain split (Table VI).
package main

import (
	"fmt"
	"log"
	"os"

	"geonet/internal/core"
)

func main() {
	cfg := core.Config{Seed: 1, Scale: 0.03, Progress: os.Stderr}
	p, err := core.Run(cfg)
	if err != nil {
		log.Fatal(err)
	}

	for _, id := range []string{"table1", "figure2", "table5", "table6"} {
		rep, err := core.RunExperiment(p, id)
		if err != nil {
			log.Fatal(err)
		}
		fmt.Println(rep.Format())
	}

	fmt.Println("done: this is a scaled-down world; run cmd/paperrepro -scale 0.1 for the full reproduction")
}
