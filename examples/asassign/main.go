// Asassign demonstrates the AS-labelling application of Section VI:
// topology generators need AS labels "to assign IP addresses to
// [routers] in a realistic manner, e.g., to simulate interdomain
// routing". It generates a geography-driven topology with AS labels and
// verifies the labels have the paper's measured properties: long-tailed
// location counts correlated with size, and mostly short intradomain
// links.
package main

import (
	"fmt"
	"sort"

	"geonet/internal/analysis"
	"geonet/internal/geo"
	"geonet/internal/population"
	"geonet/internal/rng"
	"geonet/internal/topogen"
)

func main() {
	s := rng.New(7)
	world := population.Build(population.DefaultConfig(), s.Split("world"))
	cfg := topogen.DefaultGeoGenConfig()
	cfg.Nodes = 3000
	cfg.ASCount = 80
	g := topogen.GeoGen(cfg, world, geo.US, s.Split("gen"))

	// Aggregate per AS: node count and distinct locations.
	type asAgg struct {
		asn   int
		nodes int
		locs  int
		pts   []geo.Point
	}
	byASN := map[int]*asAgg{}
	for _, n := range g.Nodes {
		a := byASN[n.ASN]
		if a == nil {
			a = &asAgg{asn: n.ASN}
			byASN[n.ASN] = a
		}
		a.nodes++
		a.pts = append(a.pts, n.Loc)
	}
	var aggs []*asAgg
	for _, a := range byASN {
		a.locs = geo.DistinctLocations(a.pts)
		aggs = append(aggs, a)
	}
	sort.Slice(aggs, func(i, j int) bool { return aggs[i].nodes > aggs[j].nodes })

	fmt.Printf("generated %d ASes over %d routers\n", len(aggs), len(g.Nodes))
	fmt.Println("largest five:")
	fmt.Printf("%6s %7s %10s\n", "AS", "routers", "locations")
	for _, a := range aggs[:5] {
		fmt.Printf("%6d %7d %10d\n", a.asn, a.nodes, a.locs)
	}

	// Size-locations correlation (the Figure 8(a) property).
	var size, locs []float64
	for _, a := range aggs {
		size = append(size, float64(a.nodes))
		locs = append(locs, float64(a.locs))
	}
	fmt.Printf("\nrouters-locations rank correlation: %.2f (paper: strongly correlated)\n",
		analysis.Spearman(size, locs))

	// Intradomain links dominate and are short (Table VI property).
	var intra, inter int
	var intraLen, interLen float64
	for _, l := range g.Links {
		if g.Nodes[l.A].ASN == g.Nodes[l.B].ASN {
			intra++
			intraLen += l.LengthMi
		} else {
			inter++
			interLen += l.LengthMi
		}
	}
	fmt.Printf("intradomain: %d links, mean %.0f mi\n", intra, intraLen/float64(intra))
	fmt.Printf("interdomain: %d links, mean %.0f mi\n", inter, interLen/float64(inter))
}
