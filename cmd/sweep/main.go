// Command sweep runs many reproduction pipelines as one workload: a
// spec matrix expands into scenarios (seed × scale × netgen
// ablations), the scenarios run concurrently under one global worker
// budget, and the output is per-scenario report digests plus
// cross-scenario sensitivity tables — how Table-I mapper agreement and
// the Section V distance-preference exponent move along each axis.
//
// Usage:
//
//	sweep -seeds 1,2,3 -scales 0.02,0.05
//	sweep -seeds 1 -scales 0.02 -monitors 9,19 -placement population,uniform
//	sweep -spec specs.json -json
//
// Matrix axes come from comma-separated flags, or -spec names a JSON
// file holding either a scenario.Matrix object or a bare array of
// specs. -workers is the global budget shared by all concurrently
// running pipelines (0 = one per CPU); like paperrepro, it also pins
// GOMAXPROCS so the per-scenario analysis kernels respect the same
// cap. -json emits the full report as JSON instead of tables.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"os"
	"runtime"
	"strconv"
	"strings"

	"geonet/internal/scenario"
)

func main() {
	seeds := flag.String("seeds", "", "comma-separated world seeds (required unless -spec)")
	scales := flag.String("scales", "", "comma-separated world scales (required unless -spec)")
	monitors := flag.String("monitors", "", "skitter monitor count axis")
	asFactors := flag.String("ascount", "", "AS count factor axis (>1 = more, smaller ASes)")
	extraLinks := flag.String("extralinks", "", "mean extra links per router axis")
	distIndep := flag.String("distindep", "", "distance-independent link fraction axis")
	placement := flag.String("placement", "", "placement axis: population,uniform")
	cacheBudgets := flag.String("cachebudgets", "", "route cache budget axis")
	specFile := flag.String("spec", "", "JSON file: a matrix object or an array of specs")
	workers := flag.Int("workers", 0, "global worker budget shared by all pipelines (0 = one per CPU)")
	jsonOut := flag.Bool("json", false, "emit the report as JSON")
	verbose := flag.Bool("v", false, "forward per-pipeline stage progress")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	flag.Parse()

	if *workers > 0 {
		// Hard-cap CPU use everywhere: the sweep splits this budget
		// across pipelines, and the digest-phase analysis kernels fan
		// out to GOMAXPROCS rather than reading a workers knob.
		runtime.GOMAXPROCS(*workers)
	}

	specs, err := specsFromFlags(*specFile, axisFlags{
		Seeds:        *seeds,
		Scales:       *scales,
		Monitors:     *monitors,
		ASCount:      *asFactors,
		ExtraLinks:   *extraLinks,
		DistIndep:    *distIndep,
		Placement:    *placement,
		CacheBudgets: *cacheBudgets,
	})
	if err != nil {
		fail(err)
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	rep, err := scenario.Sweep(specs, scenario.Options{
		TotalWorkers: *workers,
		Progress:     progress,
		Verbose:      *verbose,
	})
	if err != nil {
		fail(err)
	}

	if *jsonOut {
		enc := json.NewEncoder(os.Stdout)
		enc.SetIndent("", "  ")
		if err := enc.Encode(rep); err != nil {
			fail(err)
		}
		return
	}
	fmt.Println(rep.FormatTable())
	fmt.Println(rep.FormatSensitivity())
}

// axisFlags carries the raw comma-separated matrix axis flag values.
type axisFlags struct {
	Seeds        string
	Scales       string
	Monitors     string
	ASCount      string
	ExtraLinks   string
	DistIndep    string
	Placement    string
	CacheBudgets string
}

// specsFromFlags resolves the spec list from either the JSON file or
// the matrix flags — the whole flag→Matrix construction minus process
// concerns, so tests can drive it with synthetic values (mirroring
// cmd/benchcmp's compare() extraction).
func specsFromFlags(specFile string, f axisFlags) ([]scenario.Spec, error) {
	if specFile != "" {
		return loadSpecFile(specFile)
	}
	m, err := f.matrix()
	if err != nil {
		return nil, err
	}
	return m.Specs()
}

// matrix parses every axis flag into a scenario.Matrix.
func (f axisFlags) matrix() (scenario.Matrix, error) {
	m := scenario.Matrix{}
	if f.Seeds == "" || f.Scales == "" {
		return m, fmt.Errorf("need -seeds and -scales (or -spec FILE); see -h")
	}
	var err error
	if m.Seeds, err = parseInt64s(f.Seeds); err != nil {
		return m, fmt.Errorf("-seeds: %w", err)
	}
	if m.Scales, err = parseFloats(f.Scales); err != nil {
		return m, fmt.Errorf("-scales: %w", err)
	}
	if m.Monitors, err = parseInts(f.Monitors); err != nil {
		return m, fmt.Errorf("-monitors: %w", err)
	}
	if m.ASCountFactors, err = parseFloats(f.ASCount); err != nil {
		return m, fmt.Errorf("-ascount: %w", err)
	}
	if m.ExtraLinks, err = parseFloats(f.ExtraLinks); err != nil {
		return m, fmt.Errorf("-extralinks: %w", err)
	}
	if m.DistIndepFracs, err = parseFloats(f.DistIndep); err != nil {
		return m, fmt.Errorf("-distindep: %w", err)
	}
	if f.Placement != "" {
		m.Placement = splitList(f.Placement)
	}
	if m.RouteCacheBudgets, err = parseInts(f.CacheBudgets); err != nil {
		return m, fmt.Errorf("-cachebudgets: %w", err)
	}
	return m, nil
}

// loadSpecFile reads either a {"seeds": [...], ...} matrix object or a
// bare [{"seed": 1, ...}, ...] spec array.
func loadSpecFile(path string) ([]scenario.Spec, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	trimmed := strings.TrimSpace(string(data))
	if strings.HasPrefix(trimmed, "[") {
		var specs []scenario.Spec
		if err := json.Unmarshal(data, &specs); err != nil {
			return nil, fmt.Errorf("%s: %w", path, err)
		}
		return specs, nil
	}
	var m scenario.Matrix
	if err := json.Unmarshal(data, &m); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return m.Specs()
}

func splitList(s string) []string {
	parts := strings.Split(s, ",")
	out := parts[:0]
	for _, p := range parts {
		if p = strings.TrimSpace(p); p != "" {
			out = append(out, p)
		}
	}
	return out
}

func parseInt64s(s string) ([]int64, error) {
	var out []int64
	for _, p := range splitList(s) {
		v, err := strconv.ParseInt(p, 10, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func parseInts(s string) ([]int, error) {
	vs, err := parseInt64s(s)
	if err != nil {
		return nil, err
	}
	out := make([]int, len(vs))
	for i, v := range vs {
		out[i] = int(v)
	}
	return out, nil
}

func parseFloats(s string) ([]float64, error) {
	var out []float64
	for _, p := range splitList(s) {
		v, err := strconv.ParseFloat(p, 64)
		if err != nil {
			return nil, fmt.Errorf("bad value %q", p)
		}
		out = append(out, v)
	}
	return out, nil
}

func fail(err error) {
	fmt.Fprintln(os.Stderr, "sweep:", err)
	os.Exit(1)
}
