package main

import (
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geonet/internal/scenario"
)

func TestSpecsFromFlagsMatrix(t *testing.T) {
	cases := []struct {
		name    string
		flags   axisFlags
		want    int    // expected spec count (when wantErr == "")
		wantErr string // substring of the expected error
	}{
		{
			name:  "seeds x scales",
			flags: axisFlags{Seeds: "1,2,3", Scales: "0.02,0.05"},
			want:  6,
		},
		{
			name: "all axes",
			flags: axisFlags{Seeds: "1", Scales: "0.02", Monitors: "9,19",
				ASCount: "1,2", ExtraLinks: "0.55", DistIndep: "0.08",
				Placement: "population,uniform", CacheBudgets: "64"},
			want: 8,
		},
		{
			name:  "whitespace tolerated",
			flags: axisFlags{Seeds: " 1 , 2 ", Scales: "0.02"},
			want:  2,
		},
		{
			name:    "missing seeds",
			flags:   axisFlags{Scales: "0.02"},
			wantErr: "need -seeds and -scales",
		},
		{
			name:    "missing scales",
			flags:   axisFlags{Seeds: "1"},
			wantErr: "need -seeds and -scales",
		},
		{
			name:    "bad seed",
			flags:   axisFlags{Seeds: "1,x", Scales: "0.02"},
			wantErr: `-seeds: bad value "x"`,
		},
		{
			name:    "bad scale",
			flags:   axisFlags{Seeds: "1", Scales: "0.02,huge"},
			wantErr: `-scales: bad value "huge"`,
		},
		{
			name:    "bad monitor count",
			flags:   axisFlags{Seeds: "1", Scales: "0.02", Monitors: "9.5"},
			wantErr: `-monitors: bad value "9.5"`,
		},
		{
			name:    "bad AS count factor",
			flags:   axisFlags{Seeds: "1", Scales: "0.02", ASCount: "two"},
			wantErr: `-ascount: bad value "two"`,
		},
		{
			name:    "bad extra links",
			flags:   axisFlags{Seeds: "1", Scales: "0.02", ExtraLinks: "-"},
			wantErr: `-extralinks: bad value "-"`,
		},
		{
			name:    "bad dist-indep fraction",
			flags:   axisFlags{Seeds: "1", Scales: "0.02", DistIndep: "8%"},
			wantErr: `-distindep: bad value "8%"`,
		},
		{
			name:    "bad cache budget",
			flags:   axisFlags{Seeds: "1", Scales: "0.02", CacheBudgets: "lots"},
			wantErr: `-cachebudgets: bad value "lots"`,
		},
		{
			name:    "unknown placement rejected by matrix",
			flags:   axisFlags{Seeds: "1", Scales: "0.02", Placement: "waxman"},
			wantErr: "placement",
		},
		{
			name:    "duplicate axis value rejected by matrix",
			flags:   axisFlags{Seeds: "1,1", Scales: "0.02"},
			wantErr: "duplicate",
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			specs, err := specsFromFlags("", c.flags)
			if c.wantErr != "" {
				if err == nil {
					t.Fatalf("got %d specs, want error containing %q", len(specs), c.wantErr)
				}
				if !strings.Contains(err.Error(), c.wantErr) {
					t.Fatalf("error %q does not contain %q", err, c.wantErr)
				}
				return
			}
			if err != nil {
				t.Fatal(err)
			}
			if len(specs) != c.want {
				t.Fatalf("got %d specs, want %d", len(specs), c.want)
			}
		})
	}
}

func TestSpecsFromFlagsAxisOrdering(t *testing.T) {
	specs, err := specsFromFlags("", axisFlags{Seeds: "1,2", Scales: "0.02,0.05"})
	if err != nil {
		t.Fatal(err)
	}
	// Seeds vary slowest (the Matrix contract the sweep report relies
	// on for stable spec ordering).
	want := []struct {
		seed  int64
		scale float64
	}{{1, 0.02}, {1, 0.05}, {2, 0.02}, {2, 0.05}}
	for i, w := range want {
		if specs[i].Seed != w.seed || specs[i].Scale != w.scale {
			t.Fatalf("spec[%d] = seed%d/scale%g, want seed%d/scale%g",
				i, specs[i].Seed, specs[i].Scale, w.seed, w.scale)
		}
	}
}

func TestSpecsFromFlagsSpecFileTakesPrecedence(t *testing.T) {
	path := writeFile(t, `{"seeds": [7], "scales": [0.02]}`)
	// Axis flags (even invalid ones) are ignored when -spec is given.
	specs, err := specsFromFlags(path, axisFlags{Seeds: "junk"})
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 1 || specs[0].Seed != 7 {
		t.Fatalf("unexpected specs %+v", specs)
	}
}

func TestLoadSpecFileMatrixObject(t *testing.T) {
	path := writeFile(t, `{"seeds": [1, 2], "scales": [0.02], "monitors": [9, 19]}`)
	specs, err := loadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 4 {
		t.Fatalf("got %d specs, want 4", len(specs))
	}
}

func TestLoadSpecFileBareArrayRoundTrip(t *testing.T) {
	orig := []scenario.Spec{
		{Seed: 1, Scale: 0.02},
		{Seed: 2, Scale: 0.05, Monitors: 9, UniformPlacement: true},
	}
	data, err := json.Marshal(orig)
	if err != nil {
		t.Fatal(err)
	}
	path := writeFile(t, string(data))
	got, err := loadSpecFile(path)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != len(orig) {
		t.Fatalf("got %d specs, want %d", len(got), len(orig))
	}
	for i := range got {
		if got[i].Seed != orig[i].Seed || got[i].Scale != orig[i].Scale ||
			got[i].Monitors != orig[i].Monitors ||
			got[i].UniformPlacement != orig[i].UniformPlacement {
			t.Fatalf("spec[%d] = %+v, want %+v", i, got[i], orig[i])
		}
	}
}

func TestLoadSpecFileErrors(t *testing.T) {
	if _, err := loadSpecFile(filepath.Join(t.TempDir(), "missing.json")); err == nil {
		t.Error("missing file should error")
	}
	if _, err := loadSpecFile(writeFile(t, `{"seeds": [1,`)); err == nil {
		t.Error("malformed matrix JSON should error")
	}
	if _, err := loadSpecFile(writeFile(t, `[{"seed": 1,`)); err == nil {
		t.Error("malformed array JSON should error")
	}
	// A matrix file without scales fails Matrix validation.
	if _, err := loadSpecFile(writeFile(t, `{"seeds": [1]}`)); err == nil {
		t.Error("matrix without scales should error")
	}
}

func writeFile(t *testing.T, content string) string {
	t.Helper()
	path := filepath.Join(t.TempDir(), "spec.json")
	if err := os.WriteFile(path, []byte(content), 0o644); err != nil {
		t.Fatal(err)
	}
	return path
}
