// Command geoload is a closed-loop load generator for the geoserve
// layer: N workers each issue one lookup, wait for the answer, and
// immediately issue the next, so measured throughput is the service's
// sustainable rate at that concurrency (not an open-loop arrival
// fantasy). It drives either a running geoserved over HTTP or the
// engine in-process.
//
//	geoload -scale 0.02 -mix zipf -concurrency 8 -duration 5s
//	geoload -target http://localhost:8080 -mix unmappable -duration 10s
//	geoload -target-list http://r1:8081,http://r2:8082 -duration 10s
//
// Address mixes:
//
//	uniform     addresses uniform over the allocated /24 index
//	zipf        /24s drawn rank-Zipf (theta -zipftheta), hot-prefix skew
//	unmappable  half uniform, half guaranteed-miss (class E) addresses
//
// In-process mode builds the pipeline itself (-seed/-scale) and with
// -shards N > 1 drives a prefix-sharded geoserve.Cluster instead of a
// single engine; HTTP mode fetches the target's /24 index from
// /v1/prefixes, so the mix matches whatever world the server is
// serving. When the target is sharded (either mode) the report gains a
// per-shard section: each shard's lookups, QPS and share of the run's
// traffic. -json writes a snapshot in the scripts/bench.sh
// BENCH_<date>.json shape, so cmd/benchcmp can diff load-test runs
// like any other benchmark.
//
// In HTTP mode -wire selects the request encoding: json issues one
// GET /v1/locate per lookup; bin posts length-prefixed binary batches
// of -wirebatch addresses to /v1/locate/bin; stream holds one
// full-duplex /v1/locate/stream session per connection and ping-pongs
// -wirebatch-address chunks against epoch-tagged answer frames. The
// binary modes measure the server past the JSON wall — same answers
// (the wire golden pins byte-equivalence), a fraction of the cost.
//
// With -churn-every D the run additionally fires one POST
// /v1/admin/churn at the target every D, so the measured QPS is the
// service's sustained rate while it continuously delta-compiles and
// hot-swaps new epochs underneath the load; the report counts the
// steps the world moved through.
//
// With -target-list the run drives a whole replication fleet
// (geoserved -replica-of nodes): workers pin to home replicas
// round-robin, fail over to the next replica on error, honor a
// Retry-After header on 429/503 (capped at 2s) instead of hammering
// an overloaded or draining member, and the report breaks QPS,
// errors, retries, honored throttles, p50/p99 answer latency and the
// observed X-Geo-Epoch of every answer down per replica (see
// multi.go).
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"log"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"geonet/internal/core"
	"geonet/internal/geoserve"
	"geonet/internal/rng"
)

// target abstracts the two driving modes.
type target interface {
	lookup(ip uint32) (found bool, err error)
	mode() string
}

type inProcess struct {
	engine *geoserve.Engine
	mapper int
}

func (t *inProcess) lookup(ip uint32) (bool, error) {
	return t.engine.Lookup(t.mapper, ip).Found, nil
}
func (t *inProcess) mode() string { return "inprocess" }

type inProcessCluster struct {
	cluster *geoserve.Cluster
	mapper  int
}

func (t *inProcessCluster) lookup(ip uint32) (bool, error) {
	return t.cluster.Lookup(t.mapper, ip).Found, nil
}
func (t *inProcessCluster) mode() string { return "inprocess-sharded" }

type overHTTP struct {
	client *http.Client
	base   string
	mapper string
}

func (t *overHTTP) lookup(ip uint32) (bool, error) {
	resp, err := t.client.Get(t.base + "/v1/locate?ip=" + geoserve.FormatIPv4(ip) + "&mapper=" + t.mapper)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("status %d", resp.StatusCode)
	}
	var body struct {
		Found bool `json:"found"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return false, err
	}
	return body.Found, nil
}
func (t *overHTTP) mode() string { return "http" }

func main() {
	targetURL := flag.String("target", "", "geoserved base URL (empty = drive the engine in-process)")
	targetList := flag.String("target-list", "", "comma-separated replica URLs: drive the whole fleet with failover and a per-replica report")
	seed := flag.Int64("seed", 1, "world seed (in-process mode)")
	scale := flag.Float64("scale", 0.02, "world scale (in-process mode)")
	workers := flag.Int("workers", 0, "pipeline workers for the in-process build (0 = one per CPU)")
	shards := flag.Int("shards", 1, "drive a sharded cluster in-process (1 = single engine)")
	mapper := flag.String("mapper", "ixmapper", "mapper to query")
	concurrency := flag.Int("concurrency", 4, "closed-loop workers")
	duration := flag.Duration("duration", 5*time.Second, "measurement duration")
	mixName := flag.String("mix", "uniform", "address mix: uniform, zipf or unmappable")
	zipfTheta := flag.Float64("zipftheta", 1.2, "Zipf exponent for -mix zipf")
	loadSeed := flag.Int64("loadseed", 1, "seed for the address draw streams")
	jsonOut := flag.String("json", "", "write a bench.sh-shaped JSON snapshot to this file ('-' = stdout)")
	quiet := flag.Bool("quiet", false, "suppress build progress")
	wire := flag.String("wire", "json", "HTTP request encoding: json (GET /v1/locate), bin (binary batches to /v1/locate/bin) or stream (full-duplex /v1/locate/stream)")
	wireBatch := flag.Int("wirebatch", 256, "addresses per binary batch or stream chunk (-wire bin|stream)")
	churnEvery := flag.Duration("churn-every", 0, "fire POST /v1/admin/churn on the target at this interval during the run (0 = off), measuring sustained QPS through continuous rebuilds")
	flag.Parse()

	mix, err := parseMix(*mixName)
	if err != nil {
		log.Fatalf("geoload: %v", err)
	}
	if *concurrency < 1 {
		log.Fatal("geoload: -concurrency must be >= 1")
	}
	if *shards > 1 && *targetURL != "" {
		log.Fatal("geoload: -shards only shapes the in-process engine; start geoserved -shards and point -target at it instead")
	}
	if *wire != "json" && *wire != "bin" && *wire != "stream" {
		log.Fatalf("geoload: unknown -wire %q (json, bin or stream)", *wire)
	}
	if *wire != "json" && (*targetURL == "" || *targetList != "") {
		log.Fatal("geoload: -wire bin|stream drives a single HTTP target; set -target")
	}
	if *wireBatch < 1 || *wireBatch > geoserve.MaxBatch {
		log.Fatalf("geoload: -wirebatch must be in [1, %d]", geoserve.MaxBatch)
	}
	if *churnEvery < 0 {
		log.Fatal("geoload: -churn-every must be >= 0")
	}
	if *churnEvery > 0 && *targetURL == "" {
		log.Fatal("geoload: -churn-every drives a geoserved builder's /v1/admin/churn; set -target")
	}
	if *targetList != "" {
		if *targetURL != "" || *shards > 1 {
			log.Fatal("geoload: -target-list excludes -target and -shards")
		}
		runMultiMode(*targetList, *mapper, mix, *zipfTheta, *loadSeed, *concurrency, *duration, *jsonOut)
		return
	}

	var (
		tgt        target
		prefixes   []uint32
		worldScale = *scale
		// shardStats reads the per-shard lookup totals after the run
		// (nil when the target is an unsharded engine).
		shardStats func() []shardCount
	)
	if *targetURL == "" {
		cfg := core.Config{Seed: *seed, Scale: *scale, Workers: *workers}
		if !*quiet {
			cfg.Progress = os.Stderr
		}
		p, err := core.Run(cfg)
		if err != nil {
			log.Fatalf("geoload: pipeline: %v", err)
		}
		snap, err := p.Serve()
		if err != nil {
			log.Fatalf("geoload: %v", err)
		}
		idx, ok := snap.MapperIndex(*mapper)
		if !ok {
			log.Fatalf("geoload: unknown mapper %q (have %v)", *mapper, snap.Mappers())
		}
		prefixes = snap.Prefixes()
		if *shards > 1 {
			cluster, err := geoserve.NewCluster(snap, geoserve.ClusterConfig{Shards: *shards})
			if err != nil {
				log.Fatalf("geoload: %v", err)
			}
			tgt = &inProcessCluster{cluster: cluster, mapper: idx}
			shardStats = func() []shardCount {
				var out []shardCount
				for _, ss := range cluster.Status().ShardStats {
					out = append(out, shardCount{ID: ss.ID, Lookups: ss.Lookups})
				}
				return out
			}
		} else {
			tgt = &inProcess{engine: geoserve.NewEngine(snap), mapper: idx}
		}
	} else {
		client := &http.Client{Transport: &http.Transport{
			MaxIdleConns:        *concurrency * 2,
			MaxIdleConnsPerHost: *concurrency * 2,
		}}
		prefixes, err = fetchPrefixes(client, *targetURL)
		if err != nil {
			log.Fatalf("geoload: fetching /v1/prefixes: %v", err)
		}
		// Record the scale of the world the server actually serves,
		// not the unused in-process flag, so -json snapshots compare
		// like-for-like.
		worldScale, err = fetchBuildScale(client, *targetURL)
		if err != nil {
			log.Fatalf("geoload: fetching /healthz: %v", err)
		}
		switch *wire {
		case "bin", "stream":
			id, err := fetchMapperID(client, *targetURL, *mapper)
			if err != nil {
				log.Fatalf("geoload: resolving mapper wire id: %v", err)
			}
			if *wire == "bin" {
				tgt = newOverHTTPBin(client, *targetURL, id)
			} else {
				tgt = newOverHTTPStream(client, *targetURL, id)
			}
		default:
			tgt = &overHTTP{client: client, base: *targetURL, mapper: *mapper}
		}
		// A sharded geoserved exposes per-shard sections in /statusz;
		// report this run's per-shard traffic as a before/after delta.
		if before, ok := fetchShardLookups(client, *targetURL); ok {
			shardStats = func() []shardCount {
				after, ok := fetchShardLookups(client, *targetURL)
				if !ok || len(after) != len(before) {
					return nil
				}
				for i := range after {
					if after[i].Lookups < before[i].Lookups {
						// The server restarted mid-run; the delta is
						// meaningless.
						return nil
					}
					after[i].Lookups -= before[i].Lookups
				}
				return after
			}
		}
	}
	if len(prefixes) == 0 {
		log.Fatal("geoload: empty /24 index")
	}

	batchN := 1
	if *wire != "json" {
		batchN = *wireBatch
	}
	// With -churn-every the run measures sustained throughput while the
	// server continuously rebuilds: a side goroutine fires one churn
	// step per interval for the whole window, and the report says how
	// many epochs the target moved through under load.
	var (
		churnSteps, churnFailed uint64
		churnStop               chan struct{}
		churnDone               sync.WaitGroup
	)
	if *churnEvery > 0 {
		churnStop = make(chan struct{})
		churnDone.Add(1)
		go func() {
			defer churnDone.Done()
			client := &http.Client{}
			tick := time.NewTicker(*churnEvery)
			defer tick.Stop()
			for {
				select {
				case <-churnStop:
					return
				case <-tick.C:
					resp, err := client.Post(*targetURL+"/v1/admin/churn", "application/json", nil)
					if err != nil {
						churnFailed++
						continue
					}
					io.Copy(io.Discard, resp.Body)
					resp.Body.Close()
					if resp.StatusCode == http.StatusOK {
						churnSteps++
					} else {
						churnFailed++
					}
				}
			}
		}()
	}
	res := run(tgt, prefixes, mix, *zipfTheta, *loadSeed, *concurrency, *duration, batchN)
	if churnStop != nil {
		close(churnStop)
		churnDone.Wait()
		res.churnEvery = *churnEvery
		res.churnSteps = churnSteps
		res.churnFailed = churnFailed
	}
	if shardStats != nil {
		res.shards = shardStats()
	}
	fmt.Print(res.format(tgt.mode(), *mapper, mix, *concurrency, *duration))
	if *jsonOut != "" {
		if err := res.writeJSON(*jsonOut, tgt.mode(), *mapper, mix, *concurrency, worldScale); err != nil {
			log.Fatalf("geoload: %v", err)
		}
	}
	if res.errors > 0 {
		os.Exit(1)
	}
}

func fetchPrefixes(client *http.Client, base string) ([]uint32, error) {
	resp, err := client.Get(base + "/v1/prefixes")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var body struct {
		Prefixes []string `json:"prefixes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	out := make([]uint32, 0, len(body.Prefixes))
	for _, p := range body.Prefixes {
		if n := len(p); n > 3 && p[n-3:] == "/24" {
			p = p[:n-3]
		}
		ip, err := geoserve.ParseIPv4(p)
		if err != nil {
			return nil, err
		}
		out = append(out, ip)
	}
	return out, nil
}

// fetchBuildScale reads the served snapshot's world scale from
// /healthz.
func fetchBuildScale(client *http.Client, base string) (float64, error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	var body struct {
		Snapshot struct {
			Build struct {
				Scale float64 `json:"scale"`
			} `json:"build"`
		} `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, err
	}
	return body.Snapshot.Build.Scale, nil
}

// fetchShardLookups reads the per-shard lookup counters from a sharded
// geoserved's /statusz; ok=false when the target serves unsharded (no
// shard_stats section).
func fetchShardLookups(client *http.Client, base string) ([]shardCount, bool) {
	resp, err := client.Get(base + "/statusz")
	if err != nil {
		return nil, false
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, false
	}
	var body struct {
		ShardStats []shardCount `json:"shard_stats"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil || len(body.ShardStats) == 0 {
		return nil, false
	}
	return body.ShardStats, true
}

// shardCount is one shard's share of the run's lookups (the delta of
// its lookup counter over the measurement window).
type shardCount struct {
	ID      int    `json:"id"`
	Lookups uint64 `json:"lookups"`
}

type result struct {
	lookups uint64
	found   uint64
	errors  uint64
	elapsed time.Duration
	lat     *geoserve.Histogram
	// shards holds per-shard lookup counts when the target is a
	// sharded cluster (in-process or a sharded geoserved).
	shards []shardCount
	// churnEvery > 0 means the run drove continuous churn on the
	// target; churnSteps/churnFailed count the admin steps fired.
	churnEvery  time.Duration
	churnSteps  uint64
	churnFailed uint64
}

// run executes the closed loop: each worker draws from its own named
// split of the load seed, so a (loadseed, concurrency) pair replays
// the same address sequences against any target. With batchN > 1 the
// target must be a batchTarget; each worker then issues whole batches
// per round trip and the batch's mean per-lookup latency is recorded
// once per address, so latency quantiles stay comparable across -wire
// modes.
func run(tgt target, prefixes []uint32, mix mixKind, theta float64, loadSeed int64, concurrency int, d time.Duration, batchN int) *result {
	root := rng.New(loadSeed)
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		lookups atomic.Uint64
		found   atomic.Uint64
		errs    atomic.Uint64
	)
	hists := make([]*geoserve.Histogram, concurrency)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		hists[w] = &geoserve.Histogram{}
		gen := newAddrGen(mix, prefixes, theta, root.SplitN("worker", w))
		wg.Add(1)
		go func(gen *addrGen, hist *geoserve.Histogram) {
			defer wg.Done()
			var n, nf, ne uint64
			if bt, ok := tgt.(batchTarget); ok && batchN > 1 {
				ips := make([]uint32, batchN)
				for !stop.Load() {
					for i := range ips {
						ips[i] = gen.next()
					}
					t0 := time.Now()
					foundN, err := bt.lookupBatch(ips)
					hist.RecordN(time.Since(t0)/time.Duration(batchN), uint64(batchN))
					n += uint64(batchN)
					if err != nil {
						ne += uint64(batchN)
						continue
					}
					nf += uint64(foundN)
				}
			} else {
				for !stop.Load() {
					ip := gen.next()
					t0 := time.Now()
					ok, err := tgt.lookup(ip)
					hist.Record(time.Since(t0))
					n++
					if err != nil {
						ne++
						continue
					}
					if ok {
						nf++
					}
				}
			}
			lookups.Add(n)
			found.Add(nf)
			errs.Add(ne)
		}(gen, hists[w])
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	merged := &geoserve.Histogram{}
	for _, h := range hists {
		merged.Merge(h)
	}
	return &result{
		lookups: lookups.Load(),
		found:   found.Load(),
		errors:  errs.Load(),
		elapsed: elapsed,
		lat:     merged,
	}
}

// formatHist renders a histogram's non-empty export buckets on one
// line, bounds as durations — the at-a-glance distribution behind the
// three quantiles the summary prints.
func formatHist(h *geoserve.Histogram) string {
	bounds := geoserve.HistogramBounds()
	counts := h.Export()
	s := ""
	for i, n := range counts {
		if n == 0 {
			continue
		}
		if s != "" {
			s += " "
		}
		if i < len(bounds) {
			s += fmt.Sprintf("<=%s:%d", time.Duration(bounds[i]), n)
		} else {
			s += fmt.Sprintf(">%s:%d", time.Duration(bounds[len(bounds)-1]), n)
		}
	}
	if s == "" {
		return "(empty)"
	}
	return s
}

func (r *result) qps() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.lookups) / r.elapsed.Seconds()
}

func (r *result) format(mode, mapper string, mix mixKind, concurrency int, d time.Duration) string {
	foundPct := 0.0
	if r.lookups > 0 {
		foundPct = 100 * float64(r.found) / float64(r.lookups)
	}
	s := fmt.Sprintf(
		"geoload: mode=%s mix=%s mapper=%s concurrency=%d duration=%s\n"+
			"  lookups   %d (%.0f/s)\n"+
			"  found     %.1f%%\n"+
			"  latency   p50=%s p90=%s p99=%s\n"+
			"  hist      %s\n"+
			"  errors    %d\n",
		mode, mix, mapper, concurrency, d,
		r.lookups, r.qps(), foundPct,
		r.lat.Quantile(0.50), r.lat.Quantile(0.90), r.lat.Quantile(0.99),
		formatHist(r.lat),
		r.errors)
	if r.churnEvery > 0 {
		s += fmt.Sprintf("  churn     %d steps every %s (%d failed)\n",
			r.churnSteps, r.churnEvery, r.churnFailed)
	}
	if len(r.shards) > 0 {
		var total uint64
		for _, sc := range r.shards {
			total += sc.Lookups
		}
		seconds := r.elapsed.Seconds()
		for _, sc := range r.shards {
			share := 0.0
			if total > 0 {
				share = 100 * float64(sc.Lookups) / float64(total)
			}
			qps := 0.0
			if seconds > 0 {
				qps = float64(sc.Lookups) / seconds
			}
			s += fmt.Sprintf("  shard %-3d %d lookups (%.0f/s, %.1f%%)\n", sc.ID, sc.Lookups, qps, share)
		}
	}
	return s
}

// writeJSON emits the scripts/bench.sh snapshot shape so cmd/benchcmp
// can compare geoload runs.
func (r *result) writeJSON(path, mode, mapper string, mix mixKind, concurrency int, scale float64) error {
	name := fmt.Sprintf("GeoloadLookup/%s/%s/%s/c%d", mode, mix, mapper, concurrency)
	nsPerOp := 0.0
	if r.lookups > 0 {
		nsPerOp = float64(r.elapsed.Nanoseconds()) * float64(concurrency) / float64(r.lookups)
	}
	loadKeys := map[string]any{
		"mode": mode, "mix": mix.String(), "mapper": mapper,
		"concurrency": concurrency, "lookups": r.lookups,
		"qps": r.qps(), "errors": r.errors,
		"latency_p50_ns": int64(r.lat.Quantile(0.50)),
		"latency_p90_ns": int64(r.lat.Quantile(0.90)),
		"latency_p99_ns": int64(r.lat.Quantile(0.99)),
		// The full distribution, not just three quantiles: counts per
		// bucket with upper bounds in ns (last bucket is overflow), so
		// two runs can be compared bucket-by-bucket after the fact.
		"latency_hist_bounds_ns": geoserve.HistogramBounds(),
		"latency_hist_counts":    r.lat.Export(),
	}
	if len(r.shards) > 0 {
		loadKeys["shards"] = r.shards
	}
	if r.churnEvery > 0 {
		loadKeys["churn_every_ns"] = int64(r.churnEvery)
		loadKeys["churn_steps"] = r.churnSteps
		loadKeys["churn_failed"] = r.churnFailed
	}
	keys := map[string]any{
		"date":        time.Now().UTC().Format(time.RFC3339),
		"gomaxprocs":  runtime.GOMAXPROCS(0),
		"num_cpu":     runtime.NumCPU(),
		"bench_scale": scale,
		"geoload":     loadKeys,
		"benchmarks": []map[string]any{{
			"name":       name,
			"iterations": r.lookups,
			"ns_per_op":  nsPerOp,
		}},
	}
	// Stable key order for human diffing.
	var b []byte
	var err error
	if b, err = marshalOrdered(keys); err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// marshalOrdered renders the snapshot with the conventional field
// order (date/cpu counts first, benchmarks last), matching bench.sh.
func marshalOrdered(m map[string]any) ([]byte, error) {
	order := []string{"date", "gomaxprocs", "num_cpu", "bench_scale", "geoload", "benchmarks"}
	var buf []byte
	buf = append(buf, '{', '\n')
	first := true
	emit := func(k string) error {
		v, ok := m[k]
		if !ok {
			return nil
		}
		if !first {
			buf = append(buf, ',', '\n')
		}
		first = false
		kb, _ := json.Marshal(k)
		vb, err := json.MarshalIndent(v, "  ", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, ' ', ' ')
		buf = append(buf, kb...)
		buf = append(buf, ':', ' ')
		buf = append(buf, vb...)
		return nil
	}
	for _, k := range order {
		if err := emit(k); err != nil {
			return nil, err
		}
	}
	// Any extra keys, sorted, for forward compatibility.
	var extra []string
	for k := range m {
		seen := false
		for _, o := range order {
			if k == o {
				seen = true
				break
			}
		}
		if !seen {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		if err := emit(k); err != nil {
			return nil, err
		}
	}
	buf = append(buf, '\n', '}', '\n')
	return buf, nil
}
