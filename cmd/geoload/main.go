// Command geoload is a closed-loop load generator for the geoserve
// layer: N workers each issue one lookup, wait for the answer, and
// immediately issue the next, so measured throughput is the service's
// sustainable rate at that concurrency (not an open-loop arrival
// fantasy). It drives either a running geoserved over HTTP or the
// engine in-process.
//
//	geoload -scale 0.02 -mix zipf -concurrency 8 -duration 5s
//	geoload -target http://localhost:8080 -mix unmappable -duration 10s
//
// Address mixes:
//
//	uniform     addresses uniform over the allocated /24 index
//	zipf        /24s drawn rank-Zipf (theta -zipftheta), hot-prefix skew
//	unmappable  half uniform, half guaranteed-miss (class E) addresses
//
// In-process mode builds the pipeline itself (-seed/-scale); HTTP mode
// fetches the target's /24 index from /v1/prefixes, so the mix matches
// whatever world the server is serving. -json writes a snapshot in the
// scripts/bench.sh BENCH_<date>.json shape, so cmd/benchcmp can diff
// load-test runs like any other benchmark.
package main

import (
	"encoding/json"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"geonet/internal/core"
	"geonet/internal/geoserve"
	"geonet/internal/rng"
)

type mixKind int

const (
	mixUniform mixKind = iota
	mixZipf
	mixUnmappable
)

func parseMix(s string) (mixKind, error) {
	switch s {
	case "uniform":
		return mixUniform, nil
	case "zipf":
		return mixZipf, nil
	case "unmappable":
		return mixUnmappable, nil
	}
	return 0, fmt.Errorf("unknown mix %q (want uniform, zipf or unmappable)", s)
}

func (m mixKind) String() string {
	return [...]string{"uniform", "zipf", "unmappable"}[m]
}

// addrGen draws addresses for one worker, deterministically from its
// own stream.
type addrGen struct {
	mix      mixKind
	prefixes []uint32
	s        *rng.Stream
	zipf     func() int
}

func newAddrGen(mix mixKind, prefixes []uint32, theta float64, s *rng.Stream) *addrGen {
	g := &addrGen{mix: mix, prefixes: prefixes, s: s}
	if mix == mixZipf {
		g.zipf = s.Zipf(theta, len(prefixes))
	}
	return g
}

func (g *addrGen) next() uint32 {
	switch g.mix {
	case mixZipf:
		return g.prefixes[g.zipf()-1] | uint32(g.s.Intn(256))
	case mixUnmappable:
		if g.s.Bool(0.5) {
			// Class E is never allocated by netgen: a guaranteed miss.
			return 0xF0000000 | uint32(g.s.Intn(1<<24))
		}
		fallthrough
	default:
		return g.prefixes[g.s.Intn(len(g.prefixes))] | uint32(g.s.Intn(256))
	}
}

// target abstracts the two driving modes.
type target interface {
	lookup(ip uint32) (found bool, err error)
	mode() string
}

type inProcess struct {
	engine *geoserve.Engine
	mapper int
}

func (t *inProcess) lookup(ip uint32) (bool, error) {
	return t.engine.Lookup(t.mapper, ip).Found, nil
}
func (t *inProcess) mode() string { return "inprocess" }

type overHTTP struct {
	client *http.Client
	base   string
	mapper string
}

func (t *overHTTP) lookup(ip uint32) (bool, error) {
	resp, err := t.client.Get(t.base + "/v1/locate?ip=" + geoserve.FormatIPv4(ip) + "&mapper=" + t.mapper)
	if err != nil {
		return false, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return false, fmt.Errorf("status %d", resp.StatusCode)
	}
	var body struct {
		Found bool `json:"found"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return false, err
	}
	return body.Found, nil
}
func (t *overHTTP) mode() string { return "http" }

func main() {
	targetURL := flag.String("target", "", "geoserved base URL (empty = drive the engine in-process)")
	seed := flag.Int64("seed", 1, "world seed (in-process mode)")
	scale := flag.Float64("scale", 0.02, "world scale (in-process mode)")
	workers := flag.Int("workers", 0, "pipeline workers for the in-process build (0 = one per CPU)")
	mapper := flag.String("mapper", "ixmapper", "mapper to query")
	concurrency := flag.Int("concurrency", 4, "closed-loop workers")
	duration := flag.Duration("duration", 5*time.Second, "measurement duration")
	mixName := flag.String("mix", "uniform", "address mix: uniform, zipf or unmappable")
	zipfTheta := flag.Float64("zipftheta", 1.2, "Zipf exponent for -mix zipf")
	loadSeed := flag.Int64("loadseed", 1, "seed for the address draw streams")
	jsonOut := flag.String("json", "", "write a bench.sh-shaped JSON snapshot to this file ('-' = stdout)")
	quiet := flag.Bool("quiet", false, "suppress build progress")
	flag.Parse()

	mix, err := parseMix(*mixName)
	if err != nil {
		log.Fatalf("geoload: %v", err)
	}
	if *concurrency < 1 {
		log.Fatal("geoload: -concurrency must be >= 1")
	}

	var (
		tgt        target
		prefixes   []uint32
		worldScale = *scale
	)
	if *targetURL == "" {
		cfg := core.Config{Seed: *seed, Scale: *scale, Workers: *workers}
		if !*quiet {
			cfg.Progress = os.Stderr
		}
		p, err := core.Run(cfg)
		if err != nil {
			log.Fatalf("geoload: pipeline: %v", err)
		}
		snap, err := p.Serve()
		if err != nil {
			log.Fatalf("geoload: %v", err)
		}
		engine := geoserve.NewEngine(snap)
		idx, ok := snap.MapperIndex(*mapper)
		if !ok {
			log.Fatalf("geoload: unknown mapper %q (have %v)", *mapper, snap.Mappers())
		}
		prefixes = snap.Prefixes()
		tgt = &inProcess{engine: engine, mapper: idx}
	} else {
		client := &http.Client{Transport: &http.Transport{
			MaxIdleConns:        *concurrency * 2,
			MaxIdleConnsPerHost: *concurrency * 2,
		}}
		prefixes, err = fetchPrefixes(client, *targetURL)
		if err != nil {
			log.Fatalf("geoload: fetching /v1/prefixes: %v", err)
		}
		// Record the scale of the world the server actually serves,
		// not the unused in-process flag, so -json snapshots compare
		// like-for-like.
		worldScale, err = fetchBuildScale(client, *targetURL)
		if err != nil {
			log.Fatalf("geoload: fetching /healthz: %v", err)
		}
		tgt = &overHTTP{client: client, base: *targetURL, mapper: *mapper}
	}
	if len(prefixes) == 0 {
		log.Fatal("geoload: empty /24 index")
	}

	res := run(tgt, prefixes, mix, *zipfTheta, *loadSeed, *concurrency, *duration)
	fmt.Print(res.format(tgt.mode(), *mapper, mix, *concurrency, *duration))
	if *jsonOut != "" {
		if err := res.writeJSON(*jsonOut, tgt.mode(), *mapper, mix, *concurrency, worldScale); err != nil {
			log.Fatalf("geoload: %v", err)
		}
	}
	if res.errors > 0 {
		os.Exit(1)
	}
}

func fetchPrefixes(client *http.Client, base string) ([]uint32, error) {
	resp, err := client.Get(base + "/v1/prefixes")
	if err != nil {
		return nil, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return nil, fmt.Errorf("status %d", resp.StatusCode)
	}
	var body struct {
		Prefixes []string `json:"prefixes"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return nil, err
	}
	out := make([]uint32, 0, len(body.Prefixes))
	for _, p := range body.Prefixes {
		if n := len(p); n > 3 && p[n-3:] == "/24" {
			p = p[:n-3]
		}
		ip, err := geoserve.ParseIPv4(p)
		if err != nil {
			return nil, err
		}
		out = append(out, ip)
	}
	return out, nil
}

// fetchBuildScale reads the served snapshot's world scale from
// /healthz.
func fetchBuildScale(client *http.Client, base string) (float64, error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	var body struct {
		Snapshot struct {
			Build struct {
				Scale float64 `json:"scale"`
			} `json:"build"`
		} `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, err
	}
	return body.Snapshot.Build.Scale, nil
}

type result struct {
	lookups uint64
	found   uint64
	errors  uint64
	elapsed time.Duration
	lat     *geoserve.Histogram
}

// run executes the closed loop: each worker draws from its own named
// split of the load seed, so a (loadseed, concurrency) pair replays
// the same address sequences against any target.
func run(tgt target, prefixes []uint32, mix mixKind, theta float64, loadSeed int64, concurrency int, d time.Duration) *result {
	root := rng.New(loadSeed)
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		lookups atomic.Uint64
		found   atomic.Uint64
		errs    atomic.Uint64
	)
	hists := make([]*geoserve.Histogram, concurrency)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		hists[w] = &geoserve.Histogram{}
		gen := newAddrGen(mix, prefixes, theta, root.SplitN("worker", w))
		wg.Add(1)
		go func(gen *addrGen, hist *geoserve.Histogram) {
			defer wg.Done()
			var n, nf, ne uint64
			for !stop.Load() {
				ip := gen.next()
				t0 := time.Now()
				ok, err := tgt.lookup(ip)
				hist.Record(time.Since(t0))
				n++
				if err != nil {
					ne++
					continue
				}
				if ok {
					nf++
				}
			}
			lookups.Add(n)
			found.Add(nf)
			errs.Add(ne)
		}(gen, hists[w])
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	merged := &geoserve.Histogram{}
	for _, h := range hists {
		merged.Merge(h)
	}
	return &result{
		lookups: lookups.Load(),
		found:   found.Load(),
		errors:  errs.Load(),
		elapsed: elapsed,
		lat:     merged,
	}
}

func (r *result) qps() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.lookups) / r.elapsed.Seconds()
}

func (r *result) format(mode, mapper string, mix mixKind, concurrency int, d time.Duration) string {
	foundPct := 0.0
	if r.lookups > 0 {
		foundPct = 100 * float64(r.found) / float64(r.lookups)
	}
	return fmt.Sprintf(
		"geoload: mode=%s mix=%s mapper=%s concurrency=%d duration=%s\n"+
			"  lookups   %d (%.0f/s)\n"+
			"  found     %.1f%%\n"+
			"  latency   p50=%s p90=%s p99=%s\n"+
			"  errors    %d\n",
		mode, mix, mapper, concurrency, d,
		r.lookups, r.qps(), foundPct,
		r.lat.Quantile(0.50), r.lat.Quantile(0.90), r.lat.Quantile(0.99),
		r.errors)
}

// writeJSON emits the scripts/bench.sh snapshot shape so cmd/benchcmp
// can compare geoload runs.
func (r *result) writeJSON(path, mode, mapper string, mix mixKind, concurrency int, scale float64) error {
	name := fmt.Sprintf("GeoloadLookup/%s/%s/%s/c%d", mode, mix, mapper, concurrency)
	nsPerOp := 0.0
	if r.lookups > 0 {
		nsPerOp = float64(r.elapsed.Nanoseconds()) * float64(concurrency) / float64(r.lookups)
	}
	keys := map[string]any{
		"date":        time.Now().UTC().Format(time.RFC3339),
		"gomaxprocs":  runtime.GOMAXPROCS(0),
		"num_cpu":     runtime.NumCPU(),
		"bench_scale": scale,
		"geoload": map[string]any{
			"mode": mode, "mix": mix.String(), "mapper": mapper,
			"concurrency": concurrency, "lookups": r.lookups,
			"qps": r.qps(), "errors": r.errors,
			"latency_p50_ns": int64(r.lat.Quantile(0.50)),
			"latency_p90_ns": int64(r.lat.Quantile(0.90)),
			"latency_p99_ns": int64(r.lat.Quantile(0.99)),
		},
		"benchmarks": []map[string]any{{
			"name":       name,
			"iterations": r.lookups,
			"ns_per_op":  nsPerOp,
		}},
	}
	// Stable key order for human diffing.
	var b []byte
	var err error
	if b, err = marshalOrdered(keys); err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}

// marshalOrdered renders the snapshot with the conventional field
// order (date/cpu counts first, benchmarks last), matching bench.sh.
func marshalOrdered(m map[string]any) ([]byte, error) {
	order := []string{"date", "gomaxprocs", "num_cpu", "bench_scale", "geoload", "benchmarks"}
	var buf []byte
	buf = append(buf, '{', '\n')
	first := true
	emit := func(k string) error {
		v, ok := m[k]
		if !ok {
			return nil
		}
		if !first {
			buf = append(buf, ',', '\n')
		}
		first = false
		kb, _ := json.Marshal(k)
		vb, err := json.MarshalIndent(v, "  ", "  ")
		if err != nil {
			return err
		}
		buf = append(buf, ' ', ' ')
		buf = append(buf, kb...)
		buf = append(buf, ':', ' ')
		buf = append(buf, vb...)
		return nil
	}
	for _, k := range order {
		if err := emit(k); err != nil {
			return nil, err
		}
	}
	// Any extra keys, sorted, for forward compatibility.
	var extra []string
	for k := range m {
		seen := false
		for _, o := range order {
			if k == o {
				seen = true
				break
			}
		}
		if !seen {
			extra = append(extra, k)
		}
	}
	sort.Strings(extra)
	for _, k := range extra {
		if err := emit(k); err != nil {
			return nil, err
		}
	}
	buf = append(buf, '\n', '}', '\n')
	return buf, nil
}
