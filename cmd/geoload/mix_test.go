package main

// Table-driven pins for the address-mix generators: the exact first
// draws and the drawn distribution per (mix, seed) pair. The rng
// package's generator is bit-exact across platforms, so these
// constants hold everywhere — a load report with a given -loadseed is
// reproducible address for address.

import (
	"testing"

	"geonet/internal/rng"
)

func testPrefixes() []uint32 {
	out := make([]uint32, 64)
	for i := range out {
		out[i] = 0x0A000000 + uint32(i)*256
	}
	return out
}

func TestParseMix(t *testing.T) {
	for _, name := range []string{"uniform", "zipf", "unmappable"} {
		m, err := parseMix(name)
		if err != nil || m.String() != name {
			t.Errorf("parseMix(%q) = %v, %v", name, m, err)
		}
	}
	for _, bad := range []string{"", "Uniform", "zipf ", "pareto"} {
		if _, err := parseMix(bad); err == nil {
			t.Errorf("parseMix(%q) should fail", bad)
		}
	}
}

func TestDrawDistributionPinned(t *testing.T) {
	ps := testPrefixes()
	const n = 20000
	cases := []struct {
		name  string
		mix   mixKind
		seed  int64
		theta float64
		// first pins the first four drawn addresses exactly; p0..p2
		// the number of draws landing in the first three /24s; classE
		// the guaranteed-miss draws.
		first  [4]uint32
		p0, p1 int
		p2     int
		classE int
	}{
		{name: "uniform/seed1", mix: mixUniform, seed: 1,
			first: [4]uint32{0x0a003851, 0x0a001faf, 0x0a0010f0, 0x0a000a37}, p0: 308, p1: 336, p2: 304, classE: 0},
		{name: "uniform/seed2", mix: mixUniform, seed: 2,
			first: [4]uint32{0x0a000f84, 0x0a003606, 0x0a000144, 0x0a0028eb}, p0: 315, p1: 291, p2: 321, classE: 0},
		{name: "zipf1.2/seed1", mix: mixZipf, seed: 1, theta: 1.2,
			first: [4]uint32{0x0a000451, 0x0a0000af, 0x0a0002f0, 0x0a000037}, p0: 5790, p1: 2566, p2: 1567, classE: 0},
		{name: "zipf2.0/seed7", mix: mixZipf, seed: 7, theta: 2.0,
			first: [4]uint32{0x0a000941, 0x0a000316, 0x0a0000ee, 0x0a0000bb}, p0: 12140, p1: 3152, p2: 1378, classE: 0},
		{name: "unmappable/seed1", mix: mixUnmappable, seed: 1,
			first: [4]uint32{0xf0409751, 0x0a002fd0, 0x0a000a37, 0x0a00372b}, p0: 144, p1: 172, p2: 131, classE: 10025},
		{name: "unmappable/seed3", mix: mixUnmappable, seed: 3,
			first: [4]uint32{0xf0564dab, 0xf0bd2315, 0xf0b0d70d, 0x0a001041}, p0: 171, p1: 123, p2: 148, classE: 10047},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			s := rng.New(c.seed).SplitN("worker", 0)
			draws := draw(c.mix, ps, c.theta, s, n)
			for i, want := range c.first {
				if draws[i] != want {
					t.Errorf("draw[%d] = %#08x, want %#08x", i, draws[i], want)
				}
			}
			counts := map[uint32]int{}
			classE := 0
			for _, ip := range draws {
				if ip >= 0xF0000000 {
					classE++
					continue
				}
				base := ip &^ 0xff
				counts[base]++
				if base < ps[0] || base > ps[len(ps)-1] {
					t.Fatalf("draw %#08x outside the prefix index", ip)
				}
			}
			if got := [4]int{counts[ps[0]], counts[ps[1]], counts[ps[2]], classE}; got != [4]int{c.p0, c.p1, c.p2, c.classE} {
				t.Errorf("distribution %v, want [%d %d %d %d]", got, c.p0, c.p1, c.p2, c.classE)
			}
			// Shape sanity on top of the exact pins.
			switch c.mix {
			case mixZipf:
				if counts[ps[0]] <= counts[ps[1]] || counts[ps[1]] <= counts[ps[2]] {
					t.Errorf("zipf head not rank-skewed: %d, %d, %d", counts[ps[0]], counts[ps[1]], counts[ps[2]])
				}
			case mixUnmappable:
				if classE < n*2/5 || classE > n*3/5 {
					t.Errorf("unmappable fraction %d/%d far from half", classE, n)
				}
			case mixUniform:
				for base, got := range counts {
					if want := n / len(ps); got < want/2 || got > want*2 {
						t.Errorf("uniform count for %#08x = %d, want ~%d", base, got, want)
					}
				}
			}
		})
	}
}

// TestDrawReplayAndWorkerIndependence pins the replay property run()
// relies on: the same (loadseed, worker) split replays the identical
// address sequence, and distinct workers draw distinct sequences.
func TestDrawReplayAndWorkerIndependence(t *testing.T) {
	ps := testPrefixes()
	root := rng.New(1)
	a := draw(mixZipf, ps, 1.2, root.SplitN("worker", 0), 1000)
	b := draw(mixZipf, ps, 1.2, rng.New(1).SplitN("worker", 0), 1000)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("replay diverges at %d: %#08x != %#08x", i, a[i], b[i])
		}
	}
	c := draw(mixZipf, ps, 1.2, rng.New(1).SplitN("worker", 1), 1000)
	same := 0
	for i := range a {
		if a[i] == c[i] {
			same++
		}
	}
	if same > len(a)/2 {
		t.Fatalf("worker streams correlate: %d/%d equal draws", same, len(a))
	}
}
