package main

import (
	"encoding/json"
	"fmt"
	"net/http"
	"os"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"geonet/internal/geoserve"
	"geonet/internal/rng"
)

// Multi-replica mode (-target-list): drive a whole replication fleet
// at once. Each closed-loop worker is pinned to a home replica
// (spreading concurrency round-robin over the fleet) and fails over to
// the next replica when its home errors, so the run keeps measuring
// through ejections and restarts. The report breaks QPS, errors,
// retries and the observed snapshot epoch of every answer (from the
// X-Geo-Epoch response header) down per replica — a fleet serving one
// epoch shows a single epoch bucket everywhere; a mid-run publish
// shows the swap front moving replica by replica.

// runMultiMode is the -target-list entry point: parse the fleet,
// bootstrap the address mix off the first replica that answers, run
// the closed loop, report.
func runMultiMode(targetList, mapper string, mix mixKind, theta float64, loadSeed int64, concurrency int, d time.Duration, jsonOut string) {
	var urls []string
	for _, u := range strings.Split(targetList, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		fatalf("geoload: -target-list names no replicas")
	}
	client := &http.Client{Transport: &http.Transport{
		MaxIdleConns:        concurrency * 2,
		MaxIdleConnsPerHost: concurrency * 2,
	}}
	// The /24 index and world scale come from whichever replica
	// answers first — every replica at one epoch serves the same index.
	var (
		prefixes   []uint32
		worldScale float64
		lastErr    error
	)
	for _, u := range urls {
		if prefixes, lastErr = fetchPrefixes(client, u); lastErr == nil {
			worldScale, _ = fetchBuildScale(client, u)
			break
		}
	}
	if lastErr != nil {
		fatalf("geoload: no replica answered /v1/prefixes: %v", lastErr)
	}
	if len(prefixes) == 0 {
		fatalf("geoload: empty /24 index")
	}

	res := runMulti(client, urls, mapper, prefixes, mix, theta, loadSeed, concurrency, d)
	fmt.Print(res.format(mapper, mix, concurrency, d))
	if jsonOut != "" {
		if err := res.writeJSON(jsonOut, mapper, mix, concurrency, worldScale); err != nil {
			fatalf("geoload: %v", err)
		}
	}
	if res.errors > 0 {
		os.Exit(1)
	}
}

func fatalf(format string, args ...any) {
	fmt.Fprintf(os.Stderr, format+"\n", args...)
	os.Exit(1)
}

// replicaStat is one replica's share of a multi-target run.
type replicaStat struct {
	URL     string  `json:"url"`
	Lookups uint64  `json:"lookups"`
	QPS     float64 `json:"qps"`
	Found   uint64  `json:"found"`
	Errors  uint64  `json:"errors"`
	// Retries counts lookups that failed here and were retried on the
	// next replica; Throttled counts 429/503 answers whose Retry-After
	// the worker honored before moving on.
	Retries   uint64 `json:"retries"`
	Throttled uint64 `json:"throttled"`
	// LatencyP50Ns/LatencyP99Ns are this replica's own answer-latency
	// quantiles — a wedged or overloaded member shows up as a fat p99
	// here even when the fleet-wide histogram still looks healthy.
	LatencyP50Ns int64 `json:"latency_p50_ns"`
	LatencyP99Ns int64 `json:"latency_p99_ns"`
	// Epochs histograms the X-Geo-Epoch header over this replica's
	// answers ("none" when the header is absent — e.g. a plain
	// geoserved rather than a replica node).
	Epochs map[string]uint64 `json:"epochs"`
	// LatencyHistCounts is this replica's full answer-latency
	// distribution — counts per export bucket, against the run-level
	// latency_hist_bounds_ns upper bounds (last bucket is overflow).
	LatencyHistCounts []uint64 `json:"latency_hist_counts"`
}

// replicaCell is the hot-path accumulator behind a replicaStat.
type replicaCell struct {
	lookups   atomic.Uint64
	found     atomic.Uint64
	errors    atomic.Uint64
	retries   atomic.Uint64
	throttled atomic.Uint64
	lat       geoserve.Histogram
	mu        sync.Mutex
	epochs    map[string]uint64
}

func (c *replicaCell) noteEpoch(epoch string) {
	if epoch == "" {
		epoch = "none"
	}
	c.mu.Lock()
	c.epochs[epoch]++
	c.mu.Unlock()
}

type multiResult struct {
	lookups uint64
	found   uint64
	errors  uint64
	retries uint64
	elapsed time.Duration
	lat     *geoserve.Histogram
	cells   []*replicaCell
	urls    []string
}

// maxRetryAfter caps how long a worker honors a Retry-After hint, so a
// misconfigured server can't park the whole run.
const maxRetryAfter = 2 * time.Second

// parseRetryAfter reads a Retry-After header in either RFC 9110 form —
// delay-seconds or an HTTP-date — against the given current time,
// capped at maxRetryAfter. Zero means no usable hint (absent,
// malformed, or already in the past).
func parseRetryAfter(v string, now time.Time) time.Duration {
	if v == "" {
		return 0
	}
	var d time.Duration
	if secs, err := strconv.Atoi(v); err == nil {
		if secs <= 0 {
			return 0
		}
		d = time.Duration(secs) * time.Second
	} else if at, err := http.ParseTime(v); err == nil {
		if d = at.Sub(now); d <= 0 {
			return 0
		}
	} else {
		return 0
	}
	return min(d, maxRetryAfter)
}

// lookupReplica issues one lookup and reports the answer, the epoch
// header that tagged it, and — on a 429/503 that carries Retry-After —
// how long the server asked the client to back off.
func lookupReplica(client *http.Client, base, mapper string, ip uint32) (found bool, epoch string, retryAfter time.Duration, err error) {
	resp, err := client.Get(base + "/v1/locate?ip=" + geoserve.FormatIPv4(ip) + "&mapper=" + mapper)
	if err != nil {
		return false, "", 0, err
	}
	defer resp.Body.Close()
	epoch = resp.Header.Get("X-Geo-Epoch")
	if resp.StatusCode != http.StatusOK {
		if resp.StatusCode == http.StatusTooManyRequests || resp.StatusCode == http.StatusServiceUnavailable {
			retryAfter = parseRetryAfter(resp.Header.Get("Retry-After"), time.Now())
		}
		return false, epoch, retryAfter, fmt.Errorf("status %d", resp.StatusCode)
	}
	var body struct {
		Found bool `json:"found"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return false, epoch, 0, err
	}
	return body.Found, epoch, 0, nil
}

// runMulti executes the closed loop over the fleet. Worker w's home
// replica is urls[w % len(urls)]; a failed lookup retries once on the
// following replica before counting as an error.
func runMulti(client *http.Client, urls []string, mapper string, prefixes []uint32, mix mixKind, theta float64, loadSeed int64, concurrency int, d time.Duration) *multiResult {
	root := rng.New(loadSeed)
	cells := make([]*replicaCell, len(urls))
	for i := range cells {
		cells[i] = &replicaCell{epochs: map[string]uint64{}}
	}
	var (
		wg      sync.WaitGroup
		stop    atomic.Bool
		lookups atomic.Uint64
		found   atomic.Uint64
		errs    atomic.Uint64
		retries atomic.Uint64
	)
	hists := make([]*geoserve.Histogram, concurrency)
	start := time.Now()
	for w := 0; w < concurrency; w++ {
		hists[w] = &geoserve.Histogram{}
		gen := newAddrGen(mix, prefixes, theta, root.SplitN("worker", w))
		home := w % len(urls)
		wg.Add(1)
		go func(gen *addrGen, hist *geoserve.Histogram, home int) {
			defer wg.Done()
			var n, nf, ne, nr uint64
			for !stop.Load() {
				ip := gen.next()
				t0 := time.Now()
				target := home
				ok, epoch, retryAfter, err := lookupReplica(client, urls[target], mapper, ip)
				cells[target].lookups.Add(1)
				cells[target].lat.Record(time.Since(t0))
				if err != nil && retryAfter > 0 {
					// The replica asked for breathing room (429/503 with
					// Retry-After): honor it before touching the fleet
					// again, instead of converting overload into a
					// hammering loop.
					cells[target].throttled.Add(1)
					time.Sleep(retryAfter)
				}
				if err != nil && len(urls) > 1 {
					// Fail over once to the next replica in the ring.
					cells[target].errors.Add(1)
					cells[target].retries.Add(1)
					nr++
					target = (home + 1) % len(urls)
					t1 := time.Now()
					ok, epoch, retryAfter, err = lookupReplica(client, urls[target], mapper, ip)
					cells[target].lookups.Add(1)
					cells[target].lat.Record(time.Since(t1))
					if err != nil && retryAfter > 0 {
						cells[target].throttled.Add(1)
						time.Sleep(retryAfter)
					}
				}
				hist.Record(time.Since(t0))
				n++
				if err != nil {
					cells[target].errors.Add(1)
					ne++
					continue
				}
				cells[target].noteEpoch(epoch)
				if ok {
					cells[target].found.Add(1)
					nf++
				}
			}
			lookups.Add(n)
			found.Add(nf)
			errs.Add(ne)
			retries.Add(nr)
		}(gen, hists[w], home)
	}
	time.Sleep(d)
	stop.Store(true)
	wg.Wait()
	elapsed := time.Since(start)

	merged := &geoserve.Histogram{}
	for _, h := range hists {
		merged.Merge(h)
	}
	return &multiResult{
		lookups: lookups.Load(),
		found:   found.Load(),
		errors:  errs.Load(),
		retries: retries.Load(),
		elapsed: elapsed,
		lat:     merged,
		cells:   cells,
		urls:    urls,
	}
}

// replicaStats freezes the per-replica accumulators into report rows.
func (r *multiResult) replicaStats() []replicaStat {
	out := make([]replicaStat, len(r.cells))
	seconds := r.elapsed.Seconds()
	for i, c := range r.cells {
		qps := 0.0
		if seconds > 0 {
			qps = float64(c.lookups.Load()) / seconds
		}
		c.mu.Lock()
		epochs := make(map[string]uint64, len(c.epochs))
		for k, v := range c.epochs {
			epochs[k] = v
		}
		c.mu.Unlock()
		out[i] = replicaStat{
			URL:               r.urls[i],
			Lookups:           c.lookups.Load(),
			QPS:               qps,
			Found:             c.found.Load(),
			Errors:            c.errors.Load(),
			Retries:           c.retries.Load(),
			Throttled:         c.throttled.Load(),
			LatencyP50Ns:      int64(c.lat.Quantile(0.50)),
			LatencyP99Ns:      int64(c.lat.Quantile(0.99)),
			Epochs:            epochs,
			LatencyHistCounts: c.lat.Export(),
		}
	}
	return out
}

func (r *multiResult) qps() float64 {
	if r.elapsed <= 0 {
		return 0
	}
	return float64(r.lookups) / r.elapsed.Seconds()
}

func (r *multiResult) format(mapper string, mix mixKind, concurrency int, d time.Duration) string {
	foundPct := 0.0
	if r.lookups > 0 {
		foundPct = 100 * float64(r.found) / float64(r.lookups)
	}
	s := fmt.Sprintf(
		"geoload: mode=multi replicas=%d mix=%s mapper=%s concurrency=%d duration=%s\n"+
			"  lookups   %d (%.0f/s)\n"+
			"  found     %.1f%%\n"+
			"  latency   p50=%s p90=%s p99=%s\n"+
			"  hist      %s\n"+
			"  errors    %d (retried %d)\n",
		len(r.urls), mix, mapper, concurrency, d,
		r.lookups, r.qps(), foundPct,
		r.lat.Quantile(0.50), r.lat.Quantile(0.90), r.lat.Quantile(0.99),
		formatHist(r.lat),
		r.errors, r.retries)
	for i, rs := range r.replicaStats() {
		epochs := make([]string, 0, len(rs.Epochs))
		for e := range rs.Epochs {
			epochs = append(epochs, e)
		}
		sort.Strings(epochs)
		ep := ""
		for i, e := range epochs {
			if i > 0 {
				ep += " "
			}
			ep += fmt.Sprintf("epoch %s×%d", e, rs.Epochs[e])
		}
		s += fmt.Sprintf("  replica %-28s %d lookups (%.0f/s) p50=%s p99=%s errors=%d retries=%d throttled=%d %s\n"+
			"          %-28s hist %s\n",
			rs.URL, rs.Lookups, rs.QPS,
			time.Duration(rs.LatencyP50Ns), time.Duration(rs.LatencyP99Ns),
			rs.Errors, rs.Retries, rs.Throttled, ep,
			"", formatHist(&r.cells[i].lat))
	}
	return s
}

// writeJSON emits the scripts/bench.sh snapshot shape with a
// per-replica breakdown under the geoload key.
func (r *multiResult) writeJSON(path, mapper string, mix mixKind, concurrency int, scale float64) error {
	name := fmt.Sprintf("GeoloadLookup/multi/%s/%s/c%d", mix, mapper, concurrency)
	nsPerOp := 0.0
	if r.lookups > 0 {
		nsPerOp = float64(r.elapsed.Nanoseconds()) * float64(concurrency) / float64(r.lookups)
	}
	keys := map[string]any{
		"date":        time.Now().UTC().Format(time.RFC3339),
		"gomaxprocs":  runtime.GOMAXPROCS(0),
		"num_cpu":     runtime.NumCPU(),
		"bench_scale": scale,
		"geoload": map[string]any{
			"mode": "multi", "mix": mix.String(), "mapper": mapper,
			"concurrency": concurrency, "lookups": r.lookups,
			"qps": r.qps(), "errors": r.errors, "retries": r.retries,
			"latency_p50_ns":         int64(r.lat.Quantile(0.50)),
			"latency_p90_ns":         int64(r.lat.Quantile(0.90)),
			"latency_p99_ns":         int64(r.lat.Quantile(0.99)),
			"latency_hist_bounds_ns": geoserve.HistogramBounds(),
			"latency_hist_counts":    r.lat.Export(),
			"replicas":               r.replicaStats(),
		},
		"benchmarks": []map[string]any{{
			"name":       name,
			"iterations": r.lookups,
			"ns_per_op":  nsPerOp,
		}},
	}
	b, err := marshalOrdered(keys)
	if err != nil {
		return err
	}
	if path == "-" {
		_, err = os.Stdout.Write(b)
		return err
	}
	return os.WriteFile(path, b, 0o644)
}
