package main

// Binary-wire driving modes for geoload: -wire bin posts one
// length-prefixed batch per round trip to /v1/locate/bin; -wire
// stream holds a full-duplex /v1/locate/stream session per connection
// and ping-pongs address chunks against answer frames. Both decode
// with the shared geoserve wire reader and reuse request/response
// scratch through pools, so the generator itself stays allocation-
// quiet and the measured rate is the server's.

import (
	"bytes"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"sync"

	"geonet/internal/geoserve"
)

// batchTarget is a target that answers many addresses per round trip.
// The closed loop issues whole batches and attributes the mean
// per-lookup latency to each address in the batch.
type batchTarget interface {
	target
	// lookupBatch answers ips and reports how many were found.
	lookupBatch(ips []uint32) (found int, err error)
}

// fetchMapperID resolves a mapper name to its wire id: the mapper's
// index in the served snapshot's mapper list (from /healthz).
func fetchMapperID(client *http.Client, base, mapper string) (uint16, error) {
	resp, err := client.Get(base + "/healthz")
	if err != nil {
		return 0, err
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	var body struct {
		Snapshot struct {
			Mappers []string `json:"mappers"`
		} `json:"snapshot"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		return 0, err
	}
	if mapper == "" {
		return geoserve.WireMapperDefault, nil
	}
	for i, name := range body.Snapshot.Mappers {
		if name == mapper {
			return uint16(i), nil
		}
	}
	return 0, fmt.Errorf("unknown mapper %q (server has %v)", mapper, body.Snapshot.Mappers)
}

// binScratch is one worker's reusable request/answer buffers.
type binScratch struct {
	req     []byte
	answers []geoserve.Answer
}

// overHTTPBin drives POST /v1/locate/bin: one binary batch per round
// trip.
type overHTTPBin struct {
	client *http.Client
	base   string
	mapper uint16
	pool   sync.Pool
}

func newOverHTTPBin(client *http.Client, base string, mapper uint16) *overHTTPBin {
	t := &overHTTPBin{client: client, base: base, mapper: mapper}
	t.pool.New = func() any { return &binScratch{} }
	return t
}

func (t *overHTTPBin) mode() string { return "http-bin" }

func (t *overHTTPBin) lookup(ip uint32) (bool, error) {
	n, err := t.lookupBatch([]uint32{ip})
	return n > 0, err
}

func (t *overHTTPBin) lookupBatch(ips []uint32) (int, error) {
	sc := t.pool.Get().(*binScratch)
	defer t.pool.Put(sc)
	sc.req = geoserve.AppendWireBatchRequest(sc.req[:0], t.mapper, ips)
	resp, err := t.client.Post(t.base+"/v1/locate/bin", geoserve.WireContentType, bytes.NewReader(sc.req))
	if err != nil {
		return 0, err
	}
	defer func() {
		io.Copy(io.Discard, resp.Body)
		resp.Body.Close()
	}()
	if resp.StatusCode != http.StatusOK {
		return 0, fmt.Errorf("status %d", resp.StatusCode)
	}
	rd, err := geoserve.NewWireReader(resp.Body)
	if err != nil {
		return 0, err
	}
	answers, _, err := rd.Next(sc.answers[:0])
	sc.answers = answers[:0]
	if err != nil {
		return 0, err
	}
	if len(answers) != len(ips) {
		return 0, fmt.Errorf("%d answers for %d addresses", len(answers), len(ips))
	}
	found := 0
	for i := range answers {
		if answers[i].Found {
			found++
		}
	}
	return found, nil
}

// streamSession is one live /v1/locate/stream connection: the chunk
// writer feeding the request body and the frame reader over the
// response.
type streamSession struct {
	w       io.WriteCloser
	rd      *geoserve.WireReader
	resp    *http.Response
	chunk   []byte
	answers []geoserve.Answer
}

func (s *streamSession) close() {
	// Best-effort terminator so the server ends the stream cleanly.
	s.w.Write(geoserve.AppendWireStreamEnd(nil))
	s.w.Close()
	io.Copy(io.Discard, s.resp.Body)
	s.resp.Body.Close()
}

// overHTTPStream drives POST /v1/locate/stream: workers check
// long-lived full-duplex sessions out of a pool and ping-pong one
// chunk per batch. The stream endpoint is endpoint-direct (the
// replication router buffers request bodies), so point -target at a
// geoserved, not a router.
type overHTTPStream struct {
	client *http.Client
	base   string
	mapper uint16
	pool   sync.Pool // *streamSession, dialed lazily
}

func newOverHTTPStream(client *http.Client, base string, mapper uint16) *overHTTPStream {
	return &overHTTPStream{client: client, base: base, mapper: mapper}
}

func (t *overHTTPStream) mode() string { return "http-stream" }

func (t *overHTTPStream) dial() (*streamSession, error) {
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", t.base+"/v1/locate/stream",
		io.MultiReader(bytes.NewReader(geoserve.AppendWireStreamHeader(nil, t.mapper)), pr))
	if err != nil {
		pw.Close()
		return nil, err
	}
	req.Header.Set("Content-Type", geoserve.WireContentType)
	resp, err := t.client.Do(req)
	if err != nil {
		pw.Close()
		return nil, err
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		pw.Close()
		return nil, fmt.Errorf("stream status %d: %s", resp.StatusCode, bytes.TrimSpace(body))
	}
	rd, err := geoserve.NewWireReader(resp.Body)
	if err != nil {
		resp.Body.Close()
		pw.Close()
		return nil, err
	}
	return &streamSession{w: pw, rd: rd, resp: resp}, nil
}

func (t *overHTTPStream) lookup(ip uint32) (bool, error) {
	n, err := t.lookupBatch([]uint32{ip})
	return n > 0, err
}

func (t *overHTTPStream) lookupBatch(ips []uint32) (int, error) {
	s, _ := t.pool.Get().(*streamSession)
	if s == nil {
		var err error
		if s, err = t.dial(); err != nil {
			return 0, err
		}
	}
	s.chunk = geoserve.AppendWireChunk(s.chunk[:0], ips)
	if _, err := s.w.Write(s.chunk); err != nil {
		s.close()
		return 0, err
	}
	answers, _, err := s.rd.Next(s.answers[:0])
	s.answers = answers[:0]
	if err != nil {
		// The session is dead (error frame or transport failure); the
		// next batch dials fresh.
		s.close()
		return 0, err
	}
	if len(answers) != len(ips) {
		s.close()
		return 0, fmt.Errorf("%d answers for %d addresses", len(answers), len(ips))
	}
	found := 0
	for i := range answers {
		if answers[i].Found {
			found++
		}
	}
	t.pool.Put(s)
	return found, nil
}
