package main

import (
	"net/http"
	"testing"
	"time"
)

func TestParseRetryAfter(t *testing.T) {
	now := time.Date(2026, 8, 8, 12, 0, 0, 0, time.UTC)
	httpDate := func(d time.Duration) string {
		return now.Add(d).UTC().Format(http.TimeFormat)
	}
	cases := []struct {
		name string
		v    string
		want time.Duration
	}{
		{"absent", "", 0},
		{"delay seconds", "1", time.Second},
		{"delay seconds capped", "120", maxRetryAfter},
		{"zero seconds", "0", 0},
		{"negative seconds", "-3", 0},
		{"http date ahead", httpDate(1 * time.Second), time.Second},
		{"http date capped", httpDate(90 * time.Second), maxRetryAfter},
		{"http date in the past", httpDate(-10 * time.Second), 0},
		{"http date now", httpDate(0), 0},
		{"rfc850 date", now.Add(time.Second).UTC().Format(time.RFC850), time.Second},
		{"asctime date", now.Add(time.Second).UTC().Format(time.ANSIC), time.Second},
		{"garbage", "soon", 0},
		{"fractional seconds", "1.5", 0},
	}
	for _, tc := range cases {
		if got := parseRetryAfter(tc.v, now); got != tc.want {
			t.Errorf("%s: parseRetryAfter(%q) = %v, want %v", tc.name, tc.v, got, tc.want)
		}
	}
}
