package main

// The address mixes geoload drives: extracted from main so the draw
// logic is a plain testable function — mix_test.go pins the exact
// per-seed address sequences and the drawn distributions, so load
// reports are reproducible run to run and machine to machine (the rng
// package's generator is bit-exact everywhere).

import (
	"fmt"

	"geonet/internal/rng"
)

type mixKind int

const (
	mixUniform mixKind = iota
	mixZipf
	mixUnmappable
)

func parseMix(s string) (mixKind, error) {
	switch s {
	case "uniform":
		return mixUniform, nil
	case "zipf":
		return mixZipf, nil
	case "unmappable":
		return mixUnmappable, nil
	}
	return 0, fmt.Errorf("unknown mix %q (want uniform, zipf or unmappable)", s)
}

func (m mixKind) String() string {
	return [...]string{"uniform", "zipf", "unmappable"}[m]
}

// addrGen draws addresses for one worker, deterministically from its
// own stream:
//
//	uniform     addresses uniform over the allocated /24 index
//	zipf        /24s drawn rank-Zipf (hot-prefix skew), uniform host byte
//	unmappable  half uniform, half guaranteed-miss (class E) addresses
type addrGen struct {
	mix      mixKind
	prefixes []uint32
	s        *rng.Stream
	zipf     func() int
}

func newAddrGen(mix mixKind, prefixes []uint32, theta float64, s *rng.Stream) *addrGen {
	g := &addrGen{mix: mix, prefixes: prefixes, s: s}
	if mix == mixZipf {
		g.zipf = s.Zipf(theta, len(prefixes))
	}
	return g
}

func (g *addrGen) next() uint32 {
	switch g.mix {
	case mixZipf:
		return g.prefixes[g.zipf()-1] | uint32(g.s.Intn(256))
	case mixUnmappable:
		if g.s.Bool(0.5) {
			// Class E is never allocated by netgen: a guaranteed miss.
			return 0xF0000000 | uint32(g.s.Intn(1<<24))
		}
		fallthrough
	default:
		return g.prefixes[g.s.Intn(len(g.prefixes))] | uint32(g.s.Intn(256))
	}
}

// draw returns the first n addresses a worker with the given stream
// would issue — the testable surface mix_test.go pins.
func draw(mix mixKind, prefixes []uint32, theta float64, s *rng.Stream, n int) []uint32 {
	g := newAddrGen(mix, prefixes, theta, s)
	out := make([]uint32, n)
	for i := range out {
		out[i] = g.next()
	}
	return out
}
