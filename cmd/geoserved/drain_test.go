package main

import (
	"context"
	"fmt"
	"io"
	"net"
	"net/http"
	"testing"
	"time"
)

// TestDrainCompletesUnderStalledClient pins the drain guarantee the
// connection timeouts buy: a client that sends half a request line and
// then stalls holds its connection active, and without
// ReadHeaderTimeout http.Server.Shutdown would wait on it until the
// drain deadline. With the timeout armed, Shutdown completes as soon
// as the stalled connection times out.
func TestDrainCompletesUnderStalledClient(t *testing.T) {
	ln, err := net.Listen("tcp", "127.0.0.1:0")
	if err != nil {
		t.Fatal(err)
	}
	srv := newHTTPServer("", http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		fmt.Fprintln(w, "ok")
	}), httpTimeouts{readHeader: 200 * time.Millisecond, read: time.Second, idle: time.Second})
	serveErr := make(chan error, 1)
	go func() { serveErr <- srv.Serve(ln) }()

	// A healthy request completes, proving the server is up.
	resp, err := http.Get("http://" + ln.Addr().String() + "/")
	if err != nil {
		t.Fatal(err)
	}
	io.Copy(io.Discard, resp.Body)
	resp.Body.Close()

	// The stalled client: half a request line, then silence. The server
	// marks the connection active and starts the header-read clock.
	conn, err := net.Dial("tcp", ln.Addr().String())
	if err != nil {
		t.Fatal(err)
	}
	defer conn.Close()
	if _, err := conn.Write([]byte("GET /v1/loc")); err != nil {
		t.Fatal(err)
	}
	time.Sleep(50 * time.Millisecond) // let the server read the partial bytes

	// Shutdown must finish once ReadHeaderTimeout reaps the staller —
	// well before the 5s drain deadline a misbehaving client would
	// otherwise burn whole.
	start := time.Now()
	ctx, cancel := context.WithTimeout(context.Background(), 5*time.Second)
	defer cancel()
	if err := srv.Shutdown(ctx); err != nil {
		t.Fatalf("Shutdown did not complete under a stalled client: %v", err)
	}
	if waited := time.Since(start); waited > 2*time.Second {
		t.Fatalf("Shutdown took %v; the stalled connection should be reaped at ReadHeaderTimeout (200ms)", waited)
	}
	if err := <-serveErr; err != http.ErrServerClosed {
		t.Fatalf("Serve returned %v, want http.ErrServerClosed", err)
	}
}

// TestNewHTTPServerTimeouts pins that the flag-fed timeouts actually
// land on the server every mode listens with.
func TestNewHTTPServerTimeouts(t *testing.T) {
	srv := newHTTPServer(":0", nil, httpTimeouts{
		readHeader: 7 * time.Second,
		read:       3 * time.Minute,
		idle:       time.Minute,
	})
	if srv.ReadHeaderTimeout != 7*time.Second || srv.ReadTimeout != 3*time.Minute || srv.IdleTimeout != time.Minute {
		t.Fatalf("timeouts not applied: %+v", srv)
	}
}
