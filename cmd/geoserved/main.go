// Command geoserved is the online geolocation query service: it runs
// the reproduction pipeline once at startup, compiles the result into
// an immutable serving snapshot (internal/geoserve) and answers
// lookups over HTTP.
//
//	geoserved -addr :8080 -seed 1 -scale 0.1
//	geoserved -addr :8080 -scale 0.1 -shards 8
//
// API (see geoserve.NewHandler):
//
//	GET  /v1/locate?ip=A.B.C.D[&mapper=ixmapper|edgescape]
//	POST /v1/locate/batch          {"mapper": ..., "ips": [...]}
//	GET  /v1/as/{asn}/footprint
//	GET  /v1/prefixes
//	GET  /healthz
//	GET  /statusz
//	POST /v1/admin/rebuild[?seed=N&scale=F]
//
// With -shards N > 1 the snapshot is split into N prefix-range shards
// served by a scatter-gather cluster (geoserve.Cluster): single
// lookups route to the owning shard, batches fan out with per-shard
// batching and load-shedding (429 when a shard's in-flight queue
// exceeds -queuebudget), and /statusz grows a per-shard section.
// Answers are byte-identical to the unsharded engine at any shard
// count.
//
// The rebuild endpoint runs a whole new pipeline (possibly a different
// seed or scale) in the background and hot-swaps the serving snapshot
// when it finishes — shard by shard in cluster mode, with an epoch
// guard so a scatter-gathered batch never mixes two epochs; readers
// never pause. One rebuild runs at a time (409 while one is in
// flight).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"

	"geonet/internal/core"
	"geonet/internal/geoserve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 0.1, "world scale relative to the paper's Skitter snapshot")
	workers := flag.Int("workers", 0, "pipeline/compile workers (0 = one per CPU); also pins GOMAXPROCS")
	cacheBudget := flag.Int("cachebudget", 0, "netsim route-cache budget override (0 = default)")
	shards := flag.Int("shards", 1, "prefix-range serving shards (1 = single unsharded engine)")
	queueBudget := flag.Int("queuebudget", 0, "per-shard in-flight batch budget before shedding (0 = default)")
	quiet := flag.Bool("quiet", false, "suppress build progress")
	flag.Parse()

	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}
	if *shards < 1 {
		log.Fatal("geoserved: -shards must be >= 1")
	}

	snap, err := build(*seed, *scale, *workers, *cacheBudget, *quiet)
	if err != nil {
		log.Fatalf("geoserved: %v", err)
	}

	// handler serves the API; swap hot-swaps a rebuilt snapshot in.
	var (
		handler http.Handler
		swap    func(*geoserve.Snapshot) error
	)
	if *shards > 1 {
		cluster, err := geoserve.NewCluster(snap, geoserve.ClusterConfig{
			Shards:      *shards,
			QueueBudget: *queueBudget,
		})
		if err != nil {
			log.Fatalf("geoserved: %v", err)
		}
		handler = geoserve.NewClusterHandler(cluster)
		swap = func(s *geoserve.Snapshot) error {
			_, err := cluster.Swap(s)
			return err
		}
		log.Printf("sharded serving: %d prefix-range shards, queue budget %d",
			cluster.NumShards(), cluster.QueueBudget())
	} else {
		engine := geoserve.NewEngine(snap)
		handler = geoserve.NewHandler(engine)
		swap = func(s *geoserve.Snapshot) error {
			engine.Swap(s)
			return nil
		}
	}
	log.Printf("serving snapshot %s (seed %d, scale %g): %d /24s, %d exact addresses, %d AS footprints",
		snap.Digest()[:12], *seed, *scale, snap.NumPrefixes(), snap.NumExactIPs(), snap.NumFootprints())

	mux := http.NewServeMux()
	mux.Handle("/", handler)
	var rebuilding atomic.Bool
	mux.HandleFunc("POST /v1/admin/rebuild", func(w http.ResponseWriter, r *http.Request) {
		newSeed, newScale := *seed, *scale
		if s := r.URL.Query().Get("seed"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				http.Error(w, "bad seed", http.StatusBadRequest)
				return
			}
			newSeed = v
		}
		if s := r.URL.Query().Get("scale"); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil || v <= 0 {
				http.Error(w, "bad scale", http.StatusBadRequest)
				return
			}
			newScale = v
		}
		if !rebuilding.CompareAndSwap(false, true) {
			http.Error(w, "rebuild already in flight", http.StatusConflict)
			return
		}
		go func() {
			defer rebuilding.Store(false)
			fresh, err := build(newSeed, newScale, *workers, *cacheBudget, *quiet)
			if err == nil {
				err = swap(fresh)
			}
			if err != nil {
				log.Printf("rebuild(seed %d, scale %g) failed: %v", newSeed, newScale, err)
				return
			}
			log.Printf("hot-swapped to snapshot %s (seed %d, scale %g)",
				fresh.Digest()[:12], newSeed, newScale)
		}()
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"status":"rebuilding","seed":%d,"scale":%g}`+"\n", newSeed, newScale)
	})

	log.Printf("listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// build runs a pipeline and compiles its serving snapshot.
func build(seed int64, scale float64, workers, cacheBudget int, quiet bool) (*geoserve.Snapshot, error) {
	cfg := core.Config{Seed: seed, Scale: scale, Workers: workers, RouteCacheBudget: cacheBudget}
	if !quiet {
		cfg.Progress = os.Stderr
	}
	p, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	return p.ServeWith(core.ServeOptions{
		Label: fmt.Sprintf("seed%d/scale%g", seed, scale),
	})
}
