// Command geoserved is the online geolocation query service: it runs
// the reproduction pipeline once at startup, compiles the result into
// an immutable serving snapshot (internal/geoserve) and answers
// lookups over HTTP.
//
//	geoserved -addr :8080 -seed 1 -scale 0.1
//	geoserved -addr :8080 -scale 0.1 -shards 8
//
// API (see geoserve.NewHandler):
//
//	GET  /v1/locate?ip=A.B.C.D[&mapper=ixmapper|edgescape]
//	POST /v1/locate/batch          {"mapper": ..., "ips": [...]}
//	POST /v1/locate/bin            binary batch (geoserve wire protocol)
//	POST /v1/locate/stream         full-duplex chunked binary lookups
//	GET  /v1/as/{asn}/footprint
//	GET  /v1/prefixes
//	GET  /healthz
//	GET  /statusz
//	GET  /metrics                  Prometheus text exposition
//	GET  /debug/tracez             recent + slow request traces (JSON)
//	POST /v1/admin/rebuild[?seed=N&scale=F]
//	POST /v1/admin/churn           apply one churn step (builder mode)
//
// With -shards N > 1 the snapshot is split into N prefix-range shards
// served by a scatter-gather cluster (geoserve.Cluster): single
// lookups route to the owning shard, batches fan out with per-shard
// batching and load-shedding (429 when a shard's in-flight queue
// exceeds -queuebudget), and /statusz grows a per-shard section.
// Answers are byte-identical to the unsharded engine at any shard
// count.
//
// The rebuild endpoint runs a whole new pipeline (possibly a different
// seed or scale) in the background and hot-swaps the serving snapshot
// when it finishes — shard by shard in cluster mode, with an epoch
// guard so a scatter-gathered batch never mixes two epochs; readers
// never pause. One rebuild runs at a time (409 while one is in
// flight).
//
// # Continuous topology churn
//
// A builder that ran the pipeline (not a -snapshot cold start) can
// also evolve its world continuously instead of rebuilding it from
// scratch: a deterministic churn stream (internal/churn) draws BGP
// announces/withdraws, allocation growth, interface churn and monitor
// loss, and each step is delta-compiled from the serving snapshot —
// only the /24 intervals whose answers could have changed are
// recomputed — then hot-swapped shard by shard (Cluster.SwapDelta
// re-splits only the shards owning touched intervals) and, with
// -publish, published as a delta-served replication epoch.
//
//	geoserved -scale 0.1 -publish -churn -churn-interval 5s
//
// POST /v1/admin/churn applies one step on demand (also available
// without -churn). Churn steps and /v1/admin/rebuild both hot-swap
// the serving snapshot; the churn stream always continues from its
// own chain, so mixing the two is last-writer-wins.
//
// # Snapshot files and the replication fleet
//
// Snapshots travel as versioned, digest-checked files
// (internal/geoserve/snapfile) and over a builder→replica protocol
// (internal/geoserve/replica), giving geoserved four more modes:
//
//	geoserved -scale 0.1 -write-snapshot world.snap -addr ""   build, write, exit
//	geoserved -snapshot world.snap                             cold start: load the
//	                                                           file, skip the pipeline
//	geoserved -scale 0.1 -publish                              builder: also serve
//	                                                           /v1/replication/* epochs
//	geoserved -replica-of http://builder:8080                  replica: fetch → verify →
//	                                                           swap loop, serve the API
//	geoserved -router http://r1:8081,http://r2:8082            router: health-checked
//	                                                           fan-out over replicas
//
// A -publish builder publishes a new epoch after every successful
// rebuild, retains a window of recent epochs, and serves deltas
// between retained epochs (/v1/replication/delta/{from}/{to}) so
// replicas already near the head move only the changed /24 intervals.
// Replicas verify every fetched file or applied delta (whole-file hash
// + recomputed content digest; any delta failure falls back to the
// full fetch), warm a fresh snapshot up against a seeded self-probe
// set before the atomic swap, keep serving their last-good epoch
// through builder outages (reporting stale_epoch on /statusz), and
// resume interrupted downloads. The router plans by least outstanding
// requests with per-replica latency EWMAs, runs every attempt under a
// deadline with a global retry budget and a per-replica circuit
// breaker, ejects unhealthy replicas, readmits them when probes
// recover, never blends two epochs in one batch answer, and sheds
// with 503 + Retry-After only when no healthy replica holds a
// complete epoch.
//
// The binary endpoints speak the geoserve wire protocol (see the wire
// protocol section of DESIGN.md): length-prefixed batches of IPv4
// addresses answered by fixed-width records copied straight out of
// the snapshot's columnar slabs, each frame tagged with the serving
// snapshot's epoch. cmd/geoload drives them with -wire bin|stream.
//
// # Observability
//
// Every mode exposes its serving metrics in Prometheus text format at
// GET /metrics and its recent request traces at GET /debug/tracez on
// the serving listener (internal/obs). A request carrying an
// X-Geo-Trace header is traced across hops — the router mints an ID at
// the edge, stamps it onto upstream calls, and each tier records its
// spans into a bounded in-memory ring with a slow-request retention
// bias. With -debug-addr a second listener additionally serves the
// net/http/pprof suite alongside /metrics and /debug/tracez, so
// profiling and scraping can be firewalled away from query traffic.
// Replica mode accepts -shards/-queuebudget too: each installed epoch
// then serves from a scatter-gather cluster instead of one engine.
//
// All modes drain on SIGTERM/SIGINT: replicas and routers fail
// /healthz with status "draining" so load balancers steer away, then
// http.Server.Shutdown waits for in-flight requests under
// -drain-timeout (default 10s) before the process exits — a rolling
// restart loses zero answers. Every mode's listener bounds connection
// phases (-read-header-timeout, -read-timeout, -idle-timeout) so a
// stalled client cannot pin a connection or hold a drain hostage.
package main

import (
	"context"
	"encoding/json"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"runtime"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"syscall"
	"time"

	"net/http/pprof"

	"geonet/internal/churn"
	"geonet/internal/core"
	"geonet/internal/geoserve"
	"geonet/internal/geoserve/replica"
	"geonet/internal/geoserve/snapfile"
	"geonet/internal/obs"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address (empty: exit after -write-snapshot)")
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 0.1, "world scale relative to the paper's Skitter snapshot")
	workers := flag.Int("workers", 0, "pipeline/compile workers (0 = one per CPU); also pins GOMAXPROCS")
	cacheBudget := flag.Int("cachebudget", 0, "netsim route-cache budget override (0 = default)")
	shards := flag.Int("shards", 1, "prefix-range serving shards (1 = single unsharded engine)")
	queueBudget := flag.Int("queuebudget", 0, "per-shard in-flight batch budget before shedding (0 = default)")
	snapshotPath := flag.String("snapshot", "", "cold start: load this snapshot file instead of running the pipeline")
	writeSnapshot := flag.String("write-snapshot", "", "write the serving snapshot to this file (then exit if -addr is empty)")
	publish := flag.Bool("publish", false, "serve /v1/replication/* so replicas can follow this builder")
	churnOn := flag.Bool("churn", false, "continuously evolve the world: apply one churn step every -churn-interval")
	churnInterval := flag.Duration("churn-interval", 5*time.Second, "delay between background churn steps (-churn)")
	churnSeed := flag.Int64("churn-seed", 0, "churn event stream seed (0 = the world seed)")
	churnEvents := flag.Int("churn-events", 8, "topology events applied per churn step")
	replicaOf := flag.String("replica-of", "", "run as a replica of this builder URL (no pipeline)")
	router := flag.String("router", "", "run as a router over these comma-separated replica URLs (no pipeline)")
	drainTimeout := flag.Duration("drain-timeout", 10*time.Second, "max wait for in-flight requests on SIGTERM/SIGINT")
	debugAddr := flag.String("debug-addr", "", "separate listener for net/http/pprof plus /metrics and /debug/tracez (empty: observability rides on -addr only)")
	quiet := flag.Bool("quiet", false, "suppress build progress")
	flag.DurationVar(&timeouts.readHeader, "read-header-timeout", 10*time.Second, "max wait for a request's headers (0 = unbounded; guards drain against stalled clients)")
	flag.DurationVar(&timeouts.read, "read-timeout", 5*time.Minute, "max lifetime of one request read, including streaming bodies (0 = unbounded)")
	flag.DurationVar(&timeouts.idle, "idle-timeout", 2*time.Minute, "max keep-alive idle time per connection (0 = unbounded)")
	flag.Parse()

	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}
	if *shards < 1 {
		log.Fatal("geoserved: -shards must be >= 1")
	}
	if *replicaOf != "" && *router != "" {
		log.Fatal("geoserved: -replica-of and -router are mutually exclusive")
	}
	if (*replicaOf != "" || *router != "") && (*snapshotPath != "" || *writeSnapshot != "" || *publish || *churnOn) {
		log.Fatal("geoserved: snapshot/publish/churn flags only apply to builder mode")
	}
	if *churnOn && *snapshotPath != "" {
		log.Fatal("geoserved: -churn needs the pipeline's world; it cannot run from a -snapshot cold start")
	}
	if *churnOn && *churnInterval <= 0 {
		log.Fatal("geoserved: -churn-interval must be positive")
	}
	if *churnEvents < 1 {
		log.Fatal("geoserved: -churn-events must be >= 1")
	}
	if *router != "" && *shards != 1 {
		log.Fatal("geoserved: -shards applies to builder and replica modes, not the router")
	}

	switch {
	case *replicaOf != "":
		runReplica(*addr, *replicaOf, *shards, *queueBudget, *drainTimeout, *debugAddr)
	case *router != "":
		runRouter(*addr, *router, *drainTimeout, *debugAddr)
	default:
		runBuilder(builderOpts{
			addr: *addr, seed: *seed, scale: *scale, workers: *workers,
			cacheBudget: *cacheBudget, shards: *shards, queueBudget: *queueBudget,
			snapshotPath: *snapshotPath, writeSnapshot: *writeSnapshot,
			publish: *publish, quiet: *quiet, drainTimeout: *drainTimeout,
			debugAddr: *debugAddr,
			churn:     *churnOn, churnInterval: *churnInterval,
			churnSeed: *churnSeed, churnEvents: *churnEvents,
		})
	}
}

// startDebugServer runs the runtime-introspection listener: the full
// net/http/pprof suite plus the same /metrics and /debug/tracez the
// serving listener mounts, on a separate address so profiling and
// scraping never compete with query traffic (and can be firewalled
// separately). Empty addr means no debug listener.
func startDebugServer(addr string, o *obs.Observability) {
	if addr == "" {
		return
	}
	mux := http.NewServeMux()
	mux.HandleFunc("/debug/pprof/", pprof.Index)
	mux.HandleFunc("/debug/pprof/cmdline", pprof.Cmdline)
	mux.HandleFunc("/debug/pprof/profile", pprof.Profile)
	mux.HandleFunc("/debug/pprof/symbol", pprof.Symbol)
	mux.HandleFunc("/debug/pprof/trace", pprof.Trace)
	o.Mount(mux)
	go func() {
		log.Printf("debug listener on %s (pprof, /metrics, /debug/tracez)", addr)
		if err := http.ListenAndServe(addr, mux); !errors.Is(err, http.ErrServerClosed) {
			log.Printf("debug listener stopped: %v", err)
		}
	}()
}

// httpTimeouts bounds every server-side connection phase, so one
// stalled or malicious client can neither hold a drain hostage nor
// pin a connection forever. Populated from flags.
type httpTimeouts struct {
	readHeader time.Duration
	read       time.Duration
	idle       time.Duration
}

var timeouts httpTimeouts

// newHTTPServer builds the server every mode listens on. Connections
// that never finish their headers die at readHeader, slow-loris bodies
// at read, and idle keep-alives at idle — which is what lets
// http.Server.Shutdown terminate instead of waiting forever on a
// client that sent half a request (TestDrainCompletesUnderStalledClient).
func newHTTPServer(addr string, h http.Handler, t httpTimeouts) *http.Server {
	return &http.Server{
		Addr:              addr,
		Handler:           h,
		ReadHeaderTimeout: t.readHeader,
		ReadTimeout:       t.read,
		IdleTimeout:       t.idle,
	}
}

// serve runs the handler until SIGTERM/SIGINT, then drains: drain (when
// set) flips /healthz to failing so load balancers steer new work away,
// and http.Server.Shutdown waits for in-flight requests under the
// deadline. A rolling restart therefore loses zero answers.
func serve(addr string, h http.Handler, drain func(), timeout time.Duration) {
	srv := newHTTPServer(addr, h, timeouts)
	done := make(chan struct{})
	go func() {
		defer close(done)
		sig := make(chan os.Signal, 1)
		signal.Notify(sig, os.Interrupt, syscall.SIGTERM)
		s := <-sig
		log.Printf("caught %s: draining (deadline %s)", s, timeout)
		if drain != nil {
			drain()
		}
		ctx, cancel := context.WithTimeout(context.Background(), timeout)
		defer cancel()
		if err := srv.Shutdown(ctx); err != nil {
			log.Printf("drain deadline passed with requests still in flight: %v", err)
			return
		}
		log.Printf("drained clean: all in-flight requests finished")
	}()
	log.Printf("listening on %s", addr)
	if err := srv.ListenAndServe(); !errors.Is(err, http.ErrServerClosed) {
		log.Fatal(err)
	}
	<-done
}

// runReplica serves the API from snapshots fetched off a builder: 503
// until the first verified epoch, then last-good-epoch serving through
// any builder outage. With shards > 1 each installed epoch serves from
// a scatter-gather cluster instead of a single engine.
func runReplica(addr, builderURL string, shards, queueBudget int, drainTimeout time.Duration, debugAddr string) {
	rep := replica.New(replica.Config{BuilderURL: builderURL, Shards: shards, QueueBudget: queueBudget})
	startDebugServer(debugAddr, rep.Obs())
	go func() {
		if err := rep.Run(context.Background()); err != nil {
			log.Printf("replica sync loop stopped: %v", err)
		}
	}()
	log.Printf("replica of %s; serving 503 until the first verified epoch", builderURL)
	serve(addr, rep.Handler(), rep.Drain, drainTimeout)
}

// runRouter fans lookups over a replica fleet with health-checked
// ejection/readmission and epoch-consistent batches.
func runRouter(addr, targets string, drainTimeout time.Duration, debugAddr string) {
	var urls []string
	for _, u := range strings.Split(targets, ",") {
		if u = strings.TrimSpace(u); u != "" {
			urls = append(urls, strings.TrimRight(u, "/"))
		}
	}
	if len(urls) == 0 {
		log.Fatal("geoserved: -router needs at least one replica URL")
	}
	rt := replica.NewRouter(replica.RouterConfig{Replicas: urls})
	startDebugServer(debugAddr, rt.Obs())
	go rt.Run(context.Background())
	log.Printf("routing over %d replicas: %s", len(urls), strings.Join(urls, ", "))
	serve(addr, rt.Handler(), rt.Drain, drainTimeout)
}

type builderOpts struct {
	addr          string
	seed          int64
	scale         float64
	workers       int
	cacheBudget   int
	shards        int
	queueBudget   int
	snapshotPath  string
	writeSnapshot string
	publish       bool
	quiet         bool
	drainTimeout  time.Duration
	debugAddr     string
	churn         bool
	churnInterval time.Duration
	churnSeed     int64
	churnEvents   int
}

func runBuilder(o builderOpts) {
	start := time.Now()
	var (
		snap *geoserve.Snapshot
		pipe *core.Pipeline // nil on a -snapshot cold start; churn needs it
	)
	if o.snapshotPath != "" {
		// Cold start: the pipeline never runs; load + verify the file.
		loaded, info, err := snapfile.Load(o.snapshotPath)
		if err != nil {
			log.Fatalf("geoserved: load %s: %v", o.snapshotPath, err)
		}
		snap = loaded
		log.Printf("cold start: loaded snapshot %s (epoch %d, %d bytes) from %s in %s",
			info.Digest[:12], info.Epoch, info.SizeBytes, o.snapshotPath, time.Since(start).Round(time.Millisecond))
	} else {
		p, built, err := build(o.seed, o.scale, o.workers, o.cacheBudget, o.quiet)
		if err != nil {
			log.Fatalf("geoserved: %v", err)
		}
		pipe, snap = p, built
		log.Printf("pipeline build took %s", time.Since(start).Round(time.Millisecond))
	}

	if o.writeSnapshot != "" {
		if err := snapfile.WriteFile(o.writeSnapshot, snap, 1); err != nil {
			log.Fatalf("geoserved: write %s: %v", o.writeSnapshot, err)
		}
		log.Printf("wrote snapshot %s (epoch 1) to %s", snap.Digest()[:12], o.writeSnapshot)
		if o.addr == "" {
			return
		}
	}
	if o.addr == "" {
		log.Fatal("geoserved: empty -addr without -write-snapshot serves nothing")
	}

	// handler serves the API; swap hot-swaps a rebuilt snapshot in, and
	// swapDelta installs a delta-compiled one (shard geometry reused,
	// only shards owning touched /24s re-split in cluster mode).
	var (
		handler   http.Handler
		swap      func(*geoserve.Snapshot) error
		swapDelta func(*geoserve.Snapshot, []uint32) (resplit int, err error)
		bundle    *obs.Observability
	)
	if o.shards > 1 {
		cluster, err := geoserve.NewCluster(snap, geoserve.ClusterConfig{
			Shards:      o.shards,
			QueueBudget: o.queueBudget,
		})
		if err != nil {
			log.Fatalf("geoserved: %v", err)
		}
		bundle = obs.NewObservability("cluster")
		handler = geoserve.NewObservedClusterHandler(cluster, bundle)
		swap = func(s *geoserve.Snapshot) error {
			_, err := cluster.Swap(s)
			return err
		}
		swapDelta = func(s *geoserve.Snapshot, touched []uint32) (int, error) {
			_, resplit, err := cluster.SwapDelta(s, touched)
			return resplit, err
		}
		log.Printf("sharded serving: %d prefix-range shards, queue budget %d",
			cluster.NumShards(), cluster.QueueBudget())
	} else {
		engine := geoserve.NewEngine(snap)
		bundle = obs.NewObservability("engine")
		handler = geoserve.NewObservedHandler(engine, bundle)
		swap = func(s *geoserve.Snapshot) error {
			engine.Swap(s)
			return nil
		}
		swapDelta = func(s *geoserve.Snapshot, _ []uint32) (int, error) {
			engine.Swap(s)
			return 0, nil
		}
	}
	startDebugServer(o.debugAddr, bundle)
	log.Printf("serving snapshot %s: %d /24s, %d exact addresses, %d AS footprints",
		snap.Digest()[:12], snap.NumPrefixes(), snap.NumExactIPs(), snap.NumFootprints())

	mux := http.NewServeMux()
	mux.Handle("/", handler)

	var pub *replica.Publisher
	if o.publish {
		pub = replica.NewPublisher()
		m, err := pub.Publish(snap)
		if err != nil {
			log.Fatalf("geoserved: publish: %v", err)
		}
		mux.Handle("/v1/replication/", pub.Handler())
		log.Printf("publishing replication epoch %d (%d bytes)", m.Epoch, m.SizeBytes)
	}

	// Churn: one step = draw events, delta-compile, hot-swap, publish.
	// Available on demand via POST /v1/admin/churn whenever the
	// pipeline ran; -churn additionally drives it on a timer.
	if pipe != nil {
		seed := o.churnSeed
		if seed == 0 {
			seed = o.seed
		}
		ch, err := pipe.Churner(core.ServeOptions{}, seed)
		if err != nil {
			log.Fatalf("geoserved: churn: %v", err)
		}
		cr := &churnRunner{
			pipe: pipe, ch: ch, prev: snap, events: o.churnEvents,
			swapDelta: swapDelta, pub: pub,
		}
		mux.HandleFunc("POST /v1/admin/churn", func(w http.ResponseWriter, r *http.Request) {
			res, err := cr.step()
			if err != nil {
				http.Error(w, err.Error(), http.StatusInternalServerError)
				return
			}
			w.Header().Set("Content-Type", "application/json")
			json.NewEncoder(w).Encode(res)
		})
		if o.churn {
			go func() {
				tick := time.NewTicker(o.churnInterval)
				defer tick.Stop()
				for range tick.C {
					res, err := cr.step()
					if err != nil {
						log.Printf("churn step failed: %v", err)
						continue
					}
					log.Printf("churn step %d: %d events, %d/%d rows recompiled (+%d patched), %d shards re-split, snapshot %s",
						res.Step, res.Events, res.Stats.Recompiled, res.Stats.Rows, res.Stats.Patched,
						res.Resplit, res.Digest[:12])
				}
			}()
			log.Printf("continuous churn: %d events every %s (seed %d)", o.churnEvents, o.churnInterval, seed)
		}
	}

	var rebuilding atomic.Bool
	mux.HandleFunc("POST /v1/admin/rebuild", func(w http.ResponseWriter, r *http.Request) {
		newSeed, newScale := o.seed, o.scale
		if s := r.URL.Query().Get("seed"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				http.Error(w, "bad seed", http.StatusBadRequest)
				return
			}
			newSeed = v
		}
		if s := r.URL.Query().Get("scale"); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil || v <= 0 {
				http.Error(w, "bad scale", http.StatusBadRequest)
				return
			}
			newScale = v
		}
		if !rebuilding.CompareAndSwap(false, true) {
			http.Error(w, "rebuild already in flight", http.StatusConflict)
			return
		}
		go func() {
			defer rebuilding.Store(false)
			_, fresh, err := build(newSeed, newScale, o.workers, o.cacheBudget, o.quiet)
			if err == nil {
				err = swap(fresh)
			}
			if err != nil {
				log.Printf("rebuild(seed %d, scale %g) failed: %v", newSeed, newScale, err)
				return
			}
			log.Printf("hot-swapped to snapshot %s (seed %d, scale %g)",
				fresh.Digest()[:12], newSeed, newScale)
			if pub != nil {
				m, err := pub.Publish(fresh)
				if err != nil {
					log.Printf("publish after rebuild failed: %v", err)
					return
				}
				log.Printf("published replication epoch %d (%d bytes)", m.Epoch, m.SizeBytes)
			}
		}()
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"status":"rebuilding","seed":%d,"scale":%g}`+"\n", newSeed, newScale)
	})

	serve(o.addr, mux, nil, o.drainTimeout)
}

// churnRunner serializes churn steps: each step draws the next batch
// of topology events, delta-compiles the serving snapshot (only dirty
// /24 intervals recomputed), hot-swaps it in — per-shard in cluster
// mode — and publishes the new epoch when replication is on. The
// mutex keeps the chain linear: steps from the background ticker and
// from POST /v1/admin/churn interleave but never race.
type churnRunner struct {
	mu        sync.Mutex
	pipe      *core.Pipeline
	ch        *churn.Churner
	prev      *geoserve.Snapshot
	events    int
	swapDelta func(*geoserve.Snapshot, []uint32) (int, error)
	pub       *replica.Publisher
}

// churnResult is the JSON answer of one applied churn step.
type churnResult struct {
	Step    int                 `json:"step"`
	Events  int                 `json:"events"`
	Digest  string              `json:"digest"`
	Stats   geoserve.DeltaStats `json:"stats"`
	Resplit int                 `json:"resplit_shards"`
	Epoch   uint64              `json:"epoch,omitempty"` // published replication epoch
}

func (cr *churnRunner) step() (churnResult, error) {
	cr.mu.Lock()
	defer cr.mu.Unlock()
	step, err := cr.ch.Next(cr.events)
	if err != nil {
		return churnResult{}, fmt.Errorf("churn step: %w", err)
	}
	next, stats, err := cr.pipe.ServeDelta(cr.prev, step)
	if err != nil {
		return churnResult{}, fmt.Errorf("churn step %d: delta compile: %w", step.N, err)
	}
	resplit, err := cr.swapDelta(next, stats.Touched)
	if err != nil {
		return churnResult{}, fmt.Errorf("churn step %d: swap: %w", step.N, err)
	}
	res := churnResult{
		Step: step.N, Events: len(step.Events),
		Digest: next.Digest(), Stats: stats, Resplit: resplit,
	}
	if cr.pub != nil {
		// Identical-content steps dedupe inside Publish (no epoch bump).
		m, err := cr.pub.Publish(next)
		if err != nil {
			return churnResult{}, fmt.Errorf("churn step %d: publish: %w", step.N, err)
		}
		res.Epoch = m.Epoch
	}
	cr.prev = next
	return res, nil
}

// build runs a pipeline and compiles its serving snapshot.
func build(seed int64, scale float64, workers, cacheBudget int, quiet bool) (*core.Pipeline, *geoserve.Snapshot, error) {
	cfg := core.Config{Seed: seed, Scale: scale, Workers: workers, RouteCacheBudget: cacheBudget}
	if !quiet {
		cfg.Progress = os.Stderr
	}
	p, err := core.Run(cfg)
	if err != nil {
		return nil, nil, err
	}
	snap, err := p.ServeWith(core.ServeOptions{
		Label: fmt.Sprintf("seed%d/scale%g", seed, scale),
	})
	if err != nil {
		return nil, nil, err
	}
	return p, snap, nil
}
