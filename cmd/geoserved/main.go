// Command geoserved is the online geolocation query service: it runs
// the reproduction pipeline once at startup, compiles the result into
// an immutable serving snapshot (internal/geoserve) and answers
// lookups over HTTP.
//
//	geoserved -addr :8080 -seed 1 -scale 0.1
//
// API (see geoserve.NewHandler):
//
//	GET  /v1/locate?ip=A.B.C.D[&mapper=ixmapper|edgescape]
//	POST /v1/locate/batch          {"mapper": ..., "ips": [...]}
//	GET  /v1/as/{asn}/footprint
//	GET  /v1/prefixes
//	GET  /healthz
//	GET  /statusz
//	POST /v1/admin/rebuild[?seed=N&scale=F]
//
// The rebuild endpoint runs a whole new pipeline (possibly a different
// seed or scale) in the background and hot-swaps the serving snapshot
// when it finishes; readers never pause. One rebuild runs at a time
// (409 while one is in flight).
package main

import (
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"runtime"
	"strconv"
	"sync/atomic"

	"geonet/internal/core"
	"geonet/internal/geoserve"
)

func main() {
	addr := flag.String("addr", ":8080", "listen address")
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 0.1, "world scale relative to the paper's Skitter snapshot")
	workers := flag.Int("workers", 0, "pipeline/compile workers (0 = one per CPU); also pins GOMAXPROCS")
	cacheBudget := flag.Int("cachebudget", 0, "netsim route-cache budget override (0 = default)")
	quiet := flag.Bool("quiet", false, "suppress build progress")
	flag.Parse()

	if *workers > 0 {
		runtime.GOMAXPROCS(*workers)
	}

	engine, err := build(*seed, *scale, *workers, *cacheBudget, *quiet, nil)
	if err != nil {
		log.Fatalf("geoserved: %v", err)
	}
	snap := engine.Snapshot()
	log.Printf("serving snapshot %s (seed %d, scale %g): %d /24s, %d exact addresses, %d AS footprints",
		snap.Digest()[:12], *seed, *scale, snap.NumPrefixes(), snap.NumExactIPs(), snap.NumFootprints())

	mux := http.NewServeMux()
	mux.Handle("/", geoserve.NewHandler(engine))
	var rebuilding atomic.Bool
	mux.HandleFunc("POST /v1/admin/rebuild", func(w http.ResponseWriter, r *http.Request) {
		newSeed, newScale := *seed, *scale
		if s := r.URL.Query().Get("seed"); s != "" {
			v, err := strconv.ParseInt(s, 10, 64)
			if err != nil {
				http.Error(w, "bad seed", http.StatusBadRequest)
				return
			}
			newSeed = v
		}
		if s := r.URL.Query().Get("scale"); s != "" {
			v, err := strconv.ParseFloat(s, 64)
			if err != nil || v <= 0 {
				http.Error(w, "bad scale", http.StatusBadRequest)
				return
			}
			newScale = v
		}
		if !rebuilding.CompareAndSwap(false, true) {
			http.Error(w, "rebuild already in flight", http.StatusConflict)
			return
		}
		go func() {
			defer rebuilding.Store(false)
			fresh, err := build(newSeed, newScale, *workers, *cacheBudget, *quiet, engine)
			if err != nil {
				log.Printf("rebuild(seed %d, scale %g) failed: %v", newSeed, newScale, err)
				return
			}
			_ = fresh
			log.Printf("hot-swapped to snapshot %s (seed %d, scale %g)",
				engine.Snapshot().Digest()[:12], newSeed, newScale)
		}()
		w.WriteHeader(http.StatusAccepted)
		fmt.Fprintf(w, `{"status":"rebuilding","seed":%d,"scale":%g}`+"\n", newSeed, newScale)
	})

	log.Printf("listening on %s", *addr)
	log.Fatal(http.ListenAndServe(*addr, mux))
}

// build runs a pipeline and compiles its snapshot. With a nil engine
// it returns a fresh one; otherwise it hot-swaps the snapshot into the
// given engine.
func build(seed int64, scale float64, workers, cacheBudget int, quiet bool, engine *geoserve.Engine) (*geoserve.Engine, error) {
	cfg := core.Config{Seed: seed, Scale: scale, Workers: workers, RouteCacheBudget: cacheBudget}
	if !quiet {
		cfg.Progress = os.Stderr
	}
	p, err := core.Run(cfg)
	if err != nil {
		return nil, err
	}
	snap, err := p.Serve()
	if err != nil {
		return nil, err
	}
	if engine == nil {
		return geoserve.NewEngine(snap), nil
	}
	engine.Swap(snap)
	return engine, nil
}
