// Command mercator runs the single-host Mercator collection (informed
// address probing, loose source routing, alias resolution) against a
// generated world and reports discovery and alias statistics.
package main

import (
	"flag"
	"fmt"
	"os"

	"geonet/internal/netgen"
	"geonet/internal/netsim"
	"geonet/internal/population"
	"geonet/internal/probe/mercator"
	"geonet/internal/rng"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 0.1, "world scale")
	budget := flag.Int("budget", 0, "probe budget (0 = auto)")
	flag.Parse()

	root := rng.New(*seed)
	world := population.Build(population.DefaultConfig(), root.Split("world"))
	gcfg := netgen.DefaultConfig()
	gcfg.Seed = root.Split("netgen").Seed()
	gcfg.Scale = *scale
	in := netgen.Build(gcfg, world)
	net := netsim.Compile(in)

	cfg := mercator.DefaultConfig()
	cfg.ProbeBudget = *budget
	res := mercator.Collect(net, cfg, root.Split("mercator"))

	fmt.Fprintf(os.Stderr, "mercator: %d traces (%d source-routed)\n",
		res.Stats.Traces, res.Stats.LSRTraces)
	fmt.Fprintf(os.Stderr, "discovered: %d interfaces, %d interface links\n",
		len(res.IfaceNodes), len(res.IfaceLinks))
	fmt.Fprintf(os.Stderr, "alias resolution: %d probes, %d collapsed; %d routers, %d router links\n",
		res.Stats.AliasProbes, res.Stats.AliasResolved,
		len(res.RouterNodes), len(res.RouterLinks))
	collapse := 1 - float64(len(res.RouterNodes))/float64(len(res.IfaceNodes))
	fmt.Fprintf(os.Stderr, "interface->router collapse: %.1f%% (paper: 268,382 -> 228,263 = 15%%)\n", collapse*100)
	_ = os.Stdout
}
