// Command asmap labels IPv4 addresses (one per line on stdin) with
// their origin AS by longest-prefix match against the world's
// RouteViews-style table, printing "ip asN" per line. With -table it
// loads a table dumped by geninternet -bgp instead of assembling one.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"geonet/internal/bgp"
	"geonet/internal/netgen"
	"geonet/internal/population"
	"geonet/internal/rng"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 0.1, "world scale")
	tableFile := flag.String("table", "", "load a prefix|origin table instead of assembling one")
	flag.Parse()

	var table *bgp.Table
	if *tableFile != "" {
		f, err := os.Open(*tableFile)
		if err != nil {
			fmt.Fprintln(os.Stderr, "asmap:", err)
			os.Exit(1)
		}
		table, err = bgp.Read(f)
		f.Close()
		if err != nil {
			fmt.Fprintln(os.Stderr, "asmap:", err)
			os.Exit(1)
		}
	} else {
		root := rng.New(*seed)
		world := population.Build(population.DefaultConfig(), root.Split("world"))
		gcfg := netgen.DefaultConfig()
		gcfg.Seed = root.Split("netgen").Seed()
		gcfg.Scale = *scale
		in := netgen.Build(gcfg, world)
		table = bgp.Assemble(in, bgp.DefaultAssembleConfig(), root.Split("bgp"))
	}
	fmt.Fprintf(os.Stderr, "asmap: %d routes\n", table.Len())

	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		var a, b, c, d int
		if _, err := fmt.Sscanf(line, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
			fmt.Fprintf(os.Stderr, "asmap: bad address %q\n", line)
			continue
		}
		ip := uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d)
		if asn, ok := table.OriginAS(ip); ok {
			fmt.Printf("%s AS%d\n", line, asn)
		} else {
			fmt.Printf("%s unmapped\n", line)
		}
	}
}
