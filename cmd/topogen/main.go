// Command topogen generates test topologies with the models the paper
// discusses — waxman, er (Erdős–Rényi), ba (Barabási–Albert) and
// geogen (the geography-driven generator of Section VII) — and prints
// them as "latitude longitude" node lines and "a b lengthMi latencyMs"
// link lines.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"geonet/internal/geo"
	"geonet/internal/population"
	"geonet/internal/rng"
	"geonet/internal/topogen"
)

func main() {
	model := flag.String("model", "geogen", "waxman | er | ba | geogen")
	n := flag.Int("n", 2000, "node count")
	seed := flag.Int64("seed", 1, "seed")
	regionName := flag.String("region", "US", "US | Europe | Japan")
	flag.Parse()

	var region geo.Region
	switch *regionName {
	case "US":
		region = geo.US
	case "Europe":
		region = geo.Europe
	case "Japan":
		region = geo.Japan
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown region %q\n", *regionName)
		os.Exit(2)
	}

	s := rng.New(*seed)
	var g *topogen.Graph
	switch *model {
	case "waxman":
		g = topogen.Waxman(*n, region, 0.05, 0.4, s)
	case "er":
		g = topogen.ErdosRenyi(*n, region, 3.0/float64(*n), s)
	case "ba":
		g = topogen.BarabasiAlbert(*n, 2, region, s)
	case "geogen":
		world := population.Build(population.DefaultConfig(), s.Split("world"))
		cfg := topogen.DefaultGeoGenConfig()
		cfg.Nodes = *n
		g = topogen.GeoGen(cfg, world, region, s.Split("gen"))
	default:
		fmt.Fprintf(os.Stderr, "topogen: unknown model %q\n", *model)
		os.Exit(2)
	}

	fmt.Fprintf(os.Stderr, "%s: %d nodes, %d links\n", g.Name, len(g.Nodes), len(g.Links))
	w := bufio.NewWriter(os.Stdout)
	defer w.Flush()
	fmt.Fprintln(w, "# nodes: lat lon asn")
	for _, nd := range g.Nodes {
		fmt.Fprintf(w, "N %.4f %.4f %d\n", nd.Loc.Lat, nd.Loc.Lon, nd.ASN)
	}
	fmt.Fprintln(w, "# links: a b miles latency_ms")
	for i, l := range g.Links {
		fmt.Fprintf(w, "L %d %d %.1f %.2f\n", l.A, l.B, l.LengthMi, g.LatencyMs[i])
	}
}
