// Command paperrepro runs the full reproduction pipeline and
// regenerates every table and figure of "On the Geographic Location of
// Internet Resources" (Lakhina et al., IMC 2002).
//
// Usage:
//
//	paperrepro [-seed N] [-scale F] [-workers N] [-only id,id,...] [-data DIR] [-quiet]
//
// -scale 0.1 (default) builds a ~60k-interface world; -scale 1.0
// approximates the paper's full 563k-interface Skitter snapshot (slow).
// -workers bounds the pipeline's parallelism (0 = one per CPU); it
// also pins GOMAXPROCS so the analysis phase respects the same cap.
// Output is byte-identical for any value. -data writes every figure's
// data series as gnuplot-style .dat files.
package main

import (
	"flag"
	"fmt"
	"io"
	"os"
	"path/filepath"
	"runtime"
	"strings"

	"geonet/internal/core"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 0.1, "world scale relative to the paper's Skitter snapshot")
	workers := flag.Int("workers", 0, "parallel workers (0 = one per CPU); results are identical for any value")
	only := flag.String("only", "", "comma-separated experiment ids (default: all)")
	dataDir := flag.String("data", "", "directory to write figure data series (.dat files)")
	quiet := flag.Bool("quiet", false, "suppress progress output")
	list := flag.Bool("list", false, "list experiment ids and exit")
	flag.Parse()

	if *workers > 0 {
		// Hard-cap CPU use everywhere, including the experiment
		// analysis kernels that fan out to GOMAXPROCS rather than
		// reading Config.Workers.
		runtime.GOMAXPROCS(*workers)
	}

	if *list {
		for _, e := range core.Experiments() {
			fmt.Printf("%-10s %s\n", e.ID, e.Title)
		}
		return
	}

	var progress io.Writer = os.Stderr
	if *quiet {
		progress = nil
	}
	p, err := core.Run(core.Config{Seed: *seed, Scale: *scale, Workers: *workers, Progress: progress})
	if err != nil {
		fmt.Fprintln(os.Stderr, "paperrepro:", err)
		os.Exit(1)
	}

	want := map[string]bool{}
	if *only != "" {
		for _, id := range strings.Split(*only, ",") {
			want[strings.TrimSpace(id)] = true
		}
	}

	for _, e := range core.Experiments() {
		if len(want) > 0 && !want[e.ID] {
			continue
		}
		rep := e.Run(p)
		fmt.Println(rep.Format())
		if *dataDir != "" {
			if err := writeData(*dataDir, rep); err != nil {
				fmt.Fprintln(os.Stderr, "paperrepro:", err)
				os.Exit(1)
			}
		}
	}
}

func writeData(dir string, rep core.Report) error {
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return err
	}
	for name, content := range rep.DataFiles() {
		if err := os.WriteFile(filepath.Join(dir, name), []byte(content), 0o644); err != nil {
			return err
		}
	}
	return nil
}
