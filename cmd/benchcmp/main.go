// Command benchcmp compares two BENCH_<date>.json snapshots produced by
// scripts/bench.sh and prints per-benchmark deltas, so a PR's perf
// claim ("PipelineFull −40% ns/op") is one command against the
// previous snapshot instead of eyeball arithmetic.
//
// Usage:
//
//	benchcmp OLD.json NEW.json
//
// Deltas are (new−old)/old; negative is faster/leaner. Comparisons are
// only meaningful between snapshots taken on the same machine at the
// same GOMAXPROCS and bench scale — the header calls out mismatches.
package main

import (
	"encoding/json"
	"fmt"
	"io"
	"os"
)

type snapshot struct {
	Date       string  `json:"date"`
	CPU        string  `json:"cpu"`
	GoMaxProcs int     `json:"gomaxprocs"`
	NumCPU     int     `json:"num_cpu"`
	BenchScale float64 `json:"bench_scale"`
	Benchmarks []bench `json:"benchmarks"`
}

type bench struct {
	Name     string  `json:"name"`
	NsPerOp  float64 `json:"ns_per_op"`
	BytesOp  float64 `json:"bytes_per_op"`
	AllocsOp float64 `json:"allocs_per_op"`
}

func load(path string) (*snapshot, error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, err
	}
	var s snapshot
	if err := json.Unmarshal(data, &s); err != nil {
		return nil, fmt.Errorf("%s: %w", path, err)
	}
	return &s, nil
}

func delta(old, new float64) string {
	if old == 0 {
		return "    n/a"
	}
	return fmt.Sprintf("%+6.1f%%", (new-old)/old*100)
}

// compare writes the header, mismatch warnings and per-benchmark delta
// table to w and returns how many benchmarks the two snapshots share.
// It is the whole comparison minus process concerns (flag parsing,
// exit codes), so tests can drive it with synthetic snapshots.
func compare(w io.Writer, oldName, newName string, old, cur *snapshot) int {
	fmt.Fprintf(w, "old: %s  (%s, GOMAXPROCS=%d)\n", oldName, old.Date, old.GoMaxProcs)
	fmt.Fprintf(w, "new: %s  (%s, GOMAXPROCS=%d)\n", newName, cur.Date, cur.GoMaxProcs)
	if old.GoMaxProcs != cur.GoMaxProcs {
		fmt.Fprintln(w, "WARNING: GOMAXPROCS differs; time deltas are not comparable")
	}
	if old.CPU != cur.CPU && old.CPU != "" && cur.CPU != "" {
		fmt.Fprintf(w, "WARNING: CPU differs (%q vs %q)\n", old.CPU, cur.CPU)
	}
	if old.BenchScale != cur.BenchScale && (old.BenchScale != 0 || cur.BenchScale != 0) {
		fmt.Fprintf(w, "WARNING: bench scale differs (%v vs %v); pipeline-derived benches are not comparable\n",
			old.BenchScale, cur.BenchScale)
	}
	byName := make(map[string]bench, len(old.Benchmarks))
	for _, b := range old.Benchmarks {
		byName[b.Name] = b
	}
	fmt.Fprintf(w, "\n%-44s %13s %8s %13s %8s\n", "benchmark", "ns/op", "Δ", "allocs/op", "Δ")
	matched := 0
	for _, nb := range cur.Benchmarks {
		ob, ok := byName[nb.Name]
		if !ok {
			fmt.Fprintf(w, "%-44s %13.0f %8s %13.0f %8s  (new)\n", nb.Name, nb.NsPerOp, "", nb.AllocsOp, "")
			continue
		}
		matched++
		fmt.Fprintf(w, "%-44s %13.0f %8s %13.0f %8s\n",
			nb.Name, nb.NsPerOp, delta(ob.NsPerOp, nb.NsPerOp),
			nb.AllocsOp, delta(ob.AllocsOp, nb.AllocsOp))
	}
	for _, ob := range old.Benchmarks {
		found := false
		for _, nb := range cur.Benchmarks {
			if nb.Name == ob.Name {
				found = true
				break
			}
		}
		if !found {
			fmt.Fprintf(w, "%-44s (removed)\n", ob.Name)
		}
	}
	return matched
}

func main() {
	if len(os.Args) != 3 {
		fmt.Fprintln(os.Stderr, "usage: benchcmp OLD.json NEW.json")
		os.Exit(2)
	}
	old, err := load(os.Args[1])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	cur, err := load(os.Args[2])
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchcmp:", err)
		os.Exit(1)
	}
	if compare(os.Stdout, os.Args[1], os.Args[2], old, cur) == 0 {
		fmt.Fprintln(os.Stderr, "benchcmp: no benchmarks in common")
		os.Exit(1)
	}
}
