package main

import (
	"bytes"
	"encoding/json"
	"os"
	"path/filepath"
	"strings"
	"testing"
)

func snap(gomaxprocs int, scale float64, benches ...bench) *snapshot {
	return &snapshot{
		Date:       "2026-07-30",
		CPU:        "testcpu",
		GoMaxProcs: gomaxprocs,
		BenchScale: scale,
		Benchmarks: benches,
	}
}

func TestCompare(t *testing.T) {
	cases := []struct {
		name        string
		old, cur    *snapshot
		wantMatched int
		wantLines   []string // substrings that must appear, in order
		rejectLines []string // substrings that must not appear
	}{
		{
			name:        "improvement shows negative delta",
			old:         snap(1, 1, bench{Name: "BenchmarkPipelineFull", NsPerOp: 1000, AllocsOp: 500}),
			cur:         snap(1, 1, bench{Name: "BenchmarkPipelineFull", NsPerOp: 600, AllocsOp: 250}),
			wantMatched: 1,
			wantLines:   []string{"BenchmarkPipelineFull", "-40.0%", "-50.0%"},
			rejectLines: []string{"WARNING"},
		},
		{
			name:        "regression shows positive delta",
			old:         snap(1, 1, bench{Name: "BenchmarkX", NsPerOp: 100, AllocsOp: 10}),
			cur:         snap(1, 1, bench{Name: "BenchmarkX", NsPerOp: 150, AllocsOp: 10}),
			wantMatched: 1,
			wantLines:   []string{"+50.0%", "+0.0%"},
		},
		{
			name:        "new and removed benchmarks are called out",
			old:         snap(1, 1, bench{Name: "BenchmarkGone", NsPerOp: 5, AllocsOp: 1}),
			cur:         snap(1, 1, bench{Name: "BenchmarkFresh", NsPerOp: 7, AllocsOp: 2}),
			wantMatched: 0,
			wantLines:   []string{"BenchmarkFresh", "(new)", "BenchmarkGone", "(removed)"},
		},
		{
			name:        "zero old value prints n/a instead of dividing",
			old:         snap(1, 1, bench{Name: "BenchmarkZ", NsPerOp: 0, AllocsOp: 0}),
			cur:         snap(1, 1, bench{Name: "BenchmarkZ", NsPerOp: 9, AllocsOp: 3}),
			wantMatched: 1,
			wantLines:   []string{"n/a"},
		},
		{
			name:        "gomaxprocs mismatch warns",
			old:         snap(1, 1, bench{Name: "BenchmarkX", NsPerOp: 1, AllocsOp: 1}),
			cur:         snap(8, 1, bench{Name: "BenchmarkX", NsPerOp: 1, AllocsOp: 1}),
			wantMatched: 1,
			wantLines:   []string{"WARNING: GOMAXPROCS differs"},
		},
		{
			name:        "bench scale mismatch warns",
			old:         snap(1, 0.02, bench{Name: "BenchmarkX", NsPerOp: 1, AllocsOp: 1}),
			cur:         snap(1, 1.0, bench{Name: "BenchmarkX", NsPerOp: 1, AllocsOp: 1}),
			wantMatched: 1,
			wantLines:   []string{"WARNING: bench scale differs"},
		},
	}
	for _, c := range cases {
		t.Run(c.name, func(t *testing.T) {
			var out bytes.Buffer
			matched := compare(&out, "old.json", "new.json", c.old, c.cur)
			if matched != c.wantMatched {
				t.Errorf("matched = %d, want %d", matched, c.wantMatched)
			}
			text := out.String()
			pos := 0
			for _, want := range c.wantLines {
				idx := strings.Index(text[pos:], want)
				if idx < 0 {
					t.Errorf("output missing %q (after position %d):\n%s", want, pos, text)
					continue
				}
				pos += idx
			}
			for _, reject := range c.rejectLines {
				if strings.Contains(text, reject) {
					t.Errorf("output unexpectedly contains %q:\n%s", reject, text)
				}
			}
		})
	}
}

func TestLoad(t *testing.T) {
	dir := t.TempDir()
	good := filepath.Join(dir, "good.json")
	want := snap(4, 0.5, bench{Name: "BenchmarkA", NsPerOp: 42, BytesOp: 7, AllocsOp: 3})
	data, err := json.Marshal(want)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(good, data, 0o644); err != nil {
		t.Fatal(err)
	}
	got, err := load(good)
	if err != nil {
		t.Fatal(err)
	}
	if got.GoMaxProcs != 4 || len(got.Benchmarks) != 1 || got.Benchmarks[0].NsPerOp != 42 {
		t.Errorf("loaded %+v", got)
	}

	if _, err := load(filepath.Join(dir, "missing.json")); err == nil {
		t.Error("missing file should error")
	}
	badPath := filepath.Join(dir, "bad.json")
	os.WriteFile(badPath, []byte("{not json"), 0o644)
	if _, err := load(badPath); err == nil {
		t.Error("corrupt file should error")
	}
}
