// Command geninternet generates a ground-truth synthetic Internet and
// prints its inventory. With -bgp or -zone it also dumps the assembled
// BGP table (prefix|origin format) or the reverse-DNS zone, so other
// tools can consume the world's routing and naming state.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"

	"geonet/internal/bgp"
	"geonet/internal/dnsdb"
	"geonet/internal/netgen"
	"geonet/internal/population"
	"geonet/internal/rng"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 0.1, "world scale")
	dumpBGP := flag.Bool("bgp", false, "dump the BGP table to stdout")
	dumpZone := flag.Bool("zone", false, "dump PTR records to stdout")
	flag.Parse()

	root := rng.New(*seed)
	world := population.Build(population.DefaultConfig(), root.Split("world"))
	cfg := netgen.DefaultConfig()
	cfg.Seed = root.Split("netgen").Seed()
	cfg.Scale = *scale
	in := netgen.Build(cfg, world)

	inter := 0
	for _, l := range in.Links {
		if l.Inter {
			inter++
		}
	}
	fmt.Fprintf(os.Stderr, "world: %d places, %.0fM people\n",
		len(world.Places), world.Raster.Total()/1e6)
	fmt.Fprintf(os.Stderr, "internet: %d ASes, %d routers, %d interfaces, %d links (%d interdomain)\n",
		len(in.ASes), len(in.Routers), len(in.Ifaces), len(in.Links), inter)

	if *dumpBGP {
		table := bgp.Assemble(in, bgp.DefaultAssembleConfig(), root.Split("bgp"))
		if _, err := table.WriteTo(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, "geninternet:", err)
			os.Exit(1)
		}
	}
	if *dumpZone {
		dns, err := dnsdb.FromInternet(in)
		if err != nil {
			fmt.Fprintln(os.Stderr, "geninternet:", err)
			os.Exit(1)
		}
		w := bufio.NewWriter(os.Stdout)
		for _, ifc := range in.Ifaces {
			if ifc.Hostname == "" {
				continue
			}
			fmt.Fprintf(w, "%s PTR %s\n", dnsdb.ReverseName(ifc.IP), ifc.Hostname)
			if loc, ok := dns.LOCLookup(ifc.Hostname); ok {
				fmt.Fprintf(w, "%s LOC %s\n", ifc.Hostname, loc.String())
			}
		}
		w.Flush()
	}
}
