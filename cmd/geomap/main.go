// Command geomap geolocates IPv4 addresses (one per line on stdin)
// against a generated world using either mapping tool, printing
// "ip lat lon method" per line — a miniature NetGeo/IxMapper service.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"strings"

	"geonet/internal/dnsdb"
	"geonet/internal/geoloc"
	"geonet/internal/netgen"
	"geonet/internal/population"
	"geonet/internal/rng"
	"geonet/internal/whois"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 0.1, "world scale")
	tool := flag.String("tool", "ixmapper", "mapper: ixmapper or edgescape")
	sample := flag.Int("sample", 0, "instead of stdin, map N sample interfaces from the world")
	flag.Parse()

	root := rng.New(*seed)
	world := population.Build(population.DefaultConfig(), root.Split("world"))
	gcfg := netgen.DefaultConfig()
	gcfg.Seed = root.Split("netgen").Seed()
	gcfg.Scale = *scale
	in := netgen.Build(gcfg, world)

	dns, err := dnsdb.FromInternet(in)
	if err != nil {
		fmt.Fprintln(os.Stderr, "geomap:", err)
		os.Exit(1)
	}
	res := geoloc.Resources{DNS: dns, Whois: whois.FromInternet(in), Dict: world.CodeDictionary()}
	ix := geoloc.NewIxMapper(res)

	var mapper geoloc.Mapper = ix
	if *tool == "edgescape" {
		mapper = geoloc.NewEdgeScape(res, in, geoloc.DefaultEdgeScapeConfig(), root.Split("edgescape"))
	}

	emit := func(ip uint32) {
		p, ok := mapper.Locate(ip)
		method := "none"
		if *tool == "ixmapper" {
			if m := ix.Method(ip); m != "" {
				method = m
			}
		} else if ok {
			method = "edgescape"
		}
		if ok {
			fmt.Printf("%s %.4f %.4f %s\n", ipStr(ip), p.Lat, p.Lon, method)
		} else {
			fmt.Printf("%s - - unmapped\n", ipStr(ip))
		}
	}

	if *sample > 0 {
		step := len(in.Ifaces) / *sample + 1
		for i := 0; i < len(in.Ifaces); i += step {
			emit(in.Ifaces[i].IP)
		}
		return
	}
	sc := bufio.NewScanner(os.Stdin)
	for sc.Scan() {
		line := strings.TrimSpace(sc.Text())
		if line == "" {
			continue
		}
		ip, err := parseIP(line)
		if err != nil {
			fmt.Fprintln(os.Stderr, "geomap:", err)
			continue
		}
		emit(ip)
	}
}

func parseIP(s string) (uint32, error) {
	var a, b, c, d int
	if _, err := fmt.Sscanf(s, "%d.%d.%d.%d", &a, &b, &c, &d); err != nil {
		return 0, fmt.Errorf("bad address %q", s)
	}
	for _, o := range []int{a, b, c, d} {
		if o < 0 || o > 255 {
			return 0, fmt.Errorf("bad address %q", s)
		}
	}
	return uint32(a)<<24 | uint32(b)<<16 | uint32(c)<<8 | uint32(d), nil
}

func ipStr(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", ip>>24, (ip>>16)&0xff, (ip>>8)&0xff, ip&0xff)
}
