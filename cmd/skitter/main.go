// Command skitter runs the multi-monitor Skitter collection against a
// generated world and prints the raw interface graph as an edge list
// (one "ipA ipB" pair per line) with collection statistics on stderr.
package main

import (
	"bufio"
	"flag"
	"fmt"
	"os"
	"sort"

	"geonet/internal/netgen"
	"geonet/internal/netsim"
	"geonet/internal/population"
	"geonet/internal/probe/skitter"
	"geonet/internal/rng"
)

func main() {
	seed := flag.Int64("seed", 1, "world seed")
	scale := flag.Float64("scale", 0.1, "world scale")
	edges := flag.Bool("edges", false, "print the discovered edge list to stdout")
	flag.Parse()

	root := rng.New(*seed)
	world := population.Build(population.DefaultConfig(), root.Split("world"))
	cfg := netgen.DefaultConfig()
	cfg.Seed = root.Split("netgen").Seed()
	cfg.Scale = *scale
	in := netgen.Build(cfg, world)
	net := netsim.Compile(in)

	raw := skitter.Collect(net, skitter.DefaultConfig(), root.Split("skitter"))
	fmt.Fprintf(os.Stderr, "skitter: %d monitors, %d traces (%d failed), %d interfaces, %d links, %d destinations\n",
		raw.Stats.Monitors, raw.Stats.Traces, raw.Stats.TracesFailed,
		len(raw.Nodes), len(raw.Links), len(raw.DestIPs))

	if *edges {
		pairs := make([][2]uint32, 0, len(raw.Links))
		for l := range raw.Links {
			pairs = append(pairs, l)
		}
		sort.Slice(pairs, func(i, j int) bool {
			if pairs[i][0] != pairs[j][0] {
				return pairs[i][0] < pairs[j][0]
			}
			return pairs[i][1] < pairs[j][1]
		})
		w := bufio.NewWriter(os.Stdout)
		for _, l := range pairs {
			fmt.Fprintf(w, "%s %s\n", ipStr(l[0]), ipStr(l[1]))
		}
		w.Flush()
	}
}

func ipStr(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", ip>>24, (ip>>16)&0xff, (ip>>8)&0xff, ip&0xff)
}
