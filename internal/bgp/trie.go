// Package bgp implements the BGP-table substrate the paper uses to
// label nodes with their parent AS (Section III-C): a binary patricia
// trie keyed on IPv4 prefixes, longest-prefix-match lookup, and a
// RouteViews-style table assembled as the union of per-vantage views of
// the ground-truth address allocation — complete with the coverage gaps
// that left 1.5-2.8% of the paper's addresses unmapped.
package bgp

import (
	"fmt"
	"sort"
	"strings"
)

// Route associates a prefix with its originating AS number.
type Route struct {
	Addr   uint32
	Len    int
	Origin int // origin AS number
}

// Prefix renders the route's prefix in CIDR notation.
func (r Route) Prefix() string {
	return fmt.Sprintf("%d.%d.%d.%d/%d",
		r.Addr>>24, (r.Addr>>16)&0xff, (r.Addr>>8)&0xff, r.Addr&0xff, r.Len)
}

// Trie is a binary (one bit per level) prefix trie supporting
// longest-prefix-match. The zero value is an empty trie ready to use.
type Trie struct {
	root *trieNode
	size int
}

type trieNode struct {
	children [2]*trieNode
	route    *Route
}

// Insert adds or replaces the route for a prefix.
func (t *Trie) Insert(r Route) {
	if r.Len < 0 || r.Len > 32 {
		panic(fmt.Sprintf("bgp: invalid prefix length %d", r.Len))
	}
	// Canonicalise: zero the host bits.
	if r.Len < 32 {
		r.Addr &= ^uint32(0) << (32 - uint(r.Len))
	}
	if t.root == nil {
		t.root = &trieNode{}
	}
	node := t.root
	for i := 0; i < r.Len; i++ {
		bit := (r.Addr >> (31 - uint(i))) & 1
		if node.children[bit] == nil {
			node.children[bit] = &trieNode{}
		}
		node = node.children[bit]
	}
	if node.route == nil {
		t.size++
	}
	rr := r
	node.route = &rr
}

// Lookup returns the longest-prefix-match route for an address.
func (t *Trie) Lookup(ip uint32) (Route, bool) {
	if t.root == nil {
		return Route{}, false
	}
	var best *Route
	node := t.root
	if node.route != nil {
		best = node.route
	}
	for i := 0; i < 32 && node != nil; i++ {
		bit := (ip >> (31 - uint(i))) & 1
		node = node.children[bit]
		if node != nil && node.route != nil {
			best = node.route
		}
	}
	if best == nil {
		return Route{}, false
	}
	return *best, true
}

// Len reports the number of routes stored.
func (t *Trie) Len() int { return t.size }

// Walk visits every route in address order (then by ascending prefix
// length, i.e. less-specifics first).
func (t *Trie) Walk(fn func(Route)) {
	var routes []Route
	var rec func(n *trieNode)
	rec = func(n *trieNode) {
		if n == nil {
			return
		}
		if n.route != nil {
			routes = append(routes, *n.route)
		}
		rec(n.children[0])
		rec(n.children[1])
	}
	rec(t.root)
	sort.Slice(routes, func(i, j int) bool {
		if routes[i].Addr != routes[j].Addr {
			return routes[i].Addr < routes[j].Addr
		}
		return routes[i].Len < routes[j].Len
	})
	for _, r := range routes {
		fn(r)
	}
}

// ParsePrefix parses "a.b.c.d/len" CIDR notation.
func ParsePrefix(s string) (addr uint32, length int, err error) {
	slash := strings.IndexByte(s, '/')
	if slash < 0 {
		return 0, 0, fmt.Errorf("bgp: missing / in prefix %q", s)
	}
	octets := strings.Split(s[:slash], ".")
	if len(octets) != 4 {
		return 0, 0, fmt.Errorf("bgp: bad address in %q", s)
	}
	for _, o := range octets {
		v := 0
		if o == "" {
			return 0, 0, fmt.Errorf("bgp: empty octet in %q", s)
		}
		for _, c := range o {
			if c < '0' || c > '9' {
				return 0, 0, fmt.Errorf("bgp: bad octet %q", o)
			}
			v = v*10 + int(c-'0')
		}
		if v > 255 {
			return 0, 0, fmt.Errorf("bgp: octet out of range in %q", s)
		}
		addr = addr<<8 | uint32(v)
	}
	if slash+1 >= len(s) {
		return 0, 0, fmt.Errorf("bgp: missing length in %q", s)
	}
	l := 0
	for _, c := range s[slash+1:] {
		if c < '0' || c > '9' {
			return 0, 0, fmt.Errorf("bgp: bad length in %q", s)
		}
		l = l*10 + int(c-'0')
	}
	if l > 32 {
		return 0, 0, fmt.Errorf("bgp: length out of range in %q", s)
	}
	return addr, l, nil
}
