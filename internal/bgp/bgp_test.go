package bgp

import (
	"bytes"
	"math/rand"
	"testing"
	"testing/quick"

	"geonet/internal/netgen"
	"geonet/internal/population"
	"geonet/internal/rng"
)

func TestTrieBasicLPM(t *testing.T) {
	var tr Trie
	tr.Insert(Route{Addr: 0x0A000000, Len: 8, Origin: 100})  // 10/8
	tr.Insert(Route{Addr: 0x0A010000, Len: 16, Origin: 200}) // 10.1/16
	tr.Insert(Route{Addr: 0x0A010200, Len: 24, Origin: 300}) // 10.1.2/24

	cases := []struct {
		ip   uint32
		want int
	}{
		{0x0A000001, 100}, // 10.0.0.1 -> /8
		{0x0A010001, 200}, // 10.1.0.1 -> /16
		{0x0A010201, 300}, // 10.1.2.1 -> /24
		{0x0A010301, 200}, // 10.1.3.1 -> /16
		{0x0AFF0001, 100}, // 10.255.0.1 -> /8
	}
	for _, c := range cases {
		r, ok := tr.Lookup(c.ip)
		if !ok || r.Origin != c.want {
			t.Errorf("Lookup(%x) = %v,%v want origin %d", c.ip, r.Origin, ok, c.want)
		}
	}
	if _, ok := tr.Lookup(0x0B000001); ok {
		t.Error("lookup outside any prefix should miss")
	}
	if tr.Len() != 3 {
		t.Errorf("Len = %d, want 3", tr.Len())
	}
}

func TestTrieReplace(t *testing.T) {
	var tr Trie
	tr.Insert(Route{Addr: 0x0A000000, Len: 8, Origin: 1})
	tr.Insert(Route{Addr: 0x0A000000, Len: 8, Origin: 2})
	if tr.Len() != 1 {
		t.Errorf("Len after replace = %d, want 1", tr.Len())
	}
	r, _ := tr.Lookup(0x0A000001)
	if r.Origin != 2 {
		t.Errorf("replaced origin = %d, want 2", r.Origin)
	}
}

func TestTrieHostBitCanonicalisation(t *testing.T) {
	var tr Trie
	// Host bits set in the inserted prefix must be ignored.
	tr.Insert(Route{Addr: 0x0A0101FF, Len: 16, Origin: 5})
	if r, ok := tr.Lookup(0x0A01FFFF); !ok || r.Origin != 5 {
		t.Error("canonicalised prefix did not match")
	}
}

func TestTrieDefaultRoute(t *testing.T) {
	var tr Trie
	tr.Insert(Route{Addr: 0, Len: 0, Origin: 7})
	if r, ok := tr.Lookup(0xDEADBEEF); !ok || r.Origin != 7 {
		t.Error("default route must match everything")
	}
}

// naiveLPM is the reference longest-prefix-match implementation for the
// property test.
func naiveLPM(routes []Route, ip uint32) (Route, bool) {
	best := -1
	var out Route
	for _, r := range routes {
		mask := uint32(0)
		if r.Len > 0 {
			mask = ^uint32(0) << (32 - uint(r.Len))
		}
		if ip&mask == r.Addr&mask && r.Len > best {
			best = r.Len
			out = r
		}
	}
	return out, best >= 0
}

func TestTrieMatchesNaiveLPM(t *testing.T) {
	rnd := rand.New(rand.NewSource(99))
	for trial := 0; trial < 30; trial++ {
		var tr Trie
		var routes []Route
		seen := map[[2]uint32]bool{}
		for i := 0; i < 200; i++ {
			length := rnd.Intn(25) + 8
			addr := rnd.Uint32() & (^uint32(0) << (32 - uint(length)))
			key := [2]uint32{addr, uint32(length)}
			if seen[key] {
				continue
			}
			seen[key] = true
			r := Route{Addr: addr, Len: length, Origin: i}
			routes = append(routes, r)
			tr.Insert(r)
		}
		for probe := 0; probe < 500; probe++ {
			ip := rnd.Uint32()
			if probe%3 == 0 && len(routes) > 0 {
				// Bias probes into covered space.
				ip = routes[rnd.Intn(len(routes))].Addr | (rnd.Uint32() & 0xffff)
			}
			gr, gok := tr.Lookup(ip)
			nr, nok := naiveLPM(routes, ip)
			if gok != nok {
				t.Fatalf("trial %d ip %x: trie ok=%v naive ok=%v", trial, ip, gok, nok)
			}
			if gok && (gr.Len != nr.Len) {
				t.Fatalf("trial %d ip %x: trie len=%d naive len=%d", trial, ip, gr.Len, nr.Len)
			}
		}
	}
}

func TestTrieWalkOrdered(t *testing.T) {
	var tr Trie
	tr.Insert(Route{Addr: 0x0B000000, Len: 8, Origin: 2})
	tr.Insert(Route{Addr: 0x0A000000, Len: 8, Origin: 1})
	tr.Insert(Route{Addr: 0x0A000000, Len: 16, Origin: 3})
	var got []int
	tr.Walk(func(r Route) { got = append(got, r.Origin) })
	want := []int{1, 3, 2}
	for i := range want {
		if got[i] != want[i] {
			t.Fatalf("walk order = %v, want %v", got, want)
		}
	}
}

func TestParsePrefix(t *testing.T) {
	addr, l, err := ParsePrefix("10.1.2.0/24")
	if err != nil || addr != 0x0A010200 || l != 24 {
		t.Errorf("ParsePrefix = %x/%d, %v", addr, l, err)
	}
	for _, bad := range []string{"10.1.2.0", "10.1.2/24", "300.1.1.0/8", "10.1.2.0/33", "a.b.c.d/8", "10.1.2.0/"} {
		if _, _, err := ParsePrefix(bad); err == nil {
			t.Errorf("ParsePrefix(%q) should fail", bad)
		}
	}
	// Round trip through Route.Prefix.
	f := func(a uint32, l8 uint8) bool {
		l := int(l8 % 33)
		mask := uint32(0)
		if l > 0 {
			mask = ^uint32(0) << (32 - uint(l))
		}
		r := Route{Addr: a & mask, Len: l}
		pa, pl, err := ParsePrefix(r.Prefix())
		return err == nil && pa == r.Addr && pl == r.Len
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestAssembleAgainstGroundTruth(t *testing.T) {
	world := population.Build(population.DefaultConfig(), rng.New(1))
	gcfg := netgen.DefaultConfig()
	gcfg.Scale = 0.01
	in := netgen.Build(gcfg, world)

	table := Assemble(in, DefaultAssembleConfig(), rng.New(2))
	if table.Len() == 0 {
		t.Fatal("empty table")
	}

	correct, wrong, unmapped, total := 0, 0, 0, 0
	for _, ifc := range in.Ifaces {
		if ifc.Private || ifc.IP == 0 {
			continue
		}
		total++
		truth := in.ASes[in.Routers[ifc.Router].AS].Number
		got, ok := table.OriginAS(ifc.IP)
		switch {
		case !ok:
			unmapped++
		case got == truth:
			correct++
		default:
			wrong++
		}
	}
	if total == 0 {
		t.Fatal("no interfaces to check")
	}
	unmappedFrac := float64(unmapped) / float64(total)
	if unmappedFrac > 0.06 {
		t.Errorf("unmapped fraction = %v, want < 6%% (paper: 1.5-2.8%%)", unmappedFrac)
	}
	wrongFrac := float64(wrong) / float64(total)
	if wrongFrac > 0.01 {
		t.Errorf("wrong-origin fraction = %v, want < 1%%", wrongFrac)
	}
	if float64(correct)/float64(total) < 0.9 {
		t.Errorf("correct fraction = %v, want > 90%%", float64(correct)/float64(total))
	}
}

func TestTableSerialiseRoundTrip(t *testing.T) {
	var table Table
	table.Insert(Route{Addr: 0x04000000, Len: 14, Origin: 64})
	table.Insert(Route{Addr: 0x04040000, Len: 24, Origin: 65})
	table.Insert(Route{Addr: 0xC0A80000, Len: 16, Origin: 99})

	var buf bytes.Buffer
	if _, err := table.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Len() != table.Len() {
		t.Fatalf("round trip lost routes: %d vs %d", back.Len(), table.Len())
	}
	for _, ip := range []uint32{0x04000001, 0x04040001, 0xC0A80101} {
		a, aok := table.OriginAS(ip)
		b, bok := back.OriginAS(ip)
		if a != b || aok != bok {
			t.Errorf("lookup %x differs after round trip", ip)
		}
	}
}

func TestReadRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"10.0.0.0/8",           // missing origin
		"10.0.0.0/8|x",         // non-numeric origin
		"10.0.0.0|8|1",         // wrong separators
		"10.0.0.0/40|12",       // bad length
		"10.0.0.0/8|1|toomany", // extra field
	} {
		if _, err := Read(bytes.NewBufferString(bad + "\n")); err == nil {
			t.Errorf("Read(%q) should fail", bad)
		}
	}
	// Comments and blanks are fine.
	table, err := Read(bytes.NewBufferString("# comment\n\n10.0.0.0/8|5\n"))
	if err != nil || table.Len() != 1 {
		t.Errorf("comment handling broken: %v, len=%d", err, table.Len())
	}
}
