package bgp

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"

	"geonet/internal/netgen"
	"geonet/internal/rng"
)

// Table is an assembled BGP routing table with longest-prefix-match
// origin lookup — the reproduction's RouteViews stand-in.
type Table struct {
	trie Trie
}

// AssembleConfig controls how the synthetic RouteViews table is built
// from ground truth.
type AssembleConfig struct {
	// MissingASProb drops all announcements of an AS (a vantage-point
	// coverage gap). The paper found 1.5% (Skitter epoch) to 2.8%
	// (Mercator epoch) of addresses unmappable; small ASes missing
	// from the table union reproduce that.
	MissingASProb float64
	// MoreSpecificProb announces a random /24 more-specific alongside
	// an AS's aggregate (multihoming/traffic engineering leakage),
	// exercising true longest-prefix-match behaviour.
	MoreSpecificProb float64
	// StaleOriginProb re-originates a more-specific from a *different*
	// AS (a stale or hijacked route), a real-world mapping error source.
	StaleOriginProb float64
}

// DefaultAssembleConfig mirrors the Skitter-epoch table quality.
func DefaultAssembleConfig() AssembleConfig {
	return AssembleConfig{
		MissingASProb:    0.02,
		MoreSpecificProb: 0.10,
		StaleOriginProb:  0.003,
	}
}

// Assemble builds the table from the ground-truth allocation. Only
// stub and small transit ASes can fall into coverage gaps — every
// vantage point sees the big backbones, exactly as with RouteViews.
func Assemble(in *netgen.Internet, cfg AssembleConfig, s *rng.Stream) *Table {
	t := &Table{}
	for _, as := range in.ASes {
		missing := as.Type == netgen.Stub && s.Bool(cfg.MissingASProb)
		for _, p := range as.Prefixes {
			if missing {
				continue
			}
			t.trie.Insert(Route{Addr: p.Addr, Len: p.Len, Origin: as.Number})
			if s.Bool(cfg.MoreSpecificProb) && p.Len < 24 {
				// Announce one covered /24 as a more-specific.
				span := uint32(1) << (24 - uint(p.Len))
				sub := p.Addr + (uint32(s.Intn(int(span))) << 8)
				origin := as.Number
				if s.Bool(cfg.StaleOriginProb / cfg.MoreSpecificProb) {
					// Stale origin: some other AS.
					other := in.ASes[s.Intn(len(in.ASes))]
					origin = other.Number
				}
				t.trie.Insert(Route{Addr: sub, Len: 24, Origin: origin})
			}
		}
	}
	return t
}

// OriginAS returns the AS number originating the longest matching
// prefix for ip, or ok=false when the table has no covering route —
// the addresses the paper groups into a separate AS "which was omitted
// in our analysis of Autonomous Systems".
func (t *Table) OriginAS(ip uint32) (int, bool) {
	r, ok := t.trie.Lookup(ip)
	if !ok {
		return 0, false
	}
	return r.Origin, true
}

// Len reports the number of routes.
func (t *Table) Len() int { return t.trie.Len() }

// Insert adds a route directly (tests and file loading).
func (t *Table) Insert(r Route) { t.trie.Insert(r) }

// Walk visits all routes in canonical order.
func (t *Table) Walk(fn func(Route)) { t.trie.Walk(fn) }

// WriteTo serialises the table in the pipe-separated text form used by
// common RouteViews post-processing scripts: "prefix|origin_as".
func (t *Table) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	var err error
	t.Walk(func(r Route) {
		if err != nil {
			return
		}
		var k int
		k, err = fmt.Fprintf(bw, "%s|%d\n", r.Prefix(), r.Origin)
		n += int64(k)
	})
	if err != nil {
		return n, err
	}
	return n, bw.Flush()
}

// Read parses a table previously written by WriteTo (blank lines and
// '#' comments are skipped).
func Read(r io.Reader) (*Table, error) {
	t := &Table{}
	sc := bufio.NewScanner(r)
	line := 0
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		parts := strings.Split(text, "|")
		if len(parts) != 2 {
			return nil, fmt.Errorf("bgp: line %d: want prefix|origin, got %q", line, text)
		}
		addr, length, err := ParsePrefix(parts[0])
		if err != nil {
			return nil, fmt.Errorf("bgp: line %d: %v", line, err)
		}
		origin, err := strconv.Atoi(parts[1])
		if err != nil {
			return nil, fmt.Errorf("bgp: line %d: bad origin %q", line, parts[1])
		}
		t.Insert(Route{Addr: addr, Len: length, Origin: origin})
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	return t, nil
}
