package topo

import (
	"sort"

	"geonet/internal/geo"
)

// Points returns every node location.
func (d *Dataset) Points() []geo.Point {
	out := make([]geo.Point, len(d.Nodes))
	for i, n := range d.Nodes {
		out[i] = n.Loc
	}
	return out
}

// NumLocations counts distinct quantised node locations — the
// "Locations" column of Table I.
func (d *Dataset) NumLocations() int {
	return geo.DistinctLocations(d.Points())
}

// InRegion returns the sub-dataset of nodes inside the region and the
// links whose both endpoints survive.
func (d *Dataset) InRegion(r geo.Region) *Dataset {
	sub := &Dataset{
		Name:        d.Name,
		Mapper:      d.Mapper,
		Granularity: d.Granularity,
	}
	remap := make([]int32, len(d.Nodes))
	for i := range remap {
		remap[i] = -1
	}
	for i, n := range d.Nodes {
		if r.Contains(n.Loc) {
			remap[i] = int32(len(sub.Nodes))
			sub.Nodes = append(sub.Nodes, n)
		}
	}
	for _, l := range d.Links {
		a, b := remap[l.A], remap[l.B]
		if a < 0 || b < 0 {
			continue
		}
		sub.Links = append(sub.Links, Link{A: a, B: b, LengthMi: l.LengthMi})
	}
	return sub
}

// ASInfo aggregates one AS's presence in a dataset (Section VI).
type ASInfo struct {
	ASN int
	// Interfaces is the node count (interfaces for Skitter, routers
	// for Mercator — the paper uses whichever granularity the dataset
	// has).
	Interfaces int
	// Locations is the number of distinct quantised locations.
	Locations int
	// Degree is the number of other ASes this AS links to.
	Degree int
	// Points are the node locations (for convex hulls).
	Points []geo.Point
}

// ASAggregate groups nodes by AS, computes the three size measures of
// Figure 7 and collects per-AS point sets. Nodes with ASN 0 are
// omitted, as in the paper.
func (d *Dataset) ASAggregate() []ASInfo {
	byASN := map[int]*ASInfo{}
	for _, n := range d.Nodes {
		if n.ASN == 0 {
			continue
		}
		info := byASN[n.ASN]
		if info == nil {
			info = &ASInfo{ASN: n.ASN}
			byASN[n.ASN] = info
		}
		info.Interfaces++
		info.Points = append(info.Points, n.Loc)
	}
	// Degree from interdomain links.
	neighbors := map[int]map[int]struct{}{}
	for _, l := range d.Links {
		a, b := d.Nodes[l.A].ASN, d.Nodes[l.B].ASN
		if a == 0 || b == 0 || a == b {
			continue
		}
		if neighbors[a] == nil {
			neighbors[a] = map[int]struct{}{}
		}
		if neighbors[b] == nil {
			neighbors[b] = map[int]struct{}{}
		}
		neighbors[a][b] = struct{}{}
		neighbors[b][a] = struct{}{}
	}
	out := make([]ASInfo, 0, len(byASN))
	asns := make([]int, 0, len(byASN))
	for asn := range byASN {
		asns = append(asns, asn)
	}
	sort.Ints(asns)
	for _, asn := range asns {
		info := byASN[asn]
		info.Locations = geo.DistinctLocations(info.Points)
		info.Degree = len(neighbors[asn])
		out = append(out, *info)
	}
	return out
}

// LinkClassStats summarises one link class for Table VI.
type LinkClassStats struct {
	Count      int
	MeanLength float64
}

// DomainLinkStats partitions links into interdomain and intradomain for
// nodes (and links) within a region, returning the two classes' counts
// and mean lengths — one row of Table VI. Links with an AS-unmapped
// endpoint are excluded.
func (d *Dataset) DomainLinkStats(r geo.Region) (inter, intra LinkClassStats) {
	var sumInter, sumIntra float64
	for _, l := range d.Links {
		a, b := d.Nodes[l.A], d.Nodes[l.B]
		if !r.Contains(a.Loc) || !r.Contains(b.Loc) {
			continue
		}
		if a.ASN == 0 || b.ASN == 0 {
			continue
		}
		if a.ASN != b.ASN {
			inter.Count++
			sumInter += l.LengthMi
		} else {
			intra.Count++
			sumIntra += l.LengthMi
		}
	}
	if inter.Count > 0 {
		inter.MeanLength = sumInter / float64(inter.Count)
	}
	if intra.Count > 0 {
		intra.MeanLength = sumIntra / float64(intra.Count)
	}
	return inter, intra
}
