package topo

import (
	"testing"

	"geonet/internal/bgp"
	"geonet/internal/dnsdb"
	"geonet/internal/geo"
	"geonet/internal/geoloc"
	"geonet/internal/netgen"
	"geonet/internal/netsim"
	"geonet/internal/population"
	"geonet/internal/probe/mercator"
	"geonet/internal/probe/skitter"
	"geonet/internal/rng"
	"geonet/internal/whois"
)

type fixture struct {
	in    *netgen.Internet
	ix    geoloc.Mapper
	table *bgp.Table
	sk    *Dataset
	mc    *Dataset
}

var shared *fixture

func setup(tb testing.TB) *fixture {
	tb.Helper()
	if shared != nil {
		return shared
	}
	world := population.Build(population.DefaultConfig(), rng.New(1))
	cfg := netgen.DefaultConfig()
	cfg.Scale = 0.02
	in := netgen.Build(cfg, world)
	net := netsim.Compile(in)
	dns, err := dnsdb.FromInternet(in)
	if err != nil {
		tb.Fatal(err)
	}
	res := geoloc.Resources{DNS: dns, Whois: whois.FromInternet(in), Dict: world.CodeDictionary()}
	ix := geoloc.NewIxMapper(res)
	table := bgp.Assemble(in, bgp.DefaultAssembleConfig(), rng.New(2))

	raw := skitter.Collect(net, skitter.DefaultConfig(), rng.New(3))
	merc := mercator.Collect(net, mercator.DefaultConfig(), rng.New(4))

	shared = &fixture{
		in:    in,
		ix:    ix,
		table: table,
		sk:    FromSkitter(raw, ix, table),
		mc:    FromMercator(merc, ix, table),
	}
	return shared
}

func TestSkitterDatasetShape(t *testing.T) {
	f := setup(t)
	d := f.sk
	if d.Granularity != Interfaces {
		t.Error("skitter dataset should be interface-granularity")
	}
	if len(d.Nodes) == 0 || len(d.Links) == 0 {
		t.Fatalf("empty dataset: %d nodes, %d links", len(d.Nodes), len(d.Links))
	}
	// Destination-list discard must bite (paper: 18%).
	if d.Stats.DiscardedDest == 0 {
		t.Error("no destination-list interfaces discarded")
	}
	destFrac := float64(d.Stats.DiscardedDest) / float64(d.Stats.RawNodes)
	if destFrac < 0.02 || destFrac > 0.5 {
		t.Errorf("destination discard = %.1f%%, want a notable minority", destFrac*100)
	}
	// Unmapped discard should be small (paper: ~1.5%).
	unFrac := float64(d.Stats.DiscardedUnmapped) / float64(d.Stats.RawNodes)
	if unFrac > 0.05 {
		t.Errorf("unmapped discard = %.1f%%, want < 5%%", unFrac*100)
	}
}

func TestMercatorDatasetShape(t *testing.T) {
	f := setup(t)
	d := f.mc
	if d.Granularity != Routers {
		t.Error("mercator dataset should be router-granularity")
	}
	if len(d.Nodes) == 0 || len(d.Links) == 0 {
		t.Fatal("empty dataset")
	}
	// Tie discards exist but are small (paper: 2.5-2.9%).
	tieFrac := float64(d.Stats.DiscardedTies) / float64(len(d.Nodes)+d.Stats.DiscardedTies)
	if tieFrac > 0.10 {
		t.Errorf("tie discard = %.1f%%, want < 10%%", tieFrac*100)
	}
}

func TestNodeLocationsValid(t *testing.T) {
	f := setup(t)
	for _, d := range []*Dataset{f.sk, f.mc} {
		for _, n := range d.Nodes {
			if !n.Loc.Valid() {
				t.Fatalf("%s: node %d has invalid location", d.Name, n.IP)
			}
		}
	}
}

func TestLinkLengthsMatchNodeDistance(t *testing.T) {
	f := setup(t)
	for _, d := range []*Dataset{f.sk, f.mc} {
		for _, l := range d.Links[:min(500, len(d.Links))] {
			want := geo.DistanceMiles(d.Nodes[l.A].Loc, d.Nodes[l.B].Loc)
			if l.LengthMi != want {
				t.Fatalf("%s: link length %f != %f", d.Name, l.LengthMi, want)
			}
		}
	}
}

func TestASLabelsMostlyCorrect(t *testing.T) {
	f := setup(t)
	correct, wrong, unmapped := 0, 0, 0
	for _, n := range f.sk.Nodes {
		ifid, ok := f.in.ByIP[n.IP]
		if !ok {
			continue
		}
		truth := f.in.ASes[f.in.Routers[f.in.Ifaces[ifid].Router].AS].Number
		switch {
		case n.ASN == 0:
			unmapped++
		case n.ASN == truth:
			correct++
		default:
			wrong++
		}
	}
	total := correct + wrong + unmapped
	if total == 0 {
		t.Fatal("no nodes checked")
	}
	if float64(correct)/float64(total) < 0.9 {
		t.Errorf("AS label accuracy = %d/%d", correct, total)
	}
	if unmapped == 0 {
		t.Error("expected some AS-unmapped nodes (BGP coverage gaps)")
	}
}

func TestInRegionSubsets(t *testing.T) {
	f := setup(t)
	us := f.sk.InRegion(geo.US)
	if len(us.Nodes) == 0 {
		t.Fatal("no US nodes")
	}
	if len(us.Nodes) >= len(f.sk.Nodes) {
		t.Error("US subset should be smaller than world")
	}
	for _, n := range us.Nodes {
		if !geo.US.Contains(n.Loc) {
			t.Fatal("US subset contains node outside region")
		}
	}
	for _, l := range us.Links {
		if int(l.A) >= len(us.Nodes) || int(l.B) >= len(us.Nodes) {
			t.Fatal("subset link indexes out of range")
		}
	}
	// US should dominate the dataset (~half of paper interfaces).
	frac := float64(len(us.Nodes)) / float64(len(f.sk.Nodes))
	if frac < 0.25 {
		t.Errorf("US node share = %.1f%%, want dominant", frac*100)
	}
}

func TestNumLocations(t *testing.T) {
	f := setup(t)
	n := f.sk.NumLocations()
	if n <= 0 || n > len(f.sk.Nodes) {
		t.Fatalf("NumLocations = %d", n)
	}
	// Many nodes share city locations, so locations << nodes.
	if float64(n) > 0.7*float64(len(f.sk.Nodes)) {
		t.Errorf("locations (%d) suspiciously close to nodes (%d)", n, len(f.sk.Nodes))
	}
}

func TestASAggregate(t *testing.T) {
	f := setup(t)
	infos := f.sk.ASAggregate()
	if len(infos) < 50 {
		t.Fatalf("only %d ASes in aggregate", len(infos))
	}
	totalNodes := 0
	for _, info := range infos {
		if info.ASN == 0 {
			t.Fatal("sentinel AS 0 must be omitted")
		}
		if info.Interfaces <= 0 || info.Locations <= 0 {
			t.Fatalf("AS %d has empty aggregate", info.ASN)
		}
		if info.Locations > info.Interfaces {
			t.Fatalf("AS %d: locations %d > interfaces %d", info.ASN, info.Locations, info.Interfaces)
		}
		if len(info.Points) != info.Interfaces {
			t.Fatalf("AS %d: points/interfaces mismatch", info.ASN)
		}
		totalNodes += info.Interfaces
	}
	if totalNodes == 0 {
		t.Fatal("aggregate covers no nodes")
	}
	// Degrees must be symmetric-ish: at least one AS with degree > 10
	// (a backbone) and many with low degree.
	maxDeg := 0
	for _, info := range infos {
		if info.Degree > maxDeg {
			maxDeg = info.Degree
		}
	}
	if maxDeg < 10 {
		t.Errorf("max AS degree = %d, want a well-connected backbone", maxDeg)
	}
}

func TestDomainLinkStats(t *testing.T) {
	f := setup(t)
	inter, intra := f.sk.DomainLinkStats(geo.World)
	if inter.Count == 0 || intra.Count == 0 {
		t.Fatal("missing link class")
	}
	// Paper: >83% intradomain, interdomain about twice as long.
	frac := float64(intra.Count) / float64(intra.Count+inter.Count)
	if frac < 0.6 {
		t.Errorf("intradomain share = %.1f%%, want clear majority", frac*100)
	}
	if inter.MeanLength < intra.MeanLength {
		t.Errorf("interdomain mean (%f) should exceed intradomain (%f)",
			inter.MeanLength, intra.MeanLength)
	}
}

func TestDeterministicProcessing(t *testing.T) {
	f := setup(t)
	d2 := FromSkitter(reconstructRaw(f), f.ix, f.table)
	if len(d2.Nodes) != len(f.sk.Nodes) || len(d2.Links) != len(f.sk.Links) {
		t.Error("reprocessing produced different dataset")
	}
	for i := range d2.Nodes {
		if d2.Nodes[i] != f.sk.Nodes[i] {
			t.Fatal("node order not deterministic")
		}
	}
}

// reconstructRaw rebuilds the raw graph the fixture processed, to test
// determinism of processing alone.
var rawCache *skitter.RawGraph

func reconstructRaw(f *fixture) *skitter.RawGraph {
	if rawCache == nil {
		net := netsim.Compile(f.in)
		rawCache = skitter.Collect(net, skitter.DefaultConfig(), rng.New(3))
	}
	return rawCache
}

func min(a, b int) int {
	if a < b {
		return a
	}
	return b
}
