package topo

import (
	"bytes"
	"strings"
	"testing"

	"geonet/internal/geo"
)

// FuzzRead drives the dataset text parser with arbitrary input: it
// must reject or accept but never panic, and anything it accepts must
// survive a serialise/re-parse round trip (the format's stability
// contract).
func FuzzRead(f *testing.F) {
	// A valid document, produced the same way WriteTo does.
	var valid bytes.Buffer
	ds := &Dataset{Name: "skitter", Mapper: "ixmapper", Granularity: Interfaces}
	ds.Nodes = []Node{
		{IP: 167772161, Loc: geo.Pt(40.71, -74.0), ASN: 64},
		{IP: 167772162, Loc: geo.Pt(34.05, -118.24), ASN: 67},
	}
	ds.Links = []Link{{A: 0, B: 1, LengthMi: 2445.5}}
	if _, err := ds.WriteTo(&valid); err != nil {
		f.Fatal(err)
	}
	f.Add(valid.String())
	f.Add("")
	f.Add("D a b interfaces\n")
	f.Add("D a b routers\nN 1 0 0 0\n")
	f.Add("D a b bogus\n")
	f.Add("# comment only\n")
	f.Add("N 1 0 0 0\n")                            // node before header, no header at all
	f.Add("D a b interfaces\nN 1 91 0 0\n")         // invalid latitude
	f.Add("D a b interfaces\nN 1 NaN 0 0\n")        // NaN location
	f.Add("D a b interfaces\nL 0 1 5\n")            // link out of range
	f.Add("D a b interfaces\nN x y z w\n")          // unparseable fields
	f.Add("D a b interfaces\nX what\n")             // unknown record
	f.Add("D a b interfaces\nN 4294967296 0 0 0\n") // IP overflow
	f.Add("D a b interfaces\nN 1 0 0 0 extra\n")
	f.Add(strings.Repeat("D a b interfaces\n", 3))

	f.Fuzz(func(t *testing.T, input string) {
		d, err := Read(strings.NewReader(input))
		if err != nil {
			return
		}
		// Round trip: what the parser accepted must re-serialise and
		// re-parse to the same shape.
		var buf bytes.Buffer
		if _, err := d.WriteTo(&buf); err != nil {
			t.Fatalf("accepted dataset failed to serialise: %v", err)
		}
		d2, err := Read(&buf)
		if err != nil {
			t.Fatalf("round trip failed to parse: %v\ninput: %q\nserialised: %q", err, input, buf.String())
		}
		if len(d2.Nodes) != len(d.Nodes) || len(d2.Links) != len(d.Links) {
			t.Fatalf("round trip changed shape: %d/%d nodes, %d/%d links",
				len(d2.Nodes), len(d.Nodes), len(d2.Links), len(d.Links))
		}
	})
}
