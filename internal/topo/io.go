package topo

import (
	"bufio"
	"fmt"
	"io"
	"strconv"
	"strings"
)

// WriteTo serialises the dataset in a line-oriented text format:
//
//	D <name> <mapper> <granularity>
//	N <ip> <lat> <lon> <asn>       (one per node, in index order)
//	L <a> <b> <lengthMi>           (one per link)
//
// The format is stable, diff-friendly and consumable by the cmd tools.
func (d *Dataset) WriteTo(w io.Writer) (int64, error) {
	bw := bufio.NewWriter(w)
	var n int64
	count := func(k int, err error) error {
		n += int64(k)
		return err
	}
	if err := count(fmt.Fprintf(bw, "D %s %s %s\n", d.Name, d.Mapper, d.Granularity)); err != nil {
		return n, err
	}
	for _, nd := range d.Nodes {
		if err := count(fmt.Fprintf(bw, "N %d %.6f %.6f %d\n",
			nd.IP, nd.Loc.Lat, nd.Loc.Lon, nd.ASN)); err != nil {
			return n, err
		}
	}
	for _, l := range d.Links {
		if err := count(fmt.Fprintf(bw, "L %d %d %.4f\n", l.A, l.B, l.LengthMi)); err != nil {
			return n, err
		}
	}
	return n, bw.Flush()
}

// Read parses a dataset written by WriteTo. It validates link indices
// and rejects malformed lines with the offending line number.
func Read(r io.Reader) (*Dataset, error) {
	sc := bufio.NewScanner(r)
	sc.Buffer(make([]byte, 1<<16), 1<<20)
	d := &Dataset{}
	line := 0
	sawHeader := false
	for sc.Scan() {
		line++
		text := strings.TrimSpace(sc.Text())
		if text == "" || strings.HasPrefix(text, "#") {
			continue
		}
		fields := strings.Fields(text)
		switch fields[0] {
		case "D":
			if len(fields) != 4 {
				return nil, fmt.Errorf("topo: line %d: bad header", line)
			}
			d.Name = fields[1]
			d.Mapper = fields[2]
			if fields[3] == "routers" {
				d.Granularity = Routers
			} else if fields[3] == "interfaces" {
				d.Granularity = Interfaces
			} else {
				return nil, fmt.Errorf("topo: line %d: bad granularity %q", line, fields[3])
			}
			sawHeader = true
		case "N":
			if len(fields) != 5 {
				return nil, fmt.Errorf("topo: line %d: bad node", line)
			}
			ip, err1 := strconv.ParseUint(fields[1], 10, 32)
			lat, err2 := strconv.ParseFloat(fields[2], 64)
			lon, err3 := strconv.ParseFloat(fields[3], 64)
			asn, err4 := strconv.Atoi(fields[4])
			if err1 != nil || err2 != nil || err3 != nil || err4 != nil {
				return nil, fmt.Errorf("topo: line %d: bad node fields", line)
			}
			var node Node
			node.IP = uint32(ip)
			node.Loc.Lat, node.Loc.Lon = lat, lon
			node.ASN = asn
			if !node.Loc.Valid() {
				return nil, fmt.Errorf("topo: line %d: invalid location", line)
			}
			d.Nodes = append(d.Nodes, node)
		case "L":
			if len(fields) != 4 {
				return nil, fmt.Errorf("topo: line %d: bad link", line)
			}
			a, err1 := strconv.ParseInt(fields[1], 10, 32)
			b, err2 := strconv.ParseInt(fields[2], 10, 32)
			length, err3 := strconv.ParseFloat(fields[3], 64)
			if err1 != nil || err2 != nil || err3 != nil {
				return nil, fmt.Errorf("topo: line %d: bad link fields", line)
			}
			if a < 0 || b < 0 || int(a) >= len(d.Nodes) || int(b) >= len(d.Nodes) {
				return nil, fmt.Errorf("topo: line %d: link index out of range", line)
			}
			d.Links = append(d.Links, Link{A: int32(a), B: int32(b), LengthMi: length})
		default:
			return nil, fmt.Errorf("topo: line %d: unknown record %q", line, fields[0])
		}
	}
	if err := sc.Err(); err != nil {
		return nil, err
	}
	if !sawHeader {
		return nil, fmt.Errorf("topo: missing D header")
	}
	return d, nil
}
