// Package topo turns raw collector output into the processed datasets
// of Table I, applying exactly the pipeline of Section III:
//
//   - Skitter: discard destination-list interfaces (end hosts), private
//     addresses and anomalies; geolocate every surviving interface,
//     discarding unmappable ones; label each with its origin AS by
//     longest prefix match.
//   - Mercator: collapse interfaces to routers via the alias table;
//     locate each router at the location most commonly reported across
//     its interfaces, discarding ties; label with the AS most commonly
//     reported by its interfaces.
//
// Nodes whose address has no covering BGP route keep ASN 0 — the
// paper's "separate AS, which was omitted in our analysis of
// Autonomous Systems".
package topo

import (
	"sort"

	"geonet/internal/bgp"
	"geonet/internal/geo"
	"geonet/internal/geoloc"
	"geonet/internal/probe/mercator"
	"geonet/internal/probe/skitter"
)

// Granularity says whether dataset nodes are interfaces or routers.
type Granularity int

const (
	Interfaces Granularity = iota
	Routers
)

func (g Granularity) String() string {
	if g == Routers {
		return "routers"
	}
	return "interfaces"
}

// Node is one processed map node.
type Node struct {
	IP  uint32
	Loc geo.Point
	// ASN is the origin AS number, or 0 when unmapped.
	ASN int
}

// Link is a processed link between two nodes (indices into Nodes).
type Link struct {
	A, B     int32
	LengthMi float64
}

// Inter reports whether the link crosses AS boundaries, given the
// dataset's nodes. Links touching an AS-unmapped node are not counted
// as interdomain (the sentinel AS is excluded from AS analysis).
func (l Link) Inter(nodes []Node) bool {
	a, b := nodes[l.A], nodes[l.B]
	return a.ASN != 0 && b.ASN != 0 && a.ASN != b.ASN
}

// Stats records the processing pipeline's discards.
type Stats struct {
	RawNodes          int
	RawLinks          int
	DiscardedDest     int // skitter: destination-list interfaces
	DiscardedPrivate  int
	DiscardedUnmapped int // geolocation failures
	DiscardedTies     int // mercator: location ties
	ASUnmapped        int // kept, ASN 0
}

// Dataset is a processed, geolocated, AS-labelled map.
type Dataset struct {
	Name        string // "skitter" or "mercator"
	Mapper      string // "ixmapper" or "edgescape"
	Granularity Granularity
	Nodes       []Node
	Links       []Link
	Stats       Stats
}

func isPrivate(ip uint32) bool { return ip>>24 == 10 }

// FromSkitter processes a Skitter collection with the given mapper and
// BGP table.
func FromSkitter(raw *skitter.RawGraph, mapper geoloc.Mapper, table *bgp.Table) *Dataset {
	d := &Dataset{Name: "skitter", Mapper: mapper.Name(), Granularity: Interfaces}
	d.Stats.RawNodes = len(raw.Nodes)
	d.Stats.RawLinks = len(raw.Links)

	index := make(map[uint32]int32, len(raw.Nodes))
	ips := make([]uint32, 0, len(raw.Nodes))
	for ip := range raw.Nodes {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })

	for _, ip := range ips {
		if _, isDest := raw.DestIPs[ip]; isDest {
			d.Stats.DiscardedDest++
			continue
		}
		if isPrivate(ip) {
			d.Stats.DiscardedPrivate++
			continue
		}
		loc, ok := mapper.Locate(ip)
		if !ok {
			d.Stats.DiscardedUnmapped++
			continue
		}
		asn, ok := table.OriginAS(ip)
		if !ok {
			asn = 0
			d.Stats.ASUnmapped++
		}
		index[ip] = int32(len(d.Nodes))
		d.Nodes = append(d.Nodes, Node{IP: ip, Loc: loc, ASN: asn})
	}
	d.addLinks(raw.Links, index)
	return d
}

// FromMercator processes a Mercator collection.
func FromMercator(res *mercator.Result, mapper geoloc.Mapper, table *bgp.Table) *Dataset {
	d := &Dataset{Name: "mercator", Mapper: mapper.Name(), Granularity: Routers}
	d.Stats.RawNodes = len(res.IfaceNodes)
	d.Stats.RawLinks = len(res.RouterLinks)

	// Group member interfaces by canonical router address.
	members := map[uint32][]uint32{}
	for ip, canon := range res.Alias {
		members[canon] = append(members[canon], ip)
	}

	canons := make([]uint32, 0, len(res.RouterNodes))
	for c := range res.RouterNodes {
		canons = append(canons, c)
	}
	sort.Slice(canons, func(i, j int) bool { return canons[i] < canons[j] })

	index := make(map[uint32]int32, len(canons))
	for _, canon := range canons {
		ifaces := members[canon]
		sort.Slice(ifaces, func(i, j int) bool { return ifaces[i] < ifaces[j] })

		allPrivate := true
		for _, ip := range ifaces {
			if !isPrivate(ip) {
				allPrivate = false
				break
			}
		}
		if allPrivate {
			d.Stats.DiscardedPrivate++
			continue
		}

		loc, ok, tie := majorityLocation(ifaces, mapper)
		if tie {
			d.Stats.DiscardedTies++
			continue
		}
		if !ok {
			d.Stats.DiscardedUnmapped++
			continue
		}
		asn := majorityAS(ifaces, table)
		if asn == 0 {
			d.Stats.ASUnmapped++
		}
		index[canon] = int32(len(d.Nodes))
		d.Nodes = append(d.Nodes, Node{IP: canon, Loc: loc, ASN: asn})
	}

	links := make(map[[2]uint32]struct{}, len(res.RouterLinks))
	for l := range res.RouterLinks {
		links[l] = struct{}{}
	}
	d.addLinks(links, index)
	return d
}

// majorityLocation maps each interface and returns the most commonly
// reported location; tie reports an exact tie for the top count (the
// paper discards those routers: 2.9% IxMapper, 2.5% EdgeScape).
func majorityLocation(ifaces []uint32, mapper geoloc.Mapper) (loc geo.Point, ok, tie bool) {
	counts := map[geo.LocKey]int{}
	points := map[geo.LocKey]geo.Point{}
	for _, ip := range ifaces {
		if isPrivate(ip) {
			continue
		}
		if p, mapped := mapper.Locate(ip); mapped {
			k := p.Key()
			counts[k]++
			points[k] = p
		}
	}
	if len(counts) == 0 {
		return geo.Point{}, false, false
	}
	// Find the top two counts deterministically.
	keys := make([]geo.LocKey, 0, len(counts))
	for k := range counts {
		keys = append(keys, k)
	}
	sort.Slice(keys, func(i, j int) bool {
		if counts[keys[i]] != counts[keys[j]] {
			return counts[keys[i]] > counts[keys[j]]
		}
		if keys[i].Lat != keys[j].Lat {
			return keys[i].Lat < keys[j].Lat
		}
		return keys[i].Lon < keys[j].Lon
	})
	if len(keys) > 1 && counts[keys[0]] == counts[keys[1]] {
		return geo.Point{}, false, true
	}
	return points[keys[0]], true, false
}

// majorityAS labels a router with the AS most commonly reported by its
// interfaces (ties break toward the lower AS number, deterministically).
func majorityAS(ifaces []uint32, table *bgp.Table) int {
	counts := map[int]int{}
	for _, ip := range ifaces {
		if isPrivate(ip) {
			continue
		}
		if asn, ok := table.OriginAS(ip); ok {
			counts[asn]++
		}
	}
	best, bestCount := 0, 0
	asns := make([]int, 0, len(counts))
	for asn := range counts {
		asns = append(asns, asn)
	}
	sort.Ints(asns)
	for _, asn := range asns {
		if counts[asn] > bestCount {
			best, bestCount = asn, counts[asn]
		}
	}
	return best
}

func (d *Dataset) addLinks(raw map[[2]uint32]struct{}, index map[uint32]int32) {
	pairs := make([][2]uint32, 0, len(raw))
	for l := range raw {
		pairs = append(pairs, l)
	}
	sort.Slice(pairs, func(i, j int) bool {
		if pairs[i][0] != pairs[j][0] {
			return pairs[i][0] < pairs[j][0]
		}
		return pairs[i][1] < pairs[j][1]
	})
	for _, l := range pairs {
		a, okA := index[l[0]]
		b, okB := index[l[1]]
		if !okA || !okB {
			continue
		}
		d.Links = append(d.Links, Link{
			A: a, B: b,
			LengthMi: geo.DistanceMiles(d.Nodes[a].Loc, d.Nodes[b].Loc),
		})
	}
}
