package topo

import (
	"bytes"
	"strings"
	"testing"

	"geonet/internal/geo"
)

func sampleDataset() *Dataset {
	d := &Dataset{Name: "skitter", Mapper: "ixmapper", Granularity: Interfaces}
	d.Nodes = []Node{
		{IP: 0x04000001, ASN: 64},
		{IP: 0x04000102, ASN: 67},
		{IP: 0x04010003, ASN: 0},
	}
	d.Nodes[0].Loc.Lat, d.Nodes[0].Loc.Lon = 40.71, -74.01
	d.Nodes[1].Loc.Lat, d.Nodes[1].Loc.Lon = 34.05, -118.24
	d.Nodes[2].Loc.Lat, d.Nodes[2].Loc.Lon = 41.88, -87.63
	d.Links = []Link{
		{A: 0, B: 1, LengthMi: 2445.5},
		{A: 1, B: 2, LengthMi: 1745.0},
	}
	return d
}

func TestDatasetRoundTrip(t *testing.T) {
	d := sampleDataset()
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Name != d.Name || back.Mapper != d.Mapper || back.Granularity != d.Granularity {
		t.Errorf("header mismatch: %+v", back)
	}
	if len(back.Nodes) != len(d.Nodes) || len(back.Links) != len(d.Links) {
		t.Fatalf("size mismatch: %d/%d nodes, %d/%d links",
			len(back.Nodes), len(d.Nodes), len(back.Links), len(d.Links))
	}
	for i := range d.Nodes {
		if back.Nodes[i].IP != d.Nodes[i].IP || back.Nodes[i].ASN != d.Nodes[i].ASN {
			t.Fatalf("node %d mismatch", i)
		}
	}
	for i := range d.Links {
		if back.Links[i].A != d.Links[i].A || back.Links[i].B != d.Links[i].B {
			t.Fatalf("link %d mismatch", i)
		}
	}
}

func TestDatasetRoundTripRouters(t *testing.T) {
	d := sampleDataset()
	d.Granularity = Routers
	var buf bytes.Buffer
	if _, err := d.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if back.Granularity != Routers {
		t.Error("granularity lost")
	}
}

func TestReadRejectsMalformed(t *testing.T) {
	cases := []string{
		"",                                          // no header
		"N 1 40 -74 5\n",                            // node before header... (no header at all)
		"D skitter ixmapper weird\n",                // bad granularity
		"D s m interfaces\nN 1 40\n",                // short node
		"D s m interfaces\nN 1 91 -74 5\n",          // invalid latitude
		"D s m interfaces\nN x 40 -74 5\n",          // bad ip
		"D s m interfaces\nL 0 1 5\n",               // link out of range
		"D s m interfaces\nX what\n",                // unknown record
		"D s m interfaces\nN 1 40 -74 5\nL 0 3 5\n", // index out of range
	}
	for _, c := range cases {
		if _, err := Read(strings.NewReader(c)); err == nil {
			t.Errorf("Read(%q) should fail", c)
		}
	}
}

func TestReadSkipsCommentsAndBlanks(t *testing.T) {
	in := "# comment\n\nD skitter ixmapper interfaces\nN 1 40.0 -74.0 5\n"
	d, err := Read(strings.NewReader(in))
	if err != nil {
		t.Fatal(err)
	}
	if len(d.Nodes) != 1 {
		t.Errorf("nodes = %d", len(d.Nodes))
	}
}

func TestRoundTripPreservesAnalysis(t *testing.T) {
	// Serialisation must not perturb analysis results: link lengths
	// and AS labels survive to full precision.
	f := setup(t)
	var buf bytes.Buffer
	if _, err := f.sk.WriteTo(&buf); err != nil {
		t.Fatal(err)
	}
	back, err := Read(&buf)
	if err != nil {
		t.Fatal(err)
	}
	interA, intraA := f.sk.DomainLinkStats(geo.World)
	interB, intraB := back.DomainLinkStats(geo.World)
	if interA.Count != interB.Count || intraA.Count != intraB.Count {
		t.Errorf("domain link stats changed after round trip")
	}
	if f.sk.NumLocations() != back.NumLocations() {
		t.Errorf("locations changed: %d vs %d", f.sk.NumLocations(), back.NumLocations())
	}
}
