package core

import (
	"fmt"
	"math"

	"geonet/internal/analysis"
	"geonet/internal/geo"
)

// Experiment regenerates one table or figure of the paper.
type Experiment struct {
	ID    string
	Title string
	Run   func(p *Pipeline) Report
}

// distParams are the Section V analysis parameters per region: the
// paper's bin sizes (Figure 4 captions: 35/15/11 miles), the small-d
// fit ranges (Figure 5 x-axes) and where the large-d regime is averaged.
type distParams struct {
	region       geo.Region
	binMiles     float64
	smallDCutoff float64
	largeDMin    float64
}

func sectionVParams() []distParams {
	return []distParams{
		{geo.US, 35, 250, 1000},
		{geo.Europe, 15, 300, 400},
		{geo.Japan, 11, 200, 250},
	}
}

// bothDatasets is the order the paper's figure panels use.
func bothDatasets() []string { return []string{"mercator", "skitter"} }

// Experiments returns the full registry in paper order.
func Experiments() []Experiment {
	return []Experiment{
		{"table1", "Sizes of processed datasets", expTable1},
		{"table2", "Boundaries of regions studied", expTable2},
		{"table3", "Variation in people/interface density across regions", expTable3},
		{"table4", "Testing for homogeneity", expTable4},
		{"figure1", "Regions studied: mapped node scatter", expFigure1},
		{"figure2", "Router/interface density vs population density", expFigure2},
		{"figure3", "Regions used to test for homogeneity", expFigure3},
		{"figure4", "Empirical distance preference function", expFigure4},
		{"figure5", "Distance preference, small d, semi-log fit", expFigure5},
		{"figure6", "Cumulated distance preference, large d", expFigure6},
		{"table5", "Limits of distance sensitivity", expTable5},
		{"figure7", "Distributions of AS sizes", expFigure7},
		{"figure8", "Scatterplots of AS size measures", expFigure8},
		{"figure9", "CDFs of AS convex hull size", expFigure9},
		{"figure10", "Size measures vs convex hull", expFigure10},
		{"table6", "Intradomain vs interdomain links", expTable6},
		{"appendix", "EdgeScape replication of the main results (Figs. 11-17)", expAppendix},
		{"fractal", "Box-counting fractal dimension of node locations", expFractal},
	}
}

// RunExperiment runs one experiment by ID.
func RunExperiment(p *Pipeline, id string) (Report, error) {
	for _, e := range Experiments() {
		if e.ID == id {
			return e.Run(p), nil
		}
	}
	return Report{}, fmt.Errorf("core: unknown experiment %q", id)
}

func f(v float64) string  { return fmt.Sprintf("%.2f", v) }
func f0(v float64) string { return fmt.Sprintf("%.0f", v) }
func d(v int) string      { return fmt.Sprintf("%d", v) }

func expTable1(p *Pipeline) Report {
	r := Report{ID: "table1", Title: "Sizes of processed datasets"}
	t := Table{
		Header: []string{"Dataset", "Nodes", "Links", "Locations"},
	}
	for _, combo := range []Combo{
		{"mercator", "ixmapper"}, {"skitter", "ixmapper"},
		{"mercator", "edgescape"}, {"skitter", "edgescape"},
	} {
		ds := p.Datasets[combo]
		t.Rows = append(t.Rows, []string{
			fmt.Sprintf("%s, %s", combo.Mapper, combo.Dataset),
			d(len(ds.Nodes)), d(len(ds.Links)), d(ds.NumLocations()),
		})
	}
	r.Tables = append(r.Tables, t)
	sk := p.Dataset("skitter", "ixmapper")
	r.AddNote("skitter raw: %d interfaces, %d links; discarded %d dest-list, %d private, %d unmappable",
		sk.Stats.RawNodes, sk.Stats.RawLinks, sk.Stats.DiscardedDest,
		sk.Stats.DiscardedPrivate, sk.Stats.DiscardedUnmapped)
	mc := p.Dataset("mercator", "ixmapper")
	r.AddNote("mercator: %d location-tie routers discarded (paper: 2.9%%)", mc.Stats.DiscardedTies)
	return r
}

func expTable2(p *Pipeline) Report {
	r := Report{ID: "table2", Title: "Boundaries of regions studied"}
	t := Table{Header: []string{"Name", "North", "South", "West", "East"}}
	for _, reg := range geo.AnalysisRegions() {
		t.Rows = append(t.Rows, []string{
			reg.Name, f0(reg.North), f0(reg.South), f0(reg.West), f0(reg.East),
		})
	}
	r.Tables = append(r.Tables, t)
	return r
}

func expTable3(p *Pipeline) Report {
	r := Report{ID: "table3", Title: "People/interface density across regions"}
	ds := p.Dataset("skitter", "ixmapper")
	t := Table{Header: []string{
		"Region", "Population(M)", "Interfaces", "PeoplePerIface", "Online(M)", "OnlinePerIface"}}
	var rows []analysis.RegionDensityRow
	for _, reg := range geo.SurveyRegions() {
		row := analysis.RegionDensity(ds, p.World, reg)
		rows = append(rows, row)
		t.Rows = append(t.Rows, []string{
			reg.Name, f0(row.PopulationM), d(row.Nodes),
			f0(row.PeoplePerNode), f(row.OnlineM), f0(row.OnlinePerNode),
		})
	}
	r.Tables = append(r.Tables, t)
	// Exclude the aggregate World row from the variability comparison.
	named := rows[:len(rows)-1]
	r.AddNote("people/interface variability: %.0fx (paper: >100x)",
		analysis.VariabilityRatio(named, false))
	r.AddNote("online/interface variability: %.1fx (paper: ~4x)",
		analysis.VariabilityRatio(named, true))
	return r
}

func expTable4(p *Pipeline) Report {
	r := Report{ID: "table4", Title: "Testing for homogeneity"}
	ds := p.Dataset("skitter", "ixmapper")
	t := Table{Header: []string{"Region", "Population(M)", "Interfaces", "PeoplePerIface"}}
	var north, south float64
	for _, reg := range geo.HomogeneityRegions() {
		row := analysis.RegionDensity(ds, p.World, reg)
		t.Rows = append(t.Rows, []string{
			reg.Name, f0(row.PopulationM), d(row.Nodes), f0(row.PeoplePerNode)})
		switch reg.Name {
		case "Northern US":
			north = row.PeoplePerNode
		case "Southern US":
			south = row.PeoplePerNode
		}
	}
	r.Tables = append(r.Tables, t)
	if north > 0 && south > 0 {
		ratio := math.Max(north, south) / math.Min(north, south)
		r.AddNote("US halves differ by %.2fx (homogeneous); Central America is the outlier", ratio)
	}
	return r
}

func expFigure1(p *Pipeline) Report {
	r := Report{ID: "figure1", Title: "Mapped node scatter (skitter, ixmapper)"}
	ds := p.Dataset("skitter", "ixmapper")
	for _, reg := range geo.AnalysisRegions() {
		sub := ds.InRegion(reg)
		s := Series{Name: reg.Name}
		step := len(sub.Nodes)/2000 + 1
		for i := 0; i < len(sub.Nodes); i += step {
			s.X = append(s.X, sub.Nodes[i].Loc.Lon)
			s.Y = append(s.Y, sub.Nodes[i].Loc.Lat)
		}
		r.Series = append(r.Series, s)
		r.AddNote("%s: %d mapped nodes", reg.Name, len(sub.Nodes))
	}
	return r
}

func expFigure2(p *Pipeline) Report {
	r := Report{ID: "figure2", Title: "Node density vs population density (75' patches)"}
	t := Table{Header: []string{"Dataset", "Region", "Slope(alpha)", "Intercept", "R2", "Patches"}}
	for _, dsName := range bothDatasets() {
		ds := p.Dataset(dsName, "ixmapper")
		for _, reg := range geo.AnalysisRegions() {
			res := analysis.PatchDensity(ds, p.World.Raster, reg, 75)
			t.Rows = append(t.Rows, []string{
				dsName, reg.Name, f(res.Fit.Slope), f(res.Fit.Intercept),
				f(res.Fit.R2), d(res.Fit.N)})
			r.Series = append(r.Series, Series{
				Name: fmt.Sprintf("%s-%s", dsName, reg.Name),
				X:    res.LogPop, Y: res.LogCount,
			})
		}
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("paper slopes: 1.20/1.56/1.75 (mercator US/EU/JP), 1.26/1.60/1.71 (skitter); superlinear (>1) is the claim")
	return r
}

func expFigure3(p *Pipeline) Report {
	r := Report{ID: "figure3", Title: "Homogeneity test regions"}
	t := Table{Header: []string{"Name", "North", "South", "West", "East"}}
	ds := p.Dataset("skitter", "ixmapper")
	for _, reg := range geo.HomogeneityRegions() {
		t.Rows = append(t.Rows, []string{
			reg.Name, f(reg.North), f(reg.South), f0(reg.West), f0(reg.East)})
		sub := ds.InRegion(reg)
		s := Series{Name: reg.Name}
		step := len(sub.Nodes)/1000 + 1
		for i := 0; i < len(sub.Nodes); i += step {
			s.X = append(s.X, sub.Nodes[i].Loc.Lon)
			s.Y = append(s.Y, sub.Nodes[i].Loc.Lat)
		}
		r.Series = append(r.Series, s)
	}
	r.Tables = append(r.Tables, t)
	return r
}

func expFigure4(p *Pipeline) Report {
	r := Report{ID: "figure4", Title: "Empirical distance preference function f(d)"}
	for _, dsName := range bothDatasets() {
		ds := p.Dataset(dsName, "ixmapper")
		for _, prm := range sectionVParams() {
			dp := analysis.DistancePreference(ds, prm.region, prm.binMiles, 100)
			s := Series{Name: fmt.Sprintf("%s-%s", dsName, prm.region.Name)}
			for i := range dp.D {
				if dp.PairCount[i] > 0 {
					s.X = append(s.X, dp.D[i])
					s.Y = append(s.Y, dp.F[i])
				}
			}
			r.Series = append(r.Series, s)
		}
	}
	r.AddNote("bin sizes: US 35 mi, Europe 15 mi, Japan 11 mi (paper Figure 4)")
	return r
}

func expFigure5(p *Pipeline) Report {
	r := Report{ID: "figure5", Title: "Small-d semi-log fits of f(d)"}
	t := Table{Header: []string{"Dataset", "Region", "Slope", "Intercept", "DecayMiles", "R2"}}
	for _, dsName := range bothDatasets() {
		ds := p.Dataset(dsName, "ixmapper")
		for _, prm := range sectionVParams() {
			dp := analysis.DistancePreference(ds, prm.region, prm.binMiles, 100)
			fit := dp.FitSmallD(prm.smallDCutoff)
			t.Rows = append(t.Rows, []string{
				dsName, prm.region.Name,
				fmt.Sprintf("%.5f", fit.Fit.Slope), f(fit.Fit.Intercept),
				f0(fit.DecayMiles), f(fit.Fit.R2)})
			r.Series = append(r.Series, Series{
				Name: fmt.Sprintf("%s-%s", dsName, prm.region.Name),
				X:    fit.D, Y: fit.LnF,
			})
		}
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("paper slopes: US -0.0069/-0.0071, Europe -0.0128/-0.0123, Japan -0.0069/-0.0088")
	r.AddNote("paper reads these as Waxman decay lengths L*alpha ~ 140 mi (US/Japan), 80 mi (Europe)")
	return r
}

func expFigure6(p *Pipeline) Report {
	r := Report{ID: "figure6", Title: "Cumulated distance preference F(d), large d"}
	t := Table{Header: []string{"Dataset", "Region", "LinearR2", "MeanLargeF"}}
	for _, dsName := range bothDatasets() {
		ds := p.Dataset(dsName, "ixmapper")
		for _, prm := range sectionVParams() {
			dp := analysis.DistancePreference(ds, prm.region, prm.binMiles, 100)
			res := dp.CumulateLargeD(prm.largeDMin)
			t.Rows = append(t.Rows, []string{
				dsName, prm.region.Name, f(res.LinearFit.R2),
				fmt.Sprintf("%.3g", res.MeanF)})
			r.Series = append(r.Series, Series{
				Name: fmt.Sprintf("%s-%s", dsName, prm.region.Name),
				X:    res.D, Y: res.F,
			})
		}
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("linear F(d) at large d means f(d) is distance-independent there (paper Figure 6)")
	return r
}

func expTable5(p *Pipeline) Report {
	r := Report{ID: "table5", Title: "Limits of distance sensitivity"}
	t := Table{Header: []string{"Dataset", "Region", "Limit(mi)", "%Links<Limit"}}
	for _, dsName := range bothDatasets() {
		ds := p.Dataset(dsName, "ixmapper")
		for _, prm := range sectionVParams() {
			dp := analysis.DistancePreference(ds, prm.region, prm.binMiles, 100)
			lim := dp.FindSensitivityLimit(prm.smallDCutoff, prm.largeDMin)
			t.Rows = append(t.Rows, []string{
				dsName, prm.region.Name, f0(lim.LimitMiles),
				fmt.Sprintf("%.1f%%", lim.FracBelow*100)})
		}
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("paper: US 820/818 mi (82.1%%/77.2%%), Europe 383/366 (97.3%%/95.4%%), Japan 165/116 (91.5%%/92.8%%)")
	return r
}

func expFigure7(p *Pipeline) Report {
	r := Report{ID: "figure7", Title: "CCDFs of AS size measures (skitter, ixmapper)"}
	st := analysis.ASSizes(p.Dataset("skitter", "ixmapper").ASAggregate())
	add := func(name string, ccdf []analysis.CCDFPoint) {
		s := Series{Name: name}
		for _, pt := range ccdf {
			if pt.P > 0 && pt.X > 0 {
				s.X = append(s.X, math.Log10(pt.X))
				s.Y = append(s.Y, math.Log10(pt.P))
			}
		}
		r.Series = append(r.Series, s)
	}
	add("interfaces", st.InterfacesCCDF)
	add("locations", st.LocationsCCDF)
	add("degree", st.DegreesCCDF)
	r.AddNote("tail indexes: interfaces %.2f, locations %.2f, degree %.2f (all long-tailed)",
		analysis.TailIndex(st.InterfacesCCDF, 5).Slope,
		analysis.TailIndex(st.LocationsCCDF, 3).Slope,
		analysis.TailIndex(st.DegreesCCDF, 3).Slope)
	return r
}

func expFigure8(p *Pipeline) Report {
	r := Report{ID: "figure8", Title: "Pairwise AS size scatterplots (skitter, ixmapper)"}
	st := analysis.ASSizes(p.Dataset("skitter", "ixmapper").ASAggregate())
	scatter := func(name string, x, y []float64) {
		s := Series{Name: name}
		for i := range x {
			if x[i] > 0 && y[i] > 0 {
				s.X = append(s.X, math.Log10(x[i]))
				s.Y = append(s.Y, math.Log10(y[i]))
			}
		}
		r.Series = append(r.Series, s)
	}
	scatter("interfaces-locations", st.Interfaces, st.Locations)
	scatter("interfaces-degree", st.Interfaces, st.Degrees)
	scatter("locations-degree", st.Locations, st.Degrees)
	t := Table{Header: []string{"Pair", "Pearson(log)", "Spearman"}}
	t.Rows = append(t.Rows,
		[]string{"interfaces-locations", f(st.CorrIfaceLoc), f(st.SpearIfaceLoc)},
		[]string{"interfaces-degree", f(st.CorrIfaceDeg), f(st.SpearIfaceDeg)},
		[]string{"locations-degree", f(st.CorrLocDeg), f(st.SpearLocDeg)})
	r.Tables = append(r.Tables, t)
	r.AddNote("paper: interfaces-locations is the tightest; locations-degree at least as strong as interfaces-degree")
	return r
}

func expFigure9(p *Pipeline) Report {
	r := Report{ID: "figure9", Title: "CDFs of AS convex hull areas"}
	infos := p.Dataset("skitter", "ixmapper").ASAggregate()
	t := Table{Header: []string{"Scope", "ASes", "ZeroAreaFrac", "MaxArea(sqmi)"}}
	add := func(name string, st analysis.HullStats) {
		s := Series{Name: name}
		for _, pt := range st.AreaCDF {
			s.X = append(s.X, pt.X)
			s.Y = append(s.Y, pt.P)
		}
		r.Series = append(r.Series, s)
		max := 0.0
		for _, a := range st.Areas {
			if a > max {
				max = a
			}
		}
		t.Rows = append(t.Rows, []string{name, d(len(st.Areas)), f(st.ZeroFrac),
			fmt.Sprintf("%.3g", max)})
	}
	add("World", analysis.Hulls(infos, geo.WorldAlbers(), geo.World))
	add("US", analysis.Hulls(infos, geo.RegionAlbers(geo.US), geo.US))
	add("Europe", analysis.Hulls(infos, geo.RegionAlbers(geo.Europe), geo.Europe))
	r.Tables = append(r.Tables, t)
	r.AddNote("paper: ~80%% of ASes have one or two locations and thus zero area")
	return r
}

func expFigure10(p *Pipeline) Report {
	r := Report{ID: "figure10", Title: "AS size measures vs convex hull area"}
	ds := p.Dataset("skitter", "ixmapper")
	infos := ds.ASAggregate()
	hulls := analysis.Hulls(infos, geo.WorldAlbers(), geo.World)
	// Hulls preserves AS order for non-empty ASes; align by ASN.
	areaByASN := map[int]float64{}
	for i, asn := range hulls.ASNs {
		areaByASN[asn] = hulls.Areas[i]
	}
	var deg, iface, loc, area []float64
	for _, info := range infos {
		a, ok := areaByASN[info.ASN]
		if !ok {
			continue
		}
		deg = append(deg, float64(info.Degree))
		iface = append(iface, float64(info.Interfaces))
		loc = append(loc, float64(info.Locations))
		area = append(area, a)
	}
	t := Table{Header: []string{"SizeMeasure", "SaturationThreshold", "SmallSpread(p90/p10)", "SmallWorldwide"}}
	for _, m := range []struct {
		name string
		size []float64
	}{{"degree", deg}, {"interfaces", iface}, {"locations", loc}} {
		reg := analysis.FindDispersalRegimes(m.size, area, 0.5)
		t.Rows = append(t.Rows, []string{
			m.name, f0(reg.Threshold), f0(reg.SmallSpreadRatio),
			fmt.Sprintf("%v", reg.SmallWorldwide)})
		s := Series{Name: m.name + "-vs-hull"}
		for i := range m.size {
			if m.size[i] > 0 && area[i] > 0 {
				s.X = append(s.X, math.Log10(m.size[i]))
				s.Y = append(s.Y, math.Log10(area[i]))
			}
		}
		r.Series = append(r.Series, s)
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("paper thresholds: degree ~100, interfaces ~1000, locations ~100 (scale with world size)")
	return r
}

func expTable6(p *Pipeline) Report {
	r := Report{ID: "table6", Title: "Intradomain vs interdomain links (skitter, ixmapper)"}
	ds := p.Dataset("skitter", "ixmapper")
	t := Table{Header: []string{"Region", "InterCount", "InterMean(mi)", "IntraCount", "IntraMean(mi)", "IntraShare"}}
	regions := []geo.Region{geo.World, geo.US, geo.Europe, geo.Japan}
	for _, reg := range regions {
		inter, intra := ds.DomainLinkStats(reg)
		share := 0.0
		if inter.Count+intra.Count > 0 {
			share = float64(intra.Count) / float64(inter.Count+intra.Count)
		}
		t.Rows = append(t.Rows, []string{
			reg.Name, d(inter.Count), f0(inter.MeanLength),
			d(intra.Count), f0(intra.MeanLength),
			fmt.Sprintf("%.1f%%", share*100)})
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("paper: intradomain >=83%% of links and roughly half the length of interdomain")
	return r
}

func expAppendix(p *Pipeline) Report {
	r := Report{ID: "appendix", Title: "EdgeScape replication (Figures 11-17)"}
	// Figure 11: density fits.
	t := Table{Header: []string{"Panel", "Dataset", "Region", "Value"}}
	for _, dsName := range bothDatasets() {
		ds := p.Dataset(dsName, "edgescape")
		for _, reg := range geo.AnalysisRegions() {
			res := analysis.PatchDensity(ds, p.World.Raster, reg, 75)
			t.Rows = append(t.Rows, []string{"fig11-density-slope", dsName, reg.Name, f(res.Fit.Slope)})
		}
		for _, prm := range sectionVParams() {
			dp := analysis.DistancePreference(ds, prm.region, prm.binMiles, 100)
			fit := dp.FitSmallD(prm.smallDCutoff)
			t.Rows = append(t.Rows, []string{"fig13-smalld-slope", dsName, prm.region.Name,
				fmt.Sprintf("%.5f", fit.Fit.Slope)})
			lim := dp.FindSensitivityLimit(prm.smallDCutoff, prm.largeDMin)
			t.Rows = append(t.Rows, []string{"fig14-limit-miles", dsName, prm.region.Name, f0(lim.LimitMiles)})
		}
	}
	st := analysis.ASSizes(p.Dataset("skitter", "edgescape").ASAggregate())
	t.Rows = append(t.Rows,
		[]string{"fig16-corr-iface-loc", "skitter", "World", f(st.CorrIfaceLoc)},
		[]string{"fig16-corr-iface-deg", "skitter", "World", f(st.CorrIfaceDeg)},
		[]string{"fig16-corr-loc-deg", "skitter", "World", f(st.CorrLocDeg)})
	hull := analysis.Hulls(p.Dataset("skitter", "edgescape").ASAggregate(), geo.WorldAlbers(), geo.World)
	t.Rows = append(t.Rows, []string{"fig17-zero-area-frac", "skitter", "World", f(hull.ZeroFrac)})
	r.Tables = append(r.Tables, t)
	r.AddNote("the paper's appendix repeats Figures 2-10 with EdgeScape; conclusions must match IxMapper's")
	return r
}

func expFractal(p *Pipeline) Report {
	r := Report{ID: "fractal", Title: "Box-counting fractal dimension (Section II cross-check)"}
	ds := p.Dataset("skitter", "ixmapper")
	t := Table{Header: []string{"Region", "Dimension", "Scales"}}
	for _, reg := range []geo.Region{geo.US, geo.Europe} {
		res := geo.BoxCountDimension(ds.InRegion(reg).Points(), reg, 7)
		t.Rows = append(t.Rows, []string{reg.Name, f(res.Dimension), d(len(res.Occupied))})
	}
	r.Tables = append(r.Tables, t)
	r.AddNote("Yook/Jeong/Barabasi (and the paper's own cross-check) report ~1.5")
	return r
}
