package core

import (
	"fmt"
	"strings"
)

// Report is the structured output of one experiment: text tables plus
// named data series (the points a plotting tool would consume).
type Report struct {
	ID    string
	Title string
	// Tables render in the terminal; Series are (x, y) data for the
	// figures.
	Tables []Table
	Series []Series
	Notes  []string
}

// Table is a simple aligned text table.
type Table struct {
	Caption string
	Header  []string
	Rows    [][]string
}

// Series is a named sequence of (x, y) points.
type Series struct {
	Name string
	X, Y []float64
}

// Render returns the table as aligned text, one row per line. Report
// formatting uses it internally; other packages (the scenario sweep)
// use it to render their own tables in the same style.
func (t Table) Render() string {
	var b strings.Builder
	if t.Caption != "" {
		fmt.Fprintf(&b, "%s\n", t.Caption)
	}
	writeAligned(&b, t)
	return b.String()
}

// AddNote appends a formatted note line.
func (r *Report) AddNote(format string, args ...interface{}) {
	r.Notes = append(r.Notes, fmt.Sprintf(format, args...))
}

// Format renders the report as aligned text.
func (r *Report) Format() string {
	var b strings.Builder
	fmt.Fprintf(&b, "== %s: %s ==\n", r.ID, r.Title)
	for _, t := range r.Tables {
		if t.Caption != "" {
			fmt.Fprintf(&b, "\n%s\n", t.Caption)
		}
		writeAligned(&b, t)
	}
	if len(r.Series) > 0 {
		fmt.Fprintf(&b, "\nseries: ")
		names := make([]string, len(r.Series))
		for i, s := range r.Series {
			names[i] = fmt.Sprintf("%s(%d pts)", s.Name, len(s.X))
		}
		fmt.Fprintf(&b, "%s\n", strings.Join(names, ", "))
	}
	for _, n := range r.Notes {
		fmt.Fprintf(&b, "note: %s\n", n)
	}
	return b.String()
}

func writeAligned(b *strings.Builder, t Table) {
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, cell := range row {
			if i < len(widths) && len(cell) > widths[i] {
				widths[i] = len(cell)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(b, "%-*s", widths[i], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	sep := make([]string, len(t.Header))
	for i := range sep {
		sep[i] = strings.Repeat("-", widths[i])
	}
	line(sep)
	for _, row := range t.Rows {
		line(row)
	}
}

// DataFiles renders every series as gnuplot-style .dat content keyed by
// "<report-id>_<series-name>.dat".
func (r *Report) DataFiles() map[string]string {
	out := map[string]string{}
	for _, s := range r.Series {
		var b strings.Builder
		fmt.Fprintf(&b, "# %s / %s\n# x y\n", r.ID, s.Name)
		for i := range s.X {
			fmt.Fprintf(&b, "%g %g\n", s.X[i], s.Y[i])
		}
		name := fmt.Sprintf("%s_%s.dat", r.ID, sanitizeFile(s.Name))
		out[name] = b.String()
	}
	return out
}

func sanitizeFile(s string) string {
	return strings.Map(func(r rune) rune {
		switch {
		case r >= 'a' && r <= 'z', r >= 'A' && r <= 'Z', r >= '0' && r <= '9':
			return r
		case r == '-' || r == '_':
			return r
		default:
			return '_'
		}
	}, s)
}
