package core

import (
	"crypto/sha256"
	"encoding/hex"
	"io"
	"sort"
)

// Digest runs every registered experiment against the pipeline and
// returns a SHA-256 over the complete rendered output: each report's
// formatted text plus its figure data files in sorted name order. Two
// pipelines with the same digest produced byte-identical tables and
// figures, so the digest is the unit of regression the scenario golden
// corpus pins — any change to generation, probing, mapping or analysis
// shows up as a digest drift that must be reviewed.
func Digest(p *Pipeline) string {
	h := sha256.New()
	for _, e := range Experiments() {
		rep := e.Run(p)
		io.WriteString(h, "== ")
		io.WriteString(h, e.ID)
		io.WriteString(h, " ==\n")
		io.WriteString(h, rep.Format())
		files := rep.DataFiles()
		names := make([]string, 0, len(files))
		for name := range files {
			names = append(names, name)
		}
		sort.Strings(names)
		for _, name := range names {
			io.WriteString(h, name)
			io.WriteString(h, "\n")
			io.WriteString(h, files[name])
		}
	}
	return hex.EncodeToString(h.Sum(nil))
}
