package core

import (
	"reflect"
	"runtime"
	"testing"
)

// TestWorkersDeterminism is the contract behind Config.Workers: the
// same (seed, scale) must regenerate every table and figure
// byte-identically whether the pipeline runs serially or fanned out.
// GOMAXPROCS is raised so the parallel paths genuinely interleave even
// on a single-CPU machine.
func TestWorkersDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline twice")
	}
	prev := runtime.GOMAXPROCS(8)
	defer runtime.GOMAXPROCS(prev)

	run := func(workers int) *Pipeline {
		cfg := TestConfig()
		cfg.Workers = workers
		p, err := Run(cfg)
		if err != nil {
			t.Fatalf("workers=%d: %v", workers, err)
		}
		return p
	}
	p1 := run(1)
	p8 := run(8)

	// The raw artefacts must already agree, so a report mismatch can
	// be localised to analysis rather than collection.
	if !reflect.DeepEqual(p1.RawSkitter, p8.RawSkitter) {
		t.Error("skitter raw graphs differ between worker counts")
	}
	if !reflect.DeepEqual(p1.RawMercator, p8.RawMercator) {
		t.Error("mercator results differ between worker counts")
	}

	for _, e := range Experiments() {
		r1 := e.Run(p1)
		r8 := e.Run(p8)
		if !reflect.DeepEqual(r1, r8) {
			t.Errorf("experiment %q differs between Workers=1 and Workers=8", e.ID)
			if f1, f8 := r1.Format(), r8.Format(); f1 != f8 {
				t.Logf("Workers=1:\n%s\nWorkers=8:\n%s", f1, f8)
			}
		}
	}
}

// TestCacheBudgetDeterminism proves routing-table cache pressure is
// invisible in results: a pipeline forced to evict constantly (a
// budget of a handful of tables) produces the same Table I as one
// whose cache never fills. Tables are pure functions of the topology,
// so eviction may only cost time, never change a trace.
func TestCacheBudgetDeterminism(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline twice")
	}
	run := func(budget int) *Pipeline {
		cfg := TestConfig()
		cfg.Workers = 4
		cfg.RouteCacheBudget = budget
		p, err := Run(cfg)
		if err != nil {
			t.Fatalf("budget=%d: %v", budget, err)
		}
		return p
	}
	tiny := run(6)
	big := run(0)
	if !reflect.DeepEqual(tiny.RawSkitter, big.RawSkitter) {
		t.Error("skitter raw graphs differ under cache eviction pressure")
	}
	if !reflect.DeepEqual(tiny.RawMercator, big.RawMercator) {
		t.Error("mercator results differ under cache eviction pressure")
	}
	r1, _ := RunExperiment(tiny, "table1")
	r2, _ := RunExperiment(big, "table1")
	if !reflect.DeepEqual(r1, r2) {
		t.Error("Table I differs under cache eviction pressure")
	}
}

// TestRepeatedRunsIdentical guards the weaker (pre-existing) property
// that two runs at the same worker count agree, so a determinism break
// in the collectors themselves cannot hide behind the workers knob.
func TestRepeatedRunsIdentical(t *testing.T) {
	if testing.Short() {
		t.Skip("runs the pipeline twice")
	}
	cfg := TestConfig()
	cfg.Workers = 4
	a, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	rep1, _ := RunExperiment(a, "table1")
	rep2, _ := RunExperiment(b, "table1")
	if !reflect.DeepEqual(rep1, rep2) {
		t.Error("same config produced different Table I reports")
	}
}
