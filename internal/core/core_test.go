package core

import (
	"strconv"
	"strings"
	"testing"
)

// The pipeline is expensive; run it once for the whole package.
var testPipe *Pipeline

func pipeline(tb testing.TB) *Pipeline {
	tb.Helper()
	if testPipe == nil {
		p, err := Run(TestConfig())
		if err != nil {
			tb.Fatal(err)
		}
		testPipe = p
	}
	return testPipe
}

func TestPipelineProducesFourDatasets(t *testing.T) {
	p := pipeline(t)
	combos := []Combo{
		{"mercator", "ixmapper"}, {"skitter", "ixmapper"},
		{"mercator", "edgescape"}, {"skitter", "edgescape"},
	}
	for _, c := range combos {
		ds, ok := p.Datasets[c]
		if !ok {
			t.Fatalf("missing dataset %v", c)
		}
		if len(ds.Nodes) == 0 || len(ds.Links) == 0 {
			t.Fatalf("dataset %v is empty", c)
		}
	}
	// Skitter sees more than Mercator, as in the paper (704k vs 268k).
	sk := p.Dataset("skitter", "ixmapper")
	mc := p.Dataset("mercator", "ixmapper")
	if len(sk.Nodes) <= len(mc.Nodes) {
		t.Errorf("skitter (%d) should out-discover mercator (%d)", len(sk.Nodes), len(mc.Nodes))
	}
}

func TestAllExperimentsRun(t *testing.T) {
	p := pipeline(t)
	seen := map[string]bool{}
	for _, e := range Experiments() {
		if seen[e.ID] {
			t.Fatalf("duplicate experiment id %q", e.ID)
		}
		seen[e.ID] = true
		rep := e.Run(p)
		if rep.ID != e.ID {
			t.Errorf("experiment %q returned report id %q", e.ID, rep.ID)
		}
		out := rep.Format()
		if !strings.Contains(out, e.ID) {
			t.Errorf("report for %q renders without its id", e.ID)
		}
		if len(rep.Tables) == 0 && len(rep.Series) == 0 {
			t.Errorf("experiment %q produced no output", e.ID)
		}
	}
	// Every paper table and figure must be covered.
	for _, id := range []string{
		"table1", "table2", "table3", "table4", "table5", "table6",
		"figure1", "figure2", "figure4", "figure5", "figure6",
		"figure7", "figure8", "figure9", "figure10", "appendix",
	} {
		if !seen[id] {
			t.Errorf("experiment registry missing %q", id)
		}
	}
}

func TestRunExperimentByID(t *testing.T) {
	p := pipeline(t)
	rep, err := RunExperiment(p, "table1")
	if err != nil || rep.ID != "table1" {
		t.Fatalf("RunExperiment: %v, %q", err, rep.ID)
	}
	if _, err := RunExperiment(p, "nope"); err == nil {
		t.Error("unknown experiment should error")
	}
}

func TestHeadlineFindingsHold(t *testing.T) {
	p := pipeline(t)

	// Section IV: density grows with population. At the tiny test
	// scale the slope is attenuated (few nodes per patch dilutes the
	// log-log regression toward zero), so this asserts a strong
	// positive relationship; the full-scale run recorded in
	// EXPERIMENTS.md shows the paper's superlinear (>1) band.
	repD, _ := RunExperiment(p, "figure2")
	foundSuper := false
	for _, row := range repD.Tables[0].Rows {
		if row[0] == "skitter" && row[1] == "US" {
			slope := cellFloat(t, row[2])
			if slope < 0.7 {
				t.Errorf("US skitter density slope = %v, want strongly positive", slope)
			}
			if slope > 2.2 {
				t.Errorf("US skitter density slope = %v, implausibly high", slope)
			}
			foundSuper = true
		}
	}
	if !foundSuper {
		t.Fatal("figure2 report missing US skitter row")
	}

	// Section V: distance-sensitive majority in the US.
	rep5, _ := RunExperiment(p, "table5")
	for _, row := range rep5.Tables[0].Rows {
		if row[0] == "skitter" && row[1] == "US" {
			frac := cellFloat(t, strings.TrimSuffix(row[3], "%"))
			if frac < 55 {
				t.Errorf("US distance-sensitive link share = %.1f%%, paper: 75-95%%", frac)
			}
		}
	}

	// Section VI: most ASes have zero hull area.
	rep9, _ := RunExperiment(p, "figure9")
	for _, row := range rep9.Tables[0].Rows {
		if row[0] == "World" {
			if zf := cellFloat(t, row[2]); zf < 0.5 {
				t.Errorf("zero-hull fraction = %v, paper: ~0.8", zf)
			}
		}
	}
}

func cellFloat(t *testing.T, s string) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		t.Fatalf("bad numeric cell %q: %v", s, err)
	}
	return v
}
