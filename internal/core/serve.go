package core

import (
	"geonet/internal/analysis"
	"geonet/internal/geoserve"
)

// ServeOptions tunes how a finished pipeline compiles into a serving
// snapshot. The zero value matches Serve.
type ServeOptions struct {
	// Workers overrides the compile fan-out (0 = the pipeline's own
	// Workers setting). The compiled snapshot is byte-identical at any
	// value.
	Workers int
	// Label names the build in /healthz and /statusz
	// ("seed1/scale0.02/..."); it is excluded from the snapshot digest.
	Label string
}

// Serve compiles the finished pipeline's geolocation knowledge into an
// immutable serving snapshot (internal/geoserve): a sorted /24
// interval index with precomputed answers for both mappers, AS
// attribution from the Skitter-era BGP epoch (the more recent of the
// two), and confidence radii from each mapper's per-AS footprints
// measured over its Skitter dataset (the larger collection). The
// snapshot's digest follows the same determinism discipline as Digest:
// byte-identical at any Workers setting.
func (p *Pipeline) Serve() (*geoserve.Snapshot, error) {
	return p.ServeWith(ServeOptions{})
}

// ServeWith is Serve with explicit options.
func (p *Pipeline) ServeWith(opts ServeOptions) (*geoserve.Snapshot, error) {
	workers := p.Config.Workers
	if opts.Workers != 0 {
		workers = opts.Workers
	}
	return geoserve.Compile(geoserve.Source{
		Internet: p.Internet,
		Table:    p.SkitterTable,
		Mappers: []geoserve.NamedMapper{
			{
				Mapper:     p.IxMapper,
				Footprints: analysis.Footprints(p.Dataset("skitter", "ixmapper").ASAggregate()),
			},
			{
				Mapper:     p.EdgeScape,
				Footprints: analysis.Footprints(p.Dataset("skitter", "edgescape").ASAggregate()),
			},
		},
		Workers: workers,
		Build: geoserve.BuildInfo{
			Seed:  p.Config.Seed,
			Scale: p.Config.Scale,
			Label: opts.Label,
		},
	})
}
