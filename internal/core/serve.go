package core

import (
	"geonet/internal/analysis"
	"geonet/internal/geoserve"
)

// Serve compiles the finished pipeline's geolocation knowledge into an
// immutable serving snapshot (internal/geoserve): a sorted /24
// interval index with precomputed answers for both mappers, AS
// attribution from the Skitter-era BGP epoch (the more recent of the
// two), and confidence radii from each mapper's per-AS footprints
// measured over its Skitter dataset (the larger collection). The
// snapshot's digest follows the same determinism discipline as Digest:
// byte-identical at any Workers setting.
func (p *Pipeline) Serve() (*geoserve.Snapshot, error) {
	return geoserve.Compile(geoserve.Source{
		Internet: p.Internet,
		Table:    p.SkitterTable,
		Mappers: []geoserve.NamedMapper{
			{
				Mapper:     p.IxMapper,
				Footprints: analysis.Footprints(p.Dataset("skitter", "ixmapper").ASAggregate()),
			},
			{
				Mapper:     p.EdgeScape,
				Footprints: analysis.Footprints(p.Dataset("skitter", "edgescape").ASAggregate()),
			},
		},
		Workers: p.Config.Workers,
		Build: geoserve.BuildInfo{
			Seed:  p.Config.Seed,
			Scale: p.Config.Scale,
		},
	})
}
