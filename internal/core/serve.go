package core

import (
	"geonet/internal/analysis"
	"geonet/internal/churn"
	"geonet/internal/geoserve"
)

// ServeOptions tunes how a finished pipeline compiles into a serving
// snapshot. The zero value matches Serve.
type ServeOptions struct {
	// Workers overrides the compile fan-out (0 = the pipeline's own
	// Workers setting). The compiled snapshot is byte-identical at any
	// value.
	Workers int
	// Label names the build in /healthz and /statusz
	// ("seed1/scale0.02/..."); it is excluded from the snapshot digest.
	Label string
}

// Serve compiles the finished pipeline's geolocation knowledge into an
// immutable serving snapshot (internal/geoserve): a sorted /24
// interval index with precomputed answers for both mappers, AS
// attribution from the Skitter-era BGP epoch (the more recent of the
// two), and confidence radii from each mapper's per-AS footprints
// measured over its Skitter dataset (the larger collection). The
// snapshot's digest follows the same determinism discipline as Digest:
// byte-identical at any Workers setting.
func (p *Pipeline) Serve() (*geoserve.Snapshot, error) {
	return p.ServeWith(ServeOptions{})
}

// ServeWith is Serve with explicit options.
func (p *Pipeline) ServeWith(opts ServeOptions) (*geoserve.Snapshot, error) {
	return geoserve.Compile(p.ServeSource(opts))
}

// ServeSource assembles the geoserve.Source Serve compiles, without
// compiling it — the handle continuous-churn drivers (internal/churn)
// start from and the input both Compile and CompileDelta consume.
func (p *Pipeline) ServeSource(opts ServeOptions) geoserve.Source {
	workers := p.Config.Workers
	if opts.Workers != 0 {
		workers = opts.Workers
	}
	return geoserve.Source{
		Internet: p.Internet,
		Table:    p.SkitterTable,
		Mappers: []geoserve.NamedMapper{
			{
				Mapper:     p.IxMapper,
				Footprints: analysis.Footprints(p.Dataset("skitter", "ixmapper").ASAggregate()),
			},
			{
				Mapper:     p.EdgeScape,
				Footprints: analysis.Footprints(p.Dataset("skitter", "edgescape").ASAggregate()),
			},
		},
		Workers: workers,
		Build: geoserve.BuildInfo{
			Seed:  p.Config.Seed,
			Scale: p.Config.Scale,
			Label: opts.Label,
		},
	}
}

// Churner starts a deterministic churn-event stream over this
// pipeline's serving source; feed its steps to ServeDelta.
func (p *Pipeline) Churner(opts ServeOptions, seed int64) (*churn.Churner, error) {
	return churn.New(p.ServeSource(opts), seed)
}

// ServeDelta makes Serve resumable under churn: it incrementally
// recompiles prev for one churn step, recomputing only the /24
// intervals whose answers could have changed (the step's dirty routes
// and allocations, interface churn, footprint changes) and copying the
// rest. The result is byte-identical — same Digest — to a
// from-scratch compile of the step's source; the golden churn corpus
// pins that at every step.
func (p *Pipeline) ServeDelta(prev *geoserve.Snapshot, step churn.Step) (*geoserve.Snapshot, geoserve.DeltaStats, error) {
	return geoserve.CompileDelta(prev, step.Source, step.Dirty)
}
