// Package core is the reproduction pipeline: it builds the world,
// generates the ground-truth Internet, runs both collectors, both
// mapping tools and both BGP epochs, and processes the four
// dataset-mapper combinations of Table I. The experiment registry in
// experiments.go regenerates every table and figure of the paper from
// a Pipeline's results.
//
// Independent stages run concurrently, bounded by Config.Workers: the
// two BGP epoch assemblies, the two collections (each internally
// parallel), and the four Table-I dataset-mapper combinations. Every
// stochastic stage draws from its own named split of the root stream
// and every parallel reduction merges in a fixed order, so a (seed,
// scale) pair produces byte-identical reports at any worker count.
package core

import (
	"fmt"
	"io"

	"geonet/internal/bgp"
	"geonet/internal/dnsdb"
	"geonet/internal/geoloc"
	"geonet/internal/netgen"
	"geonet/internal/netsim"
	"geonet/internal/parallel"
	"geonet/internal/population"
	"geonet/internal/probe/mercator"
	"geonet/internal/probe/skitter"
	"geonet/internal/rng"
	"geonet/internal/topo"
	"geonet/internal/whois"
)

// Config selects the world size and seed.
type Config struct {
	Seed  int64
	Scale float64
	// Workers bounds the pipeline's stage fan-out (collections, BGP
	// epochs, Table-I processing); <= 0 means one worker per CPU.
	// Analysis kernels invoked from experiments parallelize up to
	// GOMAXPROCS instead — cap that to bound them. Reports are
	// byte-identical for any value of either knob.
	Workers int
	// RouteCacheBudget overrides netsim's routing-table cache budget
	// (<= 0 keeps the compiled default). Routing tables are pure
	// functions of the topology, so the budget trades memory for
	// recomputation without affecting reports — see
	// TestCacheBudgetDeterminism.
	RouteCacheBudget int
	// Progress, when non-nil, receives stage announcements.
	Progress io.Writer
	// Gen overrides the netgen configuration (ablations); nil uses the
	// default at the configured scale.
	Gen *netgen.Config
}

// DefaultConfig runs the full-size (scale 0.1) reproduction.
func DefaultConfig() Config { return Config{Seed: 1, Scale: 0.1} }

// TestConfig is a fast small-world configuration for tests.
func TestConfig() Config { return Config{Seed: 1, Scale: 0.02} }

// Combo names one dataset-mapper combination (a row of Table I).
type Combo struct {
	Dataset string // "mercator" or "skitter"
	Mapper  string // "ixmapper" or "edgescape"
}

// Pipeline holds every artefact of a reproduction run.
type Pipeline struct {
	Config   Config
	World    *population.World
	Internet *netgen.Internet
	Network  *netsim.Network

	DNS       *dnsdb.DB
	Whois     *whois.Registry
	IxMapper  *geoloc.IxMapper
	EdgeScape *geoloc.EdgeScape

	// SkitterTable and MercatorTable are the two RouteViews epochs
	// (January 2002 and August 1999 in the paper).
	SkitterTable  *bgp.Table
	MercatorTable *bgp.Table

	RawSkitter  *skitter.RawGraph
	RawMercator *mercator.Result

	Datasets map[Combo]*topo.Dataset
}

// TableICombos lists the four dataset-mapper combinations in the
// paper's Table I order.
func TableICombos() []Combo {
	return []Combo{
		{"skitter", "ixmapper"}, {"mercator", "ixmapper"},
		{"skitter", "edgescape"}, {"mercator", "edgescape"},
	}
}

// Run executes the full pipeline.
func Run(cfg Config) (*Pipeline, error) {
	if cfg.Scale <= 0 {
		// Default only the scale; the caller's seed, workers and
		// overrides stand.
		cfg.Scale = DefaultConfig().Scale
	}
	workers := parallel.Workers(cfg.Workers)
	p := &Pipeline{Config: cfg, Datasets: map[Combo]*topo.Dataset{}}
	say := func(format string, args ...interface{}) {
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, format+"\n", args...)
		}
	}
	root := rng.New(cfg.Seed)

	say("building world population model")
	p.World = population.Build(population.DefaultConfig(), root.Split("world"))

	say("generating ground-truth internet (scale %.3f, %d workers)", cfg.Scale, workers)
	gcfg := netgen.DefaultConfig()
	if cfg.Gen != nil {
		gcfg = *cfg.Gen
	}
	gcfg.Seed = root.Split("netgen").Seed()
	gcfg.Scale = cfg.Scale
	if err := gcfg.Validate(); err != nil {
		return nil, fmt.Errorf("core: generator config: %w", err)
	}
	p.Internet = netgen.Build(gcfg, p.World)
	say("  %d ASes, %d routers, %d interfaces, %d links",
		len(p.Internet.ASes), len(p.Internet.Routers),
		len(p.Internet.Ifaces), len(p.Internet.Links))

	say("compiling forwarding fabric")
	p.Network = netsim.Compile(p.Internet)
	if cfg.RouteCacheBudget > 0 {
		p.Network.CacheBudget = cfg.RouteCacheBudget
	}

	say("publishing DNS, whois and ISP geography")
	var dnsErr error
	parallel.Do(workers,
		func() { p.DNS, dnsErr = dnsdb.FromInternet(p.Internet) },
		func() { p.Whois = whois.FromInternet(p.Internet) },
	)
	if dnsErr != nil {
		return nil, fmt.Errorf("core: dns: %w", dnsErr)
	}
	res := geoloc.Resources{DNS: p.DNS, Whois: p.Whois, Dict: p.World.CodeDictionary()}
	p.IxMapper = geoloc.NewIxMapper(res)
	p.EdgeScape = geoloc.NewEdgeScape(res, p.Internet,
		geoloc.DefaultEdgeScapeConfig(), root.Split("edgescape"))

	say("assembling RouteViews tables (two epochs)")
	parallel.Do(workers,
		func() {
			skitterEpoch := bgp.DefaultAssembleConfig() // Jan 2002: 1.5% unmapped
			p.SkitterTable = bgp.Assemble(p.Internet, skitterEpoch, root.Split("bgp-2002"))
		},
		func() {
			mercatorEpoch := bgp.DefaultAssembleConfig()
			mercatorEpoch.MissingASProb = 0.035 // Aug 1999: 2.8% unmapped
			p.MercatorTable = bgp.Assemble(p.Internet, mercatorEpoch, root.Split("bgp-1999"))
		},
	)

	say("running skitter (19 monitors) and mercator collections")
	// The two collectors run concurrently and each fans out
	// internally, so they split the worker budget between them
	// (workers=1 serializes the collectors entirely via Do).
	colWorkers := workers / 2
	if colWorkers < 1 {
		colWorkers = 1
	}
	skCfg := skitter.DefaultConfig()
	skCfg.Workers = colWorkers
	mcCfg := mercator.DefaultConfig()
	mcCfg.Workers = colWorkers
	parallel.Do(workers,
		func() { p.RawSkitter = skitter.Collect(p.Network, skCfg, root.Split("skitter")) },
		func() { p.RawMercator = mercator.Collect(p.Network, mcCfg, root.Split("mercator")) },
	)
	say("  skitter: %d traces, %d interfaces, %d links",
		p.RawSkitter.Stats.Traces, len(p.RawSkitter.Nodes), len(p.RawSkitter.Links))
	say("  mercator: %d traces, %d interfaces -> %d routers",
		p.RawMercator.Stats.Traces, len(p.RawMercator.IfaceNodes), len(p.RawMercator.RouterNodes))

	say("processing datasets (Table I pipeline)")
	combos := TableICombos()
	mappers := map[string]geoloc.Mapper{
		p.IxMapper.Name():  p.IxMapper,
		p.EdgeScape.Name(): p.EdgeScape,
	}
	built := parallel.Map(workers, len(combos), func(i int) *topo.Dataset {
		c := combos[i]
		if c.Dataset == "skitter" {
			return topo.FromSkitter(p.RawSkitter, mappers[c.Mapper], p.SkitterTable)
		}
		return topo.FromMercator(p.RawMercator, mappers[c.Mapper], p.MercatorTable)
	})
	for i, c := range combos {
		p.Datasets[c] = built[i]
		say("  %s/%s: %d nodes, %d links, %d locations",
			c.Mapper, c.Dataset, len(built[i].Nodes), len(built[i].Links),
			built[i].NumLocations())
	}
	return p, nil
}

// Dataset fetches one processed combination; it panics on an unknown
// combo (a programming error, not an input error).
func (p *Pipeline) Dataset(dataset, mapper string) *topo.Dataset {
	d, ok := p.Datasets[Combo{dataset, mapper}]
	if !ok {
		panic(fmt.Sprintf("core: no dataset %s/%s", dataset, mapper))
	}
	return d
}
