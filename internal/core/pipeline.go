// Package core is the reproduction pipeline: it builds the world,
// generates the ground-truth Internet, runs both collectors, both
// mapping tools and both BGP epochs, and processes the four
// dataset-mapper combinations of Table I. The experiment registry in
// experiments.go regenerates every table and figure of the paper from
// a Pipeline's results.
package core

import (
	"fmt"
	"io"

	"geonet/internal/bgp"
	"geonet/internal/dnsdb"
	"geonet/internal/geoloc"
	"geonet/internal/netgen"
	"geonet/internal/netsim"
	"geonet/internal/population"
	"geonet/internal/probe/mercator"
	"geonet/internal/probe/skitter"
	"geonet/internal/rng"
	"geonet/internal/topo"
	"geonet/internal/whois"
)

// Config selects the world size and seed.
type Config struct {
	Seed  int64
	Scale float64
	// Progress, when non-nil, receives stage announcements.
	Progress io.Writer
	// Gen overrides the netgen configuration (ablations); nil uses the
	// default at the configured scale.
	Gen *netgen.Config
}

// DefaultConfig runs the full-size (scale 0.1) reproduction.
func DefaultConfig() Config { return Config{Seed: 1, Scale: 0.1} }

// TestConfig is a fast small-world configuration for tests.
func TestConfig() Config { return Config{Seed: 1, Scale: 0.02} }

// Combo names one dataset-mapper combination (a row of Table I).
type Combo struct {
	Dataset string // "mercator" or "skitter"
	Mapper  string // "ixmapper" or "edgescape"
}

// Pipeline holds every artefact of a reproduction run.
type Pipeline struct {
	Config   Config
	World    *population.World
	Internet *netgen.Internet
	Network  *netsim.Network

	DNS       *dnsdb.DB
	Whois     *whois.Registry
	IxMapper  *geoloc.IxMapper
	EdgeScape *geoloc.EdgeScape

	// SkitterTable and MercatorTable are the two RouteViews epochs
	// (January 2002 and August 1999 in the paper).
	SkitterTable  *bgp.Table
	MercatorTable *bgp.Table

	RawSkitter  *skitter.RawGraph
	RawMercator *mercator.Result

	Datasets map[Combo]*topo.Dataset
}

// Run executes the full pipeline.
func Run(cfg Config) (*Pipeline, error) {
	if cfg.Scale <= 0 {
		cfg = DefaultConfig()
	}
	p := &Pipeline{Config: cfg, Datasets: map[Combo]*topo.Dataset{}}
	say := func(format string, args ...interface{}) {
		if cfg.Progress != nil {
			fmt.Fprintf(cfg.Progress, format+"\n", args...)
		}
	}
	root := rng.New(cfg.Seed)

	say("building world population model")
	p.World = population.Build(population.DefaultConfig(), root.Split("world"))

	say("generating ground-truth internet (scale %.3f)", cfg.Scale)
	gcfg := netgen.DefaultConfig()
	if cfg.Gen != nil {
		gcfg = *cfg.Gen
	}
	gcfg.Seed = root.Split("netgen").Seed()
	gcfg.Scale = cfg.Scale
	p.Internet = netgen.Build(gcfg, p.World)
	say("  %d ASes, %d routers, %d interfaces, %d links",
		len(p.Internet.ASes), len(p.Internet.Routers),
		len(p.Internet.Ifaces), len(p.Internet.Links))

	say("compiling forwarding fabric")
	p.Network = netsim.Compile(p.Internet)

	say("publishing DNS, whois and ISP geography")
	var err error
	p.DNS, err = dnsdb.FromInternet(p.Internet)
	if err != nil {
		return nil, fmt.Errorf("core: dns: %w", err)
	}
	p.Whois = whois.FromInternet(p.Internet)
	res := geoloc.Resources{DNS: p.DNS, Whois: p.Whois, Dict: p.World.CodeDictionary()}
	p.IxMapper = geoloc.NewIxMapper(res)
	p.EdgeScape = geoloc.NewEdgeScape(res, p.Internet,
		geoloc.DefaultEdgeScapeConfig(), root.Split("edgescape"))

	say("assembling RouteViews tables (two epochs)")
	skitterEpoch := bgp.DefaultAssembleConfig() // Jan 2002: 1.5% unmapped
	p.SkitterTable = bgp.Assemble(p.Internet, skitterEpoch, root.Split("bgp-2002"))
	mercatorEpoch := bgp.DefaultAssembleConfig()
	mercatorEpoch.MissingASProb = 0.035 // Aug 1999: 2.8% unmapped
	p.MercatorTable = bgp.Assemble(p.Internet, mercatorEpoch, root.Split("bgp-1999"))

	say("running skitter collection (19 monitors)")
	p.RawSkitter = skitter.Collect(p.Network, skitter.DefaultConfig(), root.Split("skitter"))
	say("  %d traces, %d interfaces, %d links",
		p.RawSkitter.Stats.Traces, len(p.RawSkitter.Nodes), len(p.RawSkitter.Links))

	say("running mercator collection (single host)")
	p.RawMercator = mercator.Collect(p.Network, mercator.DefaultConfig(), root.Split("mercator"))
	say("  %d traces, %d interfaces -> %d routers",
		p.RawMercator.Stats.Traces, len(p.RawMercator.IfaceNodes), len(p.RawMercator.RouterNodes))

	say("processing datasets (Table I pipeline)")
	for _, m := range []geoloc.Mapper{p.IxMapper, p.EdgeScape} {
		p.Datasets[Combo{"skitter", m.Name()}] = topo.FromSkitter(p.RawSkitter, m, p.SkitterTable)
		p.Datasets[Combo{"mercator", m.Name()}] = topo.FromMercator(p.RawMercator, m, p.MercatorTable)
	}
	for combo, d := range p.Datasets {
		say("  %s/%s: %d nodes, %d links, %d locations",
			combo.Mapper, combo.Dataset, len(d.Nodes), len(d.Links), d.NumLocations())
	}
	return p, nil
}

// Dataset fetches one processed combination; it panics on an unknown
// combo (a programming error, not an input error).
func (p *Pipeline) Dataset(dataset, mapper string) *topo.Dataset {
	d, ok := p.Datasets[Combo{dataset, mapper}]
	if !ok {
		panic(fmt.Sprintf("core: no dataset %s/%s", dataset, mapper))
	}
	return d
}
