package core

import "testing"

// testConfigDigest is the SHA-256 report digest of the TestConfig
// (seed 1, scale 0.02) pipeline: every experiment's formatted output
// plus figure data files. PR 2 verified seed equivalence by hashing
// paperrepro output by hand; this constant makes that check permanent.
//
// If this test fails, pipeline output changed. When the change is
// intentional, update the constant below (the failure message prints
// the new value) and regenerate the scenario golden corpus with
//
//	go test ./internal/scenario -run TestGoldenCorpus -update
//
// in the same commit, so reviewers see the drift explicitly.
const testConfigDigest = "e247a3f00841e89c0bd720ae67c7fe8333cd9f019fca645339669ef36a048c00"

func TestConfigDigestPinned(t *testing.T) {
	p := pipeline(t)
	if got := Digest(p); got != testConfigDigest {
		t.Errorf("TestConfig report digest drifted:\n got  %s\n want %s\n"+
			"pipeline output changed; if intentional, update testConfigDigest and "+
			"regenerate the golden corpus (go test ./internal/scenario -update)", got, testConfigDigest)
	}
}

// TestDigestDistinguishesSeeds guards the digest itself: different
// worlds must not collide, or the golden corpus would be vacuous.
func TestDigestDistinguishesSeeds(t *testing.T) {
	if testing.Short() {
		t.Skip("runs an extra pipeline")
	}
	cfg := TestConfig()
	cfg.Seed = 2
	p2, err := Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	if Digest(p2) == testConfigDigest {
		t.Error("seed 2 produced the same digest as seed 1")
	}
}
