package churn_test

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"sync"
	"testing"

	"geonet/internal/churn"
	"geonet/internal/core"
	"geonet/internal/geoserve"
	"geonet/internal/rng"
)

var update = flag.Bool("update", false, "rewrite the golden churn corpus from current output")

const (
	corpusSeed   = 7
	corpusSteps  = 6
	corpusEvents = 8
)

var (
	fixOnce sync.Once
	fixPipe *core.Pipeline
	fixSnap *geoserve.Snapshot
)

// fixture builds one test-scale pipeline and its from-scratch snapshot,
// shared across the package's tests.
func fixture(tb testing.TB) (*core.Pipeline, *geoserve.Snapshot) {
	tb.Helper()
	fixOnce.Do(func() {
		p, err := core.Run(core.TestConfig())
		if err != nil {
			panic(err)
		}
		snap, err := p.Serve()
		if err != nil {
			panic(err)
		}
		fixPipe, fixSnap = p, snap
	})
	return fixPipe, fixSnap
}

// goldenStep is the persisted per-step record: the applied events, the
// resulting snapshot digest, and what the delta compile did.
type goldenStep struct {
	N      int                 `json:"n"`
	Events []churn.Event       `json:"events"`
	Dirty  []uint32            `json:"dirty"`
	Digest string              `json:"digest"`
	Stats  geoserve.DeltaStats `json:"stats"`
}

func corpusPath() string { return filepath.Join("testdata", "churn_corpus.golden.json") }

// TestGoldenChurnCorpus is the tentpole invariant, executable: at every
// step of a seeded churn stream the delta-compiled snapshot must be
// byte-identical (same content digest) to a from-scratch Compile of the
// same churned source, the delta must actually be incremental (most
// rows copied), and sharded clusters at widths 1, 2 and 8 must answer
// from the delta-swapped epoch exactly as the snapshot's own rows say.
// The per-step digests are pinned in testdata so cross-version drift in
// either compile path is caught; regenerate deliberate changes with
//
//	go test ./internal/churn -run TestGoldenChurnCorpus -update
func TestGoldenChurnCorpus(t *testing.T) {
	p, full0 := fixture(t)
	src := p.ServeSource(core.ServeOptions{})
	ch, err := churn.New(src, corpusSeed)
	if err != nil {
		t.Fatal(err)
	}

	clusters := map[int]*geoserve.Cluster{}
	for _, n := range []int{1, 2, 8} {
		cl, err := geoserve.NewCluster(full0, geoserve.ClusterConfig{Shards: n})
		if err != nil {
			t.Fatalf("%d-shard cluster: %v", n, err)
		}
		clusters[n] = cl
	}

	probeRNG := rng.New(corpusSeed).Split("probes")
	prev := full0
	kinds := map[churn.Kind]int{}
	var got []goldenStep
	for i := 0; i < corpusSteps; i++ {
		step, err := ch.Next(corpusEvents)
		if err != nil {
			t.Fatal(err)
		}
		for _, ev := range step.Events {
			kinds[ev.Kind]++
		}

		delta, stats, err := p.ServeDelta(prev, step)
		if err != nil {
			t.Fatalf("step %d: delta compile: %v", step.N, err)
		}
		full, err := geoserve.Compile(step.Source)
		if err != nil {
			t.Fatalf("step %d: full compile: %v", step.N, err)
		}
		if delta.Digest() != full.Digest() {
			t.Fatalf("step %d: delta-compiled digest %s diverged from from-scratch %s (events %+v)",
				step.N, delta.Digest(), full.Digest(), step.Events)
		}
		if stats.Rows != delta.NumPrefixes()+delta.NumExactIPs() {
			t.Fatalf("step %d: stats cover %d rows, snapshot has %d", step.N, stats.Rows, delta.NumPrefixes()+delta.NumExactIPs())
		}
		if stats.Copied <= stats.Recompiled {
			t.Fatalf("step %d: not incremental: %d copied vs %d recompiled", step.N, stats.Copied, stats.Recompiled)
		}

		if i == 0 {
			// Worker-count independence holds on the delta path too.
			src3 := step.Source
			src3.Workers = 3
			alt, _, err := geoserve.CompileDelta(prev, src3, step.Dirty)
			if err != nil {
				t.Fatal(err)
			}
			if alt.Digest() != delta.Digest() {
				t.Fatalf("step %d: digest depends on worker count", step.N)
			}
		}

		// Per-shard delta publish: every cluster width swaps to the new
		// epoch and answers exactly as the snapshot's rows say.
		for n, cl := range clusters {
			if _, _, err := cl.SwapDelta(delta, stats.Touched); err != nil {
				t.Fatalf("step %d: %d-shard SwapDelta: %v", step.N, n, err)
			}
			if d := cl.Snapshot().Digest(); d != delta.Digest() {
				t.Fatalf("step %d: %d-shard cluster serves %s, want %s", step.N, n, d, delta.Digest())
			}
			prefixes, exact := delta.Prefixes(), delta.ExactIPs()
			for k := 0; k < 32; k++ {
				ip := prefixes[probeRNG.Intn(len(prefixes))] + uint32(probeRNG.Intn(256))
				if k%2 == 0 && len(exact) > 0 {
					ip = exact[probeRNG.Intn(len(exact))]
				}
				for m := range delta.Mappers() {
					if got, want := cl.Lookup(m, ip), delta.Lookup(m, ip); got != want {
						t.Fatalf("step %d: %d-shard answer for %d mapper %d: %+v, snapshot row says %+v",
							step.N, n, ip, m, got, want)
					}
				}
			}
		}

		got = append(got, goldenStep{N: step.N, Events: step.Events, Dirty: step.Dirty, Digest: delta.Digest(), Stats: stats})
		prev = delta
	}

	// The stream must exercise every event kind, including the two
	// whose effects CompileDelta detects without a dirty hint.
	for k := churn.Kind(0); k < churn.Kind(5); k++ {
		if kinds[k] == 0 {
			t.Errorf("corpus stream never drew %v — adjust seed or step count", k)
		}
	}

	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		data, err := json.MarshalIndent(got, "", "  ")
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(corpusPath(), append(data, '\n'), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("rewrote %s with %d steps", corpusPath(), len(got))
		return
	}
	data, err := os.ReadFile(corpusPath())
	if err != nil {
		t.Fatalf("missing golden corpus (run with -update to create): %v", err)
	}
	var want []goldenStep
	if err := json.Unmarshal(data, &want); err != nil {
		t.Fatalf("corrupt golden corpus: %v", err)
	}
	if len(want) != len(got) {
		t.Fatalf("golden corpus has %d steps, run produced %d", len(want), len(got))
	}
	for i := range got {
		if got[i].Digest != want[i].Digest {
			t.Errorf("step %d: digest drifted:\n got  %s\n want %s\n"+
				"churn or compile output changed; if intentional, rerun with -update and review the diff",
				got[i].N, got[i].Digest, want[i].Digest)
		}
	}
}

// TestChurnDeterministic pins replayability: the same (source, seed)
// produces the same event stream and the same snapshot digests; a
// different seed diverges.
func TestChurnDeterministic(t *testing.T) {
	p, _ := fixture(t)
	src := p.ServeSource(core.ServeOptions{})

	digests := func(seed int64) []string {
		t.Helper()
		ch, err := churn.New(src, seed)
		if err != nil {
			t.Fatal(err)
		}
		var out []string
		for i := 0; i < 3; i++ {
			step, err := ch.Next(6)
			if err != nil {
				t.Fatal(err)
			}
			snap, err := geoserve.Compile(step.Source)
			if err != nil {
				t.Fatal(err)
			}
			out = append(out, snap.Digest())
		}
		return out
	}

	a, b := digests(11), digests(11)
	for i := range a {
		if a[i] != b[i] {
			t.Fatalf("step %d: same seed diverged: %s vs %s", i+1, a[i], b[i])
		}
	}
	c := digests(12)
	same := true
	for i := range a {
		if a[i] != c[i] {
			same = false
		}
	}
	if same {
		t.Fatal("different seeds produced identical streams")
	}
}
