// Package churn makes continuous topology churn a first-class,
// reproducible scenario: a Churner owns a copy-on-write view of a
// compiled serving source (ground-truth allocation, BGP table, per-AS
// footprints) and emits deterministic seeded streams of churn events —
// BGP announces and withdraws of /24 more-specifics, allocation
// growth, interface appearance, monitor loss degrading footprints.
// Each step materialises a complete geoserve.Source plus the dirty /24
// set the events touched, ready for either a from-scratch
// geoserve.Compile or an incremental geoserve.CompileDelta; the golden
// churn corpus pins the two byte-identical at every step.
//
// Determinism discipline matches the rest of the repo: all randomness
// flows from one rng.Stream seeded at construction, no wall-clock
// anywhere, and the same (source, seed, step sizes) replay the same
// event stream on any machine.
package churn

import (
	"fmt"
	"maps"
	"slices"

	"geonet/internal/analysis"
	"geonet/internal/bgp"
	"geonet/internal/geoserve"
	"geonet/internal/netgen"
	"geonet/internal/rng"
)

// Kind is a churn event type.
type Kind uint8

const (
	// Announce re-originates an allocated /24 as a more-specific from a
	// (usually different) AS — multihoming, traffic engineering, or a
	// stale/hijacked route, the paper's known BGP mapping error source.
	Announce Kind = iota
	// Withdraw retracts a previously announced more-specific; origin
	// attribution for the /24 falls back to the covering aggregate.
	Withdraw
	// Grow allocates a fresh /24 to an AS and originates it — address
	// space growth between snapshot epochs.
	Grow
	// IfaceAdd brings a new interface address up inside an existing
	// allocated /24. It is deliberately NOT added to the dirty set:
	// CompileDelta must detect interface churn from the sources
	// themselves (the block's representative generic-host address may
	// shift), and the golden corpus pins that it does.
	IfaceAdd
	// MonitorLoss loses a measurement monitor for one mapper: the
	// affected AS's footprint disappears from that mapper, degrading
	// the confidence radius of every answer attributed to it.
	MonitorLoss

	numKinds
)

var kindNames = [numKinds]string{"announce", "withdraw", "grow", "iface-add", "monitor-loss"}

func (k Kind) String() string {
	if int(k) < len(kindNames) {
		return kindNames[k]
	}
	return fmt.Sprintf("kind(%d)", uint8(k))
}

// Event is one applied churn event.
type Event struct {
	Kind Kind `json:"kind"`
	// Base is the affected /24 base address (Announce, Withdraw, Grow,
	// IfaceAdd).
	Base uint32 `json:"base,omitempty"`
	// Addr is the interface address brought up (IfaceAdd).
	Addr uint32 `json:"addr,omitempty"`
	// Origin is the announced origin AS number (Announce, Grow).
	Origin int `json:"origin,omitempty"`
	// Mapper indexes the mapper whose monitor was lost (MonitorLoss).
	Mapper int `json:"mapper,omitempty"`
	// ASN is the AS whose footprint degraded (MonitorLoss).
	ASN int `json:"asn,omitempty"`
}

// Step is one churn step: the events applied, the fully materialised
// churned source, and the /24 bases whose routes or allocations the
// events explicitly touched. Dirty deliberately excludes IfaceAdd and
// MonitorLoss effects — CompileDelta detects those from the sources.
type Step struct {
	N      int             `json:"n"`
	Events []Event         `json:"events"`
	Source geoserve.Source `json:"-"`
	Dirty  []uint32        `json:"dirty"`
}

// Churner generates the deterministic event stream. Not safe for
// concurrent use; each Next mutates internal overlay state and
// materialises an independent Source (safe to keep and compile later).
type Churner struct {
	r    *rng.Stream
	base geoserve.Source

	// Route overlay: the base table's routes captured once, plus
	// origination for grown allocations, plus announced more-specifics
	// (in announce order, so withdraw picks are deterministic).
	baseRoutes  []bgp.Route
	grownRoutes []bgp.Route
	extras      map[uint32]int
	extraOrder  []uint32

	// Allocation overlay: grown prefixes per AS index, added
	// interfaces, and the set of addresses they occupy.
	grown      map[int][]netgen.Prefix
	added      []netgen.Iface
	addedTaken map[uint32]bool

	// Footprint overlay: current per-mapper footprint lists.
	footprints [][]analysis.ASFootprint

	// alloc24 is every allocated /24 base, ascending at construction,
	// grown blocks appended; event targets are drawn from it.
	alloc24   []uint32
	nextAlloc uint32
	step      int
}

// New builds a Churner over src (typically core.Pipeline.ServeSource).
// src itself is never mutated; all churn applies to overlays.
func New(src geoserve.Source, seed int64) (*Churner, error) {
	if src.Internet == nil || src.Table == nil || len(src.Mappers) == 0 {
		return nil, fmt.Errorf("churn: source missing internet, table or mappers")
	}
	c := &Churner{
		r:          rng.New(seed).Split("churn"),
		base:       src,
		extras:     map[uint32]int{},
		grown:      map[int][]netgen.Prefix{},
		addedTaken: map[uint32]bool{},
	}
	src.Table.Walk(func(rt bgp.Route) { c.baseRoutes = append(c.baseRoutes, rt) })
	for ai := range src.Internet.ASes {
		for _, p := range src.Internet.ASes[ai].Prefixes {
			size := uint32(1)
			if p.Len < 32 {
				size = uint32(1) << (32 - uint(p.Len))
			}
			for base := p.Addr; base < p.Addr+size; base += 256 {
				c.alloc24 = append(c.alloc24, base)
			}
		}
	}
	if len(c.alloc24) == 0 {
		return nil, fmt.Errorf("churn: source allocates no /24s")
	}
	slices.Sort(c.alloc24)
	c.alloc24 = slices.Compact(c.alloc24)
	c.nextAlloc = c.alloc24[len(c.alloc24)-1] + 256
	c.footprints = make([][]analysis.ASFootprint, len(src.Mappers))
	for m, nm := range src.Mappers {
		c.footprints[m] = slices.Clone(nm.Footprints)
	}
	return c, nil
}

// Next applies `events` churn events and returns the resulting step.
func (c *Churner) Next(events int) (Step, error) {
	if events <= 0 {
		events = 1
	}
	c.step++
	st := Step{N: c.step}
	dirty := map[uint32]struct{}{}
	for i := 0; i < events; i++ {
		ev, touched, ok := c.applyOne()
		if !ok {
			continue // no-op draw (e.g. every address in the block taken)
		}
		st.Events = append(st.Events, ev)
		for _, b := range touched {
			dirty[b] = struct{}{}
		}
	}
	st.Dirty = make([]uint32, 0, len(dirty))
	for b := range dirty {
		st.Dirty = append(st.Dirty, b)
	}
	slices.Sort(st.Dirty)
	var err error
	if st.Source, err = c.materialize(); err != nil {
		return Step{}, err
	}
	return st, nil
}

// applyOne draws one event kind and applies it to the overlays,
// returning the event and the /24 bases to mark dirty.
func (c *Churner) applyOne() (Event, []uint32, bool) {
	in := c.base.Internet
	switch k := c.drawKind(); k {
	case Announce:
		base := c.alloc24[c.r.Intn(len(c.alloc24))]
		origin := in.ASes[c.r.Intn(len(in.ASes))].Number
		if _, seen := c.extras[base]; !seen {
			c.extraOrder = append(c.extraOrder, base)
		}
		c.extras[base] = origin
		return Event{Kind: Announce, Base: base, Origin: origin}, []uint32{base}, true
	case Withdraw:
		if len(c.extraOrder) == 0 {
			// Nothing announced yet: announce instead, so early steps
			// still carry the drawn number of events.
			base := c.alloc24[c.r.Intn(len(c.alloc24))]
			origin := in.ASes[c.r.Intn(len(in.ASes))].Number
			c.extraOrder = append(c.extraOrder, base)
			c.extras[base] = origin
			return Event{Kind: Announce, Base: base, Origin: origin}, []uint32{base}, true
		}
		i := c.r.Intn(len(c.extraOrder))
		base := c.extraOrder[i]
		c.extraOrder = slices.Delete(c.extraOrder, i, i+1)
		delete(c.extras, base)
		return Event{Kind: Withdraw, Base: base}, []uint32{base}, true
	case Grow:
		if c.nextAlloc < 256 { // wrapped the address space
			return Event{}, nil, false
		}
		ai := c.r.Intn(len(in.ASes))
		base := c.nextAlloc
		c.nextAlloc += 256
		c.grown[ai] = append(c.grown[ai], netgen.Prefix{Addr: base, Len: 24})
		c.grownRoutes = append(c.grownRoutes, bgp.Route{Addr: base, Len: 24, Origin: in.ASes[ai].Number})
		c.alloc24 = append(c.alloc24, base)
		return Event{Kind: Grow, Base: base, Origin: in.ASes[ai].Number}, []uint32{base}, true
	case IfaceAdd:
		base := c.alloc24[c.r.Intn(len(c.alloc24))]
		addr, ok := c.highestFree(base)
		if !ok {
			return Event{}, nil, false
		}
		id := netgen.IfaceID(len(in.Ifaces) + len(c.added))
		c.added = append(c.added, netgen.Iface{ID: id, IP: addr})
		c.addedTaken[addr] = true
		// Dirty stays empty on purpose: CompileDelta must notice the
		// new exact address (and the shifted representative host) from
		// the interface tables alone.
		return Event{Kind: IfaceAdd, Base: base, Addr: addr}, nil, true
	case MonitorLoss:
		m := c.r.Intn(len(c.footprints))
		if len(c.footprints[m]) == 0 {
			return Event{}, nil, false
		}
		i := c.r.Intn(len(c.footprints[m]))
		fp := c.footprints[m][i]
		c.footprints[m] = slices.Delete(c.footprints[m], i, i+1)
		// Dirty stays empty: CompileDelta diffs footprint tables itself
		// and patches affected radii.
		return Event{Kind: MonitorLoss, Mapper: m, ASN: fp.ASN}, nil, true
	default:
		return Event{}, nil, false
	}
}

// drawKind picks an event kind with fixed weights: announce-heavy, as
// in real BGP churn, with the rarer structural events mixed in.
func (c *Churner) drawKind() Kind {
	switch n := c.r.Intn(100); {
	case n < 35:
		return Announce
	case n < 55:
		return Withdraw
	case n < 75:
		return Grow
	case n < 90:
		return IfaceAdd
	default:
		return MonitorLoss
	}
}

// highestFree finds the highest unoccupied address in the /24 — the
// block's current representative generic-host address, so occupying it
// forces the representative to shift.
func (c *Churner) highestFree(base uint32) (uint32, bool) {
	for off := uint32(255); ; off-- {
		addr := base + off
		_, taken := c.base.Internet.ByIP[addr]
		if !taken && !c.addedTaken[addr] {
			return addr, true
		}
		if off == 0 {
			return 0, false
		}
	}
}

// materialize assembles an independent Source from the base plus the
// overlays. The returned Internet shares immutable ground truth
// (routers, links, world) with the base but owns its AS, interface and
// address tables, so later steps never mutate an issued Step.
func (c *Churner) materialize() (geoserve.Source, error) {
	base := c.base.Internet
	in := *base
	in.ASes = slices.Clone(base.ASes)
	for ai, ps := range c.grown {
		as := &in.ASes[ai]
		as.Prefixes = append(slices.Clone(as.Prefixes), ps...)
	}
	in.Ifaces = append(slices.Clone(base.Ifaces), c.added...)
	in.ByIP = maps.Clone(base.ByIP)
	for _, ifc := range c.added {
		in.ByIP[ifc.IP] = ifc.ID
	}

	table := &bgp.Table{}
	for _, rt := range c.baseRoutes {
		table.Insert(rt)
	}
	for _, rt := range c.grownRoutes {
		table.Insert(rt)
	}
	for _, b := range c.extraOrder {
		table.Insert(bgp.Route{Addr: b, Len: 24, Origin: c.extras[b]})
	}

	mappers := make([]geoserve.NamedMapper, len(c.base.Mappers))
	for m, nm := range c.base.Mappers {
		mappers[m] = geoserve.NamedMapper{Mapper: nm.Mapper, Footprints: slices.Clone(c.footprints[m])}
	}
	return geoserve.Source{
		Internet: &in,
		Table:    table,
		Mappers:  mappers,
		Workers:  c.base.Workers,
		Build:    c.base.Build,
	}, nil
}
