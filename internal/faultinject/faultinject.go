// Package faultinject is a deterministic fault-injection layer for
// HTTP paths: a RoundTripper wrapper that injects connection drops,
// response truncations, bit-flips, added latency and mid-transfer
// resets on a seeded or scripted schedule. The replication chaos suite
// drives it to prove the serving fleet degrades gracefully — every
// "random" failure replays exactly under a fixed seed, so a chaos test
// that passes once passes always.
//
// Local is the companion piece: a RoundTripper that serves an
// http.Handler in memory, so a whole builder/replica/router fleet runs
// inside one test process with no sockets, and every fault between
// the processes-to-be is injected, not accidental.
package faultinject

import (
	"bytes"
	"context"
	"fmt"
	"io"
	"net/http"
	"net/http/httptest"
	"sync"
	"sync/atomic"
	"time"

	"geonet/internal/rng"
)

// Fault describes what happens to one HTTP exchange. The zero value
// passes the exchange through untouched.
type Fault struct {
	// Drop fails the exchange before any byte moves, like a refused or
	// reset connection.
	Drop bool
	// Latency delays the response this long (honouring request-context
	// cancellation, like a real slow peer).
	Latency time.Duration
	// TruncateAt > 0 ends the response body cleanly after that many
	// bytes — a short read the client only detects by length or
	// checksum.
	TruncateAt int
	// ResetAt > 0 errors the response body after that many bytes — a
	// connection reset mid-transfer.
	ResetAt int
	// FlipBit >= 0 XOR-flips one bit of the body: bit (FlipBit%8) of
	// byte (FlipBit/8 mod body length). Length is preserved, so only a
	// checksum catches it.
	FlipBit int
	// StallAt > 0 turns the response into a slow writer: once that many
	// body bytes have been delivered, every further Read pauses
	// StallPause first (honouring request-context cancellation). Unlike
	// Latency — which delays the whole response once — a stall starves
	// the reader mid-body, the shape of a wedged peer that accepted the
	// connection and then stopped making progress.
	StallAt    int
	StallPause time.Duration
}

func (f Fault) clean() bool {
	return !f.Drop && f.Latency == 0 && f.TruncateAt == 0 && f.ResetAt == 0 && f.FlipBit < 0 &&
		f.StallAt == 0 && f.StallPause == 0
}

// Clean is the no-fault value (FlipBit's zero value would flip bit 0;
// use Clean or set FlipBit -1 when building Faults by hand).
var Clean = Fault{FlipBit: -1}

// Decider chooses the fault for one exchange. attempt counts all
// exchanges through the transport, from 0, in arrival order.
type Decider func(attempt int, req *http.Request) Fault

// Script replays faults[i] on attempt i and passes everything after
// the script through clean — the shape chaos tests want: "first two
// fetches corrupt, then recovery".
func Script(faults ...Fault) Decider {
	return func(attempt int, _ *http.Request) Fault {
		if attempt < len(faults) {
			return faults[attempt]
		}
		return Clean
	}
}

// Probabilities drives the seeded random decider.
type Probabilities struct {
	Drop, Truncate, Reset, Flip float64
	// LatencyEvery injects MeanLatency-exponential latency with this
	// probability.
	LatencyEvery float64
	MeanLatency  time.Duration
}

// Probabilistic returns a seeded decider: the fault sequence is a pure
// function of the seed and the attempt order, so a failing chaos run
// replays bit-identically.
func Probabilistic(seed int64, p Probabilities) Decider {
	var mu sync.Mutex
	r := rng.New(seed)
	return func(_ int, _ *http.Request) Fault {
		mu.Lock()
		defer mu.Unlock()
		f := Clean
		switch {
		case r.Bool(p.Drop):
			f.Drop = true
		case r.Bool(p.Truncate):
			f.TruncateAt = 1 + r.Intn(512)
		case r.Bool(p.Reset):
			f.ResetAt = 1 + r.Intn(512)
		case r.Bool(p.Flip):
			f.FlipBit = r.Intn(1 << 20)
		}
		if p.LatencyEvery > 0 && r.Bool(p.LatencyEvery) {
			f.Latency = time.Duration(r.Exp(float64(p.MeanLatency)))
		}
		return f
	}
}

// Counters reports what the transport injected, by fault kind, plus
// the exchanges that passed clean.
type Counters struct {
	Attempts, Drops, Truncations, Resets, Flips, Delays, Stalls, Clean uint64
}

// Transport wraps a RoundTripper and injects the Decider's faults.
// Safe for concurrent use; attempts are numbered in arrival order.
type Transport struct {
	Base   http.RoundTripper
	Decide Decider

	attempt atomic.Uint64
	drops   atomic.Uint64
	truncs  atomic.Uint64
	resets  atomic.Uint64
	flips   atomic.Uint64
	delays  atomic.Uint64
	stalls  atomic.Uint64
	clean   atomic.Uint64
}

// New wraps base with the decider's fault schedule.
func New(base http.RoundTripper, decide Decider) *Transport {
	return &Transport{Base: base, Decide: decide}
}

// Counters snapshots the injection counts so far.
func (t *Transport) Counters() Counters {
	return Counters{
		Attempts:    t.attempt.Load(),
		Drops:       t.drops.Load(),
		Truncations: t.truncs.Load(),
		Resets:      t.resets.Load(),
		Flips:       t.flips.Load(),
		Delays:      t.delays.Load(),
		Stalls:      t.stalls.Load(),
		Clean:       t.clean.Load(),
	}
}

// errDropped is the injected connection failure.
type errDropped struct{ url string }

func (e errDropped) Error() string {
	return fmt.Sprintf("faultinject: dropped connection to %s", e.url)
}

func (t *Transport) RoundTrip(req *http.Request) (*http.Response, error) {
	attempt := int(t.attempt.Add(1) - 1)
	f := Clean
	if t.Decide != nil {
		f = t.Decide(attempt, req)
	}
	if f.Latency > 0 {
		t.delays.Add(1)
		select {
		case <-time.After(f.Latency):
		case <-req.Context().Done():
			return nil, req.Context().Err()
		}
	}
	if f.Drop {
		t.drops.Add(1)
		return nil, errDropped{req.URL.String()}
	}
	resp, err := t.Base.RoundTrip(req)
	if err != nil || resp == nil {
		return resp, err
	}
	switch {
	case f.TruncateAt > 0:
		t.truncs.Add(1)
		resp.Body = &faultBody{src: resp.Body, stopAt: f.TruncateAt}
		resp.ContentLength = -1
	case f.ResetAt > 0:
		t.resets.Add(1)
		resp.Body = &faultBody{src: resp.Body, stopAt: f.ResetAt, reset: true}
		resp.ContentLength = -1
	case f.FlipBit >= 0:
		t.flips.Add(1)
		resp.Body = &faultBody{src: resp.Body, flipBit: f.FlipBit}
	case f.StallAt > 0 && f.StallPause > 0:
		t.stalls.Add(1)
		resp.Body = &faultBody{src: resp.Body, flipBit: -1,
			stallAt: f.StallAt, stallPause: f.StallPause, ctx: req.Context()}
		resp.ContentLength = -1
	default:
		t.clean.Add(1)
	}
	return resp, nil
}

// faultBody distorts a response stream: clean EOF or an error at
// stopAt bytes, one flipped bit at an absolute body offset, or a
// per-Read stall once stallAt bytes have moved.
type faultBody struct {
	src     io.ReadCloser
	stopAt  int // 0 = no length fault
	reset   bool
	flipBit int // only when stopAt == 0; negative = no flip
	read    int
	flipped bool
	// stallAt/stallPause make every Read past stallAt bytes wait, like
	// a peer that stopped writing; ctx is the request context so a
	// deadlined caller escapes the stall.
	stallAt    int
	stallPause time.Duration
	ctx        context.Context
}

var errReset = fmt.Errorf("faultinject: connection reset mid-transfer")

func (b *faultBody) Read(p []byte) (int, error) {
	if b.stallAt > 0 {
		if b.read >= b.stallAt {
			select {
			case <-time.After(b.stallPause):
			case <-b.ctx.Done():
				return 0, b.ctx.Err()
			}
		} else if max := b.stallAt - b.read; len(p) > max {
			// Deliver exactly stallAt bytes cleanly so the stall begins
			// at a deterministic offset.
			p = p[:max]
		}
	}
	if b.stopAt > 0 {
		if b.read >= b.stopAt {
			if b.reset {
				return 0, errReset
			}
			return 0, io.EOF
		}
		if max := b.stopAt - b.read; len(p) > max {
			p = p[:max]
		}
	}
	n, err := b.src.Read(p)
	if n > 0 && b.stopAt == 0 && b.flipBit >= 0 && !b.flipped {
		// Flip the bit once the stream reaches its absolute offset;
		// when the body ends first, the final chunk's last byte takes
		// the flip so short responses are corrupted too.
		at := b.flipBit / 8
		if at >= b.read && at < b.read+n {
			p[at-b.read] ^= byte(1) << (b.flipBit % 8)
			b.flipped = true
		} else if err == io.EOF {
			p[n-1] ^= byte(1) << (b.flipBit % 8)
			b.flipped = true
		}
	}
	b.read += n
	return n, err
}

func (b *faultBody) Close() error { return b.src.Close() }

// Local serves an http.Handler in memory: requests round-trip through
// ServeHTTP with no sockets, preserving status, headers, body and
// Range semantics. Wrap it in a Transport to put faults between a
// client and the handler.
type Local struct{ Handler http.Handler }

func (l Local) RoundTrip(req *http.Request) (*http.Response, error) {
	if err := req.Context().Err(); err != nil {
		return nil, err
	}
	rec := httptest.NewRecorder()
	inner := req.Clone(req.Context())
	if req.Body != nil {
		body, err := io.ReadAll(req.Body)
		req.Body.Close()
		if err != nil {
			return nil, err
		}
		inner.Body = io.NopCloser(bytes.NewReader(body))
	}
	l.Handler.ServeHTTP(rec, inner)
	resp := rec.Result()
	resp.Request = req
	return resp, nil
}
