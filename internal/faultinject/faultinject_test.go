package faultinject

import (
	"context"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strings"
	"testing"
	"time"
)

// payload is long enough that truncation, reset and flip offsets all
// land inside it.
const payload = "0123456789abcdefghijklmnopqrstuvwxyz0123456789abcdefghijklmnopqrstuvwxyz"

func testHandler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		w.Header().Set("X-Test", "yes")
		io.WriteString(w, payload)
	})
}

func get(t *testing.T, client *http.Client) (string, error) {
	t.Helper()
	resp, err := client.Get("http://local/")
	if err != nil {
		return "", err
	}
	defer resp.Body.Close()
	b, err := io.ReadAll(resp.Body)
	return string(b), err
}

func TestLocalPassthrough(t *testing.T) {
	client := &http.Client{Transport: New(Local{testHandler()}, nil)}
	resp, err := client.Get("http://local/")
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != 200 || resp.Header.Get("X-Test") != "yes" {
		t.Fatalf("status %d header %q", resp.StatusCode, resp.Header.Get("X-Test"))
	}
	b, err := io.ReadAll(resp.Body)
	if err != nil || string(b) != payload {
		t.Fatalf("body %q err %v", b, err)
	}
}

func TestScriptFaults(t *testing.T) {
	tr := New(Local{testHandler()}, Script(
		Fault{Drop: true, FlipBit: -1},
		Fault{TruncateAt: 10, FlipBit: -1},
		Fault{ResetAt: 5, FlipBit: -1},
		Fault{FlipBit: 8 * 3}, // flip bit 0 of byte 3
	))
	client := &http.Client{Transport: tr}

	if _, err := get(t, client); err == nil {
		t.Fatal("dropped exchange succeeded")
	}
	body, err := get(t, client)
	if err != nil || body != payload[:10] {
		t.Fatalf("truncated read: %q err %v", body, err)
	}
	body, err = get(t, client)
	if err == nil {
		t.Fatalf("reset read succeeded with %q", body)
	}
	if len(body) > 5 {
		t.Fatalf("reset delivered %d bytes past the reset point", len(body))
	}
	body, err = get(t, client)
	if err != nil || len(body) != len(payload) {
		t.Fatalf("flipped read: len %d err %v", len(body), err)
	}
	want := []byte(payload)
	want[3] ^= 1
	if body != string(want) {
		t.Fatalf("flip landed wrong: %q", body)
	}
	// Past the script: clean.
	if body, err = get(t, client); err != nil || body != payload {
		t.Fatalf("post-script exchange not clean: %q err %v", body, err)
	}

	c := tr.Counters()
	if c.Attempts != 5 || c.Drops != 1 || c.Truncations != 1 || c.Resets != 1 || c.Flips != 1 || c.Clean != 1 {
		t.Fatalf("counters %+v", c)
	}
}

// TestProbabilisticDeterminism pins that the same seed yields the same
// fault sequence, and a different seed a different one.
func TestProbabilisticDeterminism(t *testing.T) {
	outcomes := func(seed int64) string {
		tr := New(Local{testHandler()}, Probabilistic(seed, Probabilities{
			Drop: 0.3, Truncate: 0.2, Reset: 0.1, Flip: 0.2,
		}))
		client := &http.Client{Transport: tr}
		var sb strings.Builder
		for i := 0; i < 64; i++ {
			body, err := get(t, client)
			switch {
			case err != nil:
				sb.WriteByte('E')
			case body == payload:
				sb.WriteByte('.')
			default:
				sb.WriteByte('X')
			}
		}
		return sb.String()
	}
	a, b, c := outcomes(42), outcomes(42), outcomes(7)
	if a != b {
		t.Fatalf("seed 42 not deterministic:\n%s\n%s", a, b)
	}
	if a == c {
		t.Fatal("different seeds produced identical fault sequences")
	}
	if !strings.ContainsAny(a, "EX") || !strings.Contains(a, ".") {
		t.Fatalf("seed 42 sequence lacks faults or clean exchanges: %s", a)
	}
}

// TestLatencyHonoursContext proves an injected delay aborts promptly on
// request-context cancellation — the property the replica relies on to
// halt a fetch when its deadline fires.
func TestLatencyHonoursContext(t *testing.T) {
	tr := New(Local{testHandler()}, Script(Fault{Latency: time.Hour, FlipBit: -1}))
	client := &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://local/", nil)
	start := time.Now()
	_, err := client.Do(req)
	if err == nil {
		t.Fatal("hour-long latency returned a response")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want context deadline", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestLocalRange checks Range requests survive the in-memory
// round-trip (the replica's resumable downloads depend on 206s).
func TestLocalRange(t *testing.T) {
	h := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		http.ServeContent(w, r, "blob", time.Time{}, strings.NewReader(payload))
	})
	client := &http.Client{Transport: New(Local{h}, nil)}
	req, _ := http.NewRequest("GET", "http://local/blob", nil)
	req.Header.Set("Range", fmt.Sprintf("bytes=%d-", 10))
	resp, err := client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusPartialContent {
		t.Fatalf("status %d, want 206", resp.StatusCode)
	}
	b, _ := io.ReadAll(resp.Body)
	if string(b) != payload[10:] {
		t.Fatalf("range body %q", b)
	}
}

// TestStallFault pins the slow-writer fault: the first StallAt bytes
// arrive cleanly, then every further read waits StallPause — and a
// deadlined caller escapes the stall through its request context
// instead of hanging, which is what the router's per-request timeout
// leans on to route around a wedged replica.
func TestStallFault(t *testing.T) {
	tr := New(Local{testHandler()}, Script(Fault{StallAt: 10, StallPause: 5 * time.Millisecond, FlipBit: -1}))
	client := &http.Client{Transport: tr}
	start := time.Now()
	body, err := get(t, client)
	if err != nil || body != payload {
		t.Fatalf("stalled body %q err %v", body, err)
	}
	if elapsed := time.Since(start); elapsed < 5*time.Millisecond {
		t.Fatalf("stall finished in %v, too fast to have paused", elapsed)
	}
	if c := tr.Counters(); c.Stalls != 1 {
		t.Fatalf("counters %+v, want one stall", c)
	}

	// An endless stall must yield to the request deadline promptly.
	tr = New(Local{testHandler()}, Script(Fault{StallAt: 1, StallPause: time.Hour, FlipBit: -1}))
	client = &http.Client{Transport: tr}
	ctx, cancel := context.WithTimeout(context.Background(), 20*time.Millisecond)
	defer cancel()
	req, _ := http.NewRequestWithContext(ctx, "GET", "http://local/", nil)
	start = time.Now()
	resp, err := client.Do(req)
	if err == nil {
		if _, err = io.ReadAll(resp.Body); err == nil {
			t.Fatal("hour-long stall delivered a complete body")
		}
		resp.Body.Close()
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("escaping the stall took %v", elapsed)
	}
}

// TestStallFaultZeroPauseIsClean guards the clean() accounting: a
// fault with only one of StallAt/StallPause set does not wrap the
// body.
func TestStallFaultZeroPauseIsClean(t *testing.T) {
	tr := New(Local{testHandler()}, Script(Fault{StallAt: 10, FlipBit: -1}))
	client := &http.Client{Transport: tr}
	if body, err := get(t, client); err != nil || body != payload {
		t.Fatalf("body %q err %v", body, err)
	}
	if c := tr.Counters(); c.Stalls != 0 || c.Clean != 1 {
		t.Fatalf("counters %+v, want clean passthrough", c)
	}
}
