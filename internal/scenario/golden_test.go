package scenario

import (
	"encoding/json"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "rewrite the golden corpus from the current pipeline output")

// goldenSpecs is the fixed corpus: cheap (-short-safe) worlds chosen
// to cover every ablation family — two seeds, the monitor-count,
// AS-split, uniform-placement and no-long-haul ablations. Adding a
// spec here extends the regression net; changing pipeline output
// anywhere shows up as a digest drift in these files.
func goldenSpecs() []Spec {
	zero := 0.0
	return []Spec{
		{Seed: 1, Scale: 0.02},
		{Seed: 2, Scale: 0.02},
		{Seed: 1, Scale: 0.02, Monitors: 9},
		{Seed: 1, Scale: 0.02, ASCountFactor: 4},
		{Seed: 1, Scale: 0.02, UniformPlacement: true},
		{Seed: 1, Scale: 0.02, DistIndepFrac: &zero},
	}
}

// goldenResult is the persisted form: everything in Result except the
// informational timing.
type goldenResult struct {
	Label   string  `json:"label"`
	Spec    Spec    `json:"spec"`
	Digest  string  `json:"digest"`
	Metrics Metrics `json:"metrics"`
}

func goldenPath(label string) string {
	return filepath.Join("testdata", "golden", label+".json")
}

// TestGoldenCorpus pins the full report digest and headline metrics of
// every corpus spec. It runs in -short mode by design: this is the
// regression net that makes "reports are byte-identical" an executable
// test instead of a per-PR manual hash check. On intentional pipeline
// changes, regenerate with
//
//	go test ./internal/scenario -run TestGoldenCorpus -update
//
// and commit the diff (plus core's testConfigDigest) so the drift is
// reviewed.
func TestGoldenCorpus(t *testing.T) {
	specs := goldenSpecs()
	rep, err := Sweep(specs, Options{})
	if err != nil {
		t.Fatal(err)
	}

	if *update {
		if err := os.MkdirAll(filepath.Join("testdata", "golden"), 0o755); err != nil {
			t.Fatal(err)
		}
		for _, res := range rep.Results {
			g := goldenResult{Label: res.Label, Spec: res.Spec, Digest: res.Digest, Metrics: res.Metrics}
			data, err := json.MarshalIndent(g, "", "  ")
			if err != nil {
				t.Fatal(err)
			}
			if err := os.WriteFile(goldenPath(res.Label), append(data, '\n'), 0o644); err != nil {
				t.Fatal(err)
			}
		}
		t.Logf("rewrote %d golden files", len(rep.Results))
		return
	}

	for _, res := range rep.Results {
		data, err := os.ReadFile(goldenPath(res.Label))
		if err != nil {
			t.Errorf("%s: missing golden file (run with -update to create): %v", res.Label, err)
			continue
		}
		var want goldenResult
		if err := json.Unmarshal(data, &want); err != nil {
			t.Errorf("%s: corrupt golden file: %v", res.Label, err)
			continue
		}
		if res.Digest != want.Digest {
			t.Errorf("%s: report digest drifted:\n got  %s\n want %s\n"+
				"pipeline output changed; if intentional, rerun with -update and review the diff",
				res.Label, res.Digest, want.Digest)
		}
		if res.Metrics != want.Metrics {
			t.Errorf("%s: metrics drifted:\n got  %+v\n want %+v", res.Label, res.Metrics, want.Metrics)
		}
	}

	// The corpus is only a net if the ablations actually produce
	// different worlds: every digest must be unique.
	seen := map[string]string{}
	for _, res := range rep.Results {
		if prev, dup := seen[res.Digest]; dup {
			t.Errorf("specs %s and %s produced identical digests — ablation had no effect", prev, res.Label)
		}
		seen[res.Digest] = res.Label
	}
}
