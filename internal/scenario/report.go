package scenario

import (
	"fmt"
	"strings"

	"geonet/internal/core"
)

// FormatTable renders the per-scenario results as an aligned text
// table: one row per spec, in spec order, with the headline metrics
// and a digest prefix long enough to eyeball-compare runs.
func (r *Report) FormatTable() string {
	t := core.Table{
		Caption: fmt.Sprintf("Sweep results (%d scenarios)", len(r.Results)),
		Header:  []string{"Scenario", "Nodes", "Links", "Locs", "MapAgree", "Slope", "Decay(mi)", "Digest"},
	}
	for _, res := range r.Results {
		t.Rows = append(t.Rows, []string{
			res.Label,
			fmt.Sprintf("%d", res.Metrics.Nodes),
			fmt.Sprintf("%d", res.Metrics.Links),
			fmt.Sprintf("%d", res.Metrics.Locations),
			fmt.Sprintf("%.3f", res.Metrics.MapperSameLoc),
			fmt.Sprintf("%.5f", res.Metrics.DistPrefSlope),
			fmt.Sprintf("%.0f", res.Metrics.DecayMiles),
			res.Digest[:12],
		})
	}
	return t.Render()
}

// axis is one sensitivity dimension: a name and how to read its value
// off a spec.
type axis struct {
	name  string
	value func(Spec) string
}

func axes() []axis {
	return []axis{
		{"seed", func(s Spec) string { return fmt.Sprintf("%d", s.Seed) }},
		{"scale", func(s Spec) string { return fmt.Sprintf("%g", s.Scale) }},
		{"monitors", func(s Spec) string { return defaultable(s.Monitors > 0, fmt.Sprintf("%d", s.Monitors)) }},
		{"as_count_factor", func(s Spec) string { return defaultable(s.ASCountFactor > 0, fmt.Sprintf("%g", s.ASCountFactor)) }},
		{"extra_links", func(s Spec) string {
			if s.ExtraLinks == nil {
				return "default"
			}
			return fmt.Sprintf("%g", *s.ExtraLinks)
		}},
		{"dist_indep_frac", func(s Spec) string {
			if s.DistIndepFrac == nil {
				return "default"
			}
			return fmt.Sprintf("%g", *s.DistIndepFrac)
		}},
		{"placement", func(s Spec) string {
			if s.UniformPlacement {
				return "uniform"
			}
			return "population"
		}},
		{"route_cache_budget", func(s Spec) string { return defaultable(s.RouteCacheBudget > 0, fmt.Sprintf("%d", s.RouteCacheBudget)) }},
	}
}

func defaultable(set bool, v string) string {
	if !set {
		return "default"
	}
	return v
}

// Sensitivity builds one table per axis that actually varies across
// the sweep: results grouped by axis value (in spec order), metric
// means per group. Reading down a table shows how Table-I agreement
// and the distance-preference exponent move along that axis.
func (r *Report) Sensitivity() []core.Table {
	var out []core.Table
	for _, ax := range axes() {
		groups := map[string][]Metrics{}
		var order []string
		for _, res := range r.Results {
			v := ax.value(res.Spec)
			if _, ok := groups[v]; !ok {
				order = append(order, v)
			}
			groups[v] = append(groups[v], res.Metrics)
		}
		if len(order) < 2 {
			continue // axis does not vary; nothing to compare
		}
		t := core.Table{
			Caption: fmt.Sprintf("Sensitivity along %s", ax.name),
			Header:  []string{ax.name, "Scenarios", "Nodes", "Links", "MapAgree", "Slope", "Decay(mi)"},
		}
		for _, v := range order {
			ms := groups[v]
			var nodes, links, agree, slope, decay float64
			for _, m := range ms {
				nodes += float64(m.Nodes)
				links += float64(m.Links)
				agree += m.MapperSameLoc
				slope += m.DistPrefSlope
				decay += m.DecayMiles
			}
			n := float64(len(ms))
			t.Rows = append(t.Rows, []string{
				v,
				fmt.Sprintf("%d", len(ms)),
				fmt.Sprintf("%.0f", nodes/n),
				fmt.Sprintf("%.0f", links/n),
				fmt.Sprintf("%.3f", agree/n),
				fmt.Sprintf("%.5f", slope/n),
				fmt.Sprintf("%.0f", decay/n),
			})
		}
		out = append(out, t)
	}
	return out
}

// FormatSensitivity renders every varying-axis table.
func (r *Report) FormatSensitivity() string {
	tables := r.Sensitivity()
	if len(tables) == 0 {
		return "no axis varies across the sweep\n"
	}
	var b strings.Builder
	for i, t := range tables {
		if i > 0 {
			b.WriteByte('\n')
		}
		b.WriteString(t.Render())
	}
	return b.String()
}
