// Package scenario is the declarative sweep engine: it runs many full
// reproduction pipelines as one workload and reduces them into a
// cross-scenario report.
//
// A Spec names one pipeline variant — seed, scale, worker and
// route-cache knobs, plus the netgen ablations (skitter monitor
// count, AS count factor, extra-link density, distance-independent
// link fraction, uniform "Waxman" placement). A Matrix expands axis
// value lists into the cross product of Specs in a fixed, documented
// order. Sweep executes the specs concurrently — shared-nothing
// pipelines under one global worker budget split by
// parallel.NestedBudget, so N pipelines times M inner stage workers
// never oversubscribes the budget (analysis kernels follow GOMAXPROCS;
// see Options.TotalWorkers) — and reduces results in spec order into a
// Report:
// per-scenario report digests (core.Digest) plus sensitivity tables
// showing how the paper's headline metrics move along each axis.
//
// The digests double as the regression net: testdata/golden holds the
// digest and metrics for a fixed spec set, pinned by TestGoldenCorpus.
// Any change to pipeline output fails the test until the corpus is
// regenerated with
//
//	go test ./internal/scenario -run TestGoldenCorpus -update
//
// making every output drift an explicit, reviewed golden update.
package scenario

import (
	"fmt"
	"strings"

	"geonet/internal/core"
	"geonet/internal/netgen"
)

// Spec names one pipeline variant. The zero value of every optional
// field means "pipeline default": Workers/RouteCacheBudget/Monitors
// and ASCountFactor treat <= 0 as default, and the two fractional
// ablations use nil. Seed and Scale are required.
type Spec struct {
	// Name overrides the derived Label in output and golden filenames.
	Name  string  `json:"name,omitempty"`
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`

	// Workers bounds this pipeline's internal fan-out; Sweep fills it
	// from the global budget when 0.
	Workers int `json:"workers,omitempty"`
	// RouteCacheBudget overrides netsim's routing-table cache budget.
	RouteCacheBudget int `json:"route_cache_budget,omitempty"`

	// Netgen ablations.
	Monitors      int     `json:"monitors,omitempty"`        // skitter monitor count
	ASCountFactor float64 `json:"as_count_factor,omitempty"` // >1 = more, smaller ASes
	// ExtraLinks and DistIndepFrac are pointers because 0 is a
	// meaningful ablation value (a tree-only AS, no long hauls).
	ExtraLinks       *float64 `json:"extra_links,omitempty"`     // mean extra links per router
	DistIndepFrac    *float64 `json:"dist_indep_frac,omitempty"` // distance-independent link fraction
	UniformPlacement bool     `json:"uniform_placement,omitempty"`

	// Churn axis: ChurnSteps > 0 appends a continuous-churn phase to
	// the scenario. After the pipeline runs, a seeded churn stream
	// (internal/churn) applies ChurnEvents events per step (<= 0 means
	// 8) for ChurnSteps steps; each step is delta-compiled from the
	// previous snapshot, verified byte-identical to a from-scratch
	// compile, and its content digest recorded in the result.
	ChurnSteps  int   `json:"churn_steps,omitempty"`
	ChurnEvents int   `json:"churn_events,omitempty"`
	ChurnSeed   int64 `json:"churn_seed,omitempty"` // 0 means the spec seed
}

// ablated reports whether any generator knob differs from the default.
func (s Spec) ablated() bool {
	return s.Monitors > 0 || s.ASCountFactor > 0 ||
		s.ExtraLinks != nil || s.DistIndepFrac != nil || s.UniformPlacement
}

// Label returns the spec's display name: the explicit Name if set,
// otherwise a canonical slug built from every non-default knob, so two
// distinct specs in one sweep never collide.
func (s Spec) Label() string {
	if s.Name != "" {
		return s.Name
	}
	var b strings.Builder
	fmt.Fprintf(&b, "seed%d-scale%g", s.Seed, s.Scale)
	if s.Monitors > 0 {
		fmt.Fprintf(&b, "-mon%d", s.Monitors)
	}
	if s.ASCountFactor > 0 {
		fmt.Fprintf(&b, "-asx%g", s.ASCountFactor)
	}
	if s.ExtraLinks != nil {
		fmt.Fprintf(&b, "-xl%g", *s.ExtraLinks)
	}
	if s.DistIndepFrac != nil {
		fmt.Fprintf(&b, "-di%g", *s.DistIndepFrac)
	}
	if s.UniformPlacement {
		b.WriteString("-uniform")
	}
	if s.RouteCacheBudget > 0 {
		fmt.Fprintf(&b, "-rcb%d", s.RouteCacheBudget)
	}
	if s.ChurnSteps > 0 {
		fmt.Fprintf(&b, "-churn%d", s.ChurnSteps)
		if s.ChurnEvents > 0 {
			fmt.Fprintf(&b, "x%d", s.ChurnEvents)
		}
		if s.ChurnSeed != 0 {
			fmt.Fprintf(&b, "cs%d", s.ChurnSeed)
		}
	}
	return b.String()
}

// CoreConfig translates the spec into a pipeline configuration,
// validating any generator ablations once up front so a bad axis fails
// before the sweep launches anything.
func (s Spec) CoreConfig() (core.Config, error) {
	if s.Scale <= 0 {
		return core.Config{}, fmt.Errorf("scenario: %s: scale must be positive", s.Label())
	}
	// Only zero means "default" for these knobs; negatives are spec
	// errors, not sentinels.
	if s.Monitors < 0 {
		return core.Config{}, fmt.Errorf("scenario: %s: monitor count must be >= 0", s.Label())
	}
	if s.ASCountFactor < 0 {
		return core.Config{}, fmt.Errorf("scenario: %s: AS count factor must be >= 0", s.Label())
	}
	if s.ChurnSteps < 0 || s.ChurnEvents < 0 {
		return core.Config{}, fmt.Errorf("scenario: %s: churn steps and events must be >= 0", s.Label())
	}
	cfg := core.Config{
		Seed:             s.Seed,
		Scale:            s.Scale,
		Workers:          s.Workers,
		RouteCacheBudget: s.RouteCacheBudget,
	}
	if s.ablated() {
		g := netgen.DefaultConfig()
		if s.Monitors > 0 {
			g.NumSkitterMonitors = s.Monitors
		}
		if s.ASCountFactor > 0 {
			g.ASCountFactor = s.ASCountFactor
		}
		if s.ExtraLinks != nil {
			g.MeanExtraLinksPerRouter = *s.ExtraLinks
		}
		if s.DistIndepFrac != nil {
			g.DistanceIndependentFraction = *s.DistIndepFrac
		}
		g.UniformPlacement = s.UniformPlacement
		g.Scale = s.Scale // so Validate sees the effective value
		if err := g.Validate(); err != nil {
			return core.Config{}, fmt.Errorf("scenario: %s: %w", s.Label(), err)
		}
		cfg.Gen = &g
	}
	return cfg, nil
}

// Matrix lists value axes to sweep. Specs expands the cross product in
// a fixed order — seeds vary slowest, then scales, monitors, AS count
// factors, extra-link densities, distance-independent fractions, and
// placement fastest — so sweep output and golden corpora are stable
// regardless of how the matrix was written. An empty axis contributes
// the single default value.
type Matrix struct {
	Seeds  []int64   `json:"seeds"`
	Scales []float64 `json:"scales"`

	Monitors       []int     `json:"monitors,omitempty"`
	ASCountFactors []float64 `json:"as_count_factors,omitempty"`
	ExtraLinks     []float64 `json:"extra_links,omitempty"`
	DistIndepFracs []float64 `json:"dist_indep_fracs,omitempty"`
	// Placement lists placement modes: "population" (default) and/or
	// "uniform".
	Placement []string `json:"placement,omitempty"`

	// RouteCacheBudgets optionally varies netsim's cache budget —
	// useful for proving an axis does NOT move results.
	RouteCacheBudgets []int `json:"route_cache_budgets,omitempty"`

	// ChurnSteps optionally varies the continuous-churn phase length
	// (0 = no churn phase).
	ChurnSteps []int `json:"churn_steps,omitempty"`
}

// Specs expands the matrix. It errors on an empty required axis or an
// unknown placement mode.
func (m Matrix) Specs() ([]Spec, error) {
	if len(m.Seeds) == 0 {
		return nil, fmt.Errorf("scenario: matrix needs at least one seed")
	}
	if len(m.Scales) == 0 {
		return nil, fmt.Errorf("scenario: matrix needs at least one scale")
	}
	uniform := make([]bool, 0, 2)
	if len(m.Placement) == 0 {
		uniform = append(uniform, false)
	}
	for _, p := range m.Placement {
		switch p {
		case "population":
			uniform = append(uniform, false)
		case "uniform":
			uniform = append(uniform, true)
		default:
			return nil, fmt.Errorf("scenario: unknown placement %q (want population or uniform)", p)
		}
	}
	monitors := m.Monitors
	if len(monitors) == 0 {
		monitors = []int{0}
	}
	asFactors := m.ASCountFactors
	if len(asFactors) == 0 {
		asFactors = []float64{0}
	}
	budgets := m.RouteCacheBudgets
	if len(budgets) == 0 {
		budgets = []int{0}
	}
	churn := m.ChurnSteps
	if len(churn) == 0 {
		churn = []int{0}
	}

	var specs []Spec
	for _, seed := range m.Seeds {
		for _, scale := range m.Scales {
			for _, mon := range monitors {
				for _, asf := range asFactors {
					for _, xl := range orDefault(m.ExtraLinks) {
						for _, di := range orDefault(m.DistIndepFracs) {
							for _, uni := range uniform {
								for _, rcb := range budgets {
									for _, cs := range churn {
										specs = append(specs, Spec{
											Seed:             seed,
											Scale:            scale,
											Monitors:         mon,
											ASCountFactor:    asf,
											ExtraLinks:       xl,
											DistIndepFrac:    di,
											UniformPlacement: uni,
											RouteCacheBudget: rcb,
											ChurnSteps:       cs,
										})
									}
								}
							}
						}
					}
				}
			}
		}
	}
	seen := make(map[string]struct{}, len(specs))
	for _, s := range specs {
		if _, dup := seen[s.Label()]; dup {
			return nil, fmt.Errorf("scenario: duplicate spec %q (repeated axis value?)", s.Label())
		}
		seen[s.Label()] = struct{}{}
	}
	return specs, nil
}

// orDefault turns a float axis into pointer values, with an absent
// axis contributing the single default (nil).
func orDefault(vals []float64) []*float64 {
	if len(vals) == 0 {
		return []*float64{nil}
	}
	out := make([]*float64, len(vals))
	for i := range vals {
		v := vals[i]
		out[i] = &v
	}
	return out
}
