package scenario

import (
	"errors"
	"fmt"
	"io"
	"sync"
	"time"

	"geonet/internal/analysis"
	"geonet/internal/core"
	"geonet/internal/geo"
	"geonet/internal/geoserve"
	"geonet/internal/parallel"
)

// Metrics are the headline numbers extracted from each scenario for
// the cross-scenario sensitivity tables: Table-I sizes, mapper
// agreement (IxMapper vs EdgeScape over the skitter collection) and
// the Section V distance-preference exponent for the US region.
type Metrics struct {
	Nodes     int `json:"nodes"`     // skitter/ixmapper
	Links     int `json:"links"`     // skitter/ixmapper
	Locations int `json:"locations"` // skitter/ixmapper distinct locations

	MapperSameLoc    float64 `json:"mapper_same_loc"`    // fraction of shared addresses placed identically
	MapperLocJaccard float64 `json:"mapper_loc_jaccard"` // overlap of distinct-location sets

	DistPrefSlope float64 `json:"dist_pref_slope"` // US small-d semi-log slope (per mile)
	DecayMiles    float64 `json:"decay_miles"`     // -1/slope, the Waxman decay length
}

// extractMetrics reduces one finished pipeline to its Metrics.
func extractMetrics(p *core.Pipeline) Metrics {
	sk := p.Dataset("skitter", "ixmapper")
	es := p.Dataset("skitter", "edgescape")
	ag := analysis.MapperAgreement(sk, es)
	// The paper's US parameters: 35-mile bins, small-d fit below 250
	// miles (Figure 5).
	dp := analysis.DistancePreference(sk, geo.US, 35, 100)
	fit := dp.FitSmallD(250)
	return Metrics{
		Nodes:            len(sk.Nodes),
		Links:            len(sk.Links),
		Locations:        sk.NumLocations(),
		MapperSameLoc:    ag.SameLocFrac,
		MapperLocJaccard: ag.LocJaccard,
		DistPrefSlope:    fit.Fit.Slope,
		DecayMiles:       fit.DecayMiles,
	}
}

// Result is one scenario's reduced output.
type Result struct {
	Label   string  `json:"label"`
	Spec    Spec    `json:"spec"`
	Digest  string  `json:"digest"` // core.Digest over every experiment
	Metrics Metrics `json:"metrics"`
	// ChurnDigests are the per-step snapshot content digests of the
	// spec's churn phase (present only when Spec.ChurnSteps > 0); each
	// delta-compiled step was verified byte-identical to a
	// from-scratch compile before its digest was recorded.
	ChurnDigests []string `json:"churn_digests,omitempty"`
	// ElapsedMs is wall-clock run time; it is informational and
	// excluded from golden comparisons.
	ElapsedMs int64 `json:"elapsed_ms,omitempty"`
}

// Report is a finished sweep: results in fixed spec order.
type Report struct {
	Results []Result `json:"results"`
}

// Options controls sweep execution.
type Options struct {
	// TotalWorkers is the global worker budget shared by every
	// concurrently running pipeline (<= 0 means one per CPU). It is
	// split by parallel.NestedBudget: N pipelines at once, each
	// allowed budget/N internal workers. The budget bounds the
	// pipelines' stage fan-out; the analysis kernels inside the digest
	// phase follow GOMAXPROCS instead (the same caveat as
	// core.Config.Workers), so cap GOMAXPROCS — as cmd/sweep's
	// -workers flag does — to bound those too.
	TotalWorkers int
	// Progress, when non-nil, receives one start and one finish line
	// per scenario as the sweep streams along.
	Progress io.Writer
	// Verbose additionally forwards each pipeline's own stage
	// announcements to Progress, prefixed with the scenario label.
	Verbose bool
}

// Sweep runs every spec as a shared-nothing pipeline, bounded by the
// global worker budget, and reduces the results in spec order. All
// specs are validated before anything runs; pipeline errors abort the
// sweep (joined, one per failed scenario).
func Sweep(specs []Spec, opt Options) (*Report, error) {
	if len(specs) == 0 {
		return nil, fmt.Errorf("scenario: empty sweep")
	}
	// Validate every spec — including label uniqueness, so spec lists
	// that bypassed Matrix.Specs (a JSON spec array) cannot silently
	// run the same scenario twice — before launching anything.
	seen := make(map[string]struct{}, len(specs))
	cfgs := make([]core.Config, len(specs))
	for i, s := range specs {
		if _, dup := seen[s.Label()]; dup {
			return nil, fmt.Errorf("scenario: duplicate spec %q", s.Label())
		}
		seen[s.Label()] = struct{}{}
		cfg, err := s.CoreConfig()
		if err != nil {
			return nil, err
		}
		cfgs[i] = cfg
	}

	outer, inner := parallel.NestedBudget(opt.TotalWorkers, len(specs))
	var mu sync.Mutex
	say := func(format string, args ...interface{}) {
		if opt.Progress == nil {
			return
		}
		mu.Lock()
		fmt.Fprintf(opt.Progress, format+"\n", args...)
		mu.Unlock()
	}

	report := &Report{Results: make([]Result, len(specs))}
	errs := make([]error, len(specs))
	say("sweep: %d scenarios, %d at once, %d workers each", len(specs), outer, inner)
	parallel.ForEach(outer, len(specs), func(i int) {
		spec := specs[i]
		cfg := cfgs[i]
		if cfg.Workers <= 0 {
			cfg.Workers = inner
		}
		if opt.Verbose && opt.Progress != nil {
			cfg.Progress = &prefixWriter{w: opt.Progress, mu: &mu, prefix: "  [" + spec.Label() + "] "}
		}
		say("[%d/%d] %s: start", i+1, len(specs), spec.Label())
		start := time.Now()
		p, err := core.Run(cfg)
		if err != nil {
			errs[i] = fmt.Errorf("scenario %s: %w", spec.Label(), err)
			say("[%d/%d] %s: FAILED: %v", i+1, len(specs), spec.Label(), err)
			return
		}
		res := Result{
			Label:   spec.Label(),
			Spec:    spec,
			Digest:  core.Digest(p),
			Metrics: extractMetrics(p),
		}
		if spec.ChurnSteps > 0 {
			res.ChurnDigests, err = runChurn(p, spec)
			if err != nil {
				errs[i] = fmt.Errorf("scenario %s: %w", spec.Label(), err)
				say("[%d/%d] %s: FAILED: %v", i+1, len(specs), spec.Label(), err)
				return
			}
		}
		res.ElapsedMs = time.Since(start).Milliseconds()
		report.Results[i] = res
		say("[%d/%d] %s: done in %.1fs  digest=%s", i+1, len(specs), spec.Label(),
			float64(res.ElapsedMs)/1000, res.Digest[:12])
	})
	if err := errors.Join(errs...); err != nil {
		return nil, err
	}
	return report, nil
}

// runChurn drives a spec's continuous-churn phase: a seeded event
// stream over the finished pipeline's serving source, delta-compiled
// step by step, with every step verified byte-identical to a
// from-scratch compile before its digest is recorded.
func runChurn(p *core.Pipeline, s Spec) ([]string, error) {
	seed := s.ChurnSeed
	if seed == 0 {
		seed = s.Seed
	}
	events := s.ChurnEvents
	if events <= 0 {
		events = 8
	}
	prev, err := p.Serve()
	if err != nil {
		return nil, err
	}
	ch, err := p.Churner(core.ServeOptions{}, seed)
	if err != nil {
		return nil, err
	}
	digests := make([]string, 0, s.ChurnSteps)
	for i := 0; i < s.ChurnSteps; i++ {
		step, err := ch.Next(events)
		if err != nil {
			return nil, err
		}
		next, _, err := p.ServeDelta(prev, step)
		if err != nil {
			return nil, fmt.Errorf("churn step %d: %w", step.N, err)
		}
		full, err := geoserve.Compile(step.Source)
		if err != nil {
			return nil, fmt.Errorf("churn step %d: full compile: %w", step.N, err)
		}
		if next.Digest() != full.Digest() {
			return nil, fmt.Errorf("churn step %d: delta digest %s diverged from from-scratch %s",
				step.N, next.Digest(), full.Digest())
		}
		digests = append(digests, next.Digest())
		prev = next
	}
	return digests, nil
}

// prefixWriter forwards writes line-by-line with a prefix, sharing the
// sweep's output mutex so concurrent pipelines' stage lines never
// interleave mid-line.
type prefixWriter struct {
	w      io.Writer
	mu     *sync.Mutex
	prefix string
	buf    []byte
}

func (pw *prefixWriter) Write(p []byte) (int, error) {
	pw.buf = append(pw.buf, p...)
	for {
		nl := -1
		for i, b := range pw.buf {
			if b == '\n' {
				nl = i
				break
			}
		}
		if nl < 0 {
			return len(p), nil
		}
		line := pw.buf[:nl+1]
		pw.mu.Lock()
		io.WriteString(pw.w, pw.prefix)
		pw.w.Write(line)
		pw.mu.Unlock()
		pw.buf = pw.buf[nl+1:]
	}
}
