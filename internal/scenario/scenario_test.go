package scenario

import (
	"bytes"
	"strings"
	"sync"
	"testing"
)

func TestMatrixExpansionOrderAndCount(t *testing.T) {
	m := Matrix{
		Seeds:    []int64{1, 2},
		Scales:   []float64{0.02, 0.05},
		Monitors: []int{0, 9},
	}
	specs, err := m.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 8 {
		t.Fatalf("got %d specs, want 8", len(specs))
	}
	// Seeds vary slowest, monitors fastest.
	wantFirst := []Spec{
		{Seed: 1, Scale: 0.02, Monitors: 0},
		{Seed: 1, Scale: 0.02, Monitors: 9},
		{Seed: 1, Scale: 0.05, Monitors: 0},
		{Seed: 1, Scale: 0.05, Monitors: 9},
		{Seed: 2, Scale: 0.02, Monitors: 0},
	}
	for i, want := range wantFirst {
		got := specs[i]
		if got.Seed != want.Seed || got.Scale != want.Scale || got.Monitors != want.Monitors {
			t.Errorf("spec[%d] = %s, want seed%d scale%g mon%d", i, got.Label(), want.Seed, want.Scale, want.Monitors)
		}
	}
}

func TestMatrixRequiresSeedAndScale(t *testing.T) {
	if _, err := (Matrix{Scales: []float64{0.02}}).Specs(); err == nil {
		t.Error("missing seeds should error")
	}
	if _, err := (Matrix{Seeds: []int64{1}}).Specs(); err == nil {
		t.Error("missing scales should error")
	}
}

func TestMatrixRejectsBadPlacement(t *testing.T) {
	m := Matrix{Seeds: []int64{1}, Scales: []float64{0.02}, Placement: []string{"waxman"}}
	if _, err := m.Specs(); err == nil {
		t.Error("unknown placement mode should error")
	}
}

func TestMatrixRejectsDuplicateAxisValues(t *testing.T) {
	m := Matrix{Seeds: []int64{1, 1}, Scales: []float64{0.02}}
	if _, err := m.Specs(); err == nil {
		t.Error("repeated axis value should error, not silently double work")
	}
}

func TestSpecLabelsDistinguishKnobs(t *testing.T) {
	zero := 0.0
	specs := []Spec{
		{Seed: 1, Scale: 0.02},
		{Seed: 1, Scale: 0.02, Monitors: 9},
		{Seed: 1, Scale: 0.02, ASCountFactor: 2},
		{Seed: 1, Scale: 0.02, ExtraLinks: &zero},
		{Seed: 1, Scale: 0.02, DistIndepFrac: &zero},
		{Seed: 1, Scale: 0.02, UniformPlacement: true},
		{Seed: 1, Scale: 0.02, RouteCacheBudget: 8},
	}
	seen := map[string]bool{}
	for _, s := range specs {
		l := s.Label()
		if seen[l] {
			t.Errorf("duplicate label %q", l)
		}
		seen[l] = true
	}
	if got := (Spec{Name: "custom", Seed: 1, Scale: 0.02}).Label(); got != "custom" {
		t.Errorf("explicit name ignored: %q", got)
	}
}

func TestCoreConfigValidation(t *testing.T) {
	if _, err := (Spec{Seed: 1}).CoreConfig(); err == nil {
		t.Error("zero scale should fail")
	}
	bad := -0.5
	if _, err := (Spec{Seed: 1, Scale: 0.02, DistIndepFrac: &bad}).CoreConfig(); err == nil {
		t.Error("negative distance-independent fraction should fail netgen validation")
	}
	if _, err := (Spec{Seed: 1, Scale: 0.02, ASCountFactor: -1}).CoreConfig(); err == nil {
		t.Error("negative AS count factor should fail netgen validation")
	}
	// Default spec carries no generator override at all.
	cfg, err := (Spec{Seed: 1, Scale: 0.02}).CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Gen != nil {
		t.Error("un-ablated spec should not override the generator config")
	}
	// Ablated spec does, with the knob applied.
	cfg, err = (Spec{Seed: 1, Scale: 0.02, Monitors: 9}).CoreConfig()
	if err != nil {
		t.Fatal(err)
	}
	if cfg.Gen == nil || cfg.Gen.NumSkitterMonitors != 9 {
		t.Errorf("monitor ablation not applied: %+v", cfg.Gen)
	}
}

func TestSweepFailsFastOnBadSpec(t *testing.T) {
	_, err := Sweep([]Spec{{Seed: 1, Scale: 0.02}, {Seed: 1, Scale: -1}}, Options{})
	if err == nil {
		t.Fatal("invalid spec must abort the sweep before running anything")
	}
}

func TestSweepRejectsDuplicateSpecs(t *testing.T) {
	// Spec lists can bypass Matrix.Specs (cmd/sweep's JSON array
	// input), so Sweep itself must refuse to run a scenario twice.
	dup := []Spec{{Seed: 1, Scale: 0.02}, {Seed: 1, Scale: 0.02}}
	if _, err := Sweep(dup, Options{}); err == nil {
		t.Error("duplicate specs must abort the sweep")
	}
	named := []Spec{{Name: "x", Seed: 1, Scale: 0.02}, {Name: "x", Seed: 2, Scale: 0.02}}
	if _, err := Sweep(named, Options{}); err == nil {
		t.Error("colliding explicit names must abort the sweep")
	}
}

func TestSweepEmpty(t *testing.T) {
	if _, err := Sweep(nil, Options{}); err == nil {
		t.Error("empty sweep should error")
	}
}

// TestSweepRunsAndReduces runs a real two-scenario sweep at a tiny
// scale: results come back in spec order, digests differ across
// seeds, progress streams, and the seed axis shows up in sensitivity.
func TestSweepRunsAndReduces(t *testing.T) {
	specs := []Spec{
		{Seed: 1, Scale: 0.01},
		{Seed: 2, Scale: 0.01},
	}
	var progress bytes.Buffer
	rep, err := Sweep(specs, Options{TotalWorkers: 2, Progress: &progress})
	if err != nil {
		t.Fatal(err)
	}
	if len(rep.Results) != 2 {
		t.Fatalf("got %d results, want 2", len(rep.Results))
	}
	for i, res := range rep.Results {
		if res.Label != specs[i].Label() {
			t.Errorf("result %d is %q, want %q — order must follow specs", i, res.Label, specs[i].Label())
		}
		if len(res.Digest) != 64 {
			t.Errorf("%s: digest %q is not a sha256 hex", res.Label, res.Digest)
		}
		if res.Metrics.Nodes == 0 || res.Metrics.Links == 0 {
			t.Errorf("%s: empty metrics %+v", res.Label, res.Metrics)
		}
	}
	if rep.Results[0].Digest == rep.Results[1].Digest {
		t.Error("different seeds produced identical digests")
	}
	out := progress.String()
	for _, want := range []string{"sweep: 2 scenarios", "seed1-scale0.01: done", "seed2-scale0.01: done"} {
		if !strings.Contains(out, want) {
			t.Errorf("progress output missing %q:\n%s", want, out)
		}
	}

	table := rep.FormatTable()
	if !strings.Contains(table, "seed1-scale0.01") || !strings.Contains(table, "Digest") {
		t.Errorf("FormatTable missing content:\n%s", table)
	}
	sens := rep.FormatSensitivity()
	if !strings.Contains(sens, "Sensitivity along seed") {
		t.Errorf("sensitivity should include the seed axis:\n%s", sens)
	}
	if strings.Contains(sens, "Sensitivity along scale") {
		t.Errorf("scale does not vary; it should not get a table:\n%s", sens)
	}
}

func TestPrefixWriterSplitsLines(t *testing.T) {
	var out bytes.Buffer
	var mu sync.Mutex
	pw := &prefixWriter{w: &out, mu: &mu, prefix: "[x] "}
	pw.Write([]byte("hello "))
	pw.Write([]byte("world\npart"))
	pw.Write([]byte("ial\n"))
	want := "[x] hello world\n[x] partial\n"
	if out.String() != want {
		t.Errorf("got %q, want %q", out.String(), want)
	}
}

// TestChurnAxis covers the churn scenario axis end to end: matrix
// expansion, label uniqueness, validation, and a real sweep whose
// churn phase produces deterministic per-step digests (each already
// verified byte-identical to a from-scratch compile inside runChurn).
func TestChurnAxis(t *testing.T) {
	m := Matrix{Seeds: []int64{1}, Scales: []float64{0.02}, ChurnSteps: []int{0, 2}}
	specs, err := m.Specs()
	if err != nil {
		t.Fatal(err)
	}
	if len(specs) != 2 || specs[0].ChurnSteps != 0 || specs[1].ChurnSteps != 2 {
		t.Fatalf("churn axis expanded wrong: %+v", specs)
	}
	if specs[0].Label() == specs[1].Label() {
		t.Fatalf("churn knob invisible in label %q", specs[0].Label())
	}
	if _, err := (Spec{Seed: 1, Scale: 0.02, ChurnSteps: -1}).CoreConfig(); err == nil {
		t.Error("negative churn steps should fail validation")
	}

	run := func() *Report {
		t.Helper()
		rep, err := Sweep([]Spec{{Seed: 1, Scale: 0.02, ChurnSteps: 2, ChurnEvents: 4}}, Options{})
		if err != nil {
			t.Fatal(err)
		}
		return rep
	}
	a, b := run(), run()
	da, db := a.Results[0].ChurnDigests, b.Results[0].ChurnDigests
	if len(da) != 2 {
		t.Fatalf("churn phase produced %d digests, want 2", len(da))
	}
	for i := range da {
		if da[i] != db[i] {
			t.Fatalf("churn step %d digest not deterministic: %s vs %s", i+1, da[i], db[i])
		}
	}
	if da[0] == da[1] {
		t.Error("consecutive churn steps produced identical digests — events had no effect")
	}
}
