package obs

import (
	"fmt"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"
)

func TestTraceIDRoundTrip(t *testing.T) {
	for _, id := range []TraceID{1, 0xdeadbeef, 0xffffffffffffffff, 0x0123456789abcdef} {
		s := id.String()
		if len(s) != 16 {
			t.Fatalf("String(%x) = %q, want 16 hex digits", uint64(id), s)
		}
		got, ok := ParseTraceID(s)
		if !ok || got != id {
			t.Fatalf("ParseTraceID(%q) = %x, %v; want %x, true", s, uint64(got), ok, uint64(id))
		}
	}
	for _, bad := range []string{"", "0", "xyz", strings.Repeat("f", 17), "12 4"} {
		if id, ok := ParseTraceID(bad); ok {
			t.Fatalf("ParseTraceID(%q) accepted as %x", bad, uint64(id))
		}
	}
	if got, ok := ParseTraceID("DEADBEEF"); !ok || got != 0xdeadbeef {
		t.Fatalf("uppercase parse = %x, %v", uint64(got), ok)
	}
}

func TestNewTraceIDDistinct(t *testing.T) {
	seen := map[TraceID]bool{}
	for i := 0; i < 1000; i++ {
		id := NewTraceID()
		if id == 0 || seen[id] {
			t.Fatalf("NewTraceID produced zero or duplicate %x at %d", uint64(id), i)
		}
		seen[id] = true
	}
}

func TestHistogramExportExact(t *testing.T) {
	h := &Histogram{}
	// One observation per fine bucket boundary value.
	for _, ns := range []uint64{1, 31, 32, 100, 1 << 20, 1 << 35, 1 << 40} {
		h.Record(time.Duration(ns))
	}
	counts := h.Export()
	if len(counts) != len(ExportBounds())+1 {
		t.Fatalf("Export returned %d buckets, want %d", len(counts), len(ExportBounds())+1)
	}
	var total uint64
	for _, c := range counts {
		total += c
	}
	if total != h.Count() {
		t.Fatalf("export total %d != count %d", total, h.Count())
	}
	// 1 and 31 fall below the first bound (32ns); 32 and 100 in the
	// second (128ns requires <128: 32 yes, 100 yes)... verify
	// cumulative against a direct rule: cum(le) counts obs < le except
	// exact-boundary obs land in the next bucket.
	if counts[0] != 2 { // 1ns, 31ns
		t.Fatalf("bucket[0] (<32ns) = %d, want 2", counts[0])
	}
	if counts[1] != 2 { // 32ns, 100ns < 128ns
		t.Fatalf("bucket[1] (<128ns) = %d, want 2", counts[1])
	}
	// 1<<35 sits exactly on the last bound (le is exclusive at the
	// recording edge) and 1<<40 is past the ladder: both overflow.
	if counts[len(counts)-1] != 2 {
		t.Fatalf("overflow bucket = %d, want 2", counts[len(counts)-1])
	}
}

func TestRegistryExpositionDeterministic(t *testing.T) {
	build := func() *Registry {
		r := NewRegistry()
		var c Counter
		c.Add(42)
		r.RegisterCounter("zeta_total", "Last alphabetically.", nil, &c)
		r.CounterFunc("alpha_total", "First alphabetically.", Labels{{"shard", "0"}}, func() uint64 { return 7 })
		r.CounterFunc("alpha_total", "First alphabetically.", Labels{{"shard", "1"}}, func() uint64 { return 9 })
		r.GaugeFunc("mid_gauge", "A gauge.", nil, func() float64 { return 1.5 })
		h := &Histogram{}
		h.Record(100 * time.Nanosecond)
		h.Record(time.Millisecond)
		r.RegisterHistogram("lat_seconds", "A histogram.", Labels{{"kind", "x"}}, h)
		return r
	}
	var a, b strings.Builder
	if err := build().WritePrometheus(&a); err != nil {
		t.Fatal(err)
	}
	if err := build().WritePrometheus(&b); err != nil {
		t.Fatal(err)
	}
	if a.String() != b.String() {
		t.Fatalf("two identical registries rendered differently:\n%s\n---\n%s", a.String(), b.String())
	}
	out := a.String()
	// Families sorted by name.
	ia, im, iz := strings.Index(out, "# HELP alpha_total"), strings.Index(out, "# HELP mid_gauge"), strings.Index(out, "# HELP zeta_total")
	if !(ia >= 0 && ia < im && im < iz) {
		t.Fatalf("families not sorted:\n%s", out)
	}
	for _, want := range []string{
		`alpha_total{shard="0"} 7`,
		`alpha_total{shard="1"} 9`,
		"mid_gauge 1.5",
		"zeta_total 42",
		`lat_seconds_bucket{kind="x",le="+Inf"} 2`,
		`lat_seconds_count{kind="x"} 2`,
	} {
		if !strings.Contains(out, want) {
			t.Fatalf("exposition missing %q:\n%s", want, out)
		}
	}
}

func TestRegistryReplaceOnReregister(t *testing.T) {
	r := NewRegistry()
	r.CounterFunc("x_total", "X.", nil, func() uint64 { return 1 })
	r.CounterFunc("x_total", "X.", nil, func() uint64 { return 2 })
	var b strings.Builder
	r.WritePrometheus(&b)
	if strings.Count(b.String(), "\nx_total ") != 1 {
		t.Fatalf("re-registration duplicated the series:\n%s", b.String())
	}
	if !strings.Contains(b.String(), "x_total 2") {
		t.Fatalf("re-registration did not replace the reader:\n%s", b.String())
	}
}

func TestRegistryKindMismatchPanics(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Fatal("registering one name as counter and gauge did not panic")
		}
	}()
	r := NewRegistry()
	r.CounterFunc("x_total", "X.", nil, func() uint64 { return 1 })
	r.GaugeFunc("x_total", "X.", nil, func() float64 { return 1 })
}

// TestRegistryConcurrentScrape races recording handles and histogram
// records against scrapes and re-registrations; run under -race this
// is the registry's thread-safety proof.
func TestRegistryConcurrentScrape(t *testing.T) {
	r := NewRegistry()
	var c Counter
	var g Gauge
	h := &Histogram{}
	r.RegisterCounter("req_total", "Requests.", nil, &c)
	r.RegisterGauge("inflight", "In flight.", nil, &g)
	r.RegisterHistogram("lat_seconds", "Latency.", nil, h)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for w := 0; w < 4; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; ; i++ {
				select {
				case <-stop:
					return
				default:
				}
				c.Inc()
				g.Set(int64(i % 10))
				h.Record(time.Duration(i%1000) * time.Microsecond)
			}
		}(w)
	}
	wg.Add(1)
	go func() {
		defer wg.Done()
		for i := 0; i < 50; i++ {
			r.CounterFunc("swap_total", "Re-registered mid-scrape.", nil, c.Value)
		}
	}()
	for i := 0; i < 100; i++ {
		var b strings.Builder
		if err := r.WritePrometheus(&b); err != nil {
			t.Errorf("scrape %d: %v", i, err)
		}
		if !strings.Contains(b.String(), "req_total") {
			t.Errorf("scrape %d lost a family", i)
		}
	}
	close(stop)
	wg.Wait()
}

func TestRecorderSlowBias(t *testing.T) {
	rec := NewRecorder("test")
	rec.SetSlowThreshold(time.Millisecond)
	slow := Span{Trace: 0x51, Name: "slow", Duration: 5 * time.Millisecond}
	rec.Record(slow)
	// Flood the recent ring with fast spans.
	for i := 0; i < recentSpanCap+10; i++ {
		rec.Record(Span{Trace: TraceID(i + 100), Name: "fast", Duration: time.Microsecond})
	}
	for _, s := range rec.Spans() {
		if s.Name == "slow" {
			t.Fatal("slow span should have been evicted from the recent ring")
		}
	}
	slows := rec.SlowSpans()
	if len(slows) != 1 || slows[0].Name != "slow" {
		t.Fatalf("slow ring = %+v, want the one slow span", slows)
	}
	if rec.Recorded() != uint64(recentSpanCap+11) {
		t.Fatalf("Recorded() = %d", rec.Recorded())
	}
}

func TestRecorderNewestFirst(t *testing.T) {
	rec := NewRecorder("test")
	for i := 1; i <= 5; i++ {
		rec.Record(Span{Trace: TraceID(i), Name: fmt.Sprintf("s%d", i)})
	}
	got := rec.Spans()
	if len(got) != 5 || got[0].Name != "s5" || got[4].Name != "s1" {
		t.Fatalf("Spans() order = %+v", got)
	}
}

func TestNilTraceSafe(t *testing.T) {
	var tr *Trace
	tr.Span("nop", time.Now()) // must not panic
	if tr.TraceID() != 0 {
		t.Fatal("nil trace has a nonzero id")
	}
	var rec *Recorder
	rec.Record(Span{Trace: 1}) // must not panic
	if rec.Start(1) != nil {
		t.Fatal("nil recorder started a trace")
	}
}

func TestTracezHandler(t *testing.T) {
	o := NewObservability("widget")
	tr := o.Traces.Start(0xabc)
	tr.Span("hop", time.Now(), A("key", "val"), AInt("n", 3))

	req := httptest.NewRequest("GET", "/debug/tracez", nil)
	w := httptest.NewRecorder()
	o.Traces.Handler().ServeHTTP(w, req)
	body := w.Body.String()
	for _, want := range []string{`"component":"widget"`, `"name":"hop"`, `"0000000000000abc"`, `"k":"key"`, `"v":"3"`} {
		if !strings.Contains(body, want) {
			t.Fatalf("tracez missing %q:\n%s", want, body)
		}
	}

	req = httptest.NewRequest("GET", "/metrics", nil)
	w = httptest.NewRecorder()
	o.Metrics.Handler().ServeHTTP(w, req)
	mbody := w.Body.String()
	for _, want := range []string{`geoserve_component_info{component="widget"} 1`, "geoserve_trace_spans_total 1"} {
		if !strings.Contains(mbody, want) {
			t.Fatalf("metrics missing %q:\n%s", want, mbody)
		}
	}
}
