package obs

import (
	"encoding/json"
	"net/http"
	"strconv"
	"sync"
	"sync/atomic"
	"time"
)

// TraceHeader carries a request's trace ID across hops: minted at the
// edge (router or geoserved), echoed into responses, and propagated on
// every router→replica and coordinator→shard forward.
const TraceHeader = "X-Geo-Trace"

// TraceID is a compact per-request identifier, rendered as 16 hex
// digits. Zero means "not traced".
type TraceID uint64

// String renders the ID as fixed-width lowercase hex.
func (t TraceID) String() string {
	var b [16]byte
	const hexdigits = "0123456789abcdef"
	for i := 0; i < 16; i++ {
		b[i] = hexdigits[(uint64(t)>>(60-4*i))&0xf]
	}
	return string(b[:])
}

// ParseTraceID parses a hex trace ID (1–16 digits); ok=false for an
// empty, malformed or zero ID.
func ParseTraceID(s string) (TraceID, bool) {
	if len(s) == 0 || len(s) > 16 {
		return 0, false
	}
	var v uint64
	for i := 0; i < len(s); i++ {
		c := s[i]
		switch {
		case c >= '0' && c <= '9':
			v = v<<4 | uint64(c-'0')
		case c >= 'a' && c <= 'f':
			v = v<<4 | uint64(c-'a'+10)
		case c >= 'A' && c <= 'F':
			v = v<<4 | uint64(c-'A'+10)
		default:
			return 0, false
		}
	}
	return TraceID(v), v != 0
}

// traceSeq seeds NewTraceID; the splitmix64 finalizer turns the
// sequence into well-spread IDs without a lock or a global rand.
var traceSeq atomic.Uint64

func init() { traceSeq.Store(uint64(time.Now().UnixNano())) }

// NewTraceID mints a nonzero trace ID.
func NewTraceID() TraceID {
	for {
		x := traceSeq.Add(0x9E3779B97F4A7C15)
		x ^= x >> 30
		x *= 0xBF58476D1CE4E5B9
		x ^= x >> 27
		x *= 0x94D049BB133111EB
		x ^= x >> 31
		if x != 0 {
			return TraceID(x)
		}
	}
}

// Attr is one span attribute.
type Attr struct {
	Key   string `json:"k"`
	Value string `json:"v"`
}

// A builds a string attribute.
func A(key, value string) Attr { return Attr{key, value} }

// AInt builds an integer attribute.
func AInt(key string, value int) Attr { return Attr{key, strconv.Itoa(value)} }

// Span is one hop's record of a traced request: where time went in
// this component (queue wait, scatter fan-out, wire encode, a retry
// decision), tied back to the edge-minted trace ID.
type Span struct {
	Trace    TraceID
	Name     string
	Start    time.Time
	Duration time.Duration
	Attrs    []Attr
}

// spanJSON is the tracez wire shape of a Span.
type spanJSON struct {
	Trace      string  `json:"trace"`
	Name       string  `json:"name"`
	Start      string  `json:"start"`
	DurationUs float64 `json:"duration_us"`
	Attrs      []Attr  `json:"attrs,omitempty"`
}

func (s Span) json() spanJSON {
	return spanJSON{
		Trace:      s.Trace.String(),
		Name:       s.Name,
		Start:      s.Start.UTC().Format(time.RFC3339Nano),
		DurationUs: float64(s.Duration) / float64(time.Microsecond),
		Attrs:      s.Attrs,
	}
}

// Ring capacities and the slow-span bias threshold.
const (
	recentSpanCap = 256
	slowSpanCap   = 64
	// DefaultSlowSpan is the duration at which a span also enters the
	// slow ring, where it outlives the churnier recent ring.
	DefaultSlowSpan = time.Millisecond
)

// Recorder is a bounded in-memory span store with a slow-request
// retention bias: every span lands in a fixed-size recent ring
// (overwriting oldest), and spans at or over the slow threshold are
// additionally copied into a smaller slow ring that only slow spans
// churn — so a burst of fast traffic cannot evict the evidence of the
// slow request you are hunting. Recording takes one short mutex; it
// only runs for traced requests, never on the untraced hot path.
type Recorder struct {
	component string
	slowNs    int64
	recorded  atomic.Uint64

	mu         sync.Mutex
	recent     [recentSpanCap]Span
	recentLen  int
	recentNext int
	slow       [slowSpanCap]Span
	slowLen    int
	slowNext   int
}

// NewRecorder builds a recorder for one component with the default
// slow threshold.
func NewRecorder(component string) *Recorder {
	r := &Recorder{component: component}
	r.slowNs = int64(DefaultSlowSpan)
	return r
}

// SetSlowThreshold overrides the slow-ring admission threshold.
func (r *Recorder) SetSlowThreshold(d time.Duration) { r.slowNs = int64(d) }

// Component names the recorder's process role.
func (r *Recorder) Component() string { return r.component }

// Recorded counts spans ever recorded (including ones since evicted).
func (r *Recorder) Recorded() uint64 { return r.recorded.Load() }

// Record stores one span. Safe on a nil recorder (drops the span), so
// call sites don't need to guard.
func (r *Recorder) Record(s Span) {
	if r == nil || s.Trace == 0 {
		return
	}
	r.recorded.Add(1)
	r.mu.Lock()
	r.recent[r.recentNext] = s
	r.recentNext = (r.recentNext + 1) % recentSpanCap
	if r.recentLen < recentSpanCap {
		r.recentLen++
	}
	if int64(s.Duration) >= r.slowNs {
		r.slow[r.slowNext] = s
		r.slowNext = (r.slowNext + 1) % slowSpanCap
		if r.slowLen < slowSpanCap {
			r.slowLen++
		}
	}
	r.mu.Unlock()
}

// Spans returns the recent ring newest-first.
func (r *Recorder) Spans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ringNewestFirst(r.recent[:], r.recentLen, r.recentNext)
}

// SlowSpans returns the slow ring newest-first.
func (r *Recorder) SlowSpans() []Span {
	r.mu.Lock()
	defer r.mu.Unlock()
	return ringNewestFirst(r.slow[:], r.slowLen, r.slowNext)
}

func ringNewestFirst(ring []Span, n, next int) []Span {
	out := make([]Span, 0, n)
	for i := 0; i < n; i++ {
		out = append(out, ring[(next-1-i+len(ring)*2)%len(ring)])
	}
	return out
}

// Handler serves GET /debug/tracez: the component name, the retention
// policy, and both rings newest-first.
func (r *Recorder) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		recent, slow := r.Spans(), r.SlowSpans()
		body := struct {
			Component   string     `json:"component"`
			SlowUs      float64    `json:"slow_threshold_us"`
			RecentCap   int        `json:"recent_cap"`
			SlowCap     int        `json:"slow_cap"`
			SpansTotal  uint64     `json:"spans_total"`
			RecentSpans []spanJSON `json:"recent"`
			SlowSpans   []spanJSON `json:"slow"`
		}{
			Component:   r.component,
			SlowUs:      float64(r.slowNs) / float64(time.Microsecond),
			RecentCap:   recentSpanCap,
			SlowCap:     slowSpanCap,
			SpansTotal:  r.Recorded(),
			RecentSpans: make([]spanJSON, len(recent)),
			SlowSpans:   make([]spanJSON, len(slow)),
		}
		for i, s := range recent {
			body.RecentSpans[i] = s.json()
		}
		for i, s := range slow {
			body.SlowSpans[i] = s.json()
		}
		w.Header().Set("Content-Type", "application/json")
		json.NewEncoder(w).Encode(body)
	})
}

// Trace is the per-request handle a traced request threads through its
// hops; nil means "not traced", and every method is nil-safe so call
// sites stay unconditional.
type Trace struct {
	id  TraceID
	rec *Recorder
}

// Start returns a request handle for id, or nil when the recorder is
// nil or the id is zero.
func (r *Recorder) Start(id TraceID) *Trace {
	if r == nil || id == 0 {
		return nil
	}
	return &Trace{id: id, rec: r}
}

// TraceID reports the handle's ID (0 on a nil handle).
func (t *Trace) TraceID() TraceID {
	if t == nil {
		return 0
	}
	return t.id
}

// Span records one completed hop: it stamps the duration as
// time.Since(start) and stores the span.
func (t *Trace) Span(name string, start time.Time, attrs ...Attr) {
	if t == nil {
		return
	}
	t.rec.Record(Span{
		Trace:    t.id,
		Name:     name,
		Start:    start,
		Duration: time.Since(start),
		Attrs:    attrs,
	})
}

// TraceFromRequest returns the request's trace handle: nil — at the
// cost of exactly one header lookup — unless the request carries a
// valid X-Geo-Trace header. The untraced hot path stays
// allocation-free.
func TraceFromRequest(req *http.Request, rec *Recorder) *Trace {
	id, ok := ParseTraceID(req.Header.Get(TraceHeader))
	if !ok {
		return nil
	}
	return rec.Start(id)
}
