// Package obs is the serving stack's zero-dependency observability
// layer: a lock-free metrics registry exposed in Prometheus text
// format, the shared latency histogram type the serving tiers record
// into, and request-scoped tracing with a bounded in-memory span ring
// served as JSON.
//
// Design constraints, in order:
//
//   - The hot path stays allocation-free. Metrics are recorded through
//     pre-registered handles (plain atomics); the registry is only
//     walked at scrape time, when gauge/counter funcs read the live
//     values. Nothing on a lookup's path ever touches a map.
//   - Exposition is deterministic: families sort by name, series keep
//     registration order, histogram bucket ladders are fixed — so a
//     golden test can pin every family, label set and bucket layout.
//   - Tracing is strictly opt-in per request: a request without an
//     X-Geo-Trace header records nothing and costs one header lookup.
//     Traced requests record per-hop spans into a fixed ring with a
//     slow-request retention bias (see Recorder).
//
// An Observability bundles one component's Registry and Recorder so a
// serving handler can mount GET /metrics and GET /debug/tracez, and so
// epoch hot-swaps can rebuild handlers against the same registry
// without resetting counters (re-registering a family replaces its
// readers in place).
package obs

import "net/http"

// Observability bundles one component's metrics registry and trace
// recorder. Components that hot-swap serving state (the replica's
// per-epoch handler rebuild) create one bundle up front and thread it
// through every rebuild, so scrape continuity survives the swap.
type Observability struct {
	// Component names the process role ("engine", "cluster", "replica",
	// "router", ...); it labels tracez output and the component info
	// gauge.
	Component string
	Metrics   *Registry
	Traces    *Recorder
}

// NewObservability builds a bundle with a fresh registry and recorder.
func NewObservability(component string) *Observability {
	o := &Observability{
		Component: component,
		Metrics:   NewRegistry(),
		Traces:    NewRecorder(component),
	}
	o.Metrics.GaugeFunc("geoserve_component_info",
		"Always 1; the component label identifies the process role.",
		Labels{{"component", component}}, func() float64 { return 1 })
	o.Metrics.CounterFunc("geoserve_trace_spans_total",
		"Trace spans recorded into the tracez ring.",
		nil, o.Traces.Recorded)
	return o
}

// Mount attaches the observability endpoints to a serving mux:
//
//	GET /metrics        Prometheus text exposition
//	GET /debug/tracez   recent + slow trace spans, JSON, newest first
func (o *Observability) Mount(mux *http.ServeMux) {
	mux.Handle("GET /metrics", o.Metrics.Handler())
	mux.Handle("GET /debug/tracez", o.Traces.Handler())
}
