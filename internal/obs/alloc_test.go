package obs

import (
	"net/http/httptest"
	"testing"
	"time"
)

// TestHotPathZeroAlloc pins that the primitives the serving hot path
// touches on every request — counter increments, histogram records,
// and the trace probe on an untraced request — allocate nothing. The
// serving benchmarks (BenchmarkServeLookupParallel, BenchmarkWireBatch)
// hold the end-to-end line; this test localizes a regression to the
// obs layer itself.
func TestHotPathZeroAlloc(t *testing.T) {
	var c Counter
	if n := testing.AllocsPerRun(1000, func() { c.Inc(); c.Add(3) }); n != 0 {
		t.Errorf("Counter.Inc/Add: %v allocs/op, want 0", n)
	}

	var h Histogram
	if n := testing.AllocsPerRun(1000, func() { h.Record(123 * time.Microsecond) }); n != 0 {
		t.Errorf("Histogram.Record: %v allocs/op, want 0", n)
	}

	rec := NewRecorder("test")
	req := httptest.NewRequest("GET", "/v1/locate?ip=10.0.0.1", nil)
	if n := testing.AllocsPerRun(1000, func() {
		if tr := TraceFromRequest(req, rec); tr != nil {
			t.Fatal("untraced request produced a trace handle")
		}
	}); n != 0 {
		t.Errorf("TraceFromRequest (no header): %v allocs/op, want 0", n)
	}

	// Nil-safe no-ops on the untraced path must also stay free.
	var nilTrace *Trace
	if n := testing.AllocsPerRun(1000, func() {
		if nilTrace.TraceID() != 0 {
			t.Fatal("nil trace has an ID")
		}
	}); n != 0 {
		t.Errorf("nil Trace.TraceID: %v allocs/op, want 0", n)
	}
}
