package obs

import (
	"bufio"
	"fmt"
	"io"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
)

// Counter is a monotonically increasing metric handle. It is a plain
// atomic, so recording is lock-free and allocation-free; register it
// once and Add/Inc forever.
type Counter struct{ v atomic.Uint64 }

// Inc adds one.
func (c *Counter) Inc() { c.v.Add(1) }

// Add adds n.
func (c *Counter) Add(n uint64) { c.v.Add(n) }

// Value reads the current count.
func (c *Counter) Value() uint64 { return c.v.Load() }

// Gauge is a settable integer metric handle backed by one atomic.
type Gauge struct{ v atomic.Int64 }

// Set stores n.
func (g *Gauge) Set(n int64) { g.v.Store(n) }

// Add adds n (may be negative).
func (g *Gauge) Add(n int64) { g.v.Add(n) }

// Value reads the current value.
func (g *Gauge) Value() int64 { return g.v.Load() }

// Label is one metric label pair. Labels render in the order given at
// registration, so a fixed registration order makes exposition (and
// the golden that pins it) deterministic.
type Label struct{ Key, Value string }

// Labels is an ordered label set.
type Labels []Label

const (
	kindCounter   = "counter"
	kindGauge     = "gauge"
	kindHistogram = "histogram"
)

// series is one labeled member of a family: either a scalar read func
// or a histogram.
type series struct {
	labels string // rendered {k="v",...} or ""
	value  func() float64
	hist   *Histogram
}

// family is one metric name: help text, a type, and its series in
// registration order.
type family struct {
	name, help, kind string
	series           []*series
	index            map[string]*series
}

// Registry holds a component's metric families and renders them in
// Prometheus text exposition format. Registration takes a mutex and
// may allocate; recording never goes through the registry at all — it
// happens on the handles (atomics) the readers close over. Scrapes
// read live values, so two scrapes under traffic differ in values but
// never in families, labels or ordering.
//
// Re-registering a (name, labels) pair replaces that series' reader in
// place. Hot-swap paths lean on this: a replica rebuilding its serving
// handler for a new epoch re-registers the engine families against the
// same registry, and the scrape keeps its family set without
// duplicates.
type Registry struct {
	mu       sync.Mutex
	families map[string]*family
	names    []string // sorted family names
}

// NewRegistry returns an empty registry.
func NewRegistry() *Registry {
	return &Registry{families: map[string]*family{}}
}

// CounterFunc registers a counter series read from fn at scrape time —
// the bridge onto counters that already live as atomics elsewhere.
func (r *Registry) CounterFunc(name, help string, labels Labels, fn func() uint64) {
	r.register(name, kindCounter, help, labels, func() float64 { return float64(fn()) }, nil)
}

// RegisterCounter registers a Counter handle as a series of name.
func (r *Registry) RegisterCounter(name, help string, labels Labels, c *Counter) {
	r.CounterFunc(name, help, labels, c.Value)
}

// GaugeFunc registers a gauge series computed by fn at scrape time.
// fn may take locks (scrapes are rare); it must not call back into the
// registry.
func (r *Registry) GaugeFunc(name, help string, labels Labels, fn func() float64) {
	r.register(name, kindGauge, help, labels, fn, nil)
}

// RegisterGauge registers a Gauge handle as a series of name.
func (r *Registry) RegisterGauge(name, help string, labels Labels, g *Gauge) {
	r.GaugeFunc(name, help, labels, func() float64 { return float64(g.Value()) })
}

// RegisterHistogram registers a Histogram as a series of name. It is
// exposed on the fixed export ladder (see ExportBounds) with exact
// cumulative bucket counts, a bucket-estimated _sum, and _count.
func (r *Registry) RegisterHistogram(name, help string, labels Labels, h *Histogram) {
	r.register(name, kindHistogram, help, labels, nil, h)
}

func (r *Registry) register(name, kind, help string, labels Labels, value func() float64, hist *Histogram) {
	ls := renderLabels(labels)
	r.mu.Lock()
	defer r.mu.Unlock()
	f := r.families[name]
	if f == nil {
		f = &family{name: name, help: help, kind: kind, index: map[string]*series{}}
		r.families[name] = f
		i := sort.SearchStrings(r.names, name)
		r.names = append(r.names, "")
		copy(r.names[i+1:], r.names[i:])
		r.names[i] = name
	}
	if f.kind != kind {
		panic(fmt.Sprintf("obs: metric %q registered as %s and %s", name, f.kind, kind))
	}
	if s := f.index[ls]; s != nil {
		// Replace in place: an epoch hot-swap re-registers the family
		// against fresh serving state without resetting the scrape shape.
		s.value, s.hist = value, hist
		return
	}
	s := &series{labels: ls, value: value, hist: hist}
	f.series = append(f.series, s)
	f.index[ls] = s
}

// renderLabels renders an ordered label set as {k="v",...} with
// Prometheus escaping; an empty set renders as "".
func renderLabels(labels Labels) string {
	if len(labels) == 0 {
		return ""
	}
	var b strings.Builder
	b.WriteByte('{')
	for i, l := range labels {
		if i > 0 {
			b.WriteByte(',')
		}
		b.WriteString(l.Key)
		b.WriteString(`="`)
		b.WriteString(escapeLabel(l.Value))
		b.WriteByte('"')
	}
	b.WriteByte('}')
	return b.String()
}

func escapeLabel(v string) string {
	if !strings.ContainsAny(v, "\\\"\n") {
		return v
	}
	v = strings.ReplaceAll(v, `\`, `\\`)
	v = strings.ReplaceAll(v, "\n", `\n`)
	return strings.ReplaceAll(v, `"`, `\"`)
}

// exportLE[i] is the exposition form of export bound i in seconds.
var exportLE = buildExportLE()

func buildExportLE() []string {
	le := make([]string, len(exportBounds))
	for i, ns := range exportBounds {
		le[i] = strconv.FormatFloat(float64(ns)/1e9, 'g', -1, 64)
	}
	return le
}

// WritePrometheus renders every family in Prometheus text exposition
// format: families sorted by name, series in registration order,
// histograms on the fixed export ladder.
func (r *Registry) WritePrometheus(w io.Writer) error {
	bw := bufio.NewWriter(w)
	r.mu.Lock()
	defer r.mu.Unlock()
	for _, name := range r.names {
		f := r.families[name]
		fmt.Fprintf(bw, "# HELP %s %s\n", f.name, f.help)
		fmt.Fprintf(bw, "# TYPE %s %s\n", f.name, f.kind)
		for _, s := range f.series {
			if f.kind == kindHistogram {
				writeHistogram(bw, f.name, s)
				continue
			}
			fmt.Fprintf(bw, "%s%s %s\n", f.name, s.labels, formatValue(s.value()))
		}
	}
	return bw.Flush()
}

// writeHistogram renders one histogram series: cumulative _bucket
// lines over the export ladder, an approximate _sum (seconds, from
// bucket lower bounds), and _count.
func writeHistogram(w *bufio.Writer, name string, s *series) {
	counts := s.hist.Export()
	var cum uint64
	for i, le := range exportLE {
		cum += counts[i]
		fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(s.labels, le), cum)
	}
	cum += counts[len(counts)-1]
	fmt.Fprintf(w, "%s_bucket%s %d\n", name, bucketLabels(s.labels, "+Inf"), cum)
	fmt.Fprintf(w, "%s_sum%s %s\n", name, s.labels, formatValue(float64(s.hist.ApproxSumNs())/1e9))
	fmt.Fprintf(w, "%s_count%s %d\n", name, s.labels, cum)
}

// bucketLabels splices le into a rendered label set.
func bucketLabels(labels, le string) string {
	if labels == "" {
		return `{le="` + le + `"}`
	}
	return labels[:len(labels)-1] + `,le="` + le + `"}`
}

func formatValue(v float64) string {
	return strconv.FormatFloat(v, 'g', -1, 64)
}

// FamilyNames returns the registered family names, sorted — what the
// fleet CI gate diffs against its allowlist.
func (r *Registry) FamilyNames() []string {
	r.mu.Lock()
	defer r.mu.Unlock()
	out := make([]string, len(r.names))
	copy(out, r.names)
	return out
}

// Handler serves GET /metrics.
func (r *Registry) Handler() http.Handler {
	return http.HandlerFunc(func(w http.ResponseWriter, req *http.Request) {
		w.Header().Set("Content-Type", "text/plain; version=0.0.4; charset=utf-8")
		r.WritePrometheus(w)
	})
}
