package obs

import (
	"sync/atomic"
	"time"
)

// Histogram is a concurrent latency histogram over a fixed geometric
// bucket ladder (~25% resolution from 32ns to ~69s). Record is
// lock-free (one atomic add after a small binary search) and
// allocation-free, so it can sit on the serving hot path.
type Histogram struct {
	counts [numLatBuckets]atomic.Uint64
}

// latBounds[i] is the inclusive lower bound (in ns) of bucket i:
// 1,2,...,7, then four sub-buckets per power of two.
var latBounds = buildLatBounds()

const numLatBuckets = 7 + 4*33

func buildLatBounds() []uint64 {
	bounds := []uint64{1, 2, 3, 4, 5, 6, 7}
	for exp := uint(3); exp < 36; exp++ {
		for sub := uint64(0); sub < 4; sub++ {
			bounds = append(bounds, (4+sub)<<(exp-2))
		}
	}
	return bounds
}

func latBucket(ns uint64) int {
	lo, hi := 0, len(latBounds)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if latBounds[mid] <= ns {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo == 0 {
		return 0
	}
	return lo - 1
}

// Record adds one observation.
func (h *Histogram) Record(d time.Duration) { h.RecordN(d, 1) }

// RecordN adds n observations of the same duration — how batch serving
// folds a sub-batch into the histogram at its per-lookup average
// without a clock read per address.
func (h *Histogram) RecordN(d time.Duration, n uint64) {
	ns := uint64(d)
	if d <= 0 {
		ns = 1
	}
	h.counts[latBucket(ns)].Add(n)
}

// Count reports the number of observations.
func (h *Histogram) Count() uint64 {
	var n uint64
	for i := range h.counts {
		n += h.counts[i].Load()
	}
	return n
}

// Quantile returns an approximation of the q-quantile (q in [0,1]):
// the lower bound of the bucket holding the target observation.
func (h *Histogram) Quantile(q float64) time.Duration {
	total := h.Count()
	if total == 0 {
		return 0
	}
	target := uint64(q * float64(total))
	if target >= total {
		target = total - 1
	}
	var seen uint64
	for i := range h.counts {
		seen += h.counts[i].Load()
		if seen > target {
			return time.Duration(latBounds[i])
		}
	}
	return time.Duration(latBounds[len(latBounds)-1])
}

// Merge adds other's observations into h.
func (h *Histogram) Merge(other *Histogram) {
	for i := range h.counts {
		if n := other.counts[i].Load(); n > 0 {
			h.counts[i].Add(n)
		}
	}
}

// exportBounds is the coarse fixed export ladder: upper bounds in ns at
// every other power of two (factor 4 apart), from 32ns to ~34s. Each
// bound is an exact edge of the fine recording ladder, so exported
// cumulative counts are exact, not interpolated. The ladder is fixed so
// /metrics bucket layouts and BENCH histogram exports are deterministic
// and comparable across runs.
var exportBounds = buildExportBounds()

func buildExportBounds() []uint64 {
	var b []uint64
	for exp := uint(5); exp <= 35; exp += 2 {
		b = append(b, uint64(1)<<exp)
	}
	return b
}

// ExportBounds returns the upper bounds (in ns) of the coarse export
// ladder shared by the Prometheus exposition and BENCH_*.json output.
// The caller must not modify the returned slice.
func ExportBounds() []uint64 { return exportBounds }

// Export returns the histogram folded onto the export ladder:
// counts[i] observations fell at or above the previous bound and below
// ExportBounds()[i]; counts[len(bounds)] is the overflow bucket. The
// fold is a sum of fine-bucket loads, so concurrent recording skews a
// bucket by at most the in-flight writes.
func (h *Histogram) Export() []uint64 {
	out := make([]uint64, len(exportBounds)+1)
	bi := 0
	for i := range h.counts {
		for bi < len(exportBounds) && latBounds[i] >= exportBounds[bi] {
			bi++
		}
		out[bi] += h.counts[i].Load()
	}
	return out
}

// ApproxSumNs estimates the sum of all recorded durations from bucket
// lower bounds — a deterministic scrape-time estimate (within the
// ladder's ~25% resolution) so the hot path never pays a per-record
// sum update.
func (h *Histogram) ApproxSumNs() uint64 {
	var sum uint64
	for i := range h.counts {
		sum += h.counts[i].Load() * latBounds[i]
	}
	return sum
}
