package analysis

import (
	"math"
	"sort"

	"geonet/internal/geo"
	"geonet/internal/parallel"
	"geonet/internal/topo"
)

// DistPref holds the empirical distance preference function of Section
// V: f(d) = P[two nodes at distance d are directly connected],
// estimated as (#links in bin)/(#node pairs in bin) per equation (1).
type DistPref struct {
	Region   geo.Region
	BinMiles float64
	// D[i] is the left edge of bin i; F[i] the f(d) estimate;
	// LinkCount and PairCount the raw tallies.
	D         []float64
	F         []float64
	LinkCount []float64
	PairCount []float64
}

// DistancePreference estimates f(d) for nodes and links inside the
// region, using the paper's setup: 100 bins of the given size, with
// pair counts computed exactly by grouping nodes into distinct
// locations (nodes at city granularity collapse to a few thousand
// distinct points, making the quadratic pair count tractable and
// exact).
func DistancePreference(d *topo.Dataset, region geo.Region, binMiles float64, bins int) DistPref {
	sub := d.InRegion(region)
	dp := DistPref{
		Region:    region,
		BinMiles:  binMiles,
		D:         make([]float64, bins),
		F:         make([]float64, bins),
		LinkCount: make([]float64, bins),
		PairCount: make([]float64, bins),
	}
	for i := range dp.D {
		dp.D[i] = float64(i) * binMiles
	}
	maxD := binMiles * float64(bins)

	// Numerator: link length histogram.
	for _, l := range sub.Links {
		if l.LengthMi < maxD {
			dp.LinkCount[int(l.LengthMi/binMiles)]++
		}
	}

	// Denominator: pairwise distance histogram over distinct locations
	// with multiplicities.
	locs, counts := groupLocations(sub.Points())
	for i := range locs {
		// Same-location pairs: C(n,2) at distance 0.
		dp.PairCount[0] += counts[i] * (counts[i] - 1) / 2
	}
	pairHistogram(locs, counts, dp.PairCount, binMiles, maxD)

	for i := range dp.F {
		if dp.PairCount[i] > 0 {
			dp.F[i] = dp.LinkCount[i] / dp.PairCount[i]
		}
	}
	return dp
}

// milesPerDegLat is the great-circle distance spanned by one degree of
// latitude. Because the central angle between two points is at least
// their latitude difference, dLat*milesPerDegLat lower-bounds the
// haversine distance — the prune pairHistogram relies on.
const milesPerDegLat = geo.EarthRadiusMiles * math.Pi / 180

// pairHistogram adds every cross-location pair's multiplicity product
// to the bin of its great-circle distance. Locations are sorted by
// latitude so each row scans only the latitude band provably within
// maxD, then the O(n²) triangle is cut into strided row chunks: chunk
// c takes rows c, c+numChunks, ... so long (early) and short (late)
// rows spread evenly across chunks. Every chunk tallies into its own
// bin array and the arrays are merged in chunk order; the tallies are
// integer-valued, so the result is exact — and bit-identical — at any
// worker count.
func pairHistogram(locs []geo.Point, counts []float64, bins []float64, binMiles, maxD float64) {
	n := len(locs)
	if n < 2 {
		return
	}
	// Sort locations (with their multiplicities) south to north.
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool {
		pa, pb := locs[idx[a]], locs[idx[b]]
		if pa.Lat != pb.Lat {
			return pa.Lat < pb.Lat
		}
		return pa.Lon < pb.Lon
	})
	sorted := make([]geo.Point, n)
	weight := make([]float64, n)
	for i, j := range idx {
		sorted[i] = locs[j]
		weight[i] = counts[j]
	}

	workers := parallel.Workers(0)
	numChunks := 64
	if numChunks > n {
		numChunks = n
	}
	rowRange := func(chunk int, local []float64) {
		for i := chunk; i < n; i += numChunks {
			pi, wi := sorted[i], weight[i]
			for j := i + 1; j < n; j++ {
				if (sorted[j].Lat-pi.Lat)*milesPerDegLat >= maxD {
					break // every later row is further north still
				}
				dist := geo.DistanceMiles(pi, sorted[j])
				if dist < maxD {
					local[int(dist/binMiles)] += wi * weight[j]
				}
			}
		}
	}
	merged := parallel.Reduce(workers, numChunks,
		func(c int) []float64 {
			local := make([]float64, len(bins))
			rowRange(c, local)
			return local
		},
		parallel.SumFloats)
	parallel.SumFloats(bins, merged)
}

// groupLocations collapses points into distinct quantised locations
// with multiplicities.
func groupLocations(pts []geo.Point) ([]geo.Point, []float64) {
	type agg struct {
		p geo.Point
		n float64
	}
	m := map[geo.LocKey]*agg{}
	order := []geo.LocKey{}
	for _, p := range pts {
		k := p.Key()
		if a, ok := m[k]; ok {
			a.n++
		} else {
			m[k] = &agg{p: p, n: 1}
			order = append(order, k)
		}
	}
	locs := make([]geo.Point, 0, len(order))
	counts := make([]float64, 0, len(order))
	for _, k := range order {
		locs = append(locs, m[k].p)
		counts = append(counts, m[k].n)
	}
	return locs, counts
}

// SmallDFit fits ln f(d) = Slope*d + Intercept over bins with
// d < maxSmallD (Figure 5). Only bins with positive estimates enter the
// fit. In Waxman terms f_W(d) = beta*exp(-d/(L*alpha)): the decay
// length L*alpha is -1/Slope and beta is exp(Intercept).
type SmallDFit struct {
	Fit        Fit
	DecayMiles float64 // -1/slope
	Beta       float64 // exp(intercept)
	// Points used (for plotting Figure 5).
	D   []float64
	LnF []float64
}

// FitSmallD performs the semi-log fit of Figure 5.
func (dp *DistPref) FitSmallD(maxSmallD float64) SmallDFit {
	var out SmallDFit
	for i := range dp.D {
		if dp.D[i] >= maxSmallD {
			break
		}
		if dp.F[i] > 0 {
			out.D = append(out.D, dp.D[i])
			out.LnF = append(out.LnF, math.Log(dp.F[i]))
		}
	}
	out.Fit = LeastSquares(out.D, out.LnF)
	if out.Fit.Slope < 0 {
		out.DecayMiles = -1 / out.Fit.Slope
	}
	out.Beta = math.Exp(out.Fit.Intercept)
	return out
}

// LargeDResult holds the cumulated preference function of Figure 6: if
// f(d) is constant for large d, F(d) = sum_{d'<d} f(d') is linear.
type LargeDResult struct {
	D []float64
	F []float64 // cumulated
	// LinearFit over the large-d region; MeanF is the implied constant
	// f(d) level (slope per bin).
	LinearFit Fit
	MeanF     float64
}

// CumulateLargeD computes F(d) and fits its large-d linearity, starting
// the fit where the small-d regime ends.
func (dp *DistPref) CumulateLargeD(minD float64) LargeDResult {
	var out LargeDResult
	cum := 0.0
	var fitX, fitY []float64
	for i := range dp.D {
		cum += dp.F[i]
		out.D = append(out.D, dp.D[i])
		out.F = append(out.F, cum)
		if dp.D[i] >= minD && dp.PairCount[i] > 0 {
			fitX = append(fitX, dp.D[i])
			fitY = append(fitY, cum)
		}
	}
	out.LinearFit = LeastSquares(fitX, fitY)
	out.MeanF = out.LinearFit.Slope * dp.BinMiles
	return out
}

// SensitivityLimit is one row of Table V: the distance beyond which
// link formation looks distance-independent, and the fraction of links
// shorter than that limit.
type SensitivityLimit struct {
	LimitMiles    float64
	FracBelow     float64
	TotalLinks    float64
	SmallD        SmallDFit
	LargeD        LargeDResult
	SmallDCutoff  float64
	LargeDMinUsed float64
}

// FindSensitivityLimit intersects the exponential small-d fit with the
// mean large-d level: beta*exp(slope*d) = meanF  =>
// d* = ln(meanF/beta)/slope, then reports the fraction of links below
// d* (Section V: "Most links (from 75% to 95%) fall within the range of
// link lengths considered distance-sensitive").
func (dp *DistPref) FindSensitivityLimit(smallDCutoff, largeDMin float64) SensitivityLimit {
	small := dp.FitSmallD(smallDCutoff)
	large := dp.CumulateLargeD(largeDMin)

	out := SensitivityLimit{
		SmallD:        small,
		LargeD:        large,
		SmallDCutoff:  smallDCutoff,
		LargeDMinUsed: largeDMin,
	}
	if small.Fit.Slope >= 0 || small.Beta <= 0 || large.MeanF <= 0 {
		return out
	}
	out.LimitMiles = math.Log(large.MeanF/small.Beta) / small.Fit.Slope
	if out.LimitMiles < 0 {
		out.LimitMiles = 0
	}
	var below, total float64
	for i := range dp.D {
		total += dp.LinkCount[i]
		if dp.D[i]+dp.BinMiles <= out.LimitMiles {
			below += dp.LinkCount[i]
		}
	}
	out.TotalLinks = total
	if total > 0 {
		out.FracBelow = below / total
	}
	return out
}
