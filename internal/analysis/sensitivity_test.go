package analysis

import (
	"math"
	"testing"

	"geonet/internal/geo"
	"geonet/internal/topo"
)

func dsWith(nodes ...topo.Node) *topo.Dataset {
	return &topo.Dataset{Name: "test", Mapper: "test", Nodes: nodes}
}

func TestMapperAgreementIdentical(t *testing.T) {
	a := dsWith(
		topo.Node{IP: 1, Loc: geo.Pt(40.71, -74.0)},
		topo.Node{IP: 2, Loc: geo.Pt(34.05, -118.24)},
	)
	b := dsWith(
		topo.Node{IP: 1, Loc: geo.Pt(40.71, -74.0)},
		topo.Node{IP: 2, Loc: geo.Pt(34.05, -118.24)},
	)
	ag := MapperAgreement(a, b)
	if ag.SameLocFrac != 1 || ag.LocJaccard != 1 || ag.NodeRatio != 1 || ag.Common != 2 {
		t.Errorf("identical datasets: got %+v, want full agreement", ag)
	}
}

func TestMapperAgreementPartial(t *testing.T) {
	// b maps node 2 elsewhere and loses node 3 entirely.
	a := dsWith(
		topo.Node{IP: 1, Loc: geo.Pt(40.71, -74.0)},
		topo.Node{IP: 2, Loc: geo.Pt(34.05, -118.24)},
		topo.Node{IP: 3, Loc: geo.Pt(51.5, -0.12)},
	)
	b := dsWith(
		topo.Node{IP: 1, Loc: geo.Pt(40.71, -74.0)},
		topo.Node{IP: 2, Loc: geo.Pt(41.88, -87.63)},
	)
	ag := MapperAgreement(a, b)
	if ag.Common != 2 {
		t.Errorf("common = %d, want 2", ag.Common)
	}
	if math.Abs(ag.SameLocFrac-0.5) > 1e-12 {
		t.Errorf("same-loc fraction = %v, want 0.5", ag.SameLocFrac)
	}
	// Locations: a has {NYC, LA, London}, b has {NYC, Chicago};
	// intersection NYC, union 4.
	if math.Abs(ag.LocJaccard-0.25) > 1e-12 {
		t.Errorf("jaccard = %v, want 0.25", ag.LocJaccard)
	}
	if math.Abs(ag.NodeRatio-2.0/3.0) > 1e-12 {
		t.Errorf("node ratio = %v, want 2/3", ag.NodeRatio)
	}
}

func TestMapperAgreementEmpty(t *testing.T) {
	ag := MapperAgreement(dsWith(), dsWith(topo.Node{IP: 1}))
	if ag != (Agreement{}) {
		t.Errorf("empty dataset must yield zero agreement, got %+v", ag)
	}
}

func TestMapperAgreementQuantisation(t *testing.T) {
	// Points within the same 1/100-degree cell count as agreeing — the
	// same tolerance Dataset.NumLocations uses.
	a := dsWith(topo.Node{IP: 7, Loc: geo.Pt(40.7100, -74.0000)})
	b := dsWith(topo.Node{IP: 7, Loc: geo.Pt(40.7101, -74.0001)})
	if ag := MapperAgreement(a, b); ag.SameLocFrac != 1 {
		t.Errorf("sub-cell jitter must agree, got %+v", ag)
	}
}
