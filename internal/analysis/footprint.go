package analysis

import (
	"math"

	"geonet/internal/geo"
	"geonet/internal/parallel"
	"geonet/internal/topo"
)

// ASFootprint summarises one AS's geographic footprint for the serving
// layer: the Section VI size measures plus the convex-hull area of the
// AS's mapped nodes and an equivalent-circle radius. The radius is the
// confidence-style error bound geoserve attaches to answers attributed
// to the AS — an address whose location came from a whois HQ collapse
// can really be anywhere inside the AS's footprint, so the footprint
// radius bounds the plausible error the same way Figure 9's hulls
// bound dispersion.
type ASFootprint struct {
	ASN        int
	Interfaces int
	Locations  int
	Degree     int
	// Centroid is the mean node position (a deterministic center of
	// mass; meaningful as an anchor for RadiusMi, not as an answer).
	Centroid geo.Point
	// AreaSqMi is the world-Albers convex hull area of the AS's nodes
	// (zero for ASes seen at fewer than three distinct locations).
	AreaSqMi float64
	// RadiusMi is sqrt(AreaSqMi/pi): the radius of the circle with the
	// footprint's area.
	RadiusMi float64
}

// Footprints computes per-AS footprints from a dataset's AS
// aggregation, preserving ASAggregate's ascending-ASN order. Hulls are
// measured under the world Albers projection (the Figure 9(a)
// convention). The per-AS computations parallelize up to GOMAXPROCS
// with per-index result slots, so the output is identical at any
// worker count.
func Footprints(infos []topo.ASInfo) []ASFootprint {
	proj := geo.WorldAlbers()
	out := make([]ASFootprint, len(infos))
	parallel.ForEach(parallel.Workers(0), len(infos), func(i int) {
		info := infos[i]
		fp := ASFootprint{
			ASN:        info.ASN,
			Interfaces: info.Interfaces,
			Locations:  info.Locations,
			Degree:     info.Degree,
			AreaSqMi:   geo.HullArea(proj, info.Points),
		}
		fp.RadiusMi = math.Sqrt(fp.AreaSqMi / math.Pi)
		for _, p := range info.Points {
			fp.Centroid.Lat += p.Lat
			fp.Centroid.Lon += p.Lon
		}
		if n := float64(len(info.Points)); n > 0 {
			fp.Centroid.Lat /= n
			fp.Centroid.Lon /= n
		}
		out[i] = fp
	})
	return out
}
