package analysis

import (
	"math"
	"sort"

	"geonet/internal/geo"
	"geonet/internal/topo"
)

// ASSizeStats packages the three AS size measures of Figure 7 and
// their pairwise relationships (Figure 8).
type ASSizeStats struct {
	// Parallel arrays, one entry per AS.
	ASNs       []int
	Interfaces []float64
	Locations  []float64
	Degrees    []float64

	// CCDFs for Figure 7 (log-log complementary distributions).
	InterfacesCCDF []CCDFPoint
	LocationsCCDF  []CCDFPoint
	DegreesCCDF    []CCDFPoint

	// Log-log Pearson correlations for the three scatterplots of
	// Figure 8 (computed over ASes with positive values).
	CorrIfaceLoc  float64
	CorrIfaceDeg  float64
	CorrLocDeg    float64
	SpearIfaceLoc float64
	SpearIfaceDeg float64
	SpearLocDeg   float64
}

// ASSizes computes the Section VI-A statistics from a dataset's AS
// aggregation.
func ASSizes(infos []topo.ASInfo) ASSizeStats {
	var st ASSizeStats
	for _, info := range infos {
		st.ASNs = append(st.ASNs, info.ASN)
		st.Interfaces = append(st.Interfaces, float64(info.Interfaces))
		st.Locations = append(st.Locations, float64(info.Locations))
		st.Degrees = append(st.Degrees, float64(info.Degree))
	}
	st.InterfacesCCDF = CCDF(st.Interfaces)
	st.LocationsCCDF = CCDF(st.Locations)
	st.DegreesCCDF = CCDF(st.Degrees)

	logI, logL := logPairs(st.Interfaces, st.Locations)
	st.CorrIfaceLoc = Pearson(logI, logL)
	st.SpearIfaceLoc = Spearman(logI, logL)
	logI2, logD := logPairs(st.Interfaces, st.Degrees)
	st.CorrIfaceDeg = Pearson(logI2, logD)
	st.SpearIfaceDeg = Spearman(logI2, logD)
	logL2, logD2 := logPairs(st.Locations, st.Degrees)
	st.CorrLocDeg = Pearson(logL2, logD2)
	st.SpearLocDeg = Spearman(logL2, logD2)
	return st
}

// logPairs returns log10 of the entries where both values are positive.
func logPairs(a, b []float64) ([]float64, []float64) {
	var x, y []float64
	for i := range a {
		if a[i] > 0 && b[i] > 0 {
			x = append(x, math.Log10(a[i]))
			y = append(y, math.Log10(b[i]))
		}
	}
	return x, y
}

// TailIndex estimates the slope of the CCDF tail on log-log axes over
// points with X >= xmin — the long-tail evidence of Figure 7.
func TailIndex(ccdf []CCDFPoint, xmin float64) Fit {
	var x, y []float64
	for _, p := range ccdf {
		if p.X >= xmin && p.P > 0 {
			x = append(x, math.Log10(p.X))
			y = append(y, math.Log10(p.P))
		}
	}
	return LeastSquares(x, y)
}

// HullStats is the Section VI-B convex hull analysis.
type HullStats struct {
	// Areas (square miles) per AS, parallel to ASNs.
	ASNs  []int
	Areas []float64
	// ZeroFrac is the fraction of ASes with zero hull area (one or two
	// locations) — ~80% in the paper's Figure 9.
	ZeroFrac float64
	// AreaCDF for Figure 9.
	AreaCDF []CDFPoint
}

// Hulls measures the convex hull of every AS's node set under the given
// projection (WorldAlbers for Figure 9(a); RegionAlbers with a regional
// node filter for 9(b) and 9(c)).
func Hulls(infos []topo.ASInfo, proj *geo.Albers, region geo.Region) HullStats {
	var st HullStats
	zero := 0
	for _, info := range infos {
		var pts []geo.Point
		for _, p := range info.Points {
			if region.Contains(p) {
				pts = append(pts, p)
			}
		}
		if len(pts) == 0 {
			continue
		}
		area := geo.HullArea(proj, pts)
		st.ASNs = append(st.ASNs, info.ASN)
		st.Areas = append(st.Areas, area)
		if area == 0 {
			zero++
		}
	}
	if len(st.Areas) > 0 {
		st.ZeroFrac = float64(zero) / float64(len(st.Areas))
	}
	st.AreaCDF = CDF(st.Areas)
	return st
}

// DispersalRegimes captures the two-regime structure of Figure 10: for
// a size measure, the saturation threshold above which every AS is
// (essentially) maximally dispersed, and evidence that small ASes vary
// widely.
type DispersalRegimes struct {
	// Threshold is the smallest size such that every AS at or above it
	// has hull area >= SaturationFrac * MaxArea. Zero when no such
	// threshold exists.
	Threshold float64
	// MaxArea is the largest hull observed.
	MaxArea float64
	// SmallSpreadRatio is the ratio between the 90th and 10th
	// percentile hull areas among below-threshold ASes with non-zero
	// hulls (large ratio = the paper's "wide range of variation").
	SmallSpreadRatio float64
	// SmallWorldwide reports whether some below-threshold AS already
	// attains >= SaturationFrac of the maximum ("even small ASes may
	// be very widely dispersed ... in fact, worldwide").
	SmallWorldwide bool
	SaturationFrac float64
}

// FindDispersalRegimes analyses hull area against one size measure
// (degree, interfaces or locations).
func FindDispersalRegimes(size, area []float64, saturationFrac float64) DispersalRegimes {
	out := DispersalRegimes{SaturationFrac: saturationFrac}
	if len(size) != len(area) || len(size) == 0 {
		return out
	}
	for _, a := range area {
		if a > out.MaxArea {
			out.MaxArea = a
		}
	}
	if out.MaxArea == 0 {
		return out
	}
	cut := saturationFrac * out.MaxArea

	// Sort by size descending; walk down while all hulls stay above
	// the saturation cut. The threshold is the size where that stops.
	idx := make([]int, len(size))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return size[idx[a]] > size[idx[b]] })

	out.Threshold = 0
	for k, i := range idx {
		if area[i] < cut {
			if k > 0 {
				out.Threshold = size[idx[k-1]]
			}
			break
		}
		if k == len(idx)-1 {
			// Everything saturates: threshold is the smallest size.
			out.Threshold = size[idx[k]]
		}
	}

	// Below-threshold variability.
	var smallAreas []float64
	for i := range size {
		if size[i] < out.Threshold || out.Threshold == 0 {
			if area[i] > 0 {
				smallAreas = append(smallAreas, area[i])
			}
			if area[i] >= cut {
				out.SmallWorldwide = true
			}
		}
	}
	if len(smallAreas) >= 10 {
		p90 := Quantile(smallAreas, 0.9)
		p10 := Quantile(smallAreas, 0.1)
		if p10 > 0 {
			out.SmallSpreadRatio = p90 / p10
		}
	}
	return out
}
