package analysis

import (
	"geonet/internal/geo"
	"geonet/internal/topo"
)

// Agreement quantifies how closely two mappers located the same
// collected graph — the cross-scenario sensitivity metric behind
// Table I. The paper's central methodological claim is that its
// conclusions survive a change of geolocation tool; these numbers say
// how true that stays as the world is ablated.
type Agreement struct {
	// SameLocFrac is the fraction of nodes present in both datasets
	// (by address) that both mappers placed in the same quantised
	// location — the headline agreement number.
	SameLocFrac float64
	// LocJaccard is |locations(a) ∩ locations(b)| / |union|, comparing
	// the distinct-location sets the two datasets induce.
	LocJaccard float64
	// NodeRatio is the smaller node count over the larger: how much of
	// the graph one mapper loses relative to the other.
	NodeRatio float64
	// Common is the number of addresses mapped by both.
	Common int
}

// MapperAgreement compares two processed datasets built from the same
// raw collection by different mappers.
func MapperAgreement(a, b *topo.Dataset) Agreement {
	var out Agreement
	if len(a.Nodes) == 0 || len(b.Nodes) == 0 {
		return out
	}
	if len(a.Nodes) < len(b.Nodes) {
		out.NodeRatio = float64(len(a.Nodes)) / float64(len(b.Nodes))
	} else {
		out.NodeRatio = float64(len(b.Nodes)) / float64(len(a.Nodes))
	}

	aLoc := make(map[uint32]geo.LocKey, len(a.Nodes))
	aKeys := make(map[geo.LocKey]struct{})
	for _, n := range a.Nodes {
		aLoc[n.IP] = n.Loc.Key()
		aKeys[n.Loc.Key()] = struct{}{}
	}
	bKeys := make(map[geo.LocKey]struct{})
	same := 0
	for _, n := range b.Nodes {
		bKeys[n.Loc.Key()] = struct{}{}
		if k, ok := aLoc[n.IP]; ok {
			out.Common++
			if k == n.Loc.Key() {
				same++
			}
		}
	}
	if out.Common > 0 {
		out.SameLocFrac = float64(same) / float64(out.Common)
	}
	inter := 0
	for k := range bKeys {
		if _, ok := aKeys[k]; ok {
			inter++
		}
	}
	union := len(aKeys) + len(bKeys) - inter
	if union > 0 {
		out.LocJaccard = float64(inter) / float64(union)
	}
	return out
}
