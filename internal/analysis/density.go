package analysis

import (
	"math"

	"geonet/internal/geo"
	"geonet/internal/population"
	"geonet/internal/topo"
)

// DensityResult reproduces one panel of Figure 2: per-patch
// (log10 population, log10 node count) points with the fitted line
// whose slope is the paper's superlinearity exponent alpha.
type DensityResult struct {
	Region geo.Region
	ArcMin float64
	// LogPop and LogCount are the plotted points.
	LogPop   []float64
	LogCount []float64
	Fit      Fit
	// PatchesWithNodes counts populated patches; PatchesSkipped counts
	// patches that had nodes but no raster population (cannot appear
	// on a log-log plot).
	PatchesWithNodes int
	PatchesSkipped   int
}

// PatchDensity tallies nodes and population into 75-arc-minute patches
// (Section IV-B) and fits the log-log relationship R ~ P^alpha.
func PatchDensity(d *topo.Dataset, raster *population.Raster, region geo.Region, arcMin float64) DensityResult {
	grid := geo.NewPatchGrid(region, arcMin)
	nodeCounts := grid.Tally(d.Points())
	popCounts := raster.TallyPatches(grid)

	res := DensityResult{Region: region, ArcMin: arcMin}
	for i := range nodeCounts {
		if nodeCounts[i] == 0 {
			continue
		}
		res.PatchesWithNodes++
		if popCounts[i] <= 0 {
			res.PatchesSkipped++
			continue
		}
		res.LogPop = append(res.LogPop, math.Log10(popCounts[i]))
		res.LogCount = append(res.LogCount, math.Log10(nodeCounts[i]))
	}
	res.Fit = LeastSquares(res.LogPop, res.LogCount)
	return res
}

// RegionDensityRow is one row of Table III or Table IV.
type RegionDensityRow struct {
	Region geo.Region
	// PopulationM and OnlineM are in millions.
	PopulationM float64
	OnlineM     float64
	Nodes       int
	// PeoplePerNode and OnlinePerNode are the two density ratios the
	// paper compares (~100x vs ~4x variability).
	PeoplePerNode float64
	OnlinePerNode float64
}

// RegionDensity computes a density row for one region.
func RegionDensity(d *topo.Dataset, w *population.World, region geo.Region) RegionDensityRow {
	row := RegionDensityRow{
		Region:      region,
		PopulationM: w.PopulationIn(region) / 1e6,
		OnlineM:     w.OnlineIn(region) / 1e6,
	}
	for _, n := range d.Nodes {
		if region.Contains(n.Loc) {
			row.Nodes++
		}
	}
	if row.Nodes > 0 {
		row.PeoplePerNode = row.PopulationM * 1e6 / float64(row.Nodes)
		row.OnlinePerNode = row.OnlineM * 1e6 / float64(row.Nodes)
	}
	return row
}

// VariabilityRatio returns max/min of a positive-valued column across
// rows, the paper's headline comparison for Table III ("varies by a
// factor of over 100" vs "only about a factor of four").
func VariabilityRatio(rows []RegionDensityRow, online bool) float64 {
	min, max := math.Inf(1), 0.0
	for _, r := range rows {
		v := r.PeoplePerNode
		if online {
			v = r.OnlinePerNode
		}
		if v <= 0 {
			continue
		}
		if v < min {
			min = v
		}
		if v > max {
			max = v
		}
	}
	if min == math.Inf(1) || min == 0 {
		return 0
	}
	return max / min
}
