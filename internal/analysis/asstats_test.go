package analysis

import (
	"math"
	"math/rand"
	"testing"

	"geonet/internal/geo"
	"geonet/internal/topo"
)

// syntheticASInfos builds AS aggregates with correlated size measures
// and a long tail, resembling what topo.ASAggregate produces.
func syntheticASInfos(n int, seed int64) []topo.ASInfo {
	rng := rand.New(rand.NewSource(seed))
	cities := []geo.Point{}
	for i := 0; i < 80; i++ {
		cities = append(cities, geo.Pt(25+rng.Float64()*24, -120+rng.Float64()*60))
	}
	var infos []topo.ASInfo
	for i := 0; i < n; i++ {
		size := int(math.Pow(rng.Float64(), -0.9)) // Pareto-ish
		if size < 1 {
			size = 1
		}
		if size > 3000 {
			size = 3000
		}
		nloc := int(math.Pow(float64(size), 0.7)) + 1
		if nloc > size {
			nloc = size
		}
		info := topo.ASInfo{
			ASN:        i + 1,
			Interfaces: size,
			Degree:     1 + nloc/2 + rng.Intn(3),
		}
		for k := 0; k < size; k++ {
			info.Points = append(info.Points, cities[(i+k)%len(cities)])
			if k >= nloc-1 && len(info.Points) >= nloc {
				// Remaining nodes reuse existing locations.
				info.Points[len(info.Points)-1] = info.Points[k%nloc]
			}
		}
		info.Locations = geo.DistinctLocations(info.Points)
		infos = append(infos, info)
	}
	return infos
}

func TestASSizesCorrelations(t *testing.T) {
	infos := syntheticASInfos(600, 3)
	st := ASSizes(infos)
	if len(st.ASNs) != 600 {
		t.Fatalf("ASes = %d", len(st.ASNs))
	}
	// All three pairwise correlations must be positive and strong,
	// as in Figure 8.
	for name, r := range map[string]float64{
		"iface-loc": st.CorrIfaceLoc,
		"iface-deg": st.CorrIfaceDeg,
		"loc-deg":   st.CorrLocDeg,
	} {
		if r < 0.5 {
			t.Errorf("correlation %s = %v, want strong positive", name, r)
		}
	}
	if st.SpearIfaceLoc < 0.5 || st.SpearLocDeg < 0.5 {
		t.Error("rank correlations should also be strong")
	}
}

func TestASSizesCCDFsPresent(t *testing.T) {
	infos := syntheticASInfos(400, 5)
	st := ASSizes(infos)
	for name, ccdf := range map[string][]CCDFPoint{
		"interfaces": st.InterfacesCCDF,
		"locations":  st.LocationsCCDF,
		"degrees":    st.DegreesCCDF,
	} {
		if len(ccdf) < 5 {
			t.Errorf("%s CCDF has %d points", name, len(ccdf))
		}
	}
}

func TestHullsZeroForFewLocations(t *testing.T) {
	infos := []topo.ASInfo{
		{ASN: 1, Interfaces: 5, Locations: 1,
			Points: repeat(geo.Pt(40, -100), 5)},
		{ASN: 2, Interfaces: 4, Locations: 2,
			Points: append(repeat(geo.Pt(40, -100), 2), repeat(geo.Pt(41, -101), 2)...)},
		{ASN: 3, Interfaces: 3, Locations: 3,
			Points: []geo.Point{geo.Pt(40, -100), geo.Pt(45, -90), geo.Pt(35, -110)}},
	}
	st := Hulls(infos, geo.RegionAlbers(geo.US), geo.US)
	if len(st.Areas) != 3 {
		t.Fatalf("areas = %d", len(st.Areas))
	}
	if st.Areas[0] != 0 || st.Areas[1] != 0 {
		t.Error("one- and two-location ASes must have zero hull area")
	}
	if st.Areas[2] <= 0 {
		t.Error("three-location AS must have positive hull area")
	}
	if math.Abs(st.ZeroFrac-2.0/3) > 1e-9 {
		t.Errorf("ZeroFrac = %v, want 2/3", st.ZeroFrac)
	}
}

func repeat(p geo.Point, n int) []geo.Point {
	out := make([]geo.Point, n)
	for i := range out {
		out[i] = p
	}
	return out
}

func TestHullsRegionFilter(t *testing.T) {
	// An AS with points in the US and Europe: the US-restricted hull
	// must only cover the US points.
	info := topo.ASInfo{ASN: 1, Points: []geo.Point{
		geo.Pt(40, -100), geo.Pt(41, -90), geo.Pt(35, -110),
		geo.Pt(48, 2), geo.Pt(52, 13),
	}}
	world := Hulls([]topo.ASInfo{info}, geo.WorldAlbers(), geo.World)
	us := Hulls([]topo.ASInfo{info}, geo.RegionAlbers(geo.US), geo.US)
	if len(world.Areas) != 1 || len(us.Areas) != 1 {
		t.Fatal("hull counts wrong")
	}
	if us.Areas[0] >= world.Areas[0] {
		t.Errorf("US hull (%g) should be smaller than world hull (%g)", us.Areas[0], world.Areas[0])
	}
}

func TestFindDispersalRegimesTwoRegimes(t *testing.T) {
	// Construct the Figure 10 shape: above size 100 every AS has a
	// near-maximal hull; below, areas vary wildly.
	rng := rand.New(rand.NewSource(9))
	var size, area []float64
	const maxArea = 1e8
	for i := 0; i < 60; i++ { // saturated giants
		size = append(size, 100+rng.Float64()*900)
		area = append(area, maxArea*(0.7+rng.Float64()*0.3))
	}
	for i := 0; i < 340; i++ { // variable small ASes
		size = append(size, 1+rng.Float64()*95)
		area = append(area, maxArea*math.Pow(rng.Float64(), 4)*0.9)
	}
	reg := FindDispersalRegimes(size, area, 0.5)
	if reg.Threshold <= 0 {
		t.Fatal("no threshold found")
	}
	// All ASes >= threshold saturate by construction around 100.
	if reg.Threshold > 400 {
		t.Errorf("threshold = %v, want near 100 (could be above due to noise)", reg.Threshold)
	}
	if !reg.SmallWorldwide {
		t.Error("some small ASes should already be widely dispersed")
	}
	if reg.SmallSpreadRatio < 10 {
		t.Errorf("small-AS spread ratio = %v, want wide variability", reg.SmallSpreadRatio)
	}
}

func TestFindDispersalRegimesDegenerate(t *testing.T) {
	reg := FindDispersalRegimes(nil, nil, 0.5)
	if reg.Threshold != 0 || reg.MaxArea != 0 {
		t.Error("empty input should give zero regimes")
	}
	reg = FindDispersalRegimes([]float64{1, 2}, []float64{0, 0}, 0.5)
	if reg.MaxArea != 0 {
		t.Error("all-zero areas should give zero MaxArea")
	}
}
