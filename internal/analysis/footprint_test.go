package analysis

import (
	"math"
	"testing"

	"geonet/internal/geo"
	"geonet/internal/topo"
)

func TestFootprints(t *testing.T) {
	infos := []topo.ASInfo{
		{ASN: 7, Interfaces: 1, Locations: 1, Degree: 2,
			Points: []geo.Point{geo.Pt(40, -74)}},
		{ASN: 9, Interfaces: 4, Locations: 3, Degree: 5,
			Points: []geo.Point{geo.Pt(40, -74), geo.Pt(34, -118), geo.Pt(41.8, -87.6), geo.Pt(40, -74)}},
	}
	fps := Footprints(infos)
	if len(fps) != 2 {
		t.Fatalf("got %d footprints, want 2", len(fps))
	}
	// Order and size measures preserved.
	if fps[0].ASN != 7 || fps[1].ASN != 9 {
		t.Fatalf("ASN order %d,%d, want 7,9", fps[0].ASN, fps[1].ASN)
	}
	if fps[1].Interfaces != 4 || fps[1].Locations != 3 || fps[1].Degree != 5 {
		t.Fatalf("size measures not carried: %+v", fps[1])
	}
	// A single point has no hull: zero area, zero radius, centroid at
	// the point.
	if fps[0].AreaSqMi != 0 || fps[0].RadiusMi != 0 {
		t.Errorf("single-point AS has area %v radius %v, want 0",
			fps[0].AreaSqMi, fps[0].RadiusMi)
	}
	if fps[0].Centroid != geo.Pt(40, -74) {
		t.Errorf("single-point centroid %v", fps[0].Centroid)
	}
	// Three distinct cities: positive area, radius = sqrt(area/pi),
	// centroid = coordinate mean.
	if fps[1].AreaSqMi <= 0 {
		t.Fatalf("NYC/LA/Chicago hull area %v, want > 0", fps[1].AreaSqMi)
	}
	if want := math.Sqrt(fps[1].AreaSqMi / math.Pi); fps[1].RadiusMi != want {
		t.Errorf("radius %v, want %v", fps[1].RadiusMi, want)
	}
	wantLat := (40 + 34 + 41.8 + 40) / 4
	if math.Abs(fps[1].Centroid.Lat-wantLat) > 1e-9 {
		t.Errorf("centroid lat %v, want %v", fps[1].Centroid.Lat, wantLat)
	}
	// The hull matches a direct computation.
	if want := geo.HullArea(geo.WorldAlbers(), infos[1].Points); fps[1].AreaSqMi != want {
		t.Errorf("area %v, want %v", fps[1].AreaSqMi, want)
	}
	// Empty input stays empty.
	if got := Footprints(nil); len(got) != 0 {
		t.Errorf("Footprints(nil) = %v", got)
	}
}
