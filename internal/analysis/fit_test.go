package analysis

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestLeastSquaresExactLine(t *testing.T) {
	x := []float64{0, 1, 2, 3, 4}
	y := []float64{1, 3, 5, 7, 9} // y = 2x + 1
	f := LeastSquares(x, y)
	if math.Abs(f.Slope-2) > 1e-12 || math.Abs(f.Intercept-1) > 1e-12 {
		t.Errorf("fit = %+v, want slope 2 intercept 1", f)
	}
	if math.Abs(f.R2-1) > 1e-12 {
		t.Errorf("R2 = %v, want 1", f.R2)
	}
}

func TestLeastSquaresNoisyLine(t *testing.T) {
	rng := rand.New(rand.NewSource(1))
	var x, y []float64
	for i := 0; i < 2000; i++ {
		xi := rng.Float64() * 10
		x = append(x, xi)
		y = append(y, -0.7*xi+4+rng.NormFloat64()*0.1)
	}
	f := LeastSquares(x, y)
	if math.Abs(f.Slope+0.7) > 0.02 {
		t.Errorf("slope = %v, want -0.7", f.Slope)
	}
	if f.R2 < 0.97 {
		t.Errorf("R2 = %v, want high", f.R2)
	}
}

func TestLeastSquaresDegenerate(t *testing.T) {
	if f := LeastSquares(nil, nil); f.Slope != 0 || f.N != 0 {
		t.Error("empty fit should be zero")
	}
	if f := LeastSquares([]float64{1}, []float64{2}); f.N != 1 || f.Slope != 0 {
		t.Error("single-point fit should be zero")
	}
	// Vertical data (all same x).
	f := LeastSquares([]float64{3, 3, 3}, []float64{1, 2, 3})
	if f.Slope != 0 {
		t.Error("degenerate x should give zero slope")
	}
}

func TestPearsonKnown(t *testing.T) {
	x := []float64{1, 2, 3, 4, 5}
	if r := Pearson(x, x); math.Abs(r-1) > 1e-12 {
		t.Errorf("self correlation = %v", r)
	}
	neg := []float64{5, 4, 3, 2, 1}
	if r := Pearson(x, neg); math.Abs(r+1) > 1e-12 {
		t.Errorf("anticorrelation = %v", r)
	}
	if r := Pearson(x, []float64{2, 2, 2, 2, 2}); r != 0 {
		t.Errorf("constant y correlation = %v, want 0", r)
	}
}

func TestPearsonBounds(t *testing.T) {
	f := func(seed int64) bool {
		rng := rand.New(rand.NewSource(seed))
		n := 10 + rng.Intn(100)
		x := make([]float64, n)
		y := make([]float64, n)
		for i := range x {
			x[i] = rng.NormFloat64()
			y[i] = rng.NormFloat64()
		}
		r := Pearson(x, y)
		return r >= -1.0000001 && r <= 1.0000001
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestSpearmanMonotone(t *testing.T) {
	// Spearman is 1 for any strictly monotone relationship, even a
	// nonlinear one.
	var x, y []float64
	for i := 1; i <= 50; i++ {
		x = append(x, float64(i))
		y = append(y, math.Exp(float64(i)/10))
	}
	if r := Spearman(x, y); math.Abs(r-1) > 1e-9 {
		t.Errorf("Spearman of monotone data = %v, want 1", r)
	}
}

func TestSpearmanTies(t *testing.T) {
	x := []float64{1, 2, 2, 3}
	y := []float64{1, 2, 2, 3}
	if r := Spearman(x, y); math.Abs(r-1) > 1e-9 {
		t.Errorf("Spearman with ties = %v, want 1", r)
	}
}

func TestCCDFProperties(t *testing.T) {
	values := []float64{1, 1, 2, 5, 5, 5, 10}
	ccdf := CCDF(values)
	// Monotone non-increasing P, strictly increasing X.
	for i := 1; i < len(ccdf); i++ {
		if ccdf[i].X <= ccdf[i-1].X {
			t.Fatal("CCDF X not increasing")
		}
		if ccdf[i].P > ccdf[i-1].P {
			t.Fatal("CCDF P increasing")
		}
	}
	// Last point has P = 0 (nothing exceeds the maximum).
	if ccdf[len(ccdf)-1].P != 0 {
		t.Errorf("P beyond max = %v, want 0", ccdf[len(ccdf)-1].P)
	}
	// P[X > 1]: five of seven values exceed 1.
	if math.Abs(ccdf[0].P-5.0/7) > 1e-12 {
		t.Errorf("P[X>1] = %v, want 5/7", ccdf[0].P)
	}
	if CCDF(nil) != nil {
		t.Error("empty CCDF should be nil")
	}
}

func TestCDFProperties(t *testing.T) {
	values := []float64{3, 1, 2, 2}
	cdf := CDF(values)
	if cdf[len(cdf)-1].P != 1 {
		t.Errorf("final CDF P = %v, want 1", cdf[len(cdf)-1].P)
	}
	for i := 1; i < len(cdf); i++ {
		if cdf[i].P <= cdf[i-1].P || cdf[i].X <= cdf[i-1].X {
			t.Fatal("CDF not strictly increasing")
		}
	}
	// P[X <= 2] = 3/4.
	if math.Abs(cdf[1].P-0.75) > 1e-12 {
		t.Errorf("P[X<=2] = %v, want 0.75", cdf[1].P)
	}
}

func TestQuantile(t *testing.T) {
	v := []float64{1, 2, 3, 4, 5}
	if q := Quantile(v, 0); q != 1 {
		t.Errorf("q0 = %v", q)
	}
	if q := Quantile(v, 1); q != 5 {
		t.Errorf("q1 = %v", q)
	}
	if q := Quantile(v, 0.5); q != 3 {
		t.Errorf("median = %v", q)
	}
	if !math.IsNaN(Quantile(nil, 0.5)) {
		t.Error("empty quantile should be NaN")
	}
}

func TestTailIndexPowerLaw(t *testing.T) {
	// Pareto(1, alpha=1.5) sample: CCDF slope on log-log ~ -1.5.
	rng := rand.New(rand.NewSource(3))
	var v []float64
	for i := 0; i < 50000; i++ {
		v = append(v, math.Pow(rng.Float64(), -1/1.5))
	}
	fit := TailIndex(CCDF(v), 1)
	if fit.Slope > -1.2 || fit.Slope < -1.8 {
		t.Errorf("tail index = %v, want ~-1.5", fit.Slope)
	}
}
