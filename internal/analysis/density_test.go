package analysis

import (
	"math"
	"math/rand"
	"testing"

	"geonet/internal/geo"
	"geonet/internal/population"
	"geonet/internal/rng"
	"geonet/internal/topo"
)

// powerLawWorld builds a raster and dataset where node count per patch
// is an exact power of patch population, to verify the regression.
func powerLawWorld(alpha float64) (*topo.Dataset, *population.Raster) {
	raster := population.NewRaster(15)
	d := &topo.Dataset{Name: "power"}
	rnd := rand.New(rand.NewSource(4))
	grid := geo.NewPatchGrid(geo.US, 75)
	for i := 0; i < 300; i++ {
		// One "city" per random patch.
		c := grid.Center(rnd.Intn(grid.Cells()))
		pop := math.Pow(10, 4+rnd.Float64()*3) // 10^4..10^7
		raster.Deposit(c, pop)
		nodes := int(math.Pow(pop, alpha) / math.Pow(10, 4*alpha) * 3)
		if nodes < 1 {
			nodes = 1
		}
		for k := 0; k < nodes; k++ {
			d.Nodes = append(d.Nodes, topo.Node{Loc: c, ASN: 1})
		}
	}
	return d, raster
}

func TestPatchDensityRecoversExponent(t *testing.T) {
	for _, alpha := range []float64{1.0, 1.3, 1.6} {
		d, raster := powerLawWorld(alpha)
		res := PatchDensity(d, raster, geo.US, 75)
		if res.Fit.N < 50 {
			t.Fatalf("alpha=%v: only %d patches", alpha, res.Fit.N)
		}
		if math.Abs(res.Fit.Slope-alpha) > 0.12 {
			t.Errorf("alpha=%v: recovered slope %v", alpha, res.Fit.Slope)
		}
		if res.Fit.R2 < 0.85 {
			t.Errorf("alpha=%v: R2 = %v", alpha, res.Fit.R2)
		}
	}
}

func TestPatchDensitySkipsUnpopulatedPatches(t *testing.T) {
	raster := population.NewRaster(15)
	d := &topo.Dataset{Name: "empty-pop"}
	// Nodes in a patch with zero population.
	d.Nodes = append(d.Nodes, topo.Node{Loc: geo.Pt(40, -100), ASN: 1})
	res := PatchDensity(d, raster, geo.US, 75)
	if res.PatchesSkipped != 1 || len(res.LogPop) != 0 {
		t.Errorf("skipped=%d points=%d, want 1 skip and no points",
			res.PatchesSkipped, len(res.LogPop))
	}
}

func TestRegionDensityRows(t *testing.T) {
	world := population.Build(population.DefaultConfig(), rng.New(1))
	d := &topo.Dataset{Name: "uniform"}
	// Put one node at each of the world's top 500 places.
	for i, p := range world.TopPlaces(500) {
		_ = i
		d.Nodes = append(d.Nodes, topo.Node{Loc: p.Loc, ASN: 1})
	}
	rows := make([]RegionDensityRow, 0)
	for _, reg := range geo.SurveyRegions() {
		rows = append(rows, RegionDensity(d, world, reg))
	}
	// World row must dominate node count.
	last := rows[len(rows)-1]
	if last.Region.Name != "World" {
		t.Fatal("last survey region should be World")
	}
	if last.Nodes != len(d.Nodes) {
		t.Errorf("world nodes = %d, want %d", last.Nodes, len(d.Nodes))
	}
	for _, r := range rows {
		if r.Nodes > 0 && r.PeoplePerNode <= 0 {
			t.Errorf("%s: bad PeoplePerNode", r.Region.Name)
		}
	}
}

func TestVariabilityRatio(t *testing.T) {
	rows := []RegionDensityRow{
		{PeoplePerNode: 100000, OnlinePerNode: 2000},
		{PeoplePerNode: 1000, OnlinePerNode: 500},
		{PeoplePerNode: 4000, OnlinePerNode: 900},
	}
	if r := VariabilityRatio(rows, false); math.Abs(r-100) > 1e-9 {
		t.Errorf("people ratio = %v, want 100", r)
	}
	if r := VariabilityRatio(rows, true); math.Abs(r-4) > 1e-9 {
		t.Errorf("online ratio = %v, want 4", r)
	}
	if r := VariabilityRatio(nil, false); r != 0 {
		t.Errorf("empty ratio = %v", r)
	}
}
