// Package analysis implements every statistical procedure in Sections
// IV-VI of the paper: patch-density regressions (Figure 2), the
// empirical distance preference function and its two-regime
// decomposition (Figures 4-6, Table V), AS size distributions and
// correlations (Figures 7-8), convex-hull dispersion analysis (Figures
// 9-10), population tables (Tables III-IV) and the intra/interdomain
// link comparison (Table VI).
package analysis

import (
	"math"
	"sort"
)

// Fit is an ordinary least-squares line fit y = Slope*x + Intercept.
type Fit struct {
	Slope     float64
	Intercept float64
	R2        float64
	N         int
}

// LeastSquares fits a line to the points. Returns a zero fit for fewer
// than two points.
func LeastSquares(x, y []float64) Fit {
	if len(x) != len(y) {
		panic("analysis: mismatched fit inputs")
	}
	n := float64(len(x))
	if len(x) < 2 {
		return Fit{N: len(x)}
	}
	var sx, sy, sxx, sxy, syy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
		syy += y[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return Fit{N: len(x)}
	}
	slope := (n*sxy - sx*sy) / den
	intercept := (sy - slope*sx) / n
	// Coefficient of determination.
	meanY := sy / n
	var ssRes, ssTot float64
	for i := range x {
		pred := slope*x[i] + intercept
		ssRes += (y[i] - pred) * (y[i] - pred)
		ssTot += (y[i] - meanY) * (y[i] - meanY)
	}
	r2 := 0.0
	if ssTot > 0 {
		r2 = 1 - ssRes/ssTot
	}
	return Fit{Slope: slope, Intercept: intercept, R2: r2, N: len(x)}
}

// Pearson computes the linear correlation coefficient.
func Pearson(x, y []float64) float64 {
	if len(x) != len(y) || len(x) < 2 {
		return 0
	}
	n := float64(len(x))
	var sx, sy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
	}
	mx, my := sx/n, sy/n
	var cov, vx, vy float64
	for i := range x {
		cov += (x[i] - mx) * (y[i] - my)
		vx += (x[i] - mx) * (x[i] - mx)
		vy += (y[i] - my) * (y[i] - my)
	}
	if vx == 0 || vy == 0 {
		return 0
	}
	return cov / math.Sqrt(vx*vy)
}

// Spearman computes the rank correlation coefficient (average ranks for
// ties).
func Spearman(x, y []float64) float64 {
	return Pearson(ranks(x), ranks(y))
}

func ranks(v []float64) []float64 {
	idx := make([]int, len(v))
	for i := range idx {
		idx[i] = i
	}
	sort.Slice(idx, func(a, b int) bool { return v[idx[a]] < v[idx[b]] })
	out := make([]float64, len(v))
	for i := 0; i < len(idx); {
		j := i
		for j+1 < len(idx) && v[idx[j+1]] == v[idx[i]] {
			j++
		}
		avg := float64(i+j)/2 + 1
		for k := i; k <= j; k++ {
			out[idx[k]] = avg
		}
		i = j + 1
	}
	return out
}

// CCDFPoint is one point of a complementary CDF.
type CCDFPoint struct {
	X float64
	P float64 // P[X > x]
}

// CCDF computes the empirical complementary distribution of the values,
// suitable for the log-log plots of Figure 7.
func CCDF(values []float64) []CCDFPoint {
	if len(values) == 0 {
		return nil
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	n := float64(len(v))
	var out []CCDFPoint
	for i := 0; i < len(v); {
		j := i
		for j+1 < len(v) && v[j+1] == v[i] {
			j++
		}
		// P[X > v[i]] = fraction strictly above.
		p := float64(len(v)-j-1) / n
		out = append(out, CCDFPoint{X: v[i], P: p})
		i = j + 1
	}
	return out
}

// CDFPoint is one point of a cumulative distribution.
type CDFPoint struct {
	X float64
	P float64 // P[X <= x]
}

// CDF computes the empirical distribution, as plotted in Figure 9.
func CDF(values []float64) []CDFPoint {
	if len(values) == 0 {
		return nil
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	n := float64(len(v))
	var out []CDFPoint
	for i := 0; i < len(v); {
		j := i
		for j+1 < len(v) && v[j+1] == v[i] {
			j++
		}
		out = append(out, CDFPoint{X: v[i], P: float64(j+1) / n})
		i = j + 1
	}
	return out
}

// Quantile returns the q-quantile (0..1) of the values.
func Quantile(values []float64, q float64) float64 {
	if len(values) == 0 {
		return math.NaN()
	}
	v := append([]float64(nil), values...)
	sort.Float64s(v)
	pos := q * float64(len(v)-1)
	lo := int(pos)
	if lo >= len(v)-1 {
		return v[len(v)-1]
	}
	frac := pos - float64(lo)
	return v[lo]*(1-frac) + v[lo+1]*frac
}
