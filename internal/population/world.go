package population

import (
	"fmt"
	"sort"
	"strings"

	"geonet/internal/geo"
	"geonet/internal/parallel"
	"geonet/internal/rng"
)

// Place is an inhabited location: a real major city from the embedded
// database or a synthetic town. Pop and Online are in persons (not
// millions).
type Place struct {
	Name   string
	Code   string // airport-style code used in router hostnames
	Econ   EconRegion
	Loc    geo.Point
	Pop    float64
	Online float64
	IsCity bool // true for embedded major cities
}

// Config controls world synthesis.
type Config struct {
	// RuralChunks is the number of diffuse rural population deposits
	// per economic region.
	RuralChunks int
	// RasterArcMin is the population raster resolution.
	RasterArcMin float64
	// MaxTownsPerRegion caps synthetic town generation.
	MaxTownsPerRegion int
}

// DefaultConfig returns the configuration used by the reproduction
// pipeline.
func DefaultConfig() Config {
	return Config{RuralChunks: 1500, RasterArcMin: 15, MaxTownsPerRegion: 4000}
}

// World is the demographic substrate: places where people (and online
// users) live, plus a gridded population raster standing in for the
// CIESIN dataset.
type World struct {
	Places []Place
	Raster *Raster

	placesByEcon [NumEconRegions][]int // indices into Places
}

// Build synthesises a world. All randomness comes from the supplied
// stream, so a given (seed, Config) pair is fully reproducible.
func Build(cfg Config, s *rng.Stream) *World {
	if cfg.RasterArcMin <= 0 {
		cfg = DefaultConfig()
	}
	w := &World{Raster: NewRaster(cfg.RasterArcMin)}

	stats := Stats()
	// 1. Embedded major cities, with population in persons.
	cityPopM := make([]float64, NumEconRegions)
	for _, c := range MajorCities() {
		w.Places = append(w.Places, Place{
			Name: c.Name, Code: c.Code, Econ: c.Econ,
			Loc: geo.Pt(c.Lat, c.Lon), Pop: c.PopM * 1e6, IsCity: true,
		})
		cityPopM[c.Econ] += c.PopM
	}

	// 2. Synthetic towns fill TownShare of the gap between city
	// population and the regional target; the rest is rural.
	for _, st := range stats {
		gapM := st.PopulationM - cityPopM[st.Region]
		if gapM <= 0 {
			continue
		}
		townBudget := gapM * st.TownShare * 1e6
		townStream := s.Split("towns-" + st.Region.String())
		anchors := w.cityAnchors(st.Region)
		placed := 0.0
		for i := 0; placed < townBudget && i < cfg.MaxTownsPerRegion; i++ {
			pop := townStream.BoundedPareto(st.TownMinM*1e6, st.TownMaxM*1e6, 1.1)
			if pop > townBudget-placed {
				pop = townBudget - placed
			}
			loc := w.placeTown(townStream, st, anchors)
			name := townName(townStream, st.Region, i)
			w.Places = append(w.Places, Place{
				Name: name, Code: townCode(name), Econ: st.Region,
				Loc: loc, Pop: pop,
			})
			placed += pop
		}
		// 3. Rural background: diffuse deposits directly into the
		// raster (no Place entries — no routers live there).
		ruralM := gapM*(1-st.TownShare)*1e6 + (townBudget - placed)
		ruralStream := s.Split("rural-" + st.Region.String())
		chunks := cfg.RuralChunks
		if chunks < 1 {
			chunks = 1
		}
		per := ruralM / float64(chunks)
		for i := 0; i < chunks; i++ {
			loc := randomInLand(ruralStream, st.Land)
			w.Raster.Deposit(loc, per)
		}
	}

	// 4. Deposit place populations into the raster and hand out online
	// users so each region's online total matches Table III exactly.
	placePop := make([]float64, NumEconRegions)
	for i := range w.Places {
		p := &w.Places[i]
		w.Raster.DepositSpread(p.Loc, p.Pop)
		placePop[p.Econ] += p.Pop
		w.placesByEcon[p.Econ] = append(w.placesByEcon[p.Econ], i)
	}
	for _, st := range stats {
		if placePop[st.Region] == 0 {
			continue
		}
		frac := st.OnlineM * 1e6 / placePop[st.Region]
		for _, idx := range w.placesByEcon[st.Region] {
			w.Places[idx].Online = w.Places[idx].Pop * frac
		}
	}
	return w
}

// cityAnchors returns indices of this region's major cities, for
// satellite-town placement.
func (w *World) cityAnchors(e EconRegion) []int {
	var out []int
	for i, p := range w.Places {
		if p.IsCity && p.Econ == e {
			out = append(out, i)
		}
	}
	return out
}

// placeTown picks a town location: mostly satellites of existing major
// cities (suburbs and exurbs cluster around metros, which is what makes
// patch populations heavy-tailed), otherwise uniform within the
// region's land boxes.
func (w *World) placeTown(s *rng.Stream, st EconStats, anchors []int) geo.Point {
	if len(anchors) > 0 && s.Bool(0.6) {
		weights := make([]float64, len(anchors))
		for i, idx := range anchors {
			weights[i] = w.Places[idx].Pop
		}
		anchor := w.Places[anchors[s.WeightedIndex(weights)]]
		for try := 0; try < 8; try++ {
			dist := 8 + s.Exp(35)
			p := geo.Destination(anchor.Loc, s.Float64()*360, dist)
			if inLand(p, st.Land) {
				return p
			}
		}
		// Fall through to uniform placement if every jitter left land.
	}
	return randomInLand(s, st.Land)
}

func inLand(p geo.Point, land []geo.Region) bool {
	for _, r := range land {
		if r.Contains(p) {
			return true
		}
	}
	return false
}

// randomInLand samples a point uniformly over the union of land boxes,
// weighting boxes by their (approximate) area.
func randomInLand(s *rng.Stream, land []geo.Region) geo.Point {
	if len(land) == 0 {
		panic("population: region with no land boxes")
	}
	weights := make([]float64, len(land))
	for i, r := range land {
		weights[i] = r.WidthDeg() * r.HeightDeg()
	}
	r := land[s.WeightedIndex(weights)]
	return geo.Pt(
		r.South+s.Float64()*r.HeightDeg(),
		r.West+s.Float64()*r.WidthDeg(),
	)
}

var townSyllables = []string{
	"ash", "bex", "cal", "dor", "el", "fen", "gar", "hol", "ket", "lun",
	"mar", "nor", "oak", "pel", "quin", "ros", "sut", "tor", "ul", "ver",
	"wes", "yar", "zel", "bran", "cor", "dale", "stav", "mill", "ford", "ton",
}

func townName(s *rng.Stream, e EconRegion, i int) string {
	a := townSyllables[s.Intn(len(townSyllables))]
	b := townSyllables[s.Intn(len(townSyllables))]
	return fmt.Sprintf("%s%s%d", a, b, i)
}

// townCode derives a 3-letter hostname token from a hash of the town
// name, spreading towns across the 26^3 code space. Collisions — with
// other towns or with real airport codes — remain possible and are
// deliberately kept: they are exactly the kind of ambiguity
// hostname-based geolocation suffers in practice.
func townCode(name string) string {
	h := uint32(2166136261)
	for i := 0; i < len(name); i++ {
		h ^= uint32(name[i])
		h *= 16777619
	}
	return string([]byte{
		byte('a' + h%26),
		byte('a' + (h/26)%26),
		byte('a' + (h/676)%26),
	})
}

// PlacesOf returns indices of places belonging to an economic region.
func (w *World) PlacesOf(e EconRegion) []int {
	return w.placesByEcon[e]
}

// PlacesIn returns indices of places inside a geographic region.
func (w *World) PlacesIn(r geo.Region) []int {
	var out []int
	for i, p := range w.Places {
		if r.Contains(p.Loc) {
			out = append(out, i)
		}
	}
	return out
}

// PopulationIn totals raster population within a region (persons).
func (w *World) PopulationIn(r geo.Region) float64 {
	return w.Raster.SumIn(r)
}

// OnlineIn totals online users of places within a region (persons).
func (w *World) OnlineIn(r geo.Region) float64 {
	total := 0.0
	for _, p := range w.Places {
		if r.Contains(p.Loc) {
			total += p.Online
		}
	}
	return total
}

// CodeDictionary returns the mapping from hostname token to place
// location that the geolocation tools use. Both airport codes and
// (sanitised) place names are included; when two places claim the same
// token, the more populous wins — mirroring how real hostname-mapping
// databases resolve code collisions (and inheriting their errors).
func (w *World) CodeDictionary() map[string]geo.Point {
	best := map[string]int{}
	claim := func(token string, idx int) {
		if token == "" {
			return
		}
		if prev, ok := best[token]; !ok || w.Places[idx].Pop > w.Places[prev].Pop {
			best[token] = idx
		}
	}
	for i, p := range w.Places {
		claim(p.Code, i)
		claim(sanitizeName(p.Name), i)
	}
	out := make(map[string]geo.Point, len(best))
	for tok, idx := range best {
		out[tok] = w.Places[idx].Loc
	}
	return out
}

func sanitizeName(name string) string {
	return strings.Map(func(r rune) rune {
		if (r >= 'a' && r <= 'z') || (r >= '0' && r <= '9') {
			return r
		}
		return -1
	}, strings.ToLower(name))
}

// Raster is a uniform lat/lon population grid — the stand-in for the
// CIESIN gridded population of the world.
type Raster struct {
	arcMin float64
	deg    float64
	cols   int
	rows   int
	cells  []float64
}

// NewRaster creates an empty world-covering raster.
func NewRaster(arcMin float64) *Raster {
	deg := arcMin / 60
	cols := int(360/deg + 0.5)
	rows := int(180/deg + 0.5)
	return &Raster{arcMin: arcMin, deg: deg, cols: cols, rows: rows,
		cells: make([]float64, cols*rows)}
}

func (r *Raster) index(p geo.Point) int {
	col := int((p.Lon + 180) / r.deg)
	row := int((p.Lat + 90) / r.deg)
	if col < 0 {
		col = 0
	}
	if col >= r.cols {
		col = r.cols - 1
	}
	if row < 0 {
		row = 0
	}
	if row >= r.rows {
		row = r.rows - 1
	}
	return row*r.cols + col
}

// Deposit adds population mass at a point.
func (r *Raster) Deposit(p geo.Point, pop float64) {
	r.cells[r.index(p)] += pop
}

// DepositSpread adds population with a small spatial spread: 60% in the
// centre cell and 5% in each of the 8 neighbours, approximating how a
// metro area spills over raster cells.
func (r *Raster) DepositSpread(p geo.Point, pop float64) {
	idx := r.index(p)
	row, col := idx/r.cols, idx%r.cols
	r.cells[idx] += pop * 0.6
	share := pop * 0.4 / 8
	for dr := -1; dr <= 1; dr++ {
		for dc := -1; dc <= 1; dc++ {
			if dr == 0 && dc == 0 {
				continue
			}
			rr, cc := row+dr, col+dc
			if rr < 0 || rr >= r.rows {
				continue
			}
			// Wrap longitude.
			cc = (cc + r.cols) % r.cols
			r.cells[rr*r.cols+cc] += share
		}
	}
}

// At returns the population in the cell containing p.
func (r *Raster) At(p geo.Point) float64 {
	return r.cells[r.index(p)]
}

// SumIn totals population over cells whose centres fall inside the
// region.
func (r *Raster) SumIn(reg geo.Region) float64 {
	total := 0.0
	for row := 0; row < r.rows; row++ {
		lat := -90 + (float64(row)+0.5)*r.deg
		if lat < reg.South || lat >= reg.North {
			continue
		}
		base := row * r.cols
		for col := 0; col < r.cols; col++ {
			lon := -180 + (float64(col)+0.5)*r.deg
			if lon < reg.West || lon >= reg.East {
				continue
			}
			total += r.cells[base+col]
		}
	}
	return total
}

// Total returns the world population in the raster.
func (r *Raster) Total() float64 {
	t := 0.0
	for _, c := range r.cells {
		t += c
	}
	return t
}

// TallyPatches sums raster population into the patches of a PatchGrid,
// exactly how the paper tallies CIESIN population per 75-arc-minute
// patch for Figure 2.
// The raster scan fans out over fixed bands of rows with per-band
// patch arrays merged in band order; the partition never depends on
// the worker count, so the float sums are bit-identical at any
// parallelism.
func (r *Raster) TallyPatches(g *geo.PatchGrid) []float64 {
	bands := parallel.Chunks(r.rows, 64)
	out := parallel.Reduce(parallel.Workers(0), len(bands),
		func(b int) []float64 {
			local := make([]float64, g.Cells())
			for row := bands[b][0]; row < bands[b][1]; row++ {
				lat := -90 + (float64(row)+0.5)*r.deg
				base := row * r.cols
				for col := 0; col < r.cols; col++ {
					if r.cells[base+col] == 0 {
						continue
					}
					lon := -180 + (float64(col)+0.5)*r.deg
					if i := g.Index(geo.Pt(lat, lon)); i >= 0 {
						local[i] += r.cells[base+col]
					}
				}
			}
			return local
		},
		parallel.SumFloats)
	if out == nil {
		out = make([]float64, g.Cells())
	}
	return out
}

// TopPlaces returns the n most populous places (for reporting and
// tests), sorted descending.
func (w *World) TopPlaces(n int) []Place {
	ps := make([]Place, len(w.Places))
	copy(ps, w.Places)
	sort.Slice(ps, func(i, j int) bool { return ps[i].Pop > ps[j].Pop })
	if n > len(ps) {
		n = len(ps)
	}
	return ps[:n]
}
