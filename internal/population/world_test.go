package population

import (
	"math"
	"testing"

	"geonet/internal/geo"
	"geonet/internal/rng"
)

func buildTestWorld(t *testing.T) *World {
	t.Helper()
	return Build(DefaultConfig(), rng.New(1))
}

func TestBuildDeterministic(t *testing.T) {
	a := Build(DefaultConfig(), rng.New(7))
	b := Build(DefaultConfig(), rng.New(7))
	if len(a.Places) != len(b.Places) {
		t.Fatalf("place counts differ: %d vs %d", len(a.Places), len(b.Places))
	}
	for i := range a.Places {
		if a.Places[i] != b.Places[i] {
			t.Fatalf("place %d differs between identical builds", i)
		}
	}
	if a.Raster.Total() != b.Raster.Total() {
		t.Error("raster totals differ between identical builds")
	}
}

func TestRegionPopulationTargets(t *testing.T) {
	w := buildTestWorld(t)
	for _, st := range Stats()[:NumEconRegions-1] {
		got := w.PopulationIn(st.Box) / 1e6
		want := st.PopulationM
		// Box tallies can deviate from regional targets because towns
		// jitter across box edges and city spread mass leaks; 12% is
		// the acceptance band.
		if math.Abs(got-want)/want > 0.12 {
			t.Errorf("%s population = %.0fM, want %.0fM (±12%%)", st.Region, got, want)
		}
	}
}

func TestWorldTotalsMatchTableIII(t *testing.T) {
	w := buildTestWorld(t)
	pop := w.Raster.Total() / 1e6
	if math.Abs(pop-5653)/5653 > 0.02 {
		t.Errorf("world population = %.0fM, want 5653M", pop)
	}
	online := w.OnlineIn(geo.World) / 1e6
	if math.Abs(online-513)/513 > 0.02 {
		t.Errorf("world online = %.1fM, want 513M", online)
	}
}

func TestOnlineFractionOrdering(t *testing.T) {
	// Online penetration must reflect Table III: USA and Australia
	// highest, Africa lowest.
	w := buildTestWorld(t)
	frac := func(box geo.Region) float64 {
		return w.OnlineIn(box) / w.PopulationIn(box)
	}
	usa := frac(geo.USAEcon)
	africa := frac(geo.Africa)
	if usa < 0.4 {
		t.Errorf("USA online fraction = %v, want > 0.4", usa)
	}
	if africa > 0.02 {
		t.Errorf("Africa online fraction = %v, want < 0.02", africa)
	}
	if usa < 20*africa {
		t.Errorf("USA/Africa online fraction ratio = %v, want > 20", usa/africa)
	}
}

func TestPlacesHaveValidLocations(t *testing.T) {
	w := buildTestWorld(t)
	for _, p := range w.Places {
		if !p.Loc.Valid() {
			t.Fatalf("place %q at invalid location %v", p.Name, p.Loc)
		}
		if p.Pop < 0 || p.Online < 0 {
			t.Fatalf("place %q has negative population", p.Name)
		}
		if p.Code == "" {
			t.Fatalf("place %q has no code", p.Name)
		}
	}
}

func TestMajorCityEconMatchesBoxes(t *testing.T) {
	// Every embedded city tagged with a named economic region must
	// actually lie inside that region's survey box (otherwise Table
	// III tallies would silently drop it).
	for _, c := range MajorCities() {
		if c.Econ == EconRestOfWorld {
			continue
		}
		box := Stats()[c.Econ].Box
		if !box.Contains(geo.Pt(c.Lat, c.Lon)) {
			t.Errorf("city %q (%v,%v) tagged %s but outside its box",
				c.Name, c.Lat, c.Lon, c.Econ)
		}
	}
}

func TestRestOfWorldCitiesOutsideNamedBoxes(t *testing.T) {
	for _, c := range MajorCities() {
		if c.Econ != EconRestOfWorld {
			continue
		}
		if got := EconOf(geo.Pt(c.Lat, c.Lon)); got != EconRestOfWorld {
			t.Errorf("city %q tagged Rest-of-World but falls in %s box", c.Name, got)
		}
	}
}

func TestEconOfKnownPoints(t *testing.T) {
	cases := []struct {
		p    geo.Point
		want EconRegion
	}{
		{geo.Pt(40.7, -74.0), EconUSA},
		{geo.Pt(48.9, 2.3), EconWesternEurope},
		{geo.Pt(35.7, 139.7), EconJapan},
		{geo.Pt(-33.9, 151.2), EconAustralia},
		{geo.Pt(-23.5, -46.6), EconSouthAmerica},
		{geo.Pt(19.4, -99.1), EconMexico},
		{geo.Pt(6.5, 3.4), EconAfrica},
		{geo.Pt(37.6, 127.0), EconRestOfWorld}, // Seoul
		{geo.Pt(55.8, 37.6), EconRestOfWorld},  // Moscow
	}
	for _, c := range cases {
		if got := EconOf(c.p); got != c.want {
			t.Errorf("EconOf(%v) = %s, want %s", c.p, got, c.want)
		}
	}
}

func TestCityCodesUnique(t *testing.T) {
	seen := map[string]string{}
	for _, c := range MajorCities() {
		if prev, ok := seen[c.Code]; ok {
			t.Errorf("airport code %q used by both %q and %q", c.Code, prev, c.Name)
		}
		seen[c.Code] = c.Name
	}
}

func TestCityNamesUnique(t *testing.T) {
	seen := map[string]bool{}
	for _, c := range MajorCities() {
		if seen[c.Name] {
			t.Errorf("duplicate city name %q", c.Name)
		}
		seen[c.Name] = true
	}
}

func TestCodeDictionaryPrefersLargerCity(t *testing.T) {
	w := buildTestWorld(t)
	dict := w.CodeDictionary()
	// The dictionary must locate every major city by name token and
	// airport code, at the city's location.
	loc, ok := dict["jfk"]
	if !ok {
		t.Fatal("dictionary missing jfk")
	}
	if geo.DistanceMiles(loc, geo.Pt(40.71, -74.01)) > 5 {
		t.Errorf("jfk maps to %v", loc)
	}
	if _, ok := dict["tokyo"]; !ok {
		t.Error("dictionary missing tokyo name token")
	}
}

func TestPatchTallyMatchesRegionSum(t *testing.T) {
	w := buildTestWorld(t)
	g := geo.NewPatchGrid(geo.US, 75)
	patches := w.Raster.TallyPatches(g)
	sum := 0.0
	for _, v := range patches {
		sum += v
	}
	direct := w.PopulationIn(geo.US)
	if math.Abs(sum-direct)/direct > 0.01 {
		t.Errorf("patch tally %.0f vs region sum %.0f", sum, direct)
	}
}

func TestUSPatchesHeavyTailed(t *testing.T) {
	// Patch populations must be highly skewed (metros vs plains):
	// the top patch should hold far more than the median patch.
	w := buildTestWorld(t)
	g := geo.NewPatchGrid(geo.US, 75)
	patches := w.Raster.TallyPatches(g)
	var nonzero []float64
	max := 0.0
	for _, v := range patches {
		if v > 0 {
			nonzero = append(nonzero, v)
			if v > max {
				max = v
			}
		}
	}
	if len(nonzero) < 100 {
		t.Fatalf("only %d populated US patches; world too sparse", len(nonzero))
	}
	mean := 0.0
	for _, v := range nonzero {
		mean += v
	}
	mean /= float64(len(nonzero))
	if max < 10*mean {
		t.Errorf("max patch %.0f vs mean %.0f: not heavy-tailed", max, mean)
	}
}

func TestRasterDepositAndQuery(t *testing.T) {
	r := NewRaster(15)
	p := geo.Pt(40.0, -100.0)
	r.Deposit(p, 500)
	if got := r.At(p); got != 500 {
		t.Errorf("At = %v, want 500", got)
	}
	r.DepositSpread(p, 1000)
	if got := r.At(p); got != 500+600 {
		t.Errorf("At after spread = %v, want 1100", got)
	}
	if total := r.Total(); math.Abs(total-1500) > 1e-6 {
		t.Errorf("Total = %v, want 1500", total)
	}
}

func TestTopPlaces(t *testing.T) {
	w := buildTestWorld(t)
	top := w.TopPlaces(5)
	if len(top) != 5 {
		t.Fatalf("TopPlaces(5) returned %d", len(top))
	}
	for i := 1; i < len(top); i++ {
		if top[i].Pop > top[i-1].Pop {
			t.Error("TopPlaces not sorted descending")
		}
	}
	if top[0].Name != "tokyo" {
		t.Errorf("largest place = %q, want tokyo", top[0].Name)
	}
}

func TestTownCode(t *testing.T) {
	a := townCode("ashbex12")
	if len(a) != 3 {
		t.Fatalf("townCode length = %d, want 3", len(a))
	}
	for _, c := range a {
		if c < 'a' || c > 'z' {
			t.Fatalf("townCode %q contains non-letter", a)
		}
	}
	if townCode("ashbex12") != a {
		t.Error("townCode not deterministic")
	}
	if townCode("ashbex13") == a {
		t.Error("nearby names should (almost always) differ in code")
	}
}
