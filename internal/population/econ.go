// Package population builds the world model that substitutes for the
// paper's two demographic data sources: CIESIN's gridded population of
// the world and Nua's "How Many Online" survey (both cited in Section
// IV). It combines an embedded database of real major cities with
// synthetic Zipf-sized towns and a rural background, normalised so each
// economic region matches the population and online-user totals the
// paper reports in Table III.
package population

import "geonet/internal/geo"

// EconRegion identifies one of the economic survey regions of Table
// III, plus a catch-all for the rest of the world.
type EconRegion int

const (
	EconAfrica EconRegion = iota
	EconSouthAmerica
	EconMexico
	EconWesternEurope
	EconJapan
	EconAustralia
	EconUSA
	EconRestOfWorld
	NumEconRegions
)

// String returns the paper's name for the region.
func (e EconRegion) String() string {
	switch e {
	case EconAfrica:
		return "Africa"
	case EconSouthAmerica:
		return "South America"
	case EconMexico:
		return "Mexico"
	case EconWesternEurope:
		return "W. Europe"
	case EconJapan:
		return "Japan"
	case EconAustralia:
		return "Australia"
	case EconUSA:
		return "USA"
	case EconRestOfWorld:
		return "Rest of World"
	}
	return "unknown"
}

// EconStats carries the demographic targets for one economic region.
// PopulationM and OnlineM are in millions and are taken directly from
// Table III of the paper (the Nua substitution described in DESIGN.md);
// Rest-of-World is derived from the World row minus the named regions.
type EconStats struct {
	Region EconRegion
	Box    geo.Region // survey bounding box (Table III row)
	// PopulationM is the total population target in millions.
	PopulationM float64
	// OnlineM is the online-user target in millions.
	OnlineM float64
	// TownShare is the fraction of the non-city population gap filled
	// by discrete synthetic towns (the rest becomes diffuse rural
	// background). Developed regions are more urbanised.
	TownShare float64
	// TownMinM/TownMaxM bound the Pareto town sizes (millions).
	TownMinM, TownMaxM float64
	// Land lists the boxes within which synthetic towns and rural
	// population may be placed (a crude land mask).
	Land []geo.Region
}

// Stats returns the per-region demographic table. Population and online
// totals for the named regions are Table III verbatim; the World row of
// Table III (5,653M people, 513M online) is preserved by construction
// because Rest-of-World absorbs the difference.
func Stats() []EconStats {
	return []EconStats{
		{
			Region: EconAfrica, Box: geo.Africa,
			PopulationM: 837, OnlineM: 4.15,
			TownShare: 0.35, TownMinM: 0.01, TownMaxM: 1.5,
			Land: []geo.Region{
				{Name: "africa-land", North: 36, South: -34, West: -17, East: 43.5},
			},
		},
		{
			Region: EconSouthAmerica, Box: geo.SouthAmerica,
			PopulationM: 341, OnlineM: 21.9,
			TownShare: 0.4, TownMinM: 0.01, TownMaxM: 1.5,
			Land: []geo.Region{
				{Name: "sam-north", North: 10, South: -20, West: -79, East: -36},
				{Name: "sam-south", North: -20, South: -54, West: -73, East: -54},
			},
		},
		{
			Region: EconMexico, Box: geo.Mexico,
			PopulationM: 154, OnlineM: 3.42,
			TownShare: 0.45, TownMinM: 0.008, TownMaxM: 1.2,
			Land: []geo.Region{
				{Name: "mex-main", North: 24.5, South: 14, West: -106, East: -87},
				{Name: "centam", North: 14, South: 8, West: -92, East: -78},
			},
		},
		{
			Region: EconWesternEurope, Box: geo.WesternEurope,
			PopulationM: 366, OnlineM: 143,
			TownShare: 0.8, TownMinM: 0.005, TownMaxM: 1.0,
			Land: []geo.Region{
				{Name: "iberia", North: 43.6, South: 37, West: -9, East: 3},
				{Name: "france", North: 51, South: 43.6, West: -4.5, East: 8},
				{Name: "britain", North: 58.5, South: 50.3, West: -9.5, East: 1.6},
				{Name: "central-eu", North: 54.8, South: 45.6, West: 5.6, East: 15},
				{Name: "italy", North: 45.6, South: 37.2, West: 7, East: 18},
				{Name: "east-central", North: 54.5, South: 45.8, West: 15, East: 24.8},
				{Name: "scandinavia-s", North: 59.9, South: 55, West: 5, East: 18},
				{Name: "greece", North: 41.5, South: 37, West: 20, East: 24.9},
			},
		},
		{
			Region: EconJapan, Box: geo.JapanEcon,
			PopulationM: 136, OnlineM: 47.1,
			TownShare: 0.85, TownMinM: 0.005, TownMaxM: 0.8,
			Land: []geo.Region{
				{Name: "kyushu", North: 34.3, South: 31, West: 129.6, East: 132},
				{Name: "chugoku-shikoku", North: 35.6, South: 33, West: 132, East: 136},
				{Name: "kansai-kanto", North: 37.4, South: 34, West: 136, East: 141},
				{Name: "tohoku", North: 41.3, South: 37.4, West: 139, East: 141.8},
				{Name: "hokkaido", North: 45.4, South: 41.6, West: 140.2, East: 145.5},
			},
		},
		{
			Region: EconAustralia, Box: geo.Australia,
			PopulationM: 18, OnlineM: 10.1,
			TownShare: 0.8, TownMinM: 0.004, TownMaxM: 0.5,
			Land: []geo.Region{
				{Name: "au-east", North: -25, South: -38.5, West: 144, East: 153.6},
				{Name: "au-west", North: -31, South: -35, West: 115, East: 119},
				{Name: "au-south", North: -33, South: -36, West: 137, East: 141},
				{Name: "tasmania", North: -40.8, South: -43.5, West: 145, East: 148.4},
				{Name: "au-north", North: -12, South: -20, West: 130, East: 147},
			},
		},
		{
			Region: EconUSA, Box: geo.USAEcon,
			PopulationM: 299, OnlineM: 166,
			TownShare: 0.8, TownMinM: 0.005, TownMaxM: 1.5,
			Land: []geo.Region{
				{Name: "us-main", North: 49, South: 25.2, West: -124, East: -67.5},
			},
		},
		{
			Region: EconRestOfWorld, Box: geo.World,
			// World row (5,653M / 513M) minus the named regions.
			PopulationM: 5653 - (837 + 341 + 154 + 366 + 136 + 18 + 299),
			OnlineM:     513 - (4.15 + 21.9 + 3.42 + 143 + 47.1 + 10.1 + 166),
			TownShare:   0.25, TownMinM: 0.02, TownMaxM: 3.0,
			Land: []geo.Region{
				{Name: "china-east", North: 41, South: 21, West: 103, East: 122},
				{Name: "india", North: 31, South: 8, West: 69, East: 89},
				{Name: "se-asia", North: 21, South: -9, West: 95, East: 122},
				{Name: "korea", North: 39, South: 34, West: 126, East: 129.5},
				{Name: "russia-west", North: 60, South: 50, West: 30, East: 60},
				{Name: "mideast", North: 42, South: 24, West: 44, East: 55},
				{Name: "nz", North: -34.5, South: -46.5, West: 166.5, East: 178.5},
				{Name: "canada-north", North: 54, South: 50, West: -125, East: -60},
			},
		},
	}
}

// EconOf classifies a point into the first matching survey region, with
// Rest-of-World as the fallback. The named boxes are checked in a fixed
// order so overlapping corners resolve deterministically.
func EconOf(p geo.Point) EconRegion {
	for _, s := range Stats()[:NumEconRegions-1] {
		if s.Box.Contains(p) {
			return s.Region
		}
	}
	return EconRestOfWorld
}
