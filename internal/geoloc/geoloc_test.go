package geoloc

import (
	"testing"

	"geonet/internal/dnsdb"
	"geonet/internal/geo"
	"geonet/internal/netgen"
	"geonet/internal/population"
	"geonet/internal/rng"
	"geonet/internal/whois"
)

type fixture struct {
	in  *netgen.Internet
	res Resources
}

var shared *fixture

func setup(tb testing.TB) *fixture {
	tb.Helper()
	if shared != nil {
		return shared
	}
	world := population.Build(population.DefaultConfig(), rng.New(1))
	cfg := netgen.DefaultConfig()
	cfg.Scale = 0.02
	in := netgen.Build(cfg, world)
	dns, err := dnsdb.FromInternet(in)
	if err != nil {
		tb.Fatal(err)
	}
	shared = &fixture{
		in: in,
		res: Resources{
			DNS:   dns,
			Whois: whois.FromInternet(in),
			Dict:  world.CodeDictionary(),
		},
	}
	return shared
}

func TestHostLabels(t *testing.T) {
	cases := []struct {
		host string
		want []string
	}{
		{"0.so-5-2-0.xl1.nyc8.alter.net", []string{"nyc8", "xl1", "so-5-2-0", "0"}},
		{"core3-lax.sprintlink.net", []string{"core3-lax"}},
		{"gw1.tokyo.example.ne.jp", []string{"tokyo", "gw1"}},
		{"example.net", nil},
		{"r1.example.co.uk", []string{"r1"}},
	}
	for _, c := range cases {
		got := HostLabels(c.host)
		if len(got) != len(c.want) {
			t.Errorf("HostLabels(%q) = %v, want %v", c.host, got, c.want)
			continue
		}
		for i := range got {
			if got[i] != c.want[i] {
				t.Errorf("HostLabels(%q) = %v, want %v", c.host, got, c.want)
				break
			}
		}
	}
}

func TestTokenCandidates(t *testing.T) {
	got := TokenCandidates("core3-lax")
	want := map[string]bool{"core3-lax": true, "core3": true, "core": true, "lax": true}
	for _, tok := range got {
		if !want[tok] {
			t.Errorf("unexpected candidate %q", tok)
		}
	}
	has := func(tok string) bool {
		for _, g := range got {
			if g == tok {
				return true
			}
		}
		return false
	}
	if !has("lax") || !has("core") {
		t.Errorf("candidates %v missing lax/core", got)
	}
	// Short fragments are dropped (slot kinds like "so", "ge").
	for _, tok := range TokenCandidates("so-5-2-0") {
		if tok == "so" || tok == "5" {
			t.Errorf("short token %q not filtered", tok)
		}
	}
}

func TestHostnameLookupPaperExample(t *testing.T) {
	dict := map[string]geo.Point{
		"nyc":     geo.Pt(40.71, -74.01),
		"newyork": geo.Pt(40.71, -74.01),
	}
	p, ok := hostnameLookup(dict, "0.so-5-2-0.XL1.NYC8.ALTER.NET")
	if !ok {
		t.Fatal("paper's example hostname did not map")
	}
	if geo.DistanceMiles(p, geo.Pt(40.71, -74.01)) > 1 {
		t.Errorf("mapped to %v, want New York", p)
	}
}

func TestIxMapperCoverageAndAccuracy(t *testing.T) {
	f := setup(t)
	m := NewIxMapper(f.res)
	var mapped, unmapped, within50, total int
	for _, ifc := range f.in.Ifaces {
		if ifc.Private || ifc.IP == 0 {
			continue
		}
		total++
		p, ok := m.Locate(ifc.IP)
		if !ok {
			unmapped++
			continue
		}
		mapped++
		truth := f.in.Routers[ifc.Router].Loc
		if geo.DistanceMiles(p, truth) < 50 {
			within50++
		}
	}
	unmappedFrac := float64(unmapped) / float64(total)
	if unmappedFrac > 0.04 {
		t.Errorf("IxMapper unmapped = %.2f%%, want ~1-1.5%% (paper)", unmappedFrac*100)
	}
	if unmappedFrac == 0 {
		t.Error("IxMapper should fail for some addresses")
	}
	accuracy := float64(within50) / float64(mapped)
	if accuracy < 0.80 {
		t.Errorf("IxMapper city-level accuracy = %.2f%%, want > 80%%", accuracy*100)
	}
}

func TestEdgeScapeBeatsIxMapperCoverage(t *testing.T) {
	f := setup(t)
	ix := NewIxMapper(f.res)
	es := NewEdgeScape(f.res, f.in, DefaultEdgeScapeConfig(), rng.New(5))
	if es.FeedSize() == 0 {
		t.Fatal("empty EdgeScape feed")
	}
	var ixUn, esUn, total int
	for _, ifc := range f.in.Ifaces {
		if ifc.Private || ifc.IP == 0 {
			continue
		}
		total++
		if _, ok := ix.Locate(ifc.IP); !ok {
			ixUn++
		}
		if _, ok := es.Locate(ifc.IP); !ok {
			esUn++
		}
	}
	if esUn >= ixUn {
		t.Errorf("EdgeScape unmapped (%d) should beat IxMapper (%d) — paper: 0.3-0.6%% vs 1-1.5%%", esUn, ixUn)
	}
	if frac := float64(esUn) / float64(total); frac > 0.02 {
		t.Errorf("EdgeScape unmapped = %.2f%%, want < 2%%", frac*100)
	}
}

func TestEdgeScapeAccuracy(t *testing.T) {
	f := setup(t)
	es := NewEdgeScape(f.res, f.in, DefaultEdgeScapeConfig(), rng.New(5))
	var mapped, within50 int
	for _, ifc := range f.in.Ifaces {
		if ifc.Private || ifc.IP == 0 {
			continue
		}
		p, ok := es.Locate(ifc.IP)
		if !ok {
			continue
		}
		mapped++
		if geo.DistanceMiles(p, f.in.Routers[ifc.Router].Loc) < 50 {
			within50++
		}
	}
	if acc := float64(within50) / float64(mapped); acc < 0.85 {
		t.Errorf("EdgeScape accuracy = %.2f%%, want > 85%%", acc*100)
	}
}

func TestIxMapperFallbackChain(t *testing.T) {
	f := setup(t)
	m := NewIxMapper(f.res)
	counts := map[string]int{}
	for _, ifc := range f.in.Ifaces {
		if ifc.Private || ifc.IP == 0 {
			continue
		}
		counts[m.Method(ifc.IP)]++
	}
	if counts["hostname"] == 0 || counts["loc"] == 0 || counts["whois"] == 0 {
		t.Errorf("fallback chain not fully exercised: %v", counts)
	}
	// Hostname must dominate (it is tried first and conventions are
	// widespread).
	if counts["hostname"] < counts["loc"]+counts["whois"] {
		t.Errorf("hostname mapping should dominate: %v", counts)
	}
}

// TestMethodLocateAgreeEveryInterface locks in the single-path
// invariant: for every interface in the test-scale internet and for
// both tools, Method(ip) is non-empty exactly when Locate(ip)
// succeeds, and LocateMethod agrees with both on location and
// attribution.
func TestMethodLocateAgreeEveryInterface(t *testing.T) {
	f := setup(t)
	mappers := []MethodMapper{
		NewIxMapper(f.res),
		NewEdgeScape(f.res, f.in, DefaultEdgeScapeConfig(), rng.New(5)),
		NewHostnameOnly(f.res),
	}
	for _, m := range mappers {
		for _, ifc := range f.in.Ifaces {
			p, method, ok := m.LocateMethod(ifc.IP)
			lp, lok := m.Locate(ifc.IP)
			if lok != ok || lp != p {
				t.Fatalf("%s: Locate/LocateMethod disagree for iface %d", m.Name(), ifc.ID)
			}
			if (method != "") != ok {
				t.Fatalf("%s: method %q but ok=%v for iface %d", m.Name(), method, ok, ifc.ID)
			}
		}
	}
	// The Method diagnostic (where provided) is the same attribution.
	ix := NewIxMapper(f.res)
	for _, ifc := range f.in.Ifaces {
		_, method, _ := ix.LocateMethod(ifc.IP)
		if got := ix.Method(ifc.IP); got != method {
			t.Fatalf("ixmapper: Method %q != LocateMethod %q for iface %d", got, method, ifc.ID)
		}
	}
}

func TestWhoisFallbackReturnsHQ(t *testing.T) {
	f := setup(t)
	m := NewIxMapper(f.res)
	// Find an opaque-named AS with several places; its interfaces
	// that fall through to whois must map to the HQ (the documented
	// HQ-collapse error).
	for _, as := range f.in.ASes {
		if as.Scheme != netgen.SchemeOpaque || len(as.Places) < 3 {
			continue
		}
		if as.PublishesLOC {
			continue
		}
		hq := f.in.World.Places[as.HomePlace].Loc
		checked := 0
		for _, rid := range as.Routers {
			for _, ifid := range f.in.Routers[rid].Ifaces {
				ifc := f.in.Ifaces[ifid]
				if ifc.Private || ifc.IP == 0 {
					continue
				}
				p, ok := m.Locate(ifc.IP)
				if !ok {
					continue
				}
				checked++
				if geo.DistanceMiles(p, hq) > 1 {
					t.Fatalf("opaque AS iface mapped to %v, want HQ %v", p, hq)
				}
			}
		}
		if checked > 0 {
			return
		}
	}
	t.Skip("no opaque multi-place AS without LOC found")
}

func TestLOCBeatsWhoisForPublishingASes(t *testing.T) {
	f := setup(t)
	m := NewIxMapper(f.res)
	// For a LOC-publishing AS with opaque names, interfaces must map
	// via LOC to (near) the router's true position, not the HQ.
	for _, as := range f.in.ASes {
		if !as.PublishesLOC || as.Scheme != netgen.SchemeOpaque {
			continue
		}
		for _, rid := range as.Routers {
			r := f.in.Routers[rid]
			for _, ifid := range r.Ifaces {
				ifc := f.in.Ifaces[ifid]
				if ifc.Private || ifc.IP == 0 || ifc.Hostname == "" {
					continue
				}
				p, ok := m.Locate(ifc.IP)
				if !ok {
					continue
				}
				if geo.DistanceMiles(p, r.Loc) > 0.5 {
					t.Fatalf("LOC-published iface mapped %f mi from truth",
						geo.DistanceMiles(p, r.Loc))
				}
				return
			}
		}
	}
	t.Skip("no LOC-publishing opaque AS found")
}

func TestHostnameOnlyAblation(t *testing.T) {
	f := setup(t)
	full := NewIxMapper(f.res)
	bare := NewHostnameOnly(f.res)
	var fullMapped, bareMapped int
	for _, ifc := range f.in.Ifaces {
		if ifc.Private || ifc.IP == 0 {
			continue
		}
		if _, ok := full.Locate(ifc.IP); ok {
			fullMapped++
		}
		if _, ok := bare.Locate(ifc.IP); ok {
			bareMapped++
		}
	}
	if bareMapped >= fullMapped {
		t.Errorf("hostname-only (%d) should map fewer than full chain (%d)", bareMapped, fullMapped)
	}
}

func TestPrivateAddressesUnmapped(t *testing.T) {
	f := setup(t)
	m := NewIxMapper(f.res)
	for _, ifc := range f.in.Ifaces {
		if !ifc.Private {
			continue
		}
		if _, ok := m.Locate(ifc.IP); ok {
			t.Fatalf("private address of iface %d was mapped", ifc.ID)
		}
	}
}
