package geoloc

import (
	"geonet/internal/geo"
	"geonet/internal/netgen"
	"geonet/internal/rng"
)

// EdgeScape supplements hostname techniques with "internal ISP
// geographical information" (Section III-B): a per-/24 geography feed
// contributed by participating networks. Akamai's "many relationships
// with networks coupled with its extensive server deployment" translate
// here into high AS participation and a small per-prefix error rate.
type EdgeScape struct {
	res  Resources
	feed map[uint32]geo.Point // /24 base address -> city centre
}

// EdgeScapeConfig tunes the feed synthesis.
type EdgeScapeConfig struct {
	// ParticipationProb is the chance an AS contributes its geography.
	ParticipationProb float64
	// FeedErrorProb is the chance a contributed /24 is attributed to a
	// different city of the same AS (stale or aggregated ISP data).
	FeedErrorProb float64
}

// DefaultEdgeScapeConfig reflects the tool's paper-era accuracy:
// unmapped rates of 0.3-0.6% versus IxMapper's 1-1.5%.
func DefaultEdgeScapeConfig() EdgeScapeConfig {
	return EdgeScapeConfig{ParticipationProb: 0.88, FeedErrorProb: 0.03}
}

// NewEdgeScape synthesises the ISP feed from ground truth and wraps it
// with the hostname and whois fallbacks.
func NewEdgeScape(res Resources, in *netgen.Internet, cfg EdgeScapeConfig, s *rng.Stream) *EdgeScape {
	es := &EdgeScape{res: res, feed: make(map[uint32]geo.Point)}
	for _, as := range in.ASes {
		if !s.Bool(cfg.ParticipationProb) {
			continue
		}
		for _, p := range as.Prefixes {
			size := uint32(1)
			if p.Len < 32 {
				size = uint32(1) << (32 - uint(p.Len))
			}
			for base := p.Addr; base < p.Addr+size; base += 256 {
				rid, ok := in.Prefix24Router[base]
				if !ok {
					continue
				}
				place := in.Routers[rid].Place
				if s.Bool(cfg.FeedErrorProb) && len(as.Places) > 1 {
					place = as.Places[s.Intn(len(as.Places))]
				}
				es.feed[base] = in.World.Places[place].Loc
			}
		}
	}
	return es
}

// Name implements Mapper.
func (m *EdgeScape) Name() string { return "edgescape" }

// LocateMethod implements MethodMapper.
func (m *EdgeScape) LocateMethod(ip uint32) (geo.Point, string, bool) {
	// 1. ISP-contributed geography.
	if p, ok := m.feed[ip&^0xff]; ok {
		return p, MethodFeed, true
	}
	// 2. Hostname conventions.
	if host, ok := m.res.DNS.PTR(ip); ok {
		if p, ok := hostnameLookup(m.res.Dict, host); ok {
			return p, MethodHostname, true
		}
		if loc, ok := m.res.DNS.LOCLookup(host); ok {
			return loc.Point(), MethodLOC, true
		}
	}
	// 3. Whois.
	if rec, ok := m.res.Whois.Lookup(ip); ok {
		// EdgeScape's pipeline geocodes more reliably than the
		// whois-text path (half the failure rate).
		if !geocodeFails(rec.OrgID, 40) {
			return rec.Loc, MethodWhois, true
		}
	}
	return geo.Point{}, "", false
}

// Locate implements Mapper.
func (m *EdgeScape) Locate(ip uint32) (geo.Point, bool) {
	p, _, ok := m.LocateMethod(ip)
	return p, ok
}

// Method reports which technique located an address ("feed",
// "hostname", "loc", "whois" or "").
func (m *EdgeScape) Method(ip uint32) string {
	_, method, _ := m.LocateMethod(ip)
	return method
}

// FeedSize reports the number of /24s in the ISP feed (diagnostics).
func (m *EdgeScape) FeedSize() int { return len(m.feed) }
