package geoloc

import "geonet/internal/geo"

// IxMapper is the hostname-first mapping tool. Per the paper:
// "IxMapper always tries to use hostname based mapping, defaulting to
// DNS LOC records if available and finally to whois records."
type IxMapper struct {
	res Resources
	// WhoisGeocodeFailPermille is the per-org probability (in 1/1000)
	// that a whois address cannot be geocoded. The default leaves
	// ~1-1.5% of interfaces unmapped overall, matching Section III-B.
	WhoisGeocodeFailPermille int
}

// NewIxMapper builds the tool over the given resources.
func NewIxMapper(res Resources) *IxMapper {
	return &IxMapper{res: res, WhoisGeocodeFailPermille: 80}
}

// Name implements Mapper.
func (m *IxMapper) Name() string { return "ixmapper" }

// Locate implements Mapper.
func (m *IxMapper) Locate(ip uint32) (geo.Point, bool) {
	host, hasPTR := m.res.DNS.PTR(ip)
	if hasPTR {
		// 1. Hostname conventions.
		if p, ok := hostnameLookup(m.res.Dict, host); ok {
			return p, true
		}
		// 2. DNS LOC.
		if loc, ok := m.res.DNS.LOCLookup(host); ok {
			return loc.Point(), true
		}
	}
	// 3. Whois registrant address.
	if rec, ok := m.res.Whois.Lookup(ip); ok {
		if !geocodeFails(rec.OrgID, m.WhoisGeocodeFailPermille) {
			return rec.Loc, true
		}
	}
	return geo.Point{}, false
}

// Method reports which technique located an address, for diagnostics
// and the ablation benches ("hostname", "loc", "whois" or "").
func (m *IxMapper) Method(ip uint32) string {
	host, hasPTR := m.res.DNS.PTR(ip)
	if hasPTR {
		if _, ok := hostnameLookup(m.res.Dict, host); ok {
			return "hostname"
		}
		if _, ok := m.res.DNS.LOCLookup(host); ok {
			return "loc"
		}
	}
	if rec, ok := m.res.Whois.Lookup(ip); ok {
		if !geocodeFails(rec.OrgID, m.WhoisGeocodeFailPermille) {
			return "whois"
		}
	}
	return ""
}

// HostnameOnly is the ablation variant that uses hostname mapping
// alone, with no LOC or whois fallback.
type HostnameOnly struct {
	res Resources
}

// NewHostnameOnly builds the ablation mapper.
func NewHostnameOnly(res Resources) *HostnameOnly { return &HostnameOnly{res: res} }

// Name implements Mapper.
func (m *HostnameOnly) Name() string { return "hostname-only" }

// Locate implements Mapper.
func (m *HostnameOnly) Locate(ip uint32) (geo.Point, bool) {
	host, ok := m.res.DNS.PTR(ip)
	if !ok {
		return geo.Point{}, false
	}
	return hostnameLookup(m.res.Dict, host)
}
