package geoloc

import "geonet/internal/geo"

// IxMapper is the hostname-first mapping tool. Per the paper:
// "IxMapper always tries to use hostname based mapping, defaulting to
// DNS LOC records if available and finally to whois records."
type IxMapper struct {
	res Resources
	// WhoisGeocodeFailPermille is the per-org probability (in 1/1000)
	// that a whois address cannot be geocoded. The default leaves
	// ~1-1.5% of interfaces unmapped overall, matching Section III-B.
	WhoisGeocodeFailPermille int
}

// NewIxMapper builds the tool over the given resources.
func NewIxMapper(res Resources) *IxMapper {
	return &IxMapper{res: res, WhoisGeocodeFailPermille: 80}
}

// Name implements Mapper.
func (m *IxMapper) Name() string { return "ixmapper" }

// LocateMethod implements MethodMapper: one pass through the paper's
// three-step fallback, returning the location and the technique that
// produced it.
func (m *IxMapper) LocateMethod(ip uint32) (geo.Point, string, bool) {
	host, hasPTR := m.res.DNS.PTR(ip)
	if hasPTR {
		// 1. Hostname conventions.
		if p, ok := hostnameLookup(m.res.Dict, host); ok {
			return p, MethodHostname, true
		}
		// 2. DNS LOC.
		if loc, ok := m.res.DNS.LOCLookup(host); ok {
			return loc.Point(), MethodLOC, true
		}
	}
	// 3. Whois registrant address.
	if rec, ok := m.res.Whois.Lookup(ip); ok {
		if !geocodeFails(rec.OrgID, m.WhoisGeocodeFailPermille) {
			return rec.Loc, MethodWhois, true
		}
	}
	return geo.Point{}, "", false
}

// Locate implements Mapper.
func (m *IxMapper) Locate(ip uint32) (geo.Point, bool) {
	p, _, ok := m.LocateMethod(ip)
	return p, ok
}

// Method reports which technique located an address, for diagnostics
// and the ablation benches ("hostname", "loc", "whois" or "").
func (m *IxMapper) Method(ip uint32) string {
	_, method, _ := m.LocateMethod(ip)
	return method
}

// HostnameOnly is the ablation variant that uses hostname mapping
// alone, with no LOC or whois fallback.
type HostnameOnly struct {
	res Resources
}

// NewHostnameOnly builds the ablation mapper.
func NewHostnameOnly(res Resources) *HostnameOnly { return &HostnameOnly{res: res} }

// Name implements Mapper.
func (m *HostnameOnly) Name() string { return "hostname-only" }

// LocateMethod implements MethodMapper.
func (m *HostnameOnly) LocateMethod(ip uint32) (geo.Point, string, bool) {
	host, ok := m.res.DNS.PTR(ip)
	if !ok {
		return geo.Point{}, "", false
	}
	p, ok := hostnameLookup(m.res.Dict, host)
	if !ok {
		return geo.Point{}, "", false
	}
	return p, MethodHostname, true
}

// Locate implements Mapper.
func (m *HostnameOnly) Locate(ip uint32) (geo.Point, bool) {
	p, _, ok := m.LocateMethod(ip)
	return p, ok
}
