// Package geoloc implements the two geographic mapping tools of
// Section III-B:
//
//   - IxMapper: hostname-convention mapping first (city name or airport
//     code tokens embedded in router names), then RFC 1876 DNS LOC
//     records, then whois registrant addresses — in exactly the paper's
//     fallback order.
//   - EdgeScape: a per-prefix geography feed contributed by
//     participating ISPs (sampled from ground truth at city granularity
//     with a small error model), with hostname and whois fallbacks.
//
// Both tools return city-granularity locations, matching Padmanabhan
// and Subramanian's observation (cited by the paper) that hostname
// mapping is "accurate up to the granularity of a city".
package geoloc

import (
	"strings"

	"geonet/internal/dnsdb"
	"geonet/internal/geo"
	"geonet/internal/whois"
)

// Mapper resolves an IPv4 address to a geographic location.
type Mapper interface {
	// Name identifies the tool ("ixmapper" or "edgescape").
	Name() string
	// Locate returns the mapped location, or ok=false when the tool
	// cannot place the address.
	Locate(ip uint32) (geo.Point, bool)
}

// Method names attributing an answer to the technique that produced
// it. The empty string means the tool could not place the address.
const (
	MethodFeed     = "feed"     // EdgeScape's ISP-contributed per-prefix geography
	MethodHostname = "hostname" // hostname naming conventions
	MethodLOC      = "loc"      // RFC 1876 DNS LOC records
	MethodWhois    = "whois"    // whois registrant address
)

// MethodMapper is a Mapper that also attributes each answer to the
// technique that produced it. LocateMethod is the single resolution
// path: Locate and per-tool Method diagnostics are derived from it, so
// attribution can never disagree with mappability (the invariant
// TestMethodLocateAgreeEveryInterface locks in). The serving layer
// (internal/geoserve) compiles snapshots through this interface.
type MethodMapper interface {
	Mapper
	// LocateMethod returns the mapped location, the Method* constant
	// that produced it, and ok=false (with an empty method) when the
	// tool cannot place the address.
	LocateMethod(ip uint32) (geo.Point, string, bool)
}

// Resources bundles the external data sources mappers consult.
type Resources struct {
	DNS   *dnsdb.DB
	Whois *whois.Registry
	// Dict maps hostname tokens (airport codes, squashed city names)
	// to city-centre coordinates.
	Dict map[string]geo.Point
}

// ccSecondLevel recognises two-label public suffixes ("co.uk", "ne.jp",
// "net.au", ...) so domain labels are not mistaken for host labels.
var ccSecondLevel = map[string]bool{
	"co": true, "ne": true, "ad": true, "ac": true,
	"com": true, "net": true, "org": true, "gov": true,
}

var ccTLD = map[string]bool{
	"uk": true, "jp": true, "au": true, "mx": true, "br": true,
	"za": true, "eg": true, "ar": true, "us": true, "de": true,
	"fr": true, "nl": true, "it": true, "es": true, "eu": true,
}

// HostLabels splits a hostname into host-part labels (domain labels
// removed), ordered nearest-the-domain first — the position ISP
// conventions put the city token in.
func HostLabels(host string) []string {
	host = strings.ToLower(strings.TrimSuffix(host, "."))
	labels := strings.Split(host, ".")
	domainLen := 2
	if len(labels) >= 3 && ccTLD[labels[len(labels)-1]] && ccSecondLevel[labels[len(labels)-2]] {
		domainLen = 3
	}
	if len(labels) <= domainLen {
		return nil
	}
	hostPart := labels[:len(labels)-domainLen]
	// Reverse: nearest the domain first.
	out := make([]string, 0, len(hostPart))
	for i := len(hostPart) - 1; i >= 0; i-- {
		out = append(out, hostPart[i])
	}
	return out
}

// TokenCandidates expands one label into lookup candidates: the label
// itself, the label with trailing digits stripped ("nyc8" -> "nyc"),
// and each dash-separated part likewise ("core3-lax" -> "lax").
func TokenCandidates(label string) []string {
	var out []string
	add := func(tok string) {
		if len(tok) >= 3 {
			out = append(out, tok)
		}
	}
	add(label)
	add(stripDigits(label))
	if strings.Contains(label, "-") {
		for _, part := range strings.Split(label, "-") {
			add(part)
			add(stripDigits(part))
		}
	}
	return out
}

func stripDigits(s string) string {
	end := len(s)
	for end > 0 && s[end-1] >= '0' && s[end-1] <= '9' {
		end--
	}
	return s[:end]
}

// hostnameLookup applies convention-based mapping: scan host labels
// nearest-the-domain first, trying each token candidate against the
// dictionary.
func hostnameLookup(dict map[string]geo.Point, host string) (geo.Point, bool) {
	for _, label := range HostLabels(host) {
		for _, tok := range TokenCandidates(label) {
			if p, ok := dict[tok]; ok {
				return p, true
			}
		}
	}
	return geo.Point{}, false
}

// geocodeFails deterministically marks a fraction of whois orgs as
// un-geocodable (free-text addresses that real pipelines fail to
// parse). The hash keys on the org so all of an AS's addresses fail
// together, as they would in practice.
func geocodeFails(orgID string, failPermille int) bool {
	h := uint32(2166136261)
	for i := 0; i < len(orgID); i++ {
		h ^= uint32(orgID[i])
		h *= 16777619
	}
	return int(h%1000) < failPermille
}
