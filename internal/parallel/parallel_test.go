package parallel

import (
	"math"
	"reflect"
	"sync/atomic"
	"testing"
)

func TestWorkersResolution(t *testing.T) {
	if Workers(4) != 4 {
		t.Error("explicit worker count not honoured")
	}
	if Workers(0) < 1 || Workers(-3) < 1 {
		t.Error("auto worker count must be positive")
	}
}

func TestDoRunsEverything(t *testing.T) {
	for _, workers := range []int{1, 3, 16} {
		var n atomic.Int64
		fns := make([]func(), 10)
		for i := range fns {
			fns[i] = func() { n.Add(1) }
		}
		Do(workers, fns...)
		if n.Load() != 10 {
			t.Errorf("workers=%d: ran %d of 10 fns", workers, n.Load())
		}
	}
}

func TestForEachCoversAllIndices(t *testing.T) {
	for _, workers := range []int{1, 2, 7} {
		for _, n := range []int{0, 1, 5, 1000} {
			seen := make([]atomic.Int32, n)
			ForEach(workers, n, func(i int) { seen[i].Add(1) })
			for i := range seen {
				if seen[i].Load() != 1 {
					t.Fatalf("workers=%d n=%d: index %d visited %d times",
						workers, n, i, seen[i].Load())
				}
			}
		}
	}
}

func TestMapPreservesOrder(t *testing.T) {
	got := Map(8, 100, func(i int) int { return i * i })
	for i, v := range got {
		if v != i*i {
			t.Fatalf("index %d: got %d", i, v)
		}
	}
}

func TestReduceIsDeterministicAcrossWorkers(t *testing.T) {
	// Float accumulation: same fixed chunking must give bit-identical
	// results at every worker count (the package's core promise).
	const n, chunks = 10000, 64
	xs := make([]float64, n)
	for i := range xs {
		xs[i] = math.Sin(float64(i)) * 1e-3
	}
	sum := func(workers int) []float64 {
		return Reduce(workers, chunks,
			func(c int) []float64 {
				lo, hi := c*n/chunks, (c+1)*n/chunks
				acc := make([]float64, 4)
				for i := lo; i < hi; i++ {
					acc[i%4] += xs[i]
				}
				return acc
			},
			func(into, from []float64) []float64 {
				for i := range into {
					into[i] += from[i]
				}
				return into
			})
	}
	want := sum(1)
	for _, w := range []int{2, 4, 13} {
		if got := sum(w); !reflect.DeepEqual(got, want) {
			t.Errorf("workers=%d: reduce differed from serial", w)
		}
	}
}

func TestReduceEmpty(t *testing.T) {
	got := Reduce(4, 0,
		func(int) int { return 1 },
		func(a, b int) int { return a + b })
	if got != 0 {
		t.Errorf("empty reduce = %d, want zero value", got)
	}
}

func TestChunksPartition(t *testing.T) {
	for _, tc := range []struct{ n, parts int }{
		{0, 4}, {1, 4}, {10, 3}, {100, 7}, {5, 5}, {3, 100},
	} {
		cs := Chunks(tc.n, tc.parts)
		next := 0
		for _, c := range cs {
			if c[0] != next || c[1] <= c[0] {
				t.Fatalf("Chunks(%d,%d): bad range %v after %d", tc.n, tc.parts, c, next)
			}
			next = c[1]
		}
		if next != tc.n {
			t.Fatalf("Chunks(%d,%d) covers [0,%d)", tc.n, tc.parts, next)
		}
	}
}

func TestNestedBudget(t *testing.T) {
	cases := []struct {
		total, tasks         int
		wantOuter, wantInner int
	}{
		{8, 4, 4, 2},   // budget split evenly across pipelines
		{8, 3, 3, 2},   // remainder stays unused rather than oversubscribing
		{4, 16, 4, 1},  // more tasks than budget: serial inner stages
		{1, 10, 1, 1},  // single worker degenerates fully
		{16, 1, 1, 16}, // one task gets the whole budget
		{5, 0, 1, 5},   // no tasks clamps to one
	}
	for _, c := range cases {
		outer, inner := NestedBudget(c.total, c.tasks)
		if outer != c.wantOuter || inner != c.wantInner {
			t.Errorf("NestedBudget(%d, %d) = (%d, %d), want (%d, %d)",
				c.total, c.tasks, outer, inner, c.wantOuter, c.wantInner)
		}
		if outer < 1 || inner < 1 {
			t.Errorf("NestedBudget(%d, %d) produced a zero bound", c.total, c.tasks)
		}
		if c.total >= c.tasks && c.tasks > 0 && outer*inner > c.total {
			t.Errorf("NestedBudget(%d, %d) oversubscribes: %d*%d > %d",
				c.total, c.tasks, outer, inner, c.total)
		}
	}
	// total <= 0 resolves to GOMAXPROCS like Workers does.
	outer, inner := NestedBudget(0, 2)
	if outer < 1 || inner < 1 {
		t.Errorf("NestedBudget(0, 2) = (%d, %d), want positive bounds", outer, inner)
	}
}
