// Package parallel provides the bounded fan-out primitives the
// pipeline's hot paths share: a worker-count knob resolver, a bounded
// concurrent task group, chunked index loops, and a map-reduce with
// per-chunk accumulators merged in chunk order.
//
// Determinism discipline: every reduction merges partial results in a
// fixed (chunk-index) order, and callers pick chunk counts independent
// of the worker count. Integer tallies are exact under any grouping;
// float accumulations stay bit-identical because neither the partition
// nor the merge order ever changes — only how many chunks run at once
// does. This is what lets core.Run promise byte-identical reports for
// any Config.Workers.
package parallel

import (
	"runtime"
	"sync"
	"sync/atomic"
)

// Workers resolves a worker-count knob: values <= 0 mean one worker
// per available CPU (GOMAXPROCS).
func Workers(n int) int {
	if n > 0 {
		return n
	}
	return runtime.GOMAXPROCS(0)
}

// NestedBudget splits one global worker budget across a two-level
// fan-out: tasks pipelines run at once (outer), each allowed inner
// workers internally, with outer*inner <= max(total, tasks) so N
// concurrent pipelines times M inner workers never oversubscribes the
// budget. total <= 0 means one worker per CPU. outer and inner are
// both at least 1.
func NestedBudget(total, tasks int) (outer, inner int) {
	total = Workers(total)
	if tasks < 1 {
		tasks = 1
	}
	outer = total
	if outer > tasks {
		outer = tasks
	}
	inner = total / outer
	if inner < 1 {
		inner = 1
	}
	return outer, inner
}

// Do runs the functions with at most workers in flight at once and
// waits for all of them; workers <= 1 degenerates to a serial loop.
func Do(workers int, fns ...func()) {
	workers = Workers(workers)
	if workers <= 1 || len(fns) <= 1 {
		for _, fn := range fns {
			fn()
		}
		return
	}
	sem := make(chan struct{}, workers)
	var wg sync.WaitGroup
	wg.Add(len(fns))
	for _, fn := range fns {
		sem <- struct{}{}
		go func() {
			defer func() { <-sem; wg.Done() }()
			fn()
		}()
	}
	wg.Wait()
}

// ForEach invokes fn(i) for every i in [0, n), fanning out across at
// most workers goroutines. Items are handed out in ascending chunks
// for locality, but fn must not depend on cross-item order and must be
// safe to call concurrently.
func ForEach(workers, n int, fn func(i int)) {
	workers = Workers(workers)
	if workers > n {
		workers = n
	}
	if workers <= 1 {
		for i := 0; i < n; i++ {
			fn(i)
		}
		return
	}
	grab := n / (workers * 8)
	if grab < 1 {
		grab = 1
	}
	var next atomic.Int64
	var wg sync.WaitGroup
	wg.Add(workers)
	for w := 0; w < workers; w++ {
		go func() {
			defer wg.Done()
			for {
				lo := int(next.Add(int64(grab))) - grab
				if lo >= n {
					return
				}
				hi := lo + grab
				if hi > n {
					hi = n
				}
				for i := lo; i < hi; i++ {
					fn(i)
				}
			}
		}()
	}
	wg.Wait()
}

// Map computes fn(i) for every i in [0, n) concurrently and returns
// the results in index order regardless of scheduling — the ordered
// half of a map-reduce.
func Map[T any](workers, n int, fn func(i int) T) []T {
	out := make([]T, n)
	ForEach(workers, n, func(i int) { out[i] = fn(i) })
	return out
}

// Reduce runs a map-reduce with per-chunk accumulators and an ordered
// merge: work(c) builds chunk c's partial result, then merge folds the
// partials in ascending chunk order into the first one. Pick chunks
// independently of workers and float reductions stay bit-identical at
// any parallelism.
func Reduce[A any](workers, chunks int, work func(chunk int) A, merge func(into, from A) A) A {
	var acc A
	if chunks <= 0 {
		return acc
	}
	parts := Map(workers, chunks, work)
	acc = parts[0]
	for _, p := range parts[1:] {
		acc = merge(acc, p)
	}
	return acc
}

// SumFloats is the element-wise merge for Reduce over per-chunk tally
// arrays: it adds from into into and returns into. Both slices must
// have the same length.
func SumFloats(into, from []float64) []float64 {
	for i := range into {
		into[i] += from[i]
	}
	return into
}

// Chunks splits [0, n) into at most parts contiguous [lo, hi) ranges
// of near-equal size, in ascending order. Empty ranges are omitted.
func Chunks(n, parts int) [][2]int {
	if n <= 0 {
		return nil
	}
	if parts > n {
		parts = n
	}
	if parts < 1 {
		parts = 1
	}
	out := make([][2]int, 0, parts)
	for c := 0; c < parts; c++ {
		lo := c * n / parts
		hi := (c + 1) * n / parts
		if lo < hi {
			out = append(out, [2]int{lo, hi})
		}
	}
	return out
}
