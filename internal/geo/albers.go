package geo

import "math"

// Albers implements the Albers equal-area conic projection, the
// projection the paper adopts to define convexity of AS interface sets
// on the globe (Section VI-B): "we mapped each point onto the plane
// using the Albers Equal Area projection ... The globe is unfolded at
// the poles and the International Date Line, thus yielding a standard
// planar geometry in which convexity of a set is well defined."
//
// Projected coordinates are in statute miles so hull areas come out
// directly in square miles, matching Figures 9 and 10.
type Albers struct {
	phi1, phi2 float64 // standard parallels (radians)
	phi0, lam0 float64 // origin (radians)
	n, c, rho0 float64 // derived constants
}

// NewAlbers constructs a projection with the given standard parallels
// and origin, all in degrees.
func NewAlbers(stdLat1, stdLat2, originLat, originLon float64) *Albers {
	a := &Albers{
		phi1: deg2rad(stdLat1),
		phi2: deg2rad(stdLat2),
		phi0: deg2rad(originLat),
		lam0: deg2rad(originLon),
	}
	a.n = (math.Sin(a.phi1) + math.Sin(a.phi2)) / 2
	a.c = math.Cos(a.phi1)*math.Cos(a.phi1) + 2*a.n*math.Sin(a.phi1)
	a.rho0 = a.rho(a.phi0)
	return a
}

// WorldAlbers is the projection used for world-scale hull measurement,
// with the globe unfolding at the date line as the paper describes.
// The standard parallels must not be symmetric about the equator (that
// degenerates the cone constant to zero), so they straddle the latitude
// band where most Internet infrastructure lives.
func WorldAlbers() *Albers { return NewAlbers(-20, 52, 0, 0) }

// RegionAlbers builds a projection tuned to a region: standard
// parallels at 1/6 and 5/6 of the latitude span (the conventional
// choice) and origin at the region centre, minimising distortion for
// hulls restricted to that region (Figures 9(b) and 9(c)).
func RegionAlbers(r Region) *Albers {
	span := r.North - r.South
	return NewAlbers(r.South+span/6, r.North-span/6, (r.North+r.South)/2, (r.East+r.West)/2)
}

func (a *Albers) rho(phi float64) float64 {
	return EarthRadiusMiles * math.Sqrt(a.c-2*a.n*math.Sin(phi)) / a.n
}

// Project maps a geographic point to planar (x, y) in miles.
func (a *Albers) Project(p Point) (x, y float64) {
	phi := deg2rad(p.Lat)
	lam := deg2rad(p.Lon)
	// Unfold at the International Date Line relative to the origin
	// meridian: wrap the longitude difference into (-180, 180].
	dl := lam - a.lam0
	for dl > math.Pi {
		dl -= 2 * math.Pi
	}
	for dl <= -math.Pi {
		dl += 2 * math.Pi
	}
	theta := a.n * dl
	rho := a.rho(phi)
	return rho * math.Sin(theta), a.rho0 - rho*math.Cos(theta)
}

// Unproject is the inverse of Project.
func (a *Albers) Unproject(x, y float64) Point {
	rho := math.Hypot(x, a.rho0-y)
	theta := math.Atan2(x, a.rho0-y)
	if a.n < 0 {
		rho = -rho
		theta = math.Atan2(-x, -(a.rho0 - y))
	}
	sinPhi := (a.c - (rho*a.n/EarthRadiusMiles)*(rho*a.n/EarthRadiusMiles)) / (2 * a.n)
	if sinPhi > 1 {
		sinPhi = 1
	} else if sinPhi < -1 {
		sinPhi = -1
	}
	phi := math.Asin(sinPhi)
	lam := a.lam0 + theta/a.n
	lonDeg := math.Mod(rad2deg(lam)+540, 360) - 180
	return Point{Lat: rad2deg(phi), Lon: lonDeg}
}
