package geo

import (
	"math"
	"sort"

	"geonet/internal/parallel"
)

// BoxCountResult holds the box-counting measurements at each scale and
// the fitted fractal dimension.
type BoxCountResult struct {
	// BoxDeg[i] is the box edge length in degrees at scale i;
	// Occupied[i] is the number of boxes containing at least one point.
	BoxDeg    []float64
	Occupied  []int
	Dimension float64 // slope of log N(s) vs log (1/s)
}

// BoxCountDimension estimates the fractal (box-counting) dimension of a
// point set, the method Yook, Jeong and Barabási applied to routers and
// population and which the paper reports confirming (~1.5) for its
// datasets (Section II). Boxes are square in degree space, halving in
// size at each scale from coarse to fine.
func BoxCountDimension(pts []Point, region Region, scales int) BoxCountResult {
	if scales < 2 {
		scales = 2
	}
	res := BoxCountResult{}
	base := math.Max(region.WidthDeg(), region.HeightDeg())
	// Each scale rescans the whole point set independently, so the
	// scales fan out across workers; per-scale counts are assembled in
	// scale order, identical at any parallelism.
	type scaleCount struct {
		size     float64
		occupied int
	}
	perScale := parallel.Map(parallel.Workers(0), scales, func(s int) scaleCount {
		size := base / math.Pow(2, float64(s+1))
		occupied := map[[2]int]struct{}{}
		for _, p := range pts {
			if !region.Contains(p) {
				continue
			}
			i := int((p.Lon - region.West) / size)
			j := int((p.Lat - region.South) / size)
			occupied[[2]int{i, j}] = struct{}{}
		}
		return scaleCount{size: size, occupied: len(occupied)}
	})
	var logInv, logN []float64
	for _, sc := range perScale {
		if sc.occupied == 0 {
			continue
		}
		res.BoxDeg = append(res.BoxDeg, sc.size)
		res.Occupied = append(res.Occupied, sc.occupied)
		logInv = append(logInv, math.Log(1/sc.size))
		logN = append(logN, math.Log(float64(sc.occupied)))
	}
	if len(logN) >= 2 {
		res.Dimension = slope(logInv, logN)
	}
	return res
}

// slope computes the least-squares slope of y against x.
func slope(x, y []float64) float64 {
	n := float64(len(x))
	var sx, sy, sxx, sxy float64
	for i := range x {
		sx += x[i]
		sy += y[i]
		sxx += x[i] * x[i]
		sxy += x[i] * y[i]
	}
	den := n*sxx - sx*sx
	if den == 0 {
		return 0
	}
	return (n*sxy - sx*sy) / den
}

// DistinctLocations returns the number of distinct quantised locations
// in a point set — the paper's "number of locations" AS size measure.
func DistinctLocations(pts []Point) int {
	seen := make(map[LocKey]struct{}, len(pts))
	for _, p := range pts {
		seen[p.Key()] = struct{}{}
	}
	return len(seen)
}

// UniqueLocations returns the distinct quantised locations themselves,
// in a deterministic (sorted) order.
func UniqueLocations(pts []Point) []Point {
	seen := make(map[LocKey]struct{}, len(pts))
	var keys []LocKey
	for _, p := range pts {
		k := p.Key()
		if _, ok := seen[k]; !ok {
			seen[k] = struct{}{}
			keys = append(keys, k)
		}
	}
	sort.Slice(keys, func(i, j int) bool {
		if keys[i].Lat != keys[j].Lat {
			return keys[i].Lat < keys[j].Lat
		}
		return keys[i].Lon < keys[j].Lon
	})
	out := make([]Point, len(keys))
	for i, k := range keys {
		out[i] = k.Point()
	}
	return out
}
