package geo

import (
	"math"
	"sort"
)

// XY is a planar point (miles), produced by an Albers projection.
type XY struct {
	X, Y float64
}

// ConvexHull computes the convex hull of a planar point set using
// Andrew's monotone-chain algorithm. The returned hull is in
// counter-clockwise order without repeating the first point. Degenerate
// inputs return what hull exists: 0, 1 or 2 points.
func ConvexHull(pts []XY) []XY {
	if len(pts) < 3 {
		out := make([]XY, len(pts))
		copy(out, pts)
		return out
	}
	ps := make([]XY, len(pts))
	copy(ps, pts)
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].X != ps[j].X {
			return ps[i].X < ps[j].X
		}
		return ps[i].Y < ps[j].Y
	})
	// Deduplicate: repeated points break the monotone chain's
	// collinearity handling and are common when many routers share a
	// city centre.
	uniq := ps[:1]
	for _, p := range ps[1:] {
		if p != uniq[len(uniq)-1] {
			uniq = append(uniq, p)
		}
	}
	ps = uniq
	if len(ps) < 3 {
		return ps
	}

	cross := func(o, a, b XY) float64 {
		return (a.X-o.X)*(b.Y-o.Y) - (a.Y-o.Y)*(b.X-o.X)
	}

	hull := make([]XY, 0, 2*len(ps))
	// Lower hull.
	for _, p := range ps {
		for len(hull) >= 2 && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(ps) - 2; i >= 0; i-- {
		p := ps[i]
		for len(hull) >= lower && cross(hull[len(hull)-2], hull[len(hull)-1], p) <= 0 {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return hull[:len(hull)-1]
}

// PolygonArea returns the area of a simple polygon given in order
// (either orientation) via the shoelace formula. For hulls in square
// miles. Polygons with fewer than 3 vertices have zero area — the
// paper's observation that ~80% of ASes have one or two locations and
// "thus zero area" falls out of this directly.
func PolygonArea(poly []XY) float64 {
	if len(poly) < 3 {
		return 0
	}
	sum := 0.0
	for i := range poly {
		j := (i + 1) % len(poly)
		sum += poly[i].X*poly[j].Y - poly[j].X*poly[i].Y
	}
	return math.Abs(sum) / 2
}

// HullArea projects the geographic points with proj and returns the
// area of their convex hull in square miles.
func HullArea(proj *Albers, pts []Point) float64 {
	xys := make([]XY, len(pts))
	for i, p := range pts {
		x, y := proj.Project(p)
		xys[i] = XY{x, y}
	}
	return PolygonArea(ConvexHull(xys))
}

// InHull reports whether q lies inside (or on the boundary of) the
// convex hull, which must be in counter-clockwise order as returned by
// ConvexHull.
func InHull(hull []XY, q XY) bool {
	if len(hull) < 3 {
		// A segment or point: containment means exact incidence,
		// which is not useful for measurement purposes.
		for _, p := range hull {
			if p == q {
				return true
			}
		}
		return false
	}
	for i := range hull {
		j := (i + 1) % len(hull)
		cross := (hull[j].X-hull[i].X)*(q.Y-hull[i].Y) - (hull[j].Y-hull[i].Y)*(q.X-hull[i].X)
		if cross < 0 {
			return false
		}
	}
	return true
}
