package geo

// Region is a latitude/longitude bounding box. The paper delineates all
// of its study regions with simple latitude/longitude boundaries
// (footnote 2), so a box is the exact primitive needed. A Region never
// crosses the antimeridian (none of the paper's regions do).
type Region struct {
	Name  string
	North float64 // northern boundary, degrees latitude
	South float64 // southern boundary
	West  float64 // western boundary, degrees longitude
	East  float64 // eastern boundary
}

// Contains reports whether the point lies within the region
// (inclusive south/west edges, exclusive north/east edges, so adjacent
// regions partition points without double counting).
func (r Region) Contains(p Point) bool {
	return p.Lat >= r.South && p.Lat < r.North && p.Lon >= r.West && p.Lon < r.East
}

// Center returns the centre of the box.
func (r Region) Center() Point {
	return Point{Lat: (r.North + r.South) / 2, Lon: (r.East + r.West) / 2}
}

// WidthDeg and HeightDeg return the longitudinal and latitudinal extent
// in degrees.
func (r Region) WidthDeg() float64  { return r.East - r.West }
func (r Region) HeightDeg() float64 { return r.North - r.South }

// MaxSpanMiles returns the great-circle distance between opposite
// corners of the region — the natural upper bound for link-length
// binning within the region.
func (r Region) MaxSpanMiles() float64 {
	return DistanceMiles(Point{r.South, r.West}, Point{r.North, r.East})
}

// The three analysis regions of Table II. These boundaries are copied
// verbatim from the paper.
var (
	// US: 50N–25N, 150W–45W.
	US = Region{Name: "US", North: 50, South: 25, West: -150, East: -45}
	// Europe: 58N–42N, 5W–22E.
	Europe = Region{Name: "Europe", North: 58, South: 42, West: -5, East: 22}
	// Japan: 60N–30N, 130E–150E.
	Japan = Region{Name: "Japan", North: 60, South: 30, West: 130, East: 150}
)

// The homogeneity-test regions of Figure 3 / Table IV. The US box is
// split along 37.5N into northern and southern halves; the Central
// America box sits below it.
var (
	NorthernUS     = Region{Name: "Northern US", North: 50, South: 37.5, West: -150, East: -45}
	SouthernUS     = Region{Name: "Southern US", North: 37.5, South: 25, West: -150, East: -45}
	CentralAmerica = Region{Name: "Central Am.", North: 25, South: 7, West: -118, East: -77}
)

// World covers the whole globe.
var World = Region{Name: "World", North: 90.0001, South: -90, West: -180, East: 180.0001}

// The economic survey regions of Table III. Names are approximate, as
// in the paper ("we are not working with precise political boundaries").
var (
	// Africa's eastern edge stops at 44E so the box excludes the
	// Arabian peninsula (a box cannot follow the Red Sea; the paper
	// accepts the same kind of imprecision).
	Africa       = Region{Name: "Africa", North: 37, South: -35, West: -18, East: 44}
	SouthAmerica = Region{Name: "South America", North: 13, South: -56, West: -82, East: -34}
	// Mexico in Table III uses the same box as Central America in
	// Table IV (both report a population of 154M).
	Mexico = Region{Name: "Mexico", North: 25, South: 7, West: -118, East: -77}
	// W. Europe's southern edge at 37N keeps the North African coast
	// in the Africa box; the two boxes tile without overlap.
	WesternEurope = Region{Name: "W. Europe", North: 60, South: 37, West: -10, East: 25}
	// Japan's western edge at 129.5E keeps Busan (Korea) out.
	JapanEcon = Region{Name: "Japan", North: 46, South: 30, West: 129.5, East: 146}
	Australia = Region{Name: "Australia", North: -10, South: -44, West: 112, East: 154}
	// USA reuses the Table II analysis box (which includes southern
	// Canada); its population target is normalised to the Table III row.
	USAEcon = Region{Name: "USA", North: 50, South: 25, West: -150, East: -45}
)

// AnalysisRegions are the per-region panels used by Figures 2, 4, 5, 6
// and Tables V, VI.
func AnalysisRegions() []Region { return []Region{US, Europe, Japan} }

// SurveyRegions are the rows of Table III, in the paper's order
// (World last).
func SurveyRegions() []Region {
	return []Region{Africa, SouthAmerica, Mexico, WesternEurope, JapanEcon, Australia, USAEcon, World}
}

// HomogeneityRegions are the rows of Table IV.
func HomogeneityRegions() []Region {
	return []Region{NorthernUS, SouthernUS, CentralAmerica}
}
