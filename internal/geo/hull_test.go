package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

func TestConvexHullSquare(t *testing.T) {
	pts := []XY{{0, 0}, {1, 0}, {1, 1}, {0, 1}, {0.5, 0.5}, {0.2, 0.8}}
	hull := ConvexHull(pts)
	if len(hull) != 4 {
		t.Fatalf("hull of square+interior = %d vertices, want 4: %v", len(hull), hull)
	}
	if got := PolygonArea(hull); math.Abs(got-1) > 1e-12 {
		t.Errorf("square hull area = %v, want 1", got)
	}
}

func TestConvexHullDegenerate(t *testing.T) {
	if got := ConvexHull(nil); len(got) != 0 {
		t.Errorf("hull of empty set = %v", got)
	}
	if got := ConvexHull([]XY{{1, 2}}); len(got) != 1 {
		t.Errorf("hull of single point = %v", got)
	}
	two := ConvexHull([]XY{{0, 0}, {3, 4}})
	if len(two) != 2 {
		t.Errorf("hull of two points = %v", two)
	}
	if PolygonArea(two) != 0 {
		t.Error("segment must have zero area")
	}
	// Collinear points: hull is the two extreme points.
	col := ConvexHull([]XY{{0, 0}, {1, 1}, {2, 2}, {3, 3}})
	if PolygonArea(col) != 0 {
		t.Errorf("collinear point area = %v, want 0", PolygonArea(col))
	}
}

func TestConvexHullDuplicates(t *testing.T) {
	pts := []XY{{0, 0}, {0, 0}, {1, 0}, {1, 0}, {0.5, 1}, {0.5, 1}}
	hull := ConvexHull(pts)
	if len(hull) != 3 {
		t.Fatalf("hull with duplicates = %d vertices, want 3", len(hull))
	}
	if got := PolygonArea(hull); math.Abs(got-0.5) > 1e-12 {
		t.Errorf("triangle area = %v, want 0.5", got)
	}
}

func TestConvexHullContainsAllPoints(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(200)
		pts := make([]XY, n)
		for i := range pts {
			pts[i] = XY{rng.Float64() * 100, rng.Float64() * 100}
		}
		hull := ConvexHull(pts)
		if len(hull) < 3 {
			continue
		}
		for _, p := range pts {
			if !InHull(hull, p) {
				t.Fatalf("point %v outside its own hull %v", p, hull)
			}
		}
	}
}

func TestConvexHullIdempotent(t *testing.T) {
	rng := rand.New(rand.NewSource(22))
	pts := make([]XY, 100)
	for i := range pts {
		pts[i] = XY{rng.NormFloat64() * 50, rng.NormFloat64() * 50}
	}
	h1 := ConvexHull(pts)
	h2 := ConvexHull(h1)
	if PolygonArea(h1) != PolygonArea(h2) {
		t.Errorf("hull of hull changed area: %v vs %v", PolygonArea(h1), PolygonArea(h2))
	}
	if len(h2) != len(h1) {
		t.Errorf("hull of hull changed vertex count: %d vs %d", len(h1), len(h2))
	}
}

func TestConvexHullAreaMonotoneUnderInsertion(t *testing.T) {
	// Adding points can never shrink the hull area.
	rng := rand.New(rand.NewSource(23))
	pts := make([]XY, 0, 120)
	prev := 0.0
	for i := 0; i < 120; i++ {
		pts = append(pts, XY{rng.Float64() * 1000, rng.Float64() * 1000})
		area := PolygonArea(ConvexHull(pts))
		if area < prev-1e-9 {
			t.Fatalf("hull area shrank from %v to %v after adding a point", prev, area)
		}
		prev = area
	}
}

func TestPolygonAreaOrientationInvariant(t *testing.T) {
	ccw := []XY{{0, 0}, {4, 0}, {4, 3}, {0, 3}}
	cw := []XY{{0, 0}, {0, 3}, {4, 3}, {4, 0}}
	if a, b := PolygonArea(ccw), PolygonArea(cw); a != b || a != 12 {
		t.Errorf("areas = %v, %v; want 12, 12", a, b)
	}
}

func TestHullAreaUSRegionScale(t *testing.T) {
	// A hull spanning the continental US should be on the order of
	// millions of square miles (Figure 9(b) x-axis runs to 5e6).
	proj := RegionAlbers(US)
	pts := []Point{
		Pt(47.6, -122.3),  // Seattle
		Pt(34.05, -118.2), // LA
		Pt(25.8, -80.2),   // Miami
		Pt(42.4, -71.1),   // Boston
		Pt(41.9, -87.6),   // Chicago
	}
	area := HullArea(proj, pts)
	if area < 1e6 || area > 4e6 {
		t.Errorf("US-spanning hull area = %g sq mi, want ~2e6", area)
	}
}

func TestHullAreaSingleCityIsZero(t *testing.T) {
	proj := WorldAlbers()
	pts := []Point{nyc, nyc, nyc}
	if got := HullArea(proj, pts); got != 0 {
		t.Errorf("single-location hull area = %v, want 0", got)
	}
}

func TestAlbersRoundTrip(t *testing.T) {
	proj := WorldAlbers()
	f := func(lat, lon float64) bool {
		p := Pt(clampLat(lat)*0.9, clampLon(lon)*0.98) // stay off poles/antimeridian
		x, y := proj.Project(p)
		q := proj.Unproject(x, y)
		return math.Abs(p.Lat-q.Lat) < 1e-6 && math.Abs(p.Lon-q.Lon) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestAlbersEqualArea(t *testing.T) {
	// The projection must (approximately) preserve areas: a 1-degree
	// cell at 45N and one at 10N enclose different ground areas, and
	// the projected areas must match spherical ground truth within 1%.
	proj := WorldAlbers()
	cellArea := func(lat, lon float64) float64 {
		corners := []Point{
			Pt(lat, lon), Pt(lat, lon+1), Pt(lat+1, lon+1), Pt(lat+1, lon),
		}
		poly := make([]XY, len(corners))
		for i, c := range corners {
			x, y := proj.Project(c)
			poly[i] = XY{x, y}
		}
		return PolygonArea(poly)
	}
	sphericalArea := func(lat float64) float64 {
		// Area of a 1x1 degree cell on a sphere.
		r := EarthRadiusMiles
		return r * r * (math.Pi / 180) * math.Abs(math.Sin(deg2rad(lat+1))-math.Sin(deg2rad(lat)))
	}
	for _, lat := range []float64{10, 45, -30, 60} {
		got := cellArea(lat, 20)
		want := sphericalArea(lat)
		if math.Abs(got-want)/want > 0.01 {
			t.Errorf("cell area at lat %v = %f, want %f (±1%%)", lat, got, want)
		}
	}
}

func TestAlbersDateLineUnfold(t *testing.T) {
	// Points just either side of the date line must project far apart
	// (the globe is "unfolded at the International Date Line").
	proj := WorldAlbers()
	x1, _ := proj.Project(Pt(0, 179.9))
	x2, _ := proj.Project(Pt(0, -179.9))
	if math.Abs(x1-x2) < 1000 {
		t.Errorf("date-line points project %f mi apart in x; expected a large unfold gap", math.Abs(x1-x2))
	}
}

func TestRegionAlbersLowDistortionDistances(t *testing.T) {
	// Within the tuned region, planar distance should approximate
	// great-circle distance to within a few percent.
	proj := RegionAlbers(US)
	rng := rand.New(rand.NewSource(31))
	for i := 0; i < 200; i++ {
		a := Pt(25+rng.Float64()*25, -125+rng.Float64()*55)
		b := Pt(25+rng.Float64()*25, -125+rng.Float64()*55)
		ax, ay := proj.Project(a)
		bx, by := proj.Project(b)
		planar := math.Hypot(ax-bx, ay-by)
		sphere := DistanceMiles(a, b)
		if sphere > 100 && math.Abs(planar-sphere)/sphere > 0.05 {
			t.Fatalf("planar %f vs great-circle %f for %v-%v", planar, sphere, a, b)
		}
	}
}

func TestBoxCountDimensionLine(t *testing.T) {
	// Points along a line have dimension ~1.
	var pts []Point
	for i := 0; i < 4000; i++ {
		f := float64(i) / 4000
		pts = append(pts, Pt(30+f*15, -120+f*60))
	}
	res := BoxCountDimension(pts, US, 7)
	if res.Dimension < 0.85 || res.Dimension > 1.15 {
		t.Errorf("line dimension = %f, want ~1", res.Dimension)
	}
}

func TestBoxCountDimensionPlane(t *testing.T) {
	// Uniform points in the box have dimension ~2.
	rng := rand.New(rand.NewSource(41))
	var pts []Point
	for i := 0; i < 60000; i++ {
		pts = append(pts, Pt(25+rng.Float64()*25, -150+rng.Float64()*105))
	}
	res := BoxCountDimension(pts, US, 6)
	if res.Dimension < 1.75 || res.Dimension > 2.1 {
		t.Errorf("plane dimension = %f, want ~2", res.Dimension)
	}
}

func TestDistinctLocations(t *testing.T) {
	pts := []Point{nyc, nyc, Pt(40.7129, -74.0061), la, london}
	if got := DistinctLocations(pts); got != 3 {
		t.Errorf("DistinctLocations = %d, want 3", got)
	}
	uniq := UniqueLocations(pts)
	if len(uniq) != 3 {
		t.Errorf("UniqueLocations = %d entries, want 3", len(uniq))
	}
}
