package geo

import (
	"math"
	"math/rand"
	"testing"
	"testing/quick"
)

var (
	nyc    = Pt(40.7128, -74.0060)
	la     = Pt(34.0522, -118.2437)
	london = Pt(51.5074, -0.1278)
	tokyo  = Pt(35.6762, 139.6503)
	sydney = Pt(-33.8688, 151.2093)
)

func TestDistanceKnownPairs(t *testing.T) {
	cases := []struct {
		a, b Point
		want float64 // statute miles
		tol  float64
	}{
		{nyc, la, 2445, 20},
		{nyc, london, 3461, 30},
		{tokyo, sydney, 4863, 50},
		{nyc, nyc, 0, 1e-9},
	}
	for _, c := range cases {
		got := DistanceMiles(c.a, c.b)
		if math.Abs(got-c.want) > c.tol {
			t.Errorf("DistanceMiles(%v, %v) = %.1f, want %.1f ± %.0f", c.a, c.b, got, c.want, c.tol)
		}
	}
}

func TestDistanceSymmetry(t *testing.T) {
	f := func(lat1, lon1, lat2, lon2 float64) bool {
		a := Pt(clampLat(lat1), clampLon(lon1))
		b := Pt(clampLat(lat2), clampLon(lon2))
		d1 := DistanceMiles(a, b)
		d2 := DistanceMiles(b, a)
		return math.Abs(d1-d2) < 1e-9
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDistanceTriangleInequality(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for i := 0; i < 500; i++ {
		a := randPoint(rng)
		b := randPoint(rng)
		c := randPoint(rng)
		ab := DistanceMiles(a, b)
		bc := DistanceMiles(b, c)
		ac := DistanceMiles(a, c)
		if ac > ab+bc+1e-6 {
			t.Fatalf("triangle inequality violated: d(%v,%v)=%f > %f+%f", a, c, ac, ab, bc)
		}
	}
}

func TestDistanceNonNegativeAndIdentity(t *testing.T) {
	f := func(lat1, lon1 float64) bool {
		p := Pt(clampLat(lat1), clampLon(lon1))
		return DistanceMiles(p, p) == 0
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestDestinationRoundTrip(t *testing.T) {
	rng := rand.New(rand.NewSource(11))
	for i := 0; i < 300; i++ {
		p := Pt(rng.Float64()*120-60, rng.Float64()*340-170)
		dist := rng.Float64() * 500
		brg := rng.Float64() * 360
		q := Destination(p, brg, dist)
		got := DistanceMiles(p, q)
		if math.Abs(got-dist) > 0.5 {
			t.Fatalf("Destination(%v, %f, %f): distance back = %f", p, brg, dist, got)
		}
	}
}

func TestMidpoint(t *testing.T) {
	m := Midpoint(nyc, la)
	d1 := DistanceMiles(nyc, m)
	d2 := DistanceMiles(m, la)
	if math.Abs(d1-d2) > 1 {
		t.Errorf("midpoint not equidistant: %f vs %f", d1, d2)
	}
}

func TestPointKeyQuantisation(t *testing.T) {
	a := Pt(40.71284, -74.00601)
	b := Pt(40.71280, -74.00597) // same 1/100-degree cell
	if a.Key() != b.Key() {
		t.Errorf("nearby points should share a location key: %v vs %v", a.Key(), b.Key())
	}
	c := Pt(40.7328, -74.0060)
	if a.Key() == c.Key() {
		t.Errorf("distinct cells should not collide")
	}
}

func TestPointValid(t *testing.T) {
	if !nyc.Valid() {
		t.Error("nyc should be valid")
	}
	if Pt(91, 0).Valid() || Pt(0, 181).Valid() || Pt(-95, 10).Valid() {
		t.Error("out-of-range points should be invalid")
	}
}

func TestRegionBoundariesMatchPaperTableII(t *testing.T) {
	// Table II of the paper, verbatim.
	if US.North != 50 || US.South != 25 || US.West != -150 || US.East != -45 {
		t.Errorf("US region = %+v, want Table II boundaries", US)
	}
	if Europe.North != 58 || Europe.South != 42 || Europe.West != -5 || Europe.East != 22 {
		t.Errorf("Europe region = %+v, want Table II boundaries", Europe)
	}
	if Japan.North != 60 || Japan.South != 30 || Japan.West != 130 || Japan.East != 150 {
		t.Errorf("Japan region = %+v, want Table II boundaries", Japan)
	}
}

func TestRegionContains(t *testing.T) {
	cases := []struct {
		r    Region
		p    Point
		want bool
	}{
		{US, nyc, true},
		{US, la, true},
		{US, london, false},
		{Europe, london, true},
		{Europe, tokyo, false},
		{Japan, tokyo, true},
		{Japan, sydney, false},
		{World, sydney, true},
		{World, Pt(90, 0), true},
		{Australia, sydney, true},
	}
	for _, c := range cases {
		if got := c.r.Contains(c.p); got != c.want {
			t.Errorf("%s.Contains(%v) = %v, want %v", c.r.Name, c.p, got, c.want)
		}
	}
}

func TestHomogeneityRegionsPartitionUS(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for i := 0; i < 2000; i++ {
		p := Pt(25+rng.Float64()*25, -150+rng.Float64()*105)
		if !US.Contains(p) {
			t.Fatalf("generated point outside US: %v", p)
		}
		n := NorthernUS.Contains(p)
		s := SouthernUS.Contains(p)
		if n == s {
			t.Fatalf("point %v in both or neither US half (north=%v south=%v)", p, n, s)
		}
	}
}

func TestWorldContainsEverything(t *testing.T) {
	f := func(lat, lon float64) bool {
		return World.Contains(Pt(clampLat(lat), clampLon(lon)))
	}
	if err := quick.Check(f, nil); err != nil {
		t.Error(err)
	}
}

func TestRegionMaxSpan(t *testing.T) {
	if got := US.MaxSpanMiles(); got < 4000 || got > 8000 {
		t.Errorf("US diagonal = %f mi, outside sanity range", got)
	}
	if eu, jp := Europe.MaxSpanMiles(), Japan.MaxSpanMiles(); eu > US.MaxSpanMiles() || jp > US.MaxSpanMiles() {
		t.Errorf("Europe (%f) and Japan (%f) should be smaller than US", eu, jp)
	}
}

func clampLat(v float64) float64 {
	return math.Mod(math.Abs(v), 180) - 90
}

func clampLon(v float64) float64 {
	return math.Mod(math.Abs(v), 360) - 180
}

func randPoint(rng *rand.Rand) Point {
	return Pt(rng.Float64()*180-90, rng.Float64()*360-180)
}
