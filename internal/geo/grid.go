package geo

import (
	"fmt"

	"geonet/internal/parallel"
)

// PatchGrid subdivides a Region into patches of a fixed angular size,
// as in Section IV-B of the paper: "we subdivided each region into
// patches of size 75 arc-minutes x 75 arc-minutes". Patch indices are
// row-major from the south-west corner.
type PatchGrid struct {
	Region Region
	ArcMin float64 // patch edge length in arc-minutes

	deg  float64 // patch edge length in degrees
	cols int
	rows int
}

// NewPatchGrid builds a grid over region with square patches of the
// given size in arc-minutes. The paper uses 75 arc-minutes (~90 miles
// on a side at the latitudes studied).
func NewPatchGrid(region Region, arcMin float64) *PatchGrid {
	if arcMin <= 0 {
		panic(fmt.Sprintf("geo: non-positive patch size %v", arcMin))
	}
	deg := arcMin / 60
	cols := int(region.WidthDeg()/deg) + 1
	rows := int(region.HeightDeg()/deg) + 1
	return &PatchGrid{Region: region, ArcMin: arcMin, deg: deg, cols: cols, rows: rows}
}

// Cells returns the total number of patches in the grid.
func (g *PatchGrid) Cells() int { return g.cols * g.rows }

// Cols and Rows return the grid dimensions.
func (g *PatchGrid) Cols() int { return g.cols }
func (g *PatchGrid) Rows() int { return g.rows }

// Index returns the patch index for a point, or -1 if the point lies
// outside the region.
func (g *PatchGrid) Index(p Point) int {
	if !g.Region.Contains(p) {
		return -1
	}
	col := int((p.Lon - g.Region.West) / g.deg)
	row := int((p.Lat - g.Region.South) / g.deg)
	if col >= g.cols {
		col = g.cols - 1
	}
	if row >= g.rows {
		row = g.rows - 1
	}
	return row*g.cols + col
}

// Center returns the centre point of the patch with the given index.
func (g *PatchGrid) Center(idx int) Point {
	row := idx / g.cols
	col := idx % g.cols
	return Point{
		Lat: g.Region.South + (float64(row)+0.5)*g.deg,
		Lon: g.Region.West + (float64(col)+0.5)*g.deg,
	}
}

// tallyParallelMin is the point count below which the fan-out costs
// more than the scan.
const tallyParallelMin = 1 << 14

// Tally accumulates a count per patch for the given points, returning a
// slice of length Cells(). Points outside the region are ignored. Large
// point sets are tallied in fixed chunks with per-chunk count arrays
// summed in chunk order; counts are integers, so the result is exact at
// any parallelism.
func (g *PatchGrid) Tally(points []Point) []float64 {
	if len(points) < tallyParallelMin {
		counts := make([]float64, g.Cells())
		g.tallyRange(points, counts)
		return counts
	}
	chunks := parallel.Chunks(len(points), 64)
	return parallel.Reduce(parallel.Workers(0), len(chunks),
		func(c int) []float64 {
			counts := make([]float64, g.Cells())
			g.tallyRange(points[chunks[c][0]:chunks[c][1]], counts)
			return counts
		},
		parallel.SumFloats)
}

func (g *PatchGrid) tallyRange(points []Point, counts []float64) {
	for _, p := range points {
		if i := g.Index(p); i >= 0 {
			counts[i]++
		}
	}
}

// TallyWeighted accumulates weights per patch.
func (g *PatchGrid) TallyWeighted(points []Point, weights []float64) []float64 {
	if len(points) != len(weights) {
		panic("geo: points/weights length mismatch")
	}
	counts := make([]float64, g.Cells())
	for i, p := range points {
		if idx := g.Index(p); idx >= 0 {
			counts[idx] += weights[i]
		}
	}
	return counts
}
