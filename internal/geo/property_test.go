package geo

import (
	"math"
	"testing"

	"geonet/internal/rng"
)

// Property tests for the geographic kernels, driven by internal/rng so
// every run draws the same reproducible point clouds.

func streamPoint(s *rng.Stream) Point {
	return Pt(s.Float64()*180-90, s.Float64()*360-180)
}

func streamPointIn(s *rng.Stream, r Region) Point {
	return Pt(r.South+s.Float64()*(r.North-r.South),
		r.West+s.Float64()*(r.East-r.West))
}

func TestHaversineProperties(t *testing.T) {
	s := rng.New(20260730)
	const trials = 5000
	halfCircumference := math.Pi * EarthRadiusMiles
	for i := 0; i < trials; i++ {
		a, b, c := streamPoint(s), streamPoint(s), streamPoint(s)

		// Identity: zero distance to itself.
		if d := DistanceMiles(a, a); d != 0 {
			t.Fatalf("d(a,a) = %v for %v, want 0", d, a)
		}

		// Symmetry within floating-point noise.
		ab, ba := DistanceMiles(a, b), DistanceMiles(b, a)
		if diff := math.Abs(ab - ba); diff > 1e-9*(1+ab) {
			t.Fatalf("asymmetric: d(%v,%v)=%v but d(b,a)=%v", a, b, ab, ba)
		}

		// Range: a great-circle distance is bounded by half the
		// circumference.
		if ab < 0 || ab > halfCircumference+1e-6 {
			t.Fatalf("d(%v,%v) = %v out of [0, %v]", a, b, ab, halfCircumference)
		}

		// Triangle inequality (haversine is a metric on the sphere).
		ac, bc := DistanceMiles(a, c), DistanceMiles(b, c)
		if ac > ab+bc+1e-6 {
			t.Fatalf("triangle violated: d(a,c)=%v > d(a,b)+d(b,c)=%v for %v %v %v",
				ac, ab+bc, a, b, c)
		}
	}
}

func TestDestinationInvertsDistance(t *testing.T) {
	s := rng.New(42)
	for i := 0; i < 2000; i++ {
		// Stay off the poles, where bearings degenerate.
		p := Pt(s.Float64()*160-80, s.Float64()*360-180)
		dist := s.Float64() * 500
		q := Destination(p, s.Float64()*360, dist)
		if got := DistanceMiles(p, q); math.Abs(got-dist) > 1e-6*(1+dist) {
			t.Fatalf("Destination moved %v miles, want %v (from %v)", got, dist, p)
		}
	}
}

// TestAlbersRoundTripRegions extends the world-projection round-trip
// check in hull_test.go to every region-tuned projection, with the
// point clouds drawn from internal/rng so failures replay exactly.
func TestAlbersRoundTripRegions(t *testing.T) {
	s := rng.New(7)
	cases := []struct {
		name string
		proj *Albers
		draw func() Point
	}{
		{"world", WorldAlbers(), func() Point {
			// The projection's usable band; the extreme polar caps
			// magnify rounding but hold no Internet infrastructure.
			return Pt(s.Float64()*170-85, s.Float64()*360-180)
		}},
		{"us", RegionAlbers(US), func() Point { return streamPointIn(s, US) }},
		{"europe", RegionAlbers(Europe), func() Point { return streamPointIn(s, Europe) }},
		{"japan", RegionAlbers(Japan), func() Point { return streamPointIn(s, Japan) }},
	}
	for _, c := range cases {
		for i := 0; i < 2000; i++ {
			p := c.draw()
			x, y := c.proj.Project(p)
			q := c.proj.Unproject(x, y)
			dLat := math.Abs(q.Lat - p.Lat)
			// Compare longitudes as angles: ±180 is one meridian.
			dLon := math.Abs(math.Mod(q.Lon-p.Lon+540, 360) - 180)
			if dLat > 1e-6 || dLon > 1e-6 {
				t.Fatalf("%s: round trip moved %v -> %v (dLat %g, dLon %g)", c.name, p, q, dLat, dLon)
			}
		}
	}
}
