package geo

import (
	"math/rand"
	"testing"
)

func TestPatchGridDimensions(t *testing.T) {
	g := NewPatchGrid(US, 75)
	// US box is 105 degrees wide, 25 tall; 75 arcmin = 1.25 degrees.
	if g.Cols() != 85 || g.Rows() != 21 {
		t.Errorf("US 75' grid = %dx%d, want 85x21", g.Cols(), g.Rows())
	}
	if g.Cells() != g.Cols()*g.Rows() {
		t.Errorf("Cells() inconsistent")
	}
}

func TestPatchGridPatchSizeAboutNinetyMiles(t *testing.T) {
	// The paper notes 75' patches are "about 90 miles on a side" at the
	// latitudes studied. Check the edge length of a patch at 40N.
	g := NewPatchGrid(US, 75)
	idx := g.Index(Pt(40, -100))
	c := g.Center(idx)
	east := Pt(c.Lat, c.Lon+g.deg)
	north := Pt(c.Lat+g.deg, c.Lon)
	ew := DistanceMiles(c, east)
	ns := DistanceMiles(c, north)
	if ns < 80 || ns > 95 {
		t.Errorf("N-S patch edge = %f mi, want ~86", ns)
	}
	if ew < 60 || ew > 80 {
		t.Errorf("E-W patch edge at 40N = %f mi, want ~66", ew)
	}
}

func TestPatchGridIndexRoundTrip(t *testing.T) {
	g := NewPatchGrid(Europe, 75)
	rng := rand.New(rand.NewSource(5))
	for i := 0; i < 2000; i++ {
		p := Pt(42+rng.Float64()*16, -5+rng.Float64()*27)
		idx := g.Index(p)
		if idx < 0 || idx >= g.Cells() {
			t.Fatalf("index out of range for in-region point %v: %d", p, idx)
		}
		c := g.Center(idx)
		if g.Index(c) != idx {
			t.Fatalf("centre of patch %d indexes to %d", idx, g.Index(c))
		}
	}
}

func TestPatchGridOutside(t *testing.T) {
	g := NewPatchGrid(Japan, 75)
	if g.Index(Pt(40, -100)) != -1 {
		t.Error("point outside region should index to -1")
	}
}

func TestPatchGridTallyConservation(t *testing.T) {
	g := NewPatchGrid(US, 75)
	rng := rand.New(rand.NewSource(9))
	var pts []Point
	inside := 0
	for i := 0; i < 5000; i++ {
		p := randPoint(rng)
		pts = append(pts, p)
		if US.Contains(p) {
			inside++
		}
	}
	counts := g.Tally(pts)
	total := 0.0
	for _, c := range counts {
		if c < 0 {
			t.Fatal("negative count")
		}
		total += c
	}
	if int(total) != inside {
		t.Errorf("tally total = %v, want %d (points inside region)", total, inside)
	}
}

func TestPatchGridTallyWeighted(t *testing.T) {
	g := NewPatchGrid(US, 75)
	pts := []Point{Pt(40, -100), Pt(40, -100), Pt(35, -90)}
	w := []float64{2.5, 1.5, 3}
	counts := g.TallyWeighted(pts, w)
	if got := counts[g.Index(Pt(40, -100))]; got != 4 {
		t.Errorf("weighted tally = %v, want 4", got)
	}
	if got := counts[g.Index(Pt(35, -90))]; got != 3 {
		t.Errorf("weighted tally = %v, want 3", got)
	}
}

func TestPatchGridPanicsOnBadSize(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("expected panic for non-positive patch size")
		}
	}()
	NewPatchGrid(US, 0)
}
