// Package geo provides the geographic primitives used throughout the
// reproduction: latitude/longitude points, great-circle distances in
// statute miles, the latitude/longitude bounding regions studied by the
// paper (Tables II and IV), arc-minute patch grids (Section IV-B), an
// Albers equal-area projection (Section VI-B), planar convex hulls, and
// box-counting fractal dimension estimation (Section II).
//
// Distances are in statute miles everywhere, matching the units used in
// every figure and table of the paper.
package geo

import (
	"fmt"
	"math"
)

// EarthRadiusMiles is the mean Earth radius in statute miles.
const EarthRadiusMiles = 3958.7613

// Point is a geographic location in decimal degrees. Latitude is
// positive north, longitude positive east.
type Point struct {
	Lat float64
	Lon float64
}

// Pt is shorthand for constructing a Point.
func Pt(lat, lon float64) Point { return Point{Lat: lat, Lon: lon} }

// Valid reports whether the point lies in the conventional
// latitude/longitude ranges.
func (p Point) Valid() bool {
	return p.Lat >= -90 && p.Lat <= 90 && p.Lon >= -180 && p.Lon <= 180
}

// String renders the point as "lat,lon" with 4 decimal places
// (roughly 11 m of precision, far below city granularity).
func (p Point) String() string {
	return fmt.Sprintf("%.4f,%.4f", p.Lat, p.Lon)
}

// Key returns a coarse quantised form of the point usable as a map key
// for "distinct location" counting. The paper counts distinct locations
// at the granularity its mappers emit (city centres); quantising to
// 1/100 degree (~0.7 mi) preserves that distinction while tolerating
// floating-point noise.
func (p Point) Key() LocKey {
	return LocKey{
		Lat: int32(math.Round(p.Lat * 100)),
		Lon: int32(math.Round(p.Lon * 100)),
	}
}

// LocKey is a quantised location identity (1/100-degree cells).
type LocKey struct {
	Lat int32
	Lon int32
}

// Point returns the centre of the quantised cell.
func (k LocKey) Point() Point {
	return Point{Lat: float64(k.Lat) / 100, Lon: float64(k.Lon) / 100}
}

func deg2rad(d float64) float64 { return d * math.Pi / 180 }
func rad2deg(r float64) float64 { return r * 180 / math.Pi }

// DistanceMiles returns the great-circle distance between two points in
// statute miles, computed with the haversine formula (numerically stable
// for the small separations that dominate link lengths).
func DistanceMiles(a, b Point) float64 {
	lat1 := deg2rad(a.Lat)
	lat2 := deg2rad(b.Lat)
	dLat := lat2 - lat1
	dLon := deg2rad(b.Lon - a.Lon)

	s1 := math.Sin(dLat / 2)
	s2 := math.Sin(dLon / 2)
	h := s1*s1 + math.Cos(lat1)*math.Cos(lat2)*s2*s2
	if h > 1 {
		h = 1
	}
	return 2 * EarthRadiusMiles * math.Asin(math.Sqrt(h))
}

// Destination returns the point reached by travelling dist miles from p
// along the given initial bearing (degrees clockwise from north). Used
// to jitter router locations around city centres.
func Destination(p Point, bearingDeg, dist float64) Point {
	br := deg2rad(bearingDeg)
	lat1 := deg2rad(p.Lat)
	lon1 := deg2rad(p.Lon)
	ad := dist / EarthRadiusMiles

	lat2 := math.Asin(math.Sin(lat1)*math.Cos(ad) + math.Cos(lat1)*math.Sin(ad)*math.Cos(br))
	lon2 := lon1 + math.Atan2(
		math.Sin(br)*math.Sin(ad)*math.Cos(lat1),
		math.Cos(ad)-math.Sin(lat1)*math.Sin(lat2),
	)
	// Normalise longitude to [-180, 180).
	lonDeg := math.Mod(rad2deg(lon2)+540, 360) - 180
	return Point{Lat: rad2deg(lat2), Lon: lonDeg}
}

// Midpoint returns the great-circle midpoint of a and b.
func Midpoint(a, b Point) Point {
	lat1 := deg2rad(a.Lat)
	lon1 := deg2rad(a.Lon)
	lat2 := deg2rad(b.Lat)
	dLon := deg2rad(b.Lon - a.Lon)

	bx := math.Cos(lat2) * math.Cos(dLon)
	by := math.Cos(lat2) * math.Sin(dLon)
	lat3 := math.Atan2(math.Sin(lat1)+math.Sin(lat2),
		math.Sqrt((math.Cos(lat1)+bx)*(math.Cos(lat1)+bx)+by*by))
	lon3 := lon1 + math.Atan2(by, math.Cos(lat1)+bx)
	lonDeg := math.Mod(rad2deg(lon3)+540, 360) - 180
	return Point{Lat: rad2deg(lat3), Lon: lonDeg}
}
