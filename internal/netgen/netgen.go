// Package netgen generates the ground-truth synthetic Internet that
// substitutes for the real network the paper measured. It produces
// autonomous systems with long-tailed sizes, routers placed in
// population centres, distance-dependent intra-AS links plus a minority
// of distance-independent long-haul links, interdomain peering, CIDR
// address allocation, ISP hostname conventions, DNS LOC publication and
// whois registration.
//
// Everything downstream of this package — the probing tools, the
// geolocation mappers, the BGP tables, the analysis — sees only what
// real measurement tools see (addresses, hostnames, ICMP replies,
// routing tables). The generator's parameters are inputs; the paper's
// findings must be *re-measured* through that pipeline.
package netgen

import (
	"fmt"

	"geonet/internal/geo"
	"geonet/internal/population"
)

// Identifier types. Indices into the Internet's slices.
type (
	ASID     int32
	RouterID int32
	IfaceID  int32
	LinkID   int32
)

// None marks an absent identifier.
const None = -1

// ASType classifies an autonomous system's role in the hierarchy.
type ASType uint8

const (
	Tier1 ASType = iota // global backbone
	Transit
	Stub
)

func (t ASType) String() string {
	switch t {
	case Tier1:
		return "tier1"
	case Transit:
		return "transit"
	case Stub:
		return "stub"
	}
	return "unknown"
}

// Prefix is an IPv4 CIDR block.
type Prefix struct {
	Addr uint32
	Len  int
}

// Contains reports whether ip falls inside the prefix.
func (p Prefix) Contains(ip uint32) bool {
	if p.Len <= 0 {
		return true
	}
	mask := ^uint32(0) << (32 - uint(p.Len))
	return ip&mask == p.Addr&mask
}

// AS is a ground-truth autonomous system.
type AS struct {
	ID     ASID
	Number int // assigned AS number
	Type   ASType
	Econ   population.EconRegion
	// HomePlace indexes the World place hosting the AS headquarters.
	HomePlace int
	// Places are indices of World places where this AS has routers.
	Places  []int
	Routers []RouterID
	// Prefixes are the aggregates the AS originates in BGP.
	Prefixes []Prefix
	// Neighbors are the ASes this AS has interdomain links to.
	Neighbors []ASID

	// Naming and registration behaviour.
	Domain       string
	OrgName      string
	Scheme       NamingScheme
	PublishesLOC bool // publishes RFC 1876 LOC records
	IDSBlocks    bool // intrusion detection drops alias-resolution probes
}

// NamingScheme selects an ISP hostname convention.
type NamingScheme uint8

const (
	// SchemeSlotRoleCity produces names like
	// "so-5-2-0.xl1.nyc8.alter.net" (the paper's example).
	SchemeSlotRoleCity NamingScheme = iota
	// SchemeRoleDashCity produces "core3-lax.example.net".
	SchemeRoleDashCity
	// SchemeCityRole produces "nyc2-edge1.example.net".
	SchemeCityRole
	// SchemeCityName uses the full city name: "gw1.denver.example.net".
	SchemeCityName
	// SchemeOpaque embeds no geographic hint: "r1042.example.net".
	SchemeOpaque
)

// Router is a ground-truth router.
type Router struct {
	ID RouterID
	AS ASID
	// ASIndex is this router's position within its AS's Routers slice,
	// letting per-AS routing state use dense arrays.
	ASIndex int32
	Place   int // World place index
	Loc     geo.Point
	// Ifaces lists this router's interfaces (one per incident link,
	// plus possibly a host-facing stub).
	Ifaces []IfaceID
	// CanonicalIP is the source address used in ICMP Port Unreachable
	// replies — what Mercator's alias resolution keys on.
	CanonicalIP uint32
	// Unresponsive routers never send ICMP Time Exceeded ("*" hops).
	Unresponsive bool
	// BrokenAlias routers reply to UDP probes from the receiving
	// interface instead of the canonical address, defeating alias
	// resolution for them.
	BrokenAlias bool
}

// Iface is a ground-truth router interface.
type Iface struct {
	ID     IfaceID
	Router RouterID
	Link   LinkID // None for host-facing stub interfaces
	IP     uint32
	// Hostname is the PTR record content; empty when the ISP
	// registered no reverse DNS.
	Hostname string
	// Private marks a misconfigured RFC1918 address leaking into
	// traceroutes.
	Private bool
}

// Link is an undirected ground-truth link between two interfaces on
// different routers.
type Link struct {
	ID   LinkID
	A, B IfaceID
	// Inter marks an interdomain link (endpoints in different ASes).
	Inter bool
	// LengthMi is the great-circle distance between the two routers.
	LengthMi float64
}

// Internet is the complete ground truth.
//
// Routers are laid out in AS-partition order: each AS's routers occupy
// one contiguous ascending RouterID range (AS.Routers[k] ==
// AS.Routers[0]+k, with Router.ASIndex == k). Build constructs them
// that way, CheckASPartition verifies it, and netsim's compressed
// forwarding fabric relies on it to index per-AS state by
// RouterID-minus-base instead of through the Routers slice.
type Internet struct {
	World   *population.World
	ASes    []AS
	Routers []Router
	Ifaces  []Iface
	Links   []Link

	// ByIP resolves an interface address to its interface.
	ByIP map[uint32]IfaceID
	// Prefix24Router maps each allocated /24 (by its base address) to
	// the router that "homes" destinations probed inside it.
	Prefix24Router map[uint32]RouterID

	// SkitterMonitors are routers hosting Skitter monitors;
	// MercatorHost is the single router hosting the Mercator probe.
	SkitterMonitors []RouterID
	MercatorHost    RouterID
}

// CheckASPartition verifies the AS-partition ordering invariant: every
// AS's routers form one contiguous ascending RouterID range, with
// Router.AS and Router.ASIndex consistent, and every router owned by
// exactly one AS. Consumers that exploit the layout (netsim's CSR
// forwarding fabric) call this at compile time so a violated invariant
// fails loudly instead of corrupting routing.
func (in *Internet) CheckASPartition() error {
	owned := 0
	for ai := range in.ASes {
		rs := in.ASes[ai].Routers
		if len(rs) == 0 {
			continue
		}
		base := rs[0]
		for k, r := range rs {
			if r != base+RouterID(k) {
				return fmt.Errorf("netgen: AS %d routers not contiguous: Routers[%d] = %d, want %d",
					ai, k, r, base+RouterID(k))
			}
			if in.Routers[r].AS != ASID(ai) || in.Routers[r].ASIndex != int32(k) {
				return fmt.Errorf("netgen: router %d has AS %d index %d, want AS %d index %d",
					r, in.Routers[r].AS, in.Routers[r].ASIndex, ai, k)
			}
		}
		owned += len(rs)
	}
	if owned != len(in.Routers) {
		return fmt.Errorf("netgen: %d routers owned by ASes, %d exist", owned, len(in.Routers))
	}
	return nil
}

// RouterOf returns the router owning an interface.
func (in *Internet) RouterOf(i IfaceID) *Router { return &in.Routers[in.Ifaces[i].Router] }

// ASOf returns the AS owning a router.
func (in *Internet) ASOf(r RouterID) *AS { return &in.ASes[in.Routers[r].AS] }

// PeerIface returns the interface at the other end of an interface's
// link, or None for stub interfaces.
func (in *Internet) PeerIface(i IfaceID) IfaceID {
	l := in.Ifaces[i].Link
	if l == None {
		return None
	}
	link := in.Links[l]
	if link.A == i {
		return link.B
	}
	return link.A
}

// Config controls generation. The zero value is not valid; use
// DefaultConfig.
type Config struct {
	Seed int64
	// Scale multiplies the paper-derived regional interface budgets.
	// 1.0 would approximate the paper's 563k-interface Skitter world;
	// the default 0.1 builds a ~60k-interface world that runs the full
	// pipeline in seconds.
	Scale float64

	// MeanExtraLinksPerRouter adds redundancy beyond the spanning
	// attachment (average extra links per router).
	MeanExtraLinksPerRouter float64
	// DistanceIndependentFraction is the probability an extra link is
	// chosen uniformly (distance-independent) instead of by the
	// Waxman-style kernel — the paper measures 5-25% of links above
	// the distance-sensitivity limit (Table V).
	DistanceIndependentFraction float64
	// UniformPlacement, when true, ignores population when choosing AS
	// home places and when placing routers (the Waxman assumption the
	// paper refutes): every place of a region is equally attractive.
	// Used by the scenario-sweep ablations.
	UniformPlacement bool
	// ASCountFactor reshapes the AS size distribution without changing
	// the total router budget: the maximum AS size is divided by it, so
	// values > 1 split each region's budget into more, smaller ASes and
	// values < 1 concentrate it into fewer, larger ones. <= 0 means 1
	// (the default distribution).
	ASCountFactor float64

	// DecayMiles is the per-econ-region distance-preference decay
	// length for intra-AS link formation.
	DecayMiles map[population.EconRegion]float64

	// Behavioural fault rates.
	UnresponsiveRouterProb float64 // router never answers traceroute
	BrokenAliasProb        float64 // router defeats alias resolution
	PrivateAddrProb        float64 // interface leaks RFC1918 address
	NoPTRProb              float64 // interface has no hostname
	OpaqueNamingProb       float64 // AS uses geography-free names
	LOCPublishProb         float64 // AS publishes DNS LOC
	IDSBlockProb           float64 // AS drops alias probes

	// NumSkitterMonitors is how many Skitter monitors to place (the
	// paper's dataset unions 19).
	NumSkitterMonitors int
}

// DefaultConfig returns the configuration used throughout the
// reproduction.
func DefaultConfig() Config {
	return Config{
		Seed:                        1,
		Scale:                       0.1,
		MeanExtraLinksPerRouter:     0.55,
		DistanceIndependentFraction: 0.08,
		DecayMiles: map[population.EconRegion]float64{
			population.EconUSA:           140,
			population.EconWesternEurope: 80,
			population.EconJapan:         115,
			population.EconAfrica:        120,
			population.EconSouthAmerica:  120,
			population.EconMexico:        100,
			population.EconAustralia:     130,
			population.EconRestOfWorld:   110,
		},
		UnresponsiveRouterProb: 0.03,
		BrokenAliasProb:        0.08,
		PrivateAddrProb:        0.004,
		NoPTRProb:              0.05,
		OpaqueNamingProb:       0.15,
		LOCPublishProb:         0.10,
		IDSBlockProb:           0.15,
		NumSkitterMonitors:     19,
	}
}

// Validate checks a configuration for values that would generate a
// nonsensical world (zero scale, probabilities outside [0, 1],
// non-positive decay lengths). The scenario sweep calls it once per
// spec before launching pipelines, and core.Run calls it for explicit
// generator overrides, so a bad ablation axis fails fast instead of
// producing a silently degenerate topology.
func (c Config) Validate() error {
	if c.Scale <= 0 {
		return fmt.Errorf("netgen: scale must be positive, got %g", c.Scale)
	}
	if c.MeanExtraLinksPerRouter < 0 {
		return fmt.Errorf("netgen: mean extra links per router must be >= 0, got %g", c.MeanExtraLinksPerRouter)
	}
	probs := []struct {
		name string
		v    float64
	}{
		{"distance-independent fraction", c.DistanceIndependentFraction},
		{"unresponsive router prob", c.UnresponsiveRouterProb},
		{"broken alias prob", c.BrokenAliasProb},
		{"private addr prob", c.PrivateAddrProb},
		{"no-PTR prob", c.NoPTRProb},
		{"opaque naming prob", c.OpaqueNamingProb},
		{"LOC publish prob", c.LOCPublishProb},
		{"IDS block prob", c.IDSBlockProb},
	}
	for _, p := range probs {
		if p.v < 0 || p.v > 1 {
			return fmt.Errorf("netgen: %s must be in [0, 1], got %g", p.name, p.v)
		}
	}
	for econ, d := range c.DecayMiles {
		if d <= 0 {
			return fmt.Errorf("netgen: decay miles for %s must be positive, got %g", econ, d)
		}
	}
	if c.NumSkitterMonitors < 0 {
		return fmt.Errorf("netgen: skitter monitor count must be >= 0 (0 = default), got %d", c.NumSkitterMonitors)
	}
	if c.ASCountFactor < 0 {
		return fmt.Errorf("netgen: AS count factor must be >= 0 (0 = default), got %g", c.ASCountFactor)
	}
	return nil
}

// regionIfaceBudget returns the paper's Skitter interface counts per
// economic region (Table III, plus the Rest-of-World remainder implied
// by the World row), which Scale multiplies to size the ground truth.
// The 1.15 slack covers interfaces the probing tools will fail to
// discover or the mappers will fail to locate.
func regionIfaceBudget(scale float64) map[population.EconRegion]float64 {
	paper := map[population.EconRegion]float64{
		population.EconAfrica:        8379,
		population.EconSouthAmerica:  10131,
		population.EconMexico:        4361,
		population.EconWesternEurope: 95993,
		population.EconJapan:         37649,
		population.EconAustralia:     18277,
		population.EconUSA:           282048,
		population.EconRestOfWorld:   563521 - (8379 + 10131 + 4361 + 95993 + 37649 + 18277 + 282048),
	}
	out := make(map[population.EconRegion]float64, len(paper))
	for k, v := range paper {
		out[k] = v * scale * 1.15
	}
	return out
}
