package netgen

import (
	"math"
	"sort"

	"geonet/internal/population"
	"geonet/internal/rng"
)

// allocateAddresses hands each AS a contiguous, power-of-two-aligned
// run of /24 blocks sized to its interface count, assigns interface
// addresses sequentially within the run, and records the aggregate
// prefix the AS will originate in BGP. Each /24 is "homed" on a router
// so probes to arbitrary addresses inside allocated space have a
// destination (the end hosts the Skitter destination lists aim at).
func (b *builder) allocateAddresses(s *rng.Stream) {
	next := uint32(4) << 24 // start at 4.0.0.0, clear of reserved space
	for ai := range b.in.ASes {
		as := &b.in.ASes[ai]
		// Collect interfaces grouped by place, one group per PoP. Real
		// ISPs allocate at least a /24 per PoP, so every /24 is
		// geographically coherent — which is what makes per-prefix
		// geography feeds (EdgeScape) meaningful at all.
		var groups [][]IfaceID
		for _, pi := range as.Places {
			var g []IfaceID
			for _, rid := range b.routersByASPlace[ai][pi] {
				g = append(g, b.in.Routers[rid].Ifaces...)
			}
			if len(g) > 0 {
				groups = append(groups, g)
			}
		}
		if len(groups) == 0 && len(as.Routers) > 0 {
			var g []IfaceID
			for _, rid := range as.Routers {
				g = append(g, b.in.Routers[rid].Ifaces...)
			}
			groups = append(groups, g)
		}
		// Size the allocation: each PoP consumes whole /24s (up to 200
		// usable hosts each), rounded up to a power of two so the run
		// aggregates into a single prefix.
		n24 := 0
		for _, g := range groups {
			n24 += (len(g) + 199) / 200
		}
		if n24 == 0 {
			n24 = 1
		}
		pow := 1
		for pow < n24 {
			pow <<= 1
		}
		n24 = pow
		// Align the base to the block size.
		blockSize := uint32(n24) << 8
		if rem := next % blockSize; rem != 0 {
			next += blockSize - rem
		}
		base := next
		next += blockSize

		prefLen := 24 - intLog2(n24)
		as.Prefixes = []Prefix{{Addr: base, Len: prefLen}}

		// Assign interface addresses sequentially within each PoP
		// group, starting each group on a fresh /24 boundary and
		// skipping .0 and .255 host parts.
		addr := base
		for _, g := range groups {
			host := uint32(1)
			for _, ifid := range g {
				ip := addr + host
				b.in.Ifaces[ifid].IP = ip
				b.in.ByIP[ip] = ifid
				// Record the /24's home router (first interface wins).
				p24 := ip &^ 0xff
				if _, ok := b.in.Prefix24Router[p24]; !ok {
					b.in.Prefix24Router[p24] = b.in.Ifaces[ifid].Router
				}
				host++
				if host >= 254 {
					host = 1
					addr += 256
				}
			}
			addr += 256 // next group starts on a fresh /24
		}
		// Home the remaining /24s of the block on random AS routers so
		// probes into unused space still terminate somewhere real.
		if len(as.Routers) > 0 {
			for p := base; p < base+blockSize; p += 256 {
				if _, ok := b.in.Prefix24Router[p]; !ok {
					b.in.Prefix24Router[p] = as.Routers[s.Intn(len(as.Routers))]
				}
			}
		}
	}
	// Canonical addresses: the lowest public interface address of each
	// router (the address its ICMP Port Unreachable replies carry).
	for ri := range b.in.Routers {
		r := &b.in.Routers[ri]
		var best uint32 = math.MaxUint32
		for _, ifid := range r.Ifaces {
			ifc := &b.in.Ifaces[ifid]
			if !ifc.Private && ifc.IP != 0 && ifc.IP < best {
				best = ifc.IP
			}
		}
		if best != math.MaxUint32 {
			r.CanonicalIP = best
		}
	}
}

func intLog2(n int) int {
	l := 0
	for n > 1 {
		n >>= 1
		l++
	}
	return l
}

// applyFaults injects the misbehaviours real measurement tools contend
// with: unresponsive routers, routers that defeat alias resolution,
// interfaces leaking private addresses, and interfaces without reverse
// DNS (handled at hostname time via the same probabilities).
func (b *builder) applyFaults(s *rng.Stream) {
	privNext := uint32(10) << 24
	for ri := range b.in.Routers {
		r := &b.in.Routers[ri]
		if s.Bool(b.cfg.UnresponsiveRouterProb) {
			r.Unresponsive = true
		}
		if s.Bool(b.cfg.BrokenAliasProb) {
			r.BrokenAlias = true
		}
	}
	for ii := range b.in.Ifaces {
		ifc := &b.in.Ifaces[ii]
		if s.Bool(b.cfg.PrivateAddrProb) {
			delete(b.in.ByIP, ifc.IP)
			privNext++
			if privNext>>24 != 10 {
				privNext = uint32(10)<<24 + 1
			}
			ifc.Private = true
			ifc.IP = privNext
			ifc.Hostname = ""
			b.in.ByIP[ifc.IP] = ifc.ID
		}
	}
	// Recompute canonical addresses in case a private override
	// displaced a router's lowest address.
	for ri := range b.in.Routers {
		r := &b.in.Routers[ri]
		var best uint32 = math.MaxUint32
		for _, ifid := range r.Ifaces {
			ifc := &b.in.Ifaces[ifid]
			if !ifc.Private && ifc.IP != 0 && ifc.IP < best {
				best = ifc.IP
			}
		}
		if best != math.MaxUint32 {
			r.CanonicalIP = best
		} else if len(r.Ifaces) > 0 {
			r.CanonicalIP = b.in.Ifaces[r.Ifaces[0]].IP
		}
	}
}

// placeMonitors selects the Skitter monitor routers (spread across
// distinct major places worldwide, as CAIDA's were) and the single
// Mercator host (run from one US site, as the Scan project's was).
func (b *builder) placeMonitors(s *rng.Stream) {
	// Rank places by online users and walk down the list, taking at
	// most one monitor per place, preferring distinct economic regions
	// early so the monitor set is worldwide.
	type cand struct {
		place  int
		online float64
	}
	var cands []cand
	routersAtPlace := map[int][]RouterID{}
	for ri := range b.in.Routers {
		routersAtPlace[b.in.Routers[ri].Place] = append(routersAtPlace[b.in.Routers[ri].Place], RouterID(ri))
	}
	for place, rs := range routersAtPlace {
		if len(rs) > 0 {
			cands = append(cands, cand{place, b.world.Places[place].Online})
		}
	}
	sort.Slice(cands, func(i, j int) bool {
		if cands[i].online != cands[j].online {
			return cands[i].online > cands[j].online
		}
		return cands[i].place < cands[j].place
	})

	seenEcon := map[population.EconRegion]int{}
	n := b.cfg.NumSkitterMonitors
	if n <= 0 {
		n = 19
	}
	for _, c := range cands {
		if len(b.in.SkitterMonitors) >= n {
			break
		}
		econ := b.world.Places[c.place].Econ
		// Allow at most a third of monitors in any one region.
		if seenEcon[econ] >= (n+2)/3 {
			continue
		}
		seenEcon[econ]++
		rs := routersAtPlace[c.place]
		b.in.SkitterMonitors = append(b.in.SkitterMonitors, rs[s.Intn(len(rs))])
	}
	// Fill any shortfall without the region cap.
	for _, c := range cands {
		if len(b.in.SkitterMonitors) >= n {
			break
		}
		rs := routersAtPlace[c.place]
		r := rs[s.Intn(len(rs))]
		dup := false
		for _, m := range b.in.SkitterMonitors {
			if m == r {
				dup = true
				break
			}
		}
		if !dup {
			b.in.SkitterMonitors = append(b.in.SkitterMonitors, r)
		}
	}

	// Mercator ran from a single university host in the US.
	b.in.MercatorHost = None
	for _, c := range cands {
		if b.world.Places[c.place].Econ == population.EconUSA {
			rs := routersAtPlace[c.place]
			b.in.MercatorHost = rs[s.Intn(len(rs))]
			break
		}
	}
	if b.in.MercatorHost == None && len(b.in.Routers) > 0 {
		b.in.MercatorHost = RouterID(s.Intn(len(b.in.Routers)))
	}

	// Each monitoring host hangs off its gateway router via a stub
	// interface; traceroute's first hop reports that interface.
	for _, m := range b.in.SkitterMonitors {
		b.newIface(m, None)
	}
	if b.in.MercatorHost != None {
		b.newIface(b.in.MercatorHost, None)
	}
}
