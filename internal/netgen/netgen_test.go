package netgen

import (
	"math"
	"strings"
	"testing"

	"geonet/internal/geo"
	"geonet/internal/population"
	"geonet/internal/rng"
)

// testInternet builds a small world once and shares it across tests.
var testNet *Internet

func buildSmall(tb testing.TB) *Internet {
	tb.Helper()
	if testNet == nil {
		world := population.Build(population.DefaultConfig(), rng.New(1))
		cfg := DefaultConfig()
		cfg.Scale = 0.02
		testNet = Build(cfg, world)
	}
	return testNet
}

func TestBuildDeterministic(t *testing.T) {
	world := population.Build(population.DefaultConfig(), rng.New(1))
	cfg := DefaultConfig()
	cfg.Scale = 0.005
	a := Build(cfg, world)
	b := Build(cfg, world)
	if len(a.Routers) != len(b.Routers) || len(a.Links) != len(b.Links) || len(a.Ifaces) != len(b.Ifaces) {
		t.Fatalf("sizes differ: %d/%d/%d vs %d/%d/%d",
			len(a.Routers), len(a.Links), len(a.Ifaces),
			len(b.Routers), len(b.Links), len(b.Ifaces))
	}
	for i := range a.Ifaces {
		if a.Ifaces[i].IP != b.Ifaces[i].IP || a.Ifaces[i].Hostname != b.Ifaces[i].Hostname {
			t.Fatalf("iface %d differs between identical builds", i)
		}
	}
}

func TestScaleRoughlySizesWorld(t *testing.T) {
	in := buildSmall(t)
	// At scale 0.02 the paper's 563k interfaces (x1.15 slack) predict
	// ~13k ground-truth interfaces; allow a wide band.
	n := len(in.Ifaces)
	if n < 6000 || n > 30000 {
		t.Errorf("interface count = %d, want ~13k at scale 0.02", n)
	}
	if len(in.Links) == 0 || len(in.Routers) == 0 || len(in.ASes) == 0 {
		t.Fatal("empty internet")
	}
	// Mean degree should be near 3 (links/routers near 1.5).
	ratio := float64(len(in.Links)) / float64(len(in.Routers))
	if ratio < 1.0 || ratio > 2.2 {
		t.Errorf("links/routers = %v, want ~1.5", ratio)
	}
}

func TestEveryASConnectedInternally(t *testing.T) {
	in := buildSmall(t)
	// Union-find over intra-AS links; each AS must form one component.
	parent := make([]int32, len(in.Routers))
	for i := range parent {
		parent[i] = int32(i)
	}
	var find func(x int32) int32
	find = func(x int32) int32 {
		for parent[x] != x {
			parent[x] = parent[parent[x]]
			x = parent[x]
		}
		return x
	}
	for _, l := range in.Links {
		if l.Inter {
			continue
		}
		a := find(int32(in.Ifaces[l.A].Router))
		b := find(int32(in.Ifaces[l.B].Router))
		if a != b {
			parent[a] = b
		}
	}
	for _, as := range in.ASes {
		if len(as.Routers) < 2 {
			continue
		}
		root := find(int32(as.Routers[0]))
		for _, r := range as.Routers[1:] {
			if find(int32(r)) != root {
				t.Fatalf("AS %d (%d routers) not internally connected", as.Number, len(as.Routers))
			}
		}
	}
}

func TestASGraphConnected(t *testing.T) {
	in := buildSmall(t)
	if len(in.ASes) < 2 {
		t.Skip("too few ASes")
	}
	seen := make([]bool, len(in.ASes))
	queue := []ASID{0}
	seen[0] = true
	count := 1
	for len(queue) > 0 {
		cur := queue[0]
		queue = queue[1:]
		for _, n := range in.ASes[cur].Neighbors {
			if !seen[n] {
				seen[n] = true
				count++
				queue = append(queue, n)
			}
		}
	}
	if count != len(in.ASes) {
		t.Errorf("AS graph has %d/%d reachable ASes", count, len(in.ASes))
	}
}

func TestLinkEndpointsDistinctRouters(t *testing.T) {
	in := buildSmall(t)
	for _, l := range in.Links {
		ra := in.Ifaces[l.A].Router
		rb := in.Ifaces[l.B].Router
		if ra == rb {
			t.Fatalf("link %d is a self-loop on router %d", l.ID, ra)
		}
		wantInter := in.Routers[ra].AS != in.Routers[rb].AS
		if l.Inter != wantInter {
			t.Fatalf("link %d Inter=%v but AS equality says %v", l.ID, l.Inter, wantInter)
		}
		gotLen := geo.DistanceMiles(in.Routers[ra].Loc, in.Routers[rb].Loc)
		if math.Abs(gotLen-l.LengthMi) > 1e-6 {
			t.Fatalf("link %d length %v != recomputed %v", l.ID, l.LengthMi, gotLen)
		}
	}
}

func TestUniqueIPs(t *testing.T) {
	in := buildSmall(t)
	seen := map[uint32]IfaceID{}
	for _, ifc := range in.Ifaces {
		if ifc.IP == 0 {
			t.Fatalf("iface %d has zero IP", ifc.ID)
		}
		if prev, dup := seen[ifc.IP]; dup {
			t.Fatalf("IP %d assigned to both iface %d and %d", ifc.IP, prev, ifc.ID)
		}
		seen[ifc.IP] = ifc.ID
		if got, ok := in.ByIP[ifc.IP]; !ok || got != ifc.ID {
			t.Fatalf("ByIP inconsistent for iface %d", ifc.ID)
		}
	}
}

func TestPrefixesCoverInterfaces(t *testing.T) {
	in := buildSmall(t)
	for _, as := range in.ASes {
		for _, rid := range as.Routers {
			for _, ifid := range in.Routers[rid].Ifaces {
				ifc := in.Ifaces[ifid]
				if ifc.Private {
					continue
				}
				covered := false
				for _, p := range as.Prefixes {
					if p.Contains(ifc.IP) {
						covered = true
						break
					}
				}
				if !covered {
					t.Fatalf("iface %d (ip %d) of AS %d not covered by its prefixes", ifid, ifc.IP, as.Number)
				}
			}
		}
	}
}

func TestPrefixesDisjointAcrossASes(t *testing.T) {
	in := buildSmall(t)
	type entry struct {
		p  Prefix
		as int
	}
	var all []entry
	for _, as := range in.ASes {
		for _, p := range as.Prefixes {
			all = append(all, entry{p, as.Number})
		}
	}
	for i := 0; i < len(all); i++ {
		for j := i + 1; j < len(all); j++ {
			a, b := all[i], all[j]
			if a.p.Contains(b.p.Addr) || b.p.Contains(a.p.Addr) {
				t.Fatalf("prefixes of AS %d and AS %d overlap", a.as, b.as)
			}
		}
	}
}

func TestPrivateAddressesMarked(t *testing.T) {
	in := buildSmall(t)
	private := 0
	for _, ifc := range in.Ifaces {
		if ifc.Private {
			private++
			if ifc.IP>>24 != 10 {
				t.Fatalf("private iface %d has non-RFC1918 address", ifc.ID)
			}
		} else if ifc.IP>>24 == 10 {
			t.Fatalf("iface %d has 10/8 address but not marked private", ifc.ID)
		}
	}
	frac := float64(private) / float64(len(in.Ifaces))
	if frac > 0.02 {
		t.Errorf("private fraction = %v, want < 2%%", frac)
	}
}

func TestHostnameConventionsCarryGeography(t *testing.T) {
	in := buildSmall(t)
	named, withGeo := 0, 0
	for _, ifc := range in.Ifaces {
		if ifc.Hostname == "" {
			continue
		}
		named++
		r := in.Routers[ifc.Router]
		place := in.World.Places[r.Place]
		if strings.Contains(ifc.Hostname, place.Code) || strings.Contains(ifc.Hostname, place.Name) {
			withGeo++
		}
	}
	if named == 0 {
		t.Fatal("no interfaces have hostnames")
	}
	frac := float64(withGeo) / float64(named)
	// Opaque schemes cover ~15% of ASes, so most names carry geography.
	if frac < 0.6 {
		t.Errorf("only %.0f%% of hostnames carry a geographic token", frac*100)
	}
	nameFrac := float64(named) / float64(len(in.Ifaces))
	if nameFrac < 0.85 {
		t.Errorf("only %.0f%% of interfaces named; NoPTRProb too aggressive", nameFrac*100)
	}
}

func TestASSizesLongTailed(t *testing.T) {
	in := buildSmall(t)
	sizes := make([]int, 0, len(in.ASes))
	largest := 0
	for _, as := range in.ASes {
		sizes = append(sizes, len(as.Routers))
		if len(as.Routers) > largest {
			largest = len(as.Routers)
		}
	}
	n := len(sizes)
	if n < 100 {
		t.Skipf("only %d ASes at this scale", n)
	}
	single := 0
	for _, s := range sizes {
		if s == 1 {
			single++
		}
	}
	// Long tail: many singletons AND a giant several decades larger.
	if single < n/10 {
		t.Errorf("only %d/%d single-router ASes", single, n)
	}
	if largest < 100 {
		t.Errorf("largest AS has %d routers; tail too short", largest)
	}
}

func TestTier1Worldwide(t *testing.T) {
	in := buildSmall(t)
	for _, as := range in.ASes {
		if as.Type != Tier1 {
			continue
		}
		var pts []geo.Point
		for _, pi := range as.Places {
			pts = append(pts, in.World.Places[pi].Loc)
		}
		area := geo.HullArea(geo.WorldAlbers(), pts)
		// A worldwide backbone should span a hull of at least ~10M sq
		// miles (Figure 9(a)'s x-axis reaches 1.6e8).
		if area < 1e7 {
			t.Errorf("tier-1 AS %d hull = %.2g sq mi; not worldwide", as.Number, area)
		}
	}
}

func TestInterdomainLinksLongerOnAverage(t *testing.T) {
	in := buildSmall(t)
	var intra, inter, nIntra, nInter float64
	for _, l := range in.Links {
		if l.Inter {
			inter += l.LengthMi
			nInter++
		} else {
			intra += l.LengthMi
			nIntra++
		}
	}
	if nInter == 0 || nIntra == 0 {
		t.Fatal("missing link class")
	}
	mi, mx := intra/nIntra, inter/nInter
	if mx < mi*1.3 {
		t.Errorf("interdomain mean %f not substantially longer than intradomain %f", mx, mi)
	}
	if frac := nIntra / (nIntra + nInter); frac < 0.7 {
		t.Errorf("intradomain fraction = %v, want > 0.7 (paper: >80%%)", frac)
	}
}

func TestMonitorsPlaced(t *testing.T) {
	in := buildSmall(t)
	if len(in.SkitterMonitors) != 19 {
		t.Errorf("monitors = %d, want 19", len(in.SkitterMonitors))
	}
	seen := map[RouterID]bool{}
	for _, m := range in.SkitterMonitors {
		if seen[m] {
			t.Error("duplicate monitor router")
		}
		seen[m] = true
	}
	if in.MercatorHost < 0 || int(in.MercatorHost) >= len(in.Routers) {
		t.Errorf("invalid mercator host %d", in.MercatorHost)
	}
}

func TestPrefix24RouterCoversAllocatedSpace(t *testing.T) {
	in := buildSmall(t)
	for _, as := range in.ASes {
		for _, p := range as.Prefixes {
			size := uint32(1) << (32 - uint(p.Len))
			for base := p.Addr; base < p.Addr+size; base += 256 {
				if _, ok := in.Prefix24Router[base]; !ok {
					t.Fatalf("/24 at %d of AS %d has no home router", base, as.Number)
				}
			}
		}
	}
}

func TestPeerIface(t *testing.T) {
	in := buildSmall(t)
	l := in.Links[0]
	if in.PeerIface(l.A) != l.B || in.PeerIface(l.B) != l.A {
		t.Error("PeerIface does not invert across a link")
	}
}

func TestRouterLocationsNearTheirPlace(t *testing.T) {
	in := buildSmall(t)
	for _, r := range in.Routers {
		d := geo.DistanceMiles(r.Loc, in.World.Places[r.Place].Loc)
		if d > 13 {
			t.Fatalf("router %d is %f mi from its place; jitter cap broken", r.ID, d)
		}
	}
}

func TestUSInterfaceShareDominates(t *testing.T) {
	in := buildSmall(t)
	counts := map[population.EconRegion]int{}
	for _, ifc := range in.Ifaces {
		r := in.Routers[ifc.Router]
		counts[in.World.Places[r.Place].Econ]++
	}
	us := float64(counts[population.EconUSA])
	total := float64(len(in.Ifaces))
	// Paper: USA holds 282k of 563k interfaces (~50%).
	if us/total < 0.3 || us/total > 0.7 {
		t.Errorf("US interface share = %v, want ~0.5", us/total)
	}
	if counts[population.EconAfrica] >= counts[population.EconWesternEurope] {
		t.Error("Africa should have far fewer interfaces than W. Europe")
	}
}

func TestValidate(t *testing.T) {
	if err := DefaultConfig().Validate(); err != nil {
		t.Fatalf("default config must validate: %v", err)
	}
	bad := func(name string, mutate func(*Config)) {
		cfg := DefaultConfig()
		mutate(&cfg)
		if err := cfg.Validate(); err == nil {
			t.Errorf("%s: want validation error", name)
		}
	}
	bad("zero scale", func(c *Config) { c.Scale = 0 })
	bad("negative extra links", func(c *Config) { c.MeanExtraLinksPerRouter = -1 })
	bad("fraction above 1", func(c *Config) { c.DistanceIndependentFraction = 1.5 })
	bad("negative fault prob", func(c *Config) { c.BrokenAliasProb = -0.1 })
	bad("zero decay", func(c *Config) { c.DecayMiles[population.EconUSA] = 0 })
	bad("negative monitors", func(c *Config) { c.NumSkitterMonitors = -3 })
	bad("negative AS factor", func(c *Config) { c.ASCountFactor = -2 })
	// Zero-value sentinels for the ablation knobs are "default", not
	// errors.
	ok := DefaultConfig()
	ok.ASCountFactor = 0
	ok.NumSkitterMonitors = 0
	if err := ok.Validate(); err != nil {
		t.Errorf("sentinel zeroes must validate: %v", err)
	}
}

// ablationWorld builds a small internet with one knob changed from the
// shared baseline config.
func ablationWorld(tb testing.TB, mutate func(*Config)) *Internet {
	tb.Helper()
	world := population.Build(population.DefaultConfig(), rng.New(1))
	cfg := DefaultConfig()
	cfg.Scale = 0.02
	if mutate != nil {
		mutate(&cfg)
	}
	return Build(cfg, world)
}

func TestASCountFactorReshapesASes(t *testing.T) {
	base := buildSmall(t)
	identity := ablationWorld(t, func(c *Config) { c.ASCountFactor = 1 })
	if len(identity.ASes) != len(base.ASes) || len(identity.Routers) != len(base.Routers) {
		t.Fatalf("factor 1 must reproduce the default: %d/%d ASes, %d/%d routers",
			len(identity.ASes), len(base.ASes), len(identity.Routers), len(base.Routers))
	}
	split := ablationWorld(t, func(c *Config) { c.ASCountFactor = 4 })
	if len(split.ASes) <= len(base.ASes) {
		t.Errorf("factor 4 should create more ASes: %d vs %d", len(split.ASes), len(base.ASes))
	}
	// The router budget is unchanged within a generous band (sizes are
	// drawn stochastically against the same budget).
	ratio := float64(len(split.Routers)) / float64(len(base.Routers))
	if ratio < 0.8 || ratio > 1.2 {
		t.Errorf("routers moved too much under AS split: %d vs %d", len(split.Routers), len(base.Routers))
	}
}

func TestUniformPlacementFlattensConcentration(t *testing.T) {
	base := buildSmall(t)
	uni := ablationWorld(t, func(c *Config) { c.UniformPlacement = true })
	// Concentration metric: share of routers in the most popular
	// places. Under the population kernel routers pile into metros;
	// uniform placement must spread them across far more places.
	topShare := func(in *Internet) float64 {
		counts := map[int]int{}
		for _, r := range in.Routers {
			counts[r.Place]++
		}
		max := 0
		for _, c := range counts {
			if c > max {
				max = c
			}
		}
		return float64(max) / float64(len(in.Routers))
	}
	bs, us := topShare(base), topShare(uni)
	if us >= bs {
		t.Errorf("uniform placement should flatten the busiest place: top share %.4f (uniform) vs %.4f (default)", us, bs)
	}
	distinct := func(in *Internet) int {
		seen := map[int]bool{}
		for _, r := range in.Routers {
			seen[r.Place] = true
		}
		return len(seen)
	}
	if distinct(uni) <= distinct(base) {
		t.Errorf("uniform placement should occupy more distinct places: %d vs %d", distinct(uni), distinct(base))
	}
}

func TestMonitorCountKnob(t *testing.T) {
	nine := ablationWorld(t, func(c *Config) { c.NumSkitterMonitors = 9 })
	if len(nine.SkitterMonitors) != 9 {
		t.Errorf("got %d monitors, want 9", len(nine.SkitterMonitors))
	}
}
