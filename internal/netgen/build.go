package netgen

import (
	"math"
	"sort"

	"geonet/internal/geo"
	"geonet/internal/population"
	"geonet/internal/rng"
)

// Build generates a complete ground-truth Internet over the given world.
func Build(cfg Config, world *population.World) *Internet {
	if cfg.Scale <= 0 {
		cfg = DefaultConfig()
	}
	s := rng.New(cfg.Seed)
	b := &builder{
		cfg:   cfg,
		world: world,
		in: &Internet{
			World:          world,
			ByIP:           make(map[uint32]IfaceID),
			Prefix24Router: make(map[uint32]RouterID),
		},
		linkSet: make(map[[2]RouterID]bool),
	}
	b.planASes(s.Split("ases"))
	b.placeRouters(s.Split("routers"))
	b.intraLinks(s.Split("intralinks"))
	b.interLinks(s.Split("interlinks"))
	// Monitors come before address allocation so their host-facing
	// stub interfaces receive addresses too.
	b.placeMonitors(s.Split("monitors"))
	b.allocateAddresses(s.Split("alloc"))
	b.assignHostnames(s.Split("names"))
	b.applyFaults(s.Split("faults"))
	return b.in
}

type builder struct {
	cfg   Config
	world *population.World
	in    *Internet

	// routerBudget per AS, decided at planning time.
	asSizes []int
	// routersByASPlace[as][place] lists routers of an AS at a place.
	routersByASPlace []map[int][]RouterID
	linkSet          map[[2]RouterID]bool

	// homeWeights caches addAS's per-region home-place weight array
	// (Pow over every place of the region); it depends only on the
	// region, so computing it per AS was the generator's hottest loop.
	homeWeights map[population.EconRegion][]float64
	// placePow12 caches the per-place online^1.2 router-distribution
	// weight by world place index, for the same reason.
	placePow12 []float64
}

// planASes decides how many ASes exist, their sizes (router counts),
// home regions and home places. Sizes are drawn from a bounded Pareto,
// giving the long-tailed AS size distribution of Figure 7; a handful of
// explicit tier-1 backbones provide the globally dispersed giants of
// Figure 10.
func (b *builder) planASes(s *rng.Stream) {
	budgets := regionIfaceBudget(b.cfg.Scale)
	// Convert interface budgets to router budgets (mean degree ~3, so
	// ~3 interfaces per router).
	routerBudget := map[population.EconRegion]float64{}
	totalRouters := 0.0
	for econ, ifaces := range budgets {
		routerBudget[econ] = ifaces / 3.0
		totalRouters += ifaces / 3.0
	}

	// Tier-1 backbones: globally dispersed, headquartered mostly in
	// the US (as in 2002). They consume a share of every region's
	// budget because their footprint is worldwide.
	nTier1 := 6 + int(math.Sqrt(b.cfg.Scale*100)) // 9 at default scale
	tier1Share := 0.22                            // of world routers
	tier1Total := totalRouters * tier1Share
	for i := 0; i < nTier1; i++ {
		size := int(tier1Total / float64(nTier1) * (0.6 + s.Float64()*0.8))
		if size < 20 {
			size = 20
		}
		econ := population.EconUSA
		if s.Bool(0.3) {
			econ = population.EconWesternEurope
		}
		b.addAS(s, Tier1, econ, size)
	}
	// Deduct the tier-1 mass from regional budgets roughly in
	// proportion to online users (where tier-1s deploy routers).
	for econ := range routerBudget {
		routerBudget[econ] -= tier1Total * b.onlineShare(econ)
		if routerBudget[econ] < 0 {
			routerBudget[econ] = 0
		}
	}

	// Regional transit and stub ASes consume the rest of each budget.
	regions := make([]population.EconRegion, 0, len(routerBudget))
	for econ := range routerBudget {
		regions = append(regions, econ)
	}
	sort.Slice(regions, func(i, j int) bool { return regions[i] < regions[j] })
	for _, econ := range regions {
		remaining := routerBudget[econ]
		rs := s.Split("plan-" + econ.String())
		maxAS := remaining / 4
		if f := b.cfg.ASCountFactor; f > 0 {
			// The ablation knob: dividing the maximum AS size splits
			// the same router budget into more (f > 1) or fewer
			// (f < 1) ASes. f == 1 reproduces the default exactly.
			maxAS = remaining / (4 * f)
		}
		if maxAS < 8 {
			maxAS = 8
		}
		for remaining >= 1 {
			size := int(rs.BoundedPareto(1, maxAS, 1.05))
			if float64(size) > remaining {
				size = int(remaining)
			}
			if size < 1 {
				size = 1
			}
			typ := Stub
			if size >= 40 {
				typ = Transit
			}
			b.addAS(rs, typ, econ, size)
			remaining -= float64(size)
		}
	}
}

// onlineShare returns a region's share of world online users.
func (b *builder) onlineShare(e population.EconRegion) float64 {
	var region, total float64
	for _, st := range population.Stats() {
		total += st.OnlineM
		if st.Region == e {
			region = st.OnlineM
		}
	}
	return region / total
}

// addAS registers one AS with a home place chosen superlinearly by
// online population — the same attractiveness kernel used for place
// expansion, so single-homed stub ASes also concentrate in metros
// (this is what makes the aggregate router density superlinear in
// population, Figure 2).
func (b *builder) addAS(s *rng.Stream, typ ASType, econ population.EconRegion, size int) {
	id := ASID(len(b.in.ASes))
	places := b.world.PlacesOf(econ)
	weights := b.homeWeights[econ]
	if weights == nil {
		weights = make([]float64, len(places))
		for i, pi := range places {
			if b.cfg.UniformPlacement {
				weights[i] = 1
			} else {
				weights[i] = math.Pow(b.world.Places[pi].Online+1, 1.5)
			}
		}
		if b.homeWeights == nil {
			b.homeWeights = make(map[population.EconRegion][]float64)
		}
		b.homeWeights[econ] = weights
	}
	home := places[s.WeightedIndex(weights)]
	b.in.ASes = append(b.in.ASes, AS{
		ID:        id,
		Number:    64 + int(id)*3 + s.Intn(3), // spaced, unique, realistic gaps
		Type:      typ,
		Econ:      econ,
		HomePlace: home,
	})
	b.asSizes = append(b.asSizes, size)
}

// placeRouters chooses each AS's set of places and distributes its
// routers among them. Place choice and router allocation are both
// weighted superlinearly by online population — the generative
// mechanism behind the superlinear router density of Figure 2. Small
// and medium ASes mostly cluster near home but a minority disperse
// worldwide; giant ASes always disperse worldwide (the two regimes of
// Figure 10).
func (b *builder) placeRouters(s *rng.Stream) {
	world := b.world
	// Precompute per-econ place samplers weighted by online^1.4 (the
	// superlinear place-attractiveness kernel); the UniformPlacement
	// ablation flattens every kernel to 1 (the Waxman assumption).
	placeWeight := func(pi int) float64 {
		if b.cfg.UniformPlacement {
			return 1
		}
		return math.Pow(world.Places[pi].Online+1, 1.4)
	}
	econPlaces := map[population.EconRegion][]int{}
	econSamplers := map[population.EconRegion]*rng.Cumulative{}
	var worldPlaces []int
	var worldWeights []float64
	for e := population.EconRegion(0); e < population.NumEconRegions; e++ {
		pls := world.PlacesOf(e)
		econPlaces[e] = pls
		w := make([]float64, len(pls))
		for i, pi := range pls {
			w[i] = placeWeight(pi)
			worldPlaces = append(worldPlaces, pi)
			if b.cfg.UniformPlacement {
				worldWeights = append(worldWeights, 1)
			} else {
				worldWeights = append(worldWeights, world.Places[pi].Online)
			}
		}
		econSamplers[e] = rng.NewCumulative(w)
	}
	worldSampler := rng.NewCumulative(worldWeights)

	b.routersByASPlace = make([]map[int][]RouterID, len(b.in.ASes))
	for ai := range b.in.ASes {
		as := &b.in.ASes[ai]
		size := b.asSizes[ai]
		rs := s.SplitN("as", ai)

		places := b.choosePlaces(rs, as, size, econPlaces[as.Econ], econSamplers[as.Econ], worldPlaces, worldSampler)
		as.Places = places

		// Distribute routers over the chosen places, superlinearly by
		// online population; every chosen place gets at least one.
		if b.placePow12 == nil {
			b.placePow12 = make([]float64, len(world.Places))
			for pi := range world.Places {
				if b.cfg.UniformPlacement {
					b.placePow12[pi] = 1
				} else {
					b.placePow12[pi] = math.Pow(world.Places[pi].Online+1, 1.2)
				}
			}
		}
		weights := make([]float64, len(places))
		for i, pi := range places {
			weights[i] = b.placePow12[pi]
		}
		sampler := rng.NewCumulative(weights)
		counts := make([]int, len(places))
		for i := range places {
			if i < size {
				counts[i]++
			}
		}
		for r := len(places); r < size; r++ {
			counts[sampler.Sample(rs)]++
		}

		b.routersByASPlace[ai] = make(map[int][]RouterID, len(places))
		for i, pi := range places {
			loc := world.Places[pi].Loc
			for k := 0; k < counts[i]; k++ {
				rid := RouterID(len(b.in.Routers))
				jitter := rs.Exp(4)
				if jitter > 12 {
					jitter = 12
				}
				b.in.Routers = append(b.in.Routers, Router{
					ID:      rid,
					AS:      as.ID,
					ASIndex: int32(len(as.Routers)),
					Place:   pi,
					Loc:     geo.Destination(loc, rs.Float64()*360, jitter),
				})
				as.Routers = append(as.Routers, rid)
				b.routersByASPlace[ai][pi] = append(b.routersByASPlace[ai][pi], rid)
			}
		}
	}
}

// choosePlaces picks the distinct places an AS occupies.
func (b *builder) choosePlaces(s *rng.Stream, as *AS, size int,
	regionPlaces []int, regionSampler *rng.Cumulative,
	worldPlaces []int, worldSampler *rng.Cumulative) []int {

	world := b.world
	var nloc int
	worldwide := false
	switch {
	case as.Type == Tier1:
		nloc = int(math.Pow(float64(size), 0.8))
		if nloc < 25 {
			nloc = 25
		}
		worldwide = true
	default:
		base := math.Pow(float64(size), 0.72)
		nloc = int(base * s.LogNormal(0, 0.7))
		if nloc < 1 {
			nloc = 1
		}
		// A minority of small/medium ASes disperse worldwide — the
		// paper finds "even small ASes ... may be very widely
		// dispersed geographically (in fact, worldwide)".
		worldwide = s.Bool(0.12)
	}
	if nloc > size {
		nloc = size
	}
	if nloc > 400 {
		nloc = 400
	}

	chosen := map[int]struct{}{as.HomePlace: {}}
	out := []int{as.HomePlace}
	tries := 0
	for len(out) < nloc && tries < nloc*30 {
		tries++
		var cand int
		if worldwide {
			cand = worldPlaces[worldSampler.Sample(s)]
		} else if s.Bool(0.8) {
			// Distance-biased expansion around home: sample from the
			// region, accept with probability decaying in distance.
			cand = regionPlaces[regionSampler.Sample(s)]
			d := geo.DistanceMiles(world.Places[cand].Loc, world.Places[as.HomePlace].Loc)
			if !s.Bool(math.Exp(-d / 600)) {
				continue
			}
		} else {
			cand = regionPlaces[regionSampler.Sample(s)]
		}
		if _, dup := chosen[cand]; dup {
			continue
		}
		chosen[cand] = struct{}{}
		out = append(out, cand)
	}
	return out
}

// intraLinks builds each AS's internal topology: a distance-preferring
// spanning attachment (so the AS is connected) plus extra links, most
// chosen by an exponentially decaying distance kernel and a small
// fraction chosen uniformly (distance-independent long hauls).
func (b *builder) intraLinks(s *rng.Stream) {
	for ai := range b.in.ASes {
		as := &b.in.ASes[ai]
		rs := s.SplitN("as", ai)
		routers := as.Routers
		if len(routers) < 2 {
			continue
		}
		decay := b.cfg.DecayMiles[as.Econ]
		if decay <= 0 {
			decay = 120
		}

		order := make([]RouterID, len(routers))
		copy(order, routers)
		rs.Shuffle(len(order), func(i, j int) { order[i], order[j] = order[j], order[i] })

		// Spanning attachment.
		weights := make([]float64, 0, len(order))
		for i := 1; i < len(order); i++ {
			weights = weights[:0]
			loc := b.in.Routers[order[i]].Loc
			for j := 0; j < i; j++ {
				d := geo.DistanceMiles(loc, b.in.Routers[order[j]].Loc)
				weights = append(weights, math.Exp(-d/decay)+1e-12)
			}
			j := rs.WeightedIndex(weights)
			b.addLink(order[i], order[j], false)
		}

		// Extra links.
		extra := int(b.cfg.MeanExtraLinksPerRouter * float64(len(routers)))
		for e := 0; e < extra; e++ {
			a := routers[rs.Intn(len(routers))]
			var partner RouterID = None
			if rs.Bool(b.cfg.DistanceIndependentFraction) {
				partner = routers[rs.Intn(len(routers))]
			} else {
				weights = weights[:0]
				loc := b.in.Routers[a].Loc
				for _, r := range routers {
					if r == a {
						weights = append(weights, 0)
						continue
					}
					d := geo.DistanceMiles(loc, b.in.Routers[r].Loc)
					weights = append(weights, math.Exp(-d/decay)+1e-12)
				}
				partner = routers[rs.WeightedIndex(weights)]
			}
			if partner != a {
				b.addLink(a, partner, false)
			}
		}
	}
}

// interLinks wires the AS graph: stubs buy transit from providers,
// transits interconnect and attach to tier-1s, tier-1s form a dense
// mesh. Each AS adjacency materialises as one or more physical links
// whose endpoints prefer co-located (IXP-style) place pairs, with a
// minority of deliberately long-haul pairings — which is what makes
// interdomain links about twice as long as intradomain ones (Table VI).
func (b *builder) interLinks(s *rng.Stream) {
	var tier1s, transits []ASID
	for _, as := range b.in.ASes {
		switch as.Type {
		case Tier1:
			tier1s = append(tier1s, as.ID)
		case Transit:
			transits = append(transits, as.ID)
		}
	}
	adj := make(map[[2]ASID]bool)
	connect := func(a, c ASID, rs *rng.Stream) {
		if a == c {
			return
		}
		key := [2]ASID{min32(a, c), max32(a, c)}
		if adj[key] {
			return
		}
		adj[key] = true
		b.in.ASes[a].Neighbors = append(b.in.ASes[a].Neighbors, c)
		b.in.ASes[c].Neighbors = append(b.in.ASes[c].Neighbors, a)
		b.materialize(rs, a, c)
	}

	// Tier-1 mesh.
	meshStream := s.Split("mesh")
	for i := 0; i < len(tier1s); i++ {
		for j := i + 1; j < len(tier1s); j++ {
			if meshStream.Bool(0.85) {
				connect(tier1s[i], tier1s[j], meshStream)
			}
		}
	}

	// Transit ASes attach to tier-1s and to each other, preferring
	// larger and nearer providers.
	providerWeight := func(cand, from ASID) float64 {
		ca := &b.in.ASes[cand]
		fa := &b.in.ASes[from]
		d := geo.DistanceMiles(
			b.world.Places[ca.HomePlace].Loc,
			b.world.Places[fa.HomePlace].Loc)
		return float64(len(ca.Routers)+1+4*len(ca.Neighbors)) * math.Exp(-d/1800)
	}
	trStream := s.Split("transit")
	for _, t := range transits {
		nup := 1 + trStream.Intn(2)
		for k := 0; k < nup; k++ {
			w := make([]float64, len(tier1s))
			for i, c := range tier1s {
				w[i] = providerWeight(c, t)
			}
			connect(t, tier1s[trStream.WeightedIndex(w)], trStream)
		}
		npeer := trStream.Intn(3)
		for k := 0; k < npeer; k++ {
			w := make([]float64, len(transits))
			for i, c := range transits {
				if c == t {
					w[i] = 0
					continue
				}
				w[i] = providerWeight(c, t)
			}
			if len(transits) > 1 {
				connect(t, transits[trStream.WeightedIndex(w)], trStream)
			}
		}
	}

	// Stubs buy transit, preferentially from big nearby providers.
	providers := append(append([]ASID{}, tier1s...), transits...)
	stStream := s.Split("stubs")
	for _, as := range b.in.ASes {
		if as.Type != Stub {
			continue
		}
		nup := 1
		r := stStream.Float64()
		if r > 0.55 {
			nup = 2
		}
		if r > 0.85 {
			nup = 3
		}
		for k := 0; k < nup; k++ {
			w := make([]float64, len(providers))
			for i, c := range providers {
				w[i] = providerWeight(c, as.ID)
			}
			connect(as.ID, providers[stStream.WeightedIndex(w)], stStream)
		}
	}
}

// materialize creates the physical link(s) realising an AS adjacency.
func (b *builder) materialize(s *rng.Stream, a, c ASID) {
	asA, asC := &b.in.ASes[a], &b.in.ASes[c]
	n := 1
	minSize := len(asA.Routers)
	if len(asC.Routers) < minSize {
		minSize = len(asC.Routers)
	}
	if minSize > 50 && s.Bool(0.5) {
		n++
	}
	if minSize > 300 && s.Bool(0.5) {
		n++
	}
	for k := 0; k < n; k++ {
		pa, pc := b.pickPeeringPlaces(s, asA, asC)
		ra := b.randomRouterAt(s, asA, pa)
		rc := b.randomRouterAt(s, asC, pc)
		if ra != None && rc != None && ra != rc {
			b.addLink(ra, rc, true)
		}
	}
}

// pickPeeringPlaces selects the city pair where two ASes interconnect:
// usually the closest pair found among random candidates (exchange
// points are where footprints meet), sometimes a deliberately random —
// and hence long — pairing.
func (b *builder) pickPeeringPlaces(s *rng.Stream, asA, asC *AS) (int, int) {
	ra := func() int { return asA.Places[s.Intn(len(asA.Places))] }
	rc := func() int { return asC.Places[s.Intn(len(asC.Places))] }
	if s.Bool(0.2) {
		return ra(), rc()
	}
	bestA, bestC := ra(), rc()
	best := geo.DistanceMiles(b.world.Places[bestA].Loc, b.world.Places[bestC].Loc)
	tries := 24
	if len(asA.Places)*len(asC.Places) < tries {
		tries = len(asA.Places) * len(asC.Places)
	}
	for i := 0; i < tries; i++ {
		ca, cc := ra(), rc()
		d := geo.DistanceMiles(b.world.Places[ca].Loc, b.world.Places[cc].Loc)
		if d < best {
			best, bestA, bestC = d, ca, cc
		}
	}
	return bestA, bestC
}

func (b *builder) randomRouterAt(s *rng.Stream, as *AS, place int) RouterID {
	rs := b.routersByASPlace[as.ID][place]
	if len(rs) == 0 {
		if len(as.Routers) == 0 {
			return None
		}
		return as.Routers[s.Intn(len(as.Routers))]
	}
	return rs[s.Intn(len(rs))]
}

// addLink creates a link between two routers (one new interface each).
// Parallel links between the same router pair are suppressed.
func (b *builder) addLink(ra, rb RouterID, inter bool) {
	if ra == rb {
		return
	}
	key := [2]RouterID{min32r(ra, rb), max32r(ra, rb)}
	if b.linkSet[key] {
		return
	}
	b.linkSet[key] = true

	lid := LinkID(len(b.in.Links))
	ia := b.newIface(ra, lid)
	ib := b.newIface(rb, lid)
	b.in.Links = append(b.in.Links, Link{
		ID: lid, A: ia, B: ib, Inter: inter,
		LengthMi: geo.DistanceMiles(b.in.Routers[ra].Loc, b.in.Routers[rb].Loc),
	})
}

func (b *builder) newIface(r RouterID, link LinkID) IfaceID {
	id := IfaceID(len(b.in.Ifaces))
	b.in.Ifaces = append(b.in.Ifaces, Iface{ID: id, Router: r, Link: link})
	b.in.Routers[r].Ifaces = append(b.in.Routers[r].Ifaces, id)
	return id
}

func min32(a, b ASID) ASID {
	if a < b {
		return a
	}
	return b
}
func max32(a, b ASID) ASID {
	if a > b {
		return a
	}
	return b
}
func min32r(a, b RouterID) RouterID {
	if a < b {
		return a
	}
	return b
}
func max32r(a, b RouterID) RouterID {
	if a > b {
		return a
	}
	return b
}
