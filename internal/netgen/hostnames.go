package netgen

import (
	"fmt"

	"geonet/internal/rng"
)

// ISP naming-material tables. Roles mirror the conventions the paper's
// example ("0.so-5-2-0.XL1.NYC8.ALTER.NET") comes from.
var (
	coreRoles = []string{"xl", "core", "bb", "cr", "p"}
	edgeRoles = []string{"edge", "gw", "ar", "br", "dr"}
	slotKinds = []string{"so", "ge", "fa", "pos", "atm", "srp"}

	orgSyllables = []string{
		"alter", "ver", "net", "tele", "glob", "ix", "path", "wave",
		"link", "span", "core", "uni", "inter", "trans", "metro", "sky",
		"terra", "nova", "apex", "omni", "digi", "byte", "grid", "volt",
	}
)

// econTLDs gives plausible top-level domains per economic region.
func econTLDs(econ int) []string {
	switch econ {
	case 0: // Africa
		return []string{"net", "co.za", "com.eg", "net"}
	case 1: // South America
		return []string{"net.br", "com.ar", "net", "com"}
	case 2: // Mexico
		return []string{"net.mx", "com.mx", "net"}
	case 3: // W. Europe
		return []string{"net", "de", "fr", "co.uk", "nl", "it", "es", "eu"}
	case 4: // Japan
		return []string{"ne.jp", "ad.jp", "co.jp", "net"}
	case 5: // Australia
		return []string{"net.au", "com.au", "net"}
	case 6: // USA
		return []string{"net", "net", "net", "com", "org", "us"}
	default:
		return []string{"net", "com"}
	}
}

// assignHostnames gives every AS a domain, org name and naming scheme,
// then names every interface according to that scheme. A fraction of
// ASes use opaque (geography-free) names and a fraction of interfaces
// get no PTR record at all; both fractions come from Config.
func (b *builder) assignHostnames(s *rng.Stream) {
	domains := map[string]bool{}
	for ai := range b.in.ASes {
		as := &b.in.ASes[ai]
		rs := s.SplitN("as", ai)

		// Organisation and domain. The syllable space saturates in big
		// worlds, so after a few collisions the AS index (unique by
		// construction) disambiguates — real ISP names collide too
		// ("globalnet" exists in every country).
		for attempt := 0; ; attempt++ {
			a := orgSyllables[rs.Intn(len(orgSyllables))]
			c := orgSyllables[rs.Intn(len(orgSyllables))]
			name := a + c
			if attempt >= 4 {
				name = fmt.Sprintf("%s%d", name, ai)
			}
			tlds := econTLDs(int(as.Econ))
			dom := fmt.Sprintf("%s.%s", name, tlds[rs.Intn(len(tlds))])
			if !domains[dom] {
				domains[dom] = true
				as.Domain = dom
				as.OrgName = name
				break
			}
		}

		// Naming scheme.
		if rs.Bool(b.cfg.OpaqueNamingProb) {
			as.Scheme = SchemeOpaque
		} else {
			as.Scheme = NamingScheme(rs.Intn(4))
		}
		as.PublishesLOC = rs.Bool(b.cfg.LOCPublishProb)
		as.IDSBlocks = rs.Bool(b.cfg.IDSBlockProb)

		// Per-city-token router sequence numbers give the "nyc8" style
		// disambiguators. Keying by token (not place) keeps names
		// unique even when two towns share a code.
		seqAtCode := map[string]int{}
		routerSeq := map[RouterID]int{}
		for _, rid := range as.Routers {
			code := b.world.Places[b.in.Routers[rid].Place].Code
			seqAtCode[code]++
			routerSeq[rid] = seqAtCode[code]
		}

		for _, rid := range as.Routers {
			r := &b.in.Routers[rid]
			city := b.world.Places[r.Place]
			seq := routerSeq[rid]
			role := edgeRoles[rs.Intn(len(edgeRoles))]
			if len(r.Ifaces) >= 4 {
				role = coreRoles[rs.Intn(len(coreRoles))]
			}
			for slot, ifid := range r.Ifaces {
				if rs.Bool(b.cfg.NoPTRProb) {
					continue // no reverse DNS for this interface
				}
				var name string
				switch as.Scheme {
				case SchemeSlotRoleCity:
					name = fmt.Sprintf("%s-%d-%d-0.%s%d.%s%d.%s",
						slotKinds[rs.Intn(len(slotKinds))], slot/4, slot%4,
						role, 1+slot%4, city.Code, seq, as.Domain)
				case SchemeRoleDashCity:
					name = fmt.Sprintf("%s%d-%s.%s", role, seq, city.Code, as.Domain)
				case SchemeCityRole:
					name = fmt.Sprintf("%s%d-%s%d.%s", city.Code, seq, role, 1+slot, as.Domain)
				case SchemeCityName:
					name = fmt.Sprintf("%s%d.%s.%s", role, seq, city.Name, as.Domain)
				case SchemeOpaque:
					name = fmt.Sprintf("r%d-%d.%s", rid, slot, as.Domain)
				}
				b.in.Ifaces[ifid].Hostname = name
			}
		}
	}
}
