package dnsdb

import (
	"fmt"

	"geonet/internal/netgen"
)

// DB is the authoritative record store: PTR records keyed by IPv4
// address and LOC records keyed by owner hostname.
type DB struct {
	ptr map[uint32]string
	loc map[string]LOC
}

// New creates an empty store.
func New() *DB {
	return &DB{ptr: make(map[uint32]string), loc: make(map[string]LOC)}
}

// AddPTR registers a reverse record for an address.
func (d *DB) AddPTR(ip uint32, name string) { d.ptr[ip] = name }

// AddLOC registers a location record for a hostname.
func (d *DB) AddLOC(name string, l LOC) { d.loc[name] = l }

// PTR resolves an address to its hostname.
func (d *DB) PTR(ip uint32) (string, bool) {
	n, ok := d.ptr[ip]
	return n, ok
}

// LOCLookup resolves a hostname to its LOC record.
func (d *DB) LOCLookup(name string) (LOC, bool) {
	l, ok := d.loc[name]
	return l, ok
}

// NumPTR and NumLOC report record counts.
func (d *DB) NumPTR() int { return len(d.ptr) }
func (d *DB) NumLOC() int { return len(d.loc) }

// ReverseName renders the in-addr.arpa owner name for an address — the
// name a real PTR query would use.
func ReverseName(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d.in-addr.arpa.",
		ip&0xff, (ip>>8)&0xff, (ip>>16)&0xff, ip>>24)
}

// FromInternet builds the world's DNS from ground truth: every named
// interface gets a PTR record; ASes that publish LOC get a LOC record
// per hostname carrying the router's true coordinates (wire-encoded and
// re-parsed, so the codec is on the real data path).
func FromInternet(in *netgen.Internet) (*DB, error) {
	d := New()
	for _, ifc := range in.Ifaces {
		if ifc.Hostname == "" || ifc.IP == 0 {
			continue
		}
		d.AddPTR(ifc.IP, ifc.Hostname)
		as := in.ASes[in.Routers[ifc.Router].AS]
		if as.PublishesLOC {
			loc := NewLOC(in.Routers[ifc.Router].Loc)
			wire := loc.Wire()
			back, err := ParseWire(wire[:])
			if err != nil {
				return nil, fmt.Errorf("dnsdb: LOC self-check for %s: %v", ifc.Hostname, err)
			}
			d.AddLOC(ifc.Hostname, back)
		}
	}
	return d, nil
}
