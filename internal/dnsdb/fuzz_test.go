package dnsdb

import (
	"testing"

	"geonet/internal/geo"
)

// FuzzParseText drives the RFC 1876 master-file parser with arbitrary
// text: it must never panic, and any record it accepts must render
// (String) and re-parse to the same coordinates — the codec's
// round-trip contract.
func FuzzParseText(f *testing.F) {
	f.Add(NewLOC(geo.Pt(42.365, -71.105)).String())
	f.Add("42 21 54.000 N 71 06 18.000 W -24.00m 1m 10000m 10m")
	f.Add("0 N 0 E")
	f.Add("90 S 180 W 0m")
	f.Add("42 N")                 // truncated: missing longitude
	f.Add("42 21 54 Q 71 6 18 W") // bad hemisphere
	f.Add("9999999999999 N 0 E")  // degree overflow
	f.Add("42 60 99.999 N 0 E")   // out-of-range minutes/seconds
	f.Add("42 N 71 W bogusm")
	f.Add("42 N 71 W 10m 0m 0m 0m")
	f.Add("-5 N 3 E")
	f.Add("")
	f.Add("N E")

	f.Fuzz(func(t *testing.T, input string) {
		l, err := ParseText(input)
		if err != nil {
			return
		}
		text := l.String()
		l2, err := ParseText(text)
		if err != nil {
			t.Fatalf("String output failed to re-parse: %v\ninput: %q\nrendered: %q", err, input, text)
		}
		if l2.Latitude != l.Latitude || l2.Longitude != l.Longitude {
			t.Fatalf("round trip moved the point: %v vs %v\ninput: %q", l.Point(), l2.Point(), input)
		}
	})
}

// FuzzParseWire drives the 16-octet RDATA decoder: arbitrary bytes
// must never panic, and accepted records must re-encode to the exact
// input bytes (every field is captured).
func FuzzParseWire(f *testing.F) {
	w := NewLOC(geo.Pt(35.68, 139.69)).Wire()
	f.Add(w[:])
	f.Add([]byte{})
	f.Add([]byte{0})
	f.Add(make([]byte, 15))
	f.Add(make([]byte, 16))
	f.Add(make([]byte, 17))
	bad := make([]byte, 16)
	bad[0] = 1 // unsupported version
	f.Add(bad)

	f.Fuzz(func(t *testing.T, data []byte) {
		l, err := ParseWire(data)
		if err != nil {
			return
		}
		enc := l.Wire()
		if len(data) != 16 {
			t.Fatalf("accepted %d-octet RDATA", len(data))
		}
		for i := range enc {
			if enc[i] != data[i] {
				t.Fatalf("re-encode differs at octet %d: % x vs % x", i, enc, data)
			}
		}
	})
}
