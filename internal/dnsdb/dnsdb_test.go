package dnsdb

import (
	"math"
	"strings"
	"testing"
	"testing/quick"

	"geonet/internal/geo"
	"geonet/internal/netgen"
	"geonet/internal/population"
	"geonet/internal/rng"
)

func TestLOCRoundTripPoint(t *testing.T) {
	f := func(lat, lon float64) bool {
		p := geo.Pt(math.Mod(math.Abs(lat), 180)-90, math.Mod(math.Abs(lon), 360)-180)
		got := NewLOC(p).Point()
		// Thousandths of an arcsecond resolve ~3 cm; tolerance 1e-6 deg.
		return math.Abs(got.Lat-p.Lat) < 1e-6 && math.Abs(got.Lon-p.Lon) < 1e-6
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLOCWireRoundTrip(t *testing.T) {
	f := func(lat, lon float64) bool {
		p := geo.Pt(math.Mod(math.Abs(lat), 180)-90, math.Mod(math.Abs(lon), 360)-180)
		l := NewLOC(p)
		wire := l.Wire()
		back, err := ParseWire(wire[:])
		return err == nil && back == l
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 500}); err != nil {
		t.Error(err)
	}
}

func TestLOCWireRejectsBadInput(t *testing.T) {
	if _, err := ParseWire([]byte{1, 2, 3}); err == nil {
		t.Error("short RDATA accepted")
	}
	var v1 [16]byte
	v1[0] = 1 // unsupported version
	if _, err := ParseWire(v1[:]); err == nil {
		t.Error("version 1 accepted")
	}
}

func TestLOCTextKnownExample(t *testing.T) {
	// The RFC's own example style: MIT's LOC for cambridge.
	l := NewLOC(geo.Pt(42.365, -71.105))
	text := l.String()
	if !strings.Contains(text, "N") || !strings.Contains(text, "W") {
		t.Fatalf("text form %q missing hemispheres", text)
	}
	back, err := ParseText(text)
	if err != nil {
		t.Fatalf("ParseText(%q): %v", text, err)
	}
	got := back.Point()
	if math.Abs(got.Lat-42.365) > 1e-5 || math.Abs(got.Lon+71.105) > 1e-5 {
		t.Errorf("text round trip = %v", got)
	}
}

func TestLOCTextRoundTrip(t *testing.T) {
	f := func(lat, lon float64) bool {
		p := geo.Pt(math.Mod(math.Abs(lat), 180)-90, math.Mod(math.Abs(lon), 360)-180)
		l := NewLOC(p)
		back, err := ParseText(l.String())
		if err != nil {
			return false
		}
		q := back.Point()
		return math.Abs(q.Lat-p.Lat) < 1e-5 && math.Abs(q.Lon-p.Lon) < 1e-5
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestLOCTextOptionalFields(t *testing.T) {
	// Degrees-and-hemisphere only is legal per the RFC grammar.
	l, err := ParseText("42 N 71 W")
	if err != nil {
		t.Fatalf("minimal form rejected: %v", err)
	}
	p := l.Point()
	if p.Lat != 42 || p.Lon != -71 {
		t.Errorf("minimal form = %v", p)
	}
	// Degrees+minutes, southern/eastern hemisphere, altitude.
	l2, err := ParseText("33 52 S 151 12 E 10m")
	if err != nil {
		t.Fatalf("dm form rejected: %v", err)
	}
	p2 := l2.Point()
	if math.Abs(p2.Lat+33.8667) > 1e-3 || math.Abs(p2.Lon-151.2) > 1e-3 {
		t.Errorf("dm form = %v", p2)
	}
}

func TestLOCTextRejectsGarbage(t *testing.T) {
	for _, bad := range []string{
		"", "42", "42 X 71 W", "42 N", "42 N 71 Q", "x N 71 W",
		"42 N 71 W badalt",
	} {
		if _, err := ParseText(bad); err == nil {
			t.Errorf("ParseText(%q) should fail", bad)
		}
	}
}

func TestPrecRoundTrip(t *testing.T) {
	// Encode a precision string, decode it, re-encode: fixed point.
	for _, in := range []string{"1m", "10m", "100m", "10000m", "0.01m"} {
		enc, err := parsePrec(in)
		if err != nil {
			t.Fatalf("parsePrec(%q): %v", in, err)
		}
		if got := precString(enc); got != in {
			t.Errorf("precision %q round trip = %q", in, got)
		}
	}
	if _, err := parsePrec("xm"); err == nil {
		t.Error("bad precision accepted")
	}
}

func TestDBPTRAndLOC(t *testing.T) {
	d := New()
	d.AddPTR(0x04010203, "gw1.denver.example.net")
	d.AddLOC("gw1.denver.example.net", NewLOC(geo.Pt(39.74, -104.99)))
	name, ok := d.PTR(0x04010203)
	if !ok || name != "gw1.denver.example.net" {
		t.Fatalf("PTR = %q,%v", name, ok)
	}
	if _, ok := d.PTR(0x05050505); ok {
		t.Error("missing PTR resolved")
	}
	l, ok := d.LOCLookup(name)
	if !ok {
		t.Fatal("LOC missing")
	}
	p := l.Point()
	if math.Abs(p.Lat-39.74) > 1e-5 {
		t.Errorf("LOC point = %v", p)
	}
}

func TestReverseName(t *testing.T) {
	if got := ReverseName(0x04010203); got != "3.2.1.4.in-addr.arpa." {
		t.Errorf("ReverseName = %q", got)
	}
}

func TestFromInternet(t *testing.T) {
	world := population.Build(population.DefaultConfig(), rng.New(1))
	cfg := netgen.DefaultConfig()
	cfg.Scale = 0.01
	in := netgen.Build(cfg, world)
	d, err := FromInternet(in)
	if err != nil {
		t.Fatal(err)
	}
	if d.NumPTR() == 0 {
		t.Fatal("no PTR records")
	}
	// Every PTR entry matches ground truth.
	matched, locChecked := 0, 0
	for _, ifc := range in.Ifaces {
		if ifc.Hostname == "" {
			continue
		}
		name, ok := d.PTR(ifc.IP)
		if !ok || name != ifc.Hostname {
			t.Fatalf("PTR mismatch for iface %d", ifc.ID)
		}
		matched++
		if l, ok := d.LOCLookup(name); ok {
			locChecked++
			truth := in.Routers[ifc.Router].Loc
			got := l.Point()
			if geo.DistanceMiles(got, truth) > 0.1 {
				t.Fatalf("LOC for %s is %v, truth %v", name, got, truth)
			}
		}
	}
	if matched == 0 || locChecked == 0 {
		t.Errorf("coverage: ptr=%d loc=%d", matched, locChecked)
	}
	// LOC coverage should be a minority (~10% of ASes publish).
	if frac := float64(d.NumLOC()) / float64(d.NumPTR()); frac > 0.3 {
		t.Errorf("LOC fraction = %v, want sparse coverage", frac)
	}
}
