// Package dnsdb is the reproduction's DNS substrate: an authoritative
// store of PTR (reverse) records and RFC 1876 LOC records. IxMapper
// consults both — hostnames for convention-based mapping and LOC
// records for exact coordinates when an operator published them
// ("DNS LOC records, while accurate, are not required and are therefore
// not always available", Section III-B).
//
// The LOC codec implements the actual RFC 1876 formats: the 16-octet
// wire form and the master-file text form, both round-trippable.
package dnsdb

import (
	"encoding/binary"
	"fmt"
	"math"
	"strconv"
	"strings"

	"geonet/internal/geo"
)

// LOC is an RFC 1876 location record.
type LOC struct {
	// Version must be 0 per the RFC.
	Version uint8
	// Size, HorizPre, VertPre are RFC 1876 "precision" fields encoded
	// as base/exponent pairs (4 bits each) representing centimetres.
	Size     uint8
	HorizPre uint8
	VertPre  uint8
	// Latitude and Longitude in thousandths of an arcsecond,
	// offset from 2^31 (the equator / prime meridian).
	Latitude  uint32
	Longitude uint32
	// Altitude in centimetres above a base 100,000 m below the
	// WGS 84 reference spheroid.
	Altitude uint32
}

const (
	locEquator    = uint32(1) << 31
	locMasPerDeg  = 3600_000 // thousandths of a second per degree
	locAltBase    = 10_000_000
	defaultSize   = 0x12 // 1 m
	defaultHoriz  = 0x16 // 10 km
	defaultVert   = 0x13 // 10 m
	centiPerMeter = 100
)

// NewLOC builds a record from a geographic point with the RFC's default
// precision fields.
func NewLOC(p geo.Point) LOC {
	return LOC{
		Size:      defaultSize,
		HorizPre:  defaultHoriz,
		VertPre:   defaultVert,
		Latitude:  uint32(int64(locEquator) + int64(math.Round(p.Lat*locMasPerDeg))),
		Longitude: uint32(int64(locEquator) + int64(math.Round(p.Lon*locMasPerDeg))),
		Altitude:  locAltBase,
	}
}

// Point converts the record back to decimal degrees.
func (l LOC) Point() geo.Point {
	return geo.Point{
		Lat: float64(int64(l.Latitude)-int64(locEquator)) / locMasPerDeg,
		Lon: float64(int64(l.Longitude)-int64(locEquator)) / locMasPerDeg,
	}
}

// Wire encodes the record in the RFC 1876 16-octet RDATA form.
func (l LOC) Wire() [16]byte {
	var b [16]byte
	b[0] = l.Version
	b[1] = l.Size
	b[2] = l.HorizPre
	b[3] = l.VertPre
	binary.BigEndian.PutUint32(b[4:8], l.Latitude)
	binary.BigEndian.PutUint32(b[8:12], l.Longitude)
	binary.BigEndian.PutUint32(b[12:16], l.Altitude)
	return b
}

// ParseWire decodes the 16-octet RDATA form.
func ParseWire(b []byte) (LOC, error) {
	if len(b) != 16 {
		return LOC{}, fmt.Errorf("dnsdb: LOC RDATA must be 16 octets, got %d", len(b))
	}
	l := LOC{
		Version:  b[0],
		Size:     b[1],
		HorizPre: b[2],
		VertPre:  b[3],
	}
	if l.Version != 0 {
		return LOC{}, fmt.Errorf("dnsdb: unsupported LOC version %d", l.Version)
	}
	l.Latitude = binary.BigEndian.Uint32(b[4:8])
	l.Longitude = binary.BigEndian.Uint32(b[8:12])
	l.Altitude = binary.BigEndian.Uint32(b[12:16])
	return l, nil
}

// String renders the master-file text form, e.g.
// "42 21 54.000 N 71 06 18.000 W -24.00m 1m 10000m 10m".
func (l LOC) String() string {
	latMas := int64(l.Latitude) - int64(locEquator)
	lonMas := int64(l.Longitude) - int64(locEquator)
	ns, ew := "N", "E"
	if latMas < 0 {
		ns = "S"
		latMas = -latMas
	}
	if lonMas < 0 {
		ew = "W"
		lonMas = -lonMas
	}
	fm := func(mas int64) (d, m int64, s float64) {
		d = mas / locMasPerDeg
		rem := mas % locMasPerDeg
		m = rem / 60000
		s = float64(rem%60000) / 1000
		return
	}
	latD, latM, latS := fm(latMas)
	lonD, lonM, lonS := fm(lonMas)
	altM := (float64(l.Altitude) - locAltBase) / centiPerMeter
	return fmt.Sprintf("%d %d %.3f %s %d %d %.3f %s %.2fm %s %s %s",
		latD, latM, latS, ns, lonD, lonM, lonS, ew, altM,
		precString(l.Size), precString(l.HorizPre), precString(l.VertPre))
}

// precString renders a base/exponent precision octet as metres.
func precString(p uint8) string {
	base := int64(p >> 4)
	exp := int(p & 0x0f)
	cm := base
	for i := 0; i < exp; i++ {
		cm *= 10
	}
	if cm%100 == 0 {
		return fmt.Sprintf("%dm", cm/100)
	}
	return fmt.Sprintf("%.2fm", float64(cm)/100)
}

// parsePrec parses a "<n>m" precision into the base/exponent octet.
func parsePrec(s string) (uint8, error) {
	s = strings.TrimSuffix(s, "m")
	v, err := strconv.ParseFloat(s, 64)
	if err != nil {
		return 0, fmt.Errorf("dnsdb: bad precision %q", s)
	}
	cm := int64(math.Round(v * centiPerMeter))
	if cm == 0 {
		return 0, nil
	}
	exp := uint8(0)
	for cm >= 10 && cm%10 == 0 {
		cm /= 10
		exp++
	}
	for cm > 9 { // round up mantissa overflow
		cm = (cm + 9) / 10
		exp++
	}
	return uint8(cm)<<4 | (exp & 0x0f), nil
}

// ParseText parses the master-file text form produced by String. The
// trailing altitude and precision fields are optional, as in the RFC.
func ParseText(s string) (LOC, error) {
	fields := strings.Fields(s)
	// Minimum: "d N d E" — but we require at least degrees and
	// hemisphere for both axes.
	parseAxis := func(fs []string, hemi1, hemi2 string) (mas int64, used int, err error) {
		var d, m int64
		var sec float64
		if len(fs) < 2 {
			return 0, 0, fmt.Errorf("dnsdb: truncated LOC text")
		}
		d, err = strconv.ParseInt(fs[0], 10, 64)
		if err != nil {
			return 0, 0, fmt.Errorf("dnsdb: bad degrees %q", fs[0])
		}
		used = 1
		if len(fs) > used {
			if v, e := strconv.ParseInt(fs[used], 10, 64); e == nil {
				m = v
				used++
				if len(fs) > used {
					if v2, e2 := strconv.ParseFloat(fs[used], 64); e2 == nil {
						sec = v2
						used++
					}
				}
			}
		}
		if len(fs) <= used {
			return 0, 0, fmt.Errorf("dnsdb: missing hemisphere")
		}
		hemi := fs[used]
		used++
		mas = d*locMasPerDeg + m*60000 + int64(math.Round(sec*1000))
		switch hemi {
		case hemi1:
		case hemi2:
			mas = -mas
		default:
			return 0, 0, fmt.Errorf("dnsdb: bad hemisphere %q", hemi)
		}
		return mas, used, nil
	}

	latMas, n, err := parseAxis(fields, "N", "S")
	if err != nil {
		return LOC{}, err
	}
	fields = fields[n:]
	lonMas, n, err := parseAxis(fields, "E", "W")
	if err != nil {
		return LOC{}, err
	}
	fields = fields[n:]

	l := LOC{
		Size:      defaultSize,
		HorizPre:  defaultHoriz,
		VertPre:   defaultVert,
		Latitude:  uint32(int64(locEquator) + latMas),
		Longitude: uint32(int64(locEquator) + lonMas),
		Altitude:  locAltBase,
	}
	if len(fields) > 0 {
		alt, err := strconv.ParseFloat(strings.TrimSuffix(fields[0], "m"), 64)
		if err != nil {
			return LOC{}, fmt.Errorf("dnsdb: bad altitude %q", fields[0])
		}
		l.Altitude = uint32(locAltBase + int64(math.Round(alt*centiPerMeter)))
		fields = fields[1:]
	}
	precs := []*uint8{&l.Size, &l.HorizPre, &l.VertPre}
	for i := 0; i < len(precs) && i < len(fields); i++ {
		p, err := parsePrec(fields[i])
		if err != nil {
			return LOC{}, err
		}
		*precs[i] = p
	}
	return l, nil
}
