package netsim

import "geonet/internal/netgen"

// Hop is one step of a forwarding path: the router reached and the
// interface the packet entered it by. The entry interface is what an
// expiring probe's ICMP Time Exceeded reply is sourced from — the
// reason traceroute maps interfaces rather than routers.
type Hop struct {
	Router  netgen.RouterID
	InIface netgen.IfaceID // None at the originating router
}

// maxSteps bounds a forwarding walk; anything longer indicates a
// routing loop and the walk is reported as failed.
const maxSteps = 96

// Path computes the router-level forwarding path from src to dst. The
// first hop is src itself (InIface None). ok is false when no route
// exists or a loop guard triggers.
func (n *Network) Path(src, dst netgen.RouterID) ([]Hop, bool) {
	path := make([]Hop, 0, 16)
	path = append(path, Hop{Router: src, InIface: netgen.None})
	cur := src
	dstAS := n.In.Routers[dst].AS
	for cur != dst {
		if len(path) > maxSteps {
			return path, false
		}
		curAS := n.In.Routers[cur].AS
		var edge halfEdge
		found := false
		if curAS == dstAS {
			t := n.intraNext(dst)
			nh := t[n.In.Routers[cur].ASIndex]
			if nh == netgen.None {
				return path, false
			}
			edge, found = n.findEdge(cur, netgen.RouterID(nh))
		} else {
			nextAS := n.NextAS(curAS, dstAS)
			if nextAS == netgen.None {
				return path, false
			}
			// Cross directly if this router borders the next AS
			// (hot-potato exit at the first opportunity).
			for _, ie := range n.interHops[cur] {
				if ie.peerAS == nextAS {
					edge, found = ie.edge, true
					break
				}
			}
			if !found {
				t := n.egressNext(curAS, nextAS)
				nh := t[n.In.Routers[cur].ASIndex]
				if nh == netgen.None {
					return path, false
				}
				edge, found = n.findEdge(cur, netgen.RouterID(nh))
			}
		}
		if !found {
			return path, false
		}
		path = append(path, Hop{Router: edge.peer, InIface: edge.peerIface})
		cur = edge.peer
	}
	return path, true
}

// findEdge locates the half-edge from cur to nh (the lowest-interface
// one if several exist, for determinism).
func (n *Network) findEdge(cur, nh netgen.RouterID) (halfEdge, bool) {
	var best halfEdge
	found := false
	for _, e := range n.adj[cur] {
		if e.peer != nh {
			continue
		}
		if !found || e.selfIface < best.selfIface {
			best = e
			found = true
		}
	}
	return best, found
}

// LookupDest resolves an arbitrary IPv4 destination address to the
// router that terminates probes sent to it: the owning router for an
// interface address, or the home router of the covering allocated /24
// (standing in for an end host on that subnet). ok is false for
// unallocated space.
func (n *Network) LookupDest(ip uint32) (netgen.RouterID, bool) {
	if ifid, ok := n.In.ByIP[ip]; ok {
		return n.In.Ifaces[ifid].Router, true
	}
	if r, ok := n.In.Prefix24Router[ip&^0xff]; ok {
		return r, true
	}
	return netgen.None, false
}

// PathToIP routes from a source router toward an arbitrary destination
// address.
func (n *Network) PathToIP(src netgen.RouterID, dstIP uint32) ([]Hop, netgen.RouterID, bool) {
	dst, ok := n.LookupDest(dstIP)
	if !ok {
		return nil, netgen.None, false
	}
	path, ok := n.Path(src, dst)
	return path, dst, ok
}

// PathVia implements loose source routing: route to the via router
// first, then on to the destination. The via router appears once. This
// is Mercator's mechanism for discovering lateral links that plain
// single-source probing misses.
func (n *Network) PathVia(src, via, dst netgen.RouterID) ([]Hop, bool) {
	first, ok := n.Path(src, via)
	if !ok {
		return first, false
	}
	second, ok := n.Path(via, dst)
	if !ok {
		return append(first, second[1:]...), false
	}
	return append(first, second[1:]...), true
}

// AliasReply simulates a UDP probe to an interface address: the owning
// router replies with an ICMP Port Unreachable sourced from its
// canonical address. Replies are suppressed for unresponsive routers
// and for ASes whose intrusion detection filters probe traffic; routers
// with broken alias behaviour reply from the probed interface instead,
// all as described in Section III-A of the paper.
func (n *Network) AliasReply(ip uint32) (uint32, bool) {
	ifid, ok := n.In.ByIP[ip]
	if !ok {
		return 0, false
	}
	r := n.In.RouterOf(ifid)
	if r.Unresponsive {
		return 0, false
	}
	if n.In.ASes[r.AS].IDSBlocks {
		return 0, false
	}
	if r.BrokenAlias {
		return ip, true
	}
	return r.CanonicalIP, true
}

// Degree returns a router's physical degree (diagnostics and tests).
func (n *Network) Degree(r netgen.RouterID) int { return len(n.adj[r]) }
