package netsim

import "geonet/internal/netgen"

// Hop is one step of a forwarding path: the router reached and the
// interface the packet entered it by. The entry interface is what an
// expiring probe's ICMP Time Exceeded reply is sourced from — the
// reason traceroute maps interfaces rather than routers.
type Hop struct {
	Router  netgen.RouterID
	InIface netgen.IfaceID // None at the originating router
}

// maxSteps bounds a forwarding walk; anything longer indicates a
// routing loop and the walk is reported as failed.
const maxSteps = 96

// Path computes the router-level forwarding path from src to dst. The
// first hop is src itself (InIface None). ok is false when no route
// exists or a loop guard triggers.
func (n *Network) Path(src, dst netgen.RouterID) ([]Hop, bool) {
	return n.AppendPath(make([]Hop, 0, 16), src, dst)
}

// AppendPath is Path with caller-owned storage: hops are appended to
// path (which may be nil or a recycled buffer sliced to length 0) and
// the possibly-regrown slice is returned, so tight probe loops reuse
// one buffer instead of allocating per trace.
func (n *Network) AppendPath(path []Hop, src, dst netgen.RouterID) ([]Hop, bool) {
	return n.walk(path, src, dst, false)
}

// walk appends the forwarding path from src to dst. When cont is true
// the walk continues an existing path whose last hop is already src
// (loose-source-routing legs), so the starting hop is not re-appended;
// the loop guard still counts it.
//
// Table lookups are hoisted out of the per-hop loop: within one AS
// segment every hop consults the same memoised table, so the walk
// fetches it once per segment instead of once per hop. The hop
// sequence is identical to the hop-at-a-time walk it replaced.
func (n *Network) walk(path []Hop, src, dst netgen.RouterID, cont bool) ([]Hop, bool) {
	if !cont {
		path = append(path, Hop{Router: src, InIface: netgen.None})
	}
	steps := 1 // hops walked this leg, counting src
	cur := src
	dstAS := n.In.Routers[dst].AS
	for cur != dst {
		curAS := n.In.Routers[cur].AS
		if curAS == dstAS {
			// Terminal segment: shortest path inside dst's AS.
			t := n.intraNext(dst)
			base := n.asBase[curAS]
			for cur != dst {
				if steps > maxSteps {
					return path, false
				}
				nh := t[int32(cur)-base]
				if nh == netgen.None {
					return path, false
				}
				e := n.findIntraEdge(cur, netgen.RouterID(nh))
				if e == nil {
					return path, false
				}
				path = append(path, Hop{Router: e.peer, InIface: e.peerIface})
				steps++
				cur = e.peer
			}
			return path, true
		}
		// Interdomain segment: walk toward the hot-potato exit into
		// nextAS, crossing as soon as a border router is reached.
		nextAS := n.NextAS(curAS, dstAS)
		if nextAS == netgen.None {
			return path, false
		}
		base := n.asBase[curAS]
		var t []int32 // egress table, fetched on first non-border hop
		for {
			if steps > maxSteps {
				return path, false
			}
			if e := n.findInterEdge(cur, nextAS); e != nil {
				// Cross directly: hot-potato exit at the first
				// opportunity.
				path = append(path, Hop{Router: e.peer, InIface: e.peerIface})
				steps++
				cur = e.peer
				break
			}
			if t == nil {
				t = n.egressNext(curAS, nextAS)
			}
			nh := t[int32(cur)-base]
			if nh == netgen.None {
				return path, false
			}
			e := n.findIntraEdge(cur, netgen.RouterID(nh))
			if e == nil {
				return path, false
			}
			path = append(path, Hop{Router: e.peer, InIface: e.peerIface})
			steps++
			cur = e.peer
		}
	}
	return path, true
}

// findIntraEdge locates the intra-AS half-edge from cur to nh (the
// lowest-interface one if several exist, for determinism), scanning
// cur's contiguous intra slab.
func (n *Network) findIntraEdge(cur, nh netgen.RouterID) *csrEdge {
	var best *csrEdge
	for i := n.estart[cur]; i < n.eintra[cur]; i++ {
		e := &n.edges[i]
		if e.peer != nh {
			continue
		}
		if best == nil || e.selfIface < best.selfIface {
			best = e
		}
	}
	return best
}

// findInterEdge returns cur's first interdomain half-edge into peerAS
// (first in Links order, matching the interdomain hop lists this layout
// replaced), or nil when cur does not border that AS.
func (n *Network) findInterEdge(cur netgen.RouterID, peerAS netgen.ASID) *csrEdge {
	for i := n.eintra[cur]; i < n.estart[int(cur)+1]; i++ {
		e := &n.edges[i]
		if e.peerTag == int32(peerAS) {
			return e
		}
	}
	return nil
}

// LookupDest resolves an arbitrary IPv4 destination address to the
// router that terminates probes sent to it: the owning router for an
// interface address, or the home router of the covering allocated /24
// (standing in for an end host on that subnet). ok is false for
// unallocated space.
func (n *Network) LookupDest(ip uint32) (netgen.RouterID, bool) {
	if ifid, ok := n.In.ByIP[ip]; ok {
		return n.In.Ifaces[ifid].Router, true
	}
	if r, ok := n.In.Prefix24Router[ip&^0xff]; ok {
		return r, true
	}
	return netgen.None, false
}

// PathToIP routes from a source router toward an arbitrary destination
// address.
func (n *Network) PathToIP(src netgen.RouterID, dstIP uint32) ([]Hop, netgen.RouterID, bool) {
	dst, ok := n.LookupDest(dstIP)
	if !ok {
		return nil, netgen.None, false
	}
	path, ok := n.Path(src, dst)
	return path, dst, ok
}

// AppendPathToIP is PathToIP with caller-owned storage (see
// AppendPath). The returned slice is path regrown, even on failure.
func (n *Network) AppendPathToIP(path []Hop, src netgen.RouterID, dstIP uint32) ([]Hop, netgen.RouterID, bool) {
	dst, ok := n.LookupDest(dstIP)
	if !ok {
		return path, netgen.None, false
	}
	path, ok = n.AppendPath(path, src, dst)
	return path, dst, ok
}

// PathVia implements loose source routing: route to the via router
// first, then on to the destination. The via router appears once. This
// is Mercator's mechanism for discovering lateral links that plain
// single-source probing misses.
func (n *Network) PathVia(src, via, dst netgen.RouterID) ([]Hop, bool) {
	return n.AppendPathVia(make([]Hop, 0, 16), src, via, dst)
}

// AppendPathVia is PathVia with caller-owned storage (see AppendPath).
func (n *Network) AppendPathVia(path []Hop, src, via, dst netgen.RouterID) ([]Hop, bool) {
	path, ok := n.walk(path, src, via, false)
	if !ok {
		return path, false
	}
	// Second leg: continue from via with its own loop-guard budget, as
	// two chained walks.
	return n.walk(path, via, dst, true)
}

// AliasReply simulates a UDP probe to an interface address: the owning
// router replies with an ICMP Port Unreachable sourced from its
// canonical address. Replies are suppressed for unresponsive routers
// and for ASes whose intrusion detection filters probe traffic; routers
// with broken alias behaviour reply from the probed interface instead,
// all as described in Section III-A of the paper.
func (n *Network) AliasReply(ip uint32) (uint32, bool) {
	ifid, ok := n.In.ByIP[ip]
	if !ok {
		return 0, false
	}
	r := n.In.RouterOf(ifid)
	if r.Unresponsive {
		return 0, false
	}
	if n.In.ASes[r.AS].IDSBlocks {
		return 0, false
	}
	if r.BrokenAlias {
		return ip, true
	}
	return r.CanonicalIP, true
}

// Degree returns a router's physical degree (diagnostics and tests).
func (n *Network) Degree(r netgen.RouterID) int {
	return int(n.estart[int(r)+1] - n.estart[r])
}
