package netsim

import (
	"reflect"
	"sync"
	"testing"

	"geonet/internal/netgen"
	"geonet/internal/rng"
)

// TestCSRMatchesReference is the golden test for the CSR rewrite: over
// a spread of random pairs (plus loose-source-routed triples), the
// compiled fabric must reproduce the seed implementation's forwarding
// paths hop for hop — same routers, same inbound interfaces, same
// success flags — proving equal-cost tie-breaking survived the change
// of adjacency layout and priority queue.
func TestCSRMatchesReference(t *testing.T) {
	in, net := compileSmall(t)
	ref := refCompile(in, net)
	s := rng.New(41)
	for i := 0; i < 600; i++ {
		src := netgen.RouterID(s.Intn(len(in.Routers)))
		dst := netgen.RouterID(s.Intn(len(in.Routers)))
		got, gotOK := net.Path(src, dst)
		want, wantOK := ref.path(src, dst)
		if gotOK != wantOK || !reflect.DeepEqual(got, want) {
			t.Fatalf("path %d->%d diverges from reference:\n got %v ok=%v\nwant %v ok=%v",
				src, dst, got, gotOK, want, wantOK)
		}
	}
	for i := 0; i < 200; i++ {
		src := netgen.RouterID(s.Intn(len(in.Routers)))
		via := netgen.RouterID(s.Intn(len(in.Routers)))
		dst := netgen.RouterID(s.Intn(len(in.Routers)))
		got, gotOK := net.PathVia(src, via, dst)
		want, wantOK := ref.pathVia(src, via, dst)
		if gotOK != wantOK || !reflect.DeepEqual(got, want) {
			t.Fatalf("source-routed path %d->%d->%d diverges from reference",
				src, via, dst)
		}
	}
}

// TestBordersMatchReference proves the set-based addBorder dedup keeps
// the seed's first-appearance border order — the order border routers
// seed the egress Dijkstra, which equal-cost tables depend on.
func TestBordersMatchReference(t *testing.T) {
	in, net := compileSmall(t)
	ref := refCompile(in, net)
	if len(net.borders) != len(ref.borders) {
		t.Fatalf("border key count %d, reference %d", len(net.borders), len(ref.borders))
	}
	for key, want := range ref.borders {
		if got := net.borders[key]; !reflect.DeepEqual(got, want) {
			t.Fatalf("borders[%v] = %v, reference %v", key, got, want)
		}
	}
}

// TestConcurrentProbingTinyBudget hammers one compiled network from
// many goroutines while a tiny cache budget forces constant eviction,
// and cross-checks every concurrent path against a serial recompute.
// Run under -race (CI does) this also proves the sharded caches and
// single-flight guards are data-race free.
func TestConcurrentProbingTinyBudget(t *testing.T) {
	in, _ := compileSmall(t)
	net := Compile(in)
	net.CacheBudget = 4
	const workers = 8
	type probe struct {
		src, dst netgen.RouterID
	}
	var wg sync.WaitGroup
	results := make([][]probe, workers)
	paths := make([][][]Hop, workers)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			s := rng.New(int64(100 + w))
			for i := 0; i < 150; i++ {
				src := netgen.RouterID(s.Intn(len(in.Routers)))
				dst := netgen.RouterID(s.Intn(len(in.Routers)))
				p, ok := net.Path(src, dst)
				if !ok {
					p = nil
				}
				results[w] = append(results[w], probe{src, dst})
				paths[w] = append(paths[w], p)
			}
		}(w)
	}
	wg.Wait()
	// Serial ground truth on a fresh, unpressured network.
	serial := Compile(in)
	for w := 0; w < workers; w++ {
		for i, pr := range results[w] {
			want, ok := serial.Path(pr.src, pr.dst)
			if !ok {
				want = nil
			}
			if !reflect.DeepEqual(paths[w][i], want) {
				t.Fatalf("worker %d probe %d (%d->%d): concurrent path under eviction differs from serial",
					w, i, pr.src, pr.dst)
			}
		}
	}
}

// TestCacheEvictionBounds pins the eviction contract: the cached-table
// count stays near the budget (a sweep triggers once the budget is
// exceeded and frees at least half), paths stay correct throughout,
// and re-probing after eviction recomputes identical tables.
func TestCacheEvictionBounds(t *testing.T) {
	in, _ := compileSmall(t)
	net := Compile(in)
	net.CacheBudget = 8
	s := rng.New(8)
	maxSeen := 0
	for i := 0; i < 300; i++ {
		src := netgen.RouterID(s.Intn(len(in.Routers)))
		dst := netgen.RouterID(s.Intn(len(in.Routers)))
		path, ok := net.Path(src, dst)
		if ok && path[len(path)-1].Router != dst {
			t.Fatal("path wrong under eviction pressure")
		}
		if c := net.CachedTables(); c > maxSeen {
			maxSeen = c
		}
	}
	// A single walk can pull in several tables past the threshold
	// before its next miss triggers the sweep; anything beyond budget
	// plus one walk's worth of tables means eviction never ran.
	if maxSeen > net.CacheBudget+maxSteps {
		t.Errorf("cached tables reached %d; budget %d never enforced", maxSeen, net.CacheBudget)
	}
	if net.CachedTables() == 0 && maxSeen == 0 {
		t.Error("cache never populated")
	}
	// Determinism across eviction: the same route recomputed after a
	// wipe must match a never-evicted network.
	fresh := Compile(in)
	for i := 0; i < 50; i++ {
		src := netgen.RouterID(s.Intn(len(in.Routers)))
		dst := netgen.RouterID(s.Intn(len(in.Routers)))
		p1, ok1 := net.Path(src, dst)
		p2, ok2 := fresh.Path(src, dst)
		if ok1 != ok2 || !reflect.DeepEqual(p1, p2) {
			t.Fatalf("post-eviction path %d->%d differs from fresh network", src, dst)
		}
	}
}

// TestSingleFlight checks that concurrent misses for one destination
// produce one shared table: all callers must get the exact same slice
// (pointer equality), not equal copies.
func TestSingleFlight(t *testing.T) {
	in, _ := compileSmall(t)
	net := Compile(in)
	// Pick a destination in a reasonably large AS so the SPF is slow
	// enough for the flights to overlap.
	var dst netgen.RouterID = 0
	for _, as := range in.ASes {
		if len(as.Routers) >= 30 {
			dst = as.Routers[len(as.Routers)/2]
			break
		}
	}
	const callers = 16
	tables := make([][]int32, callers)
	var start, done sync.WaitGroup
	start.Add(1)
	done.Add(callers)
	for c := 0; c < callers; c++ {
		go func(c int) {
			defer done.Done()
			start.Wait()
			tables[c] = net.intraNext(dst)
		}(c)
	}
	start.Done()
	done.Wait()
	for c := 1; c < callers; c++ {
		if &tables[c][0] != &tables[0][0] {
			t.Fatalf("caller %d received a distinct table for the same destination", c)
		}
	}
	if got := net.CachedTables(); got != 1 {
		t.Fatalf("cached %d tables after single-flight race, want 1", got)
	}
}
