package netsim

// The seed implementation of the routing core, preserved verbatim (per
// -router adjacency lists, container/heap priority queue, global
// RWMutex caches) as a golden reference: TestCSRMatchesReference proves
// the CSR forwarding fabric reproduces its paths hop for hop, including
// equal-cost tie-breaks, which is what lets the rewrite claim
// byte-identical reports rather than merely plausible ones.

import (
	"container/heap"
	"sync"

	"geonet/internal/netgen"
)

type refNetwork struct {
	in        *netgen.Internet
	adj       [][]refHalfEdge
	interHops map[netgen.RouterID][]refInterEdge
	borders   map[[2]netgen.ASID][]netgen.RouterID

	mu          sync.RWMutex
	intraCache  map[netgen.RouterID][]int32
	egressCache map[[2]netgen.ASID][]int32

	// The AS-path table is topology-only and identical by construction;
	// the reference borrows it from the compiled network under test.
	net *Network
}

type refHalfEdge struct {
	peer      netgen.RouterID
	selfIface netgen.IfaceID
	peerIface netgen.IfaceID
	lengthMi  float64
}

type refInterEdge struct {
	peerAS netgen.ASID
	edge   refHalfEdge
}

func refCompile(in *netgen.Internet, net *Network) *refNetwork {
	n := &refNetwork{
		in:          in,
		adj:         make([][]refHalfEdge, len(in.Routers)),
		interHops:   make(map[netgen.RouterID][]refInterEdge),
		borders:     make(map[[2]netgen.ASID][]netgen.RouterID),
		intraCache:  make(map[netgen.RouterID][]int32),
		egressCache: make(map[[2]netgen.ASID][]int32),
		net:         net,
	}
	for _, l := range in.Links {
		a, b := in.Ifaces[l.A], in.Ifaces[l.B]
		n.adj[a.Router] = append(n.adj[a.Router], refHalfEdge{
			peer: b.Router, selfIface: l.A, peerIface: l.B, lengthMi: l.LengthMi})
		n.adj[b.Router] = append(n.adj[b.Router], refHalfEdge{
			peer: a.Router, selfIface: l.B, peerIface: l.A, lengthMi: l.LengthMi})
		if l.Inter {
			asA := in.Routers[a.Router].AS
			asB := in.Routers[b.Router].AS
			n.interHops[a.Router] = append(n.interHops[a.Router], refInterEdge{peerAS: asB, edge: refHalfEdge{
				peer: b.Router, selfIface: l.A, peerIface: l.B, lengthMi: l.LengthMi}})
			n.interHops[b.Router] = append(n.interHops[b.Router], refInterEdge{peerAS: asA, edge: refHalfEdge{
				peer: a.Router, selfIface: l.B, peerIface: l.A, lengthMi: l.LengthMi}})
			n.refAddBorder(asA, asB, a.Router)
			n.refAddBorder(asB, asA, b.Router)
		}
	}
	return n
}

// refAddBorder keeps the seed's O(n²) linear-scan dedup: it IS the
// specification the set-based dedup must reproduce (same first
// -appearance order).
func (n *refNetwork) refAddBorder(from, to netgen.ASID, r netgen.RouterID) {
	key := [2]netgen.ASID{from, to}
	for _, existing := range n.borders[key] {
		if existing == r {
			return
		}
	}
	n.borders[key] = append(n.borders[key], r)
}

type refPQItem struct {
	router netgen.RouterID
	dist   float64
}

type refPQ []refPQItem

func (p refPQ) Len() int            { return len(p) }
func (p refPQ) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p refPQ) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *refPQ) Push(x interface{}) { *p = append(*p, x.(refPQItem)) }
func (p *refPQ) Pop() interface{} {
	old := *p
	n := len(old)
	item := old[n-1]
	*p = old[:n-1]
	return item
}

func (n *refNetwork) spfToSources(as *netgen.AS, sources []netgen.RouterID) []int32 {
	size := len(as.Routers)
	next := make([]int32, size)
	dist := make([]float64, size)
	for i := range next {
		next[i] = netgen.None
		dist[i] = -1
	}
	h := make(refPQ, 0, len(sources))
	for _, s := range sources {
		idx := n.in.Routers[s].ASIndex
		if dist[idx] == -1 {
			dist[idx] = 0
			next[idx] = int32(s)
			heap.Push(&h, refPQItem{router: s, dist: 0})
		}
	}
	asID := as.ID
	for h.Len() > 0 {
		item := heap.Pop(&h).(refPQItem)
		cur := item.router
		curIdx := n.in.Routers[cur].ASIndex
		if item.dist > dist[curIdx] {
			continue
		}
		for _, e := range n.adj[cur] {
			if n.in.Routers[e.peer].AS != asID {
				continue
			}
			pIdx := n.in.Routers[e.peer].ASIndex
			nd := item.dist + e.lengthMi + 5
			if dist[pIdx] == -1 || nd < dist[pIdx] {
				dist[pIdx] = nd
				next[pIdx] = int32(cur)
				heap.Push(&h, refPQItem{router: e.peer, dist: nd})
			}
		}
	}
	return next
}

func (n *refNetwork) intraNext(dst netgen.RouterID) []int32 {
	n.mu.RLock()
	t, ok := n.intraCache[dst]
	n.mu.RUnlock()
	if ok {
		return t
	}
	as := n.in.ASOf(dst)
	t = n.spfToSources(as, []netgen.RouterID{dst})
	n.mu.Lock()
	n.intraCache[dst] = t
	n.mu.Unlock()
	return t
}

func (n *refNetwork) egressNext(a, b netgen.ASID) []int32 {
	key := [2]netgen.ASID{a, b}
	n.mu.RLock()
	t, ok := n.egressCache[key]
	n.mu.RUnlock()
	if ok {
		return t
	}
	borders := n.borders[key]
	t = n.spfToSources(&n.in.ASes[a], borders)
	n.mu.Lock()
	n.egressCache[key] = t
	n.mu.Unlock()
	return t
}

func (n *refNetwork) path(src, dst netgen.RouterID) ([]Hop, bool) {
	path := make([]Hop, 0, 16)
	path = append(path, Hop{Router: src, InIface: netgen.None})
	cur := src
	dstAS := n.in.Routers[dst].AS
	for cur != dst {
		if len(path) > maxSteps {
			return path, false
		}
		curAS := n.in.Routers[cur].AS
		var edge refHalfEdge
		found := false
		if curAS == dstAS {
			t := n.intraNext(dst)
			nh := t[n.in.Routers[cur].ASIndex]
			if nh == netgen.None {
				return path, false
			}
			edge, found = n.findEdge(cur, netgen.RouterID(nh))
		} else {
			nextAS := n.net.NextAS(curAS, dstAS)
			if nextAS == netgen.None {
				return path, false
			}
			for _, ie := range n.interHops[cur] {
				if ie.peerAS == nextAS {
					edge, found = ie.edge, true
					break
				}
			}
			if !found {
				t := n.egressNext(curAS, nextAS)
				nh := t[n.in.Routers[cur].ASIndex]
				if nh == netgen.None {
					return path, false
				}
				edge, found = n.findEdge(cur, netgen.RouterID(nh))
			}
		}
		if !found {
			return path, false
		}
		path = append(path, Hop{Router: edge.peer, InIface: edge.peerIface})
		cur = edge.peer
	}
	return path, true
}

func (n *refNetwork) findEdge(cur, nh netgen.RouterID) (refHalfEdge, bool) {
	var best refHalfEdge
	found := false
	for _, e := range n.adj[cur] {
		if e.peer != nh {
			continue
		}
		if !found || e.selfIface < best.selfIface {
			best = e
			found = true
		}
	}
	return best, found
}

func (n *refNetwork) pathVia(src, via, dst netgen.RouterID) ([]Hop, bool) {
	first, ok := n.path(src, via)
	if !ok {
		return first, false
	}
	second, ok := n.path(via, dst)
	if !ok {
		return append(first, second[1:]...), false
	}
	return append(first, second[1:]...), true
}
