// Package netsim is the packet-level network simulator the probing
// tools run against. It compiles a netgen.Internet into forwarding
// state and implements the protocol semantics measurement tools depend
// on:
//
//   - hierarchical routing: shortest AS path between domains, hot-potato
//     (nearest-exit) egress selection, and shortest-path forwarding
//     inside each AS;
//   - ICMP Time Exceeded replies sourced from the interface the probe
//     arrived on (what makes traceroute see interfaces, Section III-A);
//   - ICMP Port Unreachable replies sourced from a router's canonical
//     address (what Mercator's alias resolution keys on, Section III-A);
//   - loose source routing (Mercator's lateral-discovery mechanism);
//   - unresponsive routers, IDS-filtered alias probes and per-hop loss.
//
// # Forwarding fabric layout
//
// The adjacency is a compressed sparse row (CSR) over the AS-partition
// ordering netgen guarantees (each AS's routers occupy one contiguous
// RouterID range, see netgen.Internet.CheckASPartition). All half-edges
// live in one flat slab, grouped per router with the intra-AS edges
// first and the interdomain edges after, both groups preserving Links
// order. Intra-AS Dijkstra therefore iterates a contiguous edge run
// with no per-edge AS filtering, and each edge carries its peer's dense
// in-AS index so the relaxation never touches the Routers slice.
//
// The Dijkstra itself is allocation-free on the steady path: its
// priority queue is a non-interface index heap replicating
// container/heap's exact comparison order (so shortest-path tie-breaks
// are bit-identical to the boxed implementation it replaced), and the
// distance and heap scratch buffers are recycled through a sync.Pool.
// Only the resulting next-hop table is allocated, because it outlives
// the computation in the cache.
//
// # Routing-table caches
//
// Routing state is computed lazily and memoised: per-destination
// shortest-path next-hops inside the destination's AS, and per
// (AS, next-AS) hot-potato next-hops toward the nearest border router.
// The memos are sharded per AS. A cache hit is one atomic pointer load
// — no lock — so concurrent probes never contend on a global mutex; a
// miss computes the table under a per-shard single-flight guard, so
// many probes racing toward one destination compute its table once.
// When the total number of cached tables exceeds CacheBudget, shards
// are evicted round-robin until half the budget is free, instead of
// dropping every table at once. Every table is a pure function of the
// immutable topology, so cache timing never changes forwarding results.
package netsim

import (
	"fmt"
	"sort"
	"sync"
	"sync/atomic"

	"geonet/internal/netgen"
)

// Network is the compiled forwarding fabric.
type Network struct {
	In *netgen.Internet

	// CSR adjacency: edges[estart[r]:eintra[r]] are router r's intra-AS
	// half-edges, edges[eintra[r]:estart[r+1]] its interdomain ones.
	// Both groups preserve Links order, which keeps Dijkstra's edge
	// relaxation order — and therefore equal-cost tie-breaking —
	// identical to the per-router adjacency lists this layout replaced.
	estart []int32
	eintra []int32
	edges  []csrEdge

	// asBase[a] is the first RouterID of AS a (the AS-partition
	// ordering invariant), so a router's dense in-AS index is its ID
	// minus the base.
	asBase []int32

	// asNext[a*numAS+b] is the next AS on a shortest AS path a->b
	// (netgen.None when unreachable).
	asNext []int32
	numAS  int

	// borders[a][b] lists routers of AS a having a direct link to AS b,
	// in first-appearance (Links) order.
	borders map[[2]netgen.ASID][]netgen.RouterID

	// shards holds the per-AS routing-table caches; cached counts the
	// tables held across all shards against CacheBudget, and clock is
	// the round-robin eviction hand.
	shards  []routeShard
	cached  atomic.Int64
	clock   atomic.Uint32
	evictMu sync.Mutex

	// CacheBudget bounds the total number of memoised tables; eviction
	// clears shards round-robin until half the budget is free.
	CacheBudget int
}

// csrEdge is one directed half-edge in the flat adjacency slab.
type csrEdge struct {
	peer netgen.RouterID
	// peerTag is the peer's dense in-AS index for intra-AS edges, and
	// the peer's AS for interdomain edges.
	peerTag   int32
	selfIface netgen.IfaceID // interface on this router
	peerIface netgen.IfaceID // interface on the peer (its inbound side)
	lengthMi  float64
}

// routeShard is one AS's routing-table cache. Table reads are lock-free
// atomic pointer loads; misses coordinate through mu and the
// single-flight maps so a table is computed once no matter how many
// probes race toward it.
type routeShard struct {
	mu    sync.Mutex
	count int32 // cached tables in this shard (guarded by mu)

	// intra[i] caches the next-hop table toward the router with in-AS
	// index i; egress[j] caches the hot-potato table toward
	// egressPeers[j] (sorted at compile time).
	intra       []atomic.Pointer[[]int32]
	egressPeers []netgen.ASID
	egress      []atomic.Pointer[[]int32]

	flIntra  map[int32]*flight       // guarded by mu
	flEgress map[netgen.ASID]*flight // guarded by mu
}

// flight is one in-progress table computation other probes can wait on.
type flight struct {
	done  chan struct{}
	table []int32
}

// Compile builds the forwarding fabric from ground truth.
func Compile(in *netgen.Internet) *Network {
	if err := in.CheckASPartition(); err != nil {
		panic(fmt.Sprintf("netsim: %v", err))
	}
	n := &Network{
		In:          in,
		borders:     make(map[[2]netgen.ASID][]netgen.RouterID),
		CacheBudget: 60000,
		numAS:       len(in.ASes),
	}
	n.asBase = make([]int32, len(in.ASes))
	for ai := range in.ASes {
		if rs := in.ASes[ai].Routers; len(rs) > 0 {
			n.asBase[ai] = int32(rs[0])
		}
	}

	// CSR construction: count per-router intra/inter degrees, prefix-sum
	// the slab bounds, then fill in Links order.
	numR := len(in.Routers)
	intraDeg := make([]int32, numR)
	interDeg := make([]int32, numR)
	for li := range in.Links {
		l := &in.Links[li]
		a, b := in.Ifaces[l.A].Router, in.Ifaces[l.B].Router
		inter := in.Routers[a].AS != in.Routers[b].AS
		if inter != l.Inter {
			panic("netsim: link Inter flag disagrees with endpoint ASes")
		}
		if inter {
			interDeg[a]++
			interDeg[b]++
		} else {
			intraDeg[a]++
			intraDeg[b]++
		}
	}
	n.estart = make([]int32, numR+1)
	n.eintra = make([]int32, numR)
	for r := 0; r < numR; r++ {
		n.eintra[r] = n.estart[r] + intraDeg[r]
		n.estart[r+1] = n.eintra[r] + interDeg[r]
	}
	n.edges = make([]csrEdge, n.estart[numR])
	// Reuse the degree arrays as fill cursors.
	for r := range intraDeg {
		intraDeg[r], interDeg[r] = 0, 0
	}
	borderSeen := make(map[[3]int32]struct{})
	for li := range in.Links {
		l := &in.Links[li]
		a, b := in.Ifaces[l.A].Router, in.Ifaces[l.B].Router
		asA, asB := in.Routers[a].AS, in.Routers[b].AS
		if asA == asB {
			n.edges[n.estart[a]+intraDeg[a]] = csrEdge{
				peer: b, peerTag: in.Routers[b].ASIndex,
				selfIface: l.A, peerIface: l.B, lengthMi: l.LengthMi}
			intraDeg[a]++
			n.edges[n.estart[b]+intraDeg[b]] = csrEdge{
				peer: a, peerTag: in.Routers[a].ASIndex,
				selfIface: l.B, peerIface: l.A, lengthMi: l.LengthMi}
			intraDeg[b]++
		} else {
			n.edges[n.eintra[a]+interDeg[a]] = csrEdge{
				peer: b, peerTag: int32(asB),
				selfIface: l.A, peerIface: l.B, lengthMi: l.LengthMi}
			interDeg[a]++
			n.edges[n.eintra[b]+interDeg[b]] = csrEdge{
				peer: a, peerTag: int32(asA),
				selfIface: l.B, peerIface: l.A, lengthMi: l.LengthMi}
			interDeg[b]++
			n.addBorder(borderSeen, asA, asB, a)
			n.addBorder(borderSeen, asB, asA, b)
		}
	}

	// Egress slots cover every AS each one can hand packets to: its
	// physical border peers plus its declared neighbours (the AS-path
	// BFS runs over Neighbors, so a declared-but-unlinked neighbour
	// still gets a — necessarily empty — table slot). One pass over
	// the border keys keeps this linear in border pairs.
	peerSets := make([]map[netgen.ASID]struct{}, len(in.ASes))
	for ai := range in.ASes {
		peerSets[ai] = make(map[netgen.ASID]struct{}, len(in.ASes[ai].Neighbors))
		for _, nb := range in.ASes[ai].Neighbors {
			peerSets[ai][nb] = struct{}{}
		}
	}
	for key := range n.borders {
		peerSets[key[0]][key[1]] = struct{}{}
	}
	n.shards = make([]routeShard, len(in.ASes))
	for ai := range in.ASes {
		sh := &n.shards[ai]
		sh.intra = make([]atomic.Pointer[[]int32], len(in.ASes[ai].Routers))
		sh.egressPeers = make([]netgen.ASID, 0, len(peerSets[ai]))
		for p := range peerSets[ai] {
			sh.egressPeers = append(sh.egressPeers, p)
		}
		sort.Slice(sh.egressPeers, func(a, b int) bool { return sh.egressPeers[a] < sh.egressPeers[b] })
		sh.egress = make([]atomic.Pointer[[]int32], len(sh.egressPeers))
	}

	n.computeASNext()
	return n
}

// addBorder records r as a border router of AS from toward AS to,
// deduplicating routers with several links into the same peer AS in
// O(1) via the seen set (the linear rescan this replaced was quadratic
// in border-router count per AS pair).
func (n *Network) addBorder(seen map[[3]int32]struct{}, from, to netgen.ASID, r netgen.RouterID) {
	sk := [3]int32{int32(from), int32(to), int32(r)}
	if _, dup := seen[sk]; dup {
		return
	}
	seen[sk] = struct{}{}
	key := [2]netgen.ASID{from, to}
	n.borders[key] = append(n.borders[key], r)
}

// computeASNext runs a BFS from every AS over the AS adjacency graph,
// recording the next hop toward each destination AS. Ties break toward
// the lowest AS ID, keeping forwarding deterministic.
func (n *Network) computeASNext() {
	numAS := n.numAS
	n.asNext = make([]int32, numAS*numAS)
	for i := range n.asNext {
		n.asNext[i] = netgen.None
	}
	// Sorted neighbour lists for deterministic tie-breaking.
	neighbors := make([][]netgen.ASID, numAS)
	for i := range n.In.ASes {
		ns := append([]netgen.ASID{}, n.In.ASes[i].Neighbors...)
		for a := 1; a < len(ns); a++ {
			for b := a; b > 0 && ns[b] < ns[b-1]; b-- {
				ns[b], ns[b-1] = ns[b-1], ns[b]
			}
		}
		neighbors[i] = ns
	}
	dist := make([]int32, numAS)
	queue := make([]netgen.ASID, 0, numAS)
	for src := 0; src < numAS; src++ {
		for i := range dist {
			dist[i] = -1
		}
		queue = queue[:0]
		dist[src] = 0
		queue = append(queue, netgen.ASID(src))
		// firstHop[x] = neighbour of src that the path to x leaves by.
		base := src * numAS
		n.asNext[base+src] = int32(src)
		for qi := 0; qi < len(queue); qi++ {
			cur := queue[qi]
			for _, nb := range neighbors[cur] {
				if dist[nb] != -1 {
					continue
				}
				dist[nb] = dist[cur] + 1
				if cur == netgen.ASID(src) {
					n.asNext[base+int(nb)] = int32(nb)
				} else {
					n.asNext[base+int(nb)] = n.asNext[base+int(cur)]
				}
				queue = append(queue, nb)
			}
		}
	}
}

// NextAS returns the next AS on the path from a to b, or None.
func (n *Network) NextAS(a, b netgen.ASID) netgen.ASID {
	if a == b {
		return a
	}
	return netgen.ASID(n.asNext[int(a)*n.numAS+int(b)])
}

// ---- Dijkstra machinery over one AS's subgraph ----

// spfItem is one priority-queue entry. The queue is an index heap on
// dist that replicates container/heap's sift algorithms exactly, so
// equal-distance pop order — and with it every shortest-path tie-break
// — matches the boxed heap the seed implementation used, without the
// per-push interface allocation.
type spfItem struct {
	dist   float64
	router int32
}

func heapPush(h []spfItem, it spfItem) []spfItem {
	h = append(h, it)
	j := len(h) - 1
	for {
		i := (j - 1) / 2
		if i == j || !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		j = i
	}
	return h
}

func heapPop(h []spfItem) (spfItem, []spfItem) {
	last := len(h) - 1
	h[0], h[last] = h[last], h[0]
	i := 0
	for {
		j1 := 2*i + 1
		if j1 >= last {
			break
		}
		j := j1
		if j2 := j1 + 1; j2 < last && h[j2].dist < h[j1].dist {
			j = j2
		}
		if !(h[j].dist < h[i].dist) {
			break
		}
		h[i], h[j] = h[j], h[i]
		i = j
	}
	return h[last], h[:last]
}

// spfScratch recycles the Dijkstra working set; only the next-hop table
// itself is allocated per run, because it outlives the run in a cache.
type spfScratch struct {
	dist []float64
	heap []spfItem
}

var spfPool = sync.Pool{New: func() interface{} { return &spfScratch{} }}

// spfToSources computes, for every router of the AS, the next hop on a
// shortest path toward the nearest of the given source routers (all of
// which must belong to the AS). Returned as a dense table indexed by
// in-AS index; sources map to themselves; unreachable routers get None.
// Link weights are length in miles plus a 5-mile constant so hop count
// breaks near-ties.
func (n *Network) spfToSources(as *netgen.AS, sources []netgen.RouterID) []int32 {
	size := len(as.Routers)
	next := make([]int32, size)
	sc := spfPool.Get().(*spfScratch)
	if cap(sc.dist) < size {
		sc.dist = make([]float64, size)
	}
	dist := sc.dist[:size]
	for i := range next {
		next[i] = netgen.None
		dist[i] = -1
	}
	h := sc.heap[:0]
	base := n.asBase[as.ID]
	for _, s := range sources {
		idx := int32(s) - base
		if dist[idx] == -1 {
			dist[idx] = 0
			next[idx] = int32(s)
			h = heapPush(h, spfItem{dist: 0, router: int32(s)})
		}
	}
	for len(h) > 0 {
		var item spfItem
		item, h = heapPop(h)
		cur := item.router
		if item.dist > dist[cur-base] {
			continue
		}
		for _, e := range n.edges[n.estart[cur]:n.eintra[cur]] {
			pIdx := e.peerTag
			nd := item.dist + e.lengthMi + 5
			if dist[pIdx] == -1 || nd < dist[pIdx] {
				dist[pIdx] = nd
				next[pIdx] = cur // step toward the source set
				h = heapPush(h, spfItem{dist: nd, router: int32(e.peer)})
			}
		}
	}
	sc.heap = h // len 0; keeps the grown capacity for the next run
	spfPool.Put(sc)
	return next
}

// intraNext returns the next-hop table toward dst within dst's AS. A
// hit is a single atomic load; a miss computes the table under the
// shard's single-flight guard.
func (n *Network) intraNext(dst netgen.RouterID) []int32 {
	r := &n.In.Routers[dst]
	sh := &n.shards[r.AS]
	if p := sh.intra[r.ASIndex].Load(); p != nil {
		return *p
	}
	return n.computeIntra(sh, r.AS, r.ASIndex, dst)
}

func (n *Network) computeIntra(sh *routeShard, as netgen.ASID, idx int32, dst netgen.RouterID) []int32 {
	sh.mu.Lock()
	if p := sh.intra[idx].Load(); p != nil {
		sh.mu.Unlock()
		return *p
	}
	if fl, ok := sh.flIntra[idx]; ok {
		sh.mu.Unlock()
		<-fl.done
		return fl.table
	}
	if sh.flIntra == nil {
		sh.flIntra = make(map[int32]*flight)
	}
	fl := &flight{done: make(chan struct{})}
	sh.flIntra[idx] = fl
	sh.mu.Unlock()

	src := [1]netgen.RouterID{dst}
	t := n.spfToSources(&n.In.ASes[as], src[:])
	fl.table = t
	close(fl.done)

	sh.mu.Lock()
	delete(sh.flIntra, idx)
	sh.intra[idx].Store(&t)
	sh.count++
	sh.mu.Unlock()
	n.cached.Add(1)
	n.maybeEvict()
	return t
}

// egressNext returns the hot-potato next-hop table within AS a toward
// its nearest border with AS b.
func (n *Network) egressNext(a, b netgen.ASID) []int32 {
	sh := &n.shards[a]
	slot := sh.egressSlot(b)
	if slot < 0 {
		// Not a compiled peer (anomalous topology): compute without
		// caching rather than fail.
		return n.spfToSources(&n.In.ASes[a], n.borders[[2]netgen.ASID{a, b}])
	}
	if p := sh.egress[slot].Load(); p != nil {
		return *p
	}
	return n.computeEgress(sh, a, b, slot)
}

func (sh *routeShard) egressSlot(b netgen.ASID) int {
	i := sort.Search(len(sh.egressPeers), func(k int) bool { return sh.egressPeers[k] >= b })
	if i < len(sh.egressPeers) && sh.egressPeers[i] == b {
		return i
	}
	return -1
}

func (n *Network) computeEgress(sh *routeShard, a, b netgen.ASID, slot int) []int32 {
	sh.mu.Lock()
	if p := sh.egress[slot].Load(); p != nil {
		sh.mu.Unlock()
		return *p
	}
	if fl, ok := sh.flEgress[b]; ok {
		sh.mu.Unlock()
		<-fl.done
		return fl.table
	}
	if sh.flEgress == nil {
		sh.flEgress = make(map[netgen.ASID]*flight)
	}
	fl := &flight{done: make(chan struct{})}
	sh.flEgress[b] = fl
	sh.mu.Unlock()

	t := n.spfToSources(&n.In.ASes[a], n.borders[[2]netgen.ASID{a, b}])
	fl.table = t
	close(fl.done)

	sh.mu.Lock()
	delete(sh.flEgress, b)
	sh.egress[slot].Store(&t)
	sh.count++
	sh.mu.Unlock()
	n.cached.Add(1)
	n.maybeEvict()
	return t
}

// CachedTables reports how many routing tables are currently memoised
// (diagnostics and cache tests).
func (n *Network) CachedTables() int { return int(n.cached.Load()) }

// maybeEvict clears shards round-robin once the cached-table count
// exceeds CacheBudget, until half the budget is free again. Holding no
// shard lock while sweeping (and at most one inside the sweep) keeps
// the path deadlock-free; the hysteresis keeps a hot cache from
// flapping at the boundary.
func (n *Network) maybeEvict() {
	if n.CacheBudget <= 0 || int(n.cached.Load()) <= n.CacheBudget {
		return
	}
	n.evictMu.Lock()
	defer n.evictMu.Unlock()
	target := int64(n.CacheBudget / 2)
	// Two full sweeps bound the loop even under concurrent inserts.
	for tries := 0; tries < 2*len(n.shards) && n.cached.Load() > target; tries++ {
		sh := &n.shards[int(n.clock.Add(1)-1)%len(n.shards)]
		sh.mu.Lock()
		freed := int64(sh.count)
		if freed > 0 {
			for i := range sh.intra {
				sh.intra[i].Store(nil)
			}
			for i := range sh.egress {
				sh.egress[i].Store(nil)
			}
			sh.count = 0
		}
		sh.mu.Unlock()
		if freed > 0 {
			n.cached.Add(-freed)
		}
	}
}
