// Package netsim is the packet-level network simulator the probing
// tools run against. It compiles a netgen.Internet into forwarding
// state and implements the protocol semantics measurement tools depend
// on:
//
//   - hierarchical routing: shortest AS path between domains, hot-potato
//     (nearest-exit) egress selection, and shortest-path forwarding
//     inside each AS;
//   - ICMP Time Exceeded replies sourced from the interface the probe
//     arrived on (what makes traceroute see interfaces, Section III-A);
//   - ICMP Port Unreachable replies sourced from a router's canonical
//     address (what Mercator's alias resolution keys on, Section III-A);
//   - loose source routing (Mercator's lateral-discovery mechanism);
//   - unresponsive routers, IDS-filtered alias probes and per-hop loss.
//
// Routing state is computed lazily and memoised: per-destination
// shortest-path next-hops inside the destination's AS, and per
// (AS, next-AS) hot-potato next-hops toward the nearest border router.
// A compiled Network is safe for concurrent probing: the memoisation
// caches are lock-guarded and every table is a pure function of the
// immutable topology, so forwarding results never depend on timing.
package netsim

import (
	"container/heap"
	"sync"

	"geonet/internal/netgen"
)

// Network is the compiled forwarding fabric.
type Network struct {
	In *netgen.Internet

	// adj[r] lists r's attached links as directed half-edges.
	adj [][]halfEdge

	// asNext[a*numAS+b] is the next AS on a shortest AS path a->b
	// (netgen.None when unreachable).
	asNext []int32
	numAS  int

	// interHops[r] lists r's interdomain half-edges keyed by peer AS.
	interHops map[netgen.RouterID][]interEdge

	// borders[a][b] lists routers of AS a having a direct link to AS b.
	borders map[[2]netgen.ASID][]netgen.RouterID

	// intraCache memoises per-destination next-hop tables within the
	// destination's AS; egressCache memoises hot-potato tables toward
	// a neighbouring AS. Both are bounded and guarded by mu so many
	// probes can trace concurrently; tables are pure functions of the
	// immutable topology, so cache races never change results.
	mu          sync.RWMutex
	intraCache  map[netgen.RouterID][]int32
	egressCache map[[2]netgen.ASID][]int32

	// CacheBudget bounds the total number of memoised tables (a reset
	// is cheap; recomputation is lazy).
	CacheBudget int
}

type halfEdge struct {
	peer      netgen.RouterID
	selfIface netgen.IfaceID // interface on this router
	peerIface netgen.IfaceID // interface on the peer (its inbound side)
	lengthMi  float64
}

type interEdge struct {
	peerAS netgen.ASID
	edge   halfEdge
}

// Compile builds the forwarding fabric from ground truth.
func Compile(in *netgen.Internet) *Network {
	n := &Network{
		In:          in,
		adj:         make([][]halfEdge, len(in.Routers)),
		interHops:   make(map[netgen.RouterID][]interEdge),
		borders:     make(map[[2]netgen.ASID][]netgen.RouterID),
		intraCache:  make(map[netgen.RouterID][]int32),
		egressCache: make(map[[2]netgen.ASID][]int32),
		CacheBudget: 60000,
		numAS:       len(in.ASes),
	}
	for _, l := range in.Links {
		a, b := in.Ifaces[l.A], in.Ifaces[l.B]
		n.adj[a.Router] = append(n.adj[a.Router], halfEdge{
			peer: b.Router, selfIface: l.A, peerIface: l.B, lengthMi: l.LengthMi})
		n.adj[b.Router] = append(n.adj[b.Router], halfEdge{
			peer: a.Router, selfIface: l.B, peerIface: l.A, lengthMi: l.LengthMi})
		if l.Inter {
			asA := in.Routers[a.Router].AS
			asB := in.Routers[b.Router].AS
			n.interHops[a.Router] = append(n.interHops[a.Router], interEdge{peerAS: asB, edge: halfEdge{
				peer: b.Router, selfIface: l.A, peerIface: l.B, lengthMi: l.LengthMi}})
			n.interHops[b.Router] = append(n.interHops[b.Router], interEdge{peerAS: asA, edge: halfEdge{
				peer: a.Router, selfIface: l.B, peerIface: l.A, lengthMi: l.LengthMi}})
			n.addBorder(asA, asB, a.Router)
			n.addBorder(asB, asA, b.Router)
		}
	}
	n.computeASNext()
	return n
}

func (n *Network) addBorder(from, to netgen.ASID, r netgen.RouterID) {
	key := [2]netgen.ASID{from, to}
	for _, existing := range n.borders[key] {
		if existing == r {
			return
		}
	}
	n.borders[key] = append(n.borders[key], r)
}

// computeASNext runs a BFS from every AS over the AS adjacency graph,
// recording the next hop toward each destination AS. Ties break toward
// the lowest AS ID, keeping forwarding deterministic.
func (n *Network) computeASNext() {
	numAS := n.numAS
	n.asNext = make([]int32, numAS*numAS)
	for i := range n.asNext {
		n.asNext[i] = netgen.None
	}
	// Sorted neighbour lists for deterministic tie-breaking.
	neighbors := make([][]netgen.ASID, numAS)
	for i := range n.In.ASes {
		ns := append([]netgen.ASID{}, n.In.ASes[i].Neighbors...)
		for a := 1; a < len(ns); a++ {
			for b := a; b > 0 && ns[b] < ns[b-1]; b-- {
				ns[b], ns[b-1] = ns[b-1], ns[b]
			}
		}
		neighbors[i] = ns
	}
	dist := make([]int32, numAS)
	queue := make([]netgen.ASID, 0, numAS)
	for src := 0; src < numAS; src++ {
		for i := range dist {
			dist[i] = -1
		}
		queue = queue[:0]
		dist[src] = 0
		queue = append(queue, netgen.ASID(src))
		// firstHop[x] = neighbour of src that the path to x leaves by.
		base := src * numAS
		n.asNext[base+src] = int32(src)
		for qi := 0; qi < len(queue); qi++ {
			cur := queue[qi]
			for _, nb := range neighbors[cur] {
				if dist[nb] != -1 {
					continue
				}
				dist[nb] = dist[cur] + 1
				if cur == netgen.ASID(src) {
					n.asNext[base+int(nb)] = int32(nb)
				} else {
					n.asNext[base+int(nb)] = n.asNext[base+int(cur)]
				}
				queue = append(queue, nb)
			}
		}
	}
}

// NextAS returns the next AS on the path from a to b, or None.
func (n *Network) NextAS(a, b netgen.ASID) netgen.ASID {
	if a == b {
		return a
	}
	return netgen.ASID(n.asNext[int(a)*n.numAS+int(b)])
}

// ---- Dijkstra machinery over one AS's subgraph ----

type pqItem struct {
	router netgen.RouterID
	dist   float64
}

type pq []pqItem

func (p pq) Len() int            { return len(p) }
func (p pq) Less(i, j int) bool  { return p[i].dist < p[j].dist }
func (p pq) Swap(i, j int)       { p[i], p[j] = p[j], p[i] }
func (p *pq) Push(x interface{}) { *p = append(*p, x.(pqItem)) }
func (p *pq) Pop() interface{} {
	old := *p
	n := len(old)
	item := old[n-1]
	*p = old[:n-1]
	return item
}

// spfToSources computes, for every router of the AS, the next hop on a
// shortest path toward the nearest of the given source routers (all of
// which must belong to the AS). Returned as a dense table indexed by
// ASIndex; sources map to themselves; unreachable routers get None.
// Link weights are length in miles plus a 5-mile constant so hop count
// breaks near-ties.
func (n *Network) spfToSources(as *netgen.AS, sources []netgen.RouterID) []int32 {
	size := len(as.Routers)
	next := make([]int32, size)
	dist := make([]float64, size)
	for i := range next {
		next[i] = netgen.None
		dist[i] = -1
	}
	h := make(pq, 0, len(sources))
	for _, s := range sources {
		idx := n.In.Routers[s].ASIndex
		if dist[idx] == -1 {
			dist[idx] = 0
			next[idx] = int32(s)
			heap.Push(&h, pqItem{router: s, dist: 0})
		}
	}
	asID := as.ID
	for h.Len() > 0 {
		item := heap.Pop(&h).(pqItem)
		cur := item.router
		curIdx := n.In.Routers[cur].ASIndex
		if item.dist > dist[curIdx] {
			continue
		}
		for _, e := range n.adj[cur] {
			if n.In.Routers[e.peer].AS != asID {
				continue
			}
			pIdx := n.In.Routers[e.peer].ASIndex
			nd := item.dist + e.lengthMi + 5
			if dist[pIdx] == -1 || nd < dist[pIdx] {
				dist[pIdx] = nd
				next[pIdx] = int32(cur) // step toward the source set
				heap.Push(&h, pqItem{router: e.peer, dist: nd})
			}
		}
	}
	return next
}

// intraNext returns the next-hop table toward dst within dst's AS.
// The Dijkstra runs outside the lock: a concurrent miss at worst
// recomputes the same table, and whichever insert lands first wins.
func (n *Network) intraNext(dst netgen.RouterID) []int32 {
	n.mu.RLock()
	t, ok := n.intraCache[dst]
	n.mu.RUnlock()
	if ok {
		return t
	}
	as := n.In.ASOf(dst)
	t = n.spfToSources(as, []netgen.RouterID{dst})
	n.mu.Lock()
	if existing, ok := n.intraCache[dst]; ok {
		t = existing
	} else {
		n.evictIfNeededLocked()
		n.intraCache[dst] = t
	}
	n.mu.Unlock()
	return t
}

// egressNext returns the hot-potato next-hop table within AS a toward
// its nearest border with AS b.
func (n *Network) egressNext(a, b netgen.ASID) []int32 {
	key := [2]netgen.ASID{a, b}
	n.mu.RLock()
	t, ok := n.egressCache[key]
	n.mu.RUnlock()
	if ok {
		return t
	}
	borders := n.borders[key]
	t = n.spfToSources(&n.In.ASes[a], borders)
	n.mu.Lock()
	if existing, ok := n.egressCache[key]; ok {
		t = existing
	} else {
		n.evictIfNeededLocked()
		n.egressCache[key] = t
	}
	n.mu.Unlock()
	return t
}

func (n *Network) evictIfNeededLocked() {
	if len(n.intraCache)+len(n.egressCache) > n.CacheBudget {
		n.intraCache = make(map[netgen.RouterID][]int32)
		n.egressCache = make(map[[2]netgen.ASID][]int32)
	}
}
