package netsim

import (
	"testing"

	"geonet/internal/netgen"
	"geonet/internal/population"
	"geonet/internal/rng"
)

var (
	testNet  *Network
	testGen  *netgen.Internet
	testOnce bool
)

func compileSmall(tb testing.TB) (*netgen.Internet, *Network) {
	tb.Helper()
	if !testOnce {
		world := population.Build(population.DefaultConfig(), rng.New(1))
		cfg := netgen.DefaultConfig()
		cfg.Scale = 0.02
		testGen = netgen.Build(cfg, world)
		testNet = Compile(testGen)
		testOnce = true
	}
	return testGen, testNet
}

func TestPathReachesDestination(t *testing.T) {
	in, net := compileSmall(t)
	s := rng.New(3)
	okCount, total := 0, 400
	for i := 0; i < total; i++ {
		src := netgen.RouterID(s.Intn(len(in.Routers)))
		dst := netgen.RouterID(s.Intn(len(in.Routers)))
		path, ok := net.Path(src, dst)
		if !ok {
			continue
		}
		okCount++
		if path[0].Router != src {
			t.Fatalf("path starts at %d, want %d", path[0].Router, src)
		}
		if path[len(path)-1].Router != dst {
			t.Fatalf("path ends at %d, want %d", path[len(path)-1].Router, dst)
		}
	}
	// The AS graph is connected, so virtually all pairs must route.
	if okCount < total*95/100 {
		t.Errorf("only %d/%d pairs routed", okCount, total)
	}
}

func TestPathHopsAreAdjacent(t *testing.T) {
	in, net := compileSmall(t)
	s := rng.New(4)
	for i := 0; i < 100; i++ {
		src := netgen.RouterID(s.Intn(len(in.Routers)))
		dst := netgen.RouterID(s.Intn(len(in.Routers)))
		path, ok := net.Path(src, dst)
		if !ok {
			continue
		}
		for h := 1; h < len(path); h++ {
			hop := path[h]
			// The inbound interface must belong to the hop router and
			// its link must lead back to the previous router.
			ifc := in.Ifaces[hop.InIface]
			if ifc.Router != hop.Router {
				t.Fatalf("hop %d: inbound iface belongs to router %d, hop router %d",
					h, ifc.Router, hop.Router)
			}
			peer := in.PeerIface(hop.InIface)
			if peer == netgen.None || in.Ifaces[peer].Router != path[h-1].Router {
				t.Fatalf("hop %d: inbound iface not connected to previous router", h)
			}
		}
	}
}

func TestPathDeterministic(t *testing.T) {
	in, net := compileSmall(t)
	s := rng.New(5)
	for i := 0; i < 50; i++ {
		src := netgen.RouterID(s.Intn(len(in.Routers)))
		dst := netgen.RouterID(s.Intn(len(in.Routers)))
		p1, ok1 := net.Path(src, dst)
		p2, ok2 := net.Path(src, dst)
		if ok1 != ok2 || len(p1) != len(p2) {
			t.Fatalf("non-deterministic path for %d->%d", src, dst)
		}
		for h := range p1 {
			if p1[h] != p2[h] {
				t.Fatalf("path differs at hop %d", h)
			}
		}
	}
}

func TestPathSelfIsTrivial(t *testing.T) {
	in, net := compileSmall(t)
	r := netgen.RouterID(len(in.Routers) / 2)
	path, ok := net.Path(r, r)
	if !ok || len(path) != 1 || path[0].Router != r {
		t.Errorf("self path = %v ok=%v", path, ok)
	}
}

func TestIntraASPathStaysInside(t *testing.T) {
	in, net := compileSmall(t)
	// Find a reasonably large AS and route between two of its routers:
	// the path must never leave the AS (intra-AS shortest-path
	// forwarding is purely internal).
	for _, as := range in.ASes {
		if len(as.Routers) < 30 {
			continue
		}
		src, dst := as.Routers[0], as.Routers[len(as.Routers)-1]
		path, ok := net.Path(src, dst)
		if !ok {
			t.Fatalf("no intra-AS path in AS %d", as.Number)
		}
		for _, h := range path {
			if in.Routers[h.Router].AS != as.ID {
				t.Fatalf("intra-AS path left the AS at router %d", h.Router)
			}
		}
		return
	}
	t.Skip("no large AS found")
}

func TestInterASPathCrossesSensibly(t *testing.T) {
	in, net := compileSmall(t)
	s := rng.New(6)
	checked := 0
	for i := 0; i < 400 && checked < 50; i++ {
		src := netgen.RouterID(s.Intn(len(in.Routers)))
		dst := netgen.RouterID(s.Intn(len(in.Routers)))
		if in.Routers[src].AS == in.Routers[dst].AS {
			continue
		}
		path, ok := net.Path(src, dst)
		if !ok {
			continue
		}
		checked++
		// AS sequence along the path must have no repeats (valley-free
		// not modelled, but loop-free at AS level is required).
		seen := map[netgen.ASID]bool{}
		last := netgen.ASID(netgen.None)
		for _, h := range path {
			as := in.Routers[h.Router].AS
			if as != last {
				if seen[as] {
					t.Fatalf("AS-level loop: AS %d revisited", as)
				}
				seen[as] = true
				last = as
			}
		}
	}
	if checked == 0 {
		t.Fatal("no inter-AS pairs sampled")
	}
}

func TestNextASProperties(t *testing.T) {
	in, net := compileSmall(t)
	// For direct neighbours the next AS is the neighbour itself.
	for _, as := range in.ASes[:10] {
		for _, nb := range as.Neighbors {
			if got := net.NextAS(as.ID, nb); got != nb {
				t.Fatalf("NextAS(%d,%d) = %d, want the neighbour", as.ID, nb, got)
			}
		}
	}
	if got := net.NextAS(3, 3); got != 3 {
		t.Errorf("NextAS(x,x) = %d, want x", got)
	}
}

func TestLookupDest(t *testing.T) {
	in, net := compileSmall(t)
	// An interface address resolves to its own router.
	var ifc netgen.Iface
	for _, c := range in.Ifaces {
		if !c.Private && c.IP != 0 {
			ifc = c
			break
		}
	}
	r, ok := net.LookupDest(ifc.IP)
	if !ok || r != ifc.Router {
		t.Errorf("LookupDest(iface) = %d,%v, want %d", r, ok, ifc.Router)
	}
	// A host address inside the same /24 resolves to some router.
	host := (ifc.IP &^ 0xff) | 250
	if _, isIface := in.ByIP[host]; !isIface {
		if _, ok := net.LookupDest(host); !ok {
			t.Error("host address in allocated /24 did not resolve")
		}
	}
	// Unallocated space does not resolve.
	if _, ok := net.LookupDest(0xDF000001); ok {
		t.Error("unallocated address resolved")
	}
}

func TestPathVia(t *testing.T) {
	in, net := compileSmall(t)
	s := rng.New(7)
	for i := 0; i < 50; i++ {
		src := netgen.RouterID(s.Intn(len(in.Routers)))
		via := netgen.RouterID(s.Intn(len(in.Routers)))
		dst := netgen.RouterID(s.Intn(len(in.Routers)))
		path, ok := net.PathVia(src, via, dst)
		if !ok {
			continue
		}
		foundVia := false
		for _, h := range path {
			if h.Router == via {
				foundVia = true
			}
		}
		if !foundVia {
			t.Fatalf("source-routed path misses via router")
		}
		if path[len(path)-1].Router != dst {
			t.Fatalf("source-routed path misses destination")
		}
	}
}

func TestAliasReplySemantics(t *testing.T) {
	in, net := compileSmall(t)
	canonical, broken, silent := 0, 0, 0
	for _, ifc := range in.Ifaces {
		if ifc.IP == 0 || ifc.Private {
			continue
		}
		r := in.Routers[ifc.Router]
		reply, ok := net.AliasReply(ifc.IP)
		as := in.ASes[r.AS]
		switch {
		case r.Unresponsive || as.IDSBlocks:
			if ok {
				t.Fatalf("iface %d should not reply to alias probe", ifc.ID)
			}
			silent++
		case r.BrokenAlias:
			if !ok || reply != ifc.IP {
				t.Fatalf("broken-alias router must reply from probed iface")
			}
			broken++
		default:
			if !ok || reply != r.CanonicalIP {
				t.Fatalf("iface %d alias reply = %d, want canonical %d", ifc.ID, reply, r.CanonicalIP)
			}
			canonical++
		}
	}
	if canonical == 0 || broken == 0 || silent == 0 {
		t.Errorf("alias behaviours not all exercised: canonical=%d broken=%d silent=%d",
			canonical, broken, silent)
	}
}

func TestAliasReplyUnknownIP(t *testing.T) {
	_, net := compileSmall(t)
	if _, ok := net.AliasReply(0xDEAD0001); ok {
		t.Error("unknown IP replied to alias probe")
	}
}

func TestCacheEviction(t *testing.T) {
	in, _ := compileSmall(t)
	// Small budget forces eviction; paths must stay correct after.
	net2 := Compile(in)
	net2.CacheBudget = 8
	s := rng.New(8)
	for i := 0; i < 200; i++ {
		src := netgen.RouterID(s.Intn(len(in.Routers)))
		dst := netgen.RouterID(s.Intn(len(in.Routers)))
		path, ok := net2.Path(src, dst)
		if ok && path[len(path)-1].Router != dst {
			t.Fatal("path wrong after cache eviction")
		}
	}
}
