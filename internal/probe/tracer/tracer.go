// Package tracer is the hop-limited probing engine shared by the
// Skitter and Mercator collectors. It turns a simulated forwarding path
// into the sequence of ICMP Time Exceeded observations a real
// traceroute sees: one response per TTL, sourced from the interface the
// probe entered each router by, with unresponsive routers and per-hop
// loss producing the familiar "*" gaps.
package tracer

import (
	"geonet/internal/netgen"
	"geonet/internal/netsim"
	"geonet/internal/rng"
)

// Options tunes probe behaviour.
type Options struct {
	// HopLossProb is the per-hop chance a response is lost even from a
	// responsive router (rate limiting, queue drops).
	HopLossProb float64
	// HostRespondProb is the chance a probed end host answers at all.
	HostRespondProb float64
	// MaxTTL bounds the probe (real traceroutes stop at 30-64).
	MaxTTL int
}

// DefaultOptions mirrors Skitter-era probing behaviour.
func DefaultOptions() Options {
	return Options{HopLossProb: 0.01, HostRespondProb: 0.7, MaxTTL: 64}
}

// Observation is one TTL's result.
type Observation struct {
	IP        uint32
	Responded bool
}

// Scratch holds the per-probe working buffers (forwarding path,
// observation list, link pairs) so a driver tracing in a loop reuses
// one set of allocations across its whole sweep. The zero value is
// ready to use; a Scratch must not be shared between concurrent
// probes. Results returned by its methods alias the scratch and are
// valid until the next call on the same Scratch.
type Scratch struct {
	path  []netsim.Hop
	obs   []Observation
	links [][2]uint32
}

// Trace runs a full hop-limited probe sequence from the monitor
// attached to src toward dstIP. The first observation is the monitor's
// gateway (src itself, seen via its host-facing stub interface); the
// last, when the destination answers, is the destination address
// itself. reached reports whether forwarding got all the way there.
func Trace(net *netsim.Network, src netgen.RouterID, dstIP uint32, opts Options, s *rng.Stream) (obs []Observation, reached bool) {
	return new(Scratch).Trace(net, src, dstIP, opts, s)
}

// Trace is the scratch-reusing form of the package-level Trace.
func (sc *Scratch) Trace(net *netsim.Network, src netgen.RouterID, dstIP uint32, opts Options, s *rng.Stream) (obs []Observation, reached bool) {
	path, dstRouter, ok := net.AppendPathToIP(sc.path[:0], src, dstIP)
	sc.path = path
	if dstRouter == netgen.None {
		return nil, false
	}
	return sc.observe(net, path, ok, src, dstIP, dstRouter, opts, s)
}

// TraceVia runs a loose-source-routed probe through the via router.
func TraceVia(net *netsim.Network, src, via netgen.RouterID, dstIP uint32, opts Options, s *rng.Stream) (obs []Observation, reached bool) {
	return new(Scratch).TraceVia(net, src, via, dstIP, opts, s)
}

// TraceVia is the scratch-reusing form of the package-level TraceVia.
func (sc *Scratch) TraceVia(net *netsim.Network, src, via netgen.RouterID, dstIP uint32, opts Options, s *rng.Stream) (obs []Observation, reached bool) {
	dstRouter, ok := net.LookupDest(dstIP)
	if !ok {
		return nil, false
	}
	path, ok := net.AppendPathVia(sc.path[:0], src, via, dstRouter)
	sc.path = path
	return sc.observe(net, path, ok, src, dstIP, dstRouter, opts, s)
}

func (sc *Scratch) observe(net *netsim.Network, path []netsim.Hop, pathOK bool,
	src netgen.RouterID, dstIP uint32, dstRouter netgen.RouterID,
	opts Options, s *rng.Stream) ([]Observation, bool) {

	in := net.In
	if opts.MaxTTL > 0 && len(path) > opts.MaxTTL {
		path = path[:opts.MaxTTL]
		pathOK = false
	}
	// When the destination address is an interface of the final
	// router, the final TTL's probe is answered by the destination
	// itself (echo reply) instead of a Time Exceeded from the inbound
	// interface — so that hop is *replaced*, not appended.
	dstIfid, dstIsIface := in.ByIP[dstIP]
	dstOnFinalRouter := pathOK && dstIsIface && in.Ifaces[dstIfid].Router == dstRouter

	if sc.obs == nil {
		sc.obs = make([]Observation, 0, len(path)+1)
	}
	obs := sc.obs[:0]
	for i, hop := range path {
		if dstOnFinalRouter && i == len(path)-1 {
			break // the echo reply below stands in for this TTL
		}
		r := &in.Routers[hop.Router]
		var ip uint32
		if i == 0 {
			// TTL=1 expires at the gateway: the reply comes from the
			// interface facing the monitor host (the stub).
			ip = stubIfaceIP(in, src)
		} else {
			ip = in.Ifaces[hop.InIface].IP
		}
		responded := !r.Unresponsive && !s.Bool(opts.HopLossProb) && ip != 0
		obs = append(obs, Observation{IP: ip, Responded: responded})
	}
	if !pathOK {
		sc.obs = obs
		return obs, false
	}
	// The destination answers: an interface address replies itself; a
	// plain host address replies only if the host is up.
	if dstOnFinalRouter {
		if !in.Routers[dstRouter].Unresponsive {
			obs = append(obs, Observation{IP: dstIP, Responded: true})
		}
	} else if !dstIsIface && s.Bool(opts.HostRespondProb) {
		obs = append(obs, Observation{IP: dstIP, Responded: true})
	}
	sc.obs = obs
	return obs, true
}

// stubIfaceIP finds the router's host-facing stub interface address.
func stubIfaceIP(in *netgen.Internet, r netgen.RouterID) uint32 {
	for _, ifid := range in.Routers[r].Ifaces {
		if in.Ifaces[ifid].Link == netgen.None {
			return in.Ifaces[ifid].IP
		}
	}
	// No stub (not a monitor router): fall back to the canonical
	// address, as a router sourcing its own probes would.
	return in.Routers[r].CanonicalIP
}

// Links extracts the interface-adjacency pairs a collector records from
// one trace: consecutive responding observations. Gaps ("*") break the
// chain, and self-pairs (identical addresses back to back) are
// discarded as anomalies, per Section III-A.
func Links(obs []Observation) [][2]uint32 {
	return appendLinks(nil, obs)
}

// Links is the scratch-reusing form of the package-level Links.
func (sc *Scratch) Links(obs []Observation) [][2]uint32 {
	sc.links = appendLinks(sc.links[:0], obs)
	return sc.links
}

func appendLinks(out [][2]uint32, obs []Observation) [][2]uint32 {
	for i := 1; i < len(obs); i++ {
		a, b := obs[i-1], obs[i]
		if !a.Responded || !b.Responded {
			continue
		}
		if a.IP == b.IP {
			continue // self-loop anomaly
		}
		out = append(out, orderPair(a.IP, b.IP))
	}
	return out
}

func orderPair(a, b uint32) [2]uint32 {
	if a < b {
		return [2]uint32{a, b}
	}
	return [2]uint32{b, a}
}
