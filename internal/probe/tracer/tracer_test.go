package tracer

import (
	"testing"

	"geonet/internal/netgen"
	"geonet/internal/netsim"
	"geonet/internal/population"
	"geonet/internal/rng"
)

var (
	tIn  *netgen.Internet
	tNet *netsim.Network
)

func fixture(tb testing.TB) (*netgen.Internet, *netsim.Network) {
	tb.Helper()
	if tIn == nil {
		world := population.Build(population.DefaultConfig(), rng.New(1))
		cfg := netgen.DefaultConfig()
		cfg.Scale = 0.02
		tIn = netgen.Build(cfg, world)
		tNet = netsim.Compile(tIn)
	}
	return tIn, tNet
}

// anyIfaceIP returns a public interface address on a responsive router.
func anyIfaceIP(in *netgen.Internet, skip int) uint32 {
	n := 0
	for _, ifc := range in.Ifaces {
		if ifc.Private || ifc.IP == 0 || ifc.Link == netgen.None {
			continue
		}
		if in.Routers[ifc.Router].Unresponsive {
			continue
		}
		if n == skip {
			return ifc.IP
		}
		n++
	}
	return 0
}

func TestTraceReachesInterfaceDestination(t *testing.T) {
	in, net := fixture(t)
	s := rng.New(2)
	opts := DefaultOptions()
	opts.HopLossProb = 0 // deterministic for this test
	reachedCount := 0
	for i := 0; i < 50; i++ {
		dst := anyIfaceIP(in, i*37)
		if dst == 0 {
			continue
		}
		obs, reached := Trace(net, in.SkitterMonitors[0], dst, opts, s)
		if !reached {
			continue
		}
		reachedCount++
		if len(obs) == 0 {
			t.Fatal("reached with no observations")
		}
		last := obs[len(obs)-1]
		if last.IP != dst || !last.Responded {
			t.Fatalf("final observation = %+v, want destination %d", last, dst)
		}
	}
	if reachedCount < 40 {
		t.Errorf("only %d/50 traces reached", reachedCount)
	}
}

func TestTraceFirstHopIsMonitorGateway(t *testing.T) {
	in, net := fixture(t)
	s := rng.New(3)
	monitor := in.SkitterMonitors[0]
	dst := anyIfaceIP(in, 500)
	obs, _ := Trace(net, monitor, dst, DefaultOptions(), s)
	if len(obs) == 0 {
		t.Skip("trace failed")
	}
	// First hop address must belong to the monitor's gateway router.
	ifid, ok := in.ByIP[obs[0].IP]
	if !ok {
		t.Fatalf("first hop %d not a known interface", obs[0].IP)
	}
	if in.Ifaces[ifid].Router != monitor {
		t.Errorf("first hop belongs to router %d, want monitor %d",
			in.Ifaces[ifid].Router, monitor)
	}
	if in.Ifaces[ifid].Link != netgen.None {
		t.Error("first hop should be the host-facing stub interface")
	}
}

func TestTraceObservesInboundInterfaces(t *testing.T) {
	in, net := fixture(t)
	s := rng.New(4)
	opts := DefaultOptions()
	opts.HopLossProb = 0
	opts.HostRespondProb = 1
	dst := anyIfaceIP(in, 1200)
	obs, reached := Trace(net, in.SkitterMonitors[1], dst, opts, s)
	if !reached || len(obs) < 3 {
		t.Skip("need a multi-hop reached trace")
	}
	// Every intermediate observed IP must be an interface of the
	// router at that position, reached from the previous router.
	for i := 1; i < len(obs)-1; i++ {
		if !obs[i].Responded {
			continue
		}
		ifid, ok := in.ByIP[obs[i].IP]
		if !ok {
			t.Fatalf("hop %d: %d not an interface", i, obs[i].IP)
		}
		peer := in.PeerIface(ifid)
		if peer == netgen.None {
			t.Fatalf("hop %d: observed a stub interface mid-path", i)
		}
	}
}

func TestUnresponsiveRoutersProduceGaps(t *testing.T) {
	in, net := fixture(t)
	s := rng.New(5)
	opts := DefaultOptions()
	opts.HopLossProb = 0
	sawGap := false
	for i := 0; i < 400 && !sawGap; i++ {
		dst := anyIfaceIP(in, i*13)
		obs, _ := Trace(net, in.SkitterMonitors[i%len(in.SkitterMonitors)], dst, opts, s)
		for _, o := range obs {
			if !o.Responded {
				sawGap = true
				break
			}
		}
	}
	if !sawGap {
		t.Error("no unresponsive hops in 400 traces despite 3% unresponsive routers")
	}
}

func TestLinksSkipGapsAndSelfLoops(t *testing.T) {
	obs := []Observation{
		{IP: 1, Responded: true},
		{IP: 2, Responded: true},
		{IP: 3, Responded: false}, // gap
		{IP: 4, Responded: true},
		{IP: 4, Responded: true}, // self-loop anomaly
		{IP: 5, Responded: true},
	}
	links := Links(obs)
	want := map[[2]uint32]bool{{1, 2}: true, {4, 5}: true}
	if len(links) != len(want) {
		t.Fatalf("links = %v, want 2 links", links)
	}
	for _, l := range links {
		if !want[l] {
			t.Errorf("unexpected link %v", l)
		}
	}
}

func TestLinksCanonicalOrder(t *testing.T) {
	obs := []Observation{
		{IP: 9, Responded: true},
		{IP: 2, Responded: true},
	}
	links := Links(obs)
	if len(links) != 1 || links[0] != [2]uint32{2, 9} {
		t.Errorf("links = %v, want [[2 9]]", links)
	}
}

func TestTraceVia(t *testing.T) {
	in, net := fixture(t)
	s := rng.New(6)
	opts := DefaultOptions()
	opts.HopLossProb = 0
	host := in.MercatorHost
	via := netgen.RouterID(len(in.Routers) / 3)
	dst := anyIfaceIP(in, 2000)
	obs, reached := TraceVia(net, host, via, dst, opts, s)
	if !reached {
		t.Skip("LSR trace failed")
	}
	if len(obs) == 0 {
		t.Fatal("no observations")
	}
	if obs[len(obs)-1].IP != dst {
		t.Errorf("LSR trace final hop = %d, want %d", obs[len(obs)-1].IP, dst)
	}
}

func TestTraceUnallocatedDestination(t *testing.T) {
	_, net := fixture(t)
	s := rng.New(7)
	obs, reached := Trace(net, tIn.SkitterMonitors[0], 0xDF000001, DefaultOptions(), s)
	if obs != nil || reached {
		t.Error("unallocated destination should yield no trace")
	}
}

func TestMaxTTLTruncates(t *testing.T) {
	in, net := fixture(t)
	s := rng.New(8)
	opts := DefaultOptions()
	opts.MaxTTL = 2
	dst := anyIfaceIP(in, 3000)
	obs, reached := Trace(net, in.SkitterMonitors[0], dst, opts, s)
	if len(obs) > 2 {
		t.Errorf("trace exceeded MaxTTL: %d hops", len(obs))
	}
	_ = reached
}
