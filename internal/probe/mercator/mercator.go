// Package mercator reproduces the Scan project's Mercator methodology
// (Section III-A): single-host map discovery using informed random
// address probing, loose source routing for lateral connectivity, and
// UDP-probe alias resolution that collapses interface addresses to
// per-router canonical addresses.
//
// Discovery proceeds in fixed-size probe batches: each batch's plans
// (frontier block, destination address, LSR decision) are drawn
// serially from the control stream, the traces themselves run
// concurrently on per-probe split streams, and observations are
// ingested in probe order. Because the batch size is a configuration
// constant — not a function of the worker count — the discovered map
// is bit-identical at any parallelism. Within a batch, traces execute
// in destination-address order — which groups them by destination AS,
// since address allocation is CIDR-contiguous per AS — so probes
// sharing routing tables run back to back against a hot cache; since
// every probe has its own stream and result slot, that order is a pure
// scheduling choice and cannot affect the discovered map.
package mercator

import (
	"sort"

	"geonet/internal/netgen"
	"geonet/internal/netsim"
	"geonet/internal/parallel"
	"geonet/internal/probe/tracer"
	"geonet/internal/rng"
)

// Config controls a Mercator run.
type Config struct {
	// ProbeBudget is the total number of traceroute probes.
	ProbeBudget int
	// LSRFraction is the share of probes sent with loose source
	// routing through an already-discovered router.
	LSRFraction float64
	// NeighborExpandProb adds the /24s adjacent to a newly discovered
	// one to the probe frontier (the "informed" part of informed
	// random address probing).
	NeighborExpandProb float64
	// SeedBlocks primes the frontier with this many random allocated
	// /24s (Mercator started from its own host's neighbourhood; a few
	// seeds keep the walk from stalling in a stub corner).
	SeedBlocks int
	// BatchProbes is the number of probes planned per round; frontier
	// and LSR-candidate updates land between rounds. The batch size is
	// part of the random-walk definition, so it must not depend on the
	// worker count.
	BatchProbes int
	// Workers bounds the in-batch trace fan-out; <= 0 means one worker
	// per CPU. Results are identical for any value.
	Workers int
	Tracer  tracer.Options
}

// DefaultConfig sizes the run so Mercator discovers a substantially
// smaller graph than Skitter, as in the paper (268k vs 704k interfaces).
func DefaultConfig() Config {
	return Config{
		ProbeBudget:        0, // 0 = auto: 6 probes per allocated /24
		LSRFraction:        0.25,
		NeighborExpandProb: 0.6,
		SeedBlocks:         8,
		BatchProbes:        64,
		Tracer:             tracer.DefaultOptions(),
	}
}

// Result is the discovered map, before and after alias resolution.
type Result struct {
	// IfaceNodes and IfaceLinks form the raw interface-level graph.
	IfaceNodes map[uint32]struct{}
	IfaceLinks map[[2]uint32]struct{}
	// Alias maps every discovered interface address to its canonical
	// address (itself when resolution failed) — the output of the UDP
	// probe technique of Pansiot & Grad the paper describes.
	Alias map[uint32]uint32
	// RouterNodes and RouterLinks are the collapsed router-level graph.
	RouterNodes map[uint32]struct{}
	RouterLinks map[[2]uint32]struct{}
	Stats       Stats
}

// Stats summarises the run.
type Stats struct {
	Traces        int
	LSRTraces     int
	AliasProbes   int
	AliasResolved int
}

// probePlan is one batch entry: everything drawn from the control
// stream at planning time, plus the probe's own trace stream.
type probePlan struct {
	dst uint32
	via netgen.RouterID // None for a plain forward probe
	s   *rng.Stream
}

// Collect runs discovery from the Internet's Mercator host.
func Collect(net *netsim.Network, cfg Config, s *rng.Stream) *Result {
	in := net.In
	res := &Result{
		IfaceNodes:  make(map[uint32]struct{}),
		IfaceLinks:  make(map[[2]uint32]struct{}),
		Alias:       make(map[uint32]uint32),
		RouterNodes: make(map[uint32]struct{}),
		RouterLinks: make(map[[2]uint32]struct{}),
	}
	host := in.MercatorHost
	if host == netgen.None {
		return res
	}
	workers := parallel.Workers(cfg.Workers)
	batchSize := cfg.BatchProbes
	if batchSize <= 0 {
		batchSize = DefaultConfig().BatchProbes
	}

	// Frontier of known /24 blocks.
	known := make(map[uint32]struct{})
	var frontier []uint32
	addBlock := func(b uint32) {
		if _, ok := known[b]; ok {
			return
		}
		if _, allocated := in.Prefix24Router[b]; !allocated {
			return
		}
		known[b] = struct{}{}
		frontier = append(frontier, b)
	}

	// Prime with the host's own block and a few seeds.
	hostIP := in.Routers[host].CanonicalIP
	addBlock(hostIP &^ 0xff)
	allBlocks := make([]uint32, 0, len(in.Prefix24Router))
	for b := range in.Prefix24Router {
		allBlocks = append(allBlocks, b)
	}
	sort.Slice(allBlocks, func(i, j int) bool { return allBlocks[i] < allBlocks[j] })
	for i := 0; i < cfg.SeedBlocks && len(allBlocks) > 0; i++ {
		addBlock(allBlocks[s.Intn(len(allBlocks))])
	}

	budget := cfg.ProbeBudget
	if budget <= 0 {
		budget = 6 * len(allBlocks)
	}

	// Discovered router candidates for LSR vias.
	var discovered []uint32

	ingest := func(obs []tracer.Observation, dst uint32) {
		// Mercator maps routers: the destination's own reply (an end
		// host, or the probed address itself) is not an intermediate
		// hop and is excluded from the map.
		if n := len(obs); n > 0 && obs[n-1].IP == dst {
			obs = obs[:n-1]
		}
		for _, o := range obs {
			if !o.Responded {
				continue
			}
			if _, seen := res.IfaceNodes[o.IP]; !seen {
				res.IfaceNodes[o.IP] = struct{}{}
				discovered = append(discovered, o.IP)
				// Informed expansion: the /24 around a discovery and,
				// sometimes, its neighbours.
				b := o.IP &^ 0xff
				addBlock(b)
				if s.Bool(cfg.NeighborExpandProb) {
					addBlock(b + 256)
				}
				if s.Bool(cfg.NeighborExpandProb) {
					addBlock(b - 256)
				}
			}
		}
		for _, l := range tracer.Links(obs) {
			res.IfaceLinks[l] = struct{}{}
		}
	}

	// Batch working state, allocated once and recycled every round:
	// per-slot trace streams (re-seeded in place, never reallocated),
	// per-slot tracer scratch buffers, the AS-sorted execution order
	// and the observation cut-outs the ingest pass reads.
	plans := make([]probePlan, 0, batchSize)
	slotStreams := make([]*rng.Stream, batchSize)
	scratches := make([]tracer.Scratch, batchSize)
	observations := make([][]tracer.Observation, batchSize)
	order := make([]int, 0, batchSize)
	for probe := 0; probe < budget && len(frontier) > 0; probe += len(plans) {
		// Plan the batch serially against the current frontier and
		// discovery state.
		n := batchSize
		if rem := budget - probe; rem < n {
			n = rem
		}
		plans = plans[:0]
		for k := 0; k < n; k++ {
			block := frontier[s.Intn(len(frontier))]
			slotStreams[k] = s.SplitNInto(slotStreams[k], "trace", probe+k)
			plan := probePlan{
				dst: block | uint32(1+s.Intn(253)),
				via: netgen.None,
				s:   slotStreams[k],
			}
			if len(discovered) > 0 && s.Bool(cfg.LSRFraction) {
				viaIP := discovered[s.Intn(len(discovered))]
				if ifid, ok := in.ByIP[viaIP]; ok {
					plan.via = in.Ifaces[ifid].Router
				}
			}
			plans = append(plans, plan)
		}

		// Trace the batch concurrently, in destination-address order:
		// the random-walk frontier scatters destinations across ASes,
		// but netgen allocates each AS one contiguous CIDR run, so
		// address order groups probes that share routing tables and
		// each worker's contiguous chunk stays cache-hot. Every plan
		// draws from its own stream and lands in its own slot, so the
		// execution order — like the worker count — cannot affect
		// results; the ingest pass below still runs in probe order.
		order = order[:0]
		for i := range plans {
			order = append(order, i)
		}
		sort.SliceStable(order, func(a, b int) bool { return plans[order[a]].dst < plans[order[b]].dst })
		parallel.ForEach(workers, len(plans), func(j int) {
			i := order[j]
			p := plans[i]
			sc := &scratches[i]
			if p.via != netgen.None {
				if obs, _ := sc.TraceVia(net, host, p.via, p.dst, cfg.Tracer, p.s); obs != nil {
					observations[i] = obs
					return
				}
			}
			obs, _ := sc.Trace(net, host, p.dst, cfg.Tracer, p.s)
			observations[i] = obs
		})

		// Ingest in probe order so frontier growth is deterministic.
		for i := range plans {
			res.Stats.Traces++
			if plans[i].via != netgen.None {
				res.Stats.LSRTraces++
			}
			ingest(observations[i], plans[i].dst)
		}
	}

	resolveAliases(net, res, workers)
	collapse(res)
	return res
}

// resolveAliases sends a UDP probe to every discovered interface; the
// ICMP Port Unreachable source address groups interfaces by router.
// Probes fan out over chunks of the sorted interface list; replies are
// pure topology lookups, so the table is the same at any parallelism.
func resolveAliases(net *netsim.Network, res *Result, workers int) {
	ips := make([]uint32, 0, len(res.IfaceNodes))
	for ip := range res.IfaceNodes {
		ips = append(ips, ip)
	}
	sort.Slice(ips, func(i, j int) bool { return ips[i] < ips[j] })

	type chunkResult struct {
		alias    map[uint32]uint32
		resolved int
	}
	chunks := parallel.Chunks(len(ips), 64)
	merged := parallel.Reduce(workers, len(chunks),
		func(c int) chunkResult {
			cr := chunkResult{alias: make(map[uint32]uint32)}
			for _, ip := range ips[chunks[c][0]:chunks[c][1]] {
				canonical, ok := net.AliasReply(ip)
				if !ok {
					cr.alias[ip] = ip // unresolved: stays its own router
					continue
				}
				cr.alias[ip] = canonical
				if canonical != ip {
					cr.resolved++
				}
			}
			return cr
		},
		func(into, from chunkResult) chunkResult {
			for ip, canon := range from.alias {
				into.alias[ip] = canon
			}
			into.resolved += from.resolved
			return into
		})
	res.Stats.AliasProbes += len(ips)
	res.Stats.AliasResolved += merged.resolved
	for ip, canon := range merged.alias {
		res.Alias[ip] = canon
	}
}

// collapse maps the interface graph through the alias table, dropping
// links that become internal to one router.
func collapse(res *Result) {
	for ip := range res.IfaceNodes {
		res.RouterNodes[res.Alias[ip]] = struct{}{}
	}
	for l := range res.IfaceLinks {
		a, b := res.Alias[l[0]], res.Alias[l[1]]
		if a == b {
			continue
		}
		if a > b {
			a, b = b, a
		}
		res.RouterLinks[[2]uint32{a, b}] = struct{}{}
	}
}
