package mercator

import (
	"testing"

	"geonet/internal/netgen"
	"geonet/internal/netsim"
	"geonet/internal/population"
	"geonet/internal/rng"
)

var (
	mIn  *netgen.Internet
	mNet *netsim.Network
	mRes *Result
)

func fixture(tb testing.TB) (*netgen.Internet, *Result) {
	tb.Helper()
	if mRes == nil {
		world := population.Build(population.DefaultConfig(), rng.New(1))
		cfg := netgen.DefaultConfig()
		cfg.Scale = 0.02
		mIn = netgen.Build(cfg, world)
		mNet = netsim.Compile(mIn)
		mRes = Collect(mNet, DefaultConfig(), rng.New(21))
	}
	return mIn, mRes
}

func TestDiscoveryProducesGraph(t *testing.T) {
	_, res := fixture(t)
	if len(res.IfaceNodes) == 0 || len(res.IfaceLinks) == 0 {
		t.Fatalf("empty discovery: %d nodes, %d links", len(res.IfaceNodes), len(res.IfaceLinks))
	}
	if res.Stats.LSRTraces == 0 {
		t.Error("no loose-source-routed probes issued")
	}
	if len(res.RouterNodes) == 0 || len(res.RouterNodes) > len(res.IfaceNodes) {
		t.Errorf("router collapse wrong: %d routers from %d interfaces",
			len(res.RouterNodes), len(res.IfaceNodes))
	}
}

func TestAliasResolutionCollapsesInterfaces(t *testing.T) {
	in, res := fixture(t)
	// The paper: 268,382 interfaces collapsed to 228,263 routers
	// (~15%). Our IDS/broken-alias rates should produce a meaningful
	// but partial collapse.
	collapse := 1 - float64(len(res.RouterNodes))/float64(len(res.IfaceNodes))
	if collapse <= 0.01 {
		t.Errorf("alias resolution collapsed only %.1f%%", collapse*100)
	}
	if collapse > 0.6 {
		t.Errorf("alias resolution collapsed %.1f%%; implausibly high", collapse*100)
	}
	// Every alias group must be interfaces of one ground-truth router.
	groups := map[uint32]map[netgen.RouterID]bool{}
	for ip, canon := range res.Alias {
		ifid, ok := in.ByIP[ip]
		if !ok {
			continue // end-host destination
		}
		if groups[canon] == nil {
			groups[canon] = map[netgen.RouterID]bool{}
		}
		groups[canon][in.Ifaces[ifid].Router] = true
	}
	multi := 0
	for canon, routers := range groups {
		if len(routers) > 1 {
			t.Fatalf("alias group %d mixes %d routers", canon, len(routers))
		}
		if len(routers) == 1 {
			multi++
		}
	}
	if multi == 0 {
		t.Fatal("no alias groups verified")
	}
}

func TestAliasTableCoversAllNodes(t *testing.T) {
	_, res := fixture(t)
	for ip := range res.IfaceNodes {
		if _, ok := res.Alias[ip]; !ok {
			t.Fatalf("interface %d missing from alias table", ip)
		}
	}
}

func TestRouterLinksHaveNoSelfLoops(t *testing.T) {
	_, res := fixture(t)
	for l := range res.RouterLinks {
		if l[0] == l[1] {
			t.Fatalf("self-loop in router graph: %v", l)
		}
	}
	// Collapsing cannot create links: router links <= iface links.
	if len(res.RouterLinks) > len(res.IfaceLinks) {
		t.Error("router links exceed interface links")
	}
}

func TestMercatorSmallerThanGroundTruth(t *testing.T) {
	in, res := fixture(t)
	total := 0
	for _, ifc := range in.Ifaces {
		if ifc.IP != 0 {
			total++
		}
	}
	frac := float64(len(res.IfaceNodes)) / float64(total)
	if frac < 0.10 {
		t.Errorf("Mercator found only %.1f%% of interfaces; budget too small", frac*100)
	}
	if frac > 0.95 {
		t.Errorf("Mercator found %.1f%% of interfaces; should be partial like the real tool", frac*100)
	}
}

func TestCollectDeterministic(t *testing.T) {
	fixture(t)
	a := Collect(mNet, DefaultConfig(), rng.New(5))
	b := Collect(mNet, DefaultConfig(), rng.New(5))
	if len(a.IfaceNodes) != len(b.IfaceNodes) || len(a.RouterLinks) != len(b.RouterLinks) {
		t.Error("same seed produced different discoveries")
	}
}
