// Package skitter reproduces CAIDA's Skitter collection methodology
// (Section III-A): ICMP forward-path probes from monitors around the
// world toward destination lists that aim to cover every allocated /24,
// unioned into one interface-level graph. Interfaces are virtual nodes;
// a link is a connection between two adjacent interfaces on a trace.
package skitter

import (
	"sort"

	"geonet/internal/netgen"
	"geonet/internal/netsim"
	"geonet/internal/parallel"
	"geonet/internal/probe/tracer"
	"geonet/internal/rng"
)

// Config controls a collection run.
type Config struct {
	// CoverageMin/CoverageMax bound the fraction of the global /24
	// list each monitor probes ("each probing a destination list of
	// varying size").
	CoverageMin, CoverageMax float64
	// Workers bounds the per-monitor fan-out; <= 0 means one worker
	// per CPU. Each monitor draws from an independent split stream and
	// the union is a set, so the merged graph is identical for any
	// worker count.
	Workers int
	// Probe behaviour.
	Tracer tracer.Options
}

// DefaultConfig mirrors the paper's collection.
func DefaultConfig() Config {
	return Config{CoverageMin: 0.55, CoverageMax: 1.0, Tracer: tracer.DefaultOptions()}
}

// RawGraph is the union of all monitors' traces, before the dataset
// processing of Section III (which topo applies).
type RawGraph struct {
	// Nodes are all interface addresses observed on any trace.
	Nodes map[uint32]struct{}
	// Links are adjacent-interface pairs (canonically ordered).
	Links map[[2]uint32]struct{}
	// DestIPs is the union of all monitors' destination lists — the
	// paper discards all interfaces appearing in them ("many
	// destinations in these lists are end-hosts and we are interested
	// only in routers").
	DestIPs map[uint32]struct{}
	Stats   Stats
}

// Stats summarises the run.
type Stats struct {
	Monitors     int
	Traces       int
	TracesFailed int
	HopsObserved int
}

// monitorGraph is one monitor's contribution, merged after the fan-out.
type monitorGraph struct {
	nodes   map[uint32]struct{}
	links   map[[2]uint32]struct{}
	destIPs map[uint32]struct{}
	stats   Stats
}

// Collect runs the full multi-monitor collection. Monitors probe
// concurrently (bounded by cfg.Workers); each draws from its own
// numbered split of s, so the union is the same at any parallelism.
func Collect(net *netsim.Network, cfg Config, s *rng.Stream) *RawGraph {
	in := net.In
	raw := &RawGraph{
		Nodes:   make(map[uint32]struct{}),
		Links:   make(map[[2]uint32]struct{}),
		DestIPs: make(map[uint32]struct{}),
	}

	// The global destination universe: one probe address per allocated
	// /24, covering "all blocks of 256 addresses" in the allocated
	// space.
	blocks := make([]uint32, 0, len(in.Prefix24Router))
	for b := range in.Prefix24Router {
		blocks = append(blocks, b)
	}
	sort.Slice(blocks, func(i, j int) bool { return blocks[i] < blocks[j] })

	raw.Stats.Monitors = len(in.SkitterMonitors)
	partials := parallel.Map(parallel.Workers(cfg.Workers), len(in.SkitterMonitors),
		func(mi int) *monitorGraph {
			return collectMonitor(net, cfg, blocks, in.SkitterMonitors[mi], s.SplitN("monitor", mi))
		})
	// Merge in monitor order. The maps are sets and the counters sum,
	// so the merged content is order-independent; the fixed order keeps
	// that obvious.
	for _, mg := range partials {
		for ip := range mg.nodes {
			raw.Nodes[ip] = struct{}{}
		}
		for l := range mg.links {
			raw.Links[l] = struct{}{}
		}
		for ip := range mg.destIPs {
			raw.DestIPs[ip] = struct{}{}
		}
		raw.Stats.Traces += mg.stats.Traces
		raw.Stats.TracesFailed += mg.stats.TracesFailed
		raw.Stats.HopsObserved += mg.stats.HopsObserved
	}
	return raw
}

// blockDest picks the destination address probed within a block.
// Destination addresses are assigned per block, not per monitor: the
// real lists were compiled centrally (search-engine results, web cache
// logs, ...) and shared, so monitors mostly probe the same host in
// each /24. High host numbers model end hosts (router interfaces
// cluster at the bottom of each subnet).
func blockDest(block uint32) uint32 {
	h := block * 2654435761 // Knuth multiplicative hash
	return block | (200 + (h>>16)%54)
}

// collectMonitor runs one monitor's full destination sweep. The sweep
// walks /24 blocks in ascending address order, which — because netgen
// allocates each AS one contiguous CIDR run — visits destinations
// grouped by AS: the simulator computes each destination AS's routing
// tables once and serves the rest of the run's traces into that AS
// from a hot cache. One tracer.Scratch serves the whole sweep, so the
// per-trace path/observation/link buffers are allocated once per
// monitor rather than once per probe.
func collectMonitor(net *netsim.Network, cfg Config, blocks []uint32,
	monitor netgen.RouterID, ms *rng.Stream) *monitorGraph {

	mg := &monitorGraph{
		nodes:   make(map[uint32]struct{}),
		links:   make(map[[2]uint32]struct{}),
		destIPs: make(map[uint32]struct{}),
	}
	var sc tracer.Scratch
	coverage := cfg.CoverageMin + ms.Float64()*(cfg.CoverageMax-cfg.CoverageMin)
	for _, block := range blocks {
		if !ms.Bool(coverage) {
			continue
		}
		dst := blockDest(block)
		if ms.Bool(0.03) {
			// A minority of list entries differ between sources.
			dst = block | uint32(1+ms.Intn(253))
		}
		mg.destIPs[dst] = struct{}{}
		obs, _ := sc.Trace(net, monitor, dst, cfg.Tracer, ms)
		mg.stats.Traces++
		if obs == nil {
			mg.stats.TracesFailed++
			continue
		}
		for _, o := range obs {
			if o.Responded {
				mg.nodes[o.IP] = struct{}{}
				mg.stats.HopsObserved++
			}
		}
		for _, l := range sc.Links(obs) {
			mg.links[l] = struct{}{}
		}
	}
	return mg
}
