package skitter

import (
	"testing"

	"geonet/internal/netgen"
	"geonet/internal/netsim"
	"geonet/internal/population"
	"geonet/internal/rng"
)

var (
	sIn  *netgen.Internet
	sNet *netsim.Network
	sRaw *RawGraph
)

func fixture(tb testing.TB) (*netgen.Internet, *RawGraph) {
	tb.Helper()
	if sRaw == nil {
		world := population.Build(population.DefaultConfig(), rng.New(1))
		cfg := netgen.DefaultConfig()
		cfg.Scale = 0.02
		sIn = netgen.Build(cfg, world)
		sNet = netsim.Compile(sIn)
		sRaw = Collect(sNet, DefaultConfig(), rng.New(11))
	}
	return sIn, sRaw
}

func TestCollectDiscoversSubstantialGraph(t *testing.T) {
	in, raw := fixture(t)
	if raw.Stats.Traces == 0 {
		t.Fatal("no traces run")
	}
	// Discovery should find a large share of ground-truth interfaces
	// (union over 19 monitors covers the core well).
	found := 0
	for _, ifc := range in.Ifaces {
		if ifc.IP == 0 {
			continue
		}
		if _, ok := raw.Nodes[ifc.IP]; ok {
			found++
		}
	}
	frac := float64(found) / float64(len(in.Ifaces))
	if frac < 0.25 {
		t.Errorf("discovered only %.1f%% of ground-truth interfaces", frac*100)
	}
	if len(raw.Links) == 0 {
		t.Fatal("no links discovered")
	}
	// Links-to-nodes ratio should resemble the paper's Skitter data
	// (1,075,454 links / 704,107 interfaces ~= 1.5).
	ratio := float64(len(raw.Links)) / float64(len(raw.Nodes))
	if ratio < 0.7 || ratio > 2.5 {
		t.Errorf("links/nodes = %.2f, want ~1-2", ratio)
	}
}

func TestAllDiscoveredLinksAreReal(t *testing.T) {
	in, raw := fixture(t)
	// Every discovered link must correspond to a ground-truth
	// adjacency: the two interfaces' routers share a physical link.
	adjacent := func(a, b netgen.RouterID) bool {
		for _, ifid := range in.Routers[a].Ifaces {
			peer := in.PeerIface(ifid)
			if peer != netgen.None && in.Ifaces[peer].Router == b {
				return true
			}
		}
		return false
	}
	checked := 0
	for l := range raw.Links {
		ia, okA := in.ByIP[l[0]]
		ib, okB := in.ByIP[l[1]]
		if !okA || !okB {
			// One endpoint is an end host (destination address):
			// hosts attach to their /24's home router, so no router
			// adjacency to verify.
			continue
		}
		ra, rb := in.Ifaces[ia].Router, in.Ifaces[ib].Router
		if ra == rb {
			t.Fatalf("link %v connects two interfaces of router %d", l, ra)
		}
		if !adjacent(ra, rb) {
			t.Fatalf("discovered link %v has no ground-truth adjacency", l)
		}
		checked++
		if checked > 3000 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no verifiable links")
	}
}

func TestDestListTracked(t *testing.T) {
	_, raw := fixture(t)
	if len(raw.DestIPs) == 0 {
		t.Fatal("no destinations recorded")
	}
	// A notable share of observed nodes are destination-list entries
	// (end hosts) — the paper discarded 18% for this reason.
	inDest := 0
	for ip := range raw.Nodes {
		if _, ok := raw.DestIPs[ip]; ok {
			inDest++
		}
	}
	frac := float64(inDest) / float64(len(raw.Nodes))
	if frac < 0.02 || frac > 0.6 {
		t.Errorf("destination-list share of nodes = %.1f%%, want a notable minority", frac*100)
	}
}

func TestCollectDeterministic(t *testing.T) {
	in, _ := fixture(t)
	a := Collect(sNet, DefaultConfig(), rng.New(42))
	b := Collect(sNet, DefaultConfig(), rng.New(42))
	if len(a.Nodes) != len(b.Nodes) || len(a.Links) != len(b.Links) {
		t.Errorf("same seed produced different graphs: %d/%d vs %d/%d",
			len(a.Nodes), len(a.Links), len(b.Nodes), len(b.Links))
	}
	_ = in
}

func TestMonitorsContribute(t *testing.T) {
	_, raw := fixture(t)
	if raw.Stats.Monitors != 19 {
		t.Errorf("monitors = %d, want 19", raw.Stats.Monitors)
	}
	if raw.Stats.Traces < raw.Stats.Monitors*100 {
		t.Errorf("only %d traces across %d monitors", raw.Stats.Traces, raw.Stats.Monitors)
	}
}
