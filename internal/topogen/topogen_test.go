package topogen

import (
	"testing"

	"geonet/internal/analysis"
	"geonet/internal/geo"
	"geonet/internal/population"
	"geonet/internal/rng"
)

func TestWaxmanDistanceSensitivity(t *testing.T) {
	g := Waxman(800, geo.US, 0.05, 0.5, rng.New(1))
	if len(g.Links) == 0 {
		t.Fatal("no links")
	}
	// Short links must dominate relative to the pair distribution: fit
	// the measured distance preference and expect a negative slope.
	dp := analysis.DistancePreference(g.Dataset, geo.US, 35, 100)
	fit := dp.FitSmallD(1200)
	if fit.Fit.Slope >= 0 {
		t.Errorf("Waxman f(d) slope = %v, want negative (distance decay)", fit.Fit.Slope)
	}
}

func TestWaxmanUniformPlacement(t *testing.T) {
	g := Waxman(3000, geo.US, 0.1, 0.2, rng.New(2))
	// Uniform placement: patch node counts should NOT be heavy-tailed.
	grid := geo.NewPatchGrid(geo.US, 75)
	counts := grid.Tally(g.Points())
	max, sum, nz := 0.0, 0.0, 0
	for _, c := range counts {
		if c > 0 {
			nz++
			sum += c
			if c > max {
				max = c
			}
		}
	}
	mean := sum / float64(nz)
	if max > 12*mean {
		t.Errorf("Waxman placement looks clustered: max %v vs mean %v", max, mean)
	}
}

func TestErdosRenyiNoDistancePreference(t *testing.T) {
	g := ErdosRenyi(900, geo.US, 0.01, rng.New(3))
	dp := analysis.DistancePreference(g.Dataset, geo.US, 35, 100)
	// f(d) should be flat: compare early and late means.
	early, late := 0.0, 0.0
	en, ln := 0, 0
	for i := range dp.D {
		if dp.PairCount[i] < 100 {
			continue
		}
		if dp.D[i] < 500 {
			early += dp.F[i]
			en++
		} else if dp.D[i] > 1500 {
			late += dp.F[i]
			ln++
		}
	}
	if en == 0 || ln == 0 {
		t.Skip("insufficient bins")
	}
	ratio := (early / float64(en)) / (late / float64(ln))
	if ratio > 2 || ratio < 0.5 {
		t.Errorf("ER f(d) early/late = %v, want ~1 (no distance preference)", ratio)
	}
}

func TestBarabasiAlbertDegreeTail(t *testing.T) {
	g := BarabasiAlbert(4000, 2, geo.US, rng.New(4))
	deg := make(map[int32]int)
	for _, l := range g.Links {
		deg[l.A]++
		deg[l.B]++
	}
	max := 0
	for _, d := range deg {
		if d > max {
			max = d
		}
	}
	// Mean degree ~2m=4; a preferential-attachment hub should be far
	// above the mean.
	if max < 40 {
		t.Errorf("BA max degree = %d, want a hub (long tail)", max)
	}
	// Check link count: seed clique + m per new node.
	want := 3 + (4000-3)*2
	if len(g.Links) != want {
		t.Errorf("BA links = %d, want %d", len(g.Links), want)
	}
}

func TestGeoGenReproducesPaperShapes(t *testing.T) {
	world := population.Build(population.DefaultConfig(), rng.New(1))
	cfg := DefaultGeoGenConfig()
	cfg.Nodes = 2500
	g := GeoGen(cfg, world, geo.US, rng.New(5))
	if len(g.Nodes) != cfg.Nodes || len(g.Links) == 0 {
		t.Fatalf("geogen: %d nodes, %d links", len(g.Nodes), len(g.Links))
	}

	// 1. Placement is population-driven: patch counts heavy-tailed.
	grid := geo.NewPatchGrid(geo.US, 75)
	counts := grid.Tally(g.Points())
	max, sum, nz := 0.0, 0.0, 0
	for _, c := range counts {
		if c > 0 {
			nz++
			sum += c
			if c > max {
				max = c
			}
		}
	}
	if max < 8*(sum/float64(nz)) {
		t.Error("geogen placement not clustered like population")
	}

	// 2. Distance decay in link formation.
	dp := analysis.DistancePreference(g.Dataset, geo.US, 35, 100)
	fit := dp.FitSmallD(400)
	if fit.Fit.Slope >= 0 {
		t.Error("geogen links show no distance decay")
	}

	// 3. AS labels exist and have long-tailed sizes.
	asSizes := map[int]int{}
	for _, n := range g.Nodes {
		if n.ASN == 0 {
			t.Fatal("geogen left a node with no AS")
		}
		asSizes[n.ASN]++
	}
	if len(asSizes) < cfg.ASCount/2 {
		t.Errorf("only %d ASes assigned, want ~%d", len(asSizes), cfg.ASCount)
	}
	maxAS := 0
	for _, s := range asSizes {
		if s > maxAS {
			maxAS = s
		}
	}
	if maxAS < 5*len(g.Nodes)/cfg.ASCount {
		t.Errorf("largest AS = %d nodes; tail too flat", maxAS)
	}

	// 4. Latency annotation tracks distance.
	for i, l := range g.Links {
		wantMin := l.LengthMi / speedMilesPerMs
		if g.LatencyMs[i] < wantMin {
			t.Fatalf("latency %v below propagation bound %v", g.LatencyMs[i], wantMin)
		}
	}
}

func TestGeneratorsDeterministic(t *testing.T) {
	a := Waxman(200, geo.Europe, 0.1, 0.3, rng.New(9))
	b := Waxman(200, geo.Europe, 0.1, 0.3, rng.New(9))
	if len(a.Links) != len(b.Links) {
		t.Error("Waxman not deterministic")
	}
	world := population.Build(population.DefaultConfig(), rng.New(1))
	cfg := DefaultGeoGenConfig()
	cfg.Nodes = 300
	g1 := GeoGen(cfg, world, geo.Europe, rng.New(9))
	g2 := GeoGen(cfg, world, geo.Europe, rng.New(9))
	if len(g1.Links) != len(g2.Links) {
		t.Error("GeoGen not deterministic")
	}
}
