// Package topogen implements the topology generators the paper
// discusses (Section II) and the geography-driven generator its
// conclusions call for:
//
//   - Waxman: uniform random node placement, connection probability
//     beta*exp(-d/(L*alpha)) — the model whose placement assumption the
//     paper refutes and whose distance kernel it confirms;
//   - Erdős–Rényi: every pair connected with fixed probability p;
//   - Barabási–Albert: preferential attachment (degree-driven, no
//     geometry);
//   - GeoGen: the "next generation" generator of Section VII —
//     population-driven placement, two-regime distance-preference
//     links, AS labels with long-tailed location counts, and latency
//     annotation from geographic distance.
package topogen

import (
	"math"

	"geonet/internal/geo"
	"geonet/internal/population"
	"geonet/internal/rng"
	"geonet/internal/topo"
)

// Graph is a generated topology: a topo.Dataset (so the full analysis
// pipeline runs on it unchanged) plus latency annotations.
type Graph struct {
	*topo.Dataset
	// LatencyMs[i] is the propagation latency assigned to link i.
	LatencyMs []float64
}

// speedMilesPerMs is the signal propagation speed used for latency
// labelling: ~2/3 c in fibre, in miles per millisecond.
const speedMilesPerMs = 124.0

// annotateLatency fills LatencyMs from link lengths with a small
// equipment floor — the "straightforward matter" the paper's
// introduction promises once geography is available.
func (g *Graph) annotateLatency() {
	g.LatencyMs = make([]float64, len(g.Links))
	for i, l := range g.Links {
		g.LatencyMs[i] = 0.1 + l.LengthMi/speedMilesPerMs
	}
}

// Waxman generates n nodes uniformly in the region and connects each
// pair with probability beta*exp(-d/(L*alpha)), L being the maximum
// node separation — Waxman's original formulation as the paper states
// it.
func Waxman(n int, region geo.Region, alpha, beta float64, s *rng.Stream) *Graph {
	g := &Graph{Dataset: &topo.Dataset{Name: "waxman"}}
	for i := 0; i < n; i++ {
		p := geo.Pt(
			region.South+s.Float64()*region.HeightDeg(),
			region.West+s.Float64()*region.WidthDeg(),
		)
		g.Nodes = append(g.Nodes, topo.Node{Loc: p, ASN: 1})
	}
	L := region.MaxSpanMiles()
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := geo.DistanceMiles(g.Nodes[i].Loc, g.Nodes[j].Loc)
			if s.Bool(beta * math.Exp(-d/(L*alpha))) {
				g.Links = append(g.Links, topo.Link{A: int32(i), B: int32(j), LengthMi: d})
			}
		}
	}
	g.annotateLatency()
	return g
}

// ErdosRenyi generates n nodes uniformly in the region and includes
// each pair independently with probability p — no geometric preference
// at all.
func ErdosRenyi(n int, region geo.Region, p float64, s *rng.Stream) *Graph {
	g := &Graph{Dataset: &topo.Dataset{Name: "erdos-renyi"}}
	for i := 0; i < n; i++ {
		pt := geo.Pt(
			region.South+s.Float64()*region.HeightDeg(),
			region.West+s.Float64()*region.WidthDeg(),
		)
		g.Nodes = append(g.Nodes, topo.Node{Loc: pt, ASN: 1})
	}
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			if s.Bool(p) {
				d := geo.DistanceMiles(g.Nodes[i].Loc, g.Nodes[j].Loc)
				g.Links = append(g.Links, topo.Link{A: int32(i), B: int32(j), LengthMi: d})
			}
		}
	}
	g.annotateLatency()
	return g
}

// BarabasiAlbert generates n nodes (placed uniformly for geometric
// comparison, though placement plays no role in attachment) and
// attaches each new node to m existing nodes chosen preferentially by
// degree — the degree-distribution-first school the paper contrasts
// with geometric models.
func BarabasiAlbert(n, m int, region geo.Region, s *rng.Stream) *Graph {
	if m < 1 {
		m = 1
	}
	g := &Graph{Dataset: &topo.Dataset{Name: "barabasi-albert"}}
	degree := make([]int, 0, n)
	addNode := func() int {
		p := geo.Pt(
			region.South+s.Float64()*region.HeightDeg(),
			region.West+s.Float64()*region.WidthDeg(),
		)
		g.Nodes = append(g.Nodes, topo.Node{Loc: p, ASN: 1})
		degree = append(degree, 0)
		return len(g.Nodes) - 1
	}
	link := func(a, b int) {
		d := geo.DistanceMiles(g.Nodes[a].Loc, g.Nodes[b].Loc)
		g.Links = append(g.Links, topo.Link{A: int32(a), B: int32(b), LengthMi: d})
		degree[a]++
		degree[b]++
	}
	// Seed clique of m+1 nodes.
	seed := m + 1
	for i := 0; i < seed && i < n; i++ {
		addNode()
	}
	for i := 0; i < seed && i < n; i++ {
		for j := i + 1; j < seed && j < n; j++ {
			link(i, j)
		}
	}
	// Preferential attachment via the repeated-endpoint trick: sample
	// a uniformly random link endpoint (probability proportional to
	// degree).
	for len(g.Nodes) < n {
		v := addNode()
		chosen := map[int]bool{}
		for len(chosen) < m {
			l := g.Links[s.Intn(len(g.Links))]
			t := int(l.A)
			if s.Bool(0.5) {
				t = int(l.B)
			}
			if t != v && !chosen[t] {
				chosen[t] = true
				link(v, t)
			}
		}
	}
	g.annotateLatency()
	return g
}

// GeoGenConfig parameterises the geography-driven generator with the
// paper's measured values.
type GeoGenConfig struct {
	Nodes int
	// PlacementExponent is the superlinearity alpha of Figure 2
	// (router density ~ population density^alpha, 1.2-1.7).
	PlacementExponent float64
	// DecayMiles is the small-d exponential decay length of Figure 5.
	DecayMiles float64
	// FloorProb is the large-d distance-independent connection floor
	// relative to the peak (Table V's insensitive regime).
	FloorFrac float64
	// MeanDegree targets the graph's average degree.
	MeanDegree float64
	// ASCount labels nodes with this many ASes whose location counts
	// are long-tailed (0 = single AS).
	ASCount int
}

// DefaultGeoGenConfig uses the paper's US-region measurements.
func DefaultGeoGenConfig() GeoGenConfig {
	return GeoGenConfig{
		Nodes:             3000,
		PlacementExponent: 1.3,
		DecayMiles:        140,
		FloorFrac:         0.02,
		MeanDegree:        3,
		ASCount:           60,
	}
}

// GeoGen generates a topology the way the paper's conclusions propose:
// nodes placed by (superlinear) population preference from a real
// population raster, links formed with an exponential-plus-floor
// distance kernel, AS labels grown geographically, and latencies
// derived from distance.
func GeoGen(cfg GeoGenConfig, world *population.World, region geo.Region, s *rng.Stream) *Graph {
	g := &Graph{Dataset: &topo.Dataset{Name: "geogen"}}

	// Node placement: sample places weighted by online^alpha.
	placeIdx := world.PlacesIn(region)
	if len(placeIdx) == 0 {
		return g
	}
	weights := make([]float64, len(placeIdx))
	for i, pi := range placeIdx {
		weights[i] = math.Pow(world.Places[pi].Online+1, cfg.PlacementExponent)
	}
	sampler := rng.NewCumulative(weights)
	for i := 0; i < cfg.Nodes; i++ {
		pi := placeIdx[sampler.Sample(s)]
		g.Nodes = append(g.Nodes, topo.Node{Loc: world.Places[pi].Loc, ASN: 1})
	}

	// AS labels: grow cfg.ASCount regions from seed nodes so location
	// counts come out long-tailed and geographically coherent.
	if cfg.ASCount > 1 {
		assignASes(g, cfg.ASCount, s)
	}

	// Links: spanning attachment with the distance kernel, then extra
	// links to reach the target mean degree.
	kernel := func(d float64) float64 {
		return math.Exp(-d/cfg.DecayMiles) + cfg.FloorFrac
	}
	order := s.Perm(len(g.Nodes))
	w := make([]float64, 0, len(order))
	for i := 1; i < len(order); i++ {
		w = w[:0]
		loc := g.Nodes[order[i]].Loc
		for j := 0; j < i; j++ {
			w = append(w, kernel(geo.DistanceMiles(loc, g.Nodes[order[j]].Loc)))
		}
		j := s.WeightedIndex(w)
		addLink(g, order[i], order[j])
	}
	extra := int(cfg.MeanDegree/2*float64(len(g.Nodes))) - len(g.Links)
	for e := 0; e < extra; e++ {
		a := s.Intn(len(g.Nodes))
		w = w[:0]
		loc := g.Nodes[a].Loc
		for j := range g.Nodes {
			if j == a {
				w = append(w, 0)
				continue
			}
			w = append(w, kernel(geo.DistanceMiles(loc, g.Nodes[j].Loc)))
		}
		addLink(g, a, s.WeightedIndex(w))
	}
	g.annotateLatency()
	return g
}

func addLink(g *Graph, a, b int) {
	if a == b {
		return
	}
	d := geo.DistanceMiles(g.Nodes[a].Loc, g.Nodes[b].Loc)
	g.Links = append(g.Links, topo.Link{A: int32(a), B: int32(b), LengthMi: d})
}

// assignASes grows AS regions: each AS seeds at a node and claims
// Zipf-sized batches of nearest unclaimed nodes.
func assignASes(g *Graph, count int, s *rng.Stream) {
	n := len(g.Nodes)
	sizes := make([]int, count)
	remaining := n
	draw := s.Zipf(1.4, n)
	for i := range sizes {
		sz := draw()
		if sz > remaining-(count-i-1) {
			sz = remaining - (count - i - 1)
		}
		if sz < 1 {
			sz = 1
		}
		sizes[i] = sz
		remaining -= sz
	}
	sizes[0] += remaining // leftover to the biggest

	claimed := make([]bool, n)
	asn := 1
	for _, sz := range sizes {
		// Seed at a random unclaimed node.
		seed := -1
		for t := 0; t < 50; t++ {
			c := s.Intn(n)
			if !claimed[c] {
				seed = c
				break
			}
		}
		if seed == -1 {
			for c := 0; c < n; c++ {
				if !claimed[c] {
					seed = c
					break
				}
			}
		}
		if seed == -1 {
			break
		}
		// Claim the sz nearest unclaimed nodes (including the seed).
		type cand struct {
			idx int
			d   float64
		}
		var cands []cand
		for c := 0; c < n; c++ {
			if !claimed[c] {
				cands = append(cands, cand{c, geo.DistanceMiles(g.Nodes[seed].Loc, g.Nodes[c].Loc)})
			}
		}
		// Partial selection sort of the sz nearest.
		for k := 0; k < sz && k < len(cands); k++ {
			min := k
			for m := k + 1; m < len(cands); m++ {
				if cands[m].d < cands[min].d {
					min = m
				}
			}
			cands[k], cands[min] = cands[min], cands[k]
			claimed[cands[k].idx] = true
			g.Nodes[cands[k].idx].ASN = asn
		}
		asn++
	}
	// Anything unclaimed joins AS 1.
	for c := 0; c < n; c++ {
		if !claimed[c] {
			g.Nodes[c].ASN = 1
		}
	}
}
