//go:build !linux

package snapfile

// readSnapFile falls back to a heap copy where mmap support isn't
// wired up; Load behaves identically either way.
func readSnapFile(path string) ([]byte, func(), error) {
	return readSnapFileHeap(path)
}
