//go:build linux

package snapfile

import (
	"os"
	"syscall"
)

// readSnapFile maps the file read-only instead of copying it onto the
// heap: Decode never retains the input bytes (every slab is re-parsed
// into fresh slices), so the mapping is released as soon as decoding
// finishes and the page cache backs the one pass over the file.
// Anything mmap can't serve (empty file, weird filesystem) falls back
// to an ordinary read.
func readSnapFile(path string) (data []byte, done func(), err error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, nil, err
	}
	defer f.Close()
	st, err := f.Stat()
	if err != nil {
		return nil, nil, err
	}
	size := st.Size()
	if size <= 0 || int64(int(size)) != size {
		return readSnapFileHeap(path)
	}
	mapped, err := syscall.Mmap(int(f.Fd()), 0, int(size), syscall.PROT_READ, syscall.MAP_PRIVATE)
	if err != nil {
		return readSnapFileHeap(path)
	}
	return mapped, func() { syscall.Munmap(mapped) }, nil
}
