package snapfile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"testing"

	"geonet/internal/analysis"
	"geonet/internal/geo"
	"geonet/internal/geoserve"
	"geonet/internal/rng"
)

// makeSnapshot assembles a small synthetic snapshot through the same
// FromColumns path Load uses, so tests need no pipeline run. Content
// is deterministic in (seed, nPrefixes, nASNs).
func makeSnapshot(tb testing.TB, seed int64, nPrefixes, nASNs int) *geoserve.Snapshot {
	tb.Helper()
	r := rng.New(seed)
	c := &geoserve.Columns{
		Build:   geoserve.BuildInfo{Seed: seed, Scale: 0.5, Label: "synthetic"},
		Mappers: []string{"alpha", "beta"},
	}
	for i := 0; i < nPrefixes; i++ {
		base := uint32(10<<24) + uint32(i)<<8
		c.Prefixes = append(c.Prefixes, base)
		// Two exact addresses per /24.
		c.IPs = append(c.IPs, base+1, base+2)
	}
	for i := 0; i < nASNs; i++ {
		c.ASNs = append(c.ASNs, int32(100+i))
	}
	rows := len(c.Prefixes) + len(c.IPs)
	for m := 0; m < len(c.Mappers); m++ {
		a := geoserve.AnswerColumns{
			Lat:    make([]float64, rows),
			Lon:    make([]float64, rows),
			Radius: make([]float64, rows),
			ASN:    make([]int32, rows),
			Method: make([]uint8, rows),
			Found:  make([]uint8, rows),
		}
		for i := 0; i < rows; i++ {
			if nASNs > 0 {
				a.ASN[i] = c.ASNs[r.Intn(nASNs)]
			}
			if r.Bool(0.8) {
				a.Found[i] = 1
				a.Method[i] = uint8(1 + r.Intn(4))
				a.Lat[i] = r.Float64()*180 - 90
				a.Lon[i] = r.Float64()*360 - 180
				a.Radius[i] = r.Float64() * 500
			}
		}
		c.Answers = append(c.Answers, a)
		fps := make([]analysis.ASFootprint, nASNs)
		for i := range fps {
			if r.Bool(0.7) {
				fps[i] = analysis.ASFootprint{
					ASN:        int(c.ASNs[i]),
					Interfaces: 1 + r.Intn(50),
					Locations:  1 + r.Intn(10),
					Degree:     r.Intn(20),
					Centroid:   geo.Pt(r.Float64()*180-90, r.Float64()*360-180),
					AreaSqMi:   r.Float64() * 1e6,
					RadiusMi:   r.Float64() * 500,
				}
			}
		}
		c.Footprints = append(c.Footprints, fps)
	}
	snap, err := geoserve.FromColumns(c)
	if err != nil {
		tb.Fatalf("FromColumns: %v", err)
	}
	return snap
}

func TestRoundTrip(t *testing.T) {
	snap := makeSnapshot(t, 7, 40, 12)
	blob, err := Encode(snap, 3)
	if err != nil {
		t.Fatal(err)
	}
	loaded, info, err := Decode(blob)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Digest() != snap.Digest() {
		t.Fatalf("digest drifted across encode/decode: %s != %s", loaded.Digest(), snap.Digest())
	}
	if info.Epoch != 3 || info.FormatVersion != FormatVersion || info.Digest != snap.Digest() {
		t.Fatalf("bad FileInfo %+v", info)
	}
	if info.Build != snap.Build() {
		t.Fatalf("build info drifted: %+v != %+v", info.Build, snap.Build())
	}
	if info.SizeBytes != int64(len(blob)) {
		t.Fatalf("SizeBytes %d != %d", info.SizeBytes, len(blob))
	}
	// Every class of lookup must answer identically: exact hit, prefix
	// hit, and a miss outside allocated space, under both mappers.
	probes := []uint32{
		snap.ExactIPs()[0], snap.ExactIPs()[5],
		snap.Prefixes()[3] + 200, // generic host
		0xF0000001,               // class E miss
	}
	for m := 0; m < 2; m++ {
		for _, ip := range probes {
			if got, want := loaded.Lookup(m, ip), snap.Lookup(m, ip); got != want {
				t.Fatalf("mapper %d ip %d: loaded answer %+v != %+v", m, ip, got, want)
			}
		}
		for _, asn := range []int{100, 105, 999} {
			gf, gok := loaded.Footprint(m, asn)
			wf, wok := snap.Footprint(m, asn)
			if gok != wok || gf != wf {
				t.Fatalf("mapper %d asn %d: footprint (%+v,%v) != (%+v,%v)", m, asn, gf, gok, wf, wok)
			}
		}
	}
}

func TestDeterministicEncoding(t *testing.T) {
	snap := makeSnapshot(t, 11, 10, 4)
	a, err := Encode(snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Encode(snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two encodings of the same snapshot differ")
	}
}

func TestWriteFileLoad(t *testing.T) {
	dir := t.TempDir()
	path := filepath.Join(dir, "world.snap")
	snap := makeSnapshot(t, 3, 16, 5)
	if err := WriteFile(path, snap, 9); err != nil {
		t.Fatal(err)
	}
	loaded, info, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	if loaded.Digest() != snap.Digest() || info.Epoch != 9 {
		t.Fatalf("loaded digest %s epoch %d", loaded.Digest(), info.Epoch)
	}
	// Overwrite in place with a different epoch: WriteFile must swap
	// atomically and leave no temp files behind.
	if err := WriteFile(path, snap, 10); err != nil {
		t.Fatal(err)
	}
	if _, info, err = Load(path); err != nil || info.Epoch != 10 {
		t.Fatalf("reloaded epoch %d err %v", info.Epoch, err)
	}
	entries, err := os.ReadDir(dir)
	if err != nil {
		t.Fatal(err)
	}
	if len(entries) != 1 {
		t.Fatalf("directory holds %d entries after overwrite, want just the snapshot", len(entries))
	}
}

func TestLoadRejectsDamage(t *testing.T) {
	snap := makeSnapshot(t, 5, 12, 4)
	blob, err := Encode(snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	damage := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrMagic},
		{"bad magic", func(b []byte) []byte { b[0] ^= 0xff; return b }, ErrMagic},
		{"version skew", func(b []byte) []byte { b[8] = 99; return b }, ErrVersion},
		{"header only", func(b []byte) []byte { return b[:14] }, ErrTruncated},
		{"cut mid-section", func(b []byte) []byte { return b[:len(b)/3] }, ErrTruncated},
		{"cut trailer", func(b []byte) []byte { return b[:len(b)-70] }, ErrTruncated},
		{"bit flip in body", func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b }, ErrCorrupt},
		{"bit flip in content digest", func(b []byte) []byte { b[len(b)-40] ^= 0x01; return b }, ErrCorrupt},
		{"bit flip in file hash", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, ErrCorrupt},
		{"trailing garbage", func(b []byte) []byte { return append(b, 1, 2, 3) }, ErrFormat},
	}
	for _, tc := range damage {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mut(append([]byte(nil), blob...))
			s, _, err := Decode(mutated)
			if err == nil {
				t.Fatal("damaged file loaded cleanly")
			}
			if s != nil {
				t.Fatal("damaged load returned a snapshot alongside its error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
		})
	}
}

// TestLoadRejectsDigestSwap rewrites the trailer of a tampered file so
// the file hash passes again; the recomputed content digest must still
// catch that the trailer digest and the content disagree.
func TestLoadRejectsDigestSwap(t *testing.T) {
	snap := makeSnapshot(t, 5, 12, 4)
	blob, err := Encode(snap, 1)
	if err != nil {
		t.Fatal(err)
	}
	other, err := Encode(makeSnapshot(t, 6, 12, 4), 1)
	if err != nil {
		t.Fatal(err)
	}
	// Splice the other snapshot's content digest in and re-seal the
	// file hash — a corruption smart enough to fix the outer checksum.
	forged := append([]byte(nil), blob...)
	copy(forged[len(forged)-64:len(forged)-32], other[len(other)-64:len(other)-32])
	reseal(forged)
	if _, _, err := Decode(forged); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged digest loaded with err %v, want ErrCorrupt", err)
	}
}

func BenchmarkSnapfileLoad(b *testing.B) {
	snap := makeSnapshot(b, 1, 2000, 200)
	blob, err := Encode(snap, 1)
	if err != nil {
		b.Fatal(err)
	}
	b.SetBytes(int64(len(blob)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if _, _, err := Decode(blob); err != nil {
			b.Fatal(err)
		}
	}
}
