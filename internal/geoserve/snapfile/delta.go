package snapfile

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"math"

	"geonet/internal/analysis"
	"geonet/internal/geoserve"
)

// DeltaFormatVersion is the snapshot delta format this package writes
// and the only one it applies.
const DeltaFormatVersion = 1

// deltaMagic identifies a snapshot delta file; it never changes across
// versions.
const deltaMagic = "geosnapd"

// ErrDeltaBase: a valid delta, but its from-digest names a different
// base snapshot than the one Apply was given.
var ErrDeltaBase = errors.New("snapfile: delta does not apply to this base snapshot")

// DeltaInfo reports a delta's identity.
type DeltaInfo struct {
	FormatVersion uint32
	// FromEpoch/ToEpoch are the replication epochs the delta bridges.
	FromEpoch uint64
	ToEpoch   uint64
	// FromDigest is the content digest (hex) of the required base
	// snapshot; ToDigest the digest the applied result must hash to.
	FromDigest string
	ToDigest   string
	Build      geoserve.BuildInfo
	SizeBytes  int64
	// Ops counts the changed /24 intervals the delta carries.
	Ops int
}

// Delta op kinds: a /24 interval is either removed or fully replaced.
// Unchanged intervals are not mentioned at all — that omission is what
// makes mostly-unchanged epochs travel small.
const (
	opDel = 0
	opPut = 1
)

// ival is one /24 interval's row span inside a Columns: the optional
// prefix row plus the exact-address rows whose /24 it is.
type ival struct {
	key    uint32 // /24 base address
	prefix int    // index into Prefixes, -1 when the /24 has no prefix row
	ipLo   int    // half-open range into IPs
	ipHi   int
}

// intervals groups a snapshot's row space by /24. Both indexes are
// ascending, so one merge pass yields the intervals in key order.
func intervals(c *geoserve.Columns) []ival {
	out := make([]ival, 0, len(c.Prefixes))
	pi, ii := 0, 0
	for pi < len(c.Prefixes) || ii < len(c.IPs) {
		var key uint32
		switch {
		case pi >= len(c.Prefixes):
			key = c.IPs[ii] &^ 0xff
		case ii >= len(c.IPs):
			key = c.Prefixes[pi]
		default:
			key = c.Prefixes[pi]
			if k := c.IPs[ii] &^ 0xff; k < key {
				key = k
			}
		}
		v := ival{key: key, prefix: -1, ipLo: ii, ipHi: ii}
		if pi < len(c.Prefixes) && c.Prefixes[pi] == key {
			v.prefix = pi
			pi++
		}
		for ii < len(c.IPs) && c.IPs[ii]&^0xff == key {
			ii++
		}
		v.ipHi = ii
		out = append(out, v)
	}
	return out
}

// rowEqual compares one answer row across two column sets bitwise
// (floats by their bit patterns, so the comparison is exactly the
// byte-identity the encoded forms would have).
func rowEqual(a, b *geoserve.AnswerColumns, ra, rb int) bool {
	return math.Float64bits(a.Lat[ra]) == math.Float64bits(b.Lat[rb]) &&
		math.Float64bits(a.Lon[ra]) == math.Float64bits(b.Lon[rb]) &&
		math.Float64bits(a.Radius[ra]) == math.Float64bits(b.Radius[rb]) &&
		a.ASN[ra] == b.ASN[rb] &&
		a.Method[ra] == b.Method[rb] &&
		a.Found[ra] == b.Found[rb]
}

// ivalEqual reports whether one /24 interval carries identical content
// in both column sets: same prefix presence, same exact addresses, and
// identical answer rows under every mapper.
func ivalEqual(oc, nc *geoserve.Columns, ov, nv ival) bool {
	if (ov.prefix >= 0) != (nv.prefix >= 0) || ov.ipHi-ov.ipLo != nv.ipHi-nv.ipLo {
		return false
	}
	for k := 0; k < ov.ipHi-ov.ipLo; k++ {
		if oc.IPs[ov.ipLo+k] != nc.IPs[nv.ipLo+k] {
			return false
		}
	}
	for m := range oc.Answers {
		oa, na := &oc.Answers[m], &nc.Answers[m]
		if ov.prefix >= 0 && !rowEqual(oa, na, ov.prefix, nv.prefix) {
			return false
		}
		for k := 0; k < ov.ipHi-ov.ipLo; k++ {
			if !rowEqual(oa, na, len(oc.Prefixes)+ov.ipLo+k, len(nc.Prefixes)+nv.ipLo+k) {
				return false
			}
		}
	}
	return true
}

// appendIvalRows emits an interval's answer rows (prefix row first,
// then exact rows in address order) for every mapper, row-major.
func appendIvalRows(buf []byte, c *geoserve.Columns, v ival) []byte {
	row := func(b []byte, a *geoserve.AnswerColumns, r int) []byte {
		b = appendF64(b, a.Lat[r])
		b = appendF64(b, a.Lon[r])
		b = appendF64(b, a.Radius[r])
		b = binary.LittleEndian.AppendUint32(b, uint32(a.ASN[r]))
		b = append(b, a.Method[r], a.Found[r])
		return b
	}
	for m := range c.Answers {
		a := &c.Answers[m]
		if v.prefix >= 0 {
			buf = row(buf, a, v.prefix)
		}
		for k := v.ipLo; k < v.ipHi; k++ {
			buf = row(buf, a, len(c.Prefixes)+k)
		}
	}
	return buf
}

// Diff computes the deterministic per-/24-interval delta that turns
// old into new: unchanged intervals are omitted, changed or added ones
// travel whole, removed ones as tombstones. Mapper sets must match
// (a delta rewrites interval rows in mapper order; a world that gained
// or lost a mapper must travel as a full snapshot instead). The
// encoding carries the same dual-digest trailer discipline as full
// snapshot files: new's content digest plus a whole-file SHA-256.
func Diff(old, new *geoserve.Snapshot, fromEpoch, toEpoch uint64) ([]byte, error) {
	oldMappers, newMappers := old.Mappers(), new.Mappers()
	if len(oldMappers) != len(newMappers) {
		return nil, fmt.Errorf("snapfile: cannot diff across mapper sets %v -> %v", oldMappers, newMappers)
	}
	for i := range oldMappers {
		if oldMappers[i] != newMappers[i] {
			return nil, fmt.Errorf("snapfile: cannot diff across mapper sets %v -> %v", oldMappers, newMappers)
		}
	}
	oc, nc := old.Columns(), new.Columns()

	buf := []byte(deltaMagic)
	buf = binary.LittleEndian.AppendUint32(buf, DeltaFormatVersion)
	fromDigest, err := rawDigest(old.Digest())
	if err != nil {
		return nil, err
	}
	buf = appendSection(buf, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint64(b, fromEpoch)
		b = binary.LittleEndian.AppendUint64(b, toEpoch)
		b = append(b, fromDigest...)
		b = binary.LittleEndian.AppendUint64(b, uint64(nc.Build.Seed))
		b = appendF64(b, nc.Build.Scale)
		b = appendString(b, nc.Build.Label)
		return b
	})
	buf = appendSection(buf, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(nc.Mappers)))
		for _, name := range nc.Mappers {
			b = appendString(b, name)
		}
		return b
	})
	// ASNs and footprints are tiny next to the answer tables; they
	// always travel whole, so footprint drift never needs interval ops.
	buf = appendSection(buf, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(nc.ASNs)))
		for _, v := range nc.ASNs {
			b = binary.LittleEndian.AppendUint32(b, uint32(v))
		}
		return b
	})
	for m := range nc.Footprints {
		fps := nc.Footprints[m]
		buf = appendSection(buf, func(b []byte) []byte {
			for i := range fps {
				fp := &fps[i]
				b = binary.LittleEndian.AppendUint32(b, uint32(fp.ASN))
				b = binary.LittleEndian.AppendUint32(b, uint32(fp.Interfaces))
				b = binary.LittleEndian.AppendUint32(b, uint32(fp.Locations))
				b = binary.LittleEndian.AppendUint32(b, uint32(fp.Degree))
				b = appendF64(b, fp.Centroid.Lat)
				b = appendF64(b, fp.Centroid.Lon)
				b = appendF64(b, fp.AreaSqMi)
				b = appendF64(b, fp.RadiusMi)
			}
			return b
		})
	}

	// Ops: one merge pass over both interval lists, ascending by key.
	ovs, nvs := intervals(oc), intervals(nc)
	buf = appendSection(buf, func(b []byte) []byte {
		at := len(b)
		b = binary.LittleEndian.AppendUint32(b, 0)
		nOps := 0
		oi, ni := 0, 0
		for oi < len(ovs) || ni < len(nvs) {
			switch {
			case ni >= len(nvs) || (oi < len(ovs) && ovs[oi].key < nvs[ni].key):
				b = binary.LittleEndian.AppendUint32(b, ovs[oi].key)
				b = append(b, opDel)
				nOps++
				oi++
			case oi >= len(ovs) || nvs[ni].key < ovs[oi].key:
				b = appendPutOp(b, nc, nvs[ni])
				nOps++
				ni++
			default:
				if !ivalEqual(oc, nc, ovs[oi], nvs[ni]) {
					b = appendPutOp(b, nc, nvs[ni])
					nOps++
				}
				oi++
				ni++
			}
		}
		binary.LittleEndian.PutUint32(b[at:], uint32(nOps))
		return b
	})

	toDigest, err := rawDigest(new.Digest())
	if err != nil {
		return nil, err
	}
	buf = append(buf, toDigest...)
	sum := sha256.Sum256(buf)
	buf = append(buf, sum[:]...)
	return buf, nil
}

func appendPutOp(b []byte, c *geoserve.Columns, v ival) []byte {
	b = binary.LittleEndian.AppendUint32(b, v.key)
	b = append(b, opPut)
	if v.prefix >= 0 {
		b = append(b, 1)
	} else {
		b = append(b, 0)
	}
	b = binary.LittleEndian.AppendUint32(b, uint32(v.ipHi-v.ipLo))
	for k := v.ipLo; k < v.ipHi; k++ {
		b = binary.LittleEndian.AppendUint32(b, c.IPs[k])
	}
	return appendIvalRows(b, c, v)
}

func rawDigest(hexDigest string) ([]byte, error) {
	raw, err := hex.DecodeString(hexDigest)
	if err != nil || len(raw) != 32 {
		return nil, fmt.Errorf("snapfile: snapshot digest %q is not a sha256", hexDigest)
	}
	return raw, nil
}

// deltaOp is one decoded interval op.
type deltaOp struct {
	key    uint32
	kind   uint8
	prefix bool
	ips    []uint32
	// rows holds hasPrefix+len(ips) answer rows per mapper, row-major
	// in mapper order, each row the 6 answer fields.
	rows []deltaRow
}

type deltaRow struct {
	lat, lon, radius float64
	asn              int32
	method, found    uint8
}

// Apply verifies a delta end to end and rebuilds the target snapshot
// from base: magic and version gate first, every op is bounds- and
// order-checked, the whole-file hash must match, the base's content
// digest must equal the delta's from-digest, and the reassembled
// snapshot's recomputed digest must equal the to-digest trailer — an
// applied delta can never yield a snapshot the builder did not
// publish.
func Apply(base *geoserve.Snapshot, data []byte) (*geoserve.Snapshot, DeltaInfo, error) {
	info := DeltaInfo{SizeBytes: int64(len(data))}
	if len(data) < len(deltaMagic)+4 || string(data[:len(deltaMagic)]) != deltaMagic {
		return nil, info, fmt.Errorf("%w (not a snapshot delta)", ErrMagic)
	}
	info.FormatVersion = binary.LittleEndian.Uint32(data[len(deltaMagic):])
	if info.FormatVersion != DeltaFormatVersion {
		return nil, info, fmt.Errorf("%w %d (this build speaks delta v%d)", ErrVersion, info.FormatVersion, DeltaFormatVersion)
	}
	if len(data) < len(deltaMagic)+4+trailerBytes {
		return nil, info, fmt.Errorf("%w: %d bytes is shorter than the minimal delta", ErrTruncated, len(data))
	}
	body := data[len(deltaMagic)+4 : len(data)-trailerBytes]
	d := &decoder{data: body}

	header, err := d.section("delta header")
	if err != nil {
		return nil, info, err
	}
	if info.FromEpoch, err = header.u64("from epoch"); err != nil {
		return nil, info, err
	}
	if info.ToEpoch, err = header.u64("to epoch"); err != nil {
		return nil, info, err
	}
	fromRaw, err := header.take(32, "from digest")
	if err != nil {
		return nil, info, err
	}
	info.FromDigest = hex.EncodeToString(fromRaw)
	seed, err := header.u64("build seed")
	if err != nil {
		return nil, info, err
	}
	info.Build.Seed = int64(seed)
	if info.Build.Scale, err = header.f64("build scale"); err != nil {
		return nil, info, err
	}
	if info.Build.Label, err = header.str("build label"); err != nil {
		return nil, info, err
	}
	if err := header.done("delta header"); err != nil {
		return nil, info, err
	}
	info.ToDigest = hex.EncodeToString(data[len(data)-trailerBytes : len(data)-32])

	var mappers []string
	msec, err := d.section("delta mappers")
	if err != nil {
		return nil, info, err
	}
	nMappers, err := msec.u32("mapper count")
	if err != nil {
		return nil, info, err
	}
	if uint64(nMappers)*4 > uint64(msec.remaining()) {
		return nil, info, fmt.Errorf("%w: mapper count %d exceeds section size", ErrFormat, nMappers)
	}
	for i := 0; i < int(nMappers); i++ {
		name, err := msec.str("mapper name")
		if err != nil {
			return nil, info, err
		}
		mappers = append(mappers, name)
	}
	if err := msec.done("delta mappers"); err != nil {
		return nil, info, err
	}

	asnsRaw, err := d.u32Section("delta asns")
	if err != nil {
		return nil, info, err
	}
	asns := make([]int32, len(asnsRaw))
	for i, v := range asnsRaw {
		asns[i] = int32(v)
	}
	footprints, err := decodeFootprints(d, len(mappers), len(asns))
	if err != nil {
		return nil, info, err
	}

	ops, err := decodeOps(d, len(mappers))
	if err != nil {
		return nil, info, err
	}
	info.Ops = len(ops)
	if d.remaining() != 0 {
		return nil, info, fmt.Errorf("%w: %d trailing bytes after the ops section", ErrFormat, d.remaining())
	}
	sum := sha256.Sum256(data[:len(data)-32])
	if string(sum[:]) != string(data[len(data)-32:]) {
		return nil, info, fmt.Errorf("%w: delta file hash mismatch", ErrCorrupt)
	}

	if base == nil || base.Digest() != info.FromDigest {
		have := "<nil>"
		if base != nil {
			have = base.Digest()
		}
		return nil, info, fmt.Errorf("%w: delta is from %s, base is %s", ErrDeltaBase, info.FromDigest, have)
	}
	baseC := base.Columns()
	if len(baseC.Mappers) != len(mappers) {
		return nil, info, fmt.Errorf("%w: delta has %d mappers, base %d", ErrFormat, len(mappers), len(baseC.Mappers))
	}
	for i := range mappers {
		if baseC.Mappers[i] != mappers[i] {
			return nil, info, fmt.Errorf("%w: delta mapper %q != base mapper %q", ErrFormat, mappers[i], baseC.Mappers[i])
		}
	}

	nc, err := mergeOps(baseC, info.Build, mappers, asns, footprints, ops)
	if err != nil {
		return nil, info, err
	}
	snap, err := geoserve.FromColumns(nc)
	if err != nil {
		return nil, info, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	if snap.Digest() != info.ToDigest {
		return nil, info, fmt.Errorf("%w: applied delta hashes to %s, trailer names %s",
			ErrCorrupt, snap.Digest(), info.ToDigest)
	}
	return snap, info, nil
}

func decodeFootprints(d *decoder, nMappers, nASNs int) ([][]analysis.ASFootprint, error) {
	out := make([][]analysis.ASFootprint, nMappers)
	for m := 0; m < nMappers; m++ {
		sec, err := d.section("delta footprints")
		if err != nil {
			return nil, err
		}
		if sec.remaining() != nASNs*footprintRowBytes {
			return nil, fmt.Errorf("%w: footprint section for mapper %d is %d bytes, want %d rows × %d",
				ErrFormat, m, sec.remaining(), nASNs, footprintRowBytes)
		}
		fps := make([]analysis.ASFootprint, nASNs)
		for i := range fps {
			fp := &fps[i]
			fp.ASN = int(int32(sec.rawU32()))
			fp.Interfaces = int(sec.rawU32())
			fp.Locations = int(sec.rawU32())
			fp.Degree = int(sec.rawU32())
			fp.Centroid.Lat = sec.rawF64()
			fp.Centroid.Lon = sec.rawF64()
			fp.AreaSqMi = sec.rawF64()
			fp.RadiusMi = sec.rawF64()
		}
		out[m] = fps
	}
	return out, nil
}

func decodeOps(d *decoder, nMappers int) ([]deltaOp, error) {
	sec, err := d.section("delta ops")
	if err != nil {
		return nil, err
	}
	nOps, err := sec.u32("op count")
	if err != nil {
		return nil, err
	}
	// Every op costs at least its 5-byte key+kind, bounding the count
	// before anything allocates.
	if uint64(nOps)*5 > uint64(sec.remaining()) {
		return nil, fmt.Errorf("%w: op count %d exceeds section size", ErrFormat, nOps)
	}
	ops := make([]deltaOp, 0, nOps)
	for i := 0; i < int(nOps); i++ {
		key, err := sec.u32("op key")
		if err != nil {
			return nil, err
		}
		if key&0xff != 0 {
			return nil, fmt.Errorf("%w: op key %d not /24-aligned", ErrFormat, key)
		}
		if len(ops) > 0 && ops[len(ops)-1].key >= key {
			return nil, fmt.Errorf("%w: op keys not strictly ascending at %d", ErrFormat, key)
		}
		kindB, err := sec.take(1, "op kind")
		if err != nil {
			return nil, err
		}
		op := deltaOp{key: key, kind: kindB[0]}
		switch op.kind {
		case opDel:
		case opPut:
			flags, err := sec.take(1, "op prefix flag")
			if err != nil {
				return nil, err
			}
			if flags[0] > 1 {
				return nil, fmt.Errorf("%w: op prefix flag %d", ErrFormat, flags[0])
			}
			op.prefix = flags[0] == 1
			nIPs, err := sec.u32("op ip count")
			if err != nil {
				return nil, err
			}
			if uint64(nIPs)*4 > uint64(sec.remaining()) {
				return nil, fmt.Errorf("%w: op ip count %d exceeds section size", ErrFormat, nIPs)
			}
			op.ips = make([]uint32, nIPs)
			for k := range op.ips {
				op.ips[k] = sec.rawU32()
				if op.ips[k]&^0xff != key {
					return nil, fmt.Errorf("%w: op ip %d outside its /24 %d", ErrFormat, op.ips[k], key)
				}
				if k > 0 && op.ips[k-1] >= op.ips[k] {
					return nil, fmt.Errorf("%w: op ips not strictly ascending in /24 %d", ErrFormat, key)
				}
			}
			rows := nMappers * (boolInt(op.prefix) + len(op.ips))
			if rows*answerRowBytes > sec.remaining() {
				return nil, fmt.Errorf("%w: op at %d needs %d row bytes, %d left",
					ErrTruncated, key, rows*answerRowBytes, sec.remaining())
			}
			op.rows = make([]deltaRow, rows)
			for k := range op.rows {
				r := &op.rows[k]
				r.lat = sec.rawF64()
				r.lon = sec.rawF64()
				r.radius = sec.rawF64()
				r.asn = int32(sec.rawU32())
				b, _ := sec.take(2, "op row flags")
				r.method, r.found = b[0], b[1]
			}
		default:
			return nil, fmt.Errorf("%w: op kind %d", ErrFormat, op.kind)
		}
		ops = append(ops, op)
	}
	if err := sec.done("delta ops"); err != nil {
		return nil, err
	}
	return ops, nil
}

func boolInt(b bool) int {
	if b {
		return 1
	}
	return 0
}

// mergeOps rebuilds the target's column set: base intervals copy
// through except where an op replaces or removes them, and ops keyed
// past the base add new intervals. Answers are re-laid-out into the
// prefix-rows-then-exact-rows order FromColumns expects.
func mergeOps(baseC *geoserve.Columns, build geoserve.BuildInfo, mappers []string, asns []int32, footprints [][]analysis.ASFootprint, ops []deltaOp) (*geoserve.Columns, error) {
	type outIval struct {
		prefix bool
		ips    []uint32
		// row returns mapper m's answer row r of the interval (prefix
		// row 0 when present, then exact rows).
		row func(m, r int) deltaRow
	}
	bvs := intervals(baseC)
	var merged []outIval
	fromBase := func(v ival) outIval {
		return outIval{
			prefix: v.prefix >= 0,
			ips:    baseC.IPs[v.ipLo:v.ipHi],
			row: func(m, r int) deltaRow {
				a := &baseC.Answers[m]
				var idx int
				if v.prefix >= 0 && r == 0 {
					idx = v.prefix
				} else {
					idx = len(baseC.Prefixes) + v.ipLo + r - boolInt(v.prefix >= 0)
				}
				return deltaRow{
					lat: a.Lat[idx], lon: a.Lon[idx], radius: a.Radius[idx],
					asn: a.ASN[idx], method: a.Method[idx], found: a.Found[idx],
				}
			},
		}
	}
	fromOp := func(op deltaOp) outIval {
		perMapper := boolInt(op.prefix) + len(op.ips)
		return outIval{
			prefix: op.prefix,
			ips:    op.ips,
			row:    func(m, r int) deltaRow { return op.rows[m*perMapper+r] },
		}
	}
	keys := make([]uint32, 0, len(bvs))
	bi, oi := 0, 0
	for bi < len(bvs) || oi < len(ops) {
		switch {
		case oi >= len(ops) || (bi < len(bvs) && bvs[bi].key < ops[oi].key):
			keys = append(keys, bvs[bi].key)
			merged = append(merged, fromBase(bvs[bi]))
			bi++
		case bi >= len(bvs) || ops[oi].key < bvs[bi].key:
			if ops[oi].kind == opDel {
				return nil, fmt.Errorf("%w: delta removes /24 %d absent from base", ErrFormat, ops[oi].key)
			}
			keys = append(keys, ops[oi].key)
			merged = append(merged, fromOp(ops[oi]))
			oi++
		default:
			if ops[oi].kind == opPut {
				keys = append(keys, ops[oi].key)
				merged = append(merged, fromOp(ops[oi]))
			}
			bi++
			oi++
		}
	}

	nc := &geoserve.Columns{
		Build:   build,
		Mappers: mappers,
		ASNs:    asns,
	}
	for i, v := range merged {
		if v.prefix {
			nc.Prefixes = append(nc.Prefixes, keys[i])
		}
		nc.IPs = append(nc.IPs, v.ips...)
	}
	rows := len(nc.Prefixes) + len(nc.IPs)
	nc.Answers = make([]geoserve.AnswerColumns, len(mappers))
	for m := range mappers {
		a := geoserve.AnswerColumns{
			Lat:    make([]float64, 0, rows),
			Lon:    make([]float64, 0, rows),
			Radius: make([]float64, 0, rows),
			ASN:    make([]int32, 0, rows),
			Method: make([]uint8, 0, rows),
			Found:  make([]uint8, 0, rows),
		}
		appendRow := func(r deltaRow) {
			a.Lat = append(a.Lat, r.lat)
			a.Lon = append(a.Lon, r.lon)
			a.Radius = append(a.Radius, r.radius)
			a.ASN = append(a.ASN, r.asn)
			a.Method = append(a.Method, r.method)
			a.Found = append(a.Found, r.found)
		}
		for _, v := range merged {
			if v.prefix {
				appendRow(v.row(m, 0))
			}
		}
		for _, v := range merged {
			for k := range v.ips {
				appendRow(v.row(m, boolInt(v.prefix)+k))
			}
		}
		nc.Answers[m] = a
	}
	nc.Footprints = make([][]analysis.ASFootprint, len(mappers))
	for m := range footprints {
		nc.Footprints[m] = footprints[m]
	}
	return nc, nil
}
