package snapfile

import (
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"os"
	"path/filepath"
	"testing"
)

var update = flag.Bool("update", false, "regenerate the fuzz seed corpus")

// reseal recomputes the trailing whole-file hash after a test mutates
// the bytes above it.
func reseal(b []byte) {
	sum := sha256.Sum256(b[:len(b)-32])
	copy(b[len(b)-32:], sum[:])
}

// FuzzSnapfileLoad feeds Decode arbitrary mutations of valid snapshot
// files (seed corpus under testdata/fuzz/). Two properties: Decode
// never panics whatever the bytes, and a load that succeeds always
// returns a snapshot whose recomputed Digest() equals the file's
// trailer digest — corruption can fail a load but can never smuggle
// content in under the wrong digest.
func FuzzSnapfileLoad(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "fuzz", "*.snap"))
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Fatal("no seed corpus under testdata/fuzz (regenerate with TestWriteFuzzCorpus -update)")
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(magic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		snap, info, err := Decode(data)
		if err != nil {
			if snap != nil {
				t.Fatal("Decode returned a snapshot alongside its error")
			}
			return
		}
		trailer := hex.EncodeToString(data[len(data)-64 : len(data)-32])
		if snap.Digest() != trailer {
			t.Fatalf("loaded digest %s != trailer %s", snap.Digest(), trailer)
		}
		if info.Digest != snap.Digest() {
			t.Fatalf("FileInfo digest %s != snapshot %s", info.Digest, snap.Digest())
		}
	})
}

// TestWriteFuzzCorpus regenerates the checked-in seed corpus when run
// with -update (the snapfile package reuses the geoserve golden flag
// convention). The corpus holds small but structurally complete files:
// multiple mappers, footprint gaps, an empty world.
func TestWriteFuzzCorpus(t *testing.T) {
	if !*update {
		t.Skip("run with -update to regenerate testdata/fuzz")
	}
	dir := filepath.Join("testdata", "fuzz")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	cases := map[string][]byte{}
	blob, err := Encode(makeSnapshot(t, 1, 6, 3), 1)
	if err != nil {
		t.Fatal(err)
	}
	cases["valid_small.snap"] = blob
	if blob, err = Encode(makeSnapshot(t, 2, 1, 0), 42); err != nil {
		t.Fatal(err)
	}
	cases["valid_tiny.snap"] = blob
	for name, data := range cases {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", name, len(data))
	}
}
