// Package snapfile is the versioned binary on-disk form of a geoserve
// snapshot: the unit of replication between a builder node and its
// replicas, and the cold-start path that makes geoserved startup
// O(snapshot size) instead of O(pipeline).
//
// Layout (all integers little-endian):
//
//	magic   [8]byte "geosnapf"
//	version u32     (= FormatVersion)
//	sections, each a u64 byte-length prefix followed by the payload:
//	  header      epoch u64, build seed i64, scale f64, label (u32+bytes)
//	  mappers     u32 count, then per mapper u32 len + name bytes
//	  prefixes    u32 count + count u32 (/24 interval index, ascending)
//	  ips         u32 count + count u32 (exact-address index, ascending)
//	  asns        u32 count + count i32 (footprinted AS union, ascending)
//	  answers     one section per mapper: columnar slabs over
//	              len(prefixes)+len(ips) rows — lat f64, lon f64,
//	              radius f64, asn i32, method u8, found u8, each field
//	              a contiguous slab
//	  footprints  one section per mapper: 48-byte rows (asn i32,
//	              interfaces/locations/degree u32, centroid lat/lon
//	              f64, area f64, radius f64)
//	trailer [32]byte content digest (= Snapshot.Digest(), raw)
//	        [32]byte SHA-256 over every preceding byte of the file
//
// Load never trusts the file: magic and version gate first, every
// section length and count is bounds-checked against the remaining
// bytes before any allocation, geoserve.FromColumns revalidates the
// structural invariants lookups rely on, the whole-file hash must
// match, and the content digest is recomputed from the reassembled
// snapshot and compared against the trailer. Truncated, corrupt or
// version-skewed files are rejected with typed errors — never a panic,
// and never a snapshot whose Digest() differs from the trailer.
package snapfile

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"errors"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"geonet/internal/analysis"
	"geonet/internal/geoserve"
)

// FormatVersion is the snapshot file format this package writes and
// the only one it loads.
const FormatVersion = 1

// magic identifies a snapshot file; it never changes across versions.
const magic = "geosnapf"

// Typed load failures; errors.Is distinguishes them.
var (
	// ErrMagic: the file is not a snapshot file at all.
	ErrMagic = errors.New("snapfile: bad magic")
	// ErrVersion: a snapshot file, but a format version this build
	// does not speak.
	ErrVersion = errors.New("snapfile: unsupported format version")
	// ErrTruncated: the file ends before its declared content does.
	ErrTruncated = errors.New("snapfile: truncated file")
	// ErrFormat: a section is malformed (bad count, misordered index,
	// out-of-range code, trailing garbage).
	ErrFormat = errors.New("snapfile: malformed file")
	// ErrCorrupt: the bytes parse but fail a checksum — the file hash
	// or the content digest does not match the reassembled snapshot.
	ErrCorrupt = errors.New("snapfile: corrupt file")
)

// FileInfo reports a loaded file's identity.
type FileInfo struct {
	FormatVersion uint32
	// Epoch is the replication epoch the builder stamped at write time.
	Epoch uint64
	Build geoserve.BuildInfo
	// Digest is the content digest (hex), equal to the loaded
	// snapshot's Digest().
	Digest string
	// SizeBytes is the full encoded size.
	SizeBytes int64
}

const (
	answerRowBytes    = 8 + 8 + 8 + 4 + 1 + 1
	footprintRowBytes = 4 + 4 + 4 + 4 + 8 + 8 + 8 + 8
	trailerBytes      = 32 + 32
)

// Encode serialises the snapshot at the given replication epoch.
func Encode(snap *geoserve.Snapshot, epoch uint64) ([]byte, error) {
	c := snap.Columns()
	buf := make([]byte, 0, encodedSize(c))
	buf = append(buf, magic...)
	buf = binary.LittleEndian.AppendUint32(buf, FormatVersion)

	buf = appendSection(buf, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint64(b, epoch)
		b = binary.LittleEndian.AppendUint64(b, uint64(c.Build.Seed))
		b = appendF64(b, c.Build.Scale)
		b = appendString(b, c.Build.Label)
		return b
	})
	buf = appendSection(buf, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(c.Mappers)))
		for _, name := range c.Mappers {
			b = appendString(b, name)
		}
		return b
	})
	buf = appendSection(buf, func(b []byte) []byte { return appendU32s(b, c.Prefixes) })
	buf = appendSection(buf, func(b []byte) []byte { return appendU32s(b, c.IPs) })
	buf = appendSection(buf, func(b []byte) []byte {
		b = binary.LittleEndian.AppendUint32(b, uint32(len(c.ASNs)))
		for _, v := range c.ASNs {
			b = binary.LittleEndian.AppendUint32(b, uint32(v))
		}
		return b
	})
	for m := range c.Answers {
		a := &c.Answers[m]
		buf = appendSection(buf, func(b []byte) []byte {
			for _, v := range a.Lat {
				b = appendF64(b, v)
			}
			for _, v := range a.Lon {
				b = appendF64(b, v)
			}
			for _, v := range a.Radius {
				b = appendF64(b, v)
			}
			for _, v := range a.ASN {
				b = binary.LittleEndian.AppendUint32(b, uint32(v))
			}
			b = append(b, a.Method...)
			b = append(b, a.Found...)
			return b
		})
	}
	for m := range c.Footprints {
		fps := c.Footprints[m]
		buf = appendSection(buf, func(b []byte) []byte {
			for i := range fps {
				fp := &fps[i]
				b = binary.LittleEndian.AppendUint32(b, uint32(fp.ASN))
				b = binary.LittleEndian.AppendUint32(b, uint32(fp.Interfaces))
				b = binary.LittleEndian.AppendUint32(b, uint32(fp.Locations))
				b = binary.LittleEndian.AppendUint32(b, uint32(fp.Degree))
				b = appendF64(b, fp.Centroid.Lat)
				b = appendF64(b, fp.Centroid.Lon)
				b = appendF64(b, fp.AreaSqMi)
				b = appendF64(b, fp.RadiusMi)
			}
			return b
		})
	}

	digest, err := hex.DecodeString(snap.Digest())
	if err != nil || len(digest) != 32 {
		return nil, fmt.Errorf("snapfile: snapshot digest %q is not a sha256", snap.Digest())
	}
	buf = append(buf, digest...)
	sum := sha256.Sum256(buf)
	buf = append(buf, sum[:]...)
	return buf, nil
}

// Write serialises the snapshot to w, returning the byte count.
func Write(w io.Writer, snap *geoserve.Snapshot, epoch uint64) (int64, error) {
	buf, err := Encode(snap, epoch)
	if err != nil {
		return 0, err
	}
	n, err := w.Write(buf)
	return int64(n), err
}

// WriteFile writes the snapshot to path atomically: the bytes land in
// a temporary file in the same directory and rename into place, so a
// concurrent Load sees either the old complete file or the new one,
// never a half-written hybrid.
func WriteFile(path string, snap *geoserve.Snapshot, epoch uint64) error {
	buf, err := Encode(snap, epoch)
	if err != nil {
		return err
	}
	dir, base := filepath.Split(path)
	tmp, err := os.CreateTemp(dir, "."+base+".tmp*")
	if err != nil {
		return err
	}
	defer os.Remove(tmp.Name())
	if _, err := tmp.Write(buf); err != nil {
		tmp.Close()
		return err
	}
	if err := tmp.Close(); err != nil {
		return err
	}
	return os.Rename(tmp.Name(), path)
}

// Load reads, validates and reassembles a snapshot file. On linux the
// file is mmapped for the single decoding pass (heap-copy fallback
// elsewhere); either way the returned snapshot owns all its memory.
func Load(path string) (*geoserve.Snapshot, FileInfo, error) {
	data, done, err := readSnapFile(path)
	if err != nil {
		return nil, FileInfo{}, err
	}
	defer done()
	return Decode(data)
}

// readSnapFileHeap is the portable read path (and the mmap fallback).
func readSnapFileHeap(path string) ([]byte, func(), error) {
	data, err := os.ReadFile(path)
	if err != nil {
		return nil, nil, err
	}
	return data, func() {}, nil
}

// Decode validates and reassembles an encoded snapshot.
func Decode(data []byte) (*geoserve.Snapshot, FileInfo, error) {
	info := FileInfo{SizeBytes: int64(len(data))}
	if len(data) < len(magic)+4 || string(data[:len(magic)]) != magic {
		return nil, info, fmt.Errorf("%w (not a snapshot file)", ErrMagic)
	}
	info.FormatVersion = binary.LittleEndian.Uint32(data[len(magic):])
	if info.FormatVersion != FormatVersion {
		return nil, info, fmt.Errorf("%w %d (this build speaks %d)", ErrVersion, info.FormatVersion, FormatVersion)
	}
	if len(data) < len(magic)+4+trailerBytes {
		return nil, info, fmt.Errorf("%w: %d bytes is shorter than the minimal file", ErrTruncated, len(data))
	}
	body := data[len(magic)+4 : len(data)-trailerBytes]
	d := &decoder{data: body}

	c := &geoserve.Columns{}
	header, err := d.section("header")
	if err != nil {
		return nil, info, err
	}
	if info.Epoch, err = header.u64("epoch"); err != nil {
		return nil, info, err
	}
	seed, err := header.u64("build seed")
	if err != nil {
		return nil, info, err
	}
	c.Build.Seed = int64(seed)
	if c.Build.Scale, err = header.f64("build scale"); err != nil {
		return nil, info, err
	}
	if c.Build.Label, err = header.str("build label"); err != nil {
		return nil, info, err
	}
	if err := header.done("header"); err != nil {
		return nil, info, err
	}
	info.Build = c.Build

	mappers, err := d.section("mappers")
	if err != nil {
		return nil, info, err
	}
	nMappers, err := mappers.u32("mapper count")
	if err != nil {
		return nil, info, err
	}
	// Each mapper name costs at least its 4-byte length prefix, so the
	// count is bounded by the section payload before anything allocates.
	if uint64(nMappers)*4 > uint64(mappers.remaining()) {
		return nil, info, fmt.Errorf("%w: mapper count %d exceeds section size", ErrFormat, nMappers)
	}
	for i := 0; i < int(nMappers); i++ {
		name, err := mappers.str("mapper name")
		if err != nil {
			return nil, info, err
		}
		c.Mappers = append(c.Mappers, name)
	}
	if err := mappers.done("mappers"); err != nil {
		return nil, info, err
	}

	if c.Prefixes, err = d.u32Section("prefixes"); err != nil {
		return nil, info, err
	}
	if c.IPs, err = d.u32Section("ips"); err != nil {
		return nil, info, err
	}
	asnsRaw, err := d.u32Section("asns")
	if err != nil {
		return nil, info, err
	}
	c.ASNs = make([]int32, len(asnsRaw))
	for i, v := range asnsRaw {
		c.ASNs[i] = int32(v)
	}

	rows := len(c.Prefixes) + len(c.IPs)
	for m := 0; m < len(c.Mappers); m++ {
		sec, err := d.section("answers")
		if err != nil {
			return nil, info, err
		}
		if sec.remaining() != rows*answerRowBytes {
			return nil, info, fmt.Errorf("%w: answers section for mapper %d is %d bytes, want %d rows × %d",
				ErrFormat, m, sec.remaining(), rows, answerRowBytes)
		}
		a := geoserve.AnswerColumns{
			Lat:    sec.f64s(rows),
			Lon:    sec.f64s(rows),
			Radius: sec.f64s(rows),
			ASN:    sec.i32s(rows),
			Method: sec.bytes(rows),
			Found:  sec.bytes(rows),
		}
		c.Answers = append(c.Answers, a)
	}
	for m := 0; m < len(c.Mappers); m++ {
		sec, err := d.section("footprints")
		if err != nil {
			return nil, info, err
		}
		n := len(c.ASNs)
		if sec.remaining() != n*footprintRowBytes {
			return nil, info, fmt.Errorf("%w: footprint section for mapper %d is %d bytes, want %d rows × %d",
				ErrFormat, m, sec.remaining(), n, footprintRowBytes)
		}
		fps := make([]analysis.ASFootprint, n)
		for i := range fps {
			fp := &fps[i]
			fp.ASN = int(int32(sec.rawU32()))
			fp.Interfaces = int(sec.rawU32())
			fp.Locations = int(sec.rawU32())
			fp.Degree = int(sec.rawU32())
			fp.Centroid.Lat = sec.rawF64()
			fp.Centroid.Lon = sec.rawF64()
			fp.AreaSqMi = sec.rawF64()
			fp.RadiusMi = sec.rawF64()
		}
		c.Footprints = append(c.Footprints, fps)
	}
	if d.remaining() != 0 {
		return nil, info, fmt.Errorf("%w: %d trailing bytes after the last section", ErrFormat, d.remaining())
	}

	// Whole-file integrity: the final 32 bytes hash everything before
	// them, covering the header fields the content digest excludes.
	sum := sha256.Sum256(data[:len(data)-32])
	if string(sum[:]) != string(data[len(data)-32:]) {
		return nil, info, fmt.Errorf("%w: file hash mismatch", ErrCorrupt)
	}

	snap, err := geoserve.FromColumns(c)
	if err != nil {
		return nil, info, fmt.Errorf("%w: %v", ErrFormat, err)
	}
	// The content digest is recomputed from the reassembled snapshot;
	// the trailer must agree, so a loaded snapshot can never carry a
	// digest its content does not hash to.
	wantDigest := hex.EncodeToString(data[len(data)-trailerBytes : len(data)-32])
	if snap.Digest() != wantDigest {
		return nil, info, fmt.Errorf("%w: content digest %s does not match trailer %s",
			ErrCorrupt, snap.Digest(), wantDigest)
	}
	info.Digest = snap.Digest()
	return snap, info, nil
}

func encodedSize(c *geoserve.Columns) int {
	n := len(magic) + 4
	n += 8 + 8 + 8 + 8 + 4 + len(c.Build.Label) // header
	n += 8 + 4                                  // mappers
	for _, name := range c.Mappers {
		n += 4 + len(name)
	}
	n += 8 + 4 + 4*len(c.Prefixes)
	n += 8 + 4 + 4*len(c.IPs)
	n += 8 + 4 + 4*len(c.ASNs)
	rows := len(c.Prefixes) + len(c.IPs)
	n += len(c.Mappers) * (8 + rows*answerRowBytes)
	n += len(c.Mappers) * (8 + len(c.ASNs)*footprintRowBytes)
	return n + trailerBytes
}

// appendSection emits a u64 length prefix followed by fill's payload,
// patching the length afterwards so payloads build in one pass.
func appendSection(buf []byte, fill func([]byte) []byte) []byte {
	at := len(buf)
	buf = append(buf, 0, 0, 0, 0, 0, 0, 0, 0)
	buf = fill(buf)
	binary.LittleEndian.PutUint64(buf[at:], uint64(len(buf)-at-8))
	return buf
}

func appendF64(b []byte, v float64) []byte {
	return binary.LittleEndian.AppendUint64(b, math.Float64bits(v))
}

func appendString(b []byte, s string) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(s)))
	return append(b, s...)
}

func appendU32s(b []byte, xs []uint32) []byte {
	b = binary.LittleEndian.AppendUint32(b, uint32(len(xs)))
	for _, v := range xs {
		b = binary.LittleEndian.AppendUint32(b, v)
	}
	return b
}
