package snapfile

import (
	"bytes"
	"errors"
	"os"
	"path/filepath"
	"sort"
	"testing"

	"geonet/internal/analysis"
	"geonet/internal/geo"
	"geonet/internal/geoserve"
	"geonet/internal/rng"
)

// buildWorld assembles a snapshot whose per-/24 content is a pure
// function of (seed, key, salts[key]): two epochs built with mostly
// the same salts share most intervals byte-for-byte, which is exactly
// the shape delta epochs exploit. Each /24 carries a prefix row and
// two exact addresses.
func buildWorld(tb testing.TB, seed int64, keys []uint32, salts map[uint32]int64) *geoserve.Snapshot {
	tb.Helper()
	sorted := append([]uint32(nil), keys...)
	sort.Slice(sorted, func(i, j int) bool { return sorted[i] < sorted[j] })
	c := &geoserve.Columns{
		Build:   geoserve.BuildInfo{Seed: seed, Scale: 0.5, Label: "delta-world"},
		Mappers: []string{"alpha", "beta"},
	}
	const nASNs = 8
	for i := 0; i < nASNs; i++ {
		c.ASNs = append(c.ASNs, int32(100+i))
	}
	for _, key := range sorted {
		c.Prefixes = append(c.Prefixes, key)
		c.IPs = append(c.IPs, key+1, key+2)
	}
	rows := len(c.Prefixes) + len(c.IPs)
	for m := 0; m < len(c.Mappers); m++ {
		a := geoserve.AnswerColumns{
			Lat:    make([]float64, rows),
			Lon:    make([]float64, rows),
			Radius: make([]float64, rows),
			ASN:    make([]int32, rows),
			Method: make([]uint8, rows),
			Found:  make([]uint8, rows),
		}
		fill := func(row int, r *rng.Stream) {
			a.ASN[row] = c.ASNs[r.Intn(nASNs)]
			if r.Bool(0.8) {
				a.Found[row] = 1
				a.Method[row] = uint8(1 + r.Intn(4))
				a.Lat[row] = r.Float64()*180 - 90
				a.Lon[row] = r.Float64()*360 - 180
				a.Radius[row] = r.Float64() * 500
			} else {
				a.ASN[row] = 0
			}
		}
		for i, key := range sorted {
			r := rng.New(seed + int64(m)*7919 + int64(key)*31 + salts[key])
			fill(i, r)
			fill(len(sorted)+2*i, r)
			fill(len(sorted)+2*i+1, r)
		}
		c.Answers = append(c.Answers, a)
		fps := make([]analysis.ASFootprint, nASNs)
		fr := rng.New(seed + int64(m))
		for i := range fps {
			if fr.Bool(0.7) {
				fps[i] = analysis.ASFootprint{
					ASN:        int(c.ASNs[i]),
					Interfaces: 1 + fr.Intn(50),
					Locations:  1 + fr.Intn(10),
					Degree:     fr.Intn(20),
					Centroid:   geo.Pt(fr.Float64()*180-90, fr.Float64()*360-180),
					AreaSqMi:   fr.Float64() * 1e6,
					RadiusMi:   fr.Float64() * 500,
				}
			}
		}
		c.Footprints = append(c.Footprints, fps)
	}
	snap, err := geoserve.FromColumns(c)
	if err != nil {
		tb.Fatalf("FromColumns: %v", err)
	}
	return snap
}

// worldKeys returns n /24 base addresses under 10.0.0.0/8.
func worldKeys(n int) []uint32 {
	keys := make([]uint32, n)
	for i := range keys {
		keys[i] = uint32(10<<24) + uint32(i)<<8
	}
	return keys
}

// churnedKeys mutates the key set and salts the way a rebuild does:
// a few intervals change content, one /24 disappears, one appears.
func churnedKeys(keys []uint32, step int64) ([]uint32, map[uint32]int64) {
	out := make([]uint32, 0, len(keys))
	for i, k := range keys {
		if int64(i)%17 == step%17 {
			continue // this /24 got deallocated this epoch
		}
		out = append(out, k)
	}
	fresh := uint32(11<<24) + uint32(step)<<8
	out = append(out, fresh)
	salts := map[uint32]int64{fresh: 0}
	for i, k := range keys {
		if int64(i)%5 == step%5 {
			salts[k] = 1000 + step // answers moved at prefix granularity
		}
	}
	return out, salts
}

func TestDiffApplyRoundTrip(t *testing.T) {
	keys := worldKeys(40)
	old := buildWorld(t, 1, keys, nil)
	newKeys, salts := churnedKeys(keys, 1)
	new := buildWorld(t, 1, newKeys, salts)
	if old.Digest() == new.Digest() {
		t.Fatal("test is vacuous: churn produced identical snapshots")
	}

	delta, err := Diff(old, new, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	full, err := Encode(new, 2)
	if err != nil {
		t.Fatal(err)
	}
	if len(delta) >= len(full) {
		t.Fatalf("delta (%d bytes) not smaller than the full snapshot (%d bytes)", len(delta), len(full))
	}

	applied, info, err := Apply(old, delta)
	if err != nil {
		t.Fatal(err)
	}
	if applied.Digest() != new.Digest() {
		t.Fatalf("applied digest %s != target %s", applied.Digest(), new.Digest())
	}
	if info.FromEpoch != 1 || info.ToEpoch != 2 ||
		info.FromDigest != old.Digest() || info.ToDigest != new.Digest() {
		t.Fatalf("delta info %+v", info)
	}
	if info.Build != new.Build() {
		t.Fatalf("delta build info %+v != %+v", info.Build, new.Build())
	}
	if info.Ops == 0 || info.Ops >= len(keys) {
		t.Fatalf("delta carries %d ops for a partial churn over %d intervals", info.Ops, len(keys))
	}
	// The applied snapshot re-encodes byte-identically to a full
	// download of the target epoch — delta sync and full sync are
	// interchangeable at the file level, not just digest-equal.
	reenc, err := Encode(applied, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(reenc, full) {
		t.Fatal("applied snapshot re-encodes differently from the full target file")
	}
}

func TestDiffIdenticalSnapshotsIsEmpty(t *testing.T) {
	snap := buildWorld(t, 2, worldKeys(12), nil)
	delta, err := Diff(snap, snap, 3, 4)
	if err != nil {
		t.Fatal(err)
	}
	applied, info, err := Apply(snap, delta)
	if err != nil {
		t.Fatal(err)
	}
	if info.Ops != 0 {
		t.Fatalf("identical snapshots produced %d ops", info.Ops)
	}
	if applied.Digest() != snap.Digest() {
		t.Fatal("identity delta changed the digest")
	}
}

func TestDiffDeterministic(t *testing.T) {
	keys := worldKeys(20)
	old := buildWorld(t, 3, keys, nil)
	newKeys, salts := churnedKeys(keys, 2)
	new := buildWorld(t, 3, newKeys, salts)
	a, err := Diff(old, new, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	b, err := Diff(old, new, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	if !bytes.Equal(a, b) {
		t.Fatal("two diffs of the same snapshots differ")
	}
}

func TestDiffRejectsMapperMismatch(t *testing.T) {
	snap := buildWorld(t, 4, worldKeys(8), nil)
	other := makeSnapshot(t, 4, 8, 4)
	c := other.Columns()
	c.Mappers = []string{"alpha", "gamma"}
	renamed, err := geoserve.FromColumns(c)
	if err != nil {
		t.Fatal(err)
	}
	if _, err := Diff(snap, renamed, 1, 2); err == nil {
		t.Fatal("diff across mapper sets succeeded")
	}
}

func TestApplyRejectsDamage(t *testing.T) {
	keys := worldKeys(16)
	old := buildWorld(t, 5, keys, nil)
	newKeys, salts := churnedKeys(keys, 3)
	new := buildWorld(t, 5, newKeys, salts)
	delta, err := Diff(old, new, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	damage := []struct {
		name string
		mut  func([]byte) []byte
		want error
	}{
		{"empty", func(b []byte) []byte { return nil }, ErrMagic},
		{"full-snapshot magic", func(b []byte) []byte { copy(b, magic); return b }, ErrMagic},
		{"version skew", func(b []byte) []byte { b[8] = 99; return b }, ErrVersion},
		{"cut mid-section", func(b []byte) []byte { return b[:len(b)/2] }, ErrTruncated},
		{"cut trailer", func(b []byte) []byte { return b[:len(b)-70] }, ErrTruncated},
		{"bit flip in body", func(b []byte) []byte { b[len(b)/2] ^= 0x10; return b }, ErrCorrupt},
		{"bit flip in to-digest", func(b []byte) []byte { b[len(b)-40] ^= 0x01; return b }, ErrCorrupt},
		{"bit flip in file hash", func(b []byte) []byte { b[len(b)-1] ^= 0x01; return b }, ErrCorrupt},
	}
	for _, tc := range damage {
		t.Run(tc.name, func(t *testing.T) {
			mutated := tc.mut(append([]byte(nil), delta...))
			s, _, err := Apply(old, mutated)
			if err == nil {
				t.Fatal("damaged delta applied cleanly")
			}
			if s != nil {
				t.Fatal("damaged apply returned a snapshot alongside its error")
			}
			if !errors.Is(err, tc.want) {
				t.Fatalf("error %v, want %v", err, tc.want)
			}
		})
	}
}

func TestApplyRejectsWrongBase(t *testing.T) {
	keys := worldKeys(16)
	old := buildWorld(t, 6, keys, nil)
	newKeys, salts := churnedKeys(keys, 4)
	new := buildWorld(t, 6, newKeys, salts)
	delta, err := Diff(old, new, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	stranger := buildWorld(t, 7, keys, nil)
	if _, _, err := Apply(stranger, delta); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("wrong-base apply: err %v, want ErrDeltaBase", err)
	}
	if _, _, err := Apply(nil, delta); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("nil-base apply: err %v, want ErrDeltaBase", err)
	}
	// Applying the delta to its own output must also fail the base
	// check (from-digest names old, not new).
	if _, _, err := Apply(new, delta); !errors.Is(err, ErrDeltaBase) {
		t.Fatalf("re-apply: err %v, want ErrDeltaBase", err)
	}
}

// TestApplyRejectsForgedToDigest rewrites the to-digest and re-seals
// the file hash: the recomputed content digest of the applied result
// must still catch the forgery.
func TestApplyRejectsForgedToDigest(t *testing.T) {
	keys := worldKeys(16)
	old := buildWorld(t, 8, keys, nil)
	newKeys, salts := churnedKeys(keys, 5)
	new := buildWorld(t, 8, newKeys, salts)
	delta, err := Diff(old, new, 1, 2)
	if err != nil {
		t.Fatal(err)
	}
	forged := append([]byte(nil), delta...)
	forged[len(forged)-40] ^= 0x01
	reseal(forged)
	if _, _, err := Apply(old, forged); !errors.Is(err, ErrCorrupt) {
		t.Fatalf("forged to-digest applied with err %v, want ErrCorrupt", err)
	}
}

// TestLoadMmapMatchesHeap pins that the (linux) mmap-backed Load and a
// plain heap decode of the same file yield snapshots with identical
// content digests. On other platforms Load is the heap path and the
// comparison is trivially exact.
func TestLoadMmapMatchesHeap(t *testing.T) {
	path := filepath.Join(t.TempDir(), "world.snap")
	snap := makeSnapshot(t, 9, 30, 8)
	if err := WriteFile(path, snap, 2); err != nil {
		t.Fatal(err)
	}
	mapped, mInfo, err := Load(path)
	if err != nil {
		t.Fatal(err)
	}
	raw, err := os.ReadFile(path)
	if err != nil {
		t.Fatal(err)
	}
	heap, hInfo, err := Decode(raw)
	if err != nil {
		t.Fatal(err)
	}
	if mapped.Digest() != heap.Digest() || mapped.Digest() != snap.Digest() {
		t.Fatalf("mmap digest %s, heap digest %s, source %s", mapped.Digest(), heap.Digest(), snap.Digest())
	}
	if mInfo != hInfo {
		t.Fatalf("file info diverges: mmap %+v heap %+v", mInfo, hInfo)
	}
	// The mapping is released after Decode; the snapshot must own all
	// its memory. Exercise lookups after the load to catch a retained
	// reference into an unmapped region.
	for _, ip := range []uint32{snap.ExactIPs()[0], snap.Prefixes()[3] + 77, 0xF0000001} {
		if got, want := mapped.Lookup(0, ip), snap.Lookup(0, ip); got != want {
			t.Fatalf("ip %d: mmap-loaded answer %+v != %+v", ip, got, want)
		}
	}
}

func BenchmarkSnapfileDiffApply(b *testing.B) {
	keys := worldKeys(2000)
	old := buildWorld(b, 1, keys, nil)
	newKeys, salts := churnedKeys(keys, 1)
	new := buildWorld(b, 1, newKeys, salts)
	delta, err := Diff(old, new, 1, 2)
	if err != nil {
		b.Fatal(err)
	}
	b.Logf("delta %d bytes vs full %d", len(delta), mustLen(b, new))
	b.SetBytes(int64(len(delta)))
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		fresh, err := Diff(old, new, 1, 2)
		if err != nil {
			b.Fatal(err)
		}
		if _, _, err := Apply(old, fresh); err != nil {
			b.Fatal(err)
		}
	}
}

func mustLen(b *testing.B, snap *geoserve.Snapshot) int {
	blob, err := Encode(snap, 2)
	if err != nil {
		b.Fatal(err)
	}
	return len(blob)
}
