package snapfile

import (
	"encoding/binary"
	"fmt"
	"math"
)

// decoder walks an encoded byte slice with bounds-checked reads; every
// overrun surfaces as ErrTruncated (the declared content ends past the
// actual bytes) and every inconsistent count as ErrFormat.
type decoder struct {
	data []byte
	off  int
}

func (d *decoder) remaining() int { return len(d.data) - d.off }

func (d *decoder) take(n int, what string) ([]byte, error) {
	if n < 0 || n > d.remaining() {
		return nil, fmt.Errorf("%w: %s needs %d bytes, %d left", ErrTruncated, what, n, d.remaining())
	}
	b := d.data[d.off : d.off+n]
	d.off += n
	return b, nil
}

// section consumes a u64 length prefix and returns a sub-decoder over
// exactly that payload.
func (d *decoder) section(what string) (*decoder, error) {
	b, err := d.take(8, what+" section length")
	if err != nil {
		return nil, err
	}
	n := binary.LittleEndian.Uint64(b)
	if n > uint64(d.remaining()) {
		return nil, fmt.Errorf("%w: %s section declares %d bytes, %d left", ErrTruncated, what, n, d.remaining())
	}
	payload, _ := d.take(int(n), what+" section")
	return &decoder{data: payload}, nil
}

// done rejects unconsumed payload at the end of a section.
func (d *decoder) done(what string) error {
	if d.remaining() != 0 {
		return fmt.Errorf("%w: %d trailing bytes in %s section", ErrFormat, d.remaining(), what)
	}
	return nil
}

func (d *decoder) u32(what string) (uint32, error) {
	b, err := d.take(4, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint32(b), nil
}

func (d *decoder) u64(what string) (uint64, error) {
	b, err := d.take(8, what)
	if err != nil {
		return 0, err
	}
	return binary.LittleEndian.Uint64(b), nil
}

func (d *decoder) f64(what string) (float64, error) {
	v, err := d.u64(what)
	return math.Float64frombits(v), err
}

func (d *decoder) str(what string) (string, error) {
	n, err := d.u32(what + " length")
	if err != nil {
		return "", err
	}
	b, err := d.take(int(n), what)
	if err != nil {
		return "", err
	}
	return string(b), nil
}

// u32Section consumes a whole section holding a u32 count followed by
// exactly count little-endian u32s.
func (d *decoder) u32Section(what string) ([]uint32, error) {
	sec, err := d.section(what)
	if err != nil {
		return nil, err
	}
	n, err := sec.u32(what + " count")
	if err != nil {
		return nil, err
	}
	if int(n)*4 != sec.remaining() {
		return nil, fmt.Errorf("%w: %s count %d does not match %d payload bytes", ErrFormat, what, n, sec.remaining())
	}
	out := make([]uint32, n)
	for i := range out {
		out[i] = sec.rawU32()
	}
	return out, nil
}

// The raw readers skip per-read error checks; callers use them only
// after verifying the section holds exactly the bytes they will
// consume.

func (d *decoder) rawU32() uint32 {
	v := binary.LittleEndian.Uint32(d.data[d.off:])
	d.off += 4
	return v
}

func (d *decoder) rawF64() float64 {
	v := binary.LittleEndian.Uint64(d.data[d.off:])
	d.off += 8
	return math.Float64frombits(v)
}

func (d *decoder) f64s(n int) []float64 {
	out := make([]float64, n)
	for i := range out {
		out[i] = d.rawF64()
	}
	return out
}

func (d *decoder) i32s(n int) []int32 {
	out := make([]int32, n)
	for i := range out {
		out[i] = int32(d.rawU32())
	}
	return out
}

func (d *decoder) bytes(n int) []byte {
	b := d.data[d.off : d.off+n]
	d.off += n
	return append([]byte(nil), b...)
}
