package geoserve_test

// Differential property test: snapshot compilation can never drift
// from the mappers it caches. For rng-driven random addresses of every
// kind — exact interface hits, generic hosts inside allocated /24s,
// and unallocated misses — the compiled snapshot's answers must agree
// with a live geoloc.MethodMapper.LocateMethod resolution, under both
// mappers, including AS attribution against the serving BGP epoch.

import (
	"testing"

	"geonet/internal/geoloc"
	"geonet/internal/geoserve"
	"geonet/internal/rng"
)

func TestSnapshotMatchesMappersRandom(t *testing.T) {
	p, snap := fixture(t)
	mappers := []geoloc.MethodMapper{p.IxMapper, p.EdgeScape}
	ips := snap.ExactIPs()
	prefixes := snap.Prefixes()
	root := rng.New(41)

	check := func(t *testing.T, mi int, ip uint32, wantExact bool) {
		t.Helper()
		m := mappers[mi]
		a := snap.Lookup(mi, ip)
		if a.Exact != wantExact {
			t.Fatalf("%s: ip %s exact=%v, want %v", m.Name(), geoserve.FormatIPv4(ip), a.Exact, wantExact)
		}
		loc, method, found := m.LocateMethod(ip)
		if a.Found != found || a.Method != method || (found && a.Loc != loc) {
			t.Fatalf("%s: snapshot %+v != live (%v, %q, %v) for ip %s",
				m.Name(), a, loc, method, found, geoserve.FormatIPv4(ip))
		}
		wantASN, _ := p.SkitterTable.OriginAS(ip)
		if a.ASN != wantASN {
			t.Fatalf("%s: snapshot ASN %d != table %d for ip %s", m.Name(), a.ASN, wantASN, geoserve.FormatIPv4(ip))
		}
	}

	t.Run("hits", func(t *testing.T) {
		s := root.Split("hits")
		for i := 0; i < 500; i++ {
			ip := ips[s.Intn(len(ips))]
			check(t, i%2, ip, true)
		}
	})

	t.Run("generics", func(t *testing.T) {
		// Random offsets in random allocated /24s; known interfaces are
		// exact hits, anything else must serve (and live-match) the
		// prefix-level generic-host answer.
		s := root.Split("generics")
		checked := 0
		for i := 0; checked < 500 && i < 5000; i++ {
			ip := prefixes[s.Intn(len(prefixes))] + uint32(s.Intn(256))
			if _, taken := p.Internet.ByIP[ip]; taken {
				continue
			}
			check(t, i%2, ip, false)
			checked++
		}
		if checked < 100 {
			t.Fatalf("only %d generic addresses drawn", checked)
		}
	})

	t.Run("misses", func(t *testing.T) {
		// Unallocated space: class E plus addresses below the first
		// allocated /24. The snapshot must answer a bare miss and the
		// live mappers must agree the address is unmappable.
		s := root.Split("misses")
		for i := 0; i < 300; i++ {
			ip := 0xF0000000 | uint32(s.Intn(1<<24))
			if i%3 == 0 && prefixes[0] > 1 {
				ip = uint32(s.Intn(int(prefixes[0])))
			}
			if inAllocated(prefixes, ip) {
				continue
			}
			for mi := range mappers {
				a := snap.Lookup(mi, ip)
				if a.Found || a.Exact || a.Method != "" || a.ASN != 0 || a.RadiusMi != 0 {
					t.Fatalf("unallocated %s answered %+v", geoserve.FormatIPv4(ip), a)
				}
				if _, _, found := mappers[mi].LocateMethod(ip); found {
					t.Fatalf("%s: live mapper places unallocated %s but snapshot misses",
						mappers[mi].Name(), geoserve.FormatIPv4(ip))
				}
			}
		}
	})
}

// inAllocated reports whether ip's /24 is in the sorted allocated
// prefix index.
func inAllocated(prefixes []uint32, ip uint32) bool {
	base := ip &^ 0xff
	lo, hi := 0, len(prefixes)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if prefixes[mid] < base {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	return lo < len(prefixes) && prefixes[lo] == base
}
