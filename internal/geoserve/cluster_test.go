package geoserve_test

// Fixture-scale cluster tests: zero-alloc single lookups through the
// coordinator, and the chaos test racing scatter-gather batches
// against repeated shard-by-shard hot-swaps (run under -race in CI).

import (
	"sync"
	"sync/atomic"
	"testing"

	"geonet/internal/analysis"
	"geonet/internal/geoserve"
)

func newTestCluster(tb testing.TB, shards int) *geoserve.Cluster {
	tb.Helper()
	_, snap := fixture(tb)
	c, err := geoserve.NewCluster(snap, geoserve.ClusterConfig{Shards: shards})
	if err != nil {
		tb.Fatal(err)
	}
	return c
}

// TestClusterLookupZeroAllocs pins the acceptance criterion that
// sharding keeps the single-lookup path allocation-free: routing,
// shard data load, lookup and per-shard metrics all run without heap
// traffic, like the unsharded engine.
func TestClusterLookupZeroAllocs(t *testing.T) {
	p, _ := fixture(t)
	c := newTestCluster(t, 8)
	ips := publicIfaceIPs(p)
	hit := ips[len(ips)/2]
	if n := testing.AllocsPerRun(1000, func() { c.Lookup(0, hit) }); n != 0 {
		t.Errorf("cluster hit path allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Lookup(1, 0xF0000001) }); n != 0 {
		t.Errorf("cluster miss path allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { c.Locate("edgescape", hit) }); n != 0 {
		t.Errorf("cluster named lookup allocates %v per op, want 0", n)
	}
}

// reversedSnapshot compiles the fixture pipeline with the mapper order
// reversed: same world, same answers per mapper name, but a distinct
// digest and distinct answers per mapper *index* — so the chaos test
// can tell the two epochs apart and a blended answer set can't hide.
func reversedSnapshot(tb testing.TB) *geoserve.Snapshot {
	tb.Helper()
	p, _ := fixture(tb)
	snap, err := geoserve.Compile(geoserve.Source{
		Internet: p.Internet,
		Table:    p.SkitterTable,
		Mappers: []geoserve.NamedMapper{
			{
				Mapper:     p.EdgeScape,
				Footprints: analysis.Footprints(p.Dataset("skitter", "edgescape").ASAggregate()),
			},
			{
				Mapper:     p.IxMapper,
				Footprints: analysis.Footprints(p.Dataset("skitter", "ixmapper").ASAggregate()),
			},
		},
		Build: geoserve.BuildInfo{Seed: p.Config.Seed, Scale: p.Config.Scale, Label: "reversed"},
	})
	if err != nil {
		tb.Fatal(err)
	}
	return snap
}

// TestClusterChaosBatchDuringSwaps is the mixed-epoch chaos test:
// reader goroutines scatter-gather batches (every batch spanning all
// shards) while the main goroutine hot-swaps the cluster shard by
// shard between two distinguishable snapshots, under -race in CI.
// Every batch's reported digest must be one of the two live epochs,
// and every answer in the batch must equal that epoch's snapshot
// answer — a blend of epochs inside one answer set fails.
func TestClusterChaosBatchDuringSwaps(t *testing.T) {
	_, snapA := fixture(t)
	snapB := reversedSnapshot(t)
	if snapA.Digest() == snapB.Digest() {
		t.Fatal("epochs are not distinguishable")
	}
	byDigest := map[string]*geoserve.Snapshot{
		snapA.Digest(): snapA,
		snapB.Digest(): snapB,
	}

	c, err := geoserve.NewCluster(snapA, geoserve.ClusterConfig{Shards: 8})
	if err != nil {
		t.Fatal(err)
	}

	// Batches sampled across the whole index so every batch fans out
	// over every shard.
	sweep := invarianceProbes(snapA)
	batch := make([]uint32, 64)
	for i := range batch {
		batch[i] = sweep[i*len(sweep)/len(batch)]
	}

	stop := make(chan struct{})
	var (
		wg      sync.WaitGroup
		batches atomic.Uint64
	)
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(mapper int) {
			defer wg.Done()
			out := make([]geoserve.Answer, len(batch))
			for {
				select {
				case <-stop:
					return
				default:
				}
				digest, err := c.LookupBatch(mapper, batch, out)
				if err != nil {
					t.Errorf("batch failed: %v", err)
					return
				}
				epoch, ok := byDigest[digest]
				if !ok {
					t.Errorf("batch served unknown epoch %s", digest)
					return
				}
				for i, ip := range batch {
					if want := epoch.Lookup(mapper, ip); out[i] != want {
						t.Errorf("mixed-epoch answer set: batch[%d] = %+v, epoch %s says %+v",
							i, out[i], digest[:12], want)
						return
					}
				}
				batches.Add(1)
			}
		}(g % 2)
	}
	// Keep swapping until the readers have verified a few hundred
	// batches against live swaps (bounded so a wedged reader can't
	// spin forever).
	swaps := 0
	for ; swaps < 100 || (batches.Load() < 200 && swaps < 100000); swaps++ {
		next := snapB
		if swaps%2 == 0 {
			next = snapA
		}
		if _, err := c.Swap(next); err != nil {
			t.Fatal(err)
		}
	}
	close(stop)
	wg.Wait()
	if got := c.Status().Snapshot.Swaps; got != uint64(swaps) {
		t.Fatalf("swaps = %d, want %d", got, swaps)
	}
	if batches.Load() == 0 {
		t.Fatal("no batches verified")
	}
}

// TestClusterSwapTopologyChange swaps between snapshots whose prefix
// universes differ (the fixture vs a synthetic-free world is overkill;
// reversed-mapper keeps the same universe, so this swaps to a snapshot
// compiled from the same world and back while reading — exercising the
// swap path end to end at fixture scale) and verifies post-swap
// answers match the new snapshot everywhere.
func TestClusterSwapTopologyChange(t *testing.T) {
	_, snapA := fixture(t)
	snapB := reversedSnapshot(t)
	c, err := geoserve.NewCluster(snapA, geoserve.ClusterConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}
	if _, err := c.Swap(snapB); err != nil {
		t.Fatal(err)
	}
	if c.Snapshot() != snapB {
		t.Fatal("Swap did not publish the new snapshot")
	}
	for _, ip := range invarianceProbes(snapB)[:2000] {
		if got, want := c.Lookup(0, ip), snapB.Lookup(0, ip); got != want {
			t.Fatalf("post-swap answer %+v != %+v", got, want)
		}
	}
	// The mapper name order flipped with the epoch.
	if got := c.Snapshot().Mappers()[0]; got != "edgescape" {
		t.Fatalf("post-swap first mapper %q, want edgescape", got)
	}
}
