package geoserve

import (
	"bytes"
	"errors"
	"io"
	"net/http"
	"net/http/httptest"
	"testing"

	"geonet/internal/obs"
)

// dialStreamTraced is dialStream with an X-Geo-Trace header, joining
// the stream to an existing trace.
func dialStreamTraced(t *testing.T, url string, mapper uint16, id obs.TraceID) *streamClient {
	t.Helper()
	pr, pw := io.Pipe()
	req, err := http.NewRequest("POST", url+"/v1/locate/stream",
		io.MultiReader(bytes.NewReader(AppendWireStreamHeader(nil, mapper)), pr))
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set("Content-Type", WireContentType)
	req.Header.Set(obs.TraceHeader, id.String())
	resp, err := http.DefaultClient.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	if resp.StatusCode != http.StatusOK {
		body, _ := io.ReadAll(resp.Body)
		resp.Body.Close()
		t.Fatalf("stream status %d: %s", resp.StatusCode, body)
	}
	rd, err := NewWireReader(resp.Body)
	if err != nil {
		t.Fatal(err)
	}
	return &streamClient{w: pw, rd: rd, resp: resp}
}

// TestWireStreamErrFrameCarriesTrace pins the traced error-frame
// extension: a shed chunk on a traced stream answers with an error
// frame quoting the request's trace ID, so the client can name the
// exact request in /debug/tracez. An untraced stream's error frame
// stays the classic 8-byte form (ErrTraceID zero) — byte-identical to
// earlier protocol versions.
func TestWireStreamErrFrameCarriesTrace(t *testing.T) {
	snap := syntheticSnapshot(10<<24, 9, 1, 0)
	c, err := NewCluster(snap, ClusterConfig{Shards: 2, QueueBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	srv := httptest.NewServer(newHandler(c, nil))
	defer srv.Close()
	probes := wireProbeIPs(snap)

	pin := func() {
		for _, sh := range c.shards {
			if !sh.tryAcquire() {
				t.Fatal("failed to pin shard at budget")
			}
		}
	}
	unpin := func() {
		for _, sh := range c.shards {
			sh.release()
		}
	}

	id := obs.NewTraceID()
	sc := dialStreamTraced(t, srv.URL, 0, id)
	if _, tag := sc.roundTrip(t, probes); tag != snap.wireTag() {
		t.Fatal("traced stream did not serve a healthy chunk")
	}
	pin()
	if _, err := sc.w.Write(AppendWireChunk(nil, probes)); err != nil {
		t.Fatal(err)
	}
	_, _, err = sc.rd.Next(nil)
	unpin()
	if !errors.Is(err, ErrWireOverloaded) {
		t.Fatalf("shed chunk: %v, want ErrWireOverloaded", err)
	}
	if got := sc.rd.ErrTraceID(); got != uint64(id) {
		t.Fatalf("error frame trace %016x, want %016x", got, uint64(id))
	}
	sc.resp.Body.Close()
	sc.w.Close()

	// Untraced control: same shed, classic frame, zero trace.
	sc = dialStream(t, srv.URL, 0)
	if _, tag := sc.roundTrip(t, probes); tag != snap.wireTag() {
		t.Fatal("untraced stream did not serve a healthy chunk")
	}
	pin()
	if _, err := sc.w.Write(AppendWireChunk(nil, probes)); err != nil {
		t.Fatal(err)
	}
	_, _, err = sc.rd.Next(nil)
	unpin()
	if !errors.Is(err, ErrWireOverloaded) {
		t.Fatalf("untraced shed chunk: %v, want ErrWireOverloaded", err)
	}
	if got := sc.rd.ErrTraceID(); got != 0 {
		t.Fatalf("untraced error frame carries trace %016x, want 0", got)
	}
	sc.resp.Body.Close()
	sc.w.Close()
}
