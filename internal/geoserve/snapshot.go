package geoserve

import (
	"crypto/sha256"
	"encoding/binary"
	"encoding/hex"
	"hash"
	"math"
	"sync"
	"sync/atomic"

	"geonet/internal/analysis"
	"geonet/internal/geo"
)

// method codes index methodNames; they are the compact stored form of
// geoloc's Method* strings.
type method uint8

const (
	methodNone method = iota
	methodFeed
	methodHostname
	methodLOC
	methodWhois
	numMethods
)

// methodNames must stay aligned with the method constants; Answer
// returns these static strings so the hit path allocates nothing.
var methodNames = [numMethods]string{"", "feed", "hostname", "loc", "whois"}

func methodCode(name string) (method, bool) {
	for c, n := range methodNames {
		if n == name {
			return method(c), true
		}
	}
	return methodNone, false
}

// entry is one precomputed answer (per mapper, per /24 or per exact
// address).
type entry struct {
	loc      geo.Point
	radiusMi float64
	asn      int32
	method   method
	found    bool
}

// Snapshot is the immutable compiled serving index. All state is flat
// sorted slices; nothing is mutated after Compile, so any number of
// goroutines may query it concurrently without synchronisation.
type Snapshot struct {
	build   BuildInfo
	mappers []string

	// prefixes holds the base address of every allocated /24 in
	// ascending order; prefixAns[m][i] answers a generic (non-
	// interface) address inside prefixes[i] under mapper m.
	prefixes  []uint32
	prefixAns [][]entry

	// ips holds every known interface address in ascending order;
	// ipAns[m][i] is its exact answer under mapper m.
	ips   []uint32
	ipAns [][]entry

	// asns holds the union of footprinted AS numbers in ascending
	// order; footprints[m][i] is asns[i]'s footprint under mapper m
	// (ASN == 0 marks absence under that mapper).
	asns       []int32
	footprints [][]analysis.ASFootprint

	digest string

	// wireP lazily holds the wire-serving acceleration — record slabs,
	// epoch tag and the preserialized JSON cache (see wire.go); wireMu
	// serializes its first build. Both are identity, not content:
	// computeDigest never sees them.
	wireMu sync.Mutex
	wireP  atomic.Pointer[wireState]
}

// Build reports the pipeline identity the snapshot was compiled from.
func (s *Snapshot) Build() BuildInfo { return s.build }

// Mappers lists the mapper names in index order.
func (s *Snapshot) Mappers() []string {
	out := make([]string, len(s.mappers))
	copy(out, s.mappers)
	return out
}

// MapperIndex resolves a mapper name to its Lookup index.
func (s *Snapshot) MapperIndex(name string) (int, bool) {
	for i, n := range s.mappers {
		if n == name {
			return i, true
		}
	}
	return 0, false
}

// NumPrefixes reports the number of allocated /24s in the index.
func (s *Snapshot) NumPrefixes() int { return len(s.prefixes) }

// NumExactIPs reports the number of exact per-address answers.
func (s *Snapshot) NumExactIPs() int { return len(s.ips) }

// NumFootprints reports the number of footprinted ASes (the union
// across mappers).
func (s *Snapshot) NumFootprints() int { return len(s.asns) }

// Prefixes returns a copy of the allocated /24 base addresses in
// ascending order (load generators build address mixes from it).
func (s *Snapshot) Prefixes() []uint32 {
	out := make([]uint32, len(s.prefixes))
	copy(out, s.prefixes)
	return out
}

// ExactIPs returns a copy of the exactly-answered addresses in
// ascending order.
func (s *Snapshot) ExactIPs() []uint32 {
	out := make([]uint32, len(s.ips))
	copy(out, s.ips)
	return out
}

// Digest is a SHA-256 over the snapshot's complete content (mapper
// names, interval index, every precomputed answer and footprint), in
// a fixed serialisation order. Two snapshots with equal digests serve
// byte-identical answers, the same discipline core.Digest applies to
// reports — so golden tests pin it across worker counts and across
// hot-swaps to identical rebuilds.
func (s *Snapshot) Digest() string { return s.digest }

// search32 finds v in the ascending slice xs, manually inlined binary
// search so the lookup hot path stays allocation-free.
func search32(xs []uint32, v uint32) (int, bool) {
	lo, hi := 0, len(xs)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if xs[mid] < v {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo < len(xs) && xs[lo] == v {
		return lo, true
	}
	return lo, false
}

func (e *entry) answer(ip uint32, exact bool) Answer {
	return Answer{
		IP:       ip,
		Found:    e.found,
		Exact:    exact,
		Loc:      e.loc,
		Method:   methodNames[e.method],
		ASN:      int(e.asn),
		RadiusMi: e.radiusMi,
	}
}

// Lookup answers one address under the mapper with the given index
// (see MapperIndex). It allocates nothing: known interface addresses
// return their exact precomputed answer, other addresses inside an
// allocated /24 return the prefix-level answer, and addresses outside
// the allocated space return a zero-valued miss.
func (s *Snapshot) Lookup(mapper int, ip uint32) Answer {
	a, _ := s.lookup(mapper, ip)
	return a
}

// lookup additionally returns the stored method code, so the engine's
// metrics path never round-trips it through the method-name string.
func (s *Snapshot) lookup(mapper int, ip uint32) (Answer, method) {
	if mapper < 0 || mapper >= len(s.mappers) {
		return Answer{IP: ip}, methodNone
	}
	if i, ok := search32(s.ips, ip); ok {
		e := &s.ipAns[mapper][i]
		return e.answer(ip, true), e.method
	}
	if i, ok := search32(s.prefixes, ip&^0xff); ok {
		e := &s.prefixAns[mapper][i]
		return e.answer(ip, false), e.method
	}
	return Answer{IP: ip}, methodNone
}

// Footprint returns an AS's geographic footprint under the mapper with
// the given index, or ok=false when the AS was not seen in that
// mapper's dataset.
func (s *Snapshot) Footprint(mapper int, asn int) (analysis.ASFootprint, bool) {
	if mapper < 0 || mapper >= len(s.mappers) || asn <= 0 || asn > math.MaxInt32 {
		return analysis.ASFootprint{}, false
	}
	lo, hi := 0, len(s.asns)
	for lo < hi {
		mid := int(uint(lo+hi) >> 1)
		if s.asns[mid] < int32(asn) {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	if lo >= len(s.asns) || s.asns[lo] != int32(asn) {
		return analysis.ASFootprint{}, false
	}
	fp := s.footprints[mapper][lo]
	return fp, fp.ASN != 0
}

// hashWriter serialises snapshot content into a hash with fixed
// little-endian encoding.
type hashWriter struct {
	h   hash.Hash
	buf []byte
}

func (w *hashWriter) flush() {
	if len(w.buf) > 0 {
		w.h.Write(w.buf)
		w.buf = w.buf[:0]
	}
}

func (w *hashWriter) grow(n int) {
	if len(w.buf)+n > cap(w.buf) {
		w.flush()
	}
}

func (w *hashWriter) u8(v uint8) {
	w.grow(1)
	w.buf = append(w.buf, v)
}

func (w *hashWriter) u32(v uint32) {
	w.grow(4)
	w.buf = binary.LittleEndian.AppendUint32(w.buf, v)
}

func (w *hashWriter) u64(v uint64) {
	w.grow(8)
	w.buf = binary.LittleEndian.AppendUint64(w.buf, v)
}

func (w *hashWriter) f64(v float64) { w.u64(math.Float64bits(v)) }

// u32s emits the same bytes as calling u32 per element, chunked
// through the buffer.
func (w *hashWriter) u32s(vs []uint32) {
	for len(vs) > 0 {
		w.grow(4)
		n := (cap(w.buf) - len(w.buf)) / 4
		if n > len(vs) {
			n = len(vs)
		}
		off := len(w.buf)
		w.buf = w.buf[:off+n*4]
		for i, v := range vs[:n] {
			binary.LittleEndian.PutUint32(w.buf[off+i*4:], v)
		}
		vs = vs[n:]
	}
}

func (w *hashWriter) str(s string) {
	w.u32(uint32(len(s)))
	w.flush()
	w.h.Write([]byte(s))
}

// entry emits the same byte sequence as f64/f64/f64/u32/u8/u8 would,
// batched into one append — the digest loop runs once per row per
// mapper, so per-field call overhead is measurable (delta compiles are
// digest-bound; see BenchmarkServeDelta).
func (w *hashWriter) entry(e *entry) {
	w.grow(30)
	var b [30]byte
	binary.LittleEndian.PutUint64(b[0:], math.Float64bits(e.loc.Lat))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(e.loc.Lon))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(e.radiusMi))
	binary.LittleEndian.PutUint32(b[24:], uint32(e.asn))
	b[28] = uint8(e.method)
	if e.found {
		b[29] = 1
	}
	w.buf = append(w.buf, b[:]...)
}

// computeDigest hashes every content table in a fixed order; BuildInfo
// is deliberately excluded (see Digest).
func (s *Snapshot) computeDigest() string {
	w := &hashWriter{h: sha256.New(), buf: make([]byte, 0, 1<<16)}
	w.str("geoserve-snapshot-v1")
	w.u32(uint32(len(s.mappers)))
	for _, name := range s.mappers {
		w.str(name)
	}
	w.u32(uint32(len(s.prefixes)))
	w.u32s(s.prefixes)
	w.u32(uint32(len(s.ips)))
	w.u32s(s.ips)
	for m := range s.mappers {
		for i := range s.prefixAns[m] {
			w.entry(&s.prefixAns[m][i])
		}
		for i := range s.ipAns[m] {
			w.entry(&s.ipAns[m][i])
		}
	}
	w.u32(uint32(len(s.asns)))
	for _, asn := range s.asns {
		w.u32(uint32(asn))
	}
	for m := range s.mappers {
		for i := range s.footprints[m] {
			fp := &s.footprints[m][i]
			w.u32(uint32(fp.ASN))
			w.u32(uint32(fp.Interfaces))
			w.u32(uint32(fp.Locations))
			w.u32(uint32(fp.Degree))
			w.f64(fp.Centroid.Lat)
			w.f64(fp.Centroid.Lon)
			w.f64(fp.AreaSqMi)
			w.f64(fp.RadiusMi)
		}
	}
	w.flush()
	return hex.EncodeToString(w.h.Sum(nil))
}
