package geoserve

import (
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"geonet/internal/obs"
)

// MaxBatch caps one /v1/locate/batch request, one /v1/locate/bin
// batch, and one stream chunk.
const MaxBatch = 4096

// maxBatchBodyBytes bounds a JSON batch request body. A full MaxBatch
// of dotted-quad addresses needs well under 128 KiB; 1 MiB leaves
// slack for formatting while keeping a hostile client from streaming
// an unbounded body into the decoder.
const maxBatchBodyBytes = 1 << 20

// backend is the serving surface the HTTP layer binds to: a single
// Engine or a sharded Cluster. Both produce byte-identical responses
// for the same snapshot (the shard-count-invariance golden pins this);
// only /statusz differs, reporting each mode's own metrics shape.
type backend interface {
	Locate(mapperName string, ip uint32) (Answer, bool)
	Snapshot() *Snapshot
	// locateBatch answers ips into out under the named mapper.
	// ok=false means the mapper is unknown; a wrapped ErrOverloaded
	// means the batch was shed (HTTP 429). tr is the request's trace
	// handle (nil when untraced).
	locateBatch(mapperName string, ips []uint32, out []Answer, tr *obs.Trace) (ok bool, err error)
	// locateTail returns the preserialized /v1/locate response tail
	// for one lookup (wire.go); ok=false means the mapper is unknown.
	locateTail(mapperName string, ip uint32) (tail []byte, ok bool)
	// serveWire answers ips as WireAnswerSize-byte wire answers into
	// out from one epoch-consistent snapshot (returned); ok=false means
	// the wire mapper id doesn't resolve on it, a wrapped ErrOverloaded
	// that the batch was shed. tr is the request's trace handle (nil
	// when untraced).
	serveWire(mapperID uint16, ips []uint32, out []byte, tr *obs.Trace) (snap *Snapshot, ok bool, err error)
	// registerMetrics exposes the backend's serving families on reg.
	registerMetrics(reg *obs.Registry)
	info() SnapshotInfo
	statusAny() any
}

func (e *Engine) locateBatch(mapperName string, ips []uint32, out []Answer, _ *obs.Trace) (bool, error) {
	for i, ip := range ips {
		a, ok := e.Locate(mapperName, ip)
		if !ok {
			return false, nil
		}
		out[i] = a
	}
	return true, nil
}

func (e *Engine) info() SnapshotInfo { return e.snapshotInfo(e.snap.Load()) }
func (e *Engine) statusAny() any     { return e.Status() }

func (c *Cluster) locateBatch(mapperName string, ips []uint32, out []Answer, tr *obs.Trace) (bool, error) {
	v := c.view.Load()
	idx := 0
	if mapperName != "" {
		var ok bool
		if idx, ok = v.snap.MapperIndex(mapperName); !ok {
			return false, nil
		}
	}
	return true, c.serveBatch(v, idx, ips, out, tr)
}

func (c *Cluster) info() SnapshotInfo {
	return makeSnapshotInfo(c.view.Load().snap, c.cm.swaps.Load())
}
func (c *Cluster) statusAny() any { return c.Status() }

// NewHandler returns the service's HTTP JSON API over a single engine:
//
//	GET  /v1/locate?ip=A.B.C.D[&mapper=NAME]   one lookup
//	POST /v1/locate/batch                      {"mapper": ..., "ips": [...]}
//	GET  /v1/as/{asn}/footprint                per-mapper AS footprints
//	GET  /v1/prefixes                          the allocated /24 index
//	GET  /healthz                              liveness + snapshot identity
//	GET  /statusz                              qps, latency quantiles, method counts
//
// cmd/geoserved wraps it with the admin rebuild endpoint.
//
// The handler also mounts GET /metrics and GET /debug/tracez from a
// fresh observability bundle; use NewObservedHandler to supply one
// (required to keep scrape continuity across epoch hot-swaps).
func NewHandler(e *Engine) http.Handler { return newHandler(e, nil) }

// NewClusterHandler returns the same HTTP JSON API over a sharded
// cluster. Responses are byte-identical to NewHandler over the same
// snapshot; /statusz reports the cluster's coordinator and per-shard
// metrics, and a shed batch answers 429.
func NewClusterHandler(c *Cluster) http.Handler { return newHandler(c, nil) }

// NewObservedHandler is NewHandler bound to a caller-owned
// observability bundle: the engine's families register onto o.Metrics
// (replacing in place on re-registration, so an epoch swap that
// rebuilds the handler keeps one continuous scrape), and traced
// requests record spans into o.Traces.
func NewObservedHandler(e *Engine, o *obs.Observability) http.Handler { return newHandler(e, o) }

// NewObservedClusterHandler is NewClusterHandler bound to a
// caller-owned observability bundle.
func NewObservedClusterHandler(c *Cluster, o *obs.Observability) http.Handler {
	return newHandler(c, o)
}

// apiHandler is the HTTP serving surface over a backend plus its
// observability state: the wire-protocol traffic counters live here
// because the wire endpoints are an HTTP-layer concern, not a
// backend one.
type apiHandler struct {
	b   backend
	obs *obs.Observability
	mux *http.ServeMux

	wireBatchFrames  obs.Counter // /v1/locate/bin responses
	wireStreamFrames obs.Counter // stream answer frames
	wireErrFrames    obs.Counter // in-band error frames
	wireRxBytes      obs.Counter // wire request bytes read
	wireTxBytes      obs.Counter // wire response bytes written
	wireEpochChanges obs.Counter // epoch tag changes mid-stream
}

func (h *apiHandler) registerWireMetrics(reg *obs.Registry) {
	reg.RegisterCounter("geoserve_wire_batch_frames_total",
		"Binary batch responses served.", nil, &h.wireBatchFrames)
	reg.RegisterCounter("geoserve_wire_stream_frames_total",
		"Streaming answer frames served.", nil, &h.wireStreamFrames)
	reg.RegisterCounter("geoserve_wire_error_frames_total",
		"In-band wire error frames written.", nil, &h.wireErrFrames)
	reg.RegisterCounter("geoserve_wire_rx_bytes_total",
		"Wire-protocol request bytes read.", nil, &h.wireRxBytes)
	reg.RegisterCounter("geoserve_wire_tx_bytes_total",
		"Wire-protocol response bytes written.", nil, &h.wireTxBytes)
	reg.RegisterCounter("geoserve_wire_epoch_changes_total",
		"Epoch tag changes observed between frames of one stream.", nil,
		&h.wireEpochChanges)
}

func (h *apiHandler) ServeHTTP(w http.ResponseWriter, r *http.Request) {
	h.mux.ServeHTTP(w, r)
}

// trace returns the request's trace handle (nil unless the request
// carries X-Geo-Trace), echoing the ID into the response so callers
// can correlate. The untraced path costs one header lookup.
func (h *apiHandler) trace(w http.ResponseWriter, r *http.Request) *obs.Trace {
	tr := obs.TraceFromRequest(r, h.obs.Traces)
	if tr != nil {
		w.Header().Set(obs.TraceHeader, tr.TraceID().String())
	}
	return tr
}

func newHandler(b backend, o *obs.Observability) http.Handler {
	if o == nil {
		component := "engine"
		if _, ok := b.(*Cluster); ok {
			component = "cluster"
		}
		o = obs.NewObservability(component)
	}
	h := &apiHandler{b: b, obs: o}
	b.registerMetrics(o.Metrics)
	h.registerWireMetrics(o.Metrics)

	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/locate", func(w http.ResponseWriter, r *http.Request) {
		if tr := h.trace(w, r); tr != nil {
			defer tr.Span("serve.locate", time.Now())
		}
		ip, err := ParseIPv4(r.URL.Query().Get("ip"))
		if err != nil {
			httpError(w, http.StatusBadRequest, "bad or missing ip parameter: %v", err)
			return
		}
		mapper := r.URL.Query().Get("mapper")
		// The hot path: the response body is the queried address
		// spliced into the snapshot's preserialized tail for the
		// answer row — no per-request JSON encoding. Byte-identical to
		// encoding answerJSON(b.Locate(...)) (the goldens pin it).
		tail, ok := b.locateTail(mapper, ip)
		if !ok {
			httpError(w, http.StatusBadRequest, "unknown mapper %q (have %v)", mapper, b.Snapshot().Mappers())
			return
		}
		writeLocate(w, ip, tail)
	})

	mux.HandleFunc("POST /v1/locate/batch", func(w http.ResponseWriter, r *http.Request) {
		tr := h.trace(w, r)
		var req struct {
			Mapper string   `json:"mapper"`
			IPs    []string `json:"ips"`
		}
		// Bound the body before decoding: without MaxBytesReader a
		// client could stream gigabytes into the JSON decoder.
		body := http.MaxBytesReader(w, r.Body, maxBatchBodyBytes)
		dec := json.NewDecoder(body)
		if err := dec.Decode(&req); err != nil {
			var tooBig *http.MaxBytesError
			if errors.As(err, &tooBig) {
				httpError(w, http.StatusRequestEntityTooLarge, "batch body exceeds %d bytes", maxBatchBodyBytes)
				return
			}
			httpError(w, http.StatusBadRequest, "bad request body: %v", err)
			return
		}
		// Reject trailing garbage after the JSON object: More covers a
		// second JSON value, the second Decode catches non-JSON bytes.
		if dec.More() {
			httpError(w, http.StatusBadRequest, "trailing data after batch object")
			return
		}
		if err := dec.Decode(&struct{}{}); err != io.EOF {
			httpError(w, http.StatusBadRequest, "trailing data after batch object")
			return
		}
		if len(req.IPs) == 0 {
			httpError(w, http.StatusBadRequest, "empty ips")
			return
		}
		if len(req.IPs) > MaxBatch {
			httpError(w, http.StatusBadRequest, "batch of %d exceeds limit %d", len(req.IPs), MaxBatch)
			return
		}
		ips := make([]uint32, len(req.IPs))
		for i, ipStr := range req.IPs {
			ip, err := ParseIPv4(ipStr)
			if err != nil {
				httpError(w, http.StatusBadRequest, "bad ip %q", ipStr)
				return
			}
			ips[i] = ip
		}
		out := make([]Answer, len(ips))
		if tr != nil {
			defer tr.Span("serve.batch", time.Now(), obs.AInt("n", len(ips)))
		}
		ok, err := b.locateBatch(req.Mapper, ips, out, tr)
		if !ok {
			httpError(w, http.StatusBadRequest, "unknown mapper %q (have %v)", req.Mapper, b.Snapshot().Mappers())
			return
		}
		if err != nil {
			if errors.Is(err, ErrOverloaded) {
				httpError(w, http.StatusTooManyRequests, "%v", err)
				return
			}
			httpError(w, http.StatusInternalServerError, "%v", err)
			return
		}
		mapperName := mapperOrDefault(b, req.Mapper)
		results := make([]locateJSON, len(out))
		for i, a := range out {
			results[i] = answerJSON(a, mapperName)
		}
		writeJSON(w, struct {
			Mapper  string       `json:"mapper"`
			Results []locateJSON `json:"results"`
		}{mapperName, results})
	})

	mux.HandleFunc("GET /v1/as/{asn}/footprint", func(w http.ResponseWriter, r *http.Request) {
		asn, err := strconv.Atoi(r.PathValue("asn"))
		if err != nil || asn <= 0 {
			httpError(w, http.StatusBadRequest, "bad asn %q", r.PathValue("asn"))
			return
		}
		snap := b.Snapshot()
		resp := struct {
			ASN     int                      `json:"asn"`
			Mappers map[string]footprintJSON `json:"mappers"`
		}{ASN: asn, Mappers: map[string]footprintJSON{}}
		for i, name := range snap.Mappers() {
			if fp, ok := snap.Footprint(i, asn); ok {
				resp.Mappers[name] = footprintJSON{
					Interfaces:  fp.Interfaces,
					Locations:   fp.Locations,
					Degree:      fp.Degree,
					CentroidLat: fp.Centroid.Lat,
					CentroidLon: fp.Centroid.Lon,
					AreaSqMi:    fp.AreaSqMi,
					RadiusMi:    fp.RadiusMi,
				}
			}
		}
		if len(resp.Mappers) == 0 {
			httpError(w, http.StatusNotFound, "no footprint for AS %d", asn)
			return
		}
		writeJSON(w, resp)
	})

	mux.HandleFunc("GET /v1/prefixes", func(w http.ResponseWriter, r *http.Request) {
		snap := b.Snapshot()
		prefixes := snap.Prefixes()
		out := make([]string, len(prefixes))
		for i, p := range prefixes {
			out[i] = FormatIPv4(p) + "/24"
		}
		writeJSON(w, struct {
			Count    int      `json:"count"`
			Prefixes []string `json:"prefixes"`
		}{len(out), out})
	})

	mux.HandleFunc("GET /healthz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, struct {
			Status   string       `json:"status"`
			Snapshot SnapshotInfo `json:"snapshot"`
		}{"ok", b.info()})
	})

	mux.HandleFunc("GET /statusz", func(w http.ResponseWriter, r *http.Request) {
		writeJSON(w, b.statusAny())
	})

	mux.HandleFunc("POST /v1/locate/bin", h.serveWireBatch)
	mux.HandleFunc("POST /v1/locate/stream", h.serveWireStream)

	o.Mount(mux)
	h.mux = mux
	return h
}

// locateBufPool recycles the response-assembly buffers of the JSON
// single-lookup hot path.
var locateBufPool = sync.Pool{New: func() any { b := make([]byte, 0, 256); return &b }}

// writeLocate assembles a /v1/locate response from the queried address
// and the snapshot's preserialized tail, in one buffered write.
func writeLocate(w http.ResponseWriter, ip uint32, tail []byte) {
	w.Header().Set("Content-Type", "application/json")
	bp := locateBufPool.Get().(*[]byte)
	b := append((*bp)[:0], `{"ip":"`...)
	b = appendIPv4(b, ip)
	b = append(b, tail...)
	w.Write(b)
	*bp = b[:0]
	locateBufPool.Put(bp)
}

// locateJSON is the wire form of an Answer. Field order is fixed so
// responses are byte-stable for the golden tests.
type locateJSON struct {
	IP     string   `json:"ip"`
	Mapper string   `json:"mapper"`
	Found  bool     `json:"found"`
	Exact  bool     `json:"exact,omitempty"`
	Lat    *float64 `json:"lat,omitempty"`
	Lon    *float64 `json:"lon,omitempty"`
	Method string   `json:"method,omitempty"`
	ASN    int      `json:"asn,omitempty"`
	// RadiusMi is the confidence-style radius from the origin AS's
	// footprint under this mapper.
	RadiusMi float64 `json:"radius_mi,omitempty"`
}

type footprintJSON struct {
	Interfaces  int     `json:"interfaces"`
	Locations   int     `json:"locations"`
	Degree      int     `json:"degree"`
	CentroidLat float64 `json:"centroid_lat"`
	CentroidLon float64 `json:"centroid_lon"`
	AreaSqMi    float64 `json:"area_sq_mi"`
	RadiusMi    float64 `json:"radius_mi"`
}

func answerJSON(a Answer, mapperName string) locateJSON {
	out := locateJSON{
		IP:       FormatIPv4(a.IP),
		Mapper:   mapperName,
		Found:    a.Found,
		Exact:    a.Exact,
		Method:   a.Method,
		ASN:      a.ASN,
		RadiusMi: a.RadiusMi,
	}
	if a.Found {
		lat, lon := a.Loc.Lat, a.Loc.Lon
		out.Lat, out.Lon = &lat, &lon
	}
	return out
}

func mapperOrDefault(b backend, name string) string {
	if name != "" {
		return name
	}
	if mappers := b.Snapshot().Mappers(); len(mappers) > 0 {
		return mappers[0]
	}
	return ""
}

func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	enc := json.NewEncoder(w)
	if err := enc.Encode(v); err != nil {
		// The header is already out; nothing useful left to do.
		return
	}
}

func httpError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}
