package geoserve

import (
	"encoding/binary"
	"errors"
	"io"
	"net/http"
	"strconv"
	"sync"
	"time"

	"geonet/internal/obs"
)

// wireMaxBatchBody is the exact size of a maximal batch request;
// anything longer is rejected before parsing.
const wireMaxBatchBody = wireHeaderSize + 4 + MaxBatch*4

// wireScratch is the pooled per-request state of the binary endpoints:
// request bytes, decoded addresses and the response under assembly.
// Once the pool is warm a batch request allocates nothing.
type wireScratch struct {
	body []byte
	ips  []uint32
	out  []byte
}

var wireScratchPool = sync.Pool{New: func() any {
	return &wireScratch{body: make([]byte, 0, wireMaxBatchBody)}
}}

// readAllInto reads r to EOF into dst's capacity, growing as needed —
// io.ReadAll with a reusable buffer.
func readAllInto(dst []byte, r io.Reader) ([]byte, error) {
	for {
		if len(dst) == cap(dst) {
			dst = append(dst, 0)[:len(dst)]
		}
		n, err := r.Read(dst[len(dst):cap(dst)])
		dst = dst[:len(dst)+n]
		if err == io.EOF {
			return dst, nil
		}
		if err != nil {
			return dst, err
		}
	}
}

// serveWireBatch answers POST /v1/locate/bin: one binary batch
// request in, one epoch-tagged answer frame out. Wire parse errors map
// to 400, an oversized body to 413, a shed batch to 429 — the same
// envelope semantics as the JSON batch endpoint.
func (h *apiHandler) serveWireBatch(w http.ResponseWriter, r *http.Request) {
	tr := h.trace(w, r)
	if tr != nil {
		defer tr.Span("serve.wire_batch", time.Now())
	}
	sc := wireScratchPool.Get().(*wireScratch)
	defer wireScratchPool.Put(sc)
	body, err := readAllInto(sc.body[:0], http.MaxBytesReader(w, r.Body, wireMaxBatchBody))
	sc.body = body[:0]
	h.wireRxBytes.Add(uint64(len(body)))
	if err != nil {
		var tooBig *http.MaxBytesError
		if errors.As(err, &tooBig) {
			httpError(w, http.StatusRequestEntityTooLarge, "wire batch body exceeds %d bytes", wireMaxBatchBody)
			return
		}
		httpError(w, http.StatusBadRequest, "reading body: %v", err)
		return
	}
	mapperID, ips, err := parseWireBatchRequest(body, sc.ips[:0])
	sc.ips = ips[:0]
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}

	need := wireHeaderSize + 12 + len(ips)*WireAnswerSize
	if cap(sc.out) < need {
		sc.out = make([]byte, need)
	}
	resp := sc.out[:need]
	encStart := time.Now()
	snap, ok, err := h.b.serveWire(mapperID, ips, resp[wireHeaderSize+12:], tr)
	if !ok {
		httpError(w, http.StatusBadRequest, "wire mapper id %d does not resolve (have %v)", mapperID, snap.Mappers())
		return
	}
	if err != nil {
		if errors.Is(err, ErrOverloaded) {
			httpError(w, http.StatusTooManyRequests, "%v", err)
			return
		}
		httpError(w, http.StatusInternalServerError, "%v", err)
		return
	}
	if tr != nil {
		tr.Span("wire.encode", encStart, obs.AInt("n", len(ips)))
	}
	idx, _ := snap.wireMapperIndex(mapperID)
	putWireHeader(resp, wireKindBatchResp, uint16(idx))
	binary.LittleEndian.PutUint32(resp[wireHeaderSize:], uint32(len(ips)))
	binary.LittleEndian.PutUint64(resp[wireHeaderSize+4:], snap.wireTag())
	w.Header().Set("Content-Type", WireContentType)
	w.Header().Set("Content-Length", strconv.Itoa(len(resp)))
	w.Write(resp)
	h.wireBatchFrames.Inc()
	h.wireTxBytes.Add(uint64(len(resp)))
}

// serveWireStreamHTTP answers POST /v1/locate/stream: after the stream
// header the client sends address chunks and the server answers each
// with one epoch-tagged frame, flushed as it completes, until the
// zero-count terminator. Each chunk serves from its own epoch-
// consistent view, so a frame never blends epochs — a hot-swap mid-
// stream shows up as a tag change between frames. Past the response
// header, errors travel in-band as error frames (HTTP status is
// already committed).
func (h *apiHandler) serveWireStream(w http.ResponseWriter, r *http.Request) {
	tr := h.trace(w, r)
	chunks := 0
	if tr != nil {
		t0 := time.Now()
		defer func() {
			tr.Span("serve.wire_stream", t0, obs.AInt("chunks", chunks))
		}()
	}
	var hdr [wireHeaderSize]byte
	if _, err := io.ReadFull(r.Body, hdr[:]); err != nil {
		httpError(w, http.StatusBadRequest, "reading stream header: %v", err)
		return
	}
	h.wireRxBytes.Add(wireHeaderSize)
	kind, mapperID, err := parseWireHeader(hdr[:])
	if err != nil {
		httpError(w, http.StatusBadRequest, "%v", err)
		return
	}
	if kind != wireKindStreamReq {
		httpError(w, http.StatusBadRequest, "wire kind %d is not a stream request", kind)
		return
	}
	// Resolve against the current snapshot so a bad mapper id still
	// gets a clean 400; each chunk re-resolves on its serving epoch.
	snap := h.b.Snapshot()
	idx, ok := snap.wireMapperIndex(mapperID)
	if !ok {
		httpError(w, http.StatusBadRequest, "wire mapper id %d does not resolve (have %v)", mapperID, snap.Mappers())
		return
	}

	// Full duplex: the handler keeps reading chunks from the request
	// body after it has started writing frames (HTTP/1.1, Go 1.21+).
	rc := http.NewResponseController(w)
	rc.EnableFullDuplex()
	w.Header().Set("Content-Type", WireContentType)
	putWireHeader(hdr[:], wireKindStreamResp, uint16(idx))
	if _, err := w.Write(hdr[:]); err != nil {
		return
	}
	rc.Flush()

	sc := wireScratchPool.Get().(*wireScratch)
	defer wireScratchPool.Put(sc)
	var cnt [4]byte
	var lastTag uint64
	for {
		if _, err := io.ReadFull(r.Body, cnt[:]); err != nil {
			// The client hung up without a terminator; there is no one
			// left to tell.
			return
		}
		h.wireRxBytes.Add(4)
		n := binary.LittleEndian.Uint32(cnt[:])
		if n == 0 {
			// Clean end of stream: echo the terminator frame.
			w.Write(cnt[:])
			h.wireTxBytes.Add(4)
			rc.Flush()
			return
		}
		if n > MaxBatch {
			h.writeErrFrame(w, wireErrCodeBadChunk, tr)
			rc.Flush()
			return
		}
		need := int(n) * 4
		if cap(sc.body) < need {
			sc.body = make([]byte, need)
		}
		buf := sc.body[:need]
		if _, err := io.ReadFull(r.Body, buf); err != nil {
			return
		}
		h.wireRxBytes.Add(uint64(need))
		ips := sc.ips[:0]
		for i := 0; i < int(n); i++ {
			ips = append(ips, binary.LittleEndian.Uint32(buf[i*4:]))
		}
		sc.ips = ips[:0]

		frameLen := 12 + int(n)*WireAnswerSize
		if cap(sc.out) < frameLen {
			sc.out = make([]byte, frameLen)
		}
		frame := sc.out[:frameLen]
		encStart := time.Now()
		snap, ok, err := h.b.serveWire(mapperID, ips, frame[12:], tr)
		if !ok {
			// The mapper id stopped resolving after a hot-swap.
			h.writeErrFrame(w, wireErrCodeUnknownMapper, tr)
			rc.Flush()
			return
		}
		if err != nil {
			code := uint32(wireErrCodeBadChunk)
			if errors.Is(err, ErrOverloaded) {
				code = wireErrCodeOverloaded
			}
			h.writeErrFrame(w, code, tr)
			rc.Flush()
			return
		}
		if tr != nil {
			tr.Span("wire.encode", encStart, obs.AInt("n", int(n)))
		}
		tag := snap.wireTag()
		if lastTag != 0 && tag != lastTag {
			// A hot-swap landed between chunks: the stream's answer
			// frames now carry a different epoch tag.
			h.wireEpochChanges.Inc()
		}
		lastTag = tag
		binary.LittleEndian.PutUint32(frame, n)
		binary.LittleEndian.PutUint64(frame[4:], tag)
		if _, err := w.Write(frame); err != nil {
			return
		}
		chunks++
		h.wireStreamFrames.Inc()
		h.wireTxBytes.Add(uint64(frameLen))
		rc.Flush()
	}
}

// writeErrFrame writes one in-band error frame. For a traced request
// the frame carries the trace ID (the wireErrTraceFlag bit on the code
// plus an 8-byte ID tail), so a client that hit a shed or a mid-swap
// failure can quote the exact trace to go look up in /debug/tracez;
// untraced requests get the classic 8-byte frame, byte-identical to
// earlier protocol versions.
func (h *apiHandler) writeErrFrame(w io.Writer, code uint32, tr *obs.Trace) {
	writeWireErrFrame(w, code, uint64(tr.TraceID()))
	h.wireErrFrames.Inc()
	if tr.TraceID() != 0 {
		h.wireTxBytes.Add(16)
	} else {
		h.wireTxBytes.Add(8)
	}
}

func writeWireErrFrame(w io.Writer, code uint32, traceID uint64) {
	var f [16]byte
	binary.LittleEndian.PutUint32(f[:], wireErrFrame)
	if traceID == 0 {
		binary.LittleEndian.PutUint32(f[4:], code)
		w.Write(f[:8])
		return
	}
	binary.LittleEndian.PutUint32(f[4:], code|wireErrTraceFlag)
	binary.LittleEndian.PutUint64(f[8:], traceID)
	w.Write(f[:16])
}
