package geoserve

import (
	"fmt"
	"sort"
	"sync"

	"geonet/internal/analysis"
	"geonet/internal/bgp"
	"geonet/internal/geoloc"
	"geonet/internal/netgen"
	"geonet/internal/parallel"
)

// Source bundles everything Compile reads from a finished pipeline.
// core.Pipeline.Serve constructs it; tests can assemble one by hand.
type Source struct {
	// Internet supplies the allocated address space (the /24 interval
	// index) and the known interface addresses.
	Internet *netgen.Internet
	// Table is the BGP epoch answers are AS-attributed against.
	Table *bgp.Table
	// Mappers are compiled in order; Lookup's mapper index and the
	// HTTP API's mapper names follow it.
	Mappers []NamedMapper
	// Workers bounds the compile fan-out (<= 0: one per CPU). The
	// compiled snapshot is byte-identical at any value.
	Workers int
	// Build identifies the pipeline for /healthz and /statusz.
	Build BuildInfo
}

// NamedMapper pairs a mapping tool with its footprint source.
type NamedMapper struct {
	Mapper geoloc.MethodMapper
	// Footprints are the per-AS footprints answers under this mapper
	// carry their confidence radius from — typically
	// analysis.Footprints over the mapper's processed dataset.
	Footprints []analysis.ASFootprint
}

// Compile flattens the source into an immutable serving snapshot: one
// sorted /24 interval index over the allocated space, exact answers
// for every known interface address, prefix-level answers for generic
// hosts, and per-AS footprints. Compilation parallelizes over
// per-index slots under Workers, so the result (and its Digest) is
// identical at any worker count.
func Compile(src Source) (*Snapshot, error) {
	if src.Internet == nil {
		return nil, fmt.Errorf("geoserve: nil Internet")
	}
	if src.Table == nil {
		return nil, fmt.Errorf("geoserve: nil BGP table")
	}
	if len(src.Mappers) == 0 {
		return nil, fmt.Errorf("geoserve: no mappers")
	}
	workers := parallel.Workers(src.Workers)
	in := src.Internet

	s := &Snapshot{build: src.Build}
	for _, nm := range src.Mappers {
		if nm.Mapper == nil {
			return nil, fmt.Errorf("geoserve: nil mapper")
		}
		name := nm.Mapper.Name()
		for _, seen := range s.mappers {
			if seen == name {
				return nil, fmt.Errorf("geoserve: duplicate mapper %q", name)
			}
		}
		s.mappers = append(s.mappers, name)
	}

	// The /24 interval index: every /24 of every AS's originated
	// prefixes, ascending. Prefixes are disjoint across ASes, so the
	// dedup only guards degenerate inputs.
	for ai := range in.ASes {
		for _, p := range in.ASes[ai].Prefixes {
			size := uint32(1)
			if p.Len < 32 {
				size = uint32(1) << (32 - uint(p.Len))
			}
			for base := p.Addr; base < p.Addr+size; base += 256 {
				s.prefixes = append(s.prefixes, base)
			}
		}
	}
	sort.Slice(s.prefixes, func(i, j int) bool { return s.prefixes[i] < s.prefixes[j] })
	s.prefixes = dedup32(s.prefixes)

	// Exact answers for every public interface address.
	for i := range in.Ifaces {
		if ifc := &in.Ifaces[i]; ifc.IP != 0 && !ifc.Private {
			s.ips = append(s.ips, ifc.IP)
		}
	}
	sort.Slice(s.ips, func(i, j int) bool { return s.ips[i] < s.ips[j] })
	s.ips = dedup32(s.ips)

	// Footprint tables: union of ASNs across mappers, ascending; a
	// zero-ASN footprint marks absence under one mapper.
	byASN := make([]map[int]analysis.ASFootprint, len(src.Mappers))
	asnSet := map[int32]struct{}{}
	for m, nm := range src.Mappers {
		byASN[m] = make(map[int]analysis.ASFootprint, len(nm.Footprints))
		for _, fp := range nm.Footprints {
			if fp.ASN <= 0 {
				return nil, fmt.Errorf("geoserve: footprint with non-positive ASN %d", fp.ASN)
			}
			byASN[m][fp.ASN] = fp
			asnSet[int32(fp.ASN)] = struct{}{}
		}
	}
	for asn := range asnSet {
		s.asns = append(s.asns, asn)
	}
	sort.Slice(s.asns, func(i, j int) bool { return s.asns[i] < s.asns[j] })
	s.footprints = make([][]analysis.ASFootprint, len(src.Mappers))
	for m := range src.Mappers {
		s.footprints[m] = make([]analysis.ASFootprint, len(s.asns))
		for i, asn := range s.asns {
			s.footprints[m][i] = byASN[m][int(asn)] // zero value when absent
		}
	}

	// Representative "generic host" address per /24: the highest
	// address in the block that is not a known interface, so the
	// prefix-level answer reflects what the mapper says about an
	// arbitrary, PTR-less host there (whois by range, EdgeScape feed
	// by /24).
	reps := make([]uint32, len(s.prefixes))
	parallel.ForEach(workers, len(s.prefixes), func(i int) {
		base := s.prefixes[i]
		reps[i] = base
		for off := uint32(255); ; off-- {
			if _, taken := in.ByIP[base+off]; !taken {
				reps[i] = base + off
				break
			}
			if off == 0 {
				break
			}
		}
	})

	s.prefixAns = make([][]entry, len(src.Mappers))
	s.ipAns = make([][]entry, len(src.Mappers))
	var (
		errMu      sync.Mutex
		compileErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if compileErr == nil {
			compileErr = err
		}
		errMu.Unlock()
	}
	for m, nm := range src.Mappers {
		mapper := nm.Mapper
		prefixAns := make([]entry, len(s.prefixes))
		parallel.ForEach(workers, len(s.prefixes), func(i int) {
			e, err := compileEntry(mapper, src.Table, byASN[m], reps[i])
			if err != nil {
				setErr(err)
			}
			prefixAns[i] = e
		})
		ipAns := make([]entry, len(s.ips))
		parallel.ForEach(workers, len(s.ips), func(i int) {
			e, err := compileEntry(mapper, src.Table, byASN[m], s.ips[i])
			if err != nil {
				setErr(err)
			}
			ipAns[i] = e
		})
		s.prefixAns[m] = prefixAns
		s.ipAns[m] = ipAns
	}
	if compileErr != nil {
		return nil, compileErr
	}

	s.digest = s.computeDigest()
	return s, nil
}

// compileEntry precomputes one answer: mapper resolution, BGP origin
// AS and the footprint-derived confidence radius.
func compileEntry(mapper geoloc.MethodMapper, table *bgp.Table, footprints map[int]analysis.ASFootprint, ip uint32) (entry, error) {
	var e entry
	p, methodName, ok := mapper.LocateMethod(ip)
	if ok {
		code, known := methodCode(methodName)
		if !known || code == methodNone {
			return e, fmt.Errorf("geoserve: mapper %q returned unknown method %q", mapper.Name(), methodName)
		}
		e.loc, e.method, e.found = p, code, true
	}
	if asn, ok := table.OriginAS(ip); ok {
		e.asn = int32(asn)
		if fp, ok := footprints[asn]; ok {
			e.radiusMi = fp.RadiusMi
		}
	}
	return e, nil
}

func dedup32(xs []uint32) []uint32 {
	if len(xs) == 0 {
		return xs
	}
	out := xs[:1]
	for _, v := range xs[1:] {
		if v != out[len(out)-1] {
			out = append(out, v)
		}
	}
	return out
}
