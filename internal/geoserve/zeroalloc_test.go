package geoserve_test

import (
	"testing"

	"geonet/internal/geoserve"
	"geonet/internal/obs"
)

// TestLookupZeroAlloc pins that the serving hot paths allocate nothing
// per lookup with the full observability layer attached: metrics
// registered on a live registry and tracing enabled but no trace header
// present (the production steady state). A regression here is exactly
// the kind of slow leak the 0 allocs/op bar on
// BenchmarkServeLookupParallel exists to catch, caught at test time.
func TestLookupZeroAlloc(t *testing.T) {
	p, snap := fixture(t)
	hits := publicIfaceIPs(p)
	if len(hits) == 0 {
		t.Fatal("fixture has no public interface addresses")
	}

	e := geoserve.NewEngine(snap)
	// Registering on a handler attaches the engine's metrics to a live
	// registry, same as production serving.
	geoserve.NewObservedHandler(e, obs.NewObservability("engine"))
	i := 0
	if n := testing.AllocsPerRun(1000, func() {
		a := e.Lookup(i&1, hits[i%len(hits)])
		if a.IP == 0 {
			t.Fatal("bad answer")
		}
		i++
	}); n != 0 {
		t.Errorf("Engine.Lookup: %v allocs/op, want 0", n)
	}

	c, err := geoserve.NewCluster(snap, geoserve.ClusterConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	geoserve.NewObservedClusterHandler(c, obs.NewObservability("cluster"))
	i = 0
	if n := testing.AllocsPerRun(1000, func() {
		a := c.Lookup(i&1, hits[i%len(hits)])
		if a.IP == 0 {
			t.Fatal("bad answer")
		}
		i++
	}); n != 0 {
		t.Errorf("Cluster.Lookup: %v allocs/op, want 0", n)
	}
}
