package geoserve

import (
	"sync/atomic"
	"time"

	"geonet/internal/obs"
)

// Histogram is the shared serving latency histogram — obs.Histogram,
// re-exported so cmd/geoload and the status structs keep their
// spelling. Recording is lock-free and allocation-free (one atomic add
// after a small binary search over a fixed geometric ladder).
type Histogram = obs.Histogram

// HistogramBounds re-exports the histogram's coarse export-bucket
// upper bounds (ns, last bucket overflow); pairs with
// Histogram.Export for full-distribution reporting.
func HistogramBounds() []uint64 { return obs.ExportBounds() }

// maxMappers bounds the per-mapper method counters; snapshots compile
// two mappers today, lookups under further ones are counted but not
// attributed.
const maxMappers = 4

// ringSeconds sizes the sliding-window QPS ring.
const ringSeconds = 16

type secondCell struct {
	sec atomic.Int64
	n   atomic.Uint64
}

// metrics aggregates the serving counters /statusz reports. All state
// is atomic; Record never blocks and never allocates.
type metrics struct {
	total   atomic.Uint64
	methods [maxMappers][numMethods]atomic.Uint64
	lat     Histogram
	ring    [ringSeconds]secondCell
}

func (m *metrics) record(mapper int, code method, d time.Duration, now time.Time) {
	m.total.Add(1)
	if mapper >= 0 && mapper < maxMappers {
		m.methods[mapper][code].Add(1)
	}
	m.lat.Record(d)
	m.ringAdd(now, 1)
}

// recordBatch folds one shard sub-batch into the metrics: n lookups
// with per-method counts accumulated locally by the caller, entering
// the latency histogram at the sub-batch's per-lookup average.
func (m *metrics) recordBatch(mapper int, counts *[numMethods]uint32, n uint64, elapsed time.Duration, now time.Time) {
	if n == 0 {
		return
	}
	m.total.Add(n)
	if mapper >= 0 && mapper < maxMappers {
		for code := range counts {
			if c := counts[code]; c > 0 {
				m.methods[mapper][code].Add(uint64(c))
			}
		}
	}
	m.lat.RecordN(elapsed/time.Duration(n), n)
	m.ringAdd(now, n)
}

func (m *metrics) ringAdd(now time.Time, n uint64) {
	s := now.Unix()
	c := &m.ring[uint64(s)%ringSeconds]
	if old := c.sec.Load(); old != s {
		if c.sec.CompareAndSwap(old, s) {
			c.n.Store(0)
		}
	}
	c.n.Add(n)
}

// windowQPS sums the ring over the last complete `window` seconds
// (excluding the in-progress second) and averages.
func (m *metrics) windowQPS(now time.Time, window int) float64 {
	if window <= 0 || window > ringSeconds-2 {
		window = ringSeconds - 2
	}
	nowSec := now.Unix()
	var n uint64
	for i := range m.ring {
		sec := m.ring[i].sec.Load()
		if sec >= nowSec-int64(window) && sec < nowSec {
			n += m.ring[i].n.Load()
		}
	}
	return float64(n) / float64(window)
}

// register exposes the serving counters as Prometheus families on reg.
// Registration order is fixed (mapper-major, method-minor) so the
// exposition — and the golden test pinning it — is deterministic. Safe
// to call again after a hot swap: the registry replaces series in
// place, keeping the scrape's family shape stable across epochs.
func (m *metrics) register(reg *obs.Registry, mappers []string) {
	reg.CounterFunc("geoserve_requests_total",
		"Lookups served across all mappers.", nil, m.total.Load)
	for mi, mapper := range mappers {
		if mi >= maxMappers {
			break
		}
		for code := method(0); code < numMethods; code++ {
			name := methodNames[code]
			if name == "" {
				name = "unmapped"
			}
			cell := &m.methods[mi][code]
			reg.CounterFunc("geoserve_lookups_total",
				"Lookups by mapper and resolution method.",
				obs.Labels{{Key: "mapper", Value: mapper}, {Key: "method", Value: name}},
				cell.Load)
		}
	}
	reg.RegisterHistogram("geoserve_lookup_latency_seconds",
		"Per-lookup serving latency.", nil, &m.lat)
	reg.GaugeFunc("geoserve_window_qps",
		"Lookups per second over the trailing complete-seconds window.", nil,
		func() float64 { return m.windowQPS(time.Now(), 0) })
}

// MethodCounts reports per-mapper lookup counts keyed by method name;
// misses are keyed "unmapped".
type MethodCounts map[string]map[string]uint64

// Status is one /statusz observation of the engine.
type Status struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Lookups       uint64  `json:"lookups"`
	// QPSWindow averages over the trailing ~14 complete seconds;
	// QPSLifetime over the whole uptime.
	QPSWindow   float64 `json:"qps_window"`
	QPSLifetime float64 `json:"qps_lifetime"`
	// Latency quantiles in nanoseconds (bucketed, ~25% resolution).
	LatencyP50Ns int64 `json:"latency_p50_ns"`
	LatencyP90Ns int64 `json:"latency_p90_ns"`
	LatencyP99Ns int64 `json:"latency_p99_ns"`
	// Methods maps mapper name -> method (or "unmapped") -> count.
	Methods MethodCounts `json:"methods"`

	Snapshot SnapshotInfo `json:"snapshot"`
}

// SnapshotInfo summarises the currently published snapshot.
type SnapshotInfo struct {
	Digest     string    `json:"digest"`
	Build      BuildInfo `json:"build"`
	Mappers    []string  `json:"mappers"`
	Prefixes   int       `json:"prefixes"`
	ExactIPs   int       `json:"exact_ips"`
	Footprints int       `json:"footprints"`
	// Swaps counts hot-swaps since the engine started (0 = the
	// snapshot the engine was created with).
	Swaps uint64 `json:"swaps"`
}

func makeSnapshotInfo(snap *Snapshot, swaps uint64) SnapshotInfo {
	return SnapshotInfo{
		Digest:     snap.Digest(),
		Build:      snap.Build(),
		Mappers:    snap.Mappers(),
		Prefixes:   snap.NumPrefixes(),
		ExactIPs:   snap.NumExactIPs(),
		Footprints: len(snap.asns),
		Swaps:      swaps,
	}
}

// ShardStatus is one shard's /statusz section: the prefix range it
// owns, its share of the index, and its own serving counters.
type ShardStatus struct {
	ID         int    `json:"id"`
	RangeStart string `json:"range_start"`
	RangeEnd   string `json:"range_end"`
	Prefixes   int    `json:"prefixes"`
	ExactIPs   int    `json:"exact_ips"`
	Lookups    uint64 `json:"lookups"`
	// QPSWindow averages over the trailing ~14 complete seconds.
	QPSWindow    float64 `json:"qps_window"`
	LatencyP50Ns int64   `json:"latency_p50_ns"`
	LatencyP99Ns int64   `json:"latency_p99_ns"`
	// ShedBatches counts batches rejected because this shard's
	// in-flight queue was at budget.
	ShedBatches uint64 `json:"shed_batches"`
	Inflight    int64  `json:"inflight"`
}

// ClusterStatus is one /statusz observation of a sharded cluster:
// coordinator totals (latency quantiles merged across shards, method
// counts aggregated), scatter-gather counters, and a per-shard
// section.
type ClusterStatus struct {
	UptimeSeconds float64 `json:"uptime_seconds"`
	Shards        int     `json:"shards"`
	QueueBudget   int     `json:"queue_budget"`
	Lookups       uint64  `json:"lookups"`
	// Batches counts scatter-gather batch requests; ShedBatches the
	// ones rejected whole under load (HTTP 429); AvgFanout the mean
	// number of shards a served batch touched.
	Batches     uint64 `json:"batches"`
	ShedBatches uint64 `json:"shed_batches"`
	// DeltaSwaps counts epoch swaps published as incremental
	// delta-compiled snapshots; ResplitShards accumulates, across
	// those, the shards each delta actually moved.
	DeltaSwaps    uint64        `json:"delta_swaps,omitempty"`
	ResplitShards uint64        `json:"resplit_shards,omitempty"`
	AvgFanout     float64       `json:"avg_fanout"`
	QPSWindow     float64       `json:"qps_window"`
	QPSLifetime   float64       `json:"qps_lifetime"`
	LatencyP50Ns  int64         `json:"latency_p50_ns"`
	LatencyP90Ns  int64         `json:"latency_p90_ns"`
	LatencyP99Ns  int64         `json:"latency_p99_ns"`
	Methods       MethodCounts  `json:"methods"`
	ShardStats    []ShardStatus `json:"shard_stats"`
	Snapshot      SnapshotInfo  `json:"snapshot"`
}
