package geoserve

import (
	"bytes"
	"errors"
	"flag"
	"io"
	"os"
	"path/filepath"
	"testing"
)

// The -update flag belongs to golden_test.go (package geoserve_test,
// same test binary), so the wire corpus generator takes its own name.
var updateWireCorpus = flag.Bool("update-wire-corpus", false, "regenerate the wire fuzz seed corpus")

// FuzzWireDecode feeds the three wire decoders — batch-request parse,
// one-shot batch-response decode, and the streaming frame reader —
// arbitrary mutations of valid wire bytes (seed corpus under
// testdata/fuzz/*.wire, mirroring FuzzSnapfileLoad). The properties:
// no input panics, and every rejection is a typed wire error (or an
// io error from the stream reader running out of bytes), never an
// untyped failure.
func FuzzWireDecode(f *testing.F) {
	seeds, err := filepath.Glob(filepath.Join("testdata", "fuzz", "*.wire"))
	if err != nil {
		f.Fatal(err)
	}
	if len(seeds) == 0 {
		f.Fatal("no wire seed corpus under testdata/fuzz (regenerate with TestWriteWireFuzzCorpus -update-wire-corpus)")
	}
	for _, path := range seeds {
		data, err := os.ReadFile(path)
		if err != nil {
			f.Fatal(err)
		}
		f.Add(data)
	}
	f.Add([]byte(wireMagic))
	f.Add([]byte{})
	f.Fuzz(func(t *testing.T, data []byte) {
		if _, _, err := parseWireBatchRequest(data, nil); err != nil && !isTypedWireErr(err) {
			t.Fatalf("parseWireBatchRequest: untyped error %v", err)
		}
		if _, _, _, err := DecodeWireBatch(data); err != nil && !isTypedWireErr(err) {
			t.Fatalf("DecodeWireBatch: untyped error %v", err)
		}
		rd, err := NewWireReader(bytes.NewReader(data))
		if err != nil {
			if !isTypedWireErr(err) && !isIOErr(err) {
				t.Fatalf("NewWireReader: untyped error %v", err)
			}
			return
		}
		for {
			if _, _, err := rd.Next(nil); err != nil {
				if err != io.EOF && !isTypedWireErr(err) && !isIOErr(err) {
					t.Fatalf("WireReader.Next: untyped error %v", err)
				}
				return
			}
		}
	})
}

func isTypedWireErr(err error) bool {
	return errors.Is(err, ErrWireMagic) || errors.Is(err, ErrWireVersion) ||
		errors.Is(err, ErrWireFormat) || errors.Is(err, ErrWireOverloaded) ||
		errors.Is(err, ErrWireStream)
}

func isIOErr(err error) bool {
	return errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF)
}

// TestWriteWireFuzzCorpus regenerates the checked-in wire seed corpus
// when run with -update-wire-corpus. The corpus holds one structurally
// complete specimen of each frame kind: a batch request, a served
// batch response, a stream request header with chunks and terminator,
// and a stream response with answer frames and an error frame.
func TestWriteWireFuzzCorpus(t *testing.T) {
	if !*updateWireCorpus {
		t.Skip("run with -update-wire-corpus to regenerate testdata/fuzz/*.wire")
	}
	dir := filepath.Join("testdata", "fuzz")
	if err := os.MkdirAll(dir, 0o755); err != nil {
		t.Fatal(err)
	}
	snap := syntheticSnapshot(10<<24, 9, 2, 0)
	e := NewEngine(snap)
	probes := probeAddrs(snap)

	cases := map[string][]byte{
		"batch_req.wire":  AppendWireBatchRequest(nil, WireMapperDefault, probes),
		"batch_resp.wire": engineWireResponse(t, e, 1, probes),
	}
	streamReq := AppendWireStreamHeader(nil, 0)
	streamReq = AppendWireChunk(streamReq, probes[:3])
	streamReq = AppendWireChunk(streamReq, probes[3:])
	cases["stream_req.wire"] = AppendWireStreamEnd(streamReq)

	resp := engineWireResponse(t, e, 0, probes[:3])
	streamResp := bytes.Clone(resp[:wireHeaderSize])
	streamResp[5] = wireKindStreamResp
	streamResp = append(streamResp, resp[wireHeaderSize:]...)
	streamResp = append(streamResp, resp[wireHeaderSize:]...)
	var errFrame bytes.Buffer
	writeWireErrFrame(&errFrame, wireErrCodeOverloaded, 0)
	cases["stream_resp.wire"] = append(streamResp, errFrame.Bytes()...)

	for name, data := range cases {
		if err := os.WriteFile(filepath.Join(dir, name), data, 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", name, len(data))
	}
}
