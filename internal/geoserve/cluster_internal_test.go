package geoserve

// Internal cluster tests over small synthetic snapshots: the split
// rule, routing, load-shedding and the mid-swap epoch guard are all
// checkable without building a pipeline, so these run in microseconds
// and can reach into the unexported machinery (shard inflight
// counters, half-finished swaps).

import (
	"bytes"
	"encoding/json"
	"errors"
	"fmt"
	"net/http/httptest"
	"strings"
	"testing"

	"geonet/internal/analysis"
	"geonet/internal/geo"
)

// syntheticSnapshot builds a deterministic in-memory snapshot:
// nPrefixes spaced /24s starting at start, two exact addresses in
// every third prefix, and per-mapper entries whose content varies by
// index so distinct snapshots get distinct digests.
func syntheticSnapshot(start uint32, nPrefixes, nMappers int, salt float64) *Snapshot {
	s := &Snapshot{}
	for m := 0; m < nMappers; m++ {
		s.mappers = append(s.mappers, fmt.Sprintf("m%d", m))
	}
	for i := 0; i < nPrefixes; i++ {
		// Spaced, ascending, low byte zero.
		s.prefixes = append(s.prefixes, start+uint32(i)*7*256)
	}
	for i := 0; i < nPrefixes; i += 3 {
		s.ips = append(s.ips, s.prefixes[i]+1, s.prefixes[i]+200)
	}
	mkEntry := func(m, i int, exact bool) entry {
		e := entry{
			loc:      geo.Point{Lat: float64(i%90) + salt, Lon: float64(m*10+i%180) - 90},
			radiusMi: float64(i%50) * 10,
			asn:      int32(1 + i%7),
			method:   method(1 + (m+i)%int(numMethods-1)),
			found:    i%5 != 0,
		}
		if exact {
			e.radiusMi += 1
		}
		return e
	}
	s.prefixAns = make([][]entry, nMappers)
	s.ipAns = make([][]entry, nMappers)
	s.footprints = make([][]analysis.ASFootprint, nMappers)
	for m := 0; m < nMappers; m++ {
		for i := range s.prefixes {
			s.prefixAns[m] = append(s.prefixAns[m], mkEntry(m, i, false))
		}
		for i := range s.ips {
			s.ipAns[m] = append(s.ipAns[m], mkEntry(m, i, true))
		}
	}
	s.digest = s.computeDigest()
	return s
}

// probeAddrs is a deterministic address set exercising every lookup
// path: exact hits, prefix-level answers at both block edges, gaps
// between allocated /24s, and the space below/above the index.
func probeAddrs(s *Snapshot) []uint32 {
	var ps []uint32
	for _, base := range s.prefixes {
		ps = append(ps, base, base+1, base+127, base+255, base+256, base+512)
	}
	ps = append(ps, s.ips...)
	ps = append(ps, 0, 1, s.prefixes[0]-1, 0xF0000001, 0xFFFFFFFF)
	return ps
}

func TestSplitBalancedAndPartitions(t *testing.T) {
	snap := syntheticSnapshot(10<<24, 23, 2, 0)
	for _, n := range []int{1, 2, 3, 8, 23} {
		datas, starts, err := splitSnapshot(snap, n)
		if err != nil {
			t.Fatalf("split %d: %v", n, err)
		}
		if len(datas) != n || len(starts) != n {
			t.Fatalf("split %d: got %d shards", n, len(datas))
		}
		if starts[0] != 0 {
			t.Fatalf("split %d: starts[0] = %d, want 0", n, starts[0])
		}
		totalPrefixes, totalIPs := 0, 0
		for i, d := range datas {
			if d.id != i {
				t.Fatalf("shard %d has id %d", i, d.id)
			}
			// Balance: every shard within one prefix of the ideal cut.
			if lo, hi := len(snap.prefixes)/n, len(snap.prefixes)/n+1; len(d.prefixes) < lo || len(d.prefixes) > hi {
				t.Fatalf("split %d: shard %d owns %d prefixes, want %d or %d", n, i, len(d.prefixes), lo, hi)
			}
			totalPrefixes += len(d.prefixes)
			totalIPs += len(d.ips)
			// Ranges tile the address space contiguously.
			if i > 0 && d.lo != datas[i-1].hi+1 {
				t.Fatalf("split %d: shard %d range starts at %d, prev ends at %d", n, i, d.lo, datas[i-1].hi)
			}
			// Every owned prefix and ip falls inside the shard's range.
			for _, p := range d.prefixes {
				if p < d.lo || p > d.hi {
					t.Fatalf("split %d: shard %d prefix %d outside [%d, %d]", n, i, p, d.lo, d.hi)
				}
			}
			for _, ip := range d.ips {
				if ip < d.lo || ip > d.hi {
					t.Fatalf("split %d: shard %d ip %d outside range", n, i, ip)
				}
			}
		}
		if datas[n-1].hi != 0xFFFFFFFF {
			t.Fatalf("split %d: last shard ends at %d", n, datas[n-1].hi)
		}
		if totalPrefixes != len(snap.prefixes) || totalIPs != len(snap.ips) {
			t.Fatalf("split %d: shards cover %d prefixes / %d ips, want %d / %d",
				n, totalPrefixes, totalIPs, len(snap.prefixes), len(snap.ips))
		}
	}
}

func TestSplitErrors(t *testing.T) {
	snap := syntheticSnapshot(10<<24, 5, 1, 0)
	for _, n := range []int{0, -1, 6, maxShards + 1} {
		if _, _, err := splitSnapshot(snap, n); err == nil {
			t.Errorf("splitSnapshot(%d shards over 5 prefixes) should fail", n)
		}
	}
	if _, err := NewCluster(snap, ClusterConfig{Shards: 9}); err == nil {
		t.Error("NewCluster with more shards than prefixes should fail")
	}
}

// TestClusterMatchesSnapshotSynthetic checks byte-level answer
// equality between the cluster and the raw snapshot for every probe
// address, mapper and shard count — the in-process core of the
// shard-count-invariance golden.
func TestClusterMatchesSnapshotSynthetic(t *testing.T) {
	snap := syntheticSnapshot(10<<24, 23, 2, 0)
	probes := probeAddrs(snap)
	for _, n := range []int{1, 2, 3, 8} {
		c, err := NewCluster(snap, ClusterConfig{Shards: n})
		if err != nil {
			t.Fatal(err)
		}
		for m := range snap.mappers {
			for _, ip := range probes {
				if got, want := c.Lookup(m, ip), snap.Lookup(m, ip); got != want {
					t.Fatalf("shards=%d mapper=%d ip=%d: cluster %+v != snapshot %+v", n, m, ip, got, want)
				}
			}
		}
		// Out-of-range mapper answers the zero-valued miss either way.
		if got, want := c.Lookup(99, probes[0]), snap.Lookup(99, probes[0]); got != want {
			t.Fatalf("shards=%d: bad-mapper answers differ", n)
		}
	}
}

func TestClusterBatchMatchesSingle(t *testing.T) {
	snap := syntheticSnapshot(10<<24, 23, 2, 0)
	probes := probeAddrs(snap)
	c, err := NewCluster(snap, ClusterConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	out := make([]Answer, len(probes))
	digest, err := c.LookupBatch(1, probes, out)
	if err != nil {
		t.Fatal(err)
	}
	if digest != snap.Digest() {
		t.Fatalf("batch digest %s != snapshot %s", digest, snap.Digest())
	}
	for i, ip := range probes {
		if want := snap.Lookup(1, ip); out[i] != want {
			t.Fatalf("batch[%d] = %+v, want %+v", i, out[i], want)
		}
	}
	// Named resolution path.
	if _, ok, _ := c.LocateBatch("nope", probes[:2], out[:2]); ok {
		t.Fatal("unknown mapper accepted")
	}
	if _, ok, err := c.LocateBatch("m0", probes[:2], out[:2]); !ok || err != nil {
		t.Fatalf("LocateBatch(m0) = %v, %v", ok, err)
	}
	if _, err := c.LookupBatch(0, probes, out[:1]); err == nil {
		t.Fatal("short out buffer accepted")
	}
	// Empty batches are a no-op, not a panic.
	if digest, err := c.LookupBatch(0, nil, nil); err != nil || digest != snap.Digest() {
		t.Fatalf("empty batch: %s, %v", digest, err)
	}
}

// TestClusterShed pins the load-shedding policy: a batch touching a
// shard whose in-flight queue is at budget is rejected whole (no
// partial work), the shard and coordinator count the shed, and
// releasing the queue restores service.
func TestClusterShed(t *testing.T) {
	snap := syntheticSnapshot(10<<24, 23, 1, 0)
	c, err := NewCluster(snap, ClusterConfig{Shards: 3, QueueBudget: 2})
	if err != nil {
		t.Fatal(err)
	}
	probes := probeAddrs(snap) // spans all shards
	out := make([]Answer, len(probes))

	// Saturate shard 1's queue.
	c.shards[1].inflight.Store(2)
	if _, err := c.LookupBatch(0, probes, out); !errors.Is(err, ErrOverloaded) {
		t.Fatalf("expected ErrOverloaded, got %v", err)
	}
	if got := c.shards[1].st.shed.Load(); got != 1 {
		t.Fatalf("shard 1 shed = %d, want 1", got)
	}
	if got := c.Status().ShedBatches; got != 1 {
		t.Fatalf("coordinator sheds = %d, want 1", got)
	}
	// All-or-nothing: the other shards' reservations were rolled back.
	for i, sh := range c.shards {
		if i != 1 && sh.inflight.Load() != 0 {
			t.Fatalf("shard %d inflight = %d after shed, want 0", i, sh.inflight.Load())
		}
	}
	// A batch owned entirely by un-saturated shards still serves.
	owned := c.shards[0].data.Load()
	if _, err := c.LookupBatch(0, owned.ips[:2], out[:2]); err != nil {
		t.Fatalf("shard-0-only batch shed: %v", err)
	}

	// Release the queue: full batches serve again.
	c.shards[1].inflight.Store(0)
	if _, err := c.LookupBatch(0, probes, out); err != nil {
		t.Fatalf("post-release batch failed: %v", err)
	}
	if got := c.Status().Batches; got != 3 {
		t.Fatalf("batches = %d, want 3", got)
	}
}

// TestClusterHTTP429 drives the shed path through the HTTP layer: a
// saturated shard answers 429 with a JSON error body, and the shed
// shows in /statusz's per-shard section.
func TestClusterHTTP429(t *testing.T) {
	snap := syntheticSnapshot(10<<24, 23, 1, 0)
	c, err := NewCluster(snap, ClusterConfig{Shards: 3, QueueBudget: 1})
	if err != nil {
		t.Fatal(err)
	}
	h := NewClusterHandler(c)
	c.shards[0].inflight.Store(1)

	var ips []string
	for _, base := range snap.prefixes {
		ips = append(ips, FormatIPv4(base+9))
	}
	body, _ := json.Marshal(map[string]any{"ips": ips})
	w := httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("POST", "/v1/locate/batch", bytes.NewReader(body)))
	if w.Code != 429 {
		t.Fatalf("status %d, want 429: %s", w.Code, w.Body)
	}
	var resp struct {
		Error string `json:"error"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil || resp.Error == "" {
		t.Fatalf("429 body is not a JSON error: %q (%v)", w.Body, err)
	}
	if !strings.Contains(resp.Error, "overloaded") {
		t.Fatalf("429 error %q does not mention overload", resp.Error)
	}

	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/statusz", nil))
	var st ClusterStatus
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Shards != 3 || len(st.ShardStats) != 3 {
		t.Fatalf("statusz shards = %d/%d, want 3/3", st.Shards, len(st.ShardStats))
	}
	if st.ShardStats[0].ShedBatches != 1 || st.ShedBatches != 1 {
		t.Fatalf("shed counters not in statusz: %+v", st.ShardStats[0])
	}
	// Single lookups on the saturated shard still serve (shedding is a
	// batch-queue policy, not a read lock).
	w = httptest.NewRecorder()
	h.ServeHTTP(w, httptest.NewRequest("GET", "/v1/locate?ip="+FormatIPv4(snap.prefixes[0]+9), nil))
	if w.Code != 200 {
		t.Fatalf("single lookup during saturation: status %d", w.Code)
	}
}

// TestMidSwapEpochGuard freezes a shard-by-shard swap halfway and
// checks the guard: batches serve wholly from the still-published old
// epoch, and every single lookup's answer equals one of the two live
// snapshots' answers for that address — never a third value blended
// from both.
func TestMidSwapEpochGuard(t *testing.T) {
	// Different start, spacing and salt: disjoint topologies and
	// distinct digests, so a blend would be visible.
	snapA := syntheticSnapshot(10<<24, 23, 2, 0)
	snapB := syntheticSnapshot(11<<24, 17, 2, 0.5)
	if snapA.Digest() == snapB.Digest() {
		t.Fatal("test snapshots collide")
	}
	c, err := NewCluster(snapA, ClusterConfig{Shards: 3})
	if err != nil {
		t.Fatal(err)
	}

	// Freeze a half-finished swap: shard 0 and 1 already hold B's
	// splits, shard 2 and the published view still hold A.
	datasB, _, err := splitSnapshot(snapB, 3)
	if err != nil {
		t.Fatal(err)
	}
	c.shards[0].data.Store(datasB[0])
	c.shards[1].data.Store(datasB[1])

	probes := append(probeAddrs(snapA), probeAddrs(snapB)...)
	for m := 0; m < 2; m++ {
		// Batches: one epoch, the still-published A.
		out := make([]Answer, len(probes))
		digest, err := c.LookupBatch(m, probes, out)
		if err != nil {
			t.Fatal(err)
		}
		if digest != snapA.Digest() {
			t.Fatalf("mid-swap batch digest %s, want old epoch %s", digest, snapA.Digest())
		}
		for i, ip := range probes {
			if want := snapA.Lookup(m, ip); out[i] != want {
				t.Fatalf("mid-swap batch[%d] = %+v, want old-epoch %+v", i, out[i], want)
			}
		}
		// Singles: each answer is wholly from one of the two epochs.
		for _, ip := range probes {
			got := c.Lookup(m, ip)
			if a, b := snapA.Lookup(m, ip), snapB.Lookup(m, ip); got != a && got != b {
				t.Fatalf("mid-swap single answer %+v matches neither epoch (A %+v, B %+v)", got, a, b)
			}
		}
	}

	// Complete the swap: batches flip to B's epoch atomically.
	old, err := c.Swap(snapB)
	if err != nil {
		t.Fatal(err)
	}
	if old != snapA {
		t.Fatal("Swap did not return the previous snapshot")
	}
	out := make([]Answer, len(probes))
	digest, err := c.LookupBatch(0, probes, out)
	if err != nil {
		t.Fatal(err)
	}
	if digest != snapB.Digest() {
		t.Fatalf("post-swap digest %s, want %s", digest, snapB.Digest())
	}
	for i, ip := range probes {
		if want := snapB.Lookup(0, ip); out[i] != want {
			t.Fatalf("post-swap batch[%d] = %+v, want %+v", i, out[i], want)
		}
	}
	if got := c.Status().Snapshot.Swaps; got != 1 {
		t.Fatalf("swaps = %d, want 1", got)
	}
}

// TestClusterStatusShape sanity-checks the per-shard statusz sections
// against the split.
func TestClusterStatusShape(t *testing.T) {
	snap := syntheticSnapshot(10<<24, 23, 2, 0)
	c, err := NewCluster(snap, ClusterConfig{Shards: 4})
	if err != nil {
		t.Fatal(err)
	}
	for _, ip := range probeAddrs(snap) {
		c.Lookup(0, ip)
	}
	out := make([]Answer, len(snap.ips))
	if _, err := c.LookupBatch(1, snap.ips, out); err != nil {
		t.Fatal(err)
	}
	st := c.Status()
	if st.Shards != 4 || st.QueueBudget != DefaultQueueBudget {
		t.Fatalf("bad status header: %+v", st)
	}
	var lookups uint64
	prefixes, ips := 0, 0
	for i, ss := range st.ShardStats {
		lookups += ss.Lookups
		prefixes += ss.Prefixes
		ips += ss.ExactIPs
		if ss.ID != i || ss.Inflight != 0 {
			t.Fatalf("bad shard stat %+v", ss)
		}
	}
	if lookups != st.Lookups || st.Lookups == 0 {
		t.Fatalf("per-shard lookups sum %d != total %d", lookups, st.Lookups)
	}
	if prefixes != snap.NumPrefixes() || ips != snap.NumExactIPs() {
		t.Fatalf("per-shard index sizes %d/%d != snapshot %d/%d",
			prefixes, ips, snap.NumPrefixes(), snap.NumExactIPs())
	}
	if st.Batches != 1 || st.AvgFanout < 1 {
		t.Fatalf("batch counters: %+v", st)
	}
	var attributed uint64
	for _, counts := range st.Methods {
		for _, n := range counts {
			attributed += n
		}
	}
	if attributed != st.Lookups {
		t.Fatalf("method counts sum %d != lookups %d", attributed, st.Lookups)
	}
}
