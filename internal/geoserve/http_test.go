package geoserve_test

import (
	"bytes"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"geonet/internal/geoserve"
)

func serveReq(h http.Handler, method, target string, body []byte) *httptest.ResponseRecorder {
	var r *http.Request
	if body != nil {
		r = httptest.NewRequest(method, target, bytes.NewReader(body))
	} else {
		r = httptest.NewRequest(method, target, nil)
	}
	w := httptest.NewRecorder()
	h.ServeHTTP(w, r)
	return w
}

func TestHTTPLocate(t *testing.T) {
	p, snap := fixture(t)
	h := geoserve.NewHandler(geoserve.NewEngine(snap))
	ip := publicIfaceIPs(p)[0]

	w := serveReq(h, "GET", "/v1/locate?ip="+geoserve.FormatIPv4(ip), nil)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		IP     string  `json:"ip"`
		Mapper string  `json:"mapper"`
		Found  bool    `json:"found"`
		Exact  bool    `json:"exact"`
		Lat    float64 `json:"lat"`
		Lon    float64 `json:"lon"`
		Method string  `json:"method"`
		ASN    int     `json:"asn"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.IP != geoserve.FormatIPv4(ip) || resp.Mapper != "ixmapper" || !resp.Exact {
		t.Fatalf("bad response %+v", resp)
	}
	want := snap.Lookup(0, ip)
	if resp.Found != want.Found || resp.Method != want.Method || resp.ASN != want.ASN {
		t.Fatalf("response %+v != snapshot answer %+v", resp, want)
	}

	// Explicit mapper selection.
	w = serveReq(h, "GET", "/v1/locate?ip="+geoserve.FormatIPv4(ip)+"&mapper=edgescape", nil)
	if w.Code != 200 || !strings.Contains(w.Body.String(), `"mapper":"edgescape"`) {
		t.Fatalf("edgescape select failed: %d %s", w.Code, w.Body)
	}

	// Errors.
	if w = serveReq(h, "GET", "/v1/locate?ip=not-an-ip", nil); w.Code != 400 {
		t.Fatalf("bad ip: status %d", w.Code)
	}
	if w = serveReq(h, "GET", "/v1/locate", nil); w.Code != 400 {
		t.Fatalf("missing ip: status %d", w.Code)
	}
	if w = serveReq(h, "GET", "/v1/locate?ip=1.2.3.4&mapper=nope", nil); w.Code != 400 {
		t.Fatalf("unknown mapper: status %d", w.Code)
	}
}

func TestHTTPLocateBatch(t *testing.T) {
	p, snap := fixture(t)
	h := geoserve.NewHandler(geoserve.NewEngine(snap))
	ips := publicIfaceIPs(p)

	var strs []string
	for _, ip := range ips[:10] {
		strs = append(strs, geoserve.FormatIPv4(ip))
	}
	body, _ := json.Marshal(map[string]any{"mapper": "edgescape", "ips": strs})
	w := serveReq(h, "POST", "/v1/locate/batch", body)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		Mapper  string `json:"mapper"`
		Results []struct {
			IP    string `json:"ip"`
			Found bool   `json:"found"`
		} `json:"results"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Mapper != "edgescape" || len(resp.Results) != 10 {
		t.Fatalf("bad batch response %+v", resp)
	}
	for i, r := range resp.Results {
		if r.IP != strs[i] {
			t.Fatalf("result %d for %q, want %q", i, r.IP, strs[i])
		}
	}

	// Over-limit and malformed batches.
	big := make([]string, geoserve.MaxBatch+1)
	for i := range big {
		big[i] = "1.2.3.4"
	}
	body, _ = json.Marshal(map[string]any{"ips": big})
	if w = serveReq(h, "POST", "/v1/locate/batch", body); w.Code != 400 {
		t.Fatalf("oversized batch: status %d", w.Code)
	}
	if w = serveReq(h, "POST", "/v1/locate/batch", []byte(`{"ips":[]}`)); w.Code != 400 {
		t.Fatalf("empty batch: status %d", w.Code)
	}
	if w = serveReq(h, "POST", "/v1/locate/batch", []byte(`{`)); w.Code != 400 {
		t.Fatalf("malformed body: status %d", w.Code)
	}
	if w = serveReq(h, "POST", "/v1/locate/batch", []byte(`{"ips":["999.1.1.1"]}`)); w.Code != 400 {
		t.Fatalf("bad batch ip: status %d", w.Code)
	}

	// Boundary hardening: a body over the byte cap answers 413 instead
	// of being slurped, and bytes after the batch object answer 400
	// instead of being silently ignored.
	huge := append([]byte(`{"ips":["1.2.3.4"],"pad":"`), bytes.Repeat([]byte{'x'}, 1<<20)...)
	huge = append(huge, `"}`...)
	if w = serveReq(h, "POST", "/v1/locate/batch", huge); w.Code != 413 {
		t.Fatalf("over-cap body: status %d, want 413", w.Code)
	}
	for _, trailer := range []string{`{"ips":["1.2.3.4"]}{"ips":["5.6.7.8"]}`, `{"ips":["1.2.3.4"]}garbage`} {
		if w = serveReq(h, "POST", "/v1/locate/batch", []byte(trailer)); w.Code != 400 {
			t.Fatalf("trailing data %q: status %d, want 400", trailer, w.Code)
		}
	}
	// Trailing whitespace stays legal.
	if w = serveReq(h, "POST", "/v1/locate/batch", []byte(`{"ips":["1.2.3.4"]}`+"\n  \n")); w.Code != 200 {
		t.Fatalf("trailing whitespace: status %d, want 200: %s", w.Code, w.Body)
	}
}

func TestHTTPFootprint(t *testing.T) {
	p, snap := fixture(t)
	h := geoserve.NewHandler(geoserve.NewEngine(snap))

	// Find an AS with a footprint under some mapper.
	asn := 0
	for _, ip := range publicIfaceIPs(p) {
		a := snap.Lookup(0, ip)
		if a.ASN != 0 {
			if _, ok := snap.Footprint(0, a.ASN); ok {
				asn = a.ASN
				break
			}
		}
	}
	if asn == 0 {
		t.Fatal("no footprinted AS found")
	}
	w := serveReq(h, "GET", fmt.Sprintf("/v1/as/%d/footprint", asn), nil)
	if w.Code != 200 {
		t.Fatalf("status %d: %s", w.Code, w.Body)
	}
	var resp struct {
		ASN     int `json:"asn"`
		Mappers map[string]struct {
			Interfaces int     `json:"interfaces"`
			RadiusMi   float64 `json:"radius_mi"`
		} `json:"mappers"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.ASN != asn || len(resp.Mappers) == 0 {
		t.Fatalf("bad footprint response %+v", resp)
	}
	fp, _ := snap.Footprint(0, asn)
	if got := resp.Mappers["ixmapper"]; got.Interfaces != fp.Interfaces || got.RadiusMi != fp.RadiusMi {
		t.Fatalf("ixmapper footprint %+v != snapshot %+v", got, fp)
	}

	if w = serveReq(h, "GET", "/v1/as/999999999/footprint", nil); w.Code != 404 {
		t.Fatalf("unknown AS: status %d", w.Code)
	}
	if w = serveReq(h, "GET", "/v1/as/zero/footprint", nil); w.Code != 400 {
		t.Fatalf("bad AS: status %d", w.Code)
	}
}

func TestHTTPHealthAndStatus(t *testing.T) {
	p, snap := fixture(t)
	e := geoserve.NewEngine(snap)
	h := geoserve.NewHandler(e)

	w := serveReq(h, "GET", "/healthz", nil)
	if w.Code != 200 || !strings.Contains(w.Body.String(), snap.Digest()) {
		t.Fatalf("healthz: %d %s", w.Code, w.Body)
	}

	// Drive some traffic, then read statusz.
	ips := publicIfaceIPs(p)
	for _, ip := range ips[:50] {
		e.Lookup(0, ip)
	}
	e.Lookup(0, 0xF0000001) // miss
	w = serveReq(h, "GET", "/statusz", nil)
	if w.Code != 200 {
		t.Fatalf("statusz: %d", w.Code)
	}
	var st geoserve.Status
	if err := json.Unmarshal(w.Body.Bytes(), &st); err != nil {
		t.Fatal(err)
	}
	if st.Lookups != 51 {
		t.Fatalf("lookups = %d, want 51", st.Lookups)
	}
	var attributed uint64
	for _, counts := range st.Methods {
		for _, n := range counts {
			attributed += n
		}
	}
	if attributed != 51 {
		t.Fatalf("method counts sum to %d, want 51", attributed)
	}
	if st.Snapshot.Digest != snap.Digest() || st.Snapshot.Prefixes != snap.NumPrefixes() {
		t.Fatalf("statusz snapshot info mismatch: %+v", st.Snapshot)
	}
	if st.LatencyP50Ns <= 0 || st.LatencyP99Ns < st.LatencyP50Ns {
		t.Fatalf("implausible latency quantiles: p50=%d p99=%d", st.LatencyP50Ns, st.LatencyP99Ns)
	}
}

func TestHTTPPrefixes(t *testing.T) {
	_, snap := fixture(t)
	h := geoserve.NewHandler(geoserve.NewEngine(snap))
	w := serveReq(h, "GET", "/v1/prefixes", nil)
	if w.Code != 200 {
		t.Fatalf("status %d", w.Code)
	}
	var resp struct {
		Count    int      `json:"count"`
		Prefixes []string `json:"prefixes"`
	}
	if err := json.Unmarshal(w.Body.Bytes(), &resp); err != nil {
		t.Fatal(err)
	}
	if resp.Count != snap.NumPrefixes() || len(resp.Prefixes) != resp.Count {
		t.Fatalf("prefix count %d, want %d", resp.Count, snap.NumPrefixes())
	}
	if !strings.HasSuffix(resp.Prefixes[0], "/24") {
		t.Fatalf("bad prefix form %q", resp.Prefixes[0])
	}
}
