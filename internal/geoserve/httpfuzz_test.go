package geoserve_test

// Fuzzing the geoserve HTTP boundary: arbitrary query parameters and
// batch bodies must never panic the handlers, malformed input must
// always answer 4xx with a JSON error body, and — the differential
// twist — the unsharded engine and a sharded cluster must answer every
// input, valid or hostile, with byte-identical status and body. Seed
// corpora live under testdata/fuzz.

import (
	"bytes"
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"net/url"
	"sync"
	"testing"

	"geonet/internal/geoserve"
)

var (
	fuzzOnce    sync.Once
	fuzzEngine  http.Handler
	fuzzCluster http.Handler
)

// fuzzHandlers builds one engine handler and one 3-shard cluster
// handler over the shared fixture snapshot.
func fuzzHandlers(tb testing.TB) (engine, cluster http.Handler) {
	tb.Helper()
	_, snap := fixture(tb)
	fuzzOnce.Do(func() {
		fuzzEngine = geoserve.NewHandler(geoserve.NewEngine(snap))
		c, err := geoserve.NewCluster(snap, geoserve.ClusterConfig{Shards: 3})
		if err != nil {
			panic(err)
		}
		fuzzCluster = geoserve.NewClusterHandler(c)
	})
	return fuzzEngine, fuzzCluster
}

// checkBoundary serves one request against both handlers and asserts
// the shared contract: status is 200 or 4xx (never 5xx), every
// non-200 body is a JSON object with a non-empty "error", every 200
// body is valid JSON, and the two serving modes agree byte-for-byte.
func checkBoundary(t *testing.T, mkReq func() *http.Request) {
	t.Helper()
	eng, clu := fuzzHandlers(t)
	we := httptest.NewRecorder()
	eng.ServeHTTP(we, mkReq())
	wc := httptest.NewRecorder()
	clu.ServeHTTP(wc, mkReq())

	if we.Code != wc.Code || !bytes.Equal(we.Body.Bytes(), wc.Body.Bytes()) {
		t.Fatalf("engine and cluster disagree: %d %q vs %d %q",
			we.Code, we.Body, wc.Code, wc.Body)
	}
	if we.Code != http.StatusOK && (we.Code < 400 || we.Code >= 500) {
		t.Fatalf("status %d, want 200 or 4xx: %q", we.Code, we.Body)
	}
	if we.Code != http.StatusOK {
		var resp struct {
			Error string `json:"error"`
		}
		if err := json.Unmarshal(we.Body.Bytes(), &resp); err != nil || resp.Error == "" {
			t.Fatalf("%d body is not a JSON error: %q (%v)", we.Code, we.Body, err)
		}
		return
	}
	var any json.RawMessage
	if err := json.Unmarshal(we.Body.Bytes(), &any); err != nil {
		t.Fatalf("200 body is not JSON: %q (%v)", we.Body, err)
	}
}

func FuzzLocateQuery(f *testing.F) {
	f.Add("1.2.3.4", "")
	f.Add("4.0.27.16", "ixmapper")
	f.Add("240.0.0.1", "edgescape")
	f.Add("", "")
	f.Add("999.999.999.999", "zzz")
	f.Add("1.2.3.4.5", "ixmapper")
	f.Add("01112.1.1.1", "")
	f.Add("1.2.3.4 ", "IXMAPPER")
	f.Add("\x00\xff", "mapper&ip=1.2.3.4")
	f.Fuzz(func(t *testing.T, ipStr, mapper string) {
		q := url.Values{"ip": {ipStr}, "mapper": {mapper}}.Encode()
		checkBoundary(t, func() *http.Request {
			return httptest.NewRequest("GET", "/v1/locate?"+q, nil)
		})
	})
}

func FuzzBatchBody(f *testing.F) {
	f.Add([]byte(`{"ips":["1.2.3.4","4.0.27.16"]}`))
	f.Add([]byte(`{"mapper":"edgescape","ips":["240.0.0.1"]}`))
	f.Add([]byte(`{"mapper":"zzz","ips":["1.2.3.4"]}`))
	f.Add([]byte(`{"ips":[]}`))
	f.Add([]byte(`{"ips":["999.1.1.1"]}`))
	f.Add([]byte(`{`))
	f.Add([]byte(`{}`))
	f.Add([]byte(`null`))
	f.Add([]byte(`[]`))
	f.Add([]byte(`{"ips":[42]}`))
	f.Add([]byte(`{"ips":"1.2.3.4"}`))
	f.Add([]byte("\x00"))
	f.Fuzz(func(t *testing.T, body []byte) {
		checkBoundary(t, func() *http.Request {
			return httptest.NewRequest("POST", "/v1/locate/batch", bytes.NewReader(body))
		})
	})
}
