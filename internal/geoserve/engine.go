package geoserve

import (
	"sync/atomic"
	"time"

	"geonet/internal/obs"
)

// Engine publishes a Snapshot for lock-free concurrent reads and
// hot-swaps to new snapshots without pausing readers: the snapshot
// pointer is atomic, snapshots are immutable, and in-flight lookups
// finish against whichever snapshot they loaded. It also keeps the
// serving metrics /statusz reports.
type Engine struct {
	snap  atomic.Pointer[Snapshot]
	swaps atomic.Uint64
	start time.Time
	m     *metrics
}

// NewEngine starts serving the given snapshot.
func NewEngine(s *Snapshot) *Engine {
	e := &Engine{start: time.Now(), m: &metrics{}}
	e.snap.Store(s)
	return e
}

// NewEngineFrom starts serving snapshot s while carrying forward the
// serving metrics and uptime of prev — the epoch-swap constructor: a
// replica installing a new epoch gets a fresh engine whose counters,
// latency histogram and swap count continue the previous epoch's, so
// scrapes and /statusz never reset across syncs. A nil prev is
// equivalent to NewEngine.
func NewEngineFrom(s *Snapshot, prev *Engine) *Engine {
	if prev == nil {
		return NewEngine(s)
	}
	e := &Engine{start: prev.start, m: prev.m}
	e.swaps.Store(prev.swaps.Load() + 1)
	e.snap.Store(s)
	return e
}

// registerMetrics exposes the engine's serving families on reg.
func (e *Engine) registerMetrics(reg *obs.Registry) {
	e.m.register(reg, e.snap.Load().Mappers())
	reg.CounterFunc("geoserve_snapshot_swaps_total",
		"Snapshot hot-swaps since the serving metrics were created.", nil,
		e.swaps.Load)
}

// Snapshot returns the currently published snapshot.
func (e *Engine) Snapshot() *Snapshot { return e.snap.Load() }

// Swap publishes a new snapshot and returns the previous one. Readers
// racing with the swap serve consistently from one snapshot or the
// other; nothing blocks.
func (e *Engine) Swap(s *Snapshot) *Snapshot {
	old := e.snap.Swap(s)
	e.swaps.Add(1)
	return old
}

// Lookup answers one address under the mapper with the given index on
// the current snapshot, recording latency and method metrics. This is
// the in-process hot path: it allocates nothing.
func (e *Engine) Lookup(mapper int, ip uint32) Answer {
	start := time.Now()
	a, code := e.snap.Load().lookup(mapper, ip)
	e.m.record(mapper, code, time.Since(start), start)
	return a
}

// Locate resolves a mapper by name on the current snapshot and
// answers; ok=false for an unknown mapper (an empty name selects the
// first mapper). Name resolution and lookup use the same snapshot
// load, so a concurrent hot-swap cannot split them.
func (e *Engine) Locate(mapperName string, ip uint32) (Answer, bool) {
	start := time.Now()
	snap := e.snap.Load()
	idx := 0
	if mapperName != "" {
		var ok bool
		if idx, ok = snap.MapperIndex(mapperName); !ok {
			return Answer{IP: ip}, false
		}
	}
	a, code := snap.lookup(idx, ip)
	e.m.record(idx, code, time.Since(start), start)
	return a, true
}

// serveWire answers ips as fixed-width wire answers written at their
// positions in out (WireAnswerSize bytes each), all from one snapshot
// load, resolving the wire mapper id on that same snapshot (ok=false
// when it doesn't). Each answer is one slab copy; the batch records
// into metrics as one fold, like the cluster's sub-batches.
func (e *Engine) serveWire(mapperID uint16, ips []uint32, out []byte, _ *obs.Trace) (*Snapshot, bool, error) {
	t0 := time.Now()
	snap := e.snap.Load()
	idx, ok := snap.wireMapperIndex(mapperID)
	if !ok {
		return snap, false, nil
	}
	w := snap.wire()
	var counts [numMethods]uint32
	for i, ip := range ips {
		code := snap.wireAnswer(w, idx, ip, out[i*WireAnswerSize:])
		counts[code]++
	}
	e.m.recordBatch(idx, &counts, uint64(len(ips)), time.Since(t0), t0)
	return snap, true, nil
}

// locateTail is the preserialized JSON single-lookup path: it resolves
// the mapper by name and returns the snapshot's cached response tail
// for ip's answer row, recording the lookup exactly like Locate.
func (e *Engine) locateTail(mapperName string, ip uint32) ([]byte, bool) {
	start := time.Now()
	snap := e.snap.Load()
	idx := 0
	if mapperName != "" {
		var ok bool
		if idx, ok = snap.MapperIndex(mapperName); !ok {
			return nil, false
		}
	}
	row := snap.lookupRow(ip)
	tail := snap.jsonTail(idx, row)
	e.m.record(idx, snap.rowMethod(idx, row), time.Since(start), start)
	return tail, true
}

// Status reports the engine's serving metrics and the published
// snapshot's identity.
func (e *Engine) Status() Status {
	now := time.Now()
	snap := e.snap.Load()
	uptime := now.Sub(e.start).Seconds()
	st := Status{
		UptimeSeconds: uptime,
		Lookups:       e.m.total.Load(),
		QPSWindow:     e.m.windowQPS(now, 0),
		LatencyP50Ns:  int64(e.m.lat.Quantile(0.50)),
		LatencyP90Ns:  int64(e.m.lat.Quantile(0.90)),
		LatencyP99Ns:  int64(e.m.lat.Quantile(0.99)),
		Methods:       MethodCounts{},
		Snapshot:      e.snapshotInfo(snap),
	}
	if uptime > 0 {
		st.QPSLifetime = float64(st.Lookups) / uptime
	}
	for mi, name := range snap.mappers {
		if mi >= maxMappers {
			break
		}
		counts := map[string]uint64{}
		for code := method(0); code < numMethods; code++ {
			n := e.m.methods[mi][code].Load()
			if n == 0 {
				continue
			}
			key := methodNames[code]
			if code == methodNone {
				key = "unmapped"
			}
			counts[key] = n
		}
		if len(counts) > 0 {
			st.Methods[name] = counts
		}
	}
	return st
}

func (e *Engine) snapshotInfo(snap *Snapshot) SnapshotInfo {
	return makeSnapshotInfo(snap, e.swaps.Load())
}
