package geoserve_test

import (
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geonet/internal/core"
	"geonet/internal/geoserve"
)

var update = flag.Bool("update", false, "rewrite the golden serving transcript")

// goldenTranscript renders a fixed probe set through the full HTTP
// stack: every response byte lands in the transcript, so any drift in
// snapshot content, answer semantics or wire format fails the
// comparison.
func goldenTranscript(snap *geoserve.Snapshot, h http.Handler, p *core.Pipeline) string {
	var b strings.Builder
	fmt.Fprintf(&b, "digest %s\n", snap.Digest())

	ips := publicIfaceIPs(p)
	var probes []string
	for _, ip := range []uint32{ips[0], ips[1], ips[len(ips)/2], ips[len(ips)-1]} {
		probes = append(probes, geoserve.FormatIPv4(ip))
	}
	// Two prefix-level (generic host) addresses and one guaranteed
	// miss (class E is never allocated).
	prefixes := snap.Prefixes()
	for _, base := range []uint32{prefixes[0], prefixes[len(prefixes)/2]} {
		for off := uint32(255); ; off-- {
			if _, taken := p.Internet.ByIP[base+off]; !taken {
				probes = append(probes, geoserve.FormatIPv4(base+off))
				break
			}
			if off == 0 {
				break
			}
		}
	}
	probes = append(probes, "240.0.0.1")

	for _, mapper := range snap.Mappers() {
		for _, probe := range probes {
			w := httptest.NewRecorder()
			h.ServeHTTP(w, httptest.NewRequest("GET",
				"/v1/locate?ip="+probe+"&mapper="+mapper, nil))
			fmt.Fprintf(&b, "GET /v1/locate?ip=%s&mapper=%s -> %d\n%s", probe, mapper, w.Code, w.Body.String())
		}
	}

	// One footprint body: the origin AS of the first probe.
	if a := snap.Lookup(0, ips[0]); a.ASN != 0 {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET",
			fmt.Sprintf("/v1/as/%d/footprint", a.ASN), nil))
		fmt.Fprintf(&b, "GET /v1/as/%d/footprint -> %d\n%s", a.ASN, w.Code, w.Body.String())
	}
	return b.String()
}

// TestGoldenServing pins the snapshot digest and a fixed set of lookup
// responses byte-for-byte: across Workers settings (compile and
// pipeline parallelism must not move a single byte) and across a
// hot-swap to an identical rebuild. Regenerate with
//
//	go test ./internal/geoserve -run TestGoldenServing -update
func TestGoldenServing(t *testing.T) {
	p, snap1 := fixture(t) // TestConfig: seed 1, scale 0.02, default workers

	// An independent pipeline run at a different worker count must
	// compile to the identical snapshot.
	cfg := core.TestConfig()
	cfg.Workers = 3
	p3, err := core.Run(cfg)
	if err != nil {
		t.Fatal(err)
	}
	snap3, err := p3.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if snap3.Digest() != snap1.Digest() {
		t.Fatalf("digest drifts across Workers: %s != %s", snap3.Digest(), snap1.Digest())
	}

	e := geoserve.NewEngine(snap1)
	h := geoserve.NewHandler(e)
	got := goldenTranscript(snap1, h, p)

	// Hot-swap to the identical rebuild: the transcript must not move
	// a byte.
	e.Swap(snap3)
	afterSwap := goldenTranscript(snap3, h, p)
	if afterSwap != got {
		t.Fatal("transcript changed across hot-swap to an identical rebuild")
	}

	path := filepath.Join("testdata", "golden_serving.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(path, []byte(got), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s (%d bytes)", path, len(got))
		return
	}
	want, err := os.ReadFile(path)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if got != string(want) {
		t.Errorf("serving transcript drifted from %s.\nIf intentional, regenerate with -update and review the diff.\ngot:\n%s", path, got)
	}
}
