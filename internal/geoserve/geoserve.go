// Package geoserve is the online serving layer over the reproduction
// pipeline: it compiles a finished pipeline's geolocation knowledge —
// both Section III-B mappers, the whois registry, DNS LOC, the BGP
// origin table and the per-AS footprints of Section VI — into one
// immutable, flat Snapshot, and answers lookups over it at memory
// speed.
//
// A Snapshot is a sorted /24 interval index over the allocated address
// space. Every known interface address carries an exact precomputed
// answer per mapper; every other address in an allocated /24 falls
// back to that prefix's precomputed prefix-level answer (what the
// mapper says about a generic, PTR-less host in the block); addresses
// outside the allocated space miss. Answers carry the mapped location,
// the method that produced it (feed/hostname/loc/whois), the BGP
// origin AS and a confidence-style radius derived from the origin AS's
// geographic footprint (analysis.Footprints). A lookup is two binary
// searches and allocates nothing.
//
// Snapshots are immutable after Compile, so an Engine publishes one
// through an atomic.Pointer: reads are lock-free and concurrent, and
// when a new pipeline (different seed, scale or ablation) finishes
// building in the background the Engine hot-swaps to its snapshot
// without pausing readers. NewHandler exposes the HTTP API that
// cmd/geoserved serves and cmd/geoload drives: the JSON endpoints,
// plus the binary wire protocol (/v1/locate/bin batches and
// /v1/locate/stream full-duplex chunk streams, driven by geoload
// -wire bin|stream) whose epoch-tagged fixed-width answer frames are
// copied straight out of the snapshot's columnar slabs — see wire.go
// and the wire-protocol section of DESIGN.md.
//
// Above one engine sits the sharded serving cluster: NewCluster splits
// a snapshot into N prefix-range shards — contiguous cuts of the
// sorted /24 interval index balanced by interval count, each shard an
// independently hot-swappable engine with its own metrics and
// in-flight budget. A coordinator routes single lookups to the owning
// shard (still zero allocations) and scatter-gathers batches with
// per-shard sub-batching and load-shedding (a batch touching a shard
// at budget answers 429 instead of queueing unboundedly). Rebuilds
// swap shard by shard behind an epoch guard — batches serve wholly
// from one atomically-published epoch, so an answer set never blends
// two snapshots. For any shard count the cluster serves byte-identical
// answers to the unsharded engine (TestGoldenShardInvariance).
//
// Determinism discipline: Compile parallelizes over per-index result
// slots only, so a snapshot's content — pinned by Digest, a SHA-256
// over every table in the layout — is byte-identical at any worker
// count, and identical rebuilds of the same pipeline swap in with the
// same digest (TestGoldenServing).
//
// Under continuous topology churn (internal/churn) the compile path
// is resumable: CompileDelta recomputes only the /24 intervals whose
// mapper answers could have changed — the step's dirty routes and
// allocations, auto-detected interface churn, footprint radius
// patches — and copies every other row from the previous snapshot,
// producing a snapshot byte-identical (same Digest) to a from-scratch
// Compile of the same source; Cluster.SwapDelta then re-splits only
// the shards owning touched intervals under the same epoch guard. The
// golden churn corpus (churn.TestGoldenChurnCorpus) pins the identity
// at every step, and TestChurnWireChaos races wire batches against a
// live churn stream.
//
// Every handler carries the internal/obs observability layer: serving,
// shard, wire-protocol and epoch-swap metrics exposed in Prometheus
// text form at GET /metrics (deterministic families, labels and bucket
// layouts, pinned by replica.TestGoldenMetricsFamilies), and
// request-scoped tracing at GET /debug/tracez — a request carrying an
// X-Geo-Trace header records per-hop spans (serve.batch, wire.encode,
// shard.serve) into a bounded in-memory ring with a slow-request
// retention bias. Requests without the header pay one header lookup
// and nothing else; the hot paths stay zero-allocation with the full
// observability layer attached (TestLookupZeroAlloc). NewHandler and
// NewClusterHandler mint a fresh obs bundle per handler; the Observed
// variants accept a caller-owned bundle so a replica re-registering
// per installed epoch keeps one continuous scrape.
package geoserve

import (
	"fmt"
	"strconv"

	"geonet/internal/geo"
)

// Answer is one lookup result. It is a plain value (no heap
// references beyond static method-name strings), so the hit path
// allocates nothing.
type Answer struct {
	// IP is the queried address.
	IP uint32
	// Found reports whether the mapper places the address.
	Found bool
	// Exact is true when the answer was precomputed for this specific
	// address (a known interface); false for prefix-level answers.
	Exact bool
	// Loc is the mapped location (zero when !Found).
	Loc geo.Point
	// Method attributes the answer: one of geoloc's Method* constants,
	// or "" when !Found.
	Method string
	// ASN is the BGP origin AS of the covering prefix (0 when the
	// address has no covering route). Known even for unmapped
	// addresses inside allocated space.
	ASN int
	// RadiusMi is the equivalent-circle radius of the origin AS's
	// geographic footprint under this mapper — a confidence-style
	// error bound on Loc (0 when the AS is unknown or has no
	// footprint).
	RadiusMi float64
}

// BuildInfo identifies the pipeline a snapshot was compiled from. It
// is served by /healthz and /statusz but excluded from Digest, so
// snapshot identity is content identity.
type BuildInfo struct {
	Seed  int64   `json:"seed"`
	Scale float64 `json:"scale"`
	// Label optionally names the scenario ("seed1/scale0.02/...").
	Label string `json:"label,omitempty"`
}

// ParseIPv4 parses a dotted-quad IPv4 address.
func ParseIPv4(s string) (uint32, error) {
	var ip uint32
	part, digits, dots := uint32(0), 0, 0
	for i := 0; i < len(s); i++ {
		switch c := s[i]; {
		case c >= '0' && c <= '9':
			part = part*10 + uint32(c-'0')
			digits++
			if digits > 3 || part > 255 {
				return 0, fmt.Errorf("bad IPv4 address %q", s)
			}
		case c == '.':
			if digits == 0 || dots == 3 {
				return 0, fmt.Errorf("bad IPv4 address %q", s)
			}
			ip = ip<<8 | part
			part, digits = 0, 0
			dots++
		default:
			return 0, fmt.Errorf("bad IPv4 address %q", s)
		}
	}
	if dots != 3 || digits == 0 {
		return 0, fmt.Errorf("bad IPv4 address %q", s)
	}
	return ip<<8 | part, nil
}

// FormatIPv4 renders an address in dotted-quad form.
func FormatIPv4(ip uint32) string {
	return fmt.Sprintf("%d.%d.%d.%d", ip>>24, (ip>>16)&0xff, (ip>>8)&0xff, ip&0xff)
}

// appendIPv4 appends the dotted-quad form of ip, allocation-free when
// b has capacity (the JSON single-lookup hot path).
func appendIPv4(b []byte, ip uint32) []byte {
	b = strconv.AppendUint(b, uint64(ip>>24), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64((ip>>16)&0xff), 10)
	b = append(b, '.')
	b = strconv.AppendUint(b, uint64((ip>>8)&0xff), 10)
	b = append(b, '.')
	return strconv.AppendUint(b, uint64(ip&0xff), 10)
}
