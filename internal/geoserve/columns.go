package geoserve

import (
	"fmt"

	"geonet/internal/analysis"
)

// Columns is a Snapshot's complete content flattened into columnar
// slabs: the exchange form between the in-memory snapshot and the
// snapfile binary format. Every answer field is one contiguous slice
// per mapper, rows ordered prefix answers first (one per /24 interval,
// in Prefixes order) then exact answers (one per address, in IPs
// order).
type Columns struct {
	Build   BuildInfo
	Mappers []string

	// Prefixes holds the /24 interval index (ascending, /24-aligned
	// base addresses); IPs the exactly-answered addresses (ascending);
	// ASNs the footprinted AS union (ascending, positive).
	Prefixes []uint32
	IPs      []uint32
	ASNs     []int32

	// Answers[m] holds mapper m's answer columns, each of length
	// len(Prefixes)+len(IPs).
	Answers []AnswerColumns

	// Footprints[m][i] is ASNs[i]'s footprint under mapper m; a zero
	// ASN field marks absence under that mapper.
	Footprints [][]analysis.ASFootprint
}

// AnswerColumns is one mapper's answers in columnar form.
type AnswerColumns struct {
	Lat, Lon, Radius []float64
	ASN              []int32
	Method           []uint8
	Found            []uint8
}

// Columns flattens the snapshot into freshly-allocated columnar slabs;
// mutating the result never touches the snapshot.
func (s *Snapshot) Columns() *Columns {
	c := &Columns{
		Build:    s.build,
		Mappers:  append([]string(nil), s.mappers...),
		Prefixes: append([]uint32(nil), s.prefixes...),
		IPs:      append([]uint32(nil), s.ips...),
		ASNs:     append([]int32(nil), s.asns...),
	}
	rows := len(s.prefixes) + len(s.ips)
	c.Answers = make([]AnswerColumns, len(s.mappers))
	c.Footprints = make([][]analysis.ASFootprint, len(s.mappers))
	for m := range s.mappers {
		a := AnswerColumns{
			Lat:    make([]float64, rows),
			Lon:    make([]float64, rows),
			Radius: make([]float64, rows),
			ASN:    make([]int32, rows),
			Method: make([]uint8, rows),
			Found:  make([]uint8, rows),
		}
		put := func(row int, e *entry) {
			a.Lat[row] = e.loc.Lat
			a.Lon[row] = e.loc.Lon
			a.Radius[row] = e.radiusMi
			a.ASN[row] = e.asn
			a.Method[row] = uint8(e.method)
			if e.found {
				a.Found[row] = 1
			}
		}
		for i := range s.prefixAns[m] {
			put(i, &s.prefixAns[m][i])
		}
		for i := range s.ipAns[m] {
			put(len(s.prefixes)+i, &s.ipAns[m][i])
		}
		c.Answers[m] = a
		c.Footprints[m] = append([]analysis.ASFootprint(nil), s.footprints[m]...)
	}
	return c
}

// FromColumns reassembles a Snapshot from columnar slabs, validating
// every structural invariant a lookup relies on — lengths, sort order,
// alignment, method-code range — and recomputing the content digest
// from scratch (it is never trusted from the caller). The columns are
// retained, so callers must not mutate them afterwards; snapfile.Load
// hands over freshly-parsed slabs.
func FromColumns(c *Columns) (*Snapshot, error) {
	if len(c.Mappers) == 0 {
		return nil, fmt.Errorf("geoserve: columns with no mappers")
	}
	for i, name := range c.Mappers {
		if name == "" {
			return nil, fmt.Errorf("geoserve: empty mapper name")
		}
		for _, seen := range c.Mappers[:i] {
			if seen == name {
				return nil, fmt.Errorf("geoserve: duplicate mapper %q", name)
			}
		}
	}
	if len(c.Answers) != len(c.Mappers) || len(c.Footprints) != len(c.Mappers) {
		return nil, fmt.Errorf("geoserve: %d mappers but %d answer tables, %d footprint tables",
			len(c.Mappers), len(c.Answers), len(c.Footprints))
	}
	for i, p := range c.Prefixes {
		if p&0xff != 0 {
			return nil, fmt.Errorf("geoserve: prefix %d not /24-aligned", p)
		}
		if i > 0 && c.Prefixes[i-1] >= p {
			return nil, fmt.Errorf("geoserve: prefix index not strictly ascending at %d", i)
		}
	}
	for i := 1; i < len(c.IPs); i++ {
		if c.IPs[i-1] >= c.IPs[i] {
			return nil, fmt.Errorf("geoserve: exact-address index not strictly ascending at %d", i)
		}
	}
	for i, asn := range c.ASNs {
		if asn <= 0 {
			return nil, fmt.Errorf("geoserve: non-positive footprint ASN %d", asn)
		}
		if i > 0 && c.ASNs[i-1] >= asn {
			return nil, fmt.Errorf("geoserve: ASN index not strictly ascending at %d", i)
		}
	}

	rows := len(c.Prefixes) + len(c.IPs)
	s := &Snapshot{
		build:      c.Build,
		mappers:    c.Mappers,
		prefixes:   c.Prefixes,
		ips:        c.IPs,
		asns:       c.ASNs,
		prefixAns:  make([][]entry, len(c.Mappers)),
		ipAns:      make([][]entry, len(c.Mappers)),
		footprints: c.Footprints,
	}
	for m := range c.Mappers {
		a := &c.Answers[m]
		if len(a.Lat) != rows || len(a.Lon) != rows || len(a.Radius) != rows ||
			len(a.ASN) != rows || len(a.Method) != rows || len(a.Found) != rows {
			return nil, fmt.Errorf("geoserve: mapper %d answer columns don't all have %d rows", m, rows)
		}
		if len(c.Footprints[m]) != len(c.ASNs) {
			return nil, fmt.Errorf("geoserve: mapper %d has %d footprints for %d ASNs",
				m, len(c.Footprints[m]), len(c.ASNs))
		}
		for i, fp := range c.Footprints[m] {
			if fp.ASN != 0 && int32(fp.ASN) != c.ASNs[i] {
				return nil, fmt.Errorf("geoserve: mapper %d footprint %d has ASN %d, want 0 or %d",
					m, i, fp.ASN, c.ASNs[i])
			}
		}
		ans := make([]entry, rows)
		for i := 0; i < rows; i++ {
			code := a.Method[i]
			if code >= uint8(numMethods) {
				return nil, fmt.Errorf("geoserve: mapper %d row %d has method code %d out of range", m, i, code)
			}
			found := a.Found[i]
			if found > 1 {
				return nil, fmt.Errorf("geoserve: mapper %d row %d has found flag %d", m, i, found)
			}
			if (found == 1) != (code != uint8(methodNone)) {
				return nil, fmt.Errorf("geoserve: mapper %d row %d has found=%d but method code %d", m, i, found, code)
			}
			e := &ans[i]
			e.loc.Lat = a.Lat[i]
			e.loc.Lon = a.Lon[i]
			e.radiusMi = a.Radius[i]
			e.asn = a.ASN[i]
			e.method = method(code)
			e.found = found == 1
		}
		s.prefixAns[m] = ans[:len(c.Prefixes):len(c.Prefixes)]
		s.ipAns[m] = ans[len(c.Prefixes):]
	}
	s.digest = s.computeDigest()
	return s, nil
}
