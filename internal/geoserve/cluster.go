package geoserve

import (
	"errors"
	"fmt"
	"slices"
	"strconv"
	"sync"
	"sync/atomic"
	"time"

	"geonet/internal/obs"
)

// ErrOverloaded is returned (wrapped) by batch lookups when an owning
// shard's in-flight queue is at budget; the HTTP layer maps it to 429.
var ErrOverloaded = errors.New("geoserve: cluster overloaded")

// DefaultQueueBudget is the per-shard in-flight batch budget when
// ClusterConfig leaves it zero.
const DefaultQueueBudget = 64

// ClusterConfig sizes a serving cluster.
type ClusterConfig struct {
	// Shards is the number of prefix-range shards (>= 1). The sorted
	// /24 interval index is cut into Shards contiguous runs balanced by
	// interval count.
	Shards int
	// QueueBudget caps each shard's in-flight batch tasks; a batch
	// touching a shard already at budget is shed whole (ErrOverloaded,
	// HTTP 429) rather than queued without bound. <= 0 means
	// DefaultQueueBudget.
	QueueBudget int
}

// clusterView is one epoch of the cluster: a snapshot, its routing
// table and its per-shard splits, published together through one
// atomic pointer. A batch serves entirely from one view, so
// scatter-gathered answer sets can never blend two epochs even while a
// shard-by-shard swap is in progress.
type clusterView struct {
	snap   *Snapshot
	starts []uint32
	datas  []*shardData
}

// Cluster is the sharded serving engine: a coordinator that routes
// single lookups to the owning prefix-range shard and scatter-gathers
// batches across shards, each shard an independently hot-swappable
// engine with its own metrics and load-shedding budget. For any shard
// count a Cluster serves byte-identical answers to an unsharded Engine
// over the same snapshot (the shard-count-invariance golden pins
// this).
type Cluster struct {
	shards  []*Shard
	view    atomic.Pointer[clusterView]
	cm      *clusterMetrics
	budget  int
	scratch sync.Pool // *batchScratch
}

// clusterMetrics is the carryable accounting of a serving cluster —
// everything that must survive the cluster being rebuilt for a new
// epoch (NewClusterFrom hands it to the replacement, exactly like
// NewEngineFrom carries an engine's metrics struct), separated from
// the per-epoch routing state that must not.
type clusterMetrics struct {
	swaps   atomic.Uint64
	batches atomic.Uint64
	// shedBatches counts whole batches rejected because some owning
	// shard was at budget; the shards' own counters attribute them.
	shedBatches atomic.Uint64
	// fanout accumulates the number of shard sub-batches scattered, so
	// Status can report the average scatter width.
	fanout atomic.Uint64
	// deltaSwaps counts epoch swaps that arrived as incremental
	// delta-compiled snapshots (SwapDelta); resplitShards accumulates,
	// across those swaps, the number of shards whose content the delta
	// actually moved.
	deltaSwaps    atomic.Uint64
	resplitShards atomic.Uint64
	start         time.Time
	shardStates   []*shardState
}

func newClusterMetrics(shards int) *clusterMetrics {
	cm := &clusterMetrics{start: time.Now()}
	cm.shardStates = make([]*shardState, shards)
	for i := range cm.shardStates {
		cm.shardStates[i] = &shardState{}
	}
	return cm
}

// batchScratch is pooled per-request scatter state: the owning shard
// of every address in the batch plus the distinct shards involved.
type batchScratch struct {
	shardOf  []uint8
	involved []int
}

// NewCluster splits the snapshot into cfg.Shards prefix-range shards
// and starts serving. It fails if the snapshot has fewer /24 intervals
// than shards (a shard must own at least one interval for routing cuts
// to stay distinct).
func NewCluster(snap *Snapshot, cfg ClusterConfig) (*Cluster, error) {
	return NewClusterFrom(snap, cfg, nil)
}

// NewClusterFrom builds a cluster serving snap that carries prev's
// accounting forward: coordinator counters, uptime origin and every
// shard's metrics continue, and the swap count advances by one — so a
// replica installing each epoch as a fresh cluster still reports one
// continuous serving history (scrape continuity, like NewEngineFrom).
// If prev is nil, or its shard count differs from cfg's (the counters
// would no longer attribute to the same shard cuts), the accounting
// starts fresh.
func NewClusterFrom(snap *Snapshot, cfg ClusterConfig, prev *Cluster) (*Cluster, error) {
	datas, starts, err := splitSnapshot(snap, cfg.Shards)
	if err != nil {
		return nil, err
	}
	budget := cfg.QueueBudget
	if budget <= 0 {
		budget = DefaultQueueBudget
	}
	c := &Cluster{budget: budget}
	if prev != nil && len(prev.shards) == len(datas) {
		c.cm = prev.cm
		c.cm.swaps.Add(1)
	} else {
		c.cm = newClusterMetrics(len(datas))
	}
	c.shards = make([]*Shard, len(datas))
	for i, d := range datas {
		sh := &Shard{budget: int64(budget), st: c.cm.shardStates[i]}
		sh.data.Store(d)
		c.shards[i] = sh
	}
	c.view.Store(&clusterView{snap: snap, starts: starts, datas: datas})
	return c, nil
}

// NumShards reports the cluster's shard count.
func (c *Cluster) NumShards() int { return len(c.shards) }

// QueueBudget reports the effective per-shard in-flight batch budget.
func (c *Cluster) QueueBudget() int { return c.budget }

// Snapshot returns the snapshot of the currently published epoch.
func (c *Cluster) Snapshot() *Snapshot { return c.view.Load().snap }

// Swap rebuilds the cluster onto a new snapshot: the new per-shard
// splits are stored shard by shard (single lookups migrate
// incrementally, each shard atomically), then the complete new epoch
// is published for the batch path. Readers never pause, and a batch in
// flight keeps serving its whole answer set from the epoch it loaded.
// Returns the previously published snapshot.
func (c *Cluster) Swap(snap *Snapshot) (*Snapshot, error) {
	datas, starts, err := splitSnapshot(snap, len(c.shards))
	if err != nil {
		return nil, err
	}
	for i, sh := range c.shards {
		sh.data.Store(datas[i])
	}
	old := c.view.Swap(&clusterView{snap: snap, starts: starts, datas: datas})
	c.cm.swaps.Add(1)
	return old.snap, nil
}

// SwapDelta publishes a delta-compiled snapshot. When the new
// snapshot's interval index is unchanged (the common churn step:
// answers moved, geometry didn't), every shard keeps its existing cut
// offsets — the per-shard views re-alias the new snapshot's arrays at
// the old cuts with no re-searching — and resplit reports how many
// shards actually owned a touched /24 (CompileDelta's DeltaStats.
// Touched), i.e. how many shards the delta really moved. When the
// index itself changed (allocation growth or reclaim shifted the
// cuts), it falls back to a full re-split of every shard. Either way
// the swap publishes exactly like Swap: shard by shard for single
// lookups, then one atomic view for the batch path, so a batch never
// blends epochs.
func (c *Cluster) SwapDelta(snap *Snapshot, touched []uint32) (old *Snapshot, resplit int, err error) {
	v := c.view.Load()
	var (
		datas  []*shardData
		starts []uint32
	)
	if sameIndex(v.snap, snap) {
		starts = v.starts
		datas = make([]*shardData, len(v.datas))
		for i, od := range v.datas {
			nd := &shardData{
				snap:      snap,
				id:        od.id,
				lo:        od.lo,
				hi:        od.hi,
				prefixes:  snap.prefixes[od.pOff : od.pOff+len(od.prefixes)],
				prefixAns: make([][]entry, len(snap.mappers)),
				ips:       snap.ips[od.ipOff : od.ipOff+len(od.ips)],
				ipAns:     make([][]entry, len(snap.mappers)),
				pOff:      od.pOff,
				ipOff:     od.ipOff,
			}
			for m := range snap.mappers {
				nd.prefixAns[m] = snap.prefixAns[m][od.pOff : od.pOff+len(od.prefixes)]
				nd.ipAns[m] = snap.ipAns[m][od.ipOff : od.ipOff+len(od.ips)]
			}
			datas[i] = nd
		}
		var seen [maxShards]bool
		for _, b := range touched {
			if i := shardIndexOf(starts, b); !seen[i] {
				seen[i] = true
				resplit++
			}
		}
	} else {
		datas, starts, err = splitSnapshot(snap, len(c.shards))
		if err != nil {
			return nil, 0, err
		}
		resplit = len(datas)
	}
	for i, sh := range c.shards {
		sh.data.Store(datas[i])
	}
	ov := c.view.Swap(&clusterView{snap: snap, starts: starts, datas: datas})
	c.cm.swaps.Add(1)
	c.cm.deltaSwaps.Add(1)
	c.cm.resplitShards.Add(uint64(resplit))
	return ov.snap, resplit, nil
}

// sameIndex reports whether two snapshots share an identical interval
// and exact-address index (answers may differ) — the condition under
// which a delta swap can keep the cluster's existing shard cuts.
func sameIndex(a, b *Snapshot) bool {
	return slices.Equal(a.prefixes, b.prefixes) && slices.Equal(a.ips, b.ips)
}

// Lookup answers one address under the mapper with the given index,
// routed to the owning shard (which records the lookup in its own
// metrics). Allocation-free, like Engine.Lookup.
func (c *Cluster) Lookup(mapper int, ip uint32) Answer {
	start := time.Now()
	v := c.view.Load()
	a, code, sh := c.lookupOn(v, mapper, ip)
	sh.st.m.record(mapper, code, time.Since(start), start)
	return a
}

// Locate resolves a mapper by name and answers (empty name selects the
// first mapper); ok=false for an unknown mapper. Resolution, routing
// and lookup all use one view load, so a concurrent swap cannot split
// them.
func (c *Cluster) Locate(mapperName string, ip uint32) (Answer, bool) {
	start := time.Now()
	v := c.view.Load()
	idx := 0
	if mapperName != "" {
		var ok bool
		if idx, ok = v.snap.MapperIndex(mapperName); !ok {
			return Answer{IP: ip}, false
		}
	}
	a, code, sh := c.lookupOn(v, idx, ip)
	sh.st.m.record(idx, code, time.Since(start), start)
	return a, true
}

// lookupOn routes ip on the given view and answers from the owning
// shard's current data. While a swap to a different prefix topology is
// mid-flight a shard's own data may not cover the routed range yet; the
// view's split of the same epoch then serves instead, so every single
// answer is wholly from one of the two live epochs.
func (c *Cluster) lookupOn(v *clusterView, mapper int, ip uint32) (Answer, method, *Shard) {
	i := shardIndexOf(v.starts, ip)
	sh := c.shards[i]
	d := sh.data.Load()
	if !d.owns(ip) {
		d = v.datas[i]
	}
	a, code := d.lookup(mapper, ip)
	return a, code, sh
}

// LookupBatch answers ips[i] into out[i] under the mapper with the
// given index, scatter-gathering per-shard sub-batches: addresses are
// grouped by owning shard, each involved shard serves its group
// concurrently (bounded by its in-flight budget) against one
// epoch-consistent view, and results land at their input positions.
// The returned digest identifies the single snapshot epoch that served
// the whole batch. A wrapped ErrOverloaded means no lookup ran and the
// batch was shed.
func (c *Cluster) LookupBatch(mapper int, ips []uint32, out []Answer) (string, error) {
	if len(out) < len(ips) {
		return "", fmt.Errorf("geoserve: out buffer %d < batch %d", len(out), len(ips))
	}
	v := c.view.Load()
	if err := c.serveBatch(v, mapper, ips, out, nil); err != nil {
		return "", err
	}
	return v.snap.Digest(), nil
}

// LocateBatch is LookupBatch with mapper resolution by name (empty
// selects the first mapper); ok=false for an unknown mapper.
func (c *Cluster) LocateBatch(mapperName string, ips []uint32, out []Answer) (digest string, ok bool, err error) {
	v := c.view.Load()
	idx := 0
	if mapperName != "" {
		if idx, ok = v.snap.MapperIndex(mapperName); !ok {
			return "", false, nil
		}
	}
	if err := c.serveBatch(v, idx, ips, out, nil); err != nil {
		return "", true, err
	}
	return v.snap.Digest(), true, nil
}

func (c *Cluster) serveBatch(v *clusterView, mapper int, ips []uint32, out []Answer, tr *obs.Trace) error {
	return c.scatter(v, ips, tr, func(i int, shardOf []uint8) {
		c.shards[i].serveGroup(v.datas[i], mapper, ips, shardOf, out)
	})
}

// serveWire answers ips as fixed-width wire answers written at their
// positions in out (WireAnswerSize bytes each), resolving the wire
// mapper id and serving the whole batch from one epoch-consistent
// view. ok=false means the id doesn't resolve on that epoch; a wrapped
// ErrOverloaded means the batch was shed whole. Implements the
// backend interface alongside Engine.serveWire.
func (c *Cluster) serveWire(mapperID uint16, ips []uint32, out []byte, tr *obs.Trace) (*Snapshot, bool, error) {
	v := c.view.Load()
	idx, ok := v.snap.wireMapperIndex(mapperID)
	if !ok {
		return v.snap, false, nil
	}
	w := v.snap.wire()
	err := c.scatter(v, ips, tr, func(i int, shardOf []uint8) {
		c.shards[i].serveGroupWire(v.datas[i], w, idx, ips, shardOf, out)
	})
	return v.snap, true, err
}

// scatter groups ips by owning shard on the view, admits the batch
// all-or-nothing against every involved shard's in-flight budget, and
// runs serve(i, shardOf) for each involved shard — concurrently when
// more than one — releasing slots as groups finish. serve implementors
// write only positions j with shardOf[j] == i, so concurrent groups
// stay disjoint.
func (c *Cluster) scatter(v *clusterView, ips []uint32, tr *obs.Trace, serve func(shard int, shardOf []uint8)) error {
	c.cm.batches.Add(1)
	sc, _ := c.scratch.Get().(*batchScratch)
	if sc == nil {
		sc = &batchScratch{}
	}
	if cap(sc.shardOf) < len(ips) {
		sc.shardOf = make([]uint8, len(ips))
	}
	shardOf := sc.shardOf[:len(ips)]
	involved := sc.involved[:0]
	var seen [maxShards]bool
	for j, ip := range ips {
		i := shardIndexOf(v.starts, ip)
		shardOf[j] = uint8(i)
		if !seen[i] {
			seen[i] = true
			involved = append(involved, i)
		}
	}
	sc.involved = involved
	if len(involved) == 0 { // empty batch: nothing to scatter
		c.scratch.Put(sc)
		return nil
	}

	// All-or-nothing admission: reserve a slot on every involved shard
	// before any lookup runs, so a shed batch does no partial work.
	for k, i := range involved {
		if !c.shards[i].tryAcquire() {
			for _, j := range involved[:k] {
				c.shards[j].release()
			}
			c.cm.shedBatches.Add(1)
			c.scratch.Put(sc)
			return fmt.Errorf("%w: shard %d at in-flight budget %d", ErrOverloaded, i, c.budget)
		}
	}
	c.cm.fanout.Add(uint64(len(involved)))

	if len(involved) == 1 {
		i := involved[0]
		scatterServe(tr, serve, i, shardOf)
		c.shards[i].release()
	} else {
		var wg sync.WaitGroup
		for _, i := range involved[1:] {
			wg.Add(1)
			go func(i int) {
				defer wg.Done()
				scatterServe(tr, serve, i, shardOf)
				c.shards[i].release()
			}(i)
		}
		i0 := involved[0]
		scatterServe(tr, serve, i0, shardOf)
		c.shards[i0].release()
		wg.Wait()
	}
	c.scratch.Put(sc)
	return nil
}

// scatterServe runs one shard's sub-batch, recording a shard.serve
// span for traced requests. A top-level function rather than a wrap of
// serve inside scatter so the untraced hot path never mutates (and so
// never heap-boxes) the serve callback.
func scatterServe(tr *obs.Trace, serve func(shard int, shardOf []uint8), i int, shardOf []uint8) {
	if tr == nil {
		serve(i, shardOf)
		return
	}
	t0 := time.Now()
	serve(i, shardOf)
	tr.Span("shard.serve", t0, obs.AInt("shard", i), obs.AInt("batch", len(shardOf)))
}

// locateTail is the cluster side of the preserialized JSON single-
// lookup path: it resolves the mapper by name, routes to the owning
// shard (recording the lookup in that shard's metrics, exactly like
// Locate) and returns the snapshot's cached response tail.
func (c *Cluster) locateTail(mapperName string, ip uint32) ([]byte, bool) {
	start := time.Now()
	v := c.view.Load()
	idx := 0
	if mapperName != "" {
		var ok bool
		if idx, ok = v.snap.MapperIndex(mapperName); !ok {
			return nil, false
		}
	}
	i := shardIndexOf(v.starts, ip)
	sh := c.shards[i]
	d := sh.data.Load()
	if !d.owns(ip) {
		d = v.datas[i]
	}
	row := d.lookupRow(ip)
	tail := d.snap.jsonTail(idx, row)
	sh.st.m.record(idx, d.snap.rowMethod(idx, row), time.Since(start), start)
	return tail, true
}

// registerMetrics exposes the cluster's serving families on reg:
// coordinator totals summed across shards under the same names the
// single-engine handler uses, scatter-gather counters, and a per-shard
// section (latency histogram, lookups, sheds, in-flight) labeled by
// shard index. Scrape-time readers only load atomics; nothing here
// touches the serving hot path.
func (c *Cluster) registerMetrics(reg *obs.Registry) {
	mappers := c.view.Load().snap.Mappers()
	reg.CounterFunc("geoserve_requests_total",
		"Lookups served across all mappers.", nil, func() uint64 {
			var n uint64
			for _, sh := range c.shards {
				n += sh.st.m.total.Load()
			}
			return n
		})
	for mi, mapper := range mappers {
		if mi >= maxMappers {
			break
		}
		for code := method(0); code < numMethods; code++ {
			name := methodNames[code]
			if name == "" {
				name = "unmapped"
			}
			mi, code := mi, code
			reg.CounterFunc("geoserve_lookups_total",
				"Lookups by mapper and resolution method.",
				obs.Labels{{Key: "mapper", Value: mapper}, {Key: "method", Value: name}},
				func() uint64 {
					var n uint64
					for _, sh := range c.shards {
						n += sh.st.m.methods[mi][code].Load()
					}
					return n
				})
		}
	}
	reg.GaugeFunc("geoserve_window_qps",
		"Lookups per second over the trailing complete-seconds window.", nil,
		func() float64 {
			now := time.Now()
			var qps float64
			for _, sh := range c.shards {
				qps += sh.st.m.windowQPS(now, 0)
			}
			return qps
		})
	reg.CounterFunc("geoserve_snapshot_swaps_total",
		"Snapshot hot-swaps since the serving metrics were created.", nil,
		c.cm.swaps.Load)
	reg.CounterFunc("geoserve_cluster_batches_total",
		"Scatter-gather batch requests.", nil, c.cm.batches.Load)
	reg.CounterFunc("geoserve_cluster_shed_batches_total",
		"Batches rejected whole because an owning shard was at budget.", nil,
		c.cm.shedBatches.Load)
	reg.CounterFunc("geoserve_cluster_fanout_total",
		"Shard sub-batches scattered across served batches.", nil,
		c.cm.fanout.Load)
	reg.CounterFunc("geoserve_cluster_delta_swaps_total",
		"Epoch swaps published as incremental delta-compiled snapshots.", nil,
		c.cm.deltaSwaps.Load)
	reg.CounterFunc("geoserve_cluster_resplit_shards_total",
		"Shards whose content a delta swap actually moved.", nil,
		c.cm.resplitShards.Load)
	for i, sh := range c.shards {
		labels := obs.Labels{{Key: "shard", Value: strconv.Itoa(i)}}
		reg.RegisterHistogram("geoserve_lookup_latency_seconds",
			"Per-lookup serving latency.", labels, &sh.st.m.lat)
		reg.CounterFunc("geoserve_shard_lookups_total",
			"Lookups served by shard.", labels, sh.st.m.total.Load)
		reg.CounterFunc("geoserve_shard_shed_total",
			"Batches this shard's budget shed.", labels, sh.st.shed.Load)
		reg.GaugeFunc("geoserve_shard_inflight",
			"In-flight batch tasks on this shard.", labels,
			func() float64 { return float64(sh.inflight.Load()) })
	}
}

// Status reports the coordinator's serving metrics, a per-shard
// section for each shard, and the published epoch's identity.
func (c *Cluster) Status() ClusterStatus {
	now := time.Now()
	v := c.view.Load()
	uptime := now.Sub(c.cm.start).Seconds()
	merged := &Histogram{}
	var (
		lookups uint64
		window  float64
	)
	methods := MethodCounts{}
	stats := make([]ShardStatus, len(c.shards))
	for i, sh := range c.shards {
		d := sh.data.Load()
		merged.Merge(&sh.st.m.lat)
		n := sh.st.m.total.Load()
		lookups += n
		w := sh.st.m.windowQPS(now, 0)
		window += w
		stats[i] = ShardStatus{
			ID:           i,
			RangeStart:   FormatIPv4(d.lo),
			RangeEnd:     FormatIPv4(d.hi),
			Prefixes:     len(d.prefixes),
			ExactIPs:     len(d.ips),
			Lookups:      n,
			QPSWindow:    w,
			LatencyP50Ns: int64(sh.st.m.lat.Quantile(0.50)),
			LatencyP99Ns: int64(sh.st.m.lat.Quantile(0.99)),
			ShedBatches:  sh.st.shed.Load(),
			Inflight:     sh.inflight.Load(),
		}
		for mi, name := range v.snap.mappers {
			if mi >= maxMappers {
				break
			}
			for code := method(0); code < numMethods; code++ {
				n := sh.st.m.methods[mi][code].Load()
				if n == 0 {
					continue
				}
				key := methodNames[code]
				if code == methodNone {
					key = "unmapped"
				}
				if methods[name] == nil {
					methods[name] = map[string]uint64{}
				}
				methods[name][key] += n
			}
		}
	}
	// Shed is loaded before the batch total so a concurrent shed can
	// never make shed > batches and underflow the served count below.
	shed := c.cm.shedBatches.Load()
	batches := c.cm.batches.Load()
	st := ClusterStatus{
		UptimeSeconds: uptime,
		Shards:        len(c.shards),
		QueueBudget:   c.budget,
		Lookups:       lookups,
		Batches:       batches,
		ShedBatches:   shed,
		DeltaSwaps:    c.cm.deltaSwaps.Load(),
		ResplitShards: c.cm.resplitShards.Load(),
		QPSWindow:     window,
		LatencyP50Ns:  int64(merged.Quantile(0.50)),
		LatencyP90Ns:  int64(merged.Quantile(0.90)),
		LatencyP99Ns:  int64(merged.Quantile(0.99)),
		Methods:       methods,
		ShardStats:    stats,
		Snapshot:      makeSnapshotInfo(v.snap, c.cm.swaps.Load()),
	}
	if batches > shed {
		st.AvgFanout = float64(c.cm.fanout.Load()) / float64(batches-shed)
	}
	if uptime > 0 {
		st.QPSLifetime = float64(lookups) / uptime
	}
	return st
}
