package geoserve

import (
	"encoding/binary"
	"encoding/hex"
	"encoding/json"
	"errors"
	"fmt"
	"io"
	"math"
	"sync/atomic"
)

// The binary wire protocol: a compact length-prefixed framing for bulk
// lookups, served at POST /v1/locate/bin (one batch per request) and
// POST /v1/locate/stream (client streams address chunks, server
// streams answer frames). All integers are little-endian.
//
// Every message opens with an 8-byte header:
//
//	[0:4]  magic "geoW"
//	[4]    version (WireVersion)
//	[5]    kind (batch/stream request or response)
//	[6:8]  mapper id: a Snapshot mapper index, or WireMapperDefault in
//	       requests to select the first mapper; responses echo the
//	       resolved index
//
// A batch request follows the header with one address chunk; a stream
// request follows it with any number of chunks and a zero-count
// terminator:
//
//	chunk = count u32 | count × addr u32
//
// A response follows its header with answer frames (one for a batch,
// one per chunk plus a zero-count terminator for a stream):
//
//	frame = count u32 | epoch tag u64 | count × answer
//
// The epoch tag is the first 8 bytes of the serving snapshot's content
// digest; every answer in one frame comes from that single snapshot
// (the cluster's epoch guard), so a reader can detect a hot-swap
// between frames without ever seeing a blended frame. An answer is 36
// bytes — the queried address followed by the 32-byte record copied
// verbatim from the snapshot's precomputed wire slab:
//
//	answer = ip u32 | lat f64 | lon f64 | radius_mi f64 | asn u32 |
//	         flags u8 (bit0 found, bit1 exact) | method u8 | 0 u16
//
// A stream response may end early with an error frame — count
// 0xFFFFFFFF followed by a u32 code — when a chunk is oversized, the
// mapper id stops resolving after a swap, or the cluster sheds the
// chunk at its in-flight budget.
const (
	wireMagic   = "geoW"
	WireVersion = 1

	// WireMapperDefault in a request's mapper field selects the
	// snapshot's first mapper (the request-side analogue of an empty
	// mapper name on the JSON API).
	WireMapperDefault = 0xFFFF

	wireHeaderSize = 8
	wireRecordSize = 32
	// WireAnswerSize is the fixed width of one answer on the wire: the
	// queried address plus its record.
	WireAnswerSize = 4 + wireRecordSize

	wireKindBatchReq   = 1
	wireKindStreamReq  = 2
	wireKindBatchResp  = 3
	wireKindStreamResp = 4

	// wireErrFrame marks an error frame in a stream response; the next
	// u32 is a wireErrCode, optionally flagged with wireErrTraceFlag.
	wireErrFrame = 0xFFFFFFFF

	wireErrCodeOverloaded    = 1
	wireErrCodeBadChunk      = 2
	wireErrCodeUnknownMapper = 3

	// wireErrTraceFlag on an error code means an 8-byte trace ID
	// follows the code — the ID of the request whose failure produced
	// the frame, quotable against the server's /debug/tracez. The flag
	// is only ever set for traced requests, so untraced streams keep
	// the original 8-byte error frame byte-for-byte.
	wireErrTraceFlag = 0x80000000

	// Record field offsets inside the 32-byte record.
	wireOffLat    = 0
	wireOffLon    = 8
	wireOffRadius = 16
	wireOffASN    = 24
	wireOffFlags  = 28
	wireOffMethod = 29

	wireFlagFound = 1 << 0
	wireFlagExact = 1 << 1
)

// WireContentType is the Content-Type of binary wire requests and
// responses.
const WireContentType = "application/x-geoserve-wire"

// Typed wire-decode errors, mirroring snapfile's: every malformed
// input maps to exactly one of these (wrapped with detail), never a
// panic — FuzzWireDecode pins that.
var (
	ErrWireMagic   = errors.New("geoserve: not a wire message (bad magic)")
	ErrWireVersion = errors.New("geoserve: unsupported wire version")
	ErrWireFormat  = errors.New("geoserve: malformed wire message")

	// ErrWireOverloaded is decoded from a stream error frame: the
	// server shed a chunk at its in-flight budget (the streaming
	// analogue of HTTP 429).
	ErrWireOverloaded = errors.New("geoserve: stream shed by overloaded server")
	// ErrWireStream is decoded from any other stream error frame (an
	// oversized chunk, or a mapper id that stopped resolving after a
	// hot-swap).
	ErrWireStream = errors.New("geoserve: stream terminated by server error")
)

func putWireHeader(dst []byte, kind byte, mapper uint16) {
	copy(dst, wireMagic)
	dst[4] = WireVersion
	dst[5] = kind
	binary.LittleEndian.PutUint16(dst[6:], mapper)
}

// parseWireHeader validates an 8-byte message header and returns its
// kind and mapper id.
func parseWireHeader(b []byte) (kind byte, mapper uint16, err error) {
	if len(b) < wireHeaderSize {
		return 0, 0, fmt.Errorf("%w: %d-byte header", ErrWireFormat, len(b))
	}
	if string(b[:4]) != wireMagic {
		return 0, 0, fmt.Errorf("%w: got %q", ErrWireMagic, b[:4])
	}
	if b[4] != WireVersion {
		return 0, 0, fmt.Errorf("%w: got %d, want %d", ErrWireVersion, b[4], WireVersion)
	}
	if b[5] < wireKindBatchReq || b[5] > wireKindStreamResp {
		return 0, 0, fmt.Errorf("%w: unknown kind %d", ErrWireFormat, b[5])
	}
	return b[5], binary.LittleEndian.Uint16(b[6:]), nil
}

// AppendWireBatchRequest encodes a complete /v1/locate/bin request
// body: header plus one address chunk.
func AppendWireBatchRequest(dst []byte, mapper uint16, ips []uint32) []byte {
	dst = appendWireHeader(dst, wireKindBatchReq, mapper)
	return appendWireChunkBody(dst, ips)
}

// AppendWireStreamHeader encodes the opening header of a
// /v1/locate/stream request; follow it with AppendWireChunk calls and
// a final AppendWireStreamEnd.
func AppendWireStreamHeader(dst []byte, mapper uint16) []byte {
	return appendWireHeader(dst, wireKindStreamReq, mapper)
}

// AppendWireChunk encodes one address chunk of a stream request.
func AppendWireChunk(dst []byte, ips []uint32) []byte {
	return appendWireChunkBody(dst, ips)
}

// AppendWireStreamEnd encodes the zero-count chunk that cleanly
// terminates a stream request.
func AppendWireStreamEnd(dst []byte) []byte {
	return binary.LittleEndian.AppendUint32(dst, 0)
}

func appendWireHeader(dst []byte, kind byte, mapper uint16) []byte {
	var h [wireHeaderSize]byte
	putWireHeader(h[:], kind, mapper)
	return append(dst, h[:]...)
}

func appendWireChunkBody(dst []byte, ips []uint32) []byte {
	dst = binary.LittleEndian.AppendUint32(dst, uint32(len(ips)))
	for _, ip := range ips {
		dst = binary.LittleEndian.AppendUint32(dst, ip)
	}
	return dst
}

// parseWireBatchRequest decodes a complete batch request body. The
// addresses are appended to ips (reusing its capacity), so the serving
// hot path never allocates once scratch buffers are warm.
func parseWireBatchRequest(body []byte, ips []uint32) (mapper uint16, _ []uint32, err error) {
	kind, mapper, err := parseWireHeader(body)
	if err != nil {
		return 0, ips, err
	}
	if kind != wireKindBatchReq {
		return 0, ips, fmt.Errorf("%w: kind %d is not a batch request", ErrWireFormat, kind)
	}
	rest := body[wireHeaderSize:]
	if len(rest) < 4 {
		return 0, ips, fmt.Errorf("%w: truncated chunk count", ErrWireFormat)
	}
	n := binary.LittleEndian.Uint32(rest)
	if n == 0 {
		return 0, ips, fmt.Errorf("%w: empty batch", ErrWireFormat)
	}
	if n > MaxBatch {
		return 0, ips, fmt.Errorf("%w: batch of %d exceeds limit %d", ErrWireFormat, n, MaxBatch)
	}
	rest = rest[4:]
	if len(rest) != int(n)*4 {
		return 0, ips, fmt.Errorf("%w: %d addresses need %d bytes, have %d", ErrWireFormat, n, n*4, len(rest))
	}
	for i := 0; i < int(n); i++ {
		ips = append(ips, binary.LittleEndian.Uint32(rest[i*4:]))
	}
	return mapper, ips, nil
}

// decodeWireAnswer decodes one 36-byte answer, validating every field
// so a corrupt frame surfaces as ErrWireFormat rather than a nonsense
// Answer.
func decodeWireAnswer(b []byte) (Answer, error) {
	if len(b) < WireAnswerSize {
		return Answer{}, fmt.Errorf("%w: %d-byte answer", ErrWireFormat, len(b))
	}
	flags := b[4+wireOffFlags]
	code := b[4+wireOffMethod]
	if flags&^(wireFlagFound|wireFlagExact) != 0 {
		return Answer{}, fmt.Errorf("%w: unknown answer flags %#x", ErrWireFormat, flags)
	}
	if code >= uint8(numMethods) {
		return Answer{}, fmt.Errorf("%w: method code %d out of range", ErrWireFormat, code)
	}
	if b[4+wireOffMethod+1] != 0 || b[4+wireOffMethod+2] != 0 {
		return Answer{}, fmt.Errorf("%w: nonzero reserved bytes", ErrWireFormat)
	}
	a := Answer{
		IP:       binary.LittleEndian.Uint32(b),
		Found:    flags&wireFlagFound != 0,
		Exact:    flags&wireFlagExact != 0,
		Method:   methodNames[code],
		ASN:      int(int32(binary.LittleEndian.Uint32(b[4+wireOffASN:]))),
		RadiusMi: f64frombits(b[4+wireOffRadius:]),
	}
	a.Loc.Lat = f64frombits(b[4+wireOffLat:])
	a.Loc.Lon = f64frombits(b[4+wireOffLon:])
	return a, nil
}

// WireReader decodes a binary wire response — the single frame of a
// /v1/locate/bin reply or the frame sequence of a /v1/locate/stream
// reply — from any io.Reader.
type WireReader struct {
	r        io.Reader
	mapper   uint16
	buf      []byte
	errTrace uint64
}

// ErrTraceID reports the trace ID carried by the last decoded error
// frame (0 when the frame was untraced or no error frame has been
// read). Render it with obs.TraceID for the server's /debug/tracez.
func (wr *WireReader) ErrTraceID() uint64 { return wr.errTrace }

// NewWireReader reads and validates the response header; the returned
// reader yields answer frames via Next.
func NewWireReader(r io.Reader) (*WireReader, error) {
	var hdr [wireHeaderSize]byte
	if _, err := io.ReadFull(r, hdr[:]); err != nil {
		return nil, fmt.Errorf("%w: truncated header: %v", ErrWireFormat, err)
	}
	kind, mapper, err := parseWireHeader(hdr[:])
	if err != nil {
		return nil, err
	}
	if kind != wireKindBatchResp && kind != wireKindStreamResp {
		return nil, fmt.Errorf("%w: kind %d is not a response", ErrWireFormat, kind)
	}
	return &WireReader{r: r, mapper: mapper}, nil
}

// Mapper reports the resolved mapper index echoed by the server.
func (wr *WireReader) Mapper() uint16 { return wr.mapper }

// Next reads one answer frame, appending its answers to out. It
// returns io.EOF at a clean end of the response (a stream terminator
// frame, or the end of a batch reply); a stream error frame surfaces
// as ErrWireOverloaded or ErrWireStream, any malformed data as a
// wrapped ErrWire* error.
func (wr *WireReader) Next(out []Answer) (_ []Answer, tag uint64, err error) {
	var pre [12]byte
	if _, err := io.ReadFull(wr.r, pre[:4]); err != nil {
		if err == io.EOF {
			return out, 0, io.EOF
		}
		return out, 0, fmt.Errorf("%w: truncated frame count: %v", ErrWireFormat, err)
	}
	n := binary.LittleEndian.Uint32(pre[:4])
	switch {
	case n == 0:
		return out, 0, io.EOF
	case n == wireErrFrame:
		if _, err := io.ReadFull(wr.r, pre[:4]); err != nil {
			return out, 0, fmt.Errorf("%w: truncated error frame: %v", ErrWireFormat, err)
		}
		code := binary.LittleEndian.Uint32(pre[:4])
		if code&wireErrTraceFlag != 0 {
			code &^= wireErrTraceFlag
			if _, err := io.ReadFull(wr.r, pre[4:12]); err != nil {
				return out, 0, fmt.Errorf("%w: truncated error-frame trace id: %v", ErrWireFormat, err)
			}
			wr.errTrace = binary.LittleEndian.Uint64(pre[4:12])
		}
		switch code {
		case wireErrCodeOverloaded:
			return out, 0, ErrWireOverloaded
		default:
			return out, 0, fmt.Errorf("%w (code %d)", ErrWireStream, code)
		}
	case n > MaxBatch:
		return out, 0, fmt.Errorf("%w: frame of %d exceeds limit %d", ErrWireFormat, n, MaxBatch)
	}
	if _, err := io.ReadFull(wr.r, pre[4:12]); err != nil {
		return out, 0, fmt.Errorf("%w: truncated epoch tag: %v", ErrWireFormat, err)
	}
	tag = binary.LittleEndian.Uint64(pre[4:12])
	need := int(n) * WireAnswerSize
	if cap(wr.buf) < need {
		wr.buf = make([]byte, need)
	}
	buf := wr.buf[:need]
	if _, err := io.ReadFull(wr.r, buf); err != nil {
		return out, 0, fmt.Errorf("%w: truncated answers: %v", ErrWireFormat, err)
	}
	for i := 0; i < int(n); i++ {
		a, err := decodeWireAnswer(buf[i*WireAnswerSize:])
		if err != nil {
			return out, 0, err
		}
		out = append(out, a)
	}
	return out, tag, nil
}

// DecodeWireBatch decodes a complete /v1/locate/bin response: exactly
// one answer frame with no trailing bytes.
func DecodeWireBatch(data []byte) (mapper uint16, tag uint64, answers []Answer, err error) {
	r := &sliceReader{b: data}
	wr, err := NewWireReader(r)
	if err != nil {
		return 0, 0, nil, wireDecodeErr(err)
	}
	answers, tag, err = wr.Next(nil)
	if err != nil {
		return 0, 0, nil, wireDecodeErr(err)
	}
	if len(answers) == 0 {
		return 0, 0, nil, fmt.Errorf("%w: empty batch response", ErrWireFormat)
	}
	if r.off != len(data) {
		return 0, 0, nil, fmt.Errorf("%w: %d trailing bytes", ErrWireFormat, len(data)-r.off)
	}
	return wr.mapper, tag, answers, nil
}

// wireDecodeErr normalizes errors out of the one-shot decode: on an
// in-memory slice an io truncation means a malformed frame, so it maps
// to ErrWireFormat (a live stream reader keeps the io error as-is).
// io.EOF here is a response that ended before its first frame.
func wireDecodeErr(err error) error {
	if errors.Is(err, io.EOF) || errors.Is(err, io.ErrUnexpectedEOF) {
		return fmt.Errorf("%w: truncated response", ErrWireFormat)
	}
	return err
}

// sliceReader is a minimal bytes.Reader that exposes its offset, so
// DecodeWireBatch can reject trailing garbage precisely.
type sliceReader struct {
	b   []byte
	off int
}

func (r *sliceReader) Read(p []byte) (int, error) {
	if r.off >= len(r.b) {
		return 0, io.EOF
	}
	n := copy(p, r.b[r.off:])
	r.off += n
	return n, nil
}

func f64frombits(b []byte) float64 {
	return math.Float64frombits(binary.LittleEndian.Uint64(b))
}

// MarshalAnswerJSON renders an Answer exactly as GET /v1/locate does
// (compact JSON, fixed field order, trailing newline). The wire golden
// uses it to pin that decoded binary answers are byte-equivalent to
// the JSON API's.
func MarshalAnswerJSON(a Answer, mapperName string) []byte {
	b, err := json.Marshal(answerJSON(a, mapperName))
	if err != nil {
		return nil
	}
	return append(b, '\n')
}

// --- Snapshot wire slabs and the preserialized JSON cache ---

// wireState is the lazily-built serving acceleration attached to a
// Snapshot: per-mapper slabs of ready-to-copy 32-byte wire records
// (row order matches Columns: prefix answers, then exact answers), the
// 8-byte epoch tag, and the lazily-filled preserialized JSON response
// tails for the single-lookup path. A snapshot is immutable, so the
// state is built once and the engine's atomic snapshot swap is the
// cache invalidation.
type wireState struct {
	slabs [][]byte
	tag   uint64
	// tails[m*(rows+1)+row+1] caches the /v1/locate response tail
	// (everything after the ip string) for row under mapper m; slot
	// m*(rows+1) is the mapper's miss tail. Filled on first use.
	tails []atomic.Pointer[[]byte]
}

var zeroWireRecord [wireRecordSize]byte

// wire returns the snapshot's wire state, building it on first use.
func (s *Snapshot) wire() *wireState {
	if w := s.wireP.Load(); w != nil {
		return w
	}
	s.wireMu.Lock()
	defer s.wireMu.Unlock()
	if w := s.wireP.Load(); w != nil {
		return w
	}
	rows := len(s.prefixes) + len(s.ips)
	w := &wireState{
		slabs: make([][]byte, len(s.mappers)),
		tails: make([]atomic.Pointer[[]byte], len(s.mappers)*(rows+1)),
	}
	if len(s.digest) >= 16 {
		if raw, err := hex.DecodeString(s.digest[:16]); err == nil {
			w.tag = binary.BigEndian.Uint64(raw)
		}
	}
	for m := range s.mappers {
		slab := make([]byte, rows*wireRecordSize)
		for i := range s.prefixAns[m] {
			putWireRecord(slab[i*wireRecordSize:], &s.prefixAns[m][i], false)
		}
		for i := range s.ipAns[m] {
			putWireRecord(slab[(len(s.prefixes)+i)*wireRecordSize:], &s.ipAns[m][i], true)
		}
		w.slabs[m] = slab
	}
	s.wireP.Store(w)
	return w
}

func putWireRecord(dst []byte, e *entry, exact bool) {
	binary.LittleEndian.PutUint64(dst[wireOffLat:], math.Float64bits(e.loc.Lat))
	binary.LittleEndian.PutUint64(dst[wireOffLon:], math.Float64bits(e.loc.Lon))
	binary.LittleEndian.PutUint64(dst[wireOffRadius:], math.Float64bits(e.radiusMi))
	binary.LittleEndian.PutUint32(dst[wireOffASN:], uint32(e.asn))
	var flags byte
	if e.found {
		flags |= wireFlagFound
	}
	if exact {
		flags |= wireFlagExact
	}
	dst[wireOffFlags] = flags
	dst[wireOffMethod] = uint8(e.method)
	dst[wireOffMethod+1] = 0
	dst[wireOffMethod+2] = 0
}

// wireTag is the epoch tag framed into every answer frame: the first 8
// bytes of the content digest, so two snapshots tag equal iff their
// digests share a prefix (in practice: iff they are the same content).
func (s *Snapshot) wireTag() uint64 { return s.wire().tag }

// wireMapperIndex resolves a request's mapper id on this snapshot.
func (s *Snapshot) wireMapperIndex(id uint16) (int, bool) {
	if id == WireMapperDefault {
		return 0, len(s.mappers) > 0
	}
	if int(id) < len(s.mappers) {
		return int(id), true
	}
	return 0, false
}

// lookupRow locates ip's answer row in the columnar layout: exact rows
// follow the prefix rows (Columns order), -1 is a miss. The row is
// mapper-independent; every mapper's slab shares it.
func (s *Snapshot) lookupRow(ip uint32) int {
	if i, ok := search32(s.ips, ip); ok {
		return len(s.prefixes) + i
	}
	if i, ok := search32(s.prefixes, ip&^0xff); ok {
		return i
	}
	return -1
}

// rowMethod reports the stored method code of (mapper, row) for the
// metrics path; misses and out-of-range mappers count as methodNone.
func (s *Snapshot) rowMethod(mapper, row int) method {
	if row < 0 || mapper < 0 || mapper >= len(s.mappers) {
		return methodNone
	}
	if row < len(s.prefixes) {
		return s.prefixAns[mapper][row].method
	}
	return s.ipAns[mapper][row-len(s.prefixes)].method
}

// wireAnswer writes ip's 36-byte wire answer under mapper at dst and
// returns the answer's method code. The record bytes are one copy out
// of the precomputed slab; a miss copies the static zero record.
func (s *Snapshot) wireAnswer(w *wireState, mapper int, ip uint32, dst []byte) method {
	binary.LittleEndian.PutUint32(dst, ip)
	row := s.lookupRow(ip)
	if row < 0 || mapper < 0 || mapper >= len(s.mappers) {
		copy(dst[4:WireAnswerSize], zeroWireRecord[:])
		return methodNone
	}
	copy(dst[4:WireAnswerSize], w.slabs[mapper][row*wireRecordSize:])
	return method(dst[4+wireOffMethod])
}

// jsonTail returns the preserialized /v1/locate response tail for
// (mapper, row): every byte of the response after the queried address
// string. Tails are built on first use and cached on the snapshot;
// row -1 is the mapper's miss tail.
func (s *Snapshot) jsonTail(mapper, row int) []byte {
	if mapper < 0 || mapper >= len(s.mappers) {
		// No real snapshot serves zero mappers; keep the degenerate
		// case correct without a cache slot.
		return buildJSONTail(Answer{}, "")
	}
	w := s.wire()
	rows := len(s.prefixes) + len(s.ips)
	slot := &w.tails[mapper*(rows+1)+row+1]
	if p := slot.Load(); p != nil {
		return *p
	}
	a := Answer{}
	if row >= 0 {
		if row < len(s.prefixes) {
			a = s.prefixAns[mapper][row].answer(0, false)
		} else {
			a = s.ipAns[mapper][row-len(s.prefixes)].answer(0, true)
		}
	}
	tail := buildJSONTail(a, s.mappers[mapper])
	slot.Store(&tail)
	return tail
}

// buildJSONTail marshals the full /v1/locate response for a with a
// zero address, then cuts everything after the ip string — the cached
// tail is address-independent, so one slot serves every address that
// resolves to the row.
func buildJSONTail(a Answer, mapperName string) []byte {
	a.IP = 0 // renders as "0.0.0.0", length 7
	full := MarshalAnswerJSON(a, mapperName)
	const cut = len(`{"ip":"`) + len("0.0.0.0")
	if len(full) < cut {
		return nil
	}
	return full[cut:]
}
