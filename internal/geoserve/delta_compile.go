package geoserve

import (
	"fmt"
	"slices"
	"sync"

	"geonet/internal/analysis"
	"geonet/internal/parallel"
)

// DeltaStats reports what an incremental compile did with each answer
// row (a row is one /24 interval or one exact interface address; the
// counts are per row, across all mappers).
type DeltaStats struct {
	// Rows is the total number of answer rows in the new snapshot.
	Rows int `json:"rows"`
	// Recompiled rows were answered fresh through the mappers: rows
	// under a dirty /24 plus rows new to the index.
	Recompiled int `json:"recompiled"`
	// Patched rows had only their confidence radius re-derived from a
	// changed AS footprint — no mapper or BGP work.
	Patched int `json:"patched"`
	// Copied rows were carried over from the previous snapshot
	// verbatim.
	Copied int `json:"copied"`
	// Deleted counts previous rows that left the index.
	Deleted int `json:"deleted"`
	// Touched lists, ascending, the /24 base addresses whose answers
	// actually differ from the previous snapshot (including inserted
	// and deleted intervals). Cluster.SwapDelta uses it to count the
	// shards a delta really moved.
	Touched []uint32 `json:"-"`
}

// row-classification ops for CompileDelta's merge passes.
const (
	opCopy uint8 = iota
	opPatch
	opRecompute
)

// CompileDelta incrementally recompiles prev into a new snapshot for a
// churned source, recomputing only the rows whose answers could have
// changed and copying everything else from prev.
//
// The contract: src must differ from the source prev was compiled from
// only in (a) routes and allocations covering the /24s listed in
// dirty, (b) interface addresses added or removed — detected from the
// sources themselves, their /24s join the dirty set automatically (an
// interface appearing or vanishing can shift the block's
// representative "generic host" address) — and (c) AS footprints,
// detected by comparing prev's footprint tables against src's (a
// changed footprint re-derives the radius of every row attributed to
// that AS, with no mapper work). The mappers themselves must be the
// same objects answering identically outside dirty /24s; under that
// contract the result is byte-identical — same Digest — to a
// from-scratch Compile of src (pinned per churn step by the golden
// churn corpus).
func CompileDelta(prev *Snapshot, src Source, dirty []uint32) (*Snapshot, DeltaStats, error) {
	var st DeltaStats
	if prev == nil {
		return nil, st, fmt.Errorf("geoserve: delta compile: nil previous snapshot (use Compile)")
	}
	if src.Internet == nil {
		return nil, st, fmt.Errorf("geoserve: nil Internet")
	}
	if src.Table == nil {
		return nil, st, fmt.Errorf("geoserve: nil BGP table")
	}
	if len(src.Mappers) != len(prev.mappers) {
		return nil, st, fmt.Errorf("geoserve: delta compile: %d mappers, previous snapshot has %d", len(src.Mappers), len(prev.mappers))
	}
	for i, nm := range src.Mappers {
		if nm.Mapper == nil {
			return nil, st, fmt.Errorf("geoserve: nil mapper")
		}
		if name := nm.Mapper.Name(); name != prev.mappers[i] {
			return nil, st, fmt.Errorf("geoserve: delta compile: mapper %d is %q, previous snapshot has %q", i, name, prev.mappers[i])
		}
	}
	workers := parallel.Workers(src.Workers)
	in := src.Internet

	s := &Snapshot{build: src.Build}
	s.mappers = append(s.mappers, prev.mappers...)

	// Rebuild the index skeleton exactly as Compile does — the
	// enumeration is cheap next to mapper calls, and sharing the code
	// path guarantees identical ordering.
	for ai := range in.ASes {
		for _, p := range in.ASes[ai].Prefixes {
			size := uint32(1)
			if p.Len < 32 {
				size = uint32(1) << (32 - uint(p.Len))
			}
			for base := p.Addr; base < p.Addr+size; base += 256 {
				s.prefixes = append(s.prefixes, base)
			}
		}
	}
	slices.Sort(s.prefixes)
	s.prefixes = dedup32(s.prefixes)

	for i := range in.Ifaces {
		if ifc := &in.Ifaces[i]; ifc.IP != 0 && !ifc.Private {
			s.ips = append(s.ips, ifc.IP)
		}
	}
	slices.Sort(s.ips)
	s.ips = dedup32(s.ips)

	// Footprint tables, and the set of ASNs whose footprint changed
	// under any mapper since prev (their rows need a radius patch).
	byASN := make([]map[int]analysis.ASFootprint, len(src.Mappers))
	asnSet := map[int32]struct{}{}
	for m, nm := range src.Mappers {
		byASN[m] = make(map[int]analysis.ASFootprint, len(nm.Footprints))
		for _, fp := range nm.Footprints {
			if fp.ASN <= 0 {
				return nil, st, fmt.Errorf("geoserve: footprint with non-positive ASN %d", fp.ASN)
			}
			byASN[m][fp.ASN] = fp
			asnSet[int32(fp.ASN)] = struct{}{}
		}
	}
	for asn := range asnSet {
		s.asns = append(s.asns, asn)
	}
	slices.Sort(s.asns)
	s.footprints = make([][]analysis.ASFootprint, len(src.Mappers))
	for m := range src.Mappers {
		s.footprints[m] = make([]analysis.ASFootprint, len(s.asns))
		for i, asn := range s.asns {
			s.footprints[m][i] = byASN[m][int(asn)]
		}
	}
	changedASN := map[int32]bool{}
	{
		// Merge prev.asns against s.asns; an ASN present on only one
		// side, or whose footprint differs under any mapper, changed.
		i, j := 0, 0
		for i < len(prev.asns) || j < len(s.asns) {
			switch {
			case j >= len(s.asns) || (i < len(prev.asns) && prev.asns[i] < s.asns[j]):
				changedASN[prev.asns[i]] = true
				i++
			case i >= len(prev.asns) || s.asns[j] < prev.asns[i]:
				changedASN[s.asns[j]] = true
				j++
			default:
				for m := range s.footprints {
					if prev.footprints[m][i] != s.footprints[m][j] {
						changedASN[prev.asns[i]] = true
						break
					}
				}
				i++
				j++
			}
		}
	}

	// The dirty set, normalized to /24 bases. Interface churn joins it
	// here: an address appearing in or leaving the exact index can
	// shift its block's representative generic-host address, so the
	// whole /24 recompiles.
	dirtySet := make(map[uint32]struct{}, len(dirty))
	for _, d := range dirty {
		dirtySet[d&^0xff] = struct{}{}
	}
	{
		i, j := 0, 0
		for i < len(prev.ips) || j < len(s.ips) {
			switch {
			case j >= len(s.ips) || (i < len(prev.ips) && prev.ips[i] < s.ips[j]):
				dirtySet[prev.ips[i]&^0xff] = struct{}{}
				i++
			case i >= len(prev.ips) || s.ips[j] < prev.ips[i]:
				dirtySet[s.ips[j]&^0xff] = struct{}{}
				j++
			default:
				i, j = i+1, j+1
			}
		}
	}

	touched := map[uint32]struct{}{}

	// classify merges prev keys against new keys and assigns each new
	// row an op; deleted prev keys land in touched (their interval's
	// answers changed: they no longer exist).
	classify := func(prevKeys, newKeys []uint32, prevAsnAt func(int) int32, dirtyKey func(uint32) uint32) (ops []uint8, prevIdx []int32) {
		ops = make([]uint8, len(newKeys))
		prevIdx = make([]int32, len(newKeys))
		j := 0
		for i, k := range newKeys {
			for j < len(prevKeys) && prevKeys[j] < k {
				st.Deleted++
				touched[prevKeys[j]&^0xff] = struct{}{}
				j++
			}
			if j < len(prevKeys) && prevKeys[j] == k {
				prevIdx[i] = int32(j)
				if _, d := dirtySet[dirtyKey(k)]; d {
					ops[i] = opRecompute
				} else if changedASN[prevAsnAt(j)] {
					ops[i] = opPatch
				} else {
					ops[i] = opCopy
				}
				j++
			} else {
				prevIdx[i] = -1
				ops[i] = opRecompute
			}
		}
		for ; j < len(prevKeys); j++ {
			st.Deleted++
			touched[prevKeys[j]&^0xff] = struct{}{}
		}
		return ops, prevIdx
	}

	pOps, pPrev := classify(prev.prefixes, s.prefixes,
		func(j int) int32 { return prev.prefixAns[0][j].asn },
		func(k uint32) uint32 { return k })
	ipOps, ipPrev := classify(prev.ips, s.ips,
		func(j int) int32 { return prev.ipAns[0][j].asn },
		func(k uint32) uint32 { return k &^ 0xff })

	// Representative generic-host addresses, only for the prefix rows
	// being recompiled (rep selection walks the interface map — skip it
	// for copied rows, whose reps cannot have moved).
	var pRecomp []int
	for i, op := range pOps {
		if op == opRecompute {
			pRecomp = append(pRecomp, i)
		}
	}
	var ipRecomp []int
	for i, op := range ipOps {
		if op == opRecompute {
			ipRecomp = append(ipRecomp, i)
		}
	}
	reps := make([]uint32, len(pRecomp))
	parallel.ForEach(workers, len(pRecomp), func(k int) {
		base := s.prefixes[pRecomp[k]]
		reps[k] = base
		for off := uint32(255); ; off-- {
			if _, taken := in.ByIP[base+off]; !taken {
				reps[k] = base + off
				break
			}
			if off == 0 {
				break
			}
		}
	})

	s.prefixAns = make([][]entry, len(src.Mappers))
	s.ipAns = make([][]entry, len(src.Mappers))
	var (
		errMu      sync.Mutex
		compileErr error
	)
	setErr := func(err error) {
		errMu.Lock()
		if compileErr == nil {
			compileErr = err
		}
		errMu.Unlock()
	}
	patch := func(e entry, fps map[int]analysis.ASFootprint) entry {
		e.radiusMi = 0
		if fp, ok := fps[int(e.asn)]; ok {
			e.radiusMi = fp.RadiusMi
		}
		return e
	}
	for m, nm := range src.Mappers {
		mapper := nm.Mapper
		prefixAns := make([]entry, len(s.prefixes))
		for i, op := range pOps {
			switch op {
			case opCopy:
				prefixAns[i] = prev.prefixAns[m][pPrev[i]]
			case opPatch:
				prefixAns[i] = patch(prev.prefixAns[m][pPrev[i]], byASN[m])
			}
		}
		parallel.ForEach(workers, len(pRecomp), func(k int) {
			e, err := compileEntry(mapper, src.Table, byASN[m], reps[k])
			if err != nil {
				setErr(err)
			}
			prefixAns[pRecomp[k]] = e
		})
		ipAns := make([]entry, len(s.ips))
		for i, op := range ipOps {
			switch op {
			case opCopy:
				ipAns[i] = prev.ipAns[m][ipPrev[i]]
			case opPatch:
				ipAns[i] = patch(prev.ipAns[m][ipPrev[i]], byASN[m])
			}
		}
		parallel.ForEach(workers, len(ipRecomp), func(k int) {
			e, err := compileEntry(mapper, src.Table, byASN[m], s.ips[ipRecomp[k]])
			if err != nil {
				setErr(err)
			}
			ipAns[ipRecomp[k]] = e
		})
		s.prefixAns[m] = prefixAns
		s.ipAns[m] = ipAns
	}
	if compileErr != nil {
		return nil, st, compileErr
	}

	// Stats + the touched set: a recompiled or patched row only counts
	// as touched if its answers actually differ from prev's.
	rowTouched := func(i int, prevIdx int32, newKey uint32, pa, prevPA [][]entry) {
		if prevIdx < 0 {
			touched[newKey&^0xff] = struct{}{}
			return
		}
		for m := range pa {
			if pa[m][i] != prevPA[m][int(prevIdx)] {
				touched[newKey&^0xff] = struct{}{}
				return
			}
		}
	}
	countOps := func(ops []uint8, prevIdx []int32, keys []uint32, pa, prevPA [][]entry) {
		for i, op := range ops {
			st.Rows++
			switch op {
			case opCopy:
				st.Copied++
			case opPatch:
				st.Patched++
				rowTouched(i, prevIdx[i], keys[i], pa, prevPA)
			case opRecompute:
				st.Recompiled++
				rowTouched(i, prevIdx[i], keys[i], pa, prevPA)
			}
		}
	}
	countOps(pOps, pPrev, s.prefixes, s.prefixAns, prev.prefixAns)
	countOps(ipOps, ipPrev, s.ips, s.ipAns, prev.ipAns)
	st.Touched = make([]uint32, 0, len(touched))
	for b := range touched {
		st.Touched = append(st.Touched, b)
	}
	slices.Sort(st.Touched)

	// Identity is content identity: the digest hashes every table in
	// full, so a delta compile that drifted from the from-scratch
	// result is caught by any digest comparison downstream.
	s.digest = s.computeDigest()
	return s, st, nil
}
