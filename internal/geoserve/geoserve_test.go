package geoserve_test

import (
	"sync"
	"testing"

	"geonet/internal/analysis"
	"geonet/internal/core"
	"geonet/internal/geoloc"
	"geonet/internal/geoserve"
)

var (
	fixOnce sync.Once
	fixPipe *core.Pipeline
	fixSnap *geoserve.Snapshot
)

// fixture builds one test-scale pipeline and its snapshot, shared by
// the whole test package.
func fixture(tb testing.TB) (*core.Pipeline, *geoserve.Snapshot) {
	tb.Helper()
	fixOnce.Do(func() {
		p, err := core.Run(core.TestConfig())
		if err != nil {
			panic(err)
		}
		snap, err := p.Serve()
		if err != nil {
			panic(err)
		}
		fixPipe, fixSnap = p, snap
	})
	return fixPipe, fixSnap
}

// publicIfaceIPs returns every non-private interface address.
func publicIfaceIPs(p *core.Pipeline) []uint32 {
	var out []uint32
	for i := range p.Internet.Ifaces {
		if ifc := &p.Internet.Ifaces[i]; ifc.IP != 0 && !ifc.Private {
			out = append(out, ifc.IP)
		}
	}
	return out
}

// TestLookupMatchesMappers checks the snapshot's exact answers against
// a live mapper resolution for every public interface address, under
// both mappers: location, method, mappability and AS attribution must
// all agree.
func TestLookupMatchesMappers(t *testing.T) {
	p, snap := fixture(t)
	mappers := []geoloc.MethodMapper{p.IxMapper, p.EdgeScape}
	for mi, m := range mappers {
		idx, ok := snap.MapperIndex(m.Name())
		if !ok || idx != mi {
			t.Fatalf("mapper %q not at index %d", m.Name(), mi)
		}
		for _, ip := range publicIfaceIPs(p) {
			a := snap.Lookup(idx, ip)
			loc, method, found := m.LocateMethod(ip)
			if !a.Exact {
				t.Fatalf("%s: interface %v not served exactly", m.Name(), ip)
			}
			if a.Found != found || a.Method != method || (found && a.Loc != loc) {
				t.Fatalf("%s: snapshot answer %+v != live (%v, %q, %v) for ip %v",
					m.Name(), a, loc, method, found, ip)
			}
			wantASN, _ := p.SkitterTable.OriginAS(ip)
			if a.ASN != wantASN {
				t.Fatalf("%s: ASN %d != table %d for ip %v", m.Name(), a.ASN, wantASN, ip)
			}
		}
	}
}

// TestPrefixLevelAnswer checks that a non-interface address inside an
// allocated /24 gets the prefix-level answer, and that it matches what
// the mapper would say live about such a generic host.
func TestPrefixLevelAnswer(t *testing.T) {
	p, snap := fixture(t)
	checked := 0
	for _, base := range snap.Prefixes() {
		// Find a couple of free host addresses in the block.
		var free []uint32
		for off := uint32(0); off < 256 && len(free) < 2; off++ {
			if _, taken := p.Internet.ByIP[base+off]; !taken {
				free = append(free, base+off)
			}
		}
		if len(free) < 2 {
			continue
		}
		for mi, m := range []geoloc.MethodMapper{p.IxMapper, p.EdgeScape} {
			a0 := snap.Lookup(mi, free[0])
			a1 := snap.Lookup(mi, free[1])
			if a0.Exact || a1.Exact {
				t.Fatalf("free address served an exact answer")
			}
			// Prefix-level answers are constant across the /24...
			if a0.Found != a1.Found || a0.Loc != a1.Loc || a0.Method != a1.Method || a0.ASN != a1.ASN {
				t.Fatalf("%s: prefix answers differ within /24 %v: %+v vs %+v", m.Name(), base, a0, a1)
			}
			// ...and match a live resolution of a generic host there
			// (no PTR exists for free addresses, whois and the feed
			// work per-range).
			loc, method, found := m.LocateMethod(free[0])
			if a0.Found != found || a0.Method != method || (found && a0.Loc != loc) {
				t.Fatalf("%s: prefix answer %+v != live (%v, %q, %v)", m.Name(), a0, loc, method, found)
			}
		}
		checked++
		if checked >= 50 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no /24 with free addresses found")
	}
}

// TestUnallocatedAddressMisses checks the miss path: addresses outside
// the allocated space answer not-found with no attribution.
func TestUnallocatedAddressMisses(t *testing.T) {
	_, snap := fixture(t)
	for _, ip := range []uint32{0xF0000001, 0xFFFFFFFE, 1} {
		if _, ok := searchPrefix(snap, ip); ok {
			continue // genuinely allocated; skip
		}
		a := snap.Lookup(0, ip)
		if a.Found || a.Method != "" || a.ASN != 0 || a.Exact {
			t.Fatalf("unallocated %v answered %+v", ip, a)
		}
	}
}

func searchPrefix(snap *geoserve.Snapshot, ip uint32) (int, bool) {
	prefixes := snap.Prefixes()
	for i, p := range prefixes {
		if p == ip&^0xff {
			return i, true
		}
	}
	return 0, false
}

// TestLookupHitPathZeroAllocs pins the acceptance criterion: the hit
// path (engine included, metrics recorded) allocates nothing. The miss
// path must stay clean too.
func TestLookupHitPathZeroAllocs(t *testing.T) {
	p, snap := fixture(t)
	e := geoserve.NewEngine(snap)
	ips := publicIfaceIPs(p)
	hit := ips[len(ips)/2]
	if n := testing.AllocsPerRun(1000, func() { e.Lookup(0, hit) }); n != 0 {
		t.Errorf("hit path allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { e.Lookup(1, 0xF0000001) }); n != 0 {
		t.Errorf("miss path allocates %v per op, want 0", n)
	}
	if n := testing.AllocsPerRun(1000, func() { e.Locate("edgescape", hit) }); n != 0 {
		t.Errorf("named lookup allocates %v per op, want 0", n)
	}
}

// TestCompileDeterministicAcrossWorkers compiles the same pipeline at
// several worker counts; digests must be identical.
func TestCompileDeterministicAcrossWorkers(t *testing.T) {
	p, snap := fixture(t)
	for _, workers := range []int{1, 3, 8} {
		cfg := p.Config
		cfg.Workers = workers
		q := *p
		q.Config = cfg
		snap2, err := q.Serve()
		if err != nil {
			t.Fatal(err)
		}
		if snap2.Digest() != snap.Digest() {
			t.Fatalf("digest drifts at workers=%d: %s != %s", workers, snap2.Digest(), snap.Digest())
		}
	}
}

// TestFootprintRadius spot-checks the confidence radius: for a located
// answer with a footprinted AS, RadiusMi must equal the footprint's
// equivalent-circle radius, which in turn matches a fresh
// analysis.Footprints computation.
func TestFootprintRadius(t *testing.T) {
	p, snap := fixture(t)
	fps := analysis.Footprints(p.Dataset("skitter", "ixmapper").ASAggregate())
	byASN := map[int]analysis.ASFootprint{}
	for _, fp := range fps {
		byASN[fp.ASN] = fp
	}
	checked := 0
	for _, ip := range publicIfaceIPs(p) {
		a := snap.Lookup(0, ip)
		if a.ASN == 0 {
			continue
		}
		fp, ok := snap.Footprint(0, a.ASN)
		want, live := byASN[a.ASN]
		if ok != live {
			t.Fatalf("footprint presence mismatch for AS %d", a.ASN)
		}
		if !ok {
			if a.RadiusMi != 0 {
				t.Fatalf("AS %d has no footprint but radius %v", a.ASN, a.RadiusMi)
			}
			continue
		}
		if fp != want {
			t.Fatalf("footprint for AS %d differs from analysis.Footprints", a.ASN)
		}
		if a.RadiusMi != fp.RadiusMi {
			t.Fatalf("answer radius %v != footprint radius %v", a.RadiusMi, fp.RadiusMi)
		}
		checked++
		if checked > 500 {
			break
		}
	}
	if checked == 0 {
		t.Fatal("no footprinted answers checked")
	}
}

// TestEngineHotSwap swaps in a freshly compiled identical snapshot and
// checks the engine serves it (same digest, same answers), returning
// the previous one.
func TestEngineHotSwap(t *testing.T) {
	p, snap := fixture(t)
	e := geoserve.NewEngine(snap)
	snap2, err := p.Serve()
	if err != nil {
		t.Fatal(err)
	}
	if old := e.Swap(snap2); old != snap {
		t.Fatal("Swap did not return the previous snapshot")
	}
	if e.Snapshot() != snap2 {
		t.Fatal("Swap did not publish the new snapshot")
	}
	ips := publicIfaceIPs(p)
	for _, ip := range ips[:100] {
		if a, b := snap.Lookup(0, ip), e.Lookup(0, ip); a != b {
			t.Fatalf("identical rebuild answers differently: %+v vs %+v", a, b)
		}
	}
	if e.Status().Snapshot.Swaps != 1 {
		t.Fatalf("swap count = %d, want 1", e.Status().Snapshot.Swaps)
	}
}

// TestConcurrentLookupsDuringHotSwap hammers the engine from reader
// goroutines while the main goroutine hot-swaps snapshots; run under
// -race in CI. Every answer must be internally consistent (served
// wholly from one snapshot).
func TestConcurrentLookupsDuringHotSwap(t *testing.T) {
	p, snap := fixture(t)
	snap2, err := p.Serve()
	if err != nil {
		t.Fatal(err)
	}
	e := geoserve.NewEngine(snap)
	ips := publicIfaceIPs(p)
	stop := make(chan struct{})
	var wg sync.WaitGroup
	for g := 0; g < 4; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			i := g
			for {
				select {
				case <-stop:
					return
				default:
				}
				ip := ips[i%len(ips)]
				a := e.Lookup(i%2, ip)
				if a.IP != ip {
					t.Errorf("answer for wrong ip")
					return
				}
				if _, ok := e.Locate("ixmapper", ip); !ok {
					t.Errorf("ixmapper vanished")
					return
				}
				i++
			}
		}(g)
	}
	for i := 0; i < 200; i++ {
		if i%2 == 0 {
			e.Swap(snap2)
		} else {
			e.Swap(snap)
		}
	}
	close(stop)
	wg.Wait()
	if got := e.Status().Snapshot.Swaps; got != 200 {
		t.Fatalf("swaps = %d, want 200", got)
	}
}

// TestCompileRejectsBadSource covers the compile error paths.
func TestCompileRejectsBadSource(t *testing.T) {
	p, _ := fixture(t)
	if _, err := geoserve.Compile(geoserve.Source{Table: p.SkitterTable,
		Mappers: []geoserve.NamedMapper{{Mapper: p.IxMapper}}}); err == nil {
		t.Error("nil Internet should fail")
	}
	if _, err := geoserve.Compile(geoserve.Source{Internet: p.Internet,
		Mappers: []geoserve.NamedMapper{{Mapper: p.IxMapper}}}); err == nil {
		t.Error("nil table should fail")
	}
	if _, err := geoserve.Compile(geoserve.Source{Internet: p.Internet, Table: p.SkitterTable}); err == nil {
		t.Error("no mappers should fail")
	}
	if _, err := geoserve.Compile(geoserve.Source{Internet: p.Internet, Table: p.SkitterTable,
		Mappers: []geoserve.NamedMapper{{Mapper: p.IxMapper}, {Mapper: p.IxMapper}}}); err == nil {
		t.Error("duplicate mapper should fail")
	}
	if _, err := geoserve.Compile(geoserve.Source{Internet: p.Internet, Table: p.SkitterTable,
		Mappers: []geoserve.NamedMapper{{Mapper: p.IxMapper,
			Footprints: []analysis.ASFootprint{{ASN: -1}}}}}); err == nil {
		t.Error("bad footprint ASN should fail")
	}
}

// TestParseFormatIPv4 round-trips addresses and rejects junk.
func TestParseFormatIPv4(t *testing.T) {
	for _, ip := range []uint32{0, 1, 0x01020304, 0xC0A80001, 0xFFFFFFFF} {
		s := geoserve.FormatIPv4(ip)
		got, err := geoserve.ParseIPv4(s)
		if err != nil || got != ip {
			t.Errorf("round trip %v -> %q -> %v, %v", ip, s, got, err)
		}
	}
	for _, s := range []string{"", "1.2.3", "1.2.3.4.5", "256.1.1.1", "a.b.c.d", "1..2.3", "1.2.3.4 ", "01112.1.1.1"} {
		if _, err := geoserve.ParseIPv4(s); err == nil {
			t.Errorf("ParseIPv4(%q) should fail", s)
		}
	}
}
