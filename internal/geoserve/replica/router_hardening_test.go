package replica

import (
	"context"
	"net/http"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"geonet/internal/faultinject"
	"geonet/internal/geoserve"
)

// TestRouterPrefersLeastLoaded pins load-aware planning: a replica
// with a slow response history (high latency EWMA) stops receiving
// traffic while equally-idle faster members exist.
func TestRouterPrefersLeastLoaded(t *testing.T) {
	snap := makeSnapshot(t, 21, 30, 8)
	// rep0 answers queries slowly; probes and the builder stay fast.
	decide := func(_ int, req *http.Request) faultinject.Fault {
		if req.URL.Host == "rep0" && req.URL.Path != "/healthz" {
			return faultinject.Fault{Latency: 30 * time.Millisecond, FlipBit: -1}
		}
		return faultinject.Clean
	}
	f := newFleet(t, 3, snap, decide)

	for i := 0; i < 12; i++ {
		if code, _ := get(t, f.client, "http://router/v1/locate?ip=10.1.0.1"); code != 200 {
			t.Fatalf("request %d: status %d", i, code)
		}
	}
	st := f.router.Status()
	var slow, fast uint64
	for _, m := range st.Replicas {
		if m.URL == repURL(0) {
			slow = m.Requests
			if m.LatencyMsEWMA < 10 {
				t.Fatalf("rep0 EWMA %.2fms does not reflect its injected latency", m.LatencyMsEWMA)
			}
		} else {
			fast += m.Requests
		}
	}
	// The rotation gives rep0 its first request; after its EWMA spikes
	// it must not be picked again while idle fast members exist.
	if slow > 2 || fast < 10 {
		t.Fatalf("slow replica served %d of 12 requests (fast: %d) — not routed around", slow, fast)
	}
}

// TestRouterRetryBudgetStopsStorm pins the global retry budget: under
// total replica failure the router spends its tokens and then sheds
// immediately instead of hammering the fleet with len(members) retries
// per request.
func TestRouterRetryBudgetStopsStorm(t *testing.T) {
	snap := makeSnapshot(t, 22, 20, 6)
	var down atomic.Bool
	decide := func(_ int, req *http.Request) faultinject.Fault {
		if down.Load() && strings.HasPrefix(req.URL.Host, "rep") && req.URL.Path != "/healthz" {
			return faultinject.Fault{Drop: true, FlipBit: -1}
		}
		return faultinject.Clean
	}
	f := &fleet{pub: NewPublisher()}
	mux := fleetMux{"builder": f.pub.Handler()}
	f.client, f.tr = localClient(mux, decide)
	for i := 0; i < 2; i++ {
		rep := New(Config{BuilderURL: "http://builder", Client: f.client})
		f.replicas = append(f.replicas, rep)
		mux[repURL(i)[len("http://"):]] = rep.Handler()
	}
	// FailThreshold and BreakerThreshold are out of reach so only the
	// budget can stop the retrying.
	f.router = NewRouter(RouterConfig{
		Replicas:         []string{repURL(0), repURL(1)},
		Client:           f.client,
		FailThreshold:    1 << 20,
		BreakerThreshold: 1 << 20,
		RetryBudget:      3,
	})
	mux["router"] = f.router.Handler()
	if _, err := f.pub.Publish(snap); err != nil {
		t.Fatal(err)
	}
	f.syncAll(t)
	f.router.ProbeOnce(context.Background())

	down.Store(true)
	for i := 0; i < 10; i++ {
		code, _ := get(t, f.client, "http://router/v1/locate?ip=10.1.0.1")
		if code != http.StatusServiceUnavailable {
			t.Fatalf("request %d during total outage: status %d", i, code)
		}
	}
	st := f.router.Status()
	if st.Retries != 3 {
		t.Fatalf("%d retries spent, want exactly the budget of 3", st.Retries)
	}
	if st.BudgetDenied == 0 || st.RetryBudget >= 1 {
		t.Fatalf("status %+v: want an exhausted budget with denials", st)
	}

	// Recovery: successes earn the budget back a tenth at a time.
	down.Store(false)
	for i := 0; i < 25; i++ {
		if code, _ := get(t, f.client, "http://router/v1/locate?ip=10.1.0.1"); code != 200 {
			t.Fatalf("request %d after recovery: status %d", i, code)
		}
	}
	if st := f.router.Status(); st.RetryBudget < 2 {
		t.Fatalf("budget %.1f after 25 successes, want refill", st.RetryBudget)
	}
}

// TestRouterBreakerOpensAndRecovers pins the per-replica circuit
// breaker: request failures open it (removing the member from the plan
// even though probes still pass), the cooldown moves it to half-open,
// and one successful trial closes it.
func TestRouterBreakerOpensAndRecovers(t *testing.T) {
	snap := makeSnapshot(t, 23, 20, 6)
	var broken atomic.Bool
	decide := func(_ int, req *http.Request) faultinject.Fault {
		// rep0 keeps answering /healthz but fails every query — the
		// failure mode probes can't see and the breaker exists for.
		if broken.Load() && req.URL.Host == "rep0" && req.URL.Path != "/healthz" {
			return faultinject.Fault{Drop: true, FlipBit: -1}
		}
		return faultinject.Clean
	}
	f := &fleet{pub: NewPublisher()}
	mux := fleetMux{"builder": f.pub.Handler()}
	f.client, f.tr = localClient(mux, decide)
	for i := 0; i < 2; i++ {
		rep := New(Config{BuilderURL: "http://builder", Client: f.client})
		f.replicas = append(f.replicas, rep)
		mux[repURL(i)[len("http://"):]] = rep.Handler()
	}
	f.router = NewRouter(RouterConfig{
		Replicas:         []string{repURL(0), repURL(1)},
		Client:           f.client,
		FailThreshold:    1 << 20, // ejection out of reach: breaker only
		BreakerThreshold: 2,
		BreakerCooldown:  time.Minute,
	})
	mux["router"] = f.router.Handler()
	if _, err := f.pub.Publish(snap); err != nil {
		t.Fatal(err)
	}
	f.syncAll(t)
	f.router.ProbeOnce(context.Background())
	clock := time.Now()
	f.router.now = func() time.Time { return clock }

	broken.Store(true)
	// Every request still answers (retries cover the rep0 failures)
	// and after two rep0 failures its breaker opens.
	for i := 0; i < 8; i++ {
		if code, _ := get(t, f.client, "http://router/v1/locate?ip=10.1.0.1"); code != 200 {
			t.Fatalf("request %d while rep0 broken: status %d", i, code)
		}
	}
	row := func(url string) RouterReplica {
		for _, m := range f.router.Status().Replicas {
			if m.URL == url {
				return m
			}
		}
		t.Fatalf("no row for %s", url)
		return RouterReplica{}
	}
	r0 := row(repURL(0))
	if r0.BreakerState != "open" || r0.BreakerTrips != 1 || !r0.Healthy {
		t.Fatalf("rep0 row %+v: want an open breaker on a probe-healthy member", r0)
	}
	// With the breaker open, traffic flows without touching rep0.
	before := r0.Failures
	for i := 0; i < 6; i++ {
		if code, _ := get(t, f.client, "http://router/v1/locate?ip=10.2.0.1"); code != 200 {
			t.Fatalf("request %d with open breaker: status %d", i, code)
		}
	}
	if r0 = row(repURL(0)); r0.Failures != before {
		t.Fatalf("rep0 took %d new failures while its breaker was open", r0.Failures-before)
	}

	// Past the cooldown the breaker half-opens; a successful trial
	// closes it and traffic returns.
	broken.Store(false)
	clock = clock.Add(2 * time.Minute)
	if r0 = row(repURL(0)); r0.BreakerState != "half-open" {
		t.Fatalf("rep0 breaker %q after cooldown, want half-open", r0.BreakerState)
	}
	served := row(repURL(0)).Requests
	for i := 0; served == row(repURL(0)).Requests && i < 8; i++ {
		if code, _ := get(t, f.client, "http://router/v1/locate?ip=10.3.0.1"); code != 200 {
			t.Fatalf("trial-phase request %d: status %d", i, code)
		}
	}
	if r0 = row(repURL(0)); r0.BreakerState != "closed" {
		t.Fatalf("rep0 breaker %q after successful trial, want closed", r0.BreakerState)
	}
}

// TestRouterDrain pins the router's draining contract: /healthz fails
// with "draining" while queries keep being answered.
func TestRouterDrain(t *testing.T) {
	snap := makeSnapshot(t, 24, 20, 6)
	f := newFleet(t, 2, snap, nil)
	if code, _ := get(t, f.client, "http://router/healthz"); code != 200 {
		t.Fatalf("healthz before drain: %d", code)
	}
	f.router.Drain()
	code, body := get(t, f.client, "http://router/healthz")
	if code != http.StatusServiceUnavailable || !strings.Contains(body, `"draining"`) {
		t.Fatalf("healthz during drain: %d %s", code, body)
	}
	if code, _ := get(t, f.client, "http://router/v1/locate?ip=10.1.0.1"); code != 200 {
		t.Fatalf("query during drain: status %d", code)
	}
	st := f.router.Status()
	if !st.Draining || st.InFlight != 0 {
		t.Fatalf("status %+v", st)
	}
	// Direct single-engine comparison: answers during drain are real.
	direct := geoserve.NewHandler(geoserve.NewEngine(snap))
	dc, _ := localClient(fleetMux{"direct": direct}, nil)
	_, want := get(t, dc, "http://direct/v1/locate?ip=10.4.0.200")
	if _, got := get(t, f.client, "http://router/v1/locate?ip=10.4.0.200"); got != want {
		t.Fatalf("drained answer diverges: %q vs %q", got, want)
	}
}
