package replica

import (
	"encoding/json"
	"fmt"
	"net/http"
)

// writeJSON mirrors geoserve's encoder so replication endpoints speak
// the same dialect as the serving API.
func writeJSON(w http.ResponseWriter, v any) {
	w.Header().Set("Content-Type", "application/json")
	json.NewEncoder(w).Encode(v)
}

// httpJSONError matches geoserve's {"error": "..."} error shape.
func httpJSONError(w http.ResponseWriter, code int, format string, args ...any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(code)
	json.NewEncoder(w).Encode(struct {
		Error string `json:"error"`
	}{fmt.Sprintf(format, args...)})
}
