package replica

import (
	"bytes"
	"io"
	"net/http"
	"testing"

	"geonet/internal/geoserve"
)

func postWireBin(tb testing.TB, client *http.Client, url string, mapper uint16, ips []uint32) (int, []byte) {
	tb.Helper()
	req := geoserve.AppendWireBatchRequest(nil, mapper, ips)
	resp, err := client.Post(url+"/v1/locate/bin", geoserve.WireContentType, bytes.NewReader(req))
	if err != nil {
		tb.Fatalf("POST %s bin: %v", url, err)
	}
	defer resp.Body.Close()
	body, err := io.ReadAll(resp.Body)
	if err != nil {
		tb.Fatal(err)
	}
	return resp.StatusCode, body
}

// TestRouterWireByteIdentity extends the byte-for-byte routing pin to
// the binary endpoint: a /v1/locate/bin batch forwarded through the
// router answers the exact bytes the engine serves directly, for both
// mapper ids and the default-mapper sentinel, and decodes to answers
// matching in-process lookups.
func TestRouterWireByteIdentity(t *testing.T) {
	snap := makeSnapshot(t, 17, 40, 10)
	f := newFleet(t, 3, snap, nil)
	direct := geoserve.NewHandler(geoserve.NewEngine(snap))
	dc, _ := localClient(fleetMux{"direct": direct}, nil)

	var ips []uint32
	for i, s := range batchIPs(24) {
		ip, err := geoserve.ParseIPv4(s)
		if err != nil {
			t.Fatalf("batch ip %d %q: %v", i, s, err)
		}
		ips = append(ips, ip)
	}

	for _, mapper := range []uint16{0, 1, geoserve.WireMapperDefault} {
		rCode, rBody := postWireBin(t, f.client, "http://router", mapper, ips)
		dCode, dBody := postWireBin(t, dc, "http://direct", mapper, ips)
		if rCode != 200 || rCode != dCode || !bytes.Equal(rBody, dBody) {
			t.Fatalf("mapper %d: router (%d, %d bytes) diverges from engine (%d, %d bytes)",
				mapper, rCode, len(rBody), dCode, len(dBody))
		}
		_, _, answers, err := geoserve.DecodeWireBatch(rBody)
		if err != nil {
			t.Fatal(err)
		}
		mi := int(mapper)
		if mapper == geoserve.WireMapperDefault {
			mi = 0
		}
		for i, ip := range ips {
			if want := snap.Lookup(mi, ip); answers[i] != want {
				t.Fatalf("mapper %d ip %s: routed %+v != lookup %+v",
					mapper, geoserve.FormatIPv4(ip), answers[i], want)
			}
		}
	}

	// Error shape passes through too: an unresolvable mapper id is the
	// same 400 body from either path.
	rCode, rBody := postWireBin(t, f.client, "http://router", 9, ips[:2])
	dCode, dBody := postWireBin(t, dc, "http://direct", 9, ips[:2])
	if rCode != http.StatusBadRequest || rCode != dCode || !bytes.Equal(rBody, dBody) {
		t.Fatalf("bad-mapper bin: router (%d) %q vs engine (%d) %q", rCode, rBody, dCode, dBody)
	}
}
