package replica

import (
	"bytes"
	"context"
	"crypto/sha256"
	"encoding/hex"
	"flag"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"sync/atomic"
	"testing"
	"time"

	"geonet/internal/faultinject"
	"geonet/internal/geoserve"
	"geonet/internal/geoserve/snapfile"
)

var update = flag.Bool("update", false, "rewrite golden files")

// churn derives the next epoch's snapshot from the previous one the
// way a pipeline re-run does: a sparse subset of intervals gets new
// answers, everything else is untouched — exactly the shape delta
// epochs exist for.
func churn(tb testing.TB, snap *geoserve.Snapshot, step int) *geoserve.Snapshot {
	tb.Helper()
	c := snap.Columns()
	for m := range c.Answers {
		a := &c.Answers[m]
		for i := step % 7; i < len(a.Lat); i += 7 {
			if a.Found[i] == 1 {
				a.Lat[i] = a.Lat[i]/2 + float64(step)
				a.Lon[i] = a.Lon[i]/2 - float64(step)
				a.Radius[i] = a.Radius[i]/2 + 1
			}
		}
	}
	out, err := geoserve.FromColumns(c)
	if err != nil {
		tb.Fatalf("churn step %d: %v", step, err)
	}
	if out.Digest() == snap.Digest() {
		tb.Fatalf("churn step %d changed nothing", step)
	}
	return out
}

// transcript serves a fixed probe set through the handler and returns
// the full request/response log.
func transcript(tb testing.TB, h http.Handler, snap *geoserve.Snapshot) string {
	tb.Helper()
	var b strings.Builder
	probes := []string{
		"/v1/locate?ip=" + geoserve.FormatIPv4(snap.Prefixes()[0]+9),
		"/v1/locate?ip=" + geoserve.FormatIPv4(snap.ExactIPs()[1]) + "&mapper=beta",
		"/v1/locate?ip=250.0.0.1",
		"/v1/prefixes",
	}
	for _, p := range probes {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", p, nil))
		fmt.Fprintf(&b, "GET %s -> %d epoch=%s\n%s\n", p, w.Code, w.Header().Get("X-Geo-Epoch"), w.Body.String())
	}
	return b.String()
}

// TestGoldenDeltaChurnByteIdentity drives two replicas — one syncing
// by delta, one forced to full fetches — through a 3-epoch churn
// sequence and pins, at every step, that the delta-synced state is
// byte-identical to the full-fetch state: same content digest, same
// re-encoded snapfile bytes, same served transcript. The per-epoch
// digests and transcript hashes are additionally pinned in
// testdata/golden_delta_churn.txt (refresh with -update).
func TestGoldenDeltaChurnByteIdentity(t *testing.T) {
	pub := NewPublisher()
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	deltaRep := New(Config{BuilderURL: "http://builder", Client: client})
	fullRep := New(Config{BuilderURL: "http://builder", Client: client, NoDelta: true})

	var golden strings.Builder
	snap := makeSnapshot(t, 41, 40, 10)
	for epoch := uint64(1); epoch <= 4; epoch++ {
		if epoch > 1 {
			snap = churn(t, snap, int(epoch))
		}
		if _, err := pub.Publish(snap); err != nil {
			t.Fatal(err)
		}
		for i, rep := range []*Replica{deltaRep, fullRep} {
			if swapped, err := rep.SyncOnce(context.Background()); err != nil || !swapped {
				t.Fatalf("epoch %d replica %d: swapped=%v err=%v", epoch, i, swapped, err)
			}
		}
		dSnap, fSnap := deltaRep.Engine().Snapshot(), fullRep.Engine().Snapshot()
		if dSnap.Digest() != fSnap.Digest() || dSnap.Digest() != snap.Digest() {
			t.Fatalf("epoch %d: delta-synced digest %s, full %s, published %s",
				epoch, dSnap.Digest(), fSnap.Digest(), snap.Digest())
		}
		dBlob, err := snapfile.Encode(dSnap, epoch)
		if err != nil {
			t.Fatal(err)
		}
		fBlob, err := snapfile.Encode(fSnap, epoch)
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(dBlob, fBlob) {
			t.Fatalf("epoch %d: delta-synced snapshot re-encodes differently from the full fetch", epoch)
		}
		dT := transcript(t, deltaRep.Handler(), dSnap)
		fT := transcript(t, fullRep.Handler(), fSnap)
		if dT != fT {
			t.Fatalf("epoch %d transcripts diverge:\n%s\nvs\n%s", epoch, dT, fT)
		}
		tSum := sha256.Sum256([]byte(dT))
		fmt.Fprintf(&golden, "epoch %d digest %s transcript sha256:%s\n",
			epoch, dSnap.Digest(), hex.EncodeToString(tSum[:]))
	}
	// Every upgrade after the first came in as a delta.
	if st := deltaRep.Status(); st.DeltaSyncs != 3 || st.DeltaFallbacks != 0 || st.Fetches != 1 {
		t.Fatalf("delta replica counters %+v, want 3 delta syncs over 1 full fetch", st)
	}
	if st := fullRep.Status(); st.DeltaSyncs != 0 || st.Fetches != 4 {
		t.Fatalf("full replica counters %+v, want 4 full fetches", st)
	}

	goldenPath := filepath.Join("testdata", "golden_delta_churn.txt")
	if *update {
		if err := os.MkdirAll("testdata", 0o755); err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(goldenPath, []byte(golden.String()), 0o644); err != nil {
			t.Fatal(err)
		}
		t.Logf("wrote %s", goldenPath)
		return
	}
	want, err := os.ReadFile(goldenPath)
	if err != nil {
		t.Fatalf("missing golden file (run with -update): %v", err)
	}
	if golden.String() != string(want) {
		t.Fatalf("delta churn golden drifted:\n--- got ---\n%s--- want ---\n%s", golden.String(), want)
	}
}

// TestChaosDeltaCorruptionFallsBack damages every delta response a
// different way per epoch — bit flip, truncation, connection drop —
// and proves each sync falls back to the full snapshot with no wrong
// answers served at any point.
func TestChaosDeltaCorruptionFallsBack(t *testing.T) {
	faults := map[uint64]faultinject.Fault{
		2: {FlipBit: 8 * 300},
		3: {TruncateAt: 120, FlipBit: -1},
		4: {Drop: true, FlipBit: -1},
	}
	var epoch atomic.Uint64
	decide := func(_ int, req *http.Request) faultinject.Fault {
		if strings.HasPrefix(req.URL.Path, "/v1/replication/delta/") {
			if f, ok := faults[epoch.Load()]; ok {
				return f
			}
		}
		return faultinject.Clean
	}
	pub := NewPublisher()
	client, tr := localClient(fleetMux{"builder": pub.Handler()}, decide)
	rep := New(Config{BuilderURL: "http://builder", Client: client})

	snap := makeSnapshot(t, 42, 35, 9)
	for e := uint64(1); e <= 4; e++ {
		epoch.Store(e)
		if e > 1 {
			snap = churn(t, snap, int(e))
		}
		if _, err := pub.Publish(snap); err != nil {
			t.Fatal(err)
		}
		if swapped, err := rep.SyncOnce(context.Background()); err != nil || !swapped {
			t.Fatalf("epoch %d: swapped=%v err=%v", e, swapped, err)
		}
		// The invariant under fire: whatever is serving is exactly the
		// published snapshot, byte for byte.
		if got := rep.Engine().Snapshot().Digest(); got != snap.Digest() {
			t.Fatalf("epoch %d: serving digest %s, published %s", e, got, snap.Digest())
		}
		ip := snap.ExactIPs()[2]
		want := geoserve.NewEngine(snap).Lookup(0, ip)
		if got := rep.Engine().Lookup(0, ip); got != want {
			t.Fatalf("epoch %d answer diverged: %+v vs %+v", e, got, want)
		}
		if rep.Status().Epoch != e {
			t.Fatalf("replica at epoch %d after publishing %d", rep.Status().Epoch, e)
		}
	}
	st := rep.Status()
	if st.DeltaFallbacks != 3 || st.DeltaSyncs != 0 {
		t.Fatalf("counters %+v, want every delta attempt to fall back", st)
	}
	if st.Fetches != 4 {
		t.Fatalf("%d full fetches, want 4 (one per epoch)", st.Fetches)
	}
	if c := tr.Counters(); c.Flips == 0 || c.Truncations == 0 || c.Drops == 0 {
		t.Fatalf("fault mix not exercised: %+v", c)
	}
}

// TestChaosSlowReplicaRoutedAround wedges one replica mid-response —
// it answers health probes but stalls every query past the router's
// deadline — and proves the router routes around it: every answer
// arrives, correct and whole, and the wedged member's breaker opens.
func TestChaosSlowReplicaRoutedAround(t *testing.T) {
	snap := makeSnapshot(t, 43, 30, 8)
	var wedged atomic.Bool
	decide := func(_ int, req *http.Request) faultinject.Fault {
		if wedged.Load() && req.URL.Host == "rep1" && req.URL.Path != "/healthz" {
			return faultinject.Fault{StallAt: 20, StallPause: time.Hour, FlipBit: -1}
		}
		return faultinject.Clean
	}
	f := &fleet{pub: NewPublisher()}
	mux := fleetMux{"builder": f.pub.Handler()}
	f.client, f.tr = localClient(mux, decide)
	for i := 0; i < 3; i++ {
		rep := New(Config{BuilderURL: "http://builder", Client: f.client})
		f.replicas = append(f.replicas, rep)
		mux[fmt.Sprintf("rep%d", i)] = rep.Handler()
	}
	f.router = NewRouter(RouterConfig{
		Replicas:         []string{repURL(0), repURL(1), repURL(2)},
		Client:           f.client,
		FailThreshold:    1 << 20, // probes stay green; only the breaker can act
		RequestTimeout:   40 * time.Millisecond,
		BreakerThreshold: 2,
	})
	mux["router"] = f.router.Handler()
	if _, err := f.pub.Publish(snap); err != nil {
		t.Fatal(err)
	}
	f.syncAll(t)
	f.router.ProbeOnce(context.Background())

	direct := geoserve.NewHandler(geoserve.NewEngine(snap))
	dc, _ := localClient(fleetMux{"direct": direct}, nil)
	_, wantSingle := get(t, dc, "http://direct/v1/locate?ip=10.3.0.1")
	ips := batchIPs(12)
	_, wantBatch := postBatch(t, dc, "http://direct", "alpha", ips)

	wedged.Store(true)
	for i := 0; i < 10; i++ {
		code, body := get(t, f.client, "http://router/v1/locate?ip=10.3.0.1")
		if code != 200 || body != wantSingle {
			t.Fatalf("lookup %d with wedged rep1: %d %q", i, code, body)
		}
	}
	resp, body := postBatch(t, f.client, "http://router", "alpha", ips)
	if resp.StatusCode != 200 || body != wantBatch {
		t.Fatalf("batch with wedged rep1: %d %q", resp.StatusCode, body)
	}
	st := f.router.Status()
	if st.Sheds != 0 {
		t.Fatalf("router shed with two healthy replicas: %+v", st)
	}
	for _, m := range st.Replicas {
		if m.URL != repURL(1) {
			continue
		}
		if m.BreakerState == "closed" && m.BreakerTrips == 0 {
			t.Fatalf("wedged rep1 never tripped its breaker: %+v", m)
		}
		if !m.Healthy {
			t.Fatalf("rep1 ejected (%+v) — the probes were supposed to stay green", m)
		}
	}
	// Breaker recovery after a wedge clears is pinned separately in
	// TestRouterBreakerOpensAndRecovers.
}

// TestChaosRollingDrainZeroLoss drains, restarts and readmits every
// replica in turn while traffic flows. No request may fail or return a
// wrong answer at any point in the roll: a draining replica keeps
// answering what it already has, the router steers new work away after
// one probe, and the restarted process rejoins at the served epoch.
func TestChaosRollingDrainZeroLoss(t *testing.T) {
	snap := makeSnapshot(t, 44, 30, 8)
	f := &fleet{pub: NewPublisher()}
	mux := fleetMux{"builder": f.pub.Handler()}
	f.client, f.tr = localClient(mux, nil)
	for i := 0; i < 3; i++ {
		rep := New(Config{BuilderURL: "http://builder", Client: f.client})
		f.replicas = append(f.replicas, rep)
		mux[fmt.Sprintf("rep%d", i)] = rep.Handler()
	}
	f.router = NewRouter(RouterConfig{
		Replicas:      []string{repURL(0), repURL(1), repURL(2)},
		Client:        f.client,
		FailThreshold: 1,
	})
	mux["router"] = f.router.Handler()
	if _, err := f.pub.Publish(snap); err != nil {
		t.Fatal(err)
	}
	f.syncAll(t)
	f.router.ProbeOnce(context.Background())

	direct := geoserve.NewHandler(geoserve.NewEngine(snap))
	dc, _ := localClient(fleetMux{"direct": direct}, nil)
	_, wantSingle := get(t, dc, "http://direct/v1/locate?ip=10.6.0.77")
	ips := batchIPs(15)
	_, wantBatch := postBatch(t, dc, "http://direct", "beta", ips)

	serveSome := func(stage string) {
		t.Helper()
		for i := 0; i < 4; i++ {
			code, body := get(t, f.client, "http://router/v1/locate?ip=10.6.0.77")
			if code != 200 || body != wantSingle {
				t.Fatalf("%s lookup %d: %d %q", stage, i, code, body)
			}
		}
		resp, body := postBatch(t, f.client, "http://router", "beta", ips)
		if resp.StatusCode != 200 || body != wantBatch {
			t.Fatalf("%s batch: %d %q", stage, resp.StatusCode, body)
		}
	}

	serveSome("steady state")
	for i := 0; i < 3; i++ {
		// Drain: the replica fails its probe but answers racing queries.
		f.replicas[i].Drain()
		serveSome(fmt.Sprintf("rep%d draining, router unaware", i))
		f.router.ProbeOnce(context.Background())
		serveSome(fmt.Sprintf("rep%d drained out", i))
		if f.replicas[i].InFlight() != 0 {
			t.Fatalf("rep%d still has %d in flight; drain would not complete", i, f.replicas[i].InFlight())
		}
		// Restart: a fresh process takes over the same address and
		// syncs before the router readmits it.
		rep := New(Config{BuilderURL: "http://builder", Client: f.client})
		if swapped, err := rep.SyncOnce(context.Background()); err != nil || !swapped {
			t.Fatalf("restarted rep%d sync: swapped=%v err=%v", i, swapped, err)
		}
		f.replicas[i] = rep
		mux[fmt.Sprintf("rep%d", i)] = rep.Handler()
		f.router.ProbeOnce(context.Background())
		serveSome(fmt.Sprintf("rep%d restarted", i))
	}
	st := f.router.Status()
	if st.Sheds != 0 {
		t.Fatalf("rolling drain shed traffic: %+v", st)
	}
	if st.HealthyReplicas != 3 || st.Epoch != 1 {
		t.Fatalf("fleet did not fully return: %+v", st)
	}
	for _, m := range st.Replicas {
		if m.Ejections != 1 || m.Readmissions != 1 {
			t.Fatalf("member %s lifecycle %+v, want one ejection and one readmission", m.URL, m)
		}
	}
}
