package replica

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"os"
	"path/filepath"
	"strings"
	"testing"

	"geonet/internal/geoserve"
	"geonet/internal/obs"
)

// knownFamilies is every metric family the serving stack may expose.
// A scrape containing a family outside this list fails the fleet test:
// renaming or adding a family must be a deliberate act here and in the
// golden file, because dashboards and alerts key on these names.
var knownFamilies = map[string]bool{
	"geoserve_component_info":                     true,
	"geoserve_trace_spans_total":                  true,
	"geoserve_requests_total":                     true,
	"geoserve_lookups_total":                      true,
	"geoserve_lookup_latency_seconds":             true,
	"geoserve_window_qps":                         true,
	"geoserve_snapshot_swaps_total":               true,
	"geoserve_cluster_batches_total":              true,
	"geoserve_cluster_shed_batches_total":         true,
	"geoserve_cluster_fanout_total":               true,
	"geoserve_cluster_delta_swaps_total":          true,
	"geoserve_cluster_resplit_shards_total":       true,
	"geoserve_shard_lookups_total":                true,
	"geoserve_shard_shed_total":                   true,
	"geoserve_shard_inflight":                     true,
	"geoserve_wire_batch_frames_total":            true,
	"geoserve_wire_stream_frames_total":           true,
	"geoserve_wire_error_frames_total":            true,
	"geoserve_wire_rx_bytes_total":                true,
	"geoserve_wire_tx_bytes_total":                true,
	"geoserve_wire_epoch_changes_total":           true,
	"geoserve_replication_epoch":                  true,
	"geoserve_replication_epoch_age_seconds":      true,
	"geoserve_replication_seconds_since_contact":  true,
	"geoserve_replication_stale":                  true,
	"geoserve_replication_fetches_total":          true,
	"geoserve_replication_fetch_failures_total":   true,
	"geoserve_replication_resumes_total":          true,
	"geoserve_replication_swaps_total":            true,
	"geoserve_replication_delta_syncs_total":      true,
	"geoserve_replication_delta_fallbacks_total":  true,
	"geoserve_replication_epoch_gone_total":       true,
	"geoserve_replication_warmup_failures_total":  true,
	"geoserve_replication_warmup_failed":          true,
	"geoserve_replication_draining":               true,
	"geoserve_replication_inflight":               true,
	"geoserve_router_requests_total":              true,
	"geoserve_router_batches_total":               true,
	"geoserve_router_retries_total":               true,
	"geoserve_router_sheds_total":                 true,
	"geoserve_router_budget_denied_total":         true,
	"geoserve_router_retry_budget":                true,
	"geoserve_router_plan_epoch":                  true,
	"geoserve_router_healthy_replicas":            true,
	"geoserve_router_draining":                    true,
	"geoserve_router_inflight":                    true,
	"geoserve_router_replica_healthy":             true,
	"geoserve_router_replica_inflight":            true,
	"geoserve_router_replica_latency_ewma_ms":     true,
	"geoserve_router_replica_breaker_state":       true,
	"geoserve_router_replica_epoch":               true,
	"geoserve_router_replica_requests_total":      true,
	"geoserve_router_replica_failures_total":      true,
	"geoserve_router_replica_ejections_total":     true,
	"geoserve_router_replica_readmissions_total":  true,
	"geoserve_router_replica_breaker_trips_total": true,
}

// scrapeFamilies parses a Prometheus text exposition into its family
// names (from # TYPE lines).
func scrapeFamilies(tb testing.TB, body string) []string {
	tb.Helper()
	var fams []string
	for _, line := range strings.Split(body, "\n") {
		if rest, ok := strings.CutPrefix(line, "# TYPE "); ok {
			name, _, found := strings.Cut(rest, " ")
			if !found {
				tb.Fatalf("malformed TYPE line %q", line)
			}
			fams = append(fams, name)
		}
	}
	if len(fams) == 0 {
		tb.Fatalf("scrape exposed no families:\n%s", body)
	}
	return fams
}

// tracezBody is the /debug/tracez response shape.
type tracezBody struct {
	Component string `json:"component"`
	Recent    []struct {
		Trace string `json:"trace"`
		Name  string `json:"name"`
	} `json:"recent"`
}

// shardedFleet is a publisher + n replicas serving through 2-shard
// clusters + a router, wired over in-memory transports — the smallest
// deployment in which a traced batch crosses all three hop kinds
// (router → replica → shard).
func shardedFleet(tb testing.TB, n int, snap *geoserve.Snapshot) *fleet {
	tb.Helper()
	f := &fleet{pub: NewPublisher()}
	mux := fleetMux{"builder": f.pub.Handler()}
	f.client, f.tr = localClient(mux, nil)
	for i := 0; i < n; i++ {
		rep := New(Config{BuilderURL: "http://builder", Client: f.client, Shards: 2})
		f.replicas = append(f.replicas, rep)
		mux[fmt.Sprintf("rep%d", i)] = rep.Handler()
	}
	var urls []string
	for i := range f.replicas {
		urls = append(urls, repURL(i))
	}
	f.router = NewRouter(RouterConfig{Replicas: urls, Client: f.client, FailThreshold: 1})
	mux["router"] = f.router.Handler()
	if _, err := f.pub.Publish(snap); err != nil {
		tb.Fatal(err)
	}
	f.syncAll(tb)
	f.router.ProbeOnce(context.Background())
	return f
}

// TestFleetObservability boots a replicated sharded fleet in-process,
// drives a batch through the router, and checks the whole observability
// contract end to end: the router mints a trace ID, the ID propagates
// across the router → replica → shard hops (visible in each tier's
// /debug/tracez), and every node's /metrics scrape exposes only known
// families.
func TestFleetObservability(t *testing.T) {
	snap := makeSnapshot(t, 7, 32, 8)
	f := shardedFleet(t, 2, snap)

	resp, body := postBatch(t, f.client, "http://router", "alpha", batchIPs(64))
	if resp.StatusCode != http.StatusOK {
		t.Fatalf("batch status %d: %s", resp.StatusCode, body)
	}
	traceID := resp.Header.Get(obs.TraceHeader)
	if _, ok := obs.ParseTraceID(traceID); !ok {
		t.Fatalf("router response carries no valid %s header: %q", obs.TraceHeader, traceID)
	}

	// Collect this trace's spans across every tier's tracez endpoint.
	spanNames := map[string]bool{}
	hosts := []string{"router", "rep0", "rep1"}
	for _, host := range hosts {
		code, body := get(t, f.client, "http://"+host+"/debug/tracez")
		if code != http.StatusOK {
			t.Fatalf("%s tracez status %d", host, code)
		}
		var tz tracezBody
		if err := json.Unmarshal([]byte(body), &tz); err != nil {
			t.Fatalf("%s tracez: %v", host, err)
		}
		for _, s := range tz.Recent {
			if s.Trace == traceID {
				spanNames[s.Name] = true
			}
		}
	}
	for _, want := range []string{"router.batch", "serve.batch", "shard.serve"} {
		if !spanNames[want] {
			t.Errorf("trace %s missing a %q span across the fleet (got %v)", traceID, want, spanNames)
		}
	}
	if len(spanNames) < 3 {
		t.Fatalf("trace %s spans %v: want >= 3 hop spans", traceID, spanNames)
	}

	// Every node's scrape must expose only known families, and the
	// tiers' signature families must be present.
	mustHave := map[string][]string{
		"router": {"geoserve_router_requests_total", "geoserve_router_replica_healthy", "geoserve_trace_spans_total"},
		"rep0":   {"geoserve_replication_epoch", "geoserve_replication_epoch_age_seconds", "geoserve_requests_total", "geoserve_lookup_latency_seconds"},
		"rep1":   {"geoserve_replication_epoch", "geoserve_wire_batch_frames_total"},
	}
	for _, host := range hosts {
		code, body := get(t, f.client, "http://"+host+"/metrics")
		if code != http.StatusOK {
			t.Fatalf("%s metrics status %d", host, code)
		}
		fams := scrapeFamilies(t, body)
		have := map[string]bool{}
		for _, fam := range fams {
			have[fam] = true
			if !knownFamilies[fam] {
				t.Errorf("%s exposes unknown family %q — rename requires updating knownFamilies and the golden", host, fam)
			}
		}
		for _, want := range mustHave[host] {
			if !have[want] {
				t.Errorf("%s scrape missing family %q", host, want)
			}
		}
	}
}

// TestShedBodyCarriesTraceID pins satellite contract: when the router
// sheds (no healthy replica holds a complete epoch), the 503 body
// quotes the originating trace ID so the client can hand operators the
// exact request to find in /debug/tracez.
func TestShedBodyCarriesTraceID(t *testing.T) {
	f := newFleet(t, 1, nil, nil) // nothing published: every request sheds
	id := obs.NewTraceID()
	req, err := http.NewRequest("GET", "http://router/v1/locate?ip=10.0.0.1", nil)
	if err != nil {
		t.Fatal(err)
	}
	req.Header.Set(obs.TraceHeader, id.String())
	resp, err := f.client.Do(req)
	if err != nil {
		t.Fatal(err)
	}
	defer resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable {
		t.Fatalf("status %d, want 503", resp.StatusCode)
	}
	if got := resp.Header.Get(obs.TraceHeader); got != id.String() {
		t.Fatalf("shed response header trace %q, want %q", got, id)
	}
	var body struct {
		Error   string `json:"error"`
		TraceID string `json:"trace_id"`
	}
	if err := json.NewDecoder(resp.Body).Decode(&body); err != nil {
		t.Fatal(err)
	}
	if body.TraceID != id.String() {
		t.Fatalf("shed body trace_id %q, want %q (error: %q)", body.TraceID, id, body.Error)
	}
	if resp.Header.Get("Retry-After") == "" {
		t.Fatal("shed response missing Retry-After")
	}
}

// normalizeMetrics replaces every sample value with V, keeping names,
// labels and bucket layouts — the stable surface the golden pins.
func normalizeMetrics(body string) string {
	var out strings.Builder
	for _, line := range strings.Split(strings.TrimRight(body, "\n"), "\n") {
		if strings.HasPrefix(line, "#") || line == "" {
			out.WriteString(line)
			out.WriteByte('\n')
			continue
		}
		i := strings.LastIndexByte(line, ' ')
		if i < 0 {
			out.WriteString(line)
			out.WriteByte('\n')
			continue
		}
		out.WriteString(line[:i])
		out.WriteString(" V\n")
	}
	return out.String()
}

// TestGoldenMetricsFamilies pins the full metric surface — family
// names, help text, label sets and histogram bucket layouts — of all
// four handler kinds against a golden file. Values are normalized, so
// the golden only changes when the exposition contract does; refresh
// deliberately with -update.
func TestGoldenMetricsFamilies(t *testing.T) {
	snap := makeSnapshot(t, 7, 32, 8)
	scrape := func(h http.Handler) string {
		w := httptest.NewRecorder()
		h.ServeHTTP(w, httptest.NewRequest("GET", "/metrics", nil))
		if w.Code != http.StatusOK {
			t.Fatalf("metrics scrape status %d", w.Code)
		}
		return w.Body.String()
	}

	var got strings.Builder
	section := func(name, body string) {
		fmt.Fprintf(&got, "== %s ==\n%s\n", name, normalizeMetrics(body))
	}

	section("engine", scrape(geoserve.NewHandler(geoserve.NewEngine(snap))))

	cluster, err := geoserve.NewCluster(snap, geoserve.ClusterConfig{Shards: 2})
	if err != nil {
		t.Fatal(err)
	}
	section("cluster", scrape(geoserve.NewClusterHandler(cluster)))

	f := shardedFleet(t, 2, snap)
	_, body := get(t, f.client, "http://rep0/metrics")
	section("replica", body)
	_, body = get(t, f.client, "http://router/metrics")
	section("router", body)

	golden := filepath.Join("testdata", "metrics_families.golden")
	if *update {
		if err := os.WriteFile(golden, []byte(got.String()), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	want, err := os.ReadFile(golden)
	if err != nil {
		t.Fatalf("%v (run with -update to create)", err)
	}
	if got.String() != string(want) {
		t.Fatalf("metric families changed; diff against %s and re-run with -update if deliberate.\ngot:\n%s", golden, got.String())
	}
}
