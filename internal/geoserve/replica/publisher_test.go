package replica

import (
	"fmt"
	"io"
	"net/http"
	"reflect"
	"testing"

	"geonet/internal/geoserve/snapfile"
)

// TestPublisherRetentionWindow walks the publisher through more epochs
// than it retains and checks the manifest, the snapshot endpoint, and
// the delta endpoint all agree about which epochs still exist.
func TestPublisherRetentionWindow(t *testing.T) {
	pub := NewPublisher()
	pub.SetRetain(3)
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)

	snaps := map[uint64]string{}
	for i := 1; i <= 5; i++ {
		snap := makeSnapshot(t, int64(i), 20, 6)
		m, err := pub.Publish(snap)
		if err != nil {
			t.Fatal(err)
		}
		snaps[m.Epoch] = snap.Digest()
		lo := uint64(1)
		if m.Epoch > 2 {
			lo = m.Epoch - 2
		}
		var want []uint64
		for e := lo; e <= m.Epoch; e++ {
			want = append(want, e)
		}
		if !reflect.DeepEqual(m.Retained, want) {
			t.Fatalf("after epoch %d: retained %v, want %v", m.Epoch, m.Retained, want)
		}
	}

	for epoch := uint64(1); epoch <= 5; epoch++ {
		status, _ := get(t, client, fmt.Sprintf("http://builder/v1/replication/snapshot/%d", epoch))
		want := http.StatusOK
		if epoch <= 2 {
			want = http.StatusNotFound
		}
		if status != want {
			t.Fatalf("snapshot/%d: status %d, want %d", epoch, status, want)
		}
	}

	// A delta between two retained epochs applies onto the base and
	// lands exactly on the target digest.
	resp, err := client.Get("http://builder/v1/replication/delta/3/5")
	if err != nil {
		t.Fatal(err)
	}
	blob, err := io.ReadAll(resp.Body)
	resp.Body.Close()
	if err != nil || resp.StatusCode != http.StatusOK {
		t.Fatalf("delta/3/5: status %d err %v", resp.StatusCode, err)
	}
	base := makeSnapshot(t, 3, 20, 6)
	applied, info, err := snapfile.Apply(base, blob)
	if err != nil {
		t.Fatal(err)
	}
	if applied.Digest() != snaps[5] || info.ToEpoch != 5 {
		t.Fatalf("delta landed on %s epoch %d, want %s epoch 5", applied.Digest(), info.ToEpoch, snaps[5])
	}

	// Everything the window can't serve is a 404: pruned base,
	// reversed range, self-delta, unknown future epoch.
	for _, path := range []string{"1/5", "2/4", "5/3", "4/4", "3/9"} {
		status, _ := get(t, client, "http://builder/v1/replication/delta/"+path)
		if status != http.StatusNotFound {
			t.Fatalf("delta/%s: status %d, want 404", path, status)
		}
	}
	if status, _ := get(t, client, "http://builder/v1/replication/delta/x/5"); status != http.StatusBadRequest {
		t.Fatalf("unparseable delta endpoint: status %d, want 400", status)
	}
}

// TestPublisherDeltaCachePruned checks a cached delta doesn't outlive
// its endpoints: once the base epoch leaves the window the pair 404s
// even though it was served before.
func TestPublisherDeltaCachePruned(t *testing.T) {
	pub := NewPublisher()
	pub.SetRetain(2)
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	for i := 1; i <= 2; i++ {
		if _, err := pub.Publish(makeSnapshot(t, int64(i), 10, 4)); err != nil {
			t.Fatal(err)
		}
	}
	if status, _ := get(t, client, "http://builder/v1/replication/delta/1/2"); status != http.StatusOK {
		t.Fatalf("delta/1/2 while retained: status %d", status)
	}
	if _, err := pub.Publish(makeSnapshot(t, 3, 10, 4)); err != nil {
		t.Fatal(err)
	}
	if status, _ := get(t, client, "http://builder/v1/replication/delta/1/2"); status != http.StatusNotFound {
		t.Fatalf("delta/1/2 after base pruned: status %d, want 404", status)
	}
	pub.mu.RLock()
	nCached := len(pub.deltas)
	pub.mu.RUnlock()
	if nCached != 0 {
		t.Fatalf("%d cached deltas survived pruning of their endpoints", nCached)
	}
}

// TestPublisherShrinkRetain checks SetRetain prunes immediately when
// the window shrinks below the number of live epochs.
func TestPublisherShrinkRetain(t *testing.T) {
	pub := NewPublisher()
	for i := 1; i <= 4; i++ {
		if _, err := pub.Publish(makeSnapshot(t, int64(i), 8, 4)); err != nil {
			t.Fatal(err)
		}
	}
	pub.SetRetain(1)
	m, ok := pub.Manifest()
	if !ok {
		t.Fatal("manifest vanished")
	}
	if !reflect.DeepEqual(m.Retained, []uint64{4}) {
		t.Fatalf("retained %v after shrink, want [4]", m.Retained)
	}
}
