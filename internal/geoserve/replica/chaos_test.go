package replica

import (
	"context"
	"net/http"
	"sync/atomic"
	"testing"
	"time"

	"geonet/internal/faultinject"
	"geonet/internal/geoserve"
)

// TestChaosCorruptFetchEventuallyRecovers hammers the replication path
// with seeded random drops, truncations and bit-flips and proves the
// replica (a) never swaps in anything but a published snapshot and
// (b) converges on every published epoch anyway. The fault schedule is
// a pure function of the seed, so this chaos run replays exactly.
func TestChaosCorruptFetchEventuallyRecovers(t *testing.T) {
	prob := faultinject.Probabilistic(99, faultinject.Probabilities{
		Drop: 0.2, Truncate: 0.2, Flip: 0.15,
	})
	decide := func(attempt int, req *http.Request) faultinject.Fault {
		if req.URL.Host == "builder" {
			return prob(attempt, req)
		}
		return faultinject.Clean
	}
	pub := NewPublisher()
	client, tr := localClient(fleetMux{"builder": pub.Handler()}, decide)
	rep := New(Config{BuilderURL: "http://builder", Client: client})

	published := map[string]bool{}
	for epoch := uint64(1); epoch <= 3; epoch++ {
		snap := makeSnapshot(t, int64(20+epoch), 25+int(epoch), 6)
		if _, err := pub.Publish(snap); err != nil {
			t.Fatal(err)
		}
		published[snap.Digest()] = true
		for attempts := 0; rep.Epoch() != epoch; attempts++ {
			if attempts > 200 {
				t.Fatalf("epoch %d never converged; status %+v counters %+v", epoch, rep.Status(), tr.Counters())
			}
			rep.SyncOnce(context.Background())
			// The invariant under fire: whatever is serving was published.
			if e := rep.Engine(); e != nil && !published[e.Snapshot().Digest()] {
				t.Fatalf("serving an unpublished snapshot at epoch %d", rep.Epoch())
			}
		}
	}
	c := tr.Counters()
	if c.Drops+c.Truncations+c.Flips == 0 {
		t.Fatalf("chaos run injected no faults (counters %+v) — seed too tame", c)
	}
	if st := rep.Status(); st.FetchFailures == 0 {
		t.Fatalf("replica saw no failures under chaos: %+v", st)
	}
}

// TestChaosBuilderDeathFleetStaysUp kills the builder after one epoch:
// replicas keep serving that epoch (reporting stale), and the router
// keeps answering correctly off them.
func TestChaosBuilderDeathFleetStaysUp(t *testing.T) {
	snap := makeSnapshot(t, 30, 30, 8)
	var builderDead atomic.Bool
	decide := func(_ int, req *http.Request) faultinject.Fault {
		if builderDead.Load() && req.URL.Host == "builder" {
			return faultinject.Fault{Drop: true, FlipBit: -1}
		}
		return faultinject.Clean
	}
	f := newFleet(t, 2, snap, decide)
	builderDead.Store(true)

	// Syncs now fail, but nothing stops serving.
	for i, rep := range f.replicas {
		if _, err := rep.SyncOnce(context.Background()); err == nil {
			t.Fatalf("replica %d synced against a dead builder", i)
		}
		rep.now = func() time.Time { return time.Now().Add(time.Hour) }
		st := rep.Status()
		if st.State != "serving" || st.Epoch != 1 || !st.StaleEpoch {
			t.Fatalf("replica %d status %+v, want serving epoch 1 stale", i, st)
		}
	}

	direct := geoserve.NewHandler(geoserve.NewEngine(snap))
	dc, _ := localClient(fleetMux{"direct": direct}, nil)
	f.router.ProbeOnce(context.Background())
	if st := f.router.Status(); st.HealthyReplicas != 2 || st.Epoch != 1 {
		t.Fatalf("router status with dead builder %+v", st)
	}
	for _, q := range []string{"/v1/locate?ip=10.1.0.1", "/v1/locate?ip=10.5.0.66&mapper=beta"} {
		rCode, rBody := get(t, f.client, "http://router"+q)
		dCode, dBody := get(t, dc, "http://direct"+q)
		if rCode != dCode || rBody != dBody {
			t.Fatalf("%s during builder outage: router (%d) %q vs engine (%d) %q", q, rCode, rBody, dCode, dBody)
		}
	}
	ips := batchIPs(20)
	resp, body := postBatch(t, f.client, "http://router", "beta", ips)
	_, want := postBatch(t, dc, "http://direct", "beta", ips)
	if resp.StatusCode != 200 || body != want {
		t.Fatalf("batch during builder outage: %d %q", resp.StatusCode, body)
	}
}

// TestChaosReplicaFlapNoWrongAnswers flaps one replica up and down
// through several cycles. The router must never return a wrong or
// failed answer — ejection, retry and readmission absorb the flapping
// invisibly.
func TestChaosReplicaFlapNoWrongAnswers(t *testing.T) {
	snap := makeSnapshot(t, 31, 30, 8)
	var flapping atomic.Bool
	decide := func(_ int, req *http.Request) faultinject.Fault {
		if flapping.Load() && req.URL.Host == "rep2" {
			return faultinject.Fault{Drop: true, FlipBit: -1}
		}
		return faultinject.Clean
	}
	f := newFleet(t, 3, snap, decide)
	direct := geoserve.NewHandler(geoserve.NewEngine(snap))
	dc, _ := localClient(fleetMux{"direct": direct}, nil)
	_, wantSingle := get(t, dc, "http://direct/v1/locate?ip=10.4.0.2")
	ips := batchIPs(15)
	_, wantBatch := postBatch(t, dc, "http://direct", "alpha", ips)

	for cycle := 0; cycle < 6; cycle++ {
		flapping.Store(cycle%2 == 0)
		f.router.ProbeOnce(context.Background())
		for i := 0; i < 5; i++ {
			if code, body := get(t, f.client, "http://router/v1/locate?ip=10.4.0.2"); code != 200 || body != wantSingle {
				t.Fatalf("cycle %d lookup %d: %d %q", cycle, i, code, body)
			}
		}
		resp, body := postBatch(t, f.client, "http://router", "alpha", ips)
		if resp.StatusCode != 200 || body != wantBatch {
			t.Fatalf("cycle %d batch: %d %q", cycle, resp.StatusCode, body)
		}
	}
	st := f.router.Status()
	var r2 RouterReplica
	for _, m := range st.Replicas {
		if m.URL == repURL(2) {
			r2 = m
		}
	}
	if r2.Ejections < 2 || r2.Readmissions < 2 {
		t.Fatalf("rep2 lifecycle %+v, want repeated ejection+readmission", r2)
	}
	if st.Sheds != 0 {
		t.Fatalf("router shed during flap: %+v", st)
	}
}
