package replica

import (
	"context"
	"encoding/json"
	"errors"
	"net/http"
	"strings"
	"testing"
	"time"

	"geonet/internal/faultinject"
	"geonet/internal/geoserve"
	"geonet/internal/geoserve/snapfile"
)

func TestReplicaSyncAndServe(t *testing.T) {
	snap1 := makeSnapshot(t, 1, 30, 8)
	pub := NewPublisher()
	if _, err := pub.Publish(snap1); err != nil {
		t.Fatal(err)
	}
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	rep := New(Config{BuilderURL: "http://builder", Client: client})

	swapped, err := rep.SyncOnce(context.Background())
	if err != nil || !swapped {
		t.Fatalf("first sync: swapped=%v err=%v", swapped, err)
	}
	if rep.Epoch() != 1 {
		t.Fatalf("epoch %d, want 1", rep.Epoch())
	}

	// The replica's API answers are byte-identical to a direct engine
	// over the same snapshot.
	direct := geoserve.NewHandler(geoserve.NewEngine(snap1))
	c2, _ := localClient(fleetMux{"rep": rep.Handler(), "direct": direct}, nil)
	for _, q := range []string{
		"/v1/locate?ip=10.0.0.1",
		"/v1/locate?ip=10.3.0.77&mapper=beta",
		"/v1/locate?ip=99.9.9.9",
		"/v1/prefixes",
		"/v1/as/103/footprint",
	} {
		st1, b1 := get(t, c2, "http://rep"+q)
		st2, b2 := get(t, c2, "http://direct"+q)
		if st1 != st2 || b1 != b2 {
			t.Fatalf("%s diverges: replica (%d) %q vs engine (%d) %q", q, st1, b1, st2, b2)
		}
	}

	// Every answer carries the epoch+digest of the snapshot that
	// produced it.
	resp, err := c2.Get("http://rep/v1/locate?ip=10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if e, d := resp.Header.Get("X-Geo-Epoch"), resp.Header.Get("X-Geo-Digest"); e != "1" || d != snap1.Digest() {
		t.Fatalf("headers epoch=%q digest=%q", e, d)
	}

	// Same epoch: sync is a no-op.
	if swapped, err = rep.SyncOnce(context.Background()); err != nil || swapped {
		t.Fatalf("idempotent sync: swapped=%v err=%v", swapped, err)
	}

	// New epoch swaps in.
	snap2 := makeSnapshot(t, 2, 35, 9)
	if _, err := pub.Publish(snap2); err != nil {
		t.Fatal(err)
	}
	if swapped, err = rep.SyncOnce(context.Background()); err != nil || !swapped {
		t.Fatalf("second sync: swapped=%v err=%v", swapped, err)
	}
	st := rep.Status()
	if st.Epoch != 2 || st.Swaps != 2 || st.Digest != snap2.Digest() || st.State != "serving" {
		t.Fatalf("status %+v", st)
	}
}

func TestReplicaServes503BeforeFirstSync(t *testing.T) {
	rep := New(Config{BuilderURL: "http://builder"})
	client, _ := localClient(fleetMux{"rep": rep.Handler()}, nil)
	resp, err := client.Get("http://rep/v1/locate?ip=10.0.0.1")
	if err != nil {
		t.Fatal(err)
	}
	resp.Body.Close()
	if resp.StatusCode != http.StatusServiceUnavailable || resp.Header.Get("Retry-After") == "" {
		t.Fatalf("status %d retry-after %q", resp.StatusCode, resp.Header.Get("Retry-After"))
	}
	if code, body := get(t, client, "http://rep/statusz"); code != 200 || !strings.Contains(body, `"state":"empty"`) {
		t.Fatalf("statusz %d %s", code, body)
	}
	if code, _ := get(t, client, "http://rep/healthz"); code != http.StatusServiceUnavailable {
		t.Fatalf("healthz %d, want 503", code)
	}
}

// TestReplicaResumesTruncatedFetch pins the resumable-download path: a
// fetch cut off mid-transfer keeps its bytes, and the next attempt
// finishes the file with a Range request (the resume counter only
// moves on a 206).
func TestReplicaResumesTruncatedFetch(t *testing.T) {
	snap := makeSnapshot(t, 3, 40, 10)
	pub := NewPublisher()
	if _, err := pub.Publish(snap); err != nil {
		t.Fatal(err)
	}
	// Attempt 0: manifest, clean. Attempt 1: snapshot, truncated after
	// 200 bytes. Attempts 2-3: manifest + resumed snapshot, clean.
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, faultinject.Script(
		faultinject.Clean,
		faultinject.Fault{TruncateAt: 200, FlipBit: -1},
	))
	rep := New(Config{BuilderURL: "http://builder", Client: client})

	swapped, err := rep.SyncOnce(context.Background())
	if swapped || !errors.Is(err, snapfile.ErrTruncated) {
		t.Fatalf("truncated sync: swapped=%v err=%v", swapped, err)
	}
	rep.mu.Lock()
	kept := len(rep.partial)
	rep.mu.Unlock()
	if kept != 200 {
		t.Fatalf("partial holds %d bytes, want 200", kept)
	}

	if swapped, err = rep.SyncOnce(context.Background()); err != nil || !swapped {
		t.Fatalf("resumed sync: swapped=%v err=%v", swapped, err)
	}
	st := rep.Status()
	if st.Resumes != 1 || st.Epoch != 1 || st.FetchFailures != 1 {
		t.Fatalf("status %+v, want one resume into epoch 1", st)
	}
	if rep.Engine().Snapshot().Digest() != snap.Digest() {
		t.Fatal("resumed snapshot digest mismatch")
	}
}

// TestReplicaVerifyRejectsCorruptFetch pins the safety core: a fetch
// whose bytes are corrupted in flight fails verification and the
// last-good epoch keeps serving untouched.
func TestReplicaVerifyRejectsCorruptFetch(t *testing.T) {
	snap1 := makeSnapshot(t, 4, 30, 8)
	snap2 := makeSnapshot(t, 5, 32, 8)
	pub := NewPublisher()
	if _, err := pub.Publish(snap1); err != nil {
		t.Fatal(err)
	}
	// Attempts 0-1: epoch 1 syncs clean. Attempt 3: epoch 2's snapshot
	// arrives with one flipped bit. Attempt 5: clean retry.
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, faultinject.Script(
		faultinject.Clean, faultinject.Clean,
		faultinject.Clean, faultinject.Fault{FlipBit: 8 * 500},
	))
	// NoDelta pins the full-fetch verify arm; the delta path's own
	// corruption handling (fall back, never serve wrong bytes) is
	// covered by TestChaosDeltaCorruptionFallsBack.
	rep := New(Config{BuilderURL: "http://builder", Client: client, NoDelta: true})
	if _, err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	if _, err := pub.Publish(snap2); err != nil {
		t.Fatal(err)
	}
	swapped, err := rep.SyncOnce(context.Background())
	if swapped || !errors.Is(err, ErrVerify) {
		t.Fatalf("corrupt sync: swapped=%v err=%v", swapped, err)
	}
	// Last-good epoch still serving.
	if rep.Epoch() != 1 || rep.Engine().Snapshot().Digest() != snap1.Digest() {
		t.Fatalf("after corrupt fetch: epoch %d", rep.Epoch())
	}
	// A corrupt complete download is discarded, not resumed into.
	rep.mu.Lock()
	kept := len(rep.partial)
	rep.mu.Unlock()
	if kept != 0 {
		t.Fatalf("corrupt download left %d partial bytes", kept)
	}

	if swapped, err = rep.SyncOnce(context.Background()); err != nil || !swapped {
		t.Fatalf("recovery sync: swapped=%v err=%v", swapped, err)
	}
	if rep.Epoch() != 2 || rep.Engine().Snapshot().Digest() != snap2.Digest() {
		t.Fatalf("recovery landed on epoch %d", rep.Epoch())
	}
}

// TestReplicaRejectsManifestMismatch covers the forged-manifest arm:
// a well-formed file whose identity disagrees with the manifest that
// named it is refused.
func TestReplicaRejectsManifestMismatch(t *testing.T) {
	snap := makeSnapshot(t, 6, 20, 6)
	pub := NewPublisher()
	m, err := pub.Publish(snap)
	if err != nil {
		t.Fatal(err)
	}
	// A man-in-the-middle manifest naming a different digest.
	lying := http.NewServeMux()
	lying.HandleFunc("GET /v1/replication/manifest", func(w http.ResponseWriter, r *http.Request) {
		forged := m
		forged.Digest = strings.Repeat("ab", 32)
		writeJSON(w, forged)
	})
	lying.Handle("/", pub.Handler())
	client, _ := localClient(fleetMux{"builder": lying}, nil)
	rep := New(Config{BuilderURL: "http://builder", Client: client})
	swapped, err := rep.SyncOnce(context.Background())
	if swapped || !errors.Is(err, ErrVerify) {
		t.Fatalf("mismatched manifest: swapped=%v err=%v", swapped, err)
	}
	if rep.Epoch() != 0 {
		t.Fatalf("epoch %d after rejected sync", rep.Epoch())
	}
}

// TestReplicaSyncHonoursContext proves cancellation halts a fetch
// promptly even when the builder hangs.
func TestReplicaSyncHonoursContext(t *testing.T) {
	client, _ := localClient(fleetMux{"builder": http.NotFoundHandler()}, faultinject.Script(
		faultinject.Fault{Latency: time.Hour, FlipBit: -1},
	))
	rep := New(Config{BuilderURL: "http://builder", Client: client, FetchTimeout: 30 * time.Millisecond})
	start := time.Now()
	_, err := rep.SyncOnce(context.Background())
	if err == nil {
		t.Fatal("sync against a hung builder succeeded")
	}
	if !errors.Is(err, context.DeadlineExceeded) {
		t.Fatalf("error %v, want deadline exceeded", err)
	}
	if elapsed := time.Since(start); elapsed > 2*time.Second {
		t.Fatalf("cancellation took %v", elapsed)
	}
}

// TestReplicaStaleEpoch pins the degraded mode: builder unreachable,
// replica keeps serving its last epoch and says stale_epoch.
func TestReplicaStaleEpoch(t *testing.T) {
	snap := makeSnapshot(t, 7, 25, 6)
	pub := NewPublisher()
	if _, err := pub.Publish(snap); err != nil {
		t.Fatal(err)
	}
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	rep := New(Config{BuilderURL: "http://builder", Client: client, StaleAfter: time.Minute})
	if _, err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if st := rep.Status(); st.StaleEpoch {
		t.Fatalf("fresh replica reports stale: %+v", st)
	}

	// An hour passes with no builder contact.
	rep.now = func() time.Time { return time.Now().Add(time.Hour) }
	st := rep.Status()
	if st.State != "serving" || !st.StaleEpoch {
		t.Fatalf("status %+v, want serving+stale", st)
	}
	// Still answering, and healthz says so while flagging staleness.
	c2, _ := localClient(fleetMux{"rep": rep.Handler()}, nil)
	code, body := get(t, c2, "http://rep/healthz")
	var hb healthzBody
	if err := json.Unmarshal([]byte(body), &hb); err != nil {
		t.Fatal(err)
	}
	if code != 200 || hb.Status != "ok" || !hb.StaleEpoch || hb.Epoch != 1 {
		t.Fatalf("healthz %d %+v", code, hb)
	}
	if code, _ := get(t, c2, "http://rep/v1/locate?ip=10.0.0.1"); code != 200 {
		t.Fatalf("stale replica stopped serving: %d", code)
	}
}

// TestReplicaRun exercises the loop end to end: it picks up a publish,
// swaps, and stops on context cancellation.
func TestReplicaRun(t *testing.T) {
	snap := makeSnapshot(t, 8, 20, 5)
	pub := NewPublisher()
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	rep := New(Config{
		BuilderURL:   "http://builder",
		Client:       client,
		PollInterval: 2 * time.Millisecond,
		Backoff:      BackoffPolicy{Base: time.Millisecond, Cap: 4 * time.Millisecond},
	})
	ctx, cancel := context.WithCancel(context.Background())
	done := make(chan error, 1)
	go func() { done <- rep.Run(ctx) }()

	// The builder has nothing yet; the loop must be retrying, not dead.
	time.Sleep(10 * time.Millisecond)
	if _, err := pub.Publish(snap); err != nil {
		t.Fatal(err)
	}
	deadline := time.Now().Add(5 * time.Second)
	for rep.Epoch() != 1 {
		if time.Now().After(deadline) {
			t.Fatalf("run loop never swapped; status %+v", rep.Status())
		}
		time.Sleep(time.Millisecond)
	}
	cancel()
	select {
	case err := <-done:
		if !errors.Is(err, context.Canceled) {
			t.Fatalf("run returned %v", err)
		}
	case <-time.After(5 * time.Second):
		t.Fatal("run did not stop on cancellation")
	}
}
