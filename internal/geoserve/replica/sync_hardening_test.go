package replica

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"geonet/internal/geoserve"
)

// TestReplicaDeltaSync pins the happy delta path: a replica already on
// a retained epoch upgrades via /delta and never touches the full
// snapshot endpoint.
func TestReplicaDeltaSync(t *testing.T) {
	pub := NewPublisher()
	s1, s2 := makeSnapshot(t, 1, 30, 8), makeSnapshot(t, 2, 30, 8)
	if _, err := pub.Publish(s1); err != nil {
		t.Fatal(err)
	}
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	rep := New(Config{BuilderURL: "http://builder", Client: client})
	if swapped, err := rep.SyncOnce(context.Background()); err != nil || !swapped {
		t.Fatalf("first sync: swapped=%v err=%v", swapped, err)
	}
	if _, err := pub.Publish(s2); err != nil {
		t.Fatal(err)
	}
	if swapped, err := rep.SyncOnce(context.Background()); err != nil || !swapped {
		t.Fatalf("delta sync: swapped=%v err=%v", swapped, err)
	}
	st := rep.Status()
	if st.Epoch != 2 || st.Digest != s2.Digest() {
		t.Fatalf("delta sync landed on epoch %d digest %s", st.Epoch, st.Digest)
	}
	if st.DeltaSyncs != 1 || st.DeltaFallbacks != 0 || st.Fetches != 1 {
		t.Fatalf("counters %+v: want 1 delta sync, 0 fallbacks, 1 full fetch", st)
	}
	if rep.Engine().Snapshot().Digest() != s2.Digest() {
		t.Fatal("served snapshot is not the published epoch")
	}
}

// TestReplicaDeltaIneligibleUsesFullFetch: a replica whose epoch fell
// out of the retention window goes straight to the full fetch without
// recording a fallback (it never attempted a delta).
func TestReplicaDeltaIneligibleUsesFullFetch(t *testing.T) {
	pub := NewPublisher()
	pub.SetRetain(1)
	if _, err := pub.Publish(makeSnapshot(t, 1, 20, 6)); err != nil {
		t.Fatal(err)
	}
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	rep := New(Config{BuilderURL: "http://builder", Client: client})
	if _, err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(makeSnapshot(t, 2, 20, 6)); err != nil {
		t.Fatal(err)
	}
	if swapped, err := rep.SyncOnce(context.Background()); err != nil || !swapped {
		t.Fatalf("sync: swapped=%v err=%v", swapped, err)
	}
	st := rep.Status()
	if st.Epoch != 2 || st.DeltaSyncs != 0 || st.DeltaFallbacks != 0 || st.Fetches != 2 {
		t.Fatalf("counters %+v: want two full fetches, no delta traffic", st)
	}
}

// TestReplicaWarmupGate pins warm-up gating: an install the self-probe
// rejects keeps the last-good epoch serving and reports warmup_failed;
// once the probe passes again the swap goes through and the flag
// clears.
func TestReplicaWarmupGate(t *testing.T) {
	pub := NewPublisher()
	s1, s2 := makeSnapshot(t, 3, 20, 6), makeSnapshot(t, 4, 20, 6)
	if _, err := pub.Publish(s1); err != nil {
		t.Fatal(err)
	}
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	rep := New(Config{BuilderURL: "http://builder", Client: client})
	if _, err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	probeErr := errors.New("seeded probe answered garbage")
	rep.warmupFn = func(warmTarget, uint64) error { return probeErr }
	if _, err := pub.Publish(s2); err != nil {
		t.Fatal(err)
	}
	swapped, err := rep.SyncOnce(context.Background())
	if swapped || !errors.Is(err, probeErr) {
		t.Fatalf("gated sync: swapped=%v err=%v", swapped, err)
	}
	st := rep.Status()
	if !st.WarmupFailed || st.WarmupFailures != 1 {
		t.Fatalf("status %+v: want warmup_failed", st)
	}
	if rep.Epoch() != 1 || rep.Engine().Snapshot().Digest() != s1.Digest() {
		t.Fatalf("gated install moved serving to epoch %d", rep.Epoch())
	}

	rep.warmupFn = rep.selfProbe
	if swapped, err := rep.SyncOnce(context.Background()); err != nil || !swapped {
		t.Fatalf("recovered sync: swapped=%v err=%v", swapped, err)
	}
	st = rep.Status()
	if st.WarmupFailed || st.Epoch != 2 {
		t.Fatalf("status %+v after recovery", st)
	}
}

// TestReplicaSelfProbeAcceptsRealSnapshot exercises the default probe
// against a real engine+snapshot pair (it must pass, not just be
// stubbed around).
func TestReplicaSelfProbeAcceptsRealSnapshot(t *testing.T) {
	rep := New(Config{BuilderURL: "http://builder"})
	snap := makeSnapshot(t, 5, 40, 10)
	if err := rep.selfProbe(geoserve.NewEngine(snap), 7); err != nil {
		t.Fatalf("self-probe rejected a healthy snapshot: %v", err)
	}
}

// TestReplicaDrain pins the draining contract: /healthz fails with
// status "draining", /statusz says so, and queries are still answered
// from the current epoch so racing requests lose nothing.
func TestReplicaDrain(t *testing.T) {
	pub := NewPublisher()
	snap := makeSnapshot(t, 6, 20, 6)
	if _, err := pub.Publish(snap); err != nil {
		t.Fatal(err)
	}
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	rep := New(Config{BuilderURL: "http://builder", Client: client})
	if _, err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	dc, _ := localClient(fleetMux{"rep": rep.Handler()}, nil)

	if status, _ := get(t, dc, "http://rep/healthz"); status != http.StatusOK {
		t.Fatalf("healthz before drain: %d", status)
	}
	rep.Drain()
	if !rep.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	status, body := get(t, dc, "http://rep/healthz")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, `"draining"`) {
		t.Fatalf("healthz during drain: %d %s", status, body)
	}
	status, body = get(t, dc, "http://rep/statusz")
	if status != http.StatusOK || !strings.Contains(body, `"state":"draining"`) {
		t.Fatalf("statusz during drain: %d %s", status, body)
	}
	// A query that raced past the failing probe is still answered,
	// tagged with the serving epoch.
	ip := snap.ExactIPs()[0]
	req := httptest.NewRequest("GET", "/v1/locate?mapper=alpha&ip="+geoserve.FormatIPv4(ip), nil)
	rec := httptest.NewRecorder()
	rep.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Geo-Epoch") != "1" {
		t.Fatalf("query during drain: %d epoch %q body %s", rec.Code, rec.Header().Get("X-Geo-Epoch"), rec.Body)
	}
	if rep.InFlight() != 0 {
		t.Fatalf("in-flight %d after the response finished", rep.InFlight())
	}
}

// TestReplicaRetentionRaceRecovers pins the retention-window race: the
// publisher prunes both the replica's delta base and the manifest's
// named epoch between the manifest read and the fetches. The typed
// gone answers must demote delta → full → manifest re-read within one
// SyncOnce, landing on the newest epoch with zero fetch failures — the
// race is bookkept under epoch_gone_races, never billed as a failure
// that would burn a backoff cycle.
func TestReplicaRetentionRaceRecovers(t *testing.T) {
	pub := NewPublisher()
	snaps := make([]*geoserve.Snapshot, 6)
	for i := range snaps {
		snaps[i] = makeSnapshot(t, int64(10+i), 24, 6)
	}
	if _, err := pub.Publish(snaps[0]); err != nil {
		t.Fatal(err)
	}

	// The eviction fires between the replica's manifest read (naming
	// epoch 2, retaining [1 2]) and its delta fetch: four more
	// publishes roll the retention window to [3..6], pruning both the
	// delta base (1) and the manifest's target (2).
	evicted := false
	builder := http.HandlerFunc(func(w http.ResponseWriter, r *http.Request) {
		if !evicted && strings.HasPrefix(r.URL.Path, "/v1/replication/delta/") {
			evicted = true
			for _, s := range snaps[2:] {
				if _, err := pub.Publish(s); err != nil {
					t.Error(err)
				}
			}
		}
		pub.Handler().ServeHTTP(w, r)
	})
	client, _ := localClient(fleetMux{"builder": builder}, nil)
	rep := New(Config{BuilderURL: "http://builder", Client: client})
	if _, err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(snaps[1]); err != nil {
		t.Fatal(err)
	}

	swapped, err := rep.SyncOnce(context.Background())
	if err != nil || !swapped {
		t.Fatalf("raced sync: swapped=%v err=%v", swapped, err)
	}
	if !evicted {
		t.Fatal("eviction hook never fired — the race was not exercised")
	}
	st := rep.Status()
	if st.Epoch != 6 {
		t.Fatalf("raced sync landed on epoch %d, want the re-read manifest's 6", st.Epoch)
	}
	if st.FetchFailures != 0 {
		t.Fatalf("retention race billed as %d fetch failures (last error %q)", st.FetchFailures, st.LastError)
	}
	if st.EpochGoneRaces == 0 {
		t.Fatal("recovered race not counted under epoch_gone_races")
	}
	if st.DeltaFallbacks != 1 {
		t.Fatalf("delta fallbacks %d, want exactly the one demoted attempt", st.DeltaFallbacks)
	}
}

// TestPublishIdenticalSnapshotNoEpochChurn pins no-op churn step
// behaviour: republishing content byte-identical to the current epoch
// (same digest, distinct snapshot object) must not allocate a new
// epoch, so replicas see no epoch bump and do no fetch or re-warm-up.
func TestPublishIdenticalSnapshotNoEpochChurn(t *testing.T) {
	pub := NewPublisher()
	m1, err := pub.Publish(makeSnapshot(t, 21, 24, 6))
	if err != nil {
		t.Fatal(err)
	}
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	rep := New(Config{BuilderURL: "http://builder", Client: client})
	if _, err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	m2, err := pub.Publish(makeSnapshot(t, 21, 24, 6)) // identical content
	if err != nil {
		t.Fatal(err)
	}
	if m2.Epoch != m1.Epoch || m2.Digest != m1.Digest {
		t.Fatalf("no-op republish allocated epoch %d (was %d)", m2.Epoch, m1.Epoch)
	}
	swapped, err := rep.SyncOnce(context.Background())
	if err != nil || swapped {
		t.Fatalf("sync after no-op republish: swapped=%v err=%v", swapped, err)
	}
	st := rep.Status()
	if st.Epoch != m1.Epoch || st.Swaps != 1 || st.Fetches != 1 {
		t.Fatalf("replica saw an epoch bump from identical content: %+v", st)
	}
}

// TestReplicaClusterCountersCarryAcrossDeltaSwap pins serving-counter
// continuity in cluster mode: when an epoch arrives by delta apply the
// installed cluster must carry the previous epoch's lookup totals,
// batch counts, per-shard counters and swap count forward, exactly as
// the engine path does via NewEngineFrom.
func TestReplicaClusterCountersCarryAcrossDeltaSwap(t *testing.T) {
	pub := NewPublisher()
	s1, s2 := makeSnapshot(t, 31, 32, 8), makeSnapshot(t, 32, 32, 8)
	if _, err := pub.Publish(s1); err != nil {
		t.Fatal(err)
	}
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	rep := New(Config{BuilderURL: "http://builder", Client: client, Shards: 2})
	if _, err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	clu := rep.Cluster()
	ips := s1.ExactIPs()[:8]
	for _, ip := range ips {
		clu.Lookup(0, ip)
	}
	out := make([]geoserve.Answer, len(ips))
	if _, err := clu.LookupBatch(0, ips, out); err != nil {
		t.Fatal(err)
	}
	before := clu.Status()
	if before.Lookups == 0 || before.Batches == 0 {
		t.Fatalf("no traffic recorded before the swap: %+v", before)
	}

	if _, err := pub.Publish(s2); err != nil {
		t.Fatal(err)
	}
	if swapped, err := rep.SyncOnce(context.Background()); err != nil || !swapped {
		t.Fatalf("delta sync: swapped=%v err=%v", swapped, err)
	}
	if st := rep.Status(); st.DeltaSyncs != 1 {
		t.Fatalf("second epoch did not arrive by delta (%+v) — carry must be pinned on that path", st)
	}

	after := rep.Cluster().Status()
	if after.Snapshot.Digest != s2.Digest() {
		t.Fatalf("cluster serves digest %s, want epoch 2's", after.Snapshot.Digest)
	}
	if after.Lookups < before.Lookups {
		t.Fatalf("lookup counter reset across delta swap: %d -> %d", before.Lookups, after.Lookups)
	}
	if after.Batches < before.Batches {
		t.Fatalf("batch counter reset across delta swap: %d -> %d", before.Batches, after.Batches)
	}
	if after.Snapshot.Swaps != 1 {
		t.Fatalf("swap count %d after one hot swap, want 1", after.Snapshot.Swaps)
	}
	var shardBefore, shardAfter uint64
	for _, s := range before.ShardStats {
		shardBefore += s.Lookups
	}
	for _, s := range after.ShardStats {
		shardAfter += s.Lookups
	}
	if shardAfter < shardBefore {
		t.Fatalf("per-shard lookup totals reset across delta swap: %d -> %d", shardBefore, shardAfter)
	}
}
