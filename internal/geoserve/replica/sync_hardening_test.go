package replica

import (
	"context"
	"errors"
	"net/http"
	"net/http/httptest"
	"strings"
	"testing"

	"geonet/internal/geoserve"
)

// TestReplicaDeltaSync pins the happy delta path: a replica already on
// a retained epoch upgrades via /delta and never touches the full
// snapshot endpoint.
func TestReplicaDeltaSync(t *testing.T) {
	pub := NewPublisher()
	s1, s2 := makeSnapshot(t, 1, 30, 8), makeSnapshot(t, 2, 30, 8)
	if _, err := pub.Publish(s1); err != nil {
		t.Fatal(err)
	}
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	rep := New(Config{BuilderURL: "http://builder", Client: client})
	if swapped, err := rep.SyncOnce(context.Background()); err != nil || !swapped {
		t.Fatalf("first sync: swapped=%v err=%v", swapped, err)
	}
	if _, err := pub.Publish(s2); err != nil {
		t.Fatal(err)
	}
	if swapped, err := rep.SyncOnce(context.Background()); err != nil || !swapped {
		t.Fatalf("delta sync: swapped=%v err=%v", swapped, err)
	}
	st := rep.Status()
	if st.Epoch != 2 || st.Digest != s2.Digest() {
		t.Fatalf("delta sync landed on epoch %d digest %s", st.Epoch, st.Digest)
	}
	if st.DeltaSyncs != 1 || st.DeltaFallbacks != 0 || st.Fetches != 1 {
		t.Fatalf("counters %+v: want 1 delta sync, 0 fallbacks, 1 full fetch", st)
	}
	if rep.Engine().Snapshot().Digest() != s2.Digest() {
		t.Fatal("served snapshot is not the published epoch")
	}
}

// TestReplicaDeltaIneligibleUsesFullFetch: a replica whose epoch fell
// out of the retention window goes straight to the full fetch without
// recording a fallback (it never attempted a delta).
func TestReplicaDeltaIneligibleUsesFullFetch(t *testing.T) {
	pub := NewPublisher()
	pub.SetRetain(1)
	if _, err := pub.Publish(makeSnapshot(t, 1, 20, 6)); err != nil {
		t.Fatal(err)
	}
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	rep := New(Config{BuilderURL: "http://builder", Client: client})
	if _, err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	if _, err := pub.Publish(makeSnapshot(t, 2, 20, 6)); err != nil {
		t.Fatal(err)
	}
	if swapped, err := rep.SyncOnce(context.Background()); err != nil || !swapped {
		t.Fatalf("sync: swapped=%v err=%v", swapped, err)
	}
	st := rep.Status()
	if st.Epoch != 2 || st.DeltaSyncs != 0 || st.DeltaFallbacks != 0 || st.Fetches != 2 {
		t.Fatalf("counters %+v: want two full fetches, no delta traffic", st)
	}
}

// TestReplicaWarmupGate pins warm-up gating: an install the self-probe
// rejects keeps the last-good epoch serving and reports warmup_failed;
// once the probe passes again the swap goes through and the flag
// clears.
func TestReplicaWarmupGate(t *testing.T) {
	pub := NewPublisher()
	s1, s2 := makeSnapshot(t, 3, 20, 6), makeSnapshot(t, 4, 20, 6)
	if _, err := pub.Publish(s1); err != nil {
		t.Fatal(err)
	}
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	rep := New(Config{BuilderURL: "http://builder", Client: client})
	if _, err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}

	probeErr := errors.New("seeded probe answered garbage")
	rep.warmupFn = func(warmTarget, uint64) error { return probeErr }
	if _, err := pub.Publish(s2); err != nil {
		t.Fatal(err)
	}
	swapped, err := rep.SyncOnce(context.Background())
	if swapped || !errors.Is(err, probeErr) {
		t.Fatalf("gated sync: swapped=%v err=%v", swapped, err)
	}
	st := rep.Status()
	if !st.WarmupFailed || st.WarmupFailures != 1 {
		t.Fatalf("status %+v: want warmup_failed", st)
	}
	if rep.Epoch() != 1 || rep.Engine().Snapshot().Digest() != s1.Digest() {
		t.Fatalf("gated install moved serving to epoch %d", rep.Epoch())
	}

	rep.warmupFn = rep.selfProbe
	if swapped, err := rep.SyncOnce(context.Background()); err != nil || !swapped {
		t.Fatalf("recovered sync: swapped=%v err=%v", swapped, err)
	}
	st = rep.Status()
	if st.WarmupFailed || st.Epoch != 2 {
		t.Fatalf("status %+v after recovery", st)
	}
}

// TestReplicaSelfProbeAcceptsRealSnapshot exercises the default probe
// against a real engine+snapshot pair (it must pass, not just be
// stubbed around).
func TestReplicaSelfProbeAcceptsRealSnapshot(t *testing.T) {
	rep := New(Config{BuilderURL: "http://builder"})
	snap := makeSnapshot(t, 5, 40, 10)
	if err := rep.selfProbe(geoserve.NewEngine(snap), 7); err != nil {
		t.Fatalf("self-probe rejected a healthy snapshot: %v", err)
	}
}

// TestReplicaDrain pins the draining contract: /healthz fails with
// status "draining", /statusz says so, and queries are still answered
// from the current epoch so racing requests lose nothing.
func TestReplicaDrain(t *testing.T) {
	pub := NewPublisher()
	snap := makeSnapshot(t, 6, 20, 6)
	if _, err := pub.Publish(snap); err != nil {
		t.Fatal(err)
	}
	client, _ := localClient(fleetMux{"builder": pub.Handler()}, nil)
	rep := New(Config{BuilderURL: "http://builder", Client: client})
	if _, err := rep.SyncOnce(context.Background()); err != nil {
		t.Fatal(err)
	}
	dc, _ := localClient(fleetMux{"rep": rep.Handler()}, nil)

	if status, _ := get(t, dc, "http://rep/healthz"); status != http.StatusOK {
		t.Fatalf("healthz before drain: %d", status)
	}
	rep.Drain()
	if !rep.Draining() {
		t.Fatal("Draining() false after Drain")
	}
	status, body := get(t, dc, "http://rep/healthz")
	if status != http.StatusServiceUnavailable || !strings.Contains(body, `"draining"`) {
		t.Fatalf("healthz during drain: %d %s", status, body)
	}
	status, body = get(t, dc, "http://rep/statusz")
	if status != http.StatusOK || !strings.Contains(body, `"state":"draining"`) {
		t.Fatalf("statusz during drain: %d %s", status, body)
	}
	// A query that raced past the failing probe is still answered,
	// tagged with the serving epoch.
	ip := snap.ExactIPs()[0]
	req := httptest.NewRequest("GET", "/v1/locate?mapper=alpha&ip="+geoserve.FormatIPv4(ip), nil)
	rec := httptest.NewRecorder()
	rep.Handler().ServeHTTP(rec, req)
	if rec.Code != http.StatusOK || rec.Header().Get("X-Geo-Epoch") != "1" {
		t.Fatalf("query during drain: %d epoch %q body %s", rec.Code, rec.Header().Get("X-Geo-Epoch"), rec.Body)
	}
	if rep.InFlight() != 0 {
		t.Fatalf("in-flight %d after the response finished", rep.InFlight())
	}
}
