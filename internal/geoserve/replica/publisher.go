// Package replica is the multi-node replication tier over geoserve
// snapshots: a builder node publishes digest-checked snapshot epochs
// over HTTP, replica nodes run a fetch → verify → swap loop against
// it, and a thin router fans lookups out over the replicas without
// ever blending epochs inside one answer set. See DESIGN.md
// ("Replicated serving") for the consistency rules and the
// degraded-mode matrix.
package replica

import (
	"bytes"
	"errors"
	"net/http"
	"strconv"
	"sync"
	"time"

	"geonet/internal/geoserve"
	"geonet/internal/geoserve/snapfile"
)

// DefaultRetain is how many epochs the publisher keeps around for
// delta serving when the caller doesn't say otherwise. A replica more
// than DefaultRetain-1 epochs behind falls back to a full fetch.
const DefaultRetain = 4

// Manifest describes the builder's current epoch: what a replica
// decides from and verifies against. Digest is the snapshot content
// digest the fetched file must reassemble to. Retained lists every
// epoch the builder can still diff from, newest last; a replica whose
// current epoch appears in it (other than the newest) may ask for a
// delta instead of the whole file.
type Manifest struct {
	Epoch         uint64             `json:"epoch"`
	Digest        string             `json:"digest"`
	SizeBytes     int64              `json:"size_bytes"`
	FormatVersion uint32             `json:"format_version"`
	Build         geoserve.BuildInfo `json:"build"`
	// PublishedUnix is when the builder published this epoch.
	PublishedUnix int64    `json:"published_unix"`
	Retained      []uint64 `json:"retained,omitempty"`
}

// pubEpoch is one retained epoch: its manifest, its encoded snapfile,
// and the decoded snapshot deltas are diffed from.
type pubEpoch struct {
	manifest Manifest
	blob     []byte
	snap     *geoserve.Snapshot
}

type deltaKey struct{ from, to uint64 }

// Publisher is the builder-side replication surface: it retains the
// encoded snapfiles of the last few epochs and serves
//
//	GET /v1/replication/manifest             the current Manifest
//	GET /v1/replication/snapshot/{epoch}     the epoch's snapfile bytes
//	                                         (Range supported, so
//	                                         interrupted fetches resume)
//	GET /v1/replication/delta/{from}/{to}    a .snapdelta upgrading a
//	                                         retained epoch to a newer one
//
// Publish is cheap relative to a pipeline run (one snapfile encode);
// epochs are dense integers from 1. Deltas are diffed lazily on first
// request and cached until either endpoint epoch is pruned.
type Publisher struct {
	mu     sync.RWMutex
	epochs []pubEpoch // ascending by epoch; last is current
	retain int
	deltas map[deltaKey][]byte
	// now is stubbed in tests.
	now func() time.Time
}

// NewPublisher starts with no epoch; the manifest endpoint answers 503
// until the first Publish. The retention window starts at
// DefaultRetain.
func NewPublisher() *Publisher {
	return &Publisher{now: time.Now, retain: DefaultRetain, deltas: map[deltaKey][]byte{}}
}

// SetRetain resizes the retention window (minimum 1, the current
// epoch) and prunes immediately if it shrank.
func (p *Publisher) SetRetain(k int) {
	if k < 1 {
		k = 1
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	p.retain = k
	p.pruneLocked()
}

// Publish encodes the snapshot as the next epoch and makes it the one
// the manifest advertises; epochs older than the retention window drop
// out along with any cached deltas touching them. Returns the new
// manifest.
//
// Publishes dedupe by content digest: a snapshot identical to the
// current epoch's (a churn step that recompiled to the same answers)
// returns the current manifest unchanged instead of allocating a new
// epoch — a republish of identical content must not force fleet-wide
// re-fetch and warm-up.
func (p *Publisher) Publish(snap *geoserve.Snapshot) (Manifest, error) {
	p.mu.Lock()
	defer p.mu.Unlock()
	epoch := uint64(1)
	if n := len(p.epochs); n > 0 {
		if p.epochs[n-1].manifest.Digest == snap.Digest() {
			return p.manifestLocked(), nil
		}
		epoch = p.epochs[n-1].manifest.Epoch + 1
	}
	blob, err := snapfile.Encode(snap, epoch)
	if err != nil {
		return Manifest{}, err
	}
	p.epochs = append(p.epochs, pubEpoch{
		manifest: Manifest{
			Epoch:         epoch,
			Digest:        snap.Digest(),
			SizeBytes:     int64(len(blob)),
			FormatVersion: snapfile.FormatVersion,
			Build:         snap.Build(),
			PublishedUnix: p.now().Unix(),
		},
		blob: blob,
		snap: snap,
	})
	p.pruneLocked()
	return p.manifestLocked(), nil
}

func (p *Publisher) pruneLocked() {
	for len(p.epochs) > p.retain {
		gone := p.epochs[0].manifest.Epoch
		p.epochs = p.epochs[1:]
		for k := range p.deltas {
			if k.from == gone || k.to == gone {
				delete(p.deltas, k)
			}
		}
	}
}

// manifestLocked stamps the retained-epoch list onto the newest
// epoch's manifest.
func (p *Publisher) manifestLocked() Manifest {
	m := p.epochs[len(p.epochs)-1].manifest
	m.Retained = make([]uint64, len(p.epochs))
	for i, e := range p.epochs {
		m.Retained[i] = e.manifest.Epoch
	}
	return m
}

// Manifest returns the current manifest; ok=false before the first
// Publish.
func (p *Publisher) Manifest() (Manifest, bool) {
	p.mu.RLock()
	defer p.mu.RUnlock()
	if len(p.epochs) == 0 {
		return Manifest{}, false
	}
	return p.manifestLocked(), true
}

func (p *Publisher) epochLocked(epoch uint64) (pubEpoch, bool) {
	for _, e := range p.epochs {
		if e.manifest.Epoch == epoch {
			return e, true
		}
	}
	return pubEpoch{}, false
}

var errDeltaGone = errors.New("delta endpoints not retained")

// goneHeader marks a replication 404 as typed: the requested epoch was
// real but has left the retention window (pruned mid-poll, typically —
// the manifest a replica decided from went stale between its read and
// its fetch). Replicas distinguish it from transport-level failures:
// a gone epoch is a benign race to recover from by re-reading the
// manifest, not an error that should consume retry budget or trip a
// circuit breaker.
const goneHeader = "X-Geo-Gone"

// delta returns (and caches) the .snapdelta from one retained epoch to
// a newer retained one.
func (p *Publisher) delta(from, to uint64) ([]byte, error) {
	if from >= to {
		return nil, errDeltaGone
	}
	p.mu.RLock()
	cached, ok := p.deltas[deltaKey{from, to}]
	p.mu.RUnlock()
	if ok {
		return cached, nil
	}
	p.mu.Lock()
	defer p.mu.Unlock()
	if cached, ok := p.deltas[deltaKey{from, to}]; ok {
		return cached, nil
	}
	base, okF := p.epochLocked(from)
	target, okT := p.epochLocked(to)
	if !okF || !okT {
		return nil, errDeltaGone
	}
	blob, err := snapfile.Diff(base.snap, target.snap, from, to)
	if err != nil {
		return nil, err
	}
	p.deltas[deltaKey{from, to}] = blob
	return blob, nil
}

// Handler serves the replication endpoints. Mount it on the builder's
// mux alongside the ordinary serving API.
func (p *Publisher) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /v1/replication/manifest", func(w http.ResponseWriter, r *http.Request) {
		m, ok := p.Manifest()
		if !ok {
			httpJSONError(w, http.StatusServiceUnavailable, "no epoch published yet")
			return
		}
		writeJSON(w, m)
	})
	mux.HandleFunc("GET /v1/replication/snapshot/{epoch}", func(w http.ResponseWriter, r *http.Request) {
		epoch, err := strconv.ParseUint(r.PathValue("epoch"), 10, 64)
		if err != nil {
			httpJSONError(w, http.StatusBadRequest, "bad epoch %q", r.PathValue("epoch"))
			return
		}
		p.mu.RLock()
		e, ok := p.epochLocked(epoch)
		empty := len(p.epochs) == 0
		var current uint64
		if !empty {
			current = p.epochs[len(p.epochs)-1].manifest.Epoch
		}
		p.mu.RUnlock()
		if empty {
			httpJSONError(w, http.StatusServiceUnavailable, "no epoch published yet")
			return
		}
		if !ok {
			// Pruned epochs are gone for good; a replica asking for one
			// re-reads the manifest and fetches fresh.
			w.Header().Set(goneHeader, "1")
			httpJSONError(w, http.StatusNotFound, "epoch %d gone (current %d)", epoch, current)
			return
		}
		m := e.manifest
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Geo-Epoch", strconv.FormatUint(m.Epoch, 10))
		w.Header().Set("X-Geo-Digest", m.Digest)
		// ServeContent supplies Range handling, so interrupted
		// downloads resume instead of restarting.
		http.ServeContent(w, r, "snapshot.snap", time.Unix(m.PublishedUnix, 0), bytes.NewReader(e.blob))
	})
	mux.HandleFunc("GET /v1/replication/delta/{from}/{to}", func(w http.ResponseWriter, r *http.Request) {
		from, errF := strconv.ParseUint(r.PathValue("from"), 10, 64)
		to, errT := strconv.ParseUint(r.PathValue("to"), 10, 64)
		if errF != nil || errT != nil {
			httpJSONError(w, http.StatusBadRequest, "bad delta endpoints %q..%q", r.PathValue("from"), r.PathValue("to"))
			return
		}
		blob, err := p.delta(from, to)
		if err != nil {
			// Anything we can't diff — pruned base, reversed range,
			// mapper-set change between epochs — is a 404; the replica
			// falls back to the full snapshot endpoint. A pruned
			// endpoint is additionally typed as gone so the fallback
			// doesn't bill the retention race as a failure.
			if errors.Is(err, errDeltaGone) {
				w.Header().Set(goneHeader, "1")
			}
			httpJSONError(w, http.StatusNotFound, "no delta %d..%d: %v", from, to, err)
			return
		}
		w.Header().Set("Content-Type", "application/octet-stream")
		w.Header().Set("X-Geo-Epoch", strconv.FormatUint(to, 10))
		http.ServeContent(w, r, "snapshot.snapdelta", time.Time{}, bytes.NewReader(blob))
	})
	return mux
}
